// Reproduces Table 2 of the paper: "Yield Comparison".
//
// Two designated clock periods are evaluated per circuit:
//   T1 = median of the untuned required period   (no-buffer yield 50%)
//   T2 = its 84.13th percentile                  (no-buffer yield 84.13%)
// Columns per period:
//   yi  yield with perfect delay measurement (ideal configuration)
//   yt  yield with delays measured/predicted by the proposed method
//   yr  yield drop yi - yt caused by test and prediction inaccuracy
// The paper reports yr around 1-2% with yi far above the no-buffer yields.

#include "bench_common.hpp"
#include "io/bench_json.hpp"
#include "core/campaign.hpp"

int main(int argc, char** argv) {
  using namespace effitest;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t chips = args.chips > 0 ? args.chips : 2000;

  std::cout << "=== Table 2: yield comparison at T1 (50% untuned) and T2 "
               "(84.13% untuned) ===\n"
            << "chips per circuit: " << chips << " (paper: 10000)\n\n";

  core::Table table({"Circuit", "T1 yi(%)", "T1 yt(%)", "T1 yr(%)",
                     "T2 yi(%)", "T2 yt(%)", "T2 yr(%)", "y0(T1)%",
                     "y0(T2)%"});

  // Circuit-major (circuit, quantile) cross product: the campaign runner
  // prepares each circuit once, reuses the period-independent artifacts for
  // the T2 job, and fans circuits out across all cores.
  core::CampaignOptions copts;
  copts.flow.chips = chips;
  copts.flow.seed = args.seed;
  copts.threads = args.threads;  // flow.threads of 0 inherits this
  std::vector<std::string> names;
  for (const netlist::GeneratorSpec& spec : bench::selected_specs(args)) {
    names.push_back(spec.name);
  }
  const core::CampaignResult result = core::CampaignRunner(copts).run(
      core::CampaignRunner::cross(names, {0.5, 0.8413}));

  io::JsonReporter json("table2", args.threads);
  for (std::size_t c = 0; c < names.size(); ++c) {
    const core::FlowMetrics& t1 = result.jobs[2 * c].metrics;
    const core::FlowMetrics& t2 = result.jobs[2 * c + 1].metrics;
    json.add(names[c], "t1_yield_ideal", t1.yield_ideal * 100.0,
             result.jobs[2 * c].seconds);
    json.add(names[c], "t1_yield_proposed", t1.yield_proposed * 100.0,
             result.jobs[2 * c].seconds);
    json.add(names[c], "t2_yield_ideal", t2.yield_ideal * 100.0,
             result.jobs[2 * c + 1].seconds);
    json.add(names[c], "t2_yield_proposed", t2.yield_proposed * 100.0,
             result.jobs[2 * c + 1].seconds);
    table.add_row({
        names[c],
        bench::pct(t1.yield_ideal),
        bench::pct(t1.yield_proposed),
        bench::pct(t1.yield_ideal - t1.yield_proposed),
        bench::pct(t2.yield_ideal),
        bench::pct(t2.yield_proposed),
        bench::pct(t2.yield_ideal - t2.yield_proposed),
        bench::pct(t1.yield_no_buffer),
        bench::pct(t2.yield_no_buffer),
    });
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: T1 yi = 67.11..85.97, yr = 0.25..2.37; "
               "T2 yi = 94.33..98.48, yr = 0.23..2.18;\n"
               "untuned yields 50% (T1) and 84.13% (T2) by construction.\n"
            << "campaign wall time: "
            << core::Table::num(result.total_seconds, 2) << " s\n"
            << "machine-readable output: " << json.write() << "\n";
  return 0;
}
