// Reproduces Table 2 of the paper: "Yield Comparison".
//
// Two designated clock periods are evaluated per circuit:
//   T1 = median of the untuned required period   (no-buffer yield 50%)
//   T2 = its 84.13th percentile                  (no-buffer yield 84.13%)
// Columns per period:
//   yi  yield with perfect delay measurement (ideal configuration)
//   yt  yield with delays measured/predicted by the proposed method
//   yr  yield drop yi - yt caused by test and prediction inaccuracy
// The paper reports yr around 1-2% with yi far above the no-buffer yields.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace effitest;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t chips = args.chips > 0 ? args.chips : 2000;

  std::cout << "=== Table 2: yield comparison at T1 (50% untuned) and T2 "
               "(84.13% untuned) ===\n"
            << "chips per circuit: " << chips << " (paper: 10000)\n\n";

  core::Table table({"Circuit", "T1 yi(%)", "T1 yt(%)", "T1 yr(%)",
                     "T2 yi(%)", "T2 yt(%)", "T2 yr(%)", "y0(T1)%",
                     "y0(T2)%"});

  for (const netlist::GeneratorSpec& spec : bench::selected_specs(args)) {
    const bench::Instance inst(spec);

    // Calibrate both periods from the untuned required-period distribution.
    stats::Rng cal(args.seed ^ 0x7157);
    const double t1 = core::period_quantile(inst.problem, 0.5, 2000, cal);
    stats::Rng cal2(args.seed ^ 0x7157);
    const double t2 = core::period_quantile(inst.problem, 0.8413, 2000, cal2);

    double yi[2];
    double yt[2];
    double y0[2];
    const double periods[2] = {t1, t2};
    const core::FlowArtifacts* reuse = nullptr;
    core::FlowResult first;
    for (int k = 0; k < 2; ++k) {
      core::FlowOptions opts;
      opts.chips = chips;
      opts.seed = args.seed;
      opts.designated_period = periods[k];
      core::FlowResult r = core::run_flow(inst.problem, opts, reuse);
      yi[k] = r.metrics.yield_ideal;
      yt[k] = r.metrics.yield_proposed;
      y0[k] = r.metrics.yield_no_buffer;
      if (k == 0) {
        // Offline artifacts are period-independent; reuse them for T2.
        first = std::move(r);
        reuse = &first.artifacts;
      }
    }

    table.add_row({
        spec.name,
        bench::pct(yi[0]),
        bench::pct(yt[0]),
        bench::pct(yi[0] - yt[0]),
        bench::pct(yi[1]),
        bench::pct(yt[1]),
        bench::pct(yi[1] - yt[1]),
        bench::pct(y0[0]),
        bench::pct(y0[1]),
    });
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: T1 yi = 67.11..85.97, yr = 0.25..2.37; "
               "T2 yi = 94.33..98.48, yr = 0.23..2.18;\n"
               "untuned yields 50% (T1) and 84.13% (T2) by construction.\n";
  return 0;
}
