#pragma once
// Shared plumbing for the benchmark harness binaries.
//
// Every bench accepts:
//   --chips=N      Monte-Carlo dies per circuit (paper: 10,000; defaults
//                  here are smaller so the whole suite finishes in minutes —
//                  yields/iteration counts are unbiased, only the confidence
//                  interval shrinks with N; see EXPERIMENTS.md)
//   --circuits=a,b comma-separated subset of the 8 paper benchmarks
//   --seed=S       master seed
//   --threads=N    worker threads for the flow-driven benches (0 = all
//                  cores; results are identical for any value — DESIGN.md
//                  §8; the pure-solver ablations ignore it)

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/problem.hpp"
#include "core/table.hpp"
#include "netlist/generator.hpp"
#include "timing/model.hpp"

namespace effitest::bench {

struct BenchArgs {
  std::size_t chips = 0;  // 0 = use the binary's default
  std::vector<std::string> circuits;
  std::uint64_t seed = 2016;
  std::size_t threads = 0;  // 0 = all cores
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--chips=", 0) == 0) {
      args.chips = static_cast<std::size_t>(std::stoul(a.substr(8)));
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = std::stoull(a.substr(7));
    } else if (a.rfind("--threads=", 0) == 0) {
      args.threads = static_cast<std::size_t>(std::stoul(a.substr(10)));
    } else if (a.rfind("--circuits=", 0) == 0) {
      std::stringstream ss(a.substr(11));
      std::string piece;
      while (std::getline(ss, piece, ',')) args.circuits.push_back(piece);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
    }
  }
  return args;
}

inline std::vector<netlist::GeneratorSpec> selected_specs(
    const BenchArgs& args) {
  std::vector<netlist::GeneratorSpec> all = netlist::paper_benchmark_specs();
  if (args.circuits.empty()) return all;
  std::vector<netlist::GeneratorSpec> out;
  for (const std::string& name : args.circuits) {
    out.push_back(netlist::paper_benchmark_spec(name));
  }
  return out;
}

/// One fully built benchmark instance.
struct Instance {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary library;
  timing::CircuitModel model;
  core::Problem problem;

  explicit Instance(const netlist::GeneratorSpec& spec,
                    double random_inflation = 1.0)
      : circuit(netlist::generate_circuit(spec)),
        library(netlist::CellLibrary::standard()),
        model(circuit.netlist, library, circuit.buffered_ffs,
              [&] {
                timing::ModelOptions o;
                o.random_inflation = random_inflation;
                return o;
              }()),
        problem(model) {}
};

inline std::string pct(double v) { return core::Table::num(v * 100.0, 2); }

}  // namespace effitest::bench
