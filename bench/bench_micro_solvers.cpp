// Micro-benchmarks (google-benchmark) for the numeric substrates that sit on
// the critical path of the Monte-Carlo experiments: Cholesky, Jacobi PCA,
// the simplex/branch&bound solver, the coordinate-descent alignment, the
// conditional-Gaussian predictor, chip sampling and buffer configuration.

#include <benchmark/benchmark.h>

#include "core/alignment.hpp"
#include "core/configurator.hpp"
#include "core/flow.hpp"
#include "linalg/decomposition.hpp"
#include "linalg/eigen.hpp"
#include "lp/solver.hpp"
#include "netlist/generator.hpp"
#include "stats/conditional.hpp"
#include "stats/rng.hpp"

namespace {

using namespace effitest;

linalg::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
  }
  linalg::Matrix spd = a * a.transposed();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_spd(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::cholesky(a));
  }
}
BENCHMARK(BM_Cholesky)->Arg(16)->Arg(64)->Arg(128);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_spd(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigen_symmetric(a));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(16)->Arg(48)->Arg(96);

void BM_SimplexLp(benchmark::State& state) {
  // Alignment-LP-shaped problem: T free, eta per path, bounded steps.
  const auto paths = static_cast<std::size_t>(state.range(0));
  lp::Model m;
  const int t = m.add_continuous(-1000.0, 1000.0, 0.0);
  stats::Rng rng(3);
  std::vector<int> etas;
  for (std::size_t p = 0; p < paths; ++p) {
    const int eta = m.add_continuous(0.0, lp::kInf, 1.0);
    const double c = rng.uniform(100.0, 200.0);
    m.add_constraint({{t, 1.0}, {eta, -1.0}}, lp::Sense::kLessEqual, c);
    m.add_constraint({{t, -1.0}, {eta, -1.0}}, lp::Sense::kLessEqual, -c);
    etas.push_back(eta);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_lp(m));
  }
}
BENCHMARK(BM_SimplexLp)->Arg(8)->Arg(32)->Arg(64);

struct FlowFixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  core::Problem problem;

  FlowFixture()
      : circuit(netlist::generate_circuit(
            netlist::paper_benchmark_spec("s9234"))),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}

  static const FlowFixture& get() {
    static const FlowFixture f;
    return f;
  }
};

void BM_ChipSampling(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  stats::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.sample_chip(rng));
  }
}
BENCHMARK(BM_ChipSampling);

void BM_AlignmentCoordinateDescent(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  stats::Rng rng(5);
  core::AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  const auto means = f.model.max_means();
  for (std::size_t i = 0; i < 6; ++i) {
    const auto p = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(means.size()) - 1));
    inst.entries.push_back(core::AlignmentEntry{
        means[p], 1.0, f.problem.src_buffer(p), f.problem.dst_buffer(p)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_alignment(inst, core::AlignMethod::kCoordinateDescent));
  }
}
BENCHMARK(BM_AlignmentCoordinateDescent);

void BM_AlignmentMilp(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  stats::Rng rng(6);
  core::AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  const auto means = f.model.max_means();
  for (std::size_t i = 0; i < 6; ++i) {
    const auto p = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(means.size()) - 1));
    inst.entries.push_back(core::AlignmentEntry{
        means[p], 1.0, f.problem.src_buffer(p), f.problem.dst_buffer(p)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_alignment(inst, core::AlignMethod::kMilpCompact));
  }
}
BENCHMARK(BM_AlignmentMilp);

void BM_ConditionalPredictor(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  const linalg::Matrix cov = f.model.max_covariance();
  const std::vector<double> means = f.model.max_means();
  std::vector<std::size_t> tested;
  for (std::size_t p = 0; p < f.model.num_pairs(); p += 7) tested.push_back(p);
  const core::DelayPredictor pred(cov, means, tested);
  std::vector<double> ml(tested.size());
  std::vector<double> mu(tested.size());
  for (std::size_t t = 0; t < tested.size(); ++t) {
    ml[t] = means[tested[t]] - 1.0;
    mu[t] = means[tested[t]] + 1.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.predict(ml, mu));
  }
}
BENCHMARK(BM_ConditionalPredictor);

void BM_BufferConfiguration(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  const auto means = f.model.max_means();
  const auto sigmas = f.model.max_sigmas();
  std::vector<double> lower(means.size());
  std::vector<double> upper(means.size());
  for (std::size_t p = 0; p < means.size(); ++p) {
    lower[p] = means[p] - sigmas[p];
    upper[p] = means[p] + sigmas[p];
  }
  const double td = *std::max_element(means.begin(), means.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::configure_buffers(f.problem, td, lower, upper, {}));
  }
}
BENCHMARK(BM_BufferConfiguration);

void BM_CovarianceBuild(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.max_covariance());
  }
}
BENCHMARK(BM_CovarianceBuild);

}  // namespace

BENCHMARK_MAIN();
