// Micro-benchmarks (google-benchmark) for the numeric substrates that sit on
// the critical path of the Monte-Carlo experiments: the blocked linalg
// kernels against their seed naive references, Cholesky, Jacobi PCA, the
// simplex/branch&bound solver, the coordinate-descent alignment, the
// conditional-Gaussian predictor, chip sampling and buffer configuration.
//
// Besides the google-benchmark cases, a manual blocked-vs-naive comparison
// runs at the end and emits BENCH_micro_solvers.json with the measured
// speedups. The "blocked Cholesky+solve >= 2x at n >= 256" acceptance
// numbers are quoted from those records; CI schema-validates the file but
// does not gate on the timings (shared runners are too noisy — the
// baseline gate pins the deterministic table1 metrics instead).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "io/bench_json.hpp"
#include "core/alignment.hpp"
#include "core/configurator.hpp"
#include "core/flow.hpp"
#include "core/table.hpp"
#include "linalg/decomposition.hpp"
#include "linalg/eigen.hpp"
#include "linalg/kernels.hpp"
#include "lp/solver.hpp"
#include "netlist/generator.hpp"
#include "stats/conditional.hpp"
#include "stats/rng.hpp"

namespace {

using namespace effitest;

linalg::Matrix random_dense(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  stats::Rng rng(seed);
  linalg::Matrix a(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) a(r, c) = rng.normal();
  }
  return a;
}

linalg::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  linalg::Matrix spd = linalg::kernels::syrk(random_dense(n, n, seed));
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_spd(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::cholesky(a));
  }
}
BENCHMARK(BM_Cholesky)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Arg(384);

void BM_CholeskyNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_spd(n, 1);
  for (auto _ : state) {
    linalg::Matrix l;
    benchmark::DoNotOptimize(linalg::kernels::reference_cholesky(a, 0.0, l));
  }
}
BENCHMARK(BM_CholeskyNaive)->Arg(128)->Arg(256)->Arg(384);

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_dense(n, n, 21);
  const linalg::Matrix b = random_dense(n, n, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kernels::matmul(a, b));
  }
}
BENCHMARK(BM_GemmBlocked)->Arg(128)->Arg(256)->Arg(384);

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_dense(n, n, 21);
  const linalg::Matrix b = random_dense(n, n, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kernels::reference_matmul(a, b));
  }
}
BENCHMARK(BM_GemmNaive)->Arg(128)->Arg(256)->Arg(384);

void BM_SyrkBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_dense(n, n, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kernels::syrk(a));
  }
}
BENCHMARK(BM_SyrkBlocked)->Arg(128)->Arg(256)->Arg(384);

void BM_TrsmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix l;
  (void)linalg::kernels::reference_cholesky(random_spd(n, 24), 0.0, l);
  const linalg::Matrix rhs = random_dense(n, n, 25);
  for (auto _ : state) {
    linalg::Matrix x = rhs;
    linalg::kernels::trsm_lower(l, x);
    linalg::kernels::trsm_lower_transposed(l, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_TrsmBlocked)->Arg(128)->Arg(256)->Arg(384);

void BM_TrsmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix l;
  (void)linalg::kernels::reference_cholesky(random_spd(n, 24), 0.0, l);
  const linalg::Matrix rhs = random_dense(n, n, 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linalg::kernels::reference_cholesky_solve(l, rhs));
  }
}
BENCHMARK(BM_TrsmNaive)->Arg(128)->Arg(256)->Arg(384);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_spd(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigen_symmetric(a));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(16)->Arg(48)->Arg(96);

void BM_SimplexLp(benchmark::State& state) {
  // Alignment-LP-shaped problem: T free, eta per path, bounded steps.
  const auto paths = static_cast<std::size_t>(state.range(0));
  lp::Model m;
  const int t = m.add_continuous(-1000.0, 1000.0, 0.0);
  stats::Rng rng(3);
  std::vector<int> etas;
  for (std::size_t p = 0; p < paths; ++p) {
    const int eta = m.add_continuous(0.0, lp::kInf, 1.0);
    const double c = rng.uniform(100.0, 200.0);
    m.add_constraint({{t, 1.0}, {eta, -1.0}}, lp::Sense::kLessEqual, c);
    m.add_constraint({{t, -1.0}, {eta, -1.0}}, lp::Sense::kLessEqual, -c);
    etas.push_back(eta);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_lp(m));
  }
}
BENCHMARK(BM_SimplexLp)->Arg(8)->Arg(32)->Arg(64);

struct FlowFixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  core::Problem problem;

  FlowFixture()
      : circuit(netlist::generate_circuit(
            netlist::paper_benchmark_spec("s9234"))),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}

  static const FlowFixture& get() {
    static const FlowFixture f;
    return f;
  }
};

void BM_ChipSampling(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  stats::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.sample_chip(rng));
  }
}
BENCHMARK(BM_ChipSampling);

void BM_AlignmentCoordinateDescent(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  stats::Rng rng(5);
  core::AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  const auto means = f.model.max_means();
  for (std::size_t i = 0; i < 6; ++i) {
    const auto p = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(means.size()) - 1));
    inst.entries.push_back(core::AlignmentEntry{
        means[p], 1.0, f.problem.src_buffer(p), f.problem.dst_buffer(p)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_alignment(inst, core::AlignMethod::kCoordinateDescent));
  }
}
BENCHMARK(BM_AlignmentCoordinateDescent);

void BM_AlignmentMilp(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  stats::Rng rng(6);
  core::AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  const auto means = f.model.max_means();
  for (std::size_t i = 0; i < 6; ++i) {
    const auto p = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(means.size()) - 1));
    inst.entries.push_back(core::AlignmentEntry{
        means[p], 1.0, f.problem.src_buffer(p), f.problem.dst_buffer(p)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_alignment(inst, core::AlignMethod::kMilpCompact));
  }
}
BENCHMARK(BM_AlignmentMilp);

void BM_ConditionalPredictor(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  const linalg::Matrix cov = f.model.max_covariance();
  const std::vector<double> means = f.model.max_means();
  std::vector<std::size_t> tested;
  for (std::size_t p = 0; p < f.model.num_pairs(); p += 7) tested.push_back(p);
  const core::DelayPredictor pred(cov, means, tested);
  std::vector<double> ml(tested.size());
  std::vector<double> mu(tested.size());
  for (std::size_t t = 0; t < tested.size(); ++t) {
    ml[t] = means[tested[t]] - 1.0;
    mu[t] = means[tested[t]] + 1.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.predict(ml, mu));
  }
}
BENCHMARK(BM_ConditionalPredictor);

void BM_BufferConfiguration(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  const auto means = f.model.max_means();
  const auto sigmas = f.model.max_sigmas();
  std::vector<double> lower(means.size());
  std::vector<double> upper(means.size());
  for (std::size_t p = 0; p < means.size(); ++p) {
    lower[p] = means[p] - sigmas[p];
    upper[p] = means[p] + sigmas[p];
  }
  const double td = *std::max_element(means.begin(), means.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::configure_buffers(f.problem, td, lower, upper, {}));
  }
}
BENCHMARK(BM_BufferConfiguration);

void BM_CovarianceBuild(benchmark::State& state) {
  const FlowFixture& f = FlowFixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.max_covariance());
  }
}
BENCHMARK(BM_CovarianceBuild);

// -- Manual blocked-vs-naive comparison + JSON emission ---------------------

using Clock = std::chrono::steady_clock;

/// Best-of-`reps` wall time of `body` in seconds.
template <typename Body>
double best_seconds(std::size_t reps, Body&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    body();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

/// The acceptance comparison: factor an SPD matrix and solve it against n
/// right-hand sides, seed path (naive Cholesky + per-column substitution)
/// versus kernel path (blocked Cholesky + multi-RHS TRSM) at the harness
/// --threads value. Emits one JSON record per measurement plus the speedup.
void report_kernels_vs_naive(io::JsonReporter& json, std::size_t threads) {
  std::cout << "\n=== blocked kernels vs. seed naive (Cholesky + solve, "
               "n right-hand sides) ===\n";
  const linalg::kernels::KernelOptions opts{threads};
  core::Table table({"n", "naive(ms)", "blocked(ms)", "speedup"});
  for (std::size_t n : {std::size_t{128}, std::size_t{256}, std::size_t{384}}) {
    const linalg::Matrix spd = random_spd(n, 31);
    const linalg::Matrix rhs = random_dense(n, n, 32);
    const std::size_t reps = n <= 128 ? 9 : 5;
    const double naive = best_seconds(reps, [&] {
      linalg::Matrix l;
      if (!linalg::kernels::reference_cholesky(spd, 0.0, l)) std::abort();
      benchmark::DoNotOptimize(
          linalg::kernels::reference_cholesky_solve(l, rhs));
    });
    const double blocked = best_seconds(reps, [&] {
      linalg::Matrix l;
      if (!linalg::kernels::cholesky_blocked(spd, 0.0, l, opts)) std::abort();
      linalg::Matrix x = rhs;
      linalg::kernels::trsm_lower(l, x, opts);
      linalg::kernels::trsm_lower_transposed(l, x, opts);
      benchmark::DoNotOptimize(x);
    });
    const double speedup = naive / blocked;
    table.add_row({core::Table::num(n), core::Table::num(naive * 1e3, 3),
                   core::Table::num(blocked * 1e3, 3),
                   core::Table::num(speedup, 2)});
    const std::string size = "n" + std::to_string(n);
    json.add(size, "cholesky_solve_naive_seconds", naive, naive);
    json.add(size, "cholesky_solve_blocked_seconds", blocked, blocked);
    json.add(size, "cholesky_solve_speedup", speedup, naive + blocked);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the harness-wide --threads flag (recorded in the JSON header)
  // before google-benchmark sees the argument list.
  std::size_t threads = 0;
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--threads=", 0) == 0) {
      threads = static_cast<std::size_t>(std::stoul(a.substr(10)));
    } else {
      kept.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(kept.size());
  argv = kept.data();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  effitest::io::JsonReporter json("micro_solvers", threads);
  report_kernels_vs_naive(json, threads);
  std::cout << "machine-readable output: " << json.write() << "\n";
  return 0;
}
