// Ablations over the flow-level design choices DESIGN.md calls out:
//   1) empty-slot filling on/off (§3.2 last paragraph),
//   2) middle-out weighting k0 >> kd vs uniform weights (§3.3, Fig. 6e),
//   3) resolution epsilon sweep (test cost vs measurement accuracy),
//   4) PCA coverage sweep (npt vs yield drop trade-off).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace effitest;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t chips = args.chips > 0 ? args.chips : 150;
  const std::string circuit =
      args.circuits.empty() ? "s13207" : args.circuits.front();

  std::cout << "=== Flow ablations on " << circuit << " (chips=" << chips
            << ") ===\n\n";
  const bench::Instance inst(netlist::paper_benchmark_spec(circuit));

  const auto run = [&](core::FlowOptions opts) {
    opts.chips = chips;
    opts.seed = args.seed;
    opts.threads = args.threads;
    return core::run_flow(inst.problem, opts);
  };

  {
    std::cout << "--- 1) empty-slot filling (paths measured for free) ---\n";
    core::Table t({"variant", "npt", "ta", "yt(%)", "yi-yt(%)"});
    for (bool fill : {true, false}) {
      core::FlowOptions o;
      o.fill_slots = fill;
      const core::FlowResult r = run(o);
      t.add_row({fill ? "fill on (paper)" : "fill off",
                 core::Table::num(r.metrics.npt),
                 core::Table::num(r.metrics.ta, 2),
                 bench::pct(r.metrics.yield_proposed),
                 bench::pct(r.metrics.yield_drop)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n--- 2) center weighting: middle-out k0 >> kd vs uniform "
                 "---\n";
    core::Table t({"variant", "ta", "tv"});
    for (bool middle_out : {true, false}) {
      core::FlowOptions o;
      if (middle_out) {
        o.test.k0 = 1000.0;
        o.test.kd = 1.0;
      } else {
        o.test.k0 = 1.0;  // uniform weights: the Fig. 6e degenerate case
        o.test.kd = 0.0;
      }
      const core::FlowResult r = run(o);
      t.add_row({middle_out ? "middle-out (paper)" : "uniform",
                 core::Table::num(r.metrics.ta, 2),
                 core::Table::num(r.metrics.tv, 2)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n--- 3) resolution epsilon sweep ---\n";
    core::Table t({"epsilon(ps)", "t'v", "tv", "ta", "yt(%)"});
    for (double eps : {2.0, 1.0, 0.5, 0.25}) {
      core::FlowOptions o;
      o.epsilon_override = eps;
      const core::FlowResult r = run(o);
      t.add_row({core::Table::num(eps, 2),
                 core::Table::num(r.metrics.tv_pathwise, 2),
                 core::Table::num(r.metrics.tv, 2),
                 core::Table::num(r.metrics.ta, 2),
                 bench::pct(r.metrics.yield_proposed)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n--- 4) PCA coverage sweep (tested paths vs accuracy) "
                 "---\n";
    core::Table t({"coverage", "npt", "ta", "yt(%)", "yi-yt(%)"});
    for (double cov : {0.90, 0.95, 0.98, 0.995}) {
      core::FlowOptions o;
      o.grouping.use_kaiser = false;  // sweep the coverage rule explicitly
      o.grouping.pca_coverage = cov;
      const core::FlowResult r = run(o);
      t.add_row({core::Table::num(cov, 3), core::Table::num(r.metrics.npt),
                 core::Table::num(r.metrics.ta, 2),
                 bench::pct(r.metrics.yield_proposed),
                 bench::pct(r.metrics.yield_drop)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n--- 5) logic-masking exclusions (paths that cannot share "
                 "a batch) ---\n";
    core::Table t({"variant", "batches", "ta", "tv"});
    for (bool excl : {false, true}) {
      core::FlowOptions o;
      if (excl) {
        o.batching.exclusions = core::map_edge_exclusions(
            inst.model, inst.circuit.critical_edges,
            inst.circuit.exclusive_edge_pairs);
      }
      const core::FlowResult r = run(o);
      t.add_row({excl ? "with exclusions" : "no exclusions",
                 core::Table::num(r.metrics.num_batches),
                 core::Table::num(r.metrics.ta, 2),
                 core::Table::num(r.metrics.tv, 2)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n--- 6) analytic (Clark SSTA) vs Monte-Carlo period "
                 "calibration ---\n";
    stats::Rng rng(args.seed ^ 0x55);
    const double t1_mc = core::period_quantile(inst.problem, 0.5, 3000, rng);
    const double t1_an = core::period_quantile_estimate(inst.problem, 0.5);
    stats::Rng rng2(args.seed ^ 0x55);
    const double t2_mc =
        core::period_quantile(inst.problem, 0.8413, 3000, rng2);
    const double t2_an = core::period_quantile_estimate(inst.problem, 0.8413);
    core::Table t({"quantile", "Monte-Carlo (ps)", "Clark SSTA (ps)"});
    t.add_row({"T1 (50%)", core::Table::num(t1_mc, 2),
               core::Table::num(t1_an, 2)});
    t.add_row({"T2 (84.13%)", core::Table::num(t2_mc, 2),
               core::Table::num(t2_an, 2)});
    t.print(std::cout);
  }
  return 0;
}
