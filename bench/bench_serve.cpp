// bench_serve — throughput and latency of the TCP serve mode
// (src/net/serve.hpp) under N concurrent in-process loopback clients.
//
// One TuneServeLoop on an ephemeral 127.0.0.1 port serves
// clients × sessions-per-client whole tuning sessions of --chips dies
// each; every client thread runs net::run_loopback_client back to back
// and verifies it got one report line per chip. The serve metrics
// (sessions/sec, per-session latency p50/p90/p99) land in
// BENCH_serve.json (effitest-bench-v1, validated by
// tools/check_bench_json.py against bench/baselines/serve.json).
//
//   --clients=N    concurrent client threads        (default 8)
//   --sessions=N   sessions each client runs        (default 8)
//   --chips=N      dies per session                 (default 4)
//   --workers=N    serve-loop worker threads        (default 8)
//   --fleet[=K]    route through a FleetBalancer over K in-process
//                  serve workers (default K=2) instead of one loop;
//                  results land in BENCH_fleet.json
//   plus the shared --circuits/--seed of bench_common.hpp (first circuit
//   only; default s9234).
//
// stimuli_per_session is deterministic for fixed (circuit, seed, chips) —
// the sessions replay the same dies, through the balancer or not — so the
// baseline gates it exactly; sessions_per_sec is wall-clock and gated
// loosely. The fleet mode's gap to the serve baseline is the relay tax.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/tuner_service.hpp"
#include "fleet/balancer.hpp"
#include "fleet/registry.hpp"
#include "io/bench_json.hpp"
#include "net/client.hpp"
#include "net/serve.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace effitest;

struct ServeBenchArgs {
  std::size_t clients = 8;
  std::size_t sessions = 8;
  std::size_t chips = 4;
  std::size_t workers = 8;
  bool fleet = false;
  std::size_t fleet_workers = 2;
};

}  // namespace

int main(int argc, char** argv) {
  // bench_common's parser warns on the serve-specific options; strip them
  // first and hand it the rest.
  ServeBenchArgs sargs;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--clients=", 0) == 0) {
      sargs.clients = std::stoul(a.substr(10));
    } else if (a.rfind("--sessions=", 0) == 0) {
      sargs.sessions = std::stoul(a.substr(11));
    } else if (a.rfind("--workers=", 0) == 0) {
      sargs.workers = std::stoul(a.substr(10));
    } else if (a == "--fleet") {
      sargs.fleet = true;
    } else if (a.rfind("--fleet=", 0) == 0) {
      sargs.fleet = true;
      sargs.fleet_workers = std::stoul(a.substr(8));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::BenchArgs args =
      bench::parse_args(static_cast<int>(passthrough.size()),
                        passthrough.data());
  if (args.chips != 0) sargs.chips = args.chips;
  if (args.circuits.empty()) args.circuits = {"s9234"};

  const netlist::GeneratorSpec spec =
      netlist::paper_benchmark_spec(args.circuits.front());
  const bench::Instance instance(spec);
  core::FlowOptions fopts;
  fopts.seed = args.seed;
  fopts.threads = 1;  // the serve loop provides the parallelism here
  const core::TunerService service(instance.problem, fopts);

  net::ServeOptions sopts;
  sopts.workers = sargs.workers;
  sopts.io_timeout_seconds = 60.0;

  // Either one direct serve loop, or K loops behind a FleetBalancer — the
  // clients drive whatever `port` points at and cannot tell the difference
  // (that indistinguishability is the fleet's whole contract).
  net::TuneServeLoop loop(service, sopts);
  std::vector<std::unique_ptr<net::TuneServeLoop>> fleet_loops;
  std::unique_ptr<fleet::WorkerRegistry> registry;
  std::unique_ptr<fleet::FleetBalancer> balancer;
  std::uint16_t port = 0;
  if (sargs.fleet) {
    for (std::size_t k = 0; k < sargs.fleet_workers; ++k) {
      fleet_loops.push_back(
          std::make_unique<net::TuneServeLoop>(service, sopts));
      fleet_loops.back()->start();
    }
    registry = std::make_unique<fleet::WorkerRegistry>();
    for (const auto& w : fleet_loops) {
      (void)registry->add_worker({w->host(), w->port()});
    }
    fleet::BalancerOptions bopts;
    bopts.relay_workers = sargs.workers;
    bopts.io_timeout_seconds = 60.0;
    balancer = std::make_unique<fleet::FleetBalancer>(*registry, bopts);
    balancer->start();
    port = balancer->port();
    std::cout << "bench_serve: " << spec.name << ", " << sargs.clients
              << " clients x " << sargs.sessions << " sessions x "
              << sargs.chips << " chips, balancer over "
              << sargs.fleet_workers << " workers on " << balancer->host()
              << ":" << port << "\n";
  } else {
    loop.start();
    port = loop.port();
    std::cout << "bench_serve: " << spec.name << ", " << sargs.clients
              << " clients x " << sargs.sessions << " sessions x "
              << sargs.chips << " chips, " << sargs.workers << " workers on "
              << loop.host() << ":" << loop.port() << "\n";
  }

  std::atomic<std::size_t> bad_sessions{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(sargs.clients);
    for (std::size_t i = 0; i < sargs.clients; ++i) {
      clients.emplace_back([&] {
        for (std::size_t s = 0; s < sargs.sessions; ++s) {
          net::ClientOptions copts;
          copts.chips = sargs.chips;
          try {
            const net::ClientResult r = net::run_loopback_client(
                "127.0.0.1", port, instance.problem, copts);
            if (r.report_lines.size() != sargs.chips) {
              bad_sessions.fetch_add(1);
            }
          } catch (const std::exception& e) {
            bad_sessions.fetch_add(1);
            std::cerr << "client session failed: " << e.what() << "\n";
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  std::uint64_t completed = 0;
  std::uint64_t stimuli = 0;
  std::uint64_t chips_tuned = 0;
  double sessions_per_sec = 0.0;
  double wall_seconds = 0.0;
  obs::HistogramSnapshot latency;
  if (sargs.fleet) {
    balancer->request_drain();
    balancer->wait();
    for (const auto& w : fleet_loops) w->request_drain();
    for (const auto& w : fleet_loops) w->wait();
    // Throughput and wall-clock are the balancer's (the client-visible
    // tier); stimuli, chips and per-session latency live on the workers
    // and aggregate by summing — bucketed histograms merge exactly.
    const obs::RegistrySnapshot fm = balancer->metrics();
    completed = fm.counter(fleet::kFleetSessionsCompleted);
    sessions_per_sec = fm.gauge(fleet::kFleetSessionsPerSec);
    wall_seconds = fm.gauge(fleet::kFleetWallSeconds);
    for (const auto& w : fleet_loops) {
      const obs::RegistrySnapshot wm = w->metrics();
      stimuli += wm.counter(net::kMetricStimuli);
      chips_tuned += wm.counter(net::kMetricChipsTuned);
      if (const obs::HistogramSnapshot* h =
              wm.histogram(net::kMetricSessionLatency)) {
        for (std::size_t b = 0; b < obs::HistogramSnapshot::kBuckets; ++b) {
          latency.buckets[b] += h->buckets[b];
        }
        latency.count += h->count;
      }
    }
  } else {
    loop.request_drain();
    loop.wait();
    const obs::RegistrySnapshot m = loop.metrics();
    completed = m.counter(net::kMetricSessionsCompleted);
    sessions_per_sec = m.gauge(net::kMetricSessionsPerSec);
    wall_seconds = m.gauge(net::kMetricWallSeconds);
    stimuli = m.counter(net::kMetricStimuli);
    chips_tuned = m.counter(net::kMetricChipsTuned);
    if (const obs::HistogramSnapshot* h =
            m.histogram(net::kMetricSessionLatency)) {
      latency = *h;
    }
  }

  const std::size_t expected = sargs.clients * sargs.sessions;
  if (bad_sessions.load() != 0 || completed != expected) {
    std::cerr << "bench_serve: " << bad_sessions.load()
              << " bad session(s), " << completed << "/" << expected
              << " completed — not recording\n";
    return 1;
  }

  const auto latency_ms = [&latency](double q) {
    return latency.quantile(q) * 1e3;
  };
  const double stimuli_per_session = double(stimuli) / double(completed);

  core::Table t({"metric", "value"});
  t.add_row({"sessions", core::Table::num(double(completed), 0)});
  t.add_row({"sessions/s", core::Table::num(sessions_per_sec, 1)});
  t.add_row({"stimuli/session", core::Table::num(stimuli_per_session, 2)});
  t.add_row({"latency p50 (ms)", core::Table::num(latency_ms(0.50), 3)});
  t.add_row({"latency p90 (ms)", core::Table::num(latency_ms(0.90), 3)});
  t.add_row({"latency p99 (ms)", core::Table::num(latency_ms(0.99), 3)});
  t.print(std::cout);

  io::JsonReporter json(sargs.fleet ? "fleet" : "serve", sargs.workers);
  const std::string circuit = spec.name;
  json.add(circuit, "sessions_per_sec", sessions_per_sec, wall_seconds);
  json.add(circuit, "stimuli_per_session", stimuli_per_session, wall_seconds);
  json.add(circuit, "chips_tuned", double(chips_tuned), wall_seconds);
  json.add(circuit, "latency_p50_ms", latency_ms(0.50), wall_seconds);
  json.add(circuit, "latency_p90_ms", latency_ms(0.90), wall_seconds);
  json.add(circuit, "latency_p99_ms", latency_ms(0.99), wall_seconds);
  json.write(".");
  return 0;
}
