// bench_serve — throughput and latency of the TCP serve mode
// (src/net/serve.hpp) under N concurrent in-process loopback clients.
//
// One TuneServeLoop on an ephemeral 127.0.0.1 port serves
// clients × sessions-per-client whole tuning sessions of --chips dies
// each; every client thread runs net::run_loopback_client back to back
// and verifies it got one report line per chip. The serve metrics
// (sessions/sec, per-session latency p50/p90/p99) land in
// BENCH_serve.json (effitest-bench-v1, validated by
// tools/check_bench_json.py against bench/baselines/serve.json).
//
//   --clients=N    concurrent client threads        (default 8)
//   --sessions=N   sessions each client runs        (default 8)
//   --chips=N      dies per session                 (default 4)
//   --workers=N    serve-loop worker threads        (default 8)
//   plus the shared --circuits/--seed of bench_common.hpp (first circuit
//   only; default s9234).
//
// stimuli_per_session is deterministic for fixed (circuit, seed, chips) —
// the sessions replay the same dies — so the baseline gates it exactly;
// sessions_per_sec is wall-clock and gated loosely.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/tuner_service.hpp"
#include "io/bench_json.hpp"
#include "net/client.hpp"
#include "net/serve.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace effitest;

struct ServeBenchArgs {
  std::size_t clients = 8;
  std::size_t sessions = 8;
  std::size_t chips = 4;
  std::size_t workers = 8;
};

}  // namespace

int main(int argc, char** argv) {
  // bench_common's parser warns on the serve-specific options; strip them
  // first and hand it the rest.
  ServeBenchArgs sargs;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--clients=", 0) == 0) {
      sargs.clients = std::stoul(a.substr(10));
    } else if (a.rfind("--sessions=", 0) == 0) {
      sargs.sessions = std::stoul(a.substr(11));
    } else if (a.rfind("--workers=", 0) == 0) {
      sargs.workers = std::stoul(a.substr(10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::BenchArgs args =
      bench::parse_args(static_cast<int>(passthrough.size()),
                        passthrough.data());
  if (args.chips != 0) sargs.chips = args.chips;
  if (args.circuits.empty()) args.circuits = {"s9234"};

  const netlist::GeneratorSpec spec =
      netlist::paper_benchmark_spec(args.circuits.front());
  const bench::Instance instance(spec);
  core::FlowOptions fopts;
  fopts.seed = args.seed;
  fopts.threads = 1;  // the serve loop provides the parallelism here
  const core::TunerService service(instance.problem, fopts);

  net::ServeOptions sopts;
  sopts.workers = sargs.workers;
  sopts.io_timeout_seconds = 60.0;
  net::TuneServeLoop loop(service, sopts);
  loop.start();
  std::cout << "bench_serve: " << spec.name << ", " << sargs.clients
            << " clients x " << sargs.sessions << " sessions x "
            << sargs.chips << " chips, " << sargs.workers << " workers on "
            << loop.host() << ":" << loop.port() << "\n";

  std::atomic<std::size_t> bad_sessions{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(sargs.clients);
    for (std::size_t i = 0; i < sargs.clients; ++i) {
      clients.emplace_back([&] {
        for (std::size_t s = 0; s < sargs.sessions; ++s) {
          net::ClientOptions copts;
          copts.chips = sargs.chips;
          try {
            const net::ClientResult r = net::run_loopback_client(
                "127.0.0.1", loop.port(), instance.problem, copts);
            if (r.report_lines.size() != sargs.chips) {
              bad_sessions.fetch_add(1);
            }
          } catch (const std::exception& e) {
            bad_sessions.fetch_add(1);
            std::cerr << "client session failed: " << e.what() << "\n";
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  loop.request_drain();
  loop.wait();

  const obs::RegistrySnapshot m = loop.metrics();
  const std::uint64_t completed = m.counter(net::kMetricSessionsCompleted);
  const std::size_t expected = sargs.clients * sargs.sessions;
  if (bad_sessions.load() != 0 || completed != expected) {
    std::cerr << "bench_serve: " << bad_sessions.load()
              << " bad session(s), " << completed << "/" << expected
              << " completed — not recording\n";
    return 1;
  }

  const obs::HistogramSnapshot* latency =
      m.histogram(net::kMetricSessionLatency);
  const auto latency_ms = [latency](double q) {
    return latency == nullptr ? 0.0 : latency->quantile(q) * 1e3;
  };
  const double sessions_per_sec = m.gauge(net::kMetricSessionsPerSec);
  const double wall_seconds = m.gauge(net::kMetricWallSeconds);
  const double stimuli_per_session =
      double(m.counter(net::kMetricStimuli)) / double(completed);

  core::Table t({"metric", "value"});
  t.add_row({"sessions", core::Table::num(double(completed), 0)});
  t.add_row({"sessions/s", core::Table::num(sessions_per_sec, 1)});
  t.add_row({"stimuli/session", core::Table::num(stimuli_per_session, 2)});
  t.add_row({"latency p50 (ms)", core::Table::num(latency_ms(0.50), 3)});
  t.add_row({"latency p90 (ms)", core::Table::num(latency_ms(0.90), 3)});
  t.add_row({"latency p99 (ms)", core::Table::num(latency_ms(0.99), 3)});
  t.print(std::cout);

  io::JsonReporter json("serve", sargs.workers);
  const std::string circuit = spec.name;
  json.add(circuit, "sessions_per_sec", sessions_per_sec, wall_seconds);
  json.add(circuit, "stimuli_per_session", stimuli_per_session, wall_seconds);
  json.add(circuit, "chips_tuned",
           double(m.counter(net::kMetricChipsTuned)), wall_seconds);
  json.add(circuit, "latency_p50_ms", latency_ms(0.50), wall_seconds);
  json.add(circuit, "latency_p90_ms", latency_ms(0.90), wall_seconds);
  json.add(circuit, "latency_p99_ms", latency_ms(0.99), wall_seconds);
  json.write(".");
  return 0;
}
