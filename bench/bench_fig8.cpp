// Reproduces Figure 8 of the paper: "Test comparison without statistical
// prediction" — iterations per path in three test regimes, with every
// monitored path tested (no conditional prediction):
//   1) path-wise frequency stepping (refs. [2,6,8,9]),
//   2) path test multiplexing with all buffers frozen at zero,
//   3) multiplexing + delay-range alignment by tuning buffers (proposed).
// Expected ordering on every circuit: path-wise > multiplexing > proposed.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace effitest;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t chips = args.chips > 0 ? args.chips : 100;

  std::cout << "=== Figure 8: iterations per path without statistical "
               "prediction ===\n"
            << "chips per circuit: " << chips << " (paper: 10000)\n\n";

  core::Table table(
      {"Circuit", "path-wise", "multiplexing", "proposed (aligned)"});

  for (const netlist::GeneratorSpec& spec : bench::selected_specs(args)) {
    const bench::Instance inst(spec);

    core::FlowOptions base;
    base.chips = chips;
    base.seed = args.seed;
    base.threads = args.threads;
    base.use_prediction = false;  // test all np paths
    base.evaluate_yield = false;  // iterations only

    core::FlowOptions frozen = base;
    frozen.test.align_with_buffers = false;

    const core::FlowResult mux = core::run_flow(inst.problem, frozen);
    // Batches/hold bounds are identical for both regimes; reuse them.
    const core::FlowResult aligned =
        core::run_flow(inst.problem, base, mux.artifacts.get());

    table.add_row({
        spec.name,
        core::Table::num(mux.metrics.tv_pathwise, 2),
        core::Table::num(mux.metrics.tv, 2),
        core::Table::num(aligned.metrics.tv, 2),
    });
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: path-wise ~8.3-9.5, multiplexing and "
               "alignment successively lower\n(alignment reduction alone = "
               "column rv of Table 1: 57.6-75.2%).\n";
  return 0;
}
