// Ablation: quality and cost of the alignment solvers (DESIGN.md §5).
//
// The paper solves eqs. 7-14 with Gurobi per tester iteration. This build
// offers three solvers; the Monte-Carlo loop uses coordinate descent for
// speed. This bench quantifies, over randomly sampled mid-test alignment
// instances:
//   * the optimality gap of coordinate descent vs. the exact compact MILP,
//   * the agreement of the paper's literal big-M MILP with the compact MILP,
//   * wall-clock per solve for each method.

#include <chrono>

#include "bench_common.hpp"
#include "core/alignment.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace effitest;
  using Clock = std::chrono::steady_clock;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t instances = args.chips > 0 ? args.chips : 150;

  std::cout << "=== Ablation: alignment solver quality (CD vs exact MILP) "
               "===\n"
            << "instances: " << instances << "\n\n";

  const netlist::GeneratorSpec spec = netlist::paper_benchmark_spec("s13207");
  const bench::Instance inst(spec);
  stats::Rng rng(args.seed);

  const auto means = inst.model.max_means();
  const auto sigmas = inst.model.max_sigmas();

  double gap_sum = 0.0;
  double gap_max = 0.0;
  std::size_t cd_wins_or_ties = 0;
  double bigm_disagreement = 0.0;
  double t_cd = 0.0;
  double t_compact = 0.0;
  double t_bigm = 0.0;

  for (std::size_t k = 0; k < instances; ++k) {
    // Random mid-test state: 2-6 unresolved paths with shrunken ranges.
    core::AlignmentInstance ai;
    ai.problem = &inst.problem;
    ai.current_steps = inst.problem.neutral_steps();
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    std::vector<double> centers;
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(means.size()) - 1));
      centers.push_back(means[p] + rng.normal(0.0, sigmas[p]));
    }
    const std::vector<double> w = core::middle_out_weights(centers, 1000.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(means.size()) - 1));
      ai.entries.push_back(core::AlignmentEntry{
          centers[i], w[i], inst.problem.src_buffer(p),
          inst.problem.dst_buffer(p)});
    }

    const auto t0 = Clock::now();
    const auto cd =
        core::solve_alignment(ai, core::AlignMethod::kCoordinateDescent);
    const auto t1 = Clock::now();
    const auto compact =
        core::solve_alignment(ai, core::AlignMethod::kMilpCompact);
    const auto t2 = Clock::now();
    const auto bigm = core::solve_alignment(ai, core::AlignMethod::kMilpBigM);
    const auto t3 = Clock::now();

    t_cd += std::chrono::duration<double>(t1 - t0).count();
    t_compact += std::chrono::duration<double>(t2 - t1).count();
    t_bigm += std::chrono::duration<double>(t3 - t2).count();

    const double denom = std::max(compact.objective, 1e-9);
    const double gap = (cd.objective - compact.objective) / denom;
    gap_sum += std::max(gap, 0.0);
    gap_max = std::max(gap_max, gap);
    if (cd.objective <= compact.objective + 1e-9) ++cd_wins_or_ties;
    bigm_disagreement = std::max(
        bigm_disagreement, std::abs(bigm.objective - compact.objective));
  }

  core::Table table({"metric", "value"});
  const double n = static_cast<double>(instances);
  table.add_row({"CD mean relative gap (%)",
                 core::Table::num(gap_sum / n * 100.0, 3)});
  table.add_row({"CD max relative gap (%)",
                 core::Table::num(gap_max * 100.0, 3)});
  table.add_row({"CD exact-optimal instances",
                 core::Table::num(cd_wins_or_ties) + "/" +
                     core::Table::num(instances)});
  table.add_row({"big-M vs compact max |diff| (ps)",
                 core::Table::num(bigm_disagreement, 6)});
  table.add_row({"CD avg time (us)", core::Table::num(t_cd / n * 1e6, 2)});
  table.add_row(
      {"compact MILP avg time (us)", core::Table::num(t_compact / n * 1e6, 2)});
  table.add_row(
      {"big-M MILP avg time (us)", core::Table::num(t_bigm / n * 1e6, 2)});
  table.print(std::cout);
  std::cout << "\nInterpretation: both MILP formulations must agree (the "
               "indicator variables of\neqs. 8-13 are redundant for "
               "minimization); CD trades a small objective gap for\norders "
               "of magnitude in speed, which is what makes 10k-chip "
               "Monte-Carlo sweeps cheap.\n";
  return 0;
}
