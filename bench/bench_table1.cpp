// Reproduces Table 1 of the paper: "Test Results With Delay Alignment and
// Statistical Prediction".
//
// Columns, as in the paper:
//   ns, ng     flip-flops / logic gates of the circuit
//   nb         inserted tuning buffers
//   np         paths whose delays are required for buffer configuration
//   npt        paths actually tested (PCA selection + filled slots)
//   ta, tv     frequency-stepping iterations per chip / per tested path
//   t'a, t'v   path-wise baseline iterations per chip / per path
//   ra, rv     reduction ratios (%)
//   Tp, Tt, Ts runtimes: offline prep / per-chip (T,x) computation /
//              per-chip final buffer configuration
//
// Absolute runtimes depend on the host; the iteration columns are the
// reproduction targets (ra > 94% on every circuit in the paper).

#include "bench_common.hpp"
#include "io/bench_json.hpp"
#include "core/campaign.hpp"

int main(int argc, char** argv) {
  using namespace effitest;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t chips = args.chips > 0 ? args.chips : 2000;

  std::cout << "=== Table 1: test results with delay alignment and "
               "statistical prediction ===\n"
            << "chips per circuit: " << chips << " (paper: 10000)\n\n";

  core::Table table({"Circuit", "ns", "ng", "nb", "np", "npt", "ta", "tv",
                     "t'a", "t'v", "ra(%)", "rv(%)", "Tp(s)", "Tt(s)",
                     "Ts(s)"});

  // One default-convention job per circuit, fanned out across all cores by
  // the campaign runner (results are identical to the former serial loop).
  core::CampaignOptions copts;
  copts.flow.chips = chips;
  copts.flow.seed = args.seed;
  copts.threads = args.threads;  // flow.threads of 0 inherits this
  std::vector<std::string> names;
  for (const netlist::GeneratorSpec& spec : bench::selected_specs(args)) {
    names.push_back(spec.name);
  }
  const core::CampaignResult result =
      core::CampaignRunner(copts).run(core::CampaignRunner::cross(names, {}));

  io::JsonReporter json("table1", args.threads);
  for (const core::CampaignJobResult& job : result.jobs) {
    const core::FlowMetrics& m = job.metrics;
    const auto record = [&](const char* metric, double value) {
      json.add(job.job.circuit, metric, value, job.seconds);
    };
    record("np", static_cast<double>(m.np));
    record("npt", static_cast<double>(m.npt));
    record("ta", m.ta);
    record("tv", m.tv);
    record("t'a", m.ta_pathwise);
    record("t'v", m.tv_pathwise);
    record("ra", m.ra);
    record("rv", m.rv);
    record("wall_seconds", job.seconds);
    table.add_row({
        job.job.circuit,
        core::Table::num(m.ns),
        core::Table::num(m.ng),
        core::Table::num(m.nb),
        core::Table::num(m.np),
        core::Table::num(m.npt),
        core::Table::num(m.ta, 2),
        core::Table::num(m.tv, 2),
        core::Table::num(m.ta_pathwise, 0),
        core::Table::num(m.tv_pathwise, 2),
        core::Table::num(m.ra, 2),
        core::Table::num(m.rv, 2),
        core::Table::num(m.tp_seconds, 2),
        core::Table::num(m.tt_seconds_per_chip, 4),
        core::Table::num(m.ts_seconds_per_chip, 4),
    });
  }
  table.print(std::cout);
  std::cout << "\nPaper reference (10000 chips): ra = 94.71..99.29%, "
               "rv = 57.59..75.15%, tv = 2.05..3.69.\n"
            << "campaign wall time: "
            << core::Table::num(result.total_seconds, 2) << " s\n"
            << "machine-readable output: " << json.write() << "\n";
  return 0;
}
