// Analytic post-tuning SSTA at full-ISCAS89 scale (src/analytic/):
// tuned-period distribution + per-pair criticality from the contracted
// constraint-graph engine, cross-checked against the exact per-die
// Monte-Carlo reference (binary search + Bellman-Ford feasibility).
//
// The default circuit list is the scale the flow benches never open:
// the three largest ISCAS89 circuits (s35932, s38417, s38584) plus a
// 10k-gate catalog-scaled family (s9234 x1.8, s13207 x1.25, s15850
// x1.02). The engine's tuned mean/sigma are deterministic (no RNG at
// all), so bench/baselines/analytic_*.json gates them tightly; the
// engine wall-clock is gated only by a wide ceiling.
//
// Columns:
//   ns, ng, nb, np   circuit statistics
//   cand             candidate cycle constraints found by the engine
//   untuned u/s      untuned required-period mean / sigma (Clark)
//   tuned u/s        post-tuning mean / sigma (engine)
//   MC u/s           Monte-Carlo reference mean / sigma (--chips dies)
//   eng(ms), mc(ms)  wall clock of engine vs MC reference
//   speedup          mc / engine

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "analytic/engine.hpp"
#include "bench_common.hpp"
#include "io/bench_json.hpp"
#include "scenario/circuit_catalog.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Resolve a bench circuit name: paper/extended registry, or a scaled
/// catalog name like "s9234@x1.8".
effitest::netlist::GeneratorSpec spec_for(const std::string& name) {
  const std::size_t at = name.find("@x");
  if (at != std::string::npos) {
    return effitest::scenario::scaled_paper_spec(
        name.substr(0, at), std::stod(name.substr(at + 2)));
  }
  return effitest::netlist::paper_benchmark_spec(name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace effitest;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t chips = args.chips > 0 ? args.chips : 200;

  std::vector<std::string> names = args.circuits;
  if (names.empty()) {
    names = {"s35932",    "s38417",      "s38584",
             "s9234@x1.8", "s13207@x1.25", "s15850@x1.02"};
  }

  std::cout << "=== Analytic post-tuning SSTA vs per-die Monte-Carlo ===\n"
            << "MC reference dies per circuit: " << chips << "\n\n";

  core::Table table({"Circuit", "ns", "ng", "nb", "np", "cand", "untuned u",
                     "untuned s", "tuned u", "tuned s", "MC u", "MC s",
                     "eng(ms)", "mc(ms)", "speedup"});
  io::JsonReporter json("analytic", args.threads);

  for (const std::string& name : names) {
    const bench::Instance inst(spec_for(name));

    const auto e0 = Clock::now();
    const analytic::TunedPeriodAnalysis analysis =
        analytic::analyze_tuned_period(inst.problem);
    const double engine_seconds = seconds_since(e0);

    analytic::McTunedOptions mopts;
    mopts.chips = chips;
    mopts.seed = args.seed;
    mopts.threads = args.threads;
    const auto m0 = Clock::now();
    const analytic::McTunedPeriod mc =
        analytic::mc_tuned_period(inst.problem, mopts);
    const double mc_seconds = seconds_since(m0);

    const auto record = [&](const char* metric, double value,
                            double seconds) {
      json.add(name, metric, value, seconds);
    };
    record("tuned_mean", analysis.tuned.mean, engine_seconds);
    record("tuned_sigma", analysis.tuned.sigma(), engine_seconds);
    record("untuned_mean", analysis.untuned.mean, engine_seconds);
    record("untuned_sigma", analysis.untuned.sigma(), engine_seconds);
    record("candidates", static_cast<double>(analysis.candidates.size()),
           engine_seconds);
    record("mc_tuned_mean", mc.mean, mc_seconds);
    record("mc_tuned_sigma", mc.sigma, mc_seconds);
    record("engine_seconds", engine_seconds, engine_seconds);

    table.add_row({
        name,
        core::Table::num(inst.circuit.netlist.num_flip_flops()),
        core::Table::num(inst.circuit.netlist.num_combinational_gates()),
        core::Table::num(inst.problem.num_buffers()),
        core::Table::num(inst.problem.model().num_pairs()),
        core::Table::num(analysis.candidates.size()),
        core::Table::num(analysis.untuned.mean, 2),
        core::Table::num(analysis.untuned.sigma(), 2),
        core::Table::num(analysis.tuned.mean, 2),
        core::Table::num(analysis.tuned.sigma(), 2),
        core::Table::num(mc.mean, 2),
        core::Table::num(mc.sigma, 2),
        core::Table::num(engine_seconds * 1e3, 2),
        core::Table::num(mc_seconds * 1e3, 2),
        core::Table::num(engine_seconds > 0.0 ? mc_seconds / engine_seconds
                                              : 0.0,
                         1),
    });
  }

  table.print(std::cout);
  std::cout << "\nThe engine's tuned mean tracks the MC reference from "
               "above (Clark max is conservative); sigma from below.\n"
            << "machine-readable output: " << json.write() << "\n";
  return 0;
}
