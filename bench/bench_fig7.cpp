// Reproduces Figure 7 of the paper: "Yield with enlarged random variation".
//
// The standard deviations of all path delays are increased by 10% without
// changing the covariance matrix between variables (i.e. the purely random
// part of each delay grows). Three yield series at T1:
//   1) circuit without buffers,
//   2) buffers configured by the proposed method,
//   3) buffers with perfect (ideal) configuration.
// The paper's observation: buffers still improve yield impressively, but the
// proposed method loses more versus ideal than in Table 2 because prediction
// suffers from the enlarged random variation.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace effitest;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t chips = args.chips > 0 ? args.chips : 1000;
  constexpr double kInflation = 1.10;  // +10% sigma, covariances unchanged

  std::cout << "=== Figure 7: yield with enlarged random variation (+10% "
               "sigma) ===\n"
            << "chips per circuit: " << chips << " (paper: 10000)\n\n";

  core::Table table({"Circuit", "no-buffer(%)", "proposed(%)", "ideal(%)"});

  for (const netlist::GeneratorSpec& spec : bench::selected_specs(args)) {
    // The designated period stays at the *nominal* T1 (the design's clock
    // does not change); only the manufactured population gets noisier.
    const bench::Instance nominal(spec);
    stats::Rng cal(args.seed ^ core::kQuantileCalibrationSeedXor);
    const double t1 = core::period_quantile(nominal.problem, 0.5, 2000, cal);

    const bench::Instance inst(spec, kInflation);
    core::FlowOptions opts;
    opts.chips = chips;
    opts.seed = args.seed;
    opts.threads = args.threads;
    opts.designated_period = t1;
    const core::FlowResult r = core::run_flow(inst.problem, opts);
    table.add_row({
        spec.name,
        bench::pct(r.metrics.yield_no_buffer),
        bench::pct(r.metrics.yield_proposed),
        bench::pct(r.metrics.yield_ideal),
    });
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 7): no-buffer < proposed <= "
               "ideal on every circuit,\nwith a larger proposed-vs-ideal gap "
               "than in Table 2.\n";
  return 0;
}
