// ISCAS89 import example: run EffiTest on a circuit read from a .bench file.
//
// The repository cannot redistribute the original ISCAS89 netlists, so by
// default this example writes a small self-contained .bench file to /tmp,
// registers it in a scenario::CircuitCatalog and resolves it — parsing,
// tuning-buffer insertion (BufferPolicy::kWorstDelay: the most loaded
// flip-flops) and model/problem assembly all happen in the shared
// provisioning layer, exactly what a user would do with a real s9234.bench:
//
//   ./build/examples/bench_circuit_import path/to/s9234.bench 2
//
// (second argument: number of tuning buffers to insert).

#include <fstream>
#include <iostream>
#include <string>

#include "core/flow.hpp"
#include "scenario/circuit_catalog.hpp"

namespace {

constexpr const char* kDemoBench = R"(# demo sequential circuit (s27-class)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace effitest;
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/effitest_demo.bench";
    std::ofstream out(path);
    out << kDemoBench;
    std::cout << "(no .bench given; wrote demo circuit to " << path << ")\n";
  }
  const std::size_t nb = argc > 2 ? std::stoul(argv[2]) : 2;

  scenario::CircuitCatalog catalog;
  catalog.add("import", scenario::BenchCircuit{
                            path, nb, scenario::BufferPolicy::kWorstDelay});
  const auto circuit = catalog.resolve("import");
  const netlist::Netlist& nl = circuit->netlist;
  std::cout << "parsed " << nl.name() << ": " << nl.num_flip_flops()
            << " FFs, " << nl.num_combinational_gates() << " gates, "
            << nl.primary_inputs().size() << " PIs\n";

  std::cout << "inserting tuning buffers at flip-flops:";
  for (int ff : circuit->buffered_ffs) std::cout << ' ' << nl.cell(ff).name;
  std::cout << '\n';

  std::cout << "monitored FF-pair paths: " << circuit->model.num_pairs()
            << ", nominal critical delay "
            << circuit->model.nominal_critical_delay() << " ps\n";
  if (circuit->model.num_pairs() == 0) {
    std::cout << "nothing to tune; done.\n";
    return 0;
  }

  core::FlowOptions opts;
  opts.chips = 200;
  opts.hold.samples = 200;
  const core::FlowResult r = core::run_flow(circuit->problem, opts);
  std::cout << "\nEffiTest on " << nl.name() << ":\n"
            << "  tested paths:        " << r.metrics.npt << "/"
            << r.metrics.np << '\n'
            << "  iterations per chip: " << r.metrics.ta << " (path-wise "
            << r.metrics.ta_pathwise << ", reduction " << r.metrics.ra
            << "%)\n"
            << "  yield untuned / proposed / ideal: "
            << r.metrics.yield_no_buffer * 100.0 << "% / "
            << r.metrics.yield_proposed * 100.0 << "% / "
            << r.metrics.yield_ideal * 100.0 << "%\n";
  return 0;
}
