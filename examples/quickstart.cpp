// Quickstart: the complete EffiTest flow on a small synthetic circuit.
//
// Generates a clustered circuit with post-silicon tunable clock buffers,
// then runs the full pipeline of the paper:
//   statistical path selection -> test multiplexing -> aligned delay test
//   -> conditional prediction -> buffer configuration -> pass/fail,
// and prints the tester-cost and yield summary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/flow.hpp"
#include "core/problem.hpp"
#include "netlist/generator.hpp"
#include "timing/model.hpp"

int main() {
  using namespace effitest;

  // 1. A small clustered benchmark: 60 flip-flops, 2 tuning buffers,
  //    24 monitored register-to-register paths.
  netlist::GeneratorSpec spec;
  spec.name = "quickstart";
  spec.num_flip_flops = 60;
  spec.num_gates = 800;
  spec.num_buffers = 2;
  spec.num_critical_paths = 24;
  spec.seed = 42;
  const netlist::GeneratedCircuit circuit = netlist::generate_circuit(spec);
  std::cout << "circuit: " << circuit.netlist.name() << "  FFs="
            << circuit.netlist.num_flip_flops()
            << "  gates=" << circuit.netlist.num_combinational_gates()
            << "  buffers=" << circuit.buffered_ffs.size() << '\n';

  // 2. Statistical timing model (paper §4 variation settings are defaults).
  const netlist::CellLibrary library = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, library,
                                   circuit.buffered_ffs);
  std::cout << "monitored FF-pair paths: " << model.num_pairs()
            << "  nominal critical delay: " << model.nominal_critical_delay()
            << " ps\n";

  // 3. Tuning problem: buffer range = T/8, 20 discrete steps (paper §4).
  const core::Problem problem(model);

  // 4. Full Monte-Carlo experiment at T1 (median untuned period).
  core::FlowOptions options;
  options.chips = 200;
  options.seed = 7;
  const core::FlowResult result = core::run_flow(problem, options);
  const core::FlowMetrics& m = result.metrics;

  std::cout << "\n--- EffiTest summary ---\n";
  std::cout << "designated period T_d: " << m.designated_period << " ps\n";
  std::cout << "paths tested (npt/np): " << m.npt << "/" << m.np << '\n';
  std::cout << "test batches:          " << m.num_batches << '\n';
  std::cout << "iterations/chip:       " << m.ta << "  (path-wise "
            << m.ta_pathwise << ")\n";
  std::cout << "iterations/path:       " << m.tv << "  (path-wise "
            << m.tv_pathwise << ")\n";
  std::cout << "reduction ra:          " << m.ra << " %\n";
  std::cout << "yield untuned:         " << m.yield_no_buffer * 100.0 << " %\n";
  std::cout << "yield ideal config:    " << m.yield_ideal * 100.0 << " %\n";
  std::cout << "yield proposed:        " << m.yield_proposed * 100.0 << " %\n";
  return 0;
}
