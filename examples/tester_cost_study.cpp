// Tester-cost study: how the knobs of EffiTest trade tester time against
// configuration accuracy on one circuit.
//
// Sweeps:
//   * measurement resolution epsilon (finer = more frequency steps),
//   * statistical prediction on/off,
//   * delay alignment on/off,
// and reports iterations per chip plus the resulting yield at T1. This is
// the study a test engineer would run before committing tester budget.
//
// Run: ./build/examples/tester_cost_study [circuit] [chips]

#include <iostream>
#include <string>

#include "core/flow.hpp"
#include "core/table.hpp"
#include "netlist/generator.hpp"

int main(int argc, char** argv) {
  using namespace effitest;
  const std::string circuit = argc > 1 ? argv[1] : "s13207";
  const std::size_t chips = argc > 2 ? std::stoul(argv[2]) : 150;

  const netlist::GeneratorSpec spec = netlist::paper_benchmark_spec(circuit);
  const netlist::GeneratedCircuit gen = netlist::generate_circuit(spec);
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(gen.netlist, lib, gen.buffered_ffs);
  const core::Problem problem(model);

  std::cout << "Tester-cost study on " << circuit << " (np="
            << model.num_pairs() << ", nb=" << problem.num_buffers()
            << ", chips=" << chips << ")\n\n";

  const auto run = [&](core::FlowOptions opts) {
    opts.chips = chips;
    opts.seed = 1;
    return core::run_flow(problem, opts);
  };

  std::cout << "--- technique stack (epsilon calibrated) ---\n";
  core::Table stack({"configuration", "npt", "iters/chip", "yield yt(%)"});
  {
    core::FlowOptions o;  // full EffiTest
    const auto r = run(o);
    stack.add_row({"prediction + multiplexing + alignment",
                   core::Table::num(r.metrics.npt),
                   core::Table::num(r.metrics.ta, 1),
                   core::Table::num(r.metrics.yield_proposed * 100.0, 1)});
  }
  {
    core::FlowOptions o;
    o.test.align_with_buffers = false;
    const auto r = run(o);
    stack.add_row({"prediction + multiplexing",
                   core::Table::num(r.metrics.npt),
                   core::Table::num(r.metrics.ta, 1),
                   core::Table::num(r.metrics.yield_proposed * 100.0, 1)});
  }
  {
    core::FlowOptions o;
    o.use_prediction = false;
    const auto r = run(o);
    stack.add_row({"multiplexing + alignment (all paths)",
                   core::Table::num(r.metrics.npt),
                   core::Table::num(r.metrics.ta, 1),
                   core::Table::num(r.metrics.yield_proposed * 100.0, 1)});
  }
  {
    core::FlowOptions o;
    const auto r = run(o);
    stack.add_row({"path-wise stepping (baseline)",
                   core::Table::num(r.metrics.np),
                   core::Table::num(r.metrics.ta_pathwise, 1),
                   "(reference)"});
  }
  stack.print(std::cout);

  std::cout << "\n--- resolution sweep (full EffiTest) ---\n";
  core::Table eps_table({"epsilon(ps)", "iters/chip", "iters/path",
                         "yield yt(%)", "yield drop yr(%)"});
  for (double eps : {4.0, 2.0, 1.0, 0.5, 0.25}) {
    core::FlowOptions o;
    o.epsilon_override = eps;
    const auto r = run(o);
    eps_table.add_row({core::Table::num(eps, 2),
                       core::Table::num(r.metrics.ta, 1),
                       core::Table::num(r.metrics.tv, 2),
                       core::Table::num(r.metrics.yield_proposed * 100.0, 1),
                       core::Table::num(r.metrics.yield_drop * 100.0, 1)});
  }
  eps_table.print(std::cout);
  std::cout << "\nCoarser resolution saves tester iterations but widens the "
               "measured ranges,\nwhich the conservative configuration turns "
               "into yield loss.\n";
  return 0;
}
