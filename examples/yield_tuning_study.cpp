// Yield-tuning study: what post-silicon tunable buffers buy a design team.
//
// For one circuit, sweeps the designated clock period from aggressive to
// relaxed and reports three yield curves:
//   * untuned (no buffers),
//   * buffers configured from EffiTest measurements (the proposed flow),
//   * buffers configured with perfect knowledge (upper bound).
// This is the Figure-7/Table-2 experiment generalized to a period sweep —
// it shows where tuning buys the most yield (around the median period) and
// where it cannot help (far tails).
//
// Run: ./build/examples/yield_tuning_study [circuit] [chips]

#include <iostream>
#include <string>

#include "core/flow.hpp"
#include "core/table.hpp"
#include "netlist/generator.hpp"

int main(int argc, char** argv) {
  using namespace effitest;
  const std::string circuit = argc > 1 ? argv[1] : "s9234";
  const std::size_t chips = argc > 2 ? std::stoul(argv[2]) : 200;

  const netlist::GeneratorSpec spec = netlist::paper_benchmark_spec(circuit);
  const netlist::GeneratedCircuit gen = netlist::generate_circuit(spec);
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(gen.netlist, lib, gen.buffered_ffs);
  const core::Problem problem(model);

  // Period sweep anchored on quantiles of the untuned distribution.
  stats::Rng cal(99);
  const double t10 = core::period_quantile(problem, 0.10, 2000, cal);
  stats::Rng cal2(99);
  const double t95 = core::period_quantile(problem, 0.95, 2000, cal2);

  std::cout << "Yield vs designated period on " << circuit
            << " (chips=" << chips << ")\n"
            << "period sweep: " << t10 << " .. " << t95 << " ps\n\n";

  core::Table table({"T_d(ps)", "untuned(%)", "proposed(%)", "ideal(%)",
                     "tuning gain(%)"});
  const int points = 7;
  for (int k = 0; k < points; ++k) {
    const double td =
        t10 + (t95 - t10) * static_cast<double>(k) / (points - 1);
    core::FlowOptions opts;
    opts.chips = chips;
    opts.seed = 5;
    opts.designated_period = td;
    const core::FlowResult r = core::run_flow(problem, opts);
    table.add_row(
        {core::Table::num(td, 1),
         core::Table::num(r.metrics.yield_no_buffer * 100.0, 1),
         core::Table::num(r.metrics.yield_proposed * 100.0, 1),
         core::Table::num(r.metrics.yield_ideal * 100.0, 1),
         core::Table::num(
             (r.metrics.yield_proposed - r.metrics.yield_no_buffer) * 100.0,
             1)});
  }
  table.print(std::cout);
  std::cout << "\nTuning buffers transfer slack between pipeline stages, so "
               "the gain peaks where\nthe untuned yield is in its steep "
               "region and vanishes in both tails.\n";
  return 0;
}
