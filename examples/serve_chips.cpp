// serve_chips: stream many chips through ONE TunerService.
//
// The service owns the offline artifacts (grouping, batches, hold bounds,
// the cached prediction gain) behind a shared_ptr; begin_chip() mints an
// independent per-chip TuningSession, so any number of sessions can run
// concurrently against the same artifacts — here fanned out on the
// deterministic pool, where chip c's die is sampled from its own seeded
// stream and every report is bit-identical for any worker count.
//
// This is the per-chip production shape of the paper's Fig. 4: prepare
// once, then test -> predict -> configure -> final pass/fail per die, with
// no Monte-Carlo driver in sight (run_flow is now just one such driver).
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/serve_chips [chips] [threads]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/table.hpp"
#include "core/tuner_service.hpp"
#include "netlist/generator.hpp"
#include "parallel/deterministic_for.hpp"
#include "timing/model.hpp"

int main(int argc, char** argv) {
  using namespace effitest;

  const std::size_t chips =
      argc > 1 ? std::max<unsigned long long>(
                     1, std::strtoull(argv[1], nullptr, 10))
               : 64;
  const std::size_t threads =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;

  // Offline phase, once: circuit model + TunerService (T_d calibration and
  // artifact preparation happen in the constructor).
  const netlist::GeneratedCircuit circuit =
      netlist::generate_circuit(netlist::paper_benchmark_spec("s9234"));
  const netlist::CellLibrary library = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, library,
                                   circuit.buffered_ffs);
  const core::Problem problem(model);

  core::FlowOptions options;
  options.seed = 2016;
  options.threads = threads;
  const core::TunerService service(problem, options);
  std::cout << "prepared " << circuit.netlist.name() << ": np="
            << model.num_pairs() << " npt=" << service.artifacts().tested.size()
            << " batches=" << service.artifacts().batches.size()
            << " Td=" << core::Table::num(service.designated_period(), 2)
            << " ps (offline " << core::Table::num(service.prepare_seconds(), 3)
            << " s)\n";

  // Per-chip loop: N concurrent sessions share the service's artifacts.
  std::vector<core::ChipReport> reports(chips);
  parallel::ForOptions fopts;
  fopts.threads = threads;
  parallel::deterministic_for(
      chips, fopts, service.monte_carlo_seed_base(),
      [&](std::size_t c, stats::Rng& rng) {
        thread_local timing::SampleWorkspace workspace;
        const timing::Chip die = model.sample_chip(rng, workspace);
        core::SimulatedChip tester(problem, die);
        core::TuningSession session = service.begin_chip();
        session.drive(tester);
        reports[c] = session.take_report();
      });

  std::size_t passed = 0, infeasible = 0, iterations = 0;
  double xi_sum = 0.0;
  for (const core::ChipReport& r : reports) {
    if (r.passed.value_or(false)) ++passed;
    if (!r.config.feasible) ++infeasible;
    iterations += r.test.iterations;
    xi_sum += r.config.feasible ? r.config.xi : 0.0;
  }
  const double n = static_cast<double>(chips);
  core::Table t({"metric", "value"});
  t.add_row({"chips streamed", core::Table::num(chips)});
  t.add_row({"tester iterations/chip",
             core::Table::num(static_cast<double>(iterations) / n, 2)});
  t.add_row({"passed at Td (%)",
             core::Table::num(100.0 * static_cast<double>(passed) / n, 2)});
  t.add_row({"infeasible configs", core::Table::num(infeasible)});
  if (infeasible < chips) {
    t.add_row({"mean xi of feasible (ps)",
               core::Table::num(
                   xi_sum / static_cast<double>(chips - infeasible), 3)});
  }
  t.print(std::cout);
  return 0;
}
