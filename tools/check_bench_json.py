#!/usr/bin/env python3
"""Validate BENCH_*.json bench reports and gate paper metrics against a
committed baseline.

Two jobs, both exercised by the perf-smoke CI job:

1. Schema validation ("effitest-bench-v1"): every file must be a JSON
   object with the exact top-level keys {schema, bench, git_sha, threads,
   records}; records is a list of objects with keys {circuit, metric,
   value, wall_seconds}, finite numeric value, non-negative wall_seconds.

2. Regression check (--baseline FILE, repeatable; --baselines-dir DIR
   applies every *.json in DIR): each baseline names a bench and a circuit
   and pins paper metrics (ra, t'v, ...) with per-metric tolerance and
   direction. The flow metrics are deterministic for a fixed
   (seed, chips) — bit-identical for any thread count — so the tolerance
   only absorbs toolchain/libstdc++ drift, not Monte-Carlo noise. A value
   worse than baseline-beyond-tolerance fails; a value better by more than
   the tolerance warns (re-record the baseline to bank the win). A
   baseline whose circuit/metric is absent from every validated report
   fails too — committing a baseline obliges CI to keep measuring it.

Baseline format (bench/baselines/s9234.json):

    {
      "bench": "table1",
      "circuit": "s9234",
      "args": "--circuits=s9234 --chips=100 --threads=2",
      "metrics": {
        "ra":  {"value": 96.27, "tol": 1.0, "higher_is_better": true},
        "t'v": {"value": 9.0,   "tol": 0.25, "higher_is_better": false}
      }
    }

3. Equivalence check (--diff A B): both reports must carry the same bench
   name and the same record sequence — circuit, metric and value compared
   EXACTLY (values are bit-identical doubles by the determinism contract,
   so no tolerance) — ignoring only wall_seconds, git_sha and threads,
   the fields allowed to differ between runs. This is how CI proves a
   checkpoint-resumed campaign reproduces the uninterrupted run
   (`effitest_cli campaign --checkpoint ... --resume`).

Usage:
    check_bench_json.py [--baseline FILE ...] [--baselines-dir DIR]
                        BENCH_foo.json [BENCH_bar.json ...]
    check_bench_json.py --diff BENCH_full.json BENCH_resumed.json

Exit status: 0 = all checks passed, 1 = violation, 2 = usage error.
"""

from __future__ import annotations

import argparse
import glob
import json
import math
import os
import sys

SCHEMA_ID = "effitest-bench-v1"
TOP_KEYS = {"schema", "bench", "git_sha", "threads", "records"}
RECORD_KEYS = {"circuit", "metric", "value", "wall_seconds"}


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    raise SystemExit(1)


def is_finite_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def validate_schema(path: str, doc: object) -> dict:
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not a JSON object")
    keys = set(doc.keys())
    if keys != TOP_KEYS:
        fail(
            f"{path}: top-level keys {sorted(keys)} != required {sorted(TOP_KEYS)}"
        )
    if doc["schema"] != SCHEMA_ID:
        fail(f"{path}: schema {doc['schema']!r} != {SCHEMA_ID!r}")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail(f"{path}: bench must be a non-empty string")
    if not isinstance(doc["git_sha"], str) or not doc["git_sha"]:
        fail(f"{path}: git_sha must be a non-empty string")
    if not isinstance(doc["threads"], int) or isinstance(doc["threads"], bool) or doc["threads"] < 0:
        fail(f"{path}: threads must be a non-negative integer")
    if not isinstance(doc["records"], list):
        fail(f"{path}: records must be a list")
    for i, rec in enumerate(doc["records"]):
        where = f"{path}: records[{i}]"
        if not isinstance(rec, dict):
            fail(f"{where} is not an object")
        if set(rec.keys()) != RECORD_KEYS:
            fail(f"{where} keys {sorted(rec.keys())} != {sorted(RECORD_KEYS)}")
        if not isinstance(rec["circuit"], str) or not rec["circuit"]:
            fail(f"{where}: circuit must be a non-empty string")
        if not isinstance(rec["metric"], str) or not rec["metric"]:
            fail(f"{where}: metric must be a non-empty string")
        if not is_finite_number(rec["value"]):
            fail(f"{where}: value must be a finite number")
        if not is_finite_number(rec["wall_seconds"]) or rec["wall_seconds"] < 0:
            fail(f"{where}: wall_seconds must be a finite non-negative number")
    print(
        f"OK: {path}: schema valid "
        f"(bench={doc['bench']}, {len(doc['records'])} records, "
        f"sha={doc['git_sha']}, threads={doc['threads']})"
    )
    return doc


def lookup(doc: dict, circuit: str, metric: str):
    for rec in doc["records"]:
        if rec["circuit"] == circuit and rec["metric"] == metric:
            return rec["value"]
    return None


def check_baseline(baseline_path: str, docs: list[dict]) -> None:
    with open(baseline_path, encoding="utf-8") as f:
        base = json.load(f)
    for key in ("bench", "circuit", "metrics"):
        if key not in base:
            fail(f"{baseline_path}: missing baseline key {key!r}")

    matching = [d for d in docs if d["bench"] == base["bench"]]
    if not matching:
        fail(
            f"no validated report came from bench {base['bench']!r} "
            f"(needed by {baseline_path})"
        )

    for metric, spec in base["metrics"].items():
        expected = spec["value"]
        tol = spec.get("tol", 0.0)
        higher_is_better = spec.get("higher_is_better", True)
        value = None
        for doc in matching:
            value = lookup(doc, base["circuit"], metric)
            if value is not None:
                break
        if value is None:
            fail(
                f"metric {metric!r} for circuit {base['circuit']!r} not found "
                f"in any {base['bench']!r} report"
            )
        regressed = (
            value < expected - tol if higher_is_better else value > expected + tol
        )
        improved = (
            value > expected + tol if higher_is_better else value < expected - tol
        )
        if regressed:
            fail(
                f"{metric}={value} regressed beyond baseline {expected} "
                f"(tol {tol}, higher_is_better={higher_is_better}); "
                f"baseline {baseline_path}"
            )
        if improved:
            print(
                f"WARN: {metric}={value} beats baseline {expected} by more than "
                f"tol {tol} — re-record {baseline_path} to bank the win"
            )
        else:
            print(f"OK: {metric}={value} within {expected} +/- {tol}")


def load_report(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")
    return validate_schema(path, doc)


def diff_reports(path_a: str, path_b: str) -> None:
    """Exact-equivalence check, ignoring wall_seconds/git_sha/threads."""
    a, b = load_report(path_a), load_report(path_b)
    if a["bench"] != b["bench"]:
        fail(f"bench name differs: {a['bench']!r} vs {b['bench']!r}")
    ra, rb = a["records"], b["records"]
    if len(ra) != len(rb):
        fail(f"record count differs: {len(ra)} ({path_a}) vs {len(rb)} ({path_b})")
    for i, (x, y) in enumerate(zip(ra, rb)):
        for key in ("circuit", "metric", "value"):
            if x[key] != y[key]:
                fail(
                    f"records[{i}].{key} differs: {x[key]!r} ({path_a}) vs "
                    f"{y[key]!r} ({path_b}) "
                    f"[{x['circuit']}/{x['metric']} vs {y['circuit']}/{y['metric']}]"
                )
    print(
        f"OK: {path_a} and {path_b} are equivalent "
        f"({len(ra)} records, wall_seconds/git_sha/threads ignored)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BENCH_*.json reports")
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        help="compare two reports for exact equivalence (only "
        "wall_seconds/git_sha/threads may differ); used by the CI "
        "checkpoint-resume smoke",
    )
    parser.add_argument(
        "--baseline",
        action="append",
        default=[],
        help="baseline JSON pinning paper metrics (see bench/baselines/); "
        "repeatable",
    )
    parser.add_argument(
        "--baselines-dir",
        help="directory of committed baselines; every *.json in it is "
        "applied (the CI shape: each baselined circuit stays gated)",
    )
    args = parser.parse_args()

    if args.diff:
        if args.files or args.baseline or args.baselines_dir:
            parser.error("--diff takes exactly two reports and no other checks")
        diff_reports(*args.diff)
        return
    if not args.files:
        parser.error("no reports given")

    docs = [load_report(path) for path in args.files]

    baselines = list(args.baseline)
    if args.baselines_dir:
        found = sorted(glob.glob(os.path.join(args.baselines_dir, "*.json")))
        if not found:
            fail(f"--baselines-dir {args.baselines_dir}: no *.json baselines")
        baselines.extend(found)
    for baseline in baselines:
        check_baseline(baseline, docs)
    print("all bench JSON checks passed")


if __name__ == "__main__":
    main()
