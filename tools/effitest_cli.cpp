// effitest_cli — command-line front end for the EffiTest library.
//
// Subcommands:
//   help      [command]
//             Print usage (for one command or all of them).
//   generate  --circuit=<paper name> [--out=file.bench] [--seed=S]
//             Generate a clustered benchmark circuit (Table-1 statistics)
//             and optionally export it as ISCAS89 .bench with placement.
//   info      --bench=file.bench | --circuit=<name>
//             Print structural and timing statistics.
//   ssta      --bench=... | --circuit=... [--chips=N] [--threads=N]
//             [--tuned] [--criticality] [--json=file]
//             Analytic (Clark) vs Monte-Carlo untuned-period distribution.
//             --tuned adds the post-tuning analysis (src/analytic/):
//             analytic tuned-period mean/sigma/quantiles against the exact
//             per-die Monte-Carlo reference, with wall-clock for both.
//             --criticality (implies --tuned) also ranks register pairs by
//             their probability of limiting the tuned period. --json writes
//             the numbers as effitest-bench-v1 records.
//   run       --bench=... [--buffers=N] [--policy=p] | --circuit=<name>
//             [--chips=N] [--td=ps] [--quantile=q] [--no-prediction]
//             [--no-alignment] [--seed=S] [--threads=N] [--json=file]
//             Run the full EffiTest flow and print the metrics.
//   campaign  --spec=file.json | [--circuits=a,b,...]
//             [--quantiles=q1,q2,...] [--chips=N] [--seed=S] [--threads=N]
//             [--inflation=k] [--json=file] [--checkpoint=file [--resume]]
//             [--stop-after=K]
//             Fan whole-circuit / T_d-sweep jobs out across all cores with
//             FlowArtifacts reuse (Table 1/2-style multi-circuit runs from
//             one invocation). With --spec, circuits/quantiles/periods and
//             flow knobs come from a declarative scenario JSON
//             (io/scenario_json.hpp) whose catalog can mix paper,
//             .bench-imported, scaled and inline-generated circuits;
//             explicit CLI options still override the spec's knobs.
//             --checkpoint persists every finished job to an
//             effitest-checkpoint-v1 file (atomically, after each job);
//             --resume loads it back, skips the finished jobs, and — the
//             whole campaign being deterministically seeded per job —
//             produces results bit-identical to an uninterrupted run.
//             --stop-after=K stops cleanly after K pending jobs (exit 3
//             when jobs remain), which makes kill/resume testable at
//             every job boundary.
//   circuits  [--spec=file.json]
//             List the circuit catalog (paper registry, or the spec's).
//   tune      --bench=... [--buffers=N] | --circuit=<name>
//             [--chips=N] [--seed=S] [--td=ps] [--quantile=q] [--threads=N]
//             [--simulate] [--lenient] [--log=file] [--responses=file]
//             Stream per-chip TuningSessions over the line-oriented
//             stimulus/response protocol (src/io/tune_protocol.hpp):
//             stimuli on stdout, responses from stdin — or from a replayed
//             (possibly shuffled) --responses log, or self-answered with
//             --simulate (writing the would-be tester responses to --log).
//             --lenient survives malformed frames: a bad frame abandons
//             only the chip it names (`error <chip> <reason>` on stdout);
//             unattributable garbage is dropped and counted.
//             With --connect=host:port the same command becomes the tester
//             side of a networked session: it simulates its dies locally
//             (seeded by the server's greeting) and answers the server's
//             stimuli over TCP; the report lines are byte-identical to a
//             local --simulate run. td/quantile/seed/threads are
//             server-side decisions and are rejected in --connect mode.
//   serve     --bench=... | --circuit=<name> [--td/--quantile/--seed/...]
//             [--host=H] [--port=P] [--workers=N] [--max-pending=N]
//             [--window=W] [--max-chips=N] [--max-sessions=N]
//             [--io-timeout=S] [--status-port=P]
//             TCP serve mode (src/net/serve.hpp): prepare the circuit
//             once, then multiplex any number of concurrent chip-tuning
//             sessions — each a `hello effitest-tune-v1 chips=<n>`
//             connection speaking the tune protocol — across a bounded
//             worker pool. Prints `serving on <host>:<port>` on stdout
//             when ready; SIGTERM/SIGINT drain gracefully (stop accepting,
//             finish every in-flight session) and print the session
//             metrics (sessions/sec, latency p50/p90/p99) on stderr.
//             --status-port binds an extra plaintext endpoint (0 =
//             ephemeral, announced as `status on <host>:<port>`) where any
//             connection receives the live effitest-status-v1 JSON line.
//   balance   --workers=host:port,... and/or --spawn=N
//             [--circuit/--bench/... forwarded to spawned workers]
//             [--host=H] [--port=P] [--relay-workers=N] [--max-pending=N]
//             [--max-sessions=N] [--retries=N] [--io-timeout=S]
//             [--status-port=P] [--probe-interval=S]
//             Front balancer for a multi-process tuning fleet
//             (src/fleet/): accept tester connections on one port and
//             route each session to the least-loaded live worker.
//             --workers lists externally-managed serve processes;
//             --spawn=N forks N `serve --port=0` children locally
//             (restart-on-crash with backoff; circuit/flow options are
//             forwarded to them). A worker registry polls every worker's
//             status endpoint on --probe-interval and walks failures
//             through live/degraded/dead; a session whose worker dies
//             mid-run is transparently replayed on a survivor
//             (byte-identical reports — the exchange is deterministic
//             under the shared seed base), with --retries bounding the
//             re-attach attempts. Prints `balancing on <host>:<port>`
//             when ready; SIGTERM/SIGINT drain gracefully (finish every
//             in-flight session, then SIGTERM the spawned workers).
//   status    --connect=host:port [--format=json|prometheus]
//             Poll a serve or balance fleet's live metrics: print the
//             one-line effitest-status-v1 JSON (obs::MetricsRegistry
//             snapshot) on stdout and a human summary (sessions
//             done/active, sessions/sec, latency p50/p99) on stderr —
//             or, with --format=prometheus, the text exposition format
//             (the in-band `status prometheus` request). Works against
//             the serve/balance port and against a --status-port
//             endpoint — poll mid-run; nothing is perturbed.
//
// run/campaign/tune/serve also accept --log-format=text|json and
// --log-file=path: a structured event log (obs::StructuredLog,
// effitest-log-v1 JSON lines or the same data as text) of run/job/session/
// chip transitions, written to the file or to stderr when no file is
// given. Purely observational — results are bit-identical with logging on
// or off, and the perf gates run with it off (one null-pointer test per
// would-be event).
//
// Unknown options, unknown flags and stray positional arguments are
// rejected with a clear error (exit code 2) — a typo like --chip=200 must
// not silently run the defaults.
//
// Examples:
//   effitest_cli generate --circuit=s9234 --out=/tmp/s9234_like.bench
//   effitest_cli run --circuit=s13207 --chips=2000 --json=run.json
//   effitest_cli campaign --circuits=s9234,s13207 --quantiles=0.5,0.8413
//   effitest_cli tune --circuit=s9234 --chips=3 --simulate --log=resp.log
//   effitest_cli tune --circuit=s9234 --chips=3 --responses=resp.log

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analytic/engine.hpp"
#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "core/table.hpp"
#include "core/tuner_service.hpp"
#include "fleet/balancer.hpp"
#include "fleet/registry.hpp"
#include "fleet/supervisor.hpp"
#include "io/bench_json.hpp"
#include "io/checkpoint_json.hpp"
#include "io/json.hpp"
#include "io/scenario_json.hpp"
#include "io/tune_protocol.hpp"
#include "net/client.hpp"
#include "net/serve.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "netlist/bench_writer.hpp"
#include "netlist/generator.hpp"
#include "scenario/circuit_catalog.hpp"
#include "timing/graph.hpp"
#include "timing/ssta.hpp"

namespace {

using namespace effitest;

struct Cli {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> flags;
  std::vector<std::string> positionals;  ///< non-option args after command

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }
  [[nodiscard]] bool has_flag(const std::string& f) const {
    return std::find(flags.begin(), flags.end(), f) != flags.end();
  }
};

/// Usage errors discovered after option whitelisting (conflicting or
/// inapplicable combinations) — mapped to exit code 2 like any other
/// usage mistake.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Checked numeric option parsing. The raw std::stoul/std::stod calls these
/// replace terminated the process with an uncaught std::invalid_argument on
/// --chips=abc (and std::out_of_range on an oversized --seed) instead of
/// the documented usage exit code 2. Every parse names the offending
/// option and value and rejects trailing junk ("12x"), signs on unsigned
/// options ("-3") and non-finite doubles ("nan").
std::uint64_t parse_u64(const std::string& option, const std::string& value) {
  std::uint64_t out = 0;
  const char* first = value.data();
  const char* last = first + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec == std::errc::result_out_of_range) {
    throw UsageError("--" + option + "=" + value +
                     " is out of range (maximum " +
                     std::to_string(std::numeric_limits<std::uint64_t>::max()) +
                     ")");
  }
  if (ec != std::errc() || ptr != last || value.empty()) {
    throw UsageError("--" + option + "=" + value +
                     ": expected an unsigned integer");
  }
  return out;
}

std::size_t parse_size(const std::string& option, const std::string& value) {
  const std::uint64_t out = parse_u64(option, value);
  if (out > std::numeric_limits<std::size_t>::max()) {
    throw UsageError("--" + option + "=" + value + " is out of range");
  }
  return static_cast<std::size_t>(out);
}

std::uint16_t parse_port(const std::string& option, const std::string& value) {
  const std::uint64_t port = parse_u64(option, value);
  if (port > 65535) {
    throw UsageError("--" + option + "=" + value +
                     " is not a TCP port (0-65535)");
  }
  return static_cast<std::uint16_t>(port);
}

double parse_double(const std::string& option, const std::string& value) {
  double out = 0.0;
  std::size_t consumed = 0;
  try {
    out = std::stod(value, &consumed);
  } catch (const std::invalid_argument&) {
    throw UsageError("--" + option + "=" + value + ": expected a number");
  } catch (const std::out_of_range&) {
    throw UsageError("--" + option + "=" + value +
                     " is out of range for a double");
  }
  if (consumed != value.size()) {
    throw UsageError("--" + option + "=" + value +
                     ": expected a number (trailing \"" +
                     value.substr(consumed) + "\")");
  }
  if (!std::isfinite(out)) {
    throw UsageError("--" + option + "=" + value +
                     ": expected a finite number");
  }
  return out;
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  if (argc > 1) cli.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      cli.positionals.push_back(std::move(a));
      continue;
    }
    a = a.substr(2);
    const std::size_t eq = a.find('=');
    if (eq == std::string::npos) {
      cli.flags.push_back(a);
    } else {
      cli.options[a.substr(0, eq)] = a.substr(eq + 1);
    }
  }
  return cli;
}

/// What each command accepts. `options` take --key=value, `flags` are bare
/// --switches; anything else is rejected.
struct CommandSpec {
  std::set<std::string> options;
  std::set<std::string> flags;
  const char* usage;
};

const std::map<std::string, CommandSpec>& command_specs() {
  static const std::map<std::string, CommandSpec> specs = {
      {"help", {{}, {}, "help [command]"}},
      {"generate",
       {{"circuit", "out", "seed"},
        {},
        "generate --circuit=<name> [--out=file.bench] [--seed=S]"}},
      {"info",
       {{"bench", "circuit", "buffers", "policy", "seed"},
        {},
        "info     --bench=file | --circuit=<name> [--buffers=N] "
        "[--policy=p]"}},
      {"ssta",
       {{"bench", "circuit", "buffers", "policy", "seed", "chips", "threads",
         "json", "log-format", "log-file"},
        {"tuned", "criticality"},
        "ssta     --bench=file | --circuit=<name> [--chips=N] [--threads=N]\n"
        "         [--tuned] [--criticality] [--json=file]\n"
        "         [--log-format=text|json] [--log-file=path]"}},
      {"run",
       {{"bench", "buffers", "policy", "circuit", "chips", "td", "quantile",
         "seed", "threads", "json", "log-format", "log-file"},
        {"no-prediction", "no-alignment"},
        "run      --bench=file [--buffers=N] [--policy=p] | "
        "--circuit=<name>\n"
        "         [--chips=N] [--td=ps] [--quantile=q] [--seed=S]\n"
        "         [--no-prediction] [--no-alignment] [--threads=N]\n"
        "         [--json=file] [--log-format=text|json] "
        "[--log-file=path]"}},
      {"campaign",
       {{"spec", "circuits", "quantiles", "modes", "chips", "seed", "threads",
         "inflation", "json", "checkpoint", "stop-after", "log-format",
         "log-file"},
        {"resume"},
        "campaign --spec=file.json | [--circuits=a,b,...] "
        "[--quantiles=q1,q2,...]\n"
        "         [--modes=flow,analytic] [--chips=N] [--seed=S] "
        "[--threads=N]\n"
        "         [--inflation=k] [--json=file] [--checkpoint=file "
        "[--resume]]\n"
        "         [--stop-after=K] [--log-format=text|json] "
        "[--log-file=path]"}},
      {"circuits",
       {{"spec"}, {}, "circuits [--spec=file.json]"}},
      {"tune",
       {{"bench", "buffers", "policy", "circuit", "chips", "td", "quantile",
         "seed", "threads", "log", "responses", "connect", "connect-retries",
         "window", "log-format", "log-file"},
        {"simulate", "lenient"},
        "tune     --bench=file [--buffers=N] [--policy=p] | "
        "--circuit=<name>\n"
        "         [--chips=N] [--td=ps] [--quantile=q] [--seed=S]\n"
        "         [--threads=N] [--simulate] [--lenient] [--log=file] "
        "[--responses=file]\n"
        "         [--window=W] [--connect=host:port] [--connect-retries=N]\n"
        "         [--log-format=text|json] [--log-file=path]"}},
      {"serve",
       {{"bench", "buffers", "policy", "circuit", "td", "quantile", "seed",
         "threads", "host", "port", "workers", "max-pending", "window",
         "max-chips", "max-sessions", "io-timeout", "status-port",
         "log-format", "log-file"},
        {},
        "serve    --bench=file [--buffers=N] [--policy=p] | "
        "--circuit=<name>\n"
        "         [--td=ps] [--quantile=q] [--seed=S] [--threads=N]\n"
        "         [--host=H] [--port=P] [--workers=N] [--max-pending=N]\n"
        "         [--window=W] [--max-chips=N] [--max-sessions=N] "
        "[--io-timeout=S]\n"
        "         [--status-port=P] [--log-format=text|json] "
        "[--log-file=path]"}},
      {"balance",
       {{"workers", "spawn", "bench", "buffers", "policy", "circuit", "td",
         "quantile", "seed", "threads", "host", "port", "relay-workers",
         "max-pending", "max-sessions", "retries", "io-timeout",
         "status-port", "probe-interval", "log-format", "log-file"},
        {},
        "balance  --workers=host:port,... and/or --spawn=N\n"
        "         [--bench=file [--buffers=N] [--policy=p] | "
        "--circuit=<name>]\n"
        "         [--td=ps] [--quantile=q] [--seed=S] [--threads=N]\n"
        "         [--host=H] [--port=P] [--relay-workers=N] "
        "[--max-pending=N]\n"
        "         [--max-sessions=N] [--retries=N] [--io-timeout=S]\n"
        "         [--status-port=P] [--probe-interval=S] "
        "[--log-format=text|json] [--log-file=path]"}},
      {"status",
       {{"connect", "format"},
        {},
        "status   --connect=host:port [--format=json|prometheus]"}},
  };
  return specs;
}

void usage(std::ostream& os) {
  os << "usage: effitest_cli <command> [options]\ncommands:\n";
  // Stable presentation order (not the map's alphabetical one).
  for (const char* name : {"help", "generate", "info", "ssta", "run",
                           "campaign", "circuits", "tune", "serve",
                           "balance", "status"}) {
    os << "  " << command_specs().at(name).usage << '\n';
  }
  os << "paper circuits: s9234 s13207 s15850 s38584 mem_ctrl usb_funct "
        "ac97_ctrl pci_bridge32\n"
        "extended circuits (full ISCAS89 scale): s35932 s38417\n"
        "buffer policies (--policy, .bench imports): hub-count worst-delay\n";
}

std::string join_sorted(const std::set<std::string>& names,
                        const char* prefix) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ' ';
    out += prefix;
    out += n;
  }
  return out;
}

/// Reject unknown options/flags/positionals. Returns 0 when valid.
int validate_cli(const Cli& cli) {
  const auto it = command_specs().find(cli.command);
  if (it == command_specs().end()) {
    std::cerr << "error: unknown command '" << cli.command << "'\n";
    usage(std::cerr);
    return 2;
  }
  const CommandSpec& spec = it->second;
  for (const auto& [key, value] : cli.options) {
    if (spec.options.count(key) != 0) continue;
    std::cerr << "error: unknown option --" << key << "=" << value
              << " for command '" << cli.command << "'\n";
    if (spec.flags.count(key) != 0) {
      std::cerr << "(--" << key << " is a flag and takes no value)\n";
    } else if (!spec.options.empty()) {
      std::cerr << "valid options: " << join_sorted(spec.options, "--")
                << '\n';
    }
    return 2;
  }
  for (const std::string& flag : cli.flags) {
    if (spec.flags.count(flag) != 0) continue;
    std::cerr << "error: unknown flag --" << flag << " for command '"
              << cli.command << "'\n";
    if (spec.options.count(flag) != 0) {
      std::cerr << "(--" << flag << " needs a value: --" << flag << "=...)\n";
    } else if (!spec.flags.empty()) {
      std::cerr << "valid flags: " << join_sorted(spec.flags, "--") << '\n';
    }
    return 2;
  }
  // `help <command>` is the one legal positional.
  if (!cli.positionals.empty() && cli.command != "help") {
    std::cerr << "error: unexpected argument '" << cli.positionals.front()
              << "' for command '" << cli.command
              << "' (options are --key=value)\n";
    return 2;
  }
  return 0;
}

int cmd_help(const Cli& cli) {
  if (!cli.positionals.empty()) {
    const auto it = command_specs().find(cli.positionals.front());
    if (it == command_specs().end()) {
      std::cerr << "error: unknown command '" << cli.positionals.front()
                << "'\n";
      usage(std::cerr);
      return 2;
    }
    std::cout << "usage: effitest_cli " << it->second.usage << '\n';
    return 0;
  }
  usage(std::cout);
  return 0;
}

/// CLI flags -> CircuitSpec: the one-shot catalog entry run/info/ssta/tune
/// resolve through. The buffer-insertion stand-in and model assembly live
/// in scenario::CircuitCatalog — the same construction path campaigns and
/// scenario specs use.
std::shared_ptr<const scenario::PreparedCircuit> provision_circuit(
    const Cli& cli) {
  scenario::CircuitCatalog catalog;
  std::string name;
  if (const auto circuit = cli.get("circuit")) {
    // No-silent-surprises: these knobs only shape .bench imports
    // (generated circuits carry their own buffer set).
    if (cli.get("buffers") || cli.get("policy")) {
      throw UsageError(
          "--buffers/--policy apply to --bench imports only; --circuit "
          "circuits carry their own buffer set");
    }
    scenario::PaperCircuit spec{*circuit, std::nullopt};
    if (const auto seed = cli.get("seed")) {
      spec.seed = parse_u64("seed", *seed);
    }
    name = *circuit;
    catalog.add(name, spec);
  } else if (const auto path = cli.get("bench")) {
    scenario::BenchCircuit spec;
    spec.path = *path;
    if (const auto buffers = cli.get("buffers")) {
      spec.num_buffers = parse_size("buffers", *buffers);
    }
    if (const auto policy = cli.get("policy")) {
      spec.policy = scenario::buffer_policy_from(*policy);
    }
    name = "bench";
    catalog.add(name, spec);
  } else {
    throw std::runtime_error("need --circuit=<name> or --bench=<file>");
  }
  return catalog.resolve(name);
}

/// The one shared --log-format/--log-file implementation (run, campaign,
/// tune and serve all resolve through here; every other command rejects
/// the options via its whitelist). Logging is enabled iff at least one of
/// the two options is present: the format defaults to JSON, the sink to
/// stderr. `log` stays nullptr when logging is off — the zero-overhead
/// contract call sites rely on.
struct LogSink {
  std::unique_ptr<obs::StructuredLog> owned;
  obs::StructuredLog* log = nullptr;
};

LogSink make_structured_log(const Cli& cli) {
  LogSink sink;
  const auto format_text = cli.get("log-format");
  const auto file_path = cli.get("log-file");
  if (!format_text && !file_path) return sink;
  obs::LogFormat format = obs::LogFormat::kJson;
  if (format_text && !obs::parse_log_format(*format_text, format)) {
    throw UsageError("--log-format=" + *format_text +
                     ": expected text or json");
  }
  if (file_path) {
    sink.owned = obs::StructuredLog::open_file(*file_path, format);
  } else {
    // std::clog: stderr, buffered — event lines never interleave with the
    // command's stdout tables/JSON announcements.
    sink.owned = std::make_unique<obs::StructuredLog>(std::clog, format);
  }
  sink.log = sink.owned.get();
  return sink;
}

/// `host:port` → (host, port) with the usual usage-error reporting.
std::pair<std::string, std::uint16_t> split_host_port(
    const std::string& option, const std::string& target) {
  const auto colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == target.size()) {
    throw UsageError("--" + option + "=" + target + ": expected host:port");
  }
  return {target.substr(0, colon),
          parse_port(option, target.substr(colon + 1))};
}

int cmd_generate(const Cli& cli) {
  const auto name = cli.get("circuit");
  if (!name) throw std::runtime_error("generate needs --circuit=<name>");
  netlist::GeneratorSpec spec = netlist::paper_benchmark_spec(*name);
  if (const auto seed = cli.get("seed")) spec.seed = parse_u64("seed", *seed);
  const netlist::GeneratedCircuit gen = netlist::generate_circuit(spec);
  std::cout << "generated " << spec.name << ": "
            << gen.netlist.num_flip_flops() << " FFs, "
            << gen.netlist.num_combinational_gates() << " gates, "
            << gen.buffered_ffs.size() << " buffers, "
            << gen.critical_edges.size() << " monitored paths\n";
  if (const auto out = cli.get("out")) {
    netlist::write_bench_file(gen.netlist, *out);
    std::cout << "wrote " << *out << " (with #!place placement sidecar)\n";
    std::cout << "buffered flip-flops:";
    for (int ff : gen.buffered_ffs) {
      std::cout << ' ' << gen.netlist.cell(ff).name;
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_info(const Cli& cli) {
  const auto circuit = provision_circuit(cli);
  const timing::TimingGraph graph(circuit->netlist, circuit->library);
  std::cout << "circuit:            " << circuit->netlist.name() << '\n'
            << "primary inputs:     "
            << circuit->netlist.primary_inputs().size() << '\n'
            << "flip-flops:         " << circuit->netlist.num_flip_flops()
            << '\n'
            << "combinational:      "
            << circuit->netlist.num_combinational_gates() << '\n'
            << "FF-pair edges:      " << graph.all_pair_delays().size() << '\n'
            << "critical delay:     " << graph.nominal_critical_delay()
            << " ps\n"
            << "tuning buffers:     " << circuit->buffered_ffs.size() << '\n'
            << "monitored paths:    " << circuit->model.num_pairs() << '\n'
            << "discarded (static): " << circuit->model.num_discarded_pairs()
            << '\n';
  return 0;
}

int cmd_ssta(const Cli& cli) {
  const LogSink sink = make_structured_log(cli);
  const auto circuit = provision_circuit(cli);
  const timing::VariationModel variation(timing::VariationParams{},
                                         circuit->library);
  const timing::CanonicalDelay analytic = timing::ssta_required_period(
      circuit->netlist, circuit->library, variation);

  const core::Problem& problem = circuit->problem;
  const std::size_t chips =
      cli.get("chips") ? parse_size("chips", *cli.get("chips")) : 4000;
  const std::size_t threads =
      cli.get("threads") ? parse_size("threads", *cli.get("threads")) : 0;
  const bool criticality = cli.has_flag("criticality");
  const bool tuned = cli.has_flag("tuned") || criticality;
  if (sink.log != nullptr) {
    sink.log->emit(
        "ssta", "ssta_begin",
        {obs::LogField::str("circuit", circuit->netlist.name()),
         obs::LogField::u64("chips", static_cast<std::uint64_t>(chips)),
         obs::LogField::boolean("tuned", tuned)});
  }
  stats::Rng rng(11);
  const double mc_t1 = core::period_quantile(problem, 0.5, chips, rng);
  stats::Rng rng2(11);
  const double mc_t2 = core::period_quantile(problem, 0.8413, chips, rng2);

  core::Table t({"quantity", "analytic (Clark)", "Monte-Carlo"});
  t.add_row({"mean required period (ps)", core::Table::num(analytic.mean, 2),
             "-"});
  t.add_row({"sigma (ps)", core::Table::num(analytic.sigma(), 2), "-"});
  t.add_row({"T1 = 50% quantile", core::Table::num(analytic.quantile(0.5), 2),
             core::Table::num(mc_t1, 2)});
  t.add_row({"T2 = 84.13% quantile",
             core::Table::num(analytic.quantile(0.8413), 2),
             core::Table::num(mc_t2, 2)});

  // Post-tuning analysis: the analytic engine vs the exact per-die
  // Monte-Carlo reference on the same contracted constraint graph.
  std::optional<analytic::TunedPeriodAnalysis> tuned_analysis;
  analytic::McTunedPeriod tuned_mc;
  double analytic_seconds = 0.0;
  double mc_seconds = 0.0;
  if (tuned) {
    const auto a0 = std::chrono::steady_clock::now();
    tuned_analysis = analytic::analyze_tuned_period(problem);
    analytic_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - a0)
            .count();
    analytic::McTunedOptions mopts;
    mopts.chips = chips;
    mopts.threads = threads;
    const auto m0 = std::chrono::steady_clock::now();
    tuned_mc = analytic::mc_tuned_period(problem, mopts);
    mc_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - m0)
            .count();
    t.add_row({"tuned mean (ps)",
               core::Table::num(tuned_analysis->tuned.mean, 2),
               core::Table::num(tuned_mc.mean, 2)});
    t.add_row({"tuned sigma (ps)",
               core::Table::num(tuned_analysis->tuned.sigma(), 2),
               core::Table::num(tuned_mc.sigma, 2)});
    t.add_row({"tuned T1 = 50% quantile",
               core::Table::num(tuned_analysis->tuned_quantile(0.5), 2),
               core::Table::num(tuned_mc.quantile(0.5), 2)});
    t.add_row({"tuned T2 = 84.13% quantile",
               core::Table::num(tuned_analysis->tuned_quantile(0.8413), 2),
               core::Table::num(tuned_mc.quantile(0.8413), 2)});
  }
  t.print(std::cout);
  if (tuned) {
    std::cout << "post-tuning analysis: " << tuned_analysis->candidates.size()
              << " candidate cycle(s), engine "
              << core::Table::num(analytic_seconds * 1e3, 2) << " ms vs "
              << chips << "-chip MC "
              << core::Table::num(mc_seconds * 1e3, 2) << " ms\n";
  }

  if (criticality) {
    // Rank register pairs by their probability of limiting the tuned
    // period (candidate mass split over each dominant cycle).
    std::vector<std::size_t> order(tuned_analysis->pair_criticality.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                     std::size_t b) {
      return tuned_analysis->pair_criticality[a] >
             tuned_analysis->pair_criticality[b];
    });
    core::Table ct({"pair", "src FF", "dst FF", "criticality (%)"});
    std::size_t shown = 0;
    for (const std::size_t p : order) {
      if (shown >= 10 || tuned_analysis->pair_criticality[p] < 1e-6) break;
      const timing::MonitoredPair& pair = circuit->model.pairs()[p];
      ct.add_row({core::Table::num(p),
                  circuit->netlist.cell(pair.src_ff).name,
                  circuit->netlist.cell(pair.dst_ff).name,
                  core::Table::num(
                      tuned_analysis->pair_criticality[p] * 100, 2)});
      ++shown;
    }
    std::cout << "\npost-tuning criticality (top " << shown << " of "
              << tuned_analysis->pair_criticality.size() << " pairs, "
              << core::Table::num(tuned_analysis->static_criticality * 100, 2)
              << "% on static background):\n";
    ct.print(std::cout);
  }

  if (sink.log != nullptr) {
    if (tuned) {
      sink.log->emit(
          "ssta", "ssta_complete",
          {obs::LogField::str("circuit", circuit->netlist.name()),
           obs::LogField::f64("untuned_mean", analytic.mean),
           obs::LogField::f64("untuned_sigma", analytic.sigma()),
           obs::LogField::f64("mc_t1", mc_t1),
           obs::LogField::f64("tuned_mean", tuned_analysis->tuned.mean),
           obs::LogField::f64("tuned_sigma", tuned_analysis->tuned.sigma()),
           obs::LogField::f64("mc_tuned_mean", tuned_mc.mean)});
    } else {
      sink.log->emit(
          "ssta", "ssta_complete",
          {obs::LogField::str("circuit", circuit->netlist.name()),
           obs::LogField::f64("untuned_mean", analytic.mean),
           obs::LogField::f64("untuned_sigma", analytic.sigma()),
           obs::LogField::f64("mc_t1", mc_t1)});
    }
  }

  if (const auto json_path = cli.get("json")) {
    io::JsonReporter json("ssta", threads);
    const std::string label = circuit->netlist.name();
    const auto record = [&](const char* metric, double value,
                            double seconds) {
      json.add(label, metric, value, seconds);
    };
    record("untuned_mean", analytic.mean, 0.0);
    record("untuned_sigma", analytic.sigma(), 0.0);
    record("mc_t1", mc_t1, 0.0);
    record("mc_t2", mc_t2, 0.0);
    if (tuned) {
      record("tuned_mean", tuned_analysis->tuned.mean, analytic_seconds);
      record("tuned_sigma", tuned_analysis->tuned.sigma(), analytic_seconds);
      record("mc_tuned_mean", tuned_mc.mean, mc_seconds);
      record("mc_tuned_sigma", tuned_mc.sigma, mc_seconds);
    }
    std::cout << "machine-readable output: " << json.write_file(*json_path)
              << '\n';
  }
  return 0;
}

/// Shared run/tune option plumbing: chips/seed/td/quantile/threads plus the
/// prediction/alignment switches.
core::FlowOptions flow_options_from(const Cli& cli,
                                    const core::Problem& problem) {
  core::FlowOptions opts;
  if (const auto chips = cli.get("chips")) {
    opts.chips = parse_size("chips", *chips);
  }
  if (const auto seed = cli.get("seed")) opts.seed = parse_u64("seed", *seed);
  if (const auto td = cli.get("td")) {
    opts.designated_period = parse_double("td", *td);
  }
  opts.use_prediction = !cli.has_flag("no-prediction");
  opts.test.align_with_buffers = !cli.has_flag("no-alignment");
  if (const auto threads = cli.get("threads")) {
    opts.threads = parse_size("threads", *threads);
  }
  if (const auto q = cli.get("quantile")) {
    stats::Rng rng(opts.seed ^ core::kQuantileCalibrationSeedXor);
    opts.designated_period =
        core::period_quantile(problem, parse_double("quantile", *q), 2000, rng);
  }
  return opts;
}

int cmd_run(const Cli& cli) {
  const LogSink sink = make_structured_log(cli);  // bad --log-format: fast
  const auto circuit = provision_circuit(cli);
  if (circuit->model.num_pairs() == 0) {
    std::cout << "no monitored paths (no FF pair touches a buffer)\n";
    return 1;
  }
  const core::FlowOptions opts = flow_options_from(cli, circuit->problem);

  if (sink.log != nullptr) {
    sink.log->emit(
        "run", "run_begin",
        {obs::LogField::str("circuit", circuit->netlist.name()),
         obs::LogField::u64("chips", static_cast<std::uint64_t>(opts.chips)),
         obs::LogField::u64("seed", opts.seed)});
  }
  const core::FlowResult r = core::run_flow(circuit->problem, opts);
  const core::FlowMetrics& m = r.metrics;
  if (sink.log != nullptr) {
    sink.log->emit("run", "run_complete",
                   {obs::LogField::str("circuit", circuit->netlist.name()),
                    obs::LogField::f64("td", m.designated_period),
                    obs::LogField::f64("ta", m.ta),
                    obs::LogField::f64("ra", m.ra),
                    obs::LogField::f64("yield_proposed", m.yield_proposed)});
  }
  core::Table t({"metric", "value"});
  t.add_row(
      {"designated period (ps)", core::Table::num(m.designated_period, 2)});
  t.add_row({"monitored paths np", core::Table::num(m.np)});
  t.add_row({"tested paths npt", core::Table::num(m.npt)});
  t.add_row({"batches", core::Table::num(m.num_batches)});
  t.add_row({"epsilon (ps)", core::Table::num(m.epsilon_ps, 3)});
  t.add_row({"iterations/chip ta", core::Table::num(m.ta, 2)});
  t.add_row({"iterations/tested path tv", core::Table::num(m.tv, 2)});
  t.add_row({"path-wise t'a", core::Table::num(m.ta_pathwise, 0)});
  t.add_row({"reduction ra (%)", core::Table::num(m.ra, 2)});
  t.add_row({"reduction rv (%)", core::Table::num(m.rv, 2)});
  t.add_row(
      {"yield untuned (%)", core::Table::num(m.yield_no_buffer * 100, 2)});
  t.add_row(
      {"yield proposed yt (%)", core::Table::num(m.yield_proposed * 100, 2)});
  t.add_row({"yield ideal yi (%)", core::Table::num(m.yield_ideal * 100, 2)});
  t.add_row({"yield drop yr (%)", core::Table::num(m.yield_drop * 100, 2)});
  t.add_row({"prep Tp (s)", core::Table::num(m.tp_seconds, 3)});
  t.add_row({"align Tt (s/chip)", core::Table::num(m.tt_seconds_per_chip, 5)});
  t.add_row({"config Ts (s/chip)", core::Table::num(m.ts_seconds_per_chip, 5)});
  t.print(std::cout);

  if (const auto json_path = cli.get("json")) {
    io::JsonReporter json("run", opts.threads);
    const std::string label = circuit->netlist.name();
    const auto record = [&](const char* metric, double value) {
      json.add(label, metric, value);
    };
    record("td", m.designated_period);
    record("epsilon", m.epsilon_ps);
    record("np", static_cast<double>(m.np));
    record("npt", static_cast<double>(m.npt));
    record("ta", m.ta);
    record("tv", m.tv);
    record("t'a", m.ta_pathwise);
    record("t'v", m.tv_pathwise);
    record("ra", m.ra);
    record("rv", m.rv);
    record("yield_no_buffer", m.yield_no_buffer);
    record("yield_proposed", m.yield_proposed);
    record("yield_ideal", m.yield_ideal);
    std::cout << "machine-readable output: " << json.write_file(*json_path)
              << '\n';
  }
  return 0;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string piece = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int cmd_campaign(const Cli& cli) {
  const LogSink sink = make_structured_log(cli);
  core::CampaignOptions copts;
  std::vector<core::CampaignJob> jobs;

  if (const auto spec_path = cli.get("spec")) {
    if (cli.get("circuits") || cli.get("quantiles") || cli.get("modes")) {
      std::cerr << "error: campaign: --spec carries its own circuits, "
                   "quantiles and modes; drop --circuits/--quantiles/"
                   "--modes\n";
      return 2;
    }
    io::Scenario scenario = io::load_scenario_file(*spec_path);
    copts = std::move(scenario.options);
    jobs = std::move(scenario.jobs);
    std::cout << "scenario " << scenario.name << ": " << jobs.size()
              << " job(s) over " << scenario.catalog->names().size()
              << " registered circuit(s)\n";
  }

  // Explicit CLI options override the spec's knobs (and fill the defaults
  // of the spec-less path).
  if (const auto chips = cli.get("chips")) {
    copts.flow.chips = parse_size("chips", *chips);
  }
  if (const auto seed = cli.get("seed")) {
    copts.flow.seed = parse_u64("seed", *seed);
  }
  if (const auto threads = cli.get("threads")) {
    // flow.threads of 0 inherits this
    copts.threads = parse_size("threads", *threads);
  }
  if (const auto inflation = cli.get("inflation")) {
    copts.random_inflation = parse_double("inflation", *inflation);
  }

  if (!cli.get("spec")) {
    std::vector<std::string> circuits;
    if (const auto names = cli.get("circuits")) {
      circuits = split_list(*names);
    } else {
      for (const netlist::GeneratorSpec& spec :
           netlist::paper_benchmark_specs()) {
        circuits.push_back(spec.name);
      }
    }
    std::vector<double> quantiles;
    if (const auto qs = cli.get("quantiles")) {
      for (const std::string& q : split_list(*qs)) {
        quantiles.push_back(parse_double("quantiles", q));
      }
    }
    std::vector<core::JobKind> kinds;
    if (const auto modes = cli.get("modes")) {
      for (const std::string& mode : split_list(*modes)) {
        try {
          kinds.push_back(core::job_kind_from(mode));
        } catch (const std::invalid_argument& e) {
          std::cerr << "error: campaign: --modes: " << e.what() << '\n';
          return 2;
        }
      }
    }
    jobs = core::CampaignRunner::cross(circuits, quantiles, kinds);
  }

  // Checkpoint/resume plumbing (io/checkpoint_json.hpp). The identity hash
  // covers the result-affecting options and the full job list, so a
  // checkpoint from a different campaign is rejected before anything runs.
  const auto checkpoint_path = cli.get("checkpoint");
  const bool resume = cli.has_flag("resume");
  if (resume && !checkpoint_path) {
    std::cerr << "error: campaign: --resume needs --checkpoint=<file>\n";
    return 2;
  }
  if (const auto stop = cli.get("stop-after")) {
    copts.max_jobs = parse_size("stop-after", *stop);
    if (copts.max_jobs == 0) {
      std::cerr << "error: campaign: --stop-after must be at least 1\n";
      return 2;
    }
  }
  std::unique_ptr<io::CheckpointWriter> writer;
  if (checkpoint_path) {
    const std::string identity = io::campaign_identity(jobs, copts);
    if (resume) {
      io::CampaignCheckpoint loaded =
          io::load_campaign_checkpoint(*checkpoint_path);
      io::validate_campaign_checkpoint(loaded, identity, jobs.size(),
                                       *checkpoint_path);
      std::cout << "resuming " << *checkpoint_path << ": "
                << loaded.completed.size() << "/" << jobs.size()
                << " job(s) already done\n";
      copts.completed = std::move(loaded.completed);
    } else if (std::ifstream(*checkpoint_path).good()) {
      // Never clobber a checkpoint silently: it may belong to a run the
      // user meant to resume.
      std::cerr << "error: campaign: checkpoint " << *checkpoint_path
                << " already exists; pass --resume to continue it or remove "
                   "it first\n";
      return 2;
    }
    writer = std::make_unique<io::CheckpointWriter>(
        *checkpoint_path, identity, jobs.size(), copts.completed);
    copts.on_job_complete = [&writer](std::size_t index,
                                      const core::CampaignJobResult& r) {
      writer->record(index, r);
    };
  }
  copts.log = sink.log;  // one job_complete event per finished job

  const core::CampaignResult result = core::CampaignRunner(copts).run(jobs);

  core::Table t({"circuit", "kind", "q", "Td(ps)", "np", "npt", "ta",
                 "ra(%)", "yt(%)", "yi(%)", "y0(%)", "job(s)"});
  for (const core::CampaignJobResult& r : result.jobs) {
    if (!r.completed) continue;  // left pending by --stop-after
    const core::FlowMetrics& m = r.metrics;
    const bool is_analytic = r.job.kind == core::JobKind::kAnalytic;
    t.add_row({
        r.job.circuit,
        core::job_kind_name(r.job.kind),
        r.job.quantile >= 0.0
            ? core::Table::num(r.job.quantile, 4)
            : (r.job.designated_period > 0.0 ? "Td" : "T1"),
        core::Table::num(m.designated_period, 2),
        core::Table::num(m.np),
        is_analytic ? "-" : core::Table::num(m.npt),
        is_analytic ? "-" : core::Table::num(m.ta, 2),
        is_analytic ? "-" : core::Table::num(m.ra, 2),
        is_analytic ? "-" : core::Table::num(m.yield_proposed * 100, 2),
        core::Table::num(m.yield_ideal * 100, 2),
        core::Table::num(m.yield_no_buffer * 100, 2),
        core::Table::num(r.seconds, 2),
    });
  }
  t.print(std::cout);
  const std::size_t done = result.completed_jobs();
  double job_seconds = 0.0;
  for (const core::CampaignJobResult& r : result.jobs) job_seconds += r.seconds;
  std::cout << "\ncampaign wall time: "
            << core::Table::num(result.total_seconds, 2) << " s (" << done
            << "/" << result.jobs.size() << " jobs, "
            << core::Table::num(job_seconds, 2)
            << " s of job time; artifacts reused within circuits)\n";

  if (const auto json_path = cli.get("json")) {
    io::JsonReporter json("campaign", copts.threads);
    for (const core::CampaignJobResult& r : result.jobs) {
      if (!r.completed) continue;
      const core::FlowMetrics& m = r.metrics;
      // One label per (circuit, kind, quantile/period) so sweep jobs stay
      // distinct.
      std::string label = r.job.circuit;
      if (r.job.kind != core::JobKind::kFlow) {
        label += std::string("@") + core::job_kind_name(r.job.kind);
      }
      if (r.job.quantile >= 0.0) {
        label += "@q" + core::Table::num(r.job.quantile, 4);
      } else if (r.job.designated_period > 0.0) {
        label += "@td" + core::Table::num(r.job.designated_period, 2);
      }
      const auto record = [&](const char* metric, double value) {
        json.add(label, metric, value, r.seconds);
      };
      record("td", m.designated_period);
      record("np", static_cast<double>(m.np));
      record("yield_no_buffer", m.yield_no_buffer);
      record("yield_ideal", m.yield_ideal);
      if (r.job.kind == core::JobKind::kAnalytic) {
        record("untuned_mean", m.untuned_mean);
        record("untuned_sigma", m.untuned_sigma);
        record("tuned_mean", m.tuned_mean);
        record("tuned_sigma", m.tuned_sigma);
      } else {
        record("npt", static_cast<double>(m.npt));
        record("ta", m.ta);
        record("t'v", m.tv_pathwise);
        record("ra", m.ra);
        record("rv", m.rv);
        record("yield_proposed", m.yield_proposed);
      }
    }
    std::cout << "machine-readable output: " << json.write_file(*json_path)
              << '\n';
  }
  if (done < result.jobs.size()) {
    std::cout << "campaign stopped after " << done << "/" << result.jobs.size()
              << " job(s)";
    if (checkpoint_path) {
      std::cout << " — resume with --checkpoint=" << *checkpoint_path
                << " --resume";
    }
    std::cout << '\n';
    return 3;  // distinct from success (0) and usage/runtime errors (2/1)
  }
  return 0;
}

int cmd_circuits(const Cli& cli) {
  std::shared_ptr<const scenario::CircuitCatalog> catalog;
  if (const auto spec_path = cli.get("spec")) {
    catalog = io::load_scenario_file(*spec_path).catalog;
  } else {
    catalog = scenario::CircuitCatalog::shared_paper();
  }
  core::Table t({"circuit", "spec"});
  for (const std::string& name : catalog->names()) {
    t.add_row({name, catalog->describe(name)});
  }
  t.print(std::cout);
  std::cout << "(campaign jobs name these; resolve is memoized per "
               "(circuit, inflation))\n";
  return 0;
}

/// The tester side of a networked session (`tune --connect=host:port`):
/// provision the circuit locally (the variation model is all a simulated
/// tester needs — no offline phase), run one session against the server,
/// and echo its report lines on stdout.
int cmd_tune_connect(const Cli& cli, const std::string& target) {
  // Everything the server decides is rejected loudly rather than silently
  // ignored: designated period, seeding and threading all live server-side.
  for (const char* opt : {"responses", "log", "td", "quantile", "seed",
                          "threads", "log-format", "log-file"}) {
    if (cli.get(opt)) {
      throw UsageError(std::string("tune: --") + opt +
                       " is a server-side decision in --connect mode");
    }
  }
  if (cli.has_flag("simulate")) {
    throw UsageError(
        "tune: --simulate and --connect are mutually exclusive (a connected "
        "session already simulates its dies against the server)");
  }
  const auto colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == target.size()) {
    throw UsageError("--connect=" + target + ": expected host:port");
  }
  const std::string host = target.substr(0, colon);
  const std::uint16_t port = parse_port("connect", target.substr(colon + 1));

  const auto circuit = provision_circuit(cli);
  if (circuit->model.num_pairs() == 0) {
    std::cerr << "no monitored paths (no FF pair touches a buffer)\n";
    return 1;
  }
  net::ClientOptions copts;
  if (const auto chips = cli.get("chips")) {
    copts.chips = parse_size("chips", *chips);
  }
  if (const auto window = cli.get("window")) {
    copts.window = parse_size("window", *window);
  }
  if (const auto retries = cli.get("connect-retries")) {
    copts.connect_retries = parse_size("connect-retries", *retries);
  }
  copts.lenient = cli.has_flag("lenient");
  const net::ClientResult result =
      net::run_loopback_client(host, port, circuit->problem, copts);
  for (const std::string& line : result.report_lines) {
    std::cout << line << '\n';
  }
  for (const std::string& line : result.error_lines) {
    std::cerr << line << '\n';
  }
  std::cerr << "tuned " << result.report_lines.size() << " chip(s) over "
            << host << ':' << port << " (session " << result.session_id
            << ", seed " << result.seed_base << ", "
            << result.stimuli_answered << " tester iterations)";
  if (!result.error_lines.empty()) {
    std::cerr << " (" << result.error_lines.size() << " chip(s) abandoned)";
  }
  std::cerr << '\n';
  return 0;
}

int cmd_tune(const Cli& cli) {
  if (const auto target = cli.get("connect")) {
    return cmd_tune_connect(cli, *target);
  }
  if (cli.get("connect-retries")) {
    throw UsageError(
        "tune: --connect-retries only applies with --connect=host:port");
  }
  // Mode exclusivity up front, in the same no-silent-surprises spirit (and
  // with the same usage exit code 2) as the option whitelists: --simulate
  // answers stimuli itself, so a --responses log would be ignored; --log
  // records the simulated responses and means nothing without --simulate.
  if (cli.has_flag("simulate") && cli.get("responses")) {
    std::cerr << "error: tune: --simulate and --responses are mutually "
                 "exclusive\n";
    return 2;
  }
  if (cli.get("log") && !cli.has_flag("simulate")) {
    std::cerr << "error: tune: --log only records simulated responses; "
                 "combine it with --simulate\n";
    return 2;
  }
  const LogSink sink = make_structured_log(cli);
  const auto circuit = provision_circuit(cli);
  if (circuit->model.num_pairs() == 0) {
    std::cerr << "no monitored paths (no FF pair touches a buffer)\n";
    return 1;
  }
  core::FlowOptions opts = flow_options_from(cli, circuit->problem);
  const std::size_t chips = cli.get("chips")
                                ? parse_size("chips", *cli.get("chips"))
                                : std::size_t{1};

  // The shared-ownership constructor: the service keeps the provisioned
  // bundle alive for every session it mints.
  const core::TunerService service(circuit, opts);
  io::TuneServerOptions topts;
  topts.lenient = cli.has_flag("lenient");
  if (const auto window = cli.get("window")) {
    topts.chip_window = parse_size("window", *window);
  }
  topts.log = sink.log;  // per-chip begin/final_test/report events
  io::TuneServer server(service, chips, topts);

  io::TuneServerResult result;
  if (cli.has_flag("simulate")) {
    std::ofstream log;
    std::ostream* log_stream = nullptr;
    if (const auto log_path = cli.get("log")) {
      log.open(*log_path);
      if (!log) {
        throw std::runtime_error("tune: cannot open --log file " + *log_path);
      }
      log_stream = &log;
    }
    result = server.run_simulated(std::cout, log_stream);
  } else if (const auto responses = cli.get("responses")) {
    std::ifstream in(*responses);
    if (!in) {
      throw std::runtime_error("tune: cannot open --responses file " +
                               *responses);
    }
    result = server.run(in, std::cout);
  } else {
    result = server.run(std::cin, std::cout);
  }

  std::size_t passed = 0;
  for (const core::ChipReport& r : result.reports) {
    if (r.passed.value_or(false)) ++passed;
  }
  std::size_t errored = 0;
  for (std::size_t c = 0; c < result.errors.size(); ++c) {
    if (result.errors[c].empty()) continue;
    ++errored;
    std::cerr << "chip " << c << " abandoned: " << result.errors[c] << '\n';
  }
  std::cerr << "tuned " << result.reports.size() - errored << " chip(s), "
            << result.stimuli << " tester iterations, " << passed
            << " passed at Td="
            << core::Table::num(service.designated_period(), 2) << " ps";
  if (errored > 0 || result.dropped_lines > 0) {
    std::cerr << " (" << errored << " chip(s) abandoned, "
              << result.dropped_lines << " line(s) dropped)";
  }
  std::cerr << '\n';
  return 0;
}

/// SIGTERM/SIGINT target for `serve` — the handler may only do what
/// request_drain() guarantees is async-signal-safe (atomic store plus one
/// pipe write).
net::TuneServeLoop* g_serve_loop = nullptr;

extern "C" void serve_signal_handler(int) {
  if (g_serve_loop != nullptr) g_serve_loop->request_drain();
}

int cmd_serve(const Cli& cli) {
  // Options first, so a typo fails in milliseconds instead of after the
  // offline phase.
  const LogSink sink = make_structured_log(cli);
  net::ServeOptions sopts;
  sopts.log = sink.log;
  if (const auto host = cli.get("host")) sopts.host = *host;
  if (const auto port = cli.get("port")) {
    sopts.port = parse_port("port", *port);
  }
  if (const auto status_port = cli.get("status-port")) {
    sopts.status_port =
        static_cast<int>(parse_port("status-port", *status_port));
  }
  if (const auto workers = cli.get("workers")) {
    sopts.workers = parse_size("workers", *workers);
    if (sopts.workers == 0) {
      throw UsageError("--workers must be at least 1");
    }
  }
  if (const auto pending = cli.get("max-pending")) {
    sopts.max_pending = parse_size("max-pending", *pending);
  }
  if (const auto window = cli.get("window")) {
    sopts.chip_window = parse_size("window", *window);
  }
  if (const auto chips = cli.get("max-chips")) {
    sopts.max_chips_per_session = parse_size("max-chips", *chips);
  }
  if (const auto sessions = cli.get("max-sessions")) {
    sopts.max_sessions = parse_size("max-sessions", *sessions);
  }
  if (const auto timeout = cli.get("io-timeout")) {
    sopts.io_timeout_seconds = parse_double("io-timeout", *timeout);
  }

  const auto circuit = provision_circuit(cli);
  if (circuit->model.num_pairs() == 0) {
    std::cerr << "no monitored paths (no FF pair touches a buffer)\n";
    return 1;
  }
  core::FlowOptions opts = flow_options_from(cli, circuit->problem);
  const core::TunerService service(circuit, opts);

  net::TuneServeLoop loop(service, sopts);
  loop.start();
  g_serve_loop = &loop;
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);
  // The line scripts (and the CI smoke step) wait for; std::endl flushes so
  // a pipe reader sees it before the first session lands.
  std::cout << "serving on " << loop.host() << ":" << loop.port()
            << std::endl;
  if (sopts.status_port >= 0) {
    std::cout << "status on " << loop.host() << ":" << loop.status_port()
              << std::endl;
  }
  loop.wait();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_serve_loop = nullptr;

  const obs::RegistrySnapshot m = loop.metrics();
  const obs::HistogramSnapshot* latency =
      m.histogram(net::kMetricSessionLatency);
  const auto latency_ms = [latency](double q) {
    return latency == nullptr ? 0.0 : latency->quantile(q) * 1e3;
  };
  std::cerr << "served " << m.counter(net::kMetricSessionsCompleted)
            << " session(s) (" << m.counter(net::kMetricSessionsFailed)
            << " failed), " << m.counter(net::kMetricChipsTuned)
            << " chip(s), " << m.counter(net::kMetricStimuli)
            << " stimuli in "
            << core::Table::num(m.gauge(net::kMetricWallSeconds), 2)
            << " s ("
            << core::Table::num(m.gauge(net::kMetricSessionsPerSec), 1)
            << " sessions/s); latency p50/p90/p99 "
            << core::Table::num(latency_ms(0.50), 2) << "/"
            << core::Table::num(latency_ms(0.90), 2) << "/"
            << core::Table::num(latency_ms(0.99), 2) << " ms\n";
  return 0;
}

/// SIGTERM/SIGINT target for `balance` — same async-signal-safety story as
/// serve's handler: only the balancer's request_drain() is signal-safe.
/// Supervisor drain (kill/waitpid/join) happens on the main thread after
/// the balancer's wait() returns.
fleet::FleetBalancer* g_fleet_balancer = nullptr;

extern "C" void balance_signal_handler(int) {
  if (g_fleet_balancer != nullptr) g_fleet_balancer->request_drain();
}

int cmd_balance(const Cli& cli) {
  const LogSink sink = make_structured_log(cli);

  std::vector<fleet::WorkerEndpoint> endpoints;
  if (const auto workers = cli.get("workers")) {
    for (const std::string& target : split_list(*workers)) {
      const auto [host, port] = split_host_port("workers", target);
      if (port == 0) {
        throw UsageError("--workers=" + target +
                         ": a worker needs a nonzero port");
      }
      endpoints.push_back(fleet::WorkerEndpoint{host, port});
    }
  }
  std::size_t spawn = 0;
  if (const auto s = cli.get("spawn")) spawn = parse_size("spawn", *s);
  if (endpoints.empty() && spawn == 0) {
    throw UsageError("balance needs --workers=host:port,... and/or --spawn=N");
  }
  // Circuit/flow options configure the spawned serve children; with only
  // external --workers they would be silently ignored — reject instead.
  static const char* kForwarded[] = {"circuit", "bench",     "buffers",
                                     "policy",  "td",        "quantile",
                                     "seed",    "threads"};
  if (spawn == 0) {
    for (const char* opt : kForwarded) {
      if (cli.get(opt)) {
        throw UsageError(std::string("balance: --") + opt +
                         " configures --spawn'd workers; external --workers "
                         "carry their own circuit");
      }
    }
  } else {
    // The children must be able to provision a circuit at all; fail here
    // rather than with N cryptic child exits.
    if (!cli.get("circuit") && !cli.get("bench")) {
      throw UsageError(
          "balance: --spawn needs --circuit=<name> or --bench=<file> for "
          "the workers");
    }
  }

  fleet::RegistryOptions ropts;
  if (const auto interval = cli.get("probe-interval")) {
    ropts.probe_interval_seconds = parse_double("probe-interval", *interval);
  }
  fleet::WorkerRegistry registry(ropts);
  for (const fleet::WorkerEndpoint& endpoint : endpoints) {
    (void)registry.add_worker(endpoint);
  }
  std::vector<std::size_t> spawn_slots;
  spawn_slots.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    // Port unknown until the child's banner; the slot starts unroutable.
    spawn_slots.push_back(
        registry.add_worker(fleet::WorkerEndpoint{"127.0.0.1", 0}));
  }

  std::unique_ptr<fleet::ProcessSupervisor> supervisor;
  if (spawn > 0) {
    fleet::SupervisorOptions sup;
    sup.children = spawn;
    sup.log = sink.log;
    sup.argv = {"/proc/self/exe", "serve", "--port=0"};
    for (const char* opt : kForwarded) {
      if (const auto value = cli.get(opt)) {
        sup.argv.push_back("--" + std::string(opt) + "=" + *value);
      }
    }
    supervisor = std::make_unique<fleet::ProcessSupervisor>(
        std::move(sup),
        [&registry, spawn_slots](std::size_t child,
                                 const fleet::WorkerEndpoint& endpoint) {
          registry.update_endpoint(spawn_slots[child], endpoint);
        });
  }

  fleet::BalancerOptions bopts;
  bopts.log = sink.log;
  if (const auto host = cli.get("host")) bopts.host = *host;
  if (const auto port = cli.get("port")) {
    bopts.port = parse_port("port", *port);
  }
  if (const auto status_port = cli.get("status-port")) {
    bopts.status_port =
        static_cast<int>(parse_port("status-port", *status_port));
  }
  if (const auto relay = cli.get("relay-workers")) {
    bopts.relay_workers = parse_size("relay-workers", *relay);
    if (bopts.relay_workers == 0) {
      throw UsageError("--relay-workers must be at least 1");
    }
  }
  if (const auto pending = cli.get("max-pending")) {
    bopts.max_pending = parse_size("max-pending", *pending);
  }
  if (const auto sessions = cli.get("max-sessions")) {
    bopts.max_sessions = parse_size("max-sessions", *sessions);
  }
  if (const auto retries = cli.get("retries")) {
    bopts.max_session_retries = parse_size("retries", *retries);
  }
  if (const auto timeout = cli.get("io-timeout")) {
    bopts.io_timeout_seconds = parse_double("io-timeout", *timeout);
  }

  // All registry slots exist by here (the FleetBalancer per-slot gauge
  // contract); endpoints still flow in from banners afterwards.
  fleet::FleetBalancer balancer(registry, bopts);
  if (supervisor != nullptr) supervisor->start();  // blocks until banners
  registry.start_probing();
  balancer.start();
  g_fleet_balancer = &balancer;
  std::signal(SIGTERM, balance_signal_handler);
  std::signal(SIGINT, balance_signal_handler);
  std::cout << "balancing on " << balancer.host() << ":" << balancer.port()
            << std::endl;
  if (bopts.status_port >= 0) {
    std::cout << "status on " << balancer.host() << ":"
              << balancer.status_port() << std::endl;
  }
  balancer.wait();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_fleet_balancer = nullptr;
  registry.stop_probing();
  if (supervisor != nullptr) supervisor->drain();

  const obs::RegistrySnapshot m = balancer.metrics();
  std::cerr << "balanced " << m.counter(fleet::kFleetSessionsCompleted)
            << " session(s) (" << m.counter(fleet::kFleetSessionsFailed)
            << " failed, " << m.counter(fleet::kFleetSessionsRetried)
            << " retried) across " << registry.size() << " worker(s) in "
            << core::Table::num(m.gauge(fleet::kFleetWallSeconds), 2)
            << " s ("
            << core::Table::num(m.gauge(fleet::kFleetSessionsPerSec), 1)
            << " sessions/s)";
  if (supervisor != nullptr) {
    std::cerr << "; " << supervisor->restarts() << " worker restart(s)";
  }
  std::cerr << '\n';
  return 0;
}

int cmd_status(const Cli& cli) {
  const auto target = cli.get("connect");
  if (!target) throw UsageError("status needs --connect=host:port");
  const auto [host, port] = split_host_port("connect", *target);
  if (const auto format = cli.get("format")) {
    if (*format == "prometheus") {
      std::cout << net::fetch_prometheus(host, port);
      return 0;
    }
    if (*format != "json") {
      throw UsageError("--format=" + *format + ": expected json or prometheus");
    }
  }
  const std::string line = net::fetch_status(host, port);
  // The machine-readable line alone on stdout (pipe into python/jq); the
  // human summary goes to stderr like every other end-of-run summary.
  std::cout << line << '\n';
  try {
    io::json::Parser parser(line, "status");
    const io::json::Value doc = parser.parse();
    const auto number = [&doc](const char* section, const char* name) {
      const io::json::Value* s = doc.find(section);
      const io::json::Value* v = s == nullptr ? nullptr : s->find(name);
      return v == nullptr ? 0.0 : v->number;
    };
    const io::json::Value* hists = doc.find("histograms");
    const io::json::Value* latency =
        hists == nullptr ? nullptr : hists->find(net::kMetricSessionLatency);
    const auto latency_ms = [latency](const char* key) {
      const io::json::Value* v =
          latency == nullptr ? nullptr : latency->find(key);
      return v == nullptr ? 0.0 : v->number * 1e3;
    };
    std::cerr << core::Table::num(
                     number("counters", net::kMetricSessionsCompleted), 0)
              << " session(s) done, "
              << core::Table::num(
                     number("gauges", net::kMetricActiveSessions), 0)
              << " active ("
              << core::Table::num(
                     number("counters", net::kMetricSessionsFailed), 0)
              << " failed); "
              << core::Table::num(
                     number("gauges", net::kMetricSessionsPerSec), 1)
              << " sessions/s; latency p50/p99 "
              << core::Table::num(latency_ms("p50"), 2) << "/"
              << core::Table::num(latency_ms("p99"), 2) << " ms\n";
  } catch (const io::json::ParseError&) {
    // The raw line is already on stdout; the summary is best-effort.
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  if (cli.command.empty()) {
    usage(std::cerr);
    return 1;
  }
  if (const int rc = validate_cli(cli); rc != 0) return rc;
  try {
    if (cli.command == "help") return cmd_help(cli);
    if (cli.command == "generate") return cmd_generate(cli);
    if (cli.command == "info") return cmd_info(cli);
    if (cli.command == "ssta") return cmd_ssta(cli);
    if (cli.command == "run") return cmd_run(cli);
    if (cli.command == "campaign") return cmd_campaign(cli);
    if (cli.command == "circuits") return cmd_circuits(cli);
    if (cli.command == "tune") return cmd_tune(cli);
    if (cli.command == "serve") return cmd_serve(cli);
    if (cli.command == "balance") return cmd_balance(cli);
    if (cli.command == "status") return cmd_status(cli);
    return 2;  // unreachable: validate_cli rejected unknown commands
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  } catch (const io::ScenarioError& e) {
    // A malformed scenario spec is a usage error, same as a bad option.
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  } catch (const io::CheckpointError& e) {
    // Corrupt or mismatched checkpoints are bad inputs, not crashes.
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
