// Tune-protocol tests: the line-oriented stimulus/response server must
// reproduce the in-process driver exactly, tolerate arbitrarily shuffled
// (out-of-order) replayed response logs, and reject malformed or truncated
// streams with clear errors instead of wrong results.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/tuner_service.hpp"
#include "io/tune_protocol.hpp"
#include "netlist/generator.hpp"
#include "parallel/deterministic_for.hpp"
#include "timing/model.hpp"

namespace effitest::io {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  core::Problem problem;
  core::FlowOptions options;

  Fixture()
      : circuit(netlist::generate_circuit([] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 70;
          s.num_gates = 900;
          s.num_buffers = 2;
          s.num_critical_paths = 20;
          s.seed = 23;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {
    options.seed = 1234;
  }
};

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

void expect_reports_equal(const core::ChipReport& a,
                          const core::ChipReport& b) {
  EXPECT_EQ(a.test.iterations, b.test.iterations);
  EXPECT_EQ(a.test.forced, b.test.forced);
  EXPECT_EQ(a.test.tested, b.test.tested);
  ASSERT_EQ(a.test.lower.size(), b.test.lower.size());
  for (std::size_t p = 0; p < a.test.lower.size(); ++p) {
    EXPECT_EQ(a.test.lower[p], b.test.lower[p]) << "lower " << p;
    EXPECT_EQ(a.test.upper[p], b.test.upper[p]) << "upper " << p;
  }
  EXPECT_EQ(a.config.feasible, b.config.feasible);
  EXPECT_EQ(a.config.steps, b.config.steps);
  EXPECT_EQ(a.config.xi, b.config.xi);
  EXPECT_EQ(a.passed, b.passed);
}

TEST(TuneProtocol, SimulatedRunMatchesDirectDrive) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 4;

  TuneServer server(service, kChips);
  std::ostringstream protocol, log;
  const TuneServerResult streamed = server.run_simulated(protocol, &log);
  ASSERT_EQ(streamed.reports.size(), kChips);

  for (std::size_t c = 0; c < kChips; ++c) {
    stats::Rng rng(parallel::index_seed(service.monte_carlo_seed_base(), c));
    const timing::Chip die = f.model.sample_chip(rng);
    core::SimulatedChip tester(f.problem, die);
    core::TuningSession session = service.begin_chip();
    session.drive(tester);
    expect_reports_equal(streamed.reports[c], session.report());
  }

  // The emitted stream carries the handshake, one report per chip, and a
  // closing bye.
  const std::string text = protocol.str();
  EXPECT_NE(text.find("effitest-tune-v1 chips=4"), std::string::npos);
  EXPECT_EQ(lines_of(text).back(), "bye");
  std::size_t reports = 0;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("report ", 0) == 0) ++reports;
  }
  EXPECT_EQ(reports, kChips);
}

TEST(TuneProtocol, InOrderReplayReproducesReports) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 3;

  std::ostringstream protocol, log;
  const TuneServerResult simulated =
      TuneServer(service, kChips).run_simulated(protocol, &log);

  std::istringstream replay(log.str());
  std::ostringstream replay_out;
  const TuneServerResult replayed =
      TuneServer(service, kChips).run(replay, replay_out);
  ASSERT_EQ(replayed.reports.size(), kChips);
  EXPECT_EQ(replayed.stimuli, simulated.stimuli);
  for (std::size_t c = 0; c < kChips; ++c) {
    expect_reports_equal(replayed.reports[c], simulated.reports[c]);
  }
  // Byte-identical protocol stream, responses being equal.
  EXPECT_EQ(replay_out.str(), protocol.str());
}

TEST(TuneProtocol, ShuffledOutOfOrderReplayReproducesReports) {
  // A replayed log shuffled across chips AND within chips must still tune
  // every chip to the same reports: the server buffers by (chip, seq).
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 3;

  std::ostringstream protocol, log;
  const TuneServerResult simulated =
      TuneServer(service, kChips).run_simulated(protocol, &log);

  std::vector<std::string> responses = lines_of(log.str());
  std::mt19937_64 shuffle_rng(99);
  std::shuffle(responses.begin(), responses.end(), shuffle_rng);

  std::istringstream replay(join_lines(responses));
  std::ostringstream replay_out;
  const TuneServerResult replayed =
      TuneServer(service, kChips).run(replay, replay_out);
  ASSERT_EQ(replayed.reports.size(), kChips);
  for (std::size_t c = 0; c < kChips; ++c) {
    expect_reports_equal(replayed.reports[c], simulated.reports[c]);
  }
}

TEST(TuneProtocol, TruncatedReplayFailsCleanly) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  std::ostringstream protocol, log;
  (void)TuneServer(service, 2).run_simulated(protocol, &log);

  std::vector<std::string> responses = lines_of(log.str());
  ASSERT_GT(responses.size(), 1u);
  responses.pop_back();
  std::istringstream replay(join_lines(responses));
  std::ostringstream out;
  EXPECT_THROW((void)TuneServer(service, 2).run(replay, out),
               std::runtime_error);
}

TEST(TuneProtocol, MalformedAndForeignResponsesFailCleanly) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);

  const auto run_with = [&](const std::string& input) {
    std::istringstream in(input);
    std::ostringstream out;
    return TuneServer(service, 1).run(in, out);
  };
  EXPECT_THROW((void)run_with("nonsense line\n"), std::runtime_error);
  EXPECT_THROW((void)run_with("response 7 0 1\n"), std::runtime_error);
  EXPECT_THROW((void)run_with("response 0 0 2xy\n"), std::runtime_error);
}

}  // namespace
}  // namespace effitest::io
