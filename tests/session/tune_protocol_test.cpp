// Tune-protocol tests: the line-oriented stimulus/response server must
// reproduce the in-process driver exactly, tolerate arbitrarily shuffled
// (out-of-order) replayed response logs, and reject malformed or truncated
// streams with clear errors instead of wrong results.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/tuner_service.hpp"
#include "io/tune_protocol.hpp"
#include "netlist/generator.hpp"
#include "parallel/deterministic_for.hpp"
#include "timing/model.hpp"

namespace effitest::io {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  core::Problem problem;
  core::FlowOptions options;

  Fixture()
      : circuit(netlist::generate_circuit([] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 70;
          s.num_gates = 900;
          s.num_buffers = 2;
          s.num_critical_paths = 20;
          s.seed = 23;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {
    options.seed = 1234;
  }
};

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

void expect_reports_equal(const core::ChipReport& a,
                          const core::ChipReport& b) {
  EXPECT_EQ(a.test.iterations, b.test.iterations);
  EXPECT_EQ(a.test.forced, b.test.forced);
  EXPECT_EQ(a.test.tested, b.test.tested);
  ASSERT_EQ(a.test.lower.size(), b.test.lower.size());
  for (std::size_t p = 0; p < a.test.lower.size(); ++p) {
    EXPECT_EQ(a.test.lower[p], b.test.lower[p]) << "lower " << p;
    EXPECT_EQ(a.test.upper[p], b.test.upper[p]) << "upper " << p;
  }
  EXPECT_EQ(a.config.feasible, b.config.feasible);
  EXPECT_EQ(a.config.steps, b.config.steps);
  EXPECT_EQ(a.config.xi, b.config.xi);
  EXPECT_EQ(a.passed, b.passed);
}

TEST(TuneProtocol, SimulatedRunMatchesDirectDrive) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 4;

  TuneServer server(service, kChips);
  std::ostringstream protocol, log;
  const TuneServerResult streamed = server.run_simulated(protocol, &log);
  ASSERT_EQ(streamed.reports.size(), kChips);

  for (std::size_t c = 0; c < kChips; ++c) {
    stats::Rng rng(parallel::index_seed(service.monte_carlo_seed_base(), c));
    const timing::Chip die = f.model.sample_chip(rng);
    core::SimulatedChip tester(f.problem, die);
    core::TuningSession session = service.begin_chip();
    session.drive(tester);
    expect_reports_equal(streamed.reports[c], session.report());
  }

  // The emitted stream carries the handshake, one report per chip, and a
  // closing bye.
  const std::string text = protocol.str();
  EXPECT_NE(text.find("effitest-tune-v1 chips=4"), std::string::npos);
  EXPECT_EQ(lines_of(text).back(), "bye");
  std::size_t reports = 0;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("report ", 0) == 0) ++reports;
  }
  EXPECT_EQ(reports, kChips);
}

TEST(TuneProtocol, InOrderReplayReproducesReports) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 3;

  std::ostringstream protocol, log;
  const TuneServerResult simulated =
      TuneServer(service, kChips).run_simulated(protocol, &log);

  std::istringstream replay(log.str());
  std::ostringstream replay_out;
  const TuneServerResult replayed =
      TuneServer(service, kChips).run(replay, replay_out);
  ASSERT_EQ(replayed.reports.size(), kChips);
  EXPECT_EQ(replayed.stimuli, simulated.stimuli);
  for (std::size_t c = 0; c < kChips; ++c) {
    expect_reports_equal(replayed.reports[c], simulated.reports[c]);
  }
  // Byte-identical protocol stream, responses being equal.
  EXPECT_EQ(replay_out.str(), protocol.str());
}

TEST(TuneProtocol, CrlfReplayReproducesReports) {
  // A DOS/telnet-style tester terminates every response with \r\n; the
  // server must strip the \r instead of rejecting every frame as
  // malformed (the .bench parser got this treatment in PR 5 — the
  // protocol reader regressed the same way).
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 3;

  std::ostringstream protocol, log;
  const TuneServerResult simulated =
      TuneServer(service, kChips).run_simulated(protocol, &log);

  std::string crlf_log;
  for (const std::string& line : lines_of(log.str())) {
    crlf_log += line;
    crlf_log += "\r\n";
  }
  // Strict mode: every frame must be accepted, reports byte-identical.
  {
    std::istringstream replay(crlf_log);
    std::ostringstream replay_out;
    const TuneServerResult replayed =
        TuneServer(service, kChips).run(replay, replay_out);
    ASSERT_EQ(replayed.reports.size(), kChips);
    for (std::size_t c = 0; c < kChips; ++c) {
      expect_reports_equal(replayed.reports[c], simulated.reports[c]);
    }
    EXPECT_EQ(replay_out.str(), protocol.str());
  }
  // Lenient mode must not misread the frames as garbage either: zero
  // drops, zero abandoned chips.
  {
    std::istringstream replay(crlf_log);
    std::ostringstream replay_out;
    TuneServerOptions lenient;
    lenient.lenient = true;
    const TuneServerResult replayed =
        TuneServer(service, kChips, lenient).run(replay, replay_out);
    EXPECT_EQ(replayed.dropped_lines, 0u);
    for (const std::string& err : replayed.errors) EXPECT_TRUE(err.empty());
    for (std::size_t c = 0; c < kChips; ++c) {
      expect_reports_equal(replayed.reports[c], simulated.reports[c]);
    }
  }
  // A bare CR line (CRLF blank line) is still a blank line, not a frame.
  {
    std::istringstream replay("\r\n# comment\r\n" + crlf_log);
    std::ostringstream replay_out;
    const TuneServerResult replayed =
        TuneServer(service, kChips).run(replay, replay_out);
    for (std::size_t c = 0; c < kChips; ++c) {
      expect_reports_equal(replayed.reports[c], simulated.reports[c]);
    }
  }
}

TEST(TuneProtocol, ChipWindowBoundsLiveSessionsAndPreservesReports) {
  // Per-session backpressure: with chip_window=W only W sessions are live
  // at a time — the initial burst is W stimulus lines, not one per chip —
  // and the reports stay identical to the unwindowed run for every W.
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 5;

  std::ostringstream protocol;
  const TuneServerResult unwindowed =
      TuneServer(service, kChips).run_simulated(protocol, nullptr);

  for (const std::size_t window : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{64}}) {
    TuneServerOptions opts;
    opts.chip_window = window;
    std::ostringstream windowed_protocol, log;
    const TuneServerResult windowed =
        TuneServer(service, kChips, opts).run_simulated(windowed_protocol,
                                                        &log);
    ASSERT_EQ(windowed.reports.size(), kChips) << "window " << window;
    EXPECT_EQ(windowed.stimuli, unwindowed.stimuli) << "window " << window;
    for (std::size_t c = 0; c < kChips; ++c) {
      expect_reports_equal(windowed.reports[c], unwindowed.reports[c]);
    }

    // The window really bounds the live set: until the first chip
    // completes, at most `window` distinct chips appear in the stream —
    // and every chip is eventually admitted (one seq-0 stimulus each).
    std::set<std::size_t> live_before_first_report;
    bool saw_report = false;
    std::size_t first_stimuli = 0;
    for (const std::string& line : lines_of(windowed_protocol.str())) {
      if (line.rfind("report ", 0) == 0) saw_report = true;
      if (line.rfind("stimulus ", 0) != 0 && line.rfind("final ", 0) != 0) {
        continue;
      }
      std::istringstream is(line);
      std::string tag;
      std::size_t chip = 0, seq = 0;
      is >> tag >> chip >> seq;
      if (seq == 0) ++first_stimuli;
      if (!saw_report) live_before_first_report.insert(chip);
    }
    EXPECT_LE(live_before_first_report.size(), window)
        << "window " << window;
    EXPECT_EQ(first_stimuli, kChips);  // every chip eventually admitted

    // And a windowed REPLAY of the windowed log reproduces the reports:
    // responses for not-yet-admitted chips wait in the reorder buffer.
    std::vector<std::string> responses = lines_of(log.str());
    std::mt19937_64 shuffle_rng(7 + window);
    std::shuffle(responses.begin(), responses.end(), shuffle_rng);
    std::istringstream replay(join_lines(responses));
    std::ostringstream replay_out;
    const TuneServerResult replayed =
        TuneServer(service, kChips, opts).run(replay, replay_out);
    for (std::size_t c = 0; c < kChips; ++c) {
      expect_reports_equal(replayed.reports[c], unwindowed.reports[c]);
    }
  }
}

TEST(TuneProtocol, ChipWindowInitialBurstIsBounded) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 6;
  TuneServerOptions opts;
  opts.chip_window = 2;
  opts.lenient = true;

  // Feed an empty stream: the server emits its initial burst, then EOF
  // abandons everything. Only the 2 admitted chips may have stimuli.
  std::istringstream empty_in("");
  std::ostringstream out;
  const TuneServerResult result =
      TuneServer(service, kChips, opts).run(empty_in, out);
  std::size_t stimulus_lines = 0;
  for (const std::string& line : lines_of(out.str())) {
    if (line.rfind("stimulus ", 0) == 0 || line.rfind("final ", 0) == 0) {
      ++stimulus_lines;
    }
  }
  EXPECT_EQ(stimulus_lines, 2u);
  EXPECT_EQ(result.stimuli, 2u);
  // Every chip is reported abandoned — the unadmitted ones without ever
  // seeing a stimulus.
  for (const std::string& err : result.errors) EXPECT_FALSE(err.empty());
}

TEST(TuneProtocol, ShuffledOutOfOrderReplayReproducesReports) {
  // A replayed log shuffled across chips AND within chips must still tune
  // every chip to the same reports: the server buffers by (chip, seq).
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 3;

  std::ostringstream protocol, log;
  const TuneServerResult simulated =
      TuneServer(service, kChips).run_simulated(protocol, &log);

  std::vector<std::string> responses = lines_of(log.str());
  std::mt19937_64 shuffle_rng(99);
  std::shuffle(responses.begin(), responses.end(), shuffle_rng);

  std::istringstream replay(join_lines(responses));
  std::ostringstream replay_out;
  const TuneServerResult replayed =
      TuneServer(service, kChips).run(replay, replay_out);
  ASSERT_EQ(replayed.reports.size(), kChips);
  for (std::size_t c = 0; c < kChips; ++c) {
    expect_reports_equal(replayed.reports[c], simulated.reports[c]);
  }
}

TEST(TuneProtocol, TruncatedReplayFailsCleanly) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  std::ostringstream protocol, log;
  (void)TuneServer(service, 2).run_simulated(protocol, &log);

  std::vector<std::string> responses = lines_of(log.str());
  ASSERT_GT(responses.size(), 1u);
  responses.pop_back();
  std::istringstream replay(join_lines(responses));
  std::ostringstream out;
  EXPECT_THROW((void)TuneServer(service, 2).run(replay, out),
               std::runtime_error);
}

TEST(TuneProtocol, MalformedAndForeignResponsesFailCleanly) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);

  const auto run_with = [&](const std::string& input) {
    std::istringstream in(input);
    std::ostringstream out;
    return TuneServer(service, 1).run(in, out);
  };
  EXPECT_THROW((void)run_with("nonsense line\n"), std::runtime_error);
  EXPECT_THROW((void)run_with("response 7 0 1\n"), std::runtime_error);
  EXPECT_THROW((void)run_with("response 0 0 2xy\n"), std::runtime_error);
}

// --- fuzz-driven hardening (strict mode) ----------------------------------

TEST(TuneProtocol, OversizedResponseWidthIsRejectedBeforeBuffering) {
  // A response wider than np can never match any stimulus; it must be
  // rejected up front, not parked in the reorder buffer (regression for a
  // fuzz finding: huge <bits> fields buffered under far-future seqs grew
  // memory without bound).
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  const std::size_t np = f.problem.model().num_pairs();
  std::istringstream in("response 0 5 " + std::string(np + 1, '1') + "\n");
  std::ostringstream out;
  try {
    (void)TuneServer(service, 1).run(in, out);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the protocol maximum"),
              std::string::npos)
        << e.what();
  }
}

TEST(TuneProtocol, ImplausibleSequenceNumberIsRejected) {
  // Same fuzz finding, other axis: a seq far beyond the next expected one
  // (e.g. a wrapped negative) must be rejected, not buffered forever.
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  std::istringstream in("response 0 987654321 1\n");
  std::ostringstream out;
  try {
    (void)TuneServer(service, 1).run(in, out);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible sequence number"),
              std::string::npos)
        << e.what();
  }
}

// --- lenient mode ---------------------------------------------------------

TEST(TuneProtocol, LenientBadFrameKillsOnlyThatChip) {
  // A malformed frame attributable to one chip abandons that chip alone:
  // every sibling's report stays byte-identical to an undisturbed run.
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 3;

  std::ostringstream protocol, log;
  const TuneServerResult clean =
      TuneServer(service, kChips).run_simulated(protocol, &log);

  // Widen the bits of chip 1's first response: a width mismatch.
  std::vector<std::string> responses = lines_of(log.str());
  bool corrupted = false;
  for (std::string& line : responses) {
    if (!corrupted && line.rfind("response 1 ", 0) == 0) {
      line += "0";
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);

  TuneServerOptions lenient;
  lenient.lenient = true;
  std::istringstream replay(join_lines(responses));
  std::ostringstream out;
  const TuneServerResult result =
      TuneServer(service, kChips, lenient).run(replay, out);

  ASSERT_EQ(result.errors.size(), kChips);
  EXPECT_TRUE(result.errors[0].empty());
  EXPECT_FALSE(result.errors[1].empty());
  EXPECT_TRUE(result.errors[2].empty());
  expect_reports_equal(result.reports[0], clean.reports[0]);
  expect_reports_equal(result.reports[2], clean.reports[2]);
  // The abandoned chip's report slot is default-constructed.
  EXPECT_FALSE(result.reports[1].passed.has_value());
  EXPECT_EQ(result.reports[1].test.iterations, 0u);
  // The stream announced the abandonment.
  EXPECT_NE(out.str().find("error 1 "), std::string::npos);
}

TEST(TuneProtocol, LenientDropsUnattributableGarbage) {
  // Unparseable lines and out-of-range chip ids belong to no session:
  // lenient mode drops and counts them, and every chip still tunes to the
  // clean-run reports.
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  constexpr std::size_t kChips = 2;

  std::ostringstream protocol, log;
  const TuneServerResult clean =
      TuneServer(service, kChips).run_simulated(protocol, &log);

  std::string noisy = "total garbage !!\nresponse 99 0 1\n" + log.str();
  TuneServerOptions lenient;
  lenient.lenient = true;
  std::istringstream replay(noisy);
  std::ostringstream out;
  const TuneServerResult result =
      TuneServer(service, kChips, lenient).run(replay, out);

  EXPECT_EQ(result.dropped_lines, 2u);
  ASSERT_EQ(result.errors.size(), kChips);
  for (std::size_t c = 0; c < kChips; ++c) {
    EXPECT_TRUE(result.errors[c].empty()) << c;
    expect_reports_equal(result.reports[c], clean.reports[c]);
  }
}

TEST(TuneProtocol, LenientTruncatedStreamErrorsUnfinishedChipsOnly) {
  Fixture f;
  const core::TunerService service(f.problem, f.options);
  std::ostringstream protocol, log;
  (void)TuneServer(service, 2).run_simulated(protocol, &log);

  // Keep only chip 0's responses: chip 1 starves and is abandoned at EOF;
  // chip 0 finishes normally.
  std::vector<std::string> responses;
  for (const std::string& line : lines_of(log.str())) {
    if (line.rfind("response 0 ", 0) == 0) responses.push_back(line);
  }
  TuneServerOptions lenient;
  lenient.lenient = true;
  std::istringstream replay(join_lines(responses));
  std::ostringstream out;
  const TuneServerResult result =
      TuneServer(service, 2, lenient).run(replay, out);
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_TRUE(result.errors[0].empty());
  EXPECT_FALSE(result.errors[1].empty());
  EXPECT_NE(result.errors[1].find("stream ended"), std::string::npos);
}

}  // namespace
}  // namespace effitest::io
