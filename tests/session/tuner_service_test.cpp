// TunerService / TuningSession contract tests: a chip is tuned purely
// through the ChipUnderTest boundary, sessions are pure functions of their
// responses, concurrent sessions share one service's artifacts without
// interference, and a Monte-Carlo driver over the service reproduces
// run_flow exactly (the golden lock in integration/ pins the absolute
// values; these tests pin the equivalences).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/flow.hpp"
#include "core/tuner_service.hpp"
#include "netlist/generator.hpp"
#include "parallel/deterministic_for.hpp"
#include "timing/model.hpp"

namespace effitest::core {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;

  explicit Fixture(std::uint64_t seed = 21)
      : circuit(netlist::generate_circuit([&] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 70;
          s.num_gates = 900;
          s.num_buffers = 2;
          s.num_critical_paths = 20;
          s.seed = seed;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}
};

void expect_reports_equal(const ChipReport& a, const ChipReport& b) {
  EXPECT_EQ(a.test.iterations, b.test.iterations);
  EXPECT_EQ(a.test.forced, b.test.forced);
  EXPECT_EQ(a.test.tested, b.test.tested);
  ASSERT_EQ(a.test.lower.size(), b.test.lower.size());
  for (std::size_t p = 0; p < a.test.lower.size(); ++p) {
    EXPECT_EQ(a.test.lower[p], b.test.lower[p]) << "lower " << p;
    EXPECT_EQ(a.test.upper[p], b.test.upper[p]) << "upper " << p;
  }
  ASSERT_EQ(a.bounds.lower.size(), b.bounds.lower.size());
  for (std::size_t p = 0; p < a.bounds.lower.size(); ++p) {
    EXPECT_EQ(a.bounds.lower[p], b.bounds.lower[p]) << "cfg lower " << p;
    EXPECT_EQ(a.bounds.upper[p], b.bounds.upper[p]) << "cfg upper " << p;
  }
  EXPECT_EQ(a.config.feasible, b.config.feasible);
  EXPECT_EQ(a.config.steps, b.config.steps);
  EXPECT_EQ(a.config.xi, b.config.xi);
  EXPECT_EQ(a.test.final_steps, b.test.final_steps);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.designated_period, b.designated_period);
}

TEST(TuningSession, StateMachineMatchesDrive) {
  // Driving the session by hand through next_stimulus/record_response (the
  // protocol shape) must equal the convenience drive() loop exactly.
  Fixture f;
  FlowOptions opts;
  opts.seed = 99;
  const TunerService service(f.problem, opts);

  stats::Rng rng(parallel::index_seed(service.monte_carlo_seed_base(), 0));
  const timing::Chip die = f.model.sample_chip(rng);
  SimulatedChip tester(f.problem, die);

  TuningSession driven = service.begin_chip();
  driven.drive(tester);

  TuningSession manual = service.begin_chip();
  std::size_t stimuli = 0;
  while (manual.phase() != SessionPhase::kDone) {
    const Stimulus& s = manual.next_stimulus();
    // next_stimulus is idempotent until answered.
    const Stimulus& again = manual.next_stimulus();
    ASSERT_EQ(s.period, again.period);
    ASSERT_EQ(s.armed, again.armed);
    ++stimuli;
    if (manual.phase() == SessionPhase::kTest) {
      ASSERT_FALSE(s.armed.empty());
      manual.record_response(tester.apply(s));
    } else {
      ASSERT_TRUE(s.armed.empty());  // final go/no-go is one bit
      manual.record_final(tester.final_test(s.period, s.steps));
    }
  }
  // One stimulus per tester iteration, plus the final go/no-go when the
  // configuration was feasible (an infeasible chip is rejected untested).
  EXPECT_EQ(stimuli, driven.report().test.iterations +
                         (driven.report().config.feasible ? 1 : 0));
  expect_reports_equal(manual.report(), driven.report());
}

TEST(TuningSession, MonteCarloDriverMatchesRunFlow) {
  // run_flow is now a thin driver over the service; re-deriving its tallies
  // by hand from per-chip reports must reproduce the FlowMetrics exactly.
  Fixture f;
  FlowOptions opts;
  opts.chips = 24;
  opts.seed = 4242;
  const FlowResult flow = run_flow(f.problem, opts);

  const TunerService service(f.problem, opts);
  EXPECT_EQ(service.designated_period(), flow.metrics.designated_period);
  EXPECT_EQ(service.test_options().epsilon_ps, flow.metrics.epsilon_ps);

  std::size_t iterations = 0, infeasible = 0, passed = 0;
  for (std::size_t c = 0; c < opts.chips; ++c) {
    stats::Rng rng(parallel::index_seed(service.monte_carlo_seed_base(), c));
    const timing::Chip die = f.model.sample_chip(rng);
    SimulatedChip tester(f.problem, die);
    TuningSession session = service.begin_chip();
    session.drive(tester);
    const ChipReport& report = session.report();
    iterations += report.test.iterations;
    if (!report.config.feasible) ++infeasible;
    if (report.passed.value_or(false)) ++passed;
  }
  const double n = static_cast<double>(opts.chips);
  EXPECT_EQ(static_cast<double>(iterations) / n, flow.metrics.ta);
  EXPECT_EQ(infeasible, flow.metrics.infeasible_configs);
  EXPECT_EQ(static_cast<double>(passed) / n, flow.metrics.yield_proposed);
}

TEST(TuningSession, ConcurrentSessionsShareArtifactsBitIdentically) {
  // One service, many sessions on the deterministic pool: every worker
  // count must produce the same reports as the serial loop (this test also
  // runs under the TSan CI job via the `session` label).
  Fixture f;
  FlowOptions opts;
  opts.seed = 7;
  const TunerService service(f.problem, opts);
  const std::uint64_t base = service.monte_carlo_seed_base();
  constexpr std::size_t kChips = 16;

  const auto tune_all = [&](std::size_t threads) {
    std::vector<ChipReport> reports(kChips);
    parallel::ForOptions fopts;
    fopts.threads = threads;
    parallel::deterministic_for(
        kChips, fopts, base, [&](std::size_t c, stats::Rng& rng) {
          thread_local timing::SampleWorkspace workspace;
          const timing::Chip die = f.model.sample_chip(rng, workspace);
          SimulatedChip tester(f.problem, die);
          TuningSession session = service.begin_chip();
          session.drive(tester);
          reports[c] = session.take_report();
        });
    return reports;
  };

  const std::vector<ChipReport> serial = tune_all(1);
  const std::vector<ChipReport> parallel4 = tune_all(4);
  const std::vector<ChipReport> pool = tune_all(0);
  for (std::size_t c = 0; c < kChips; ++c) {
    expect_reports_equal(serial[c], parallel4[c]);
    expect_reports_equal(serial[c], pool[c]);
  }
  // The artifacts really are shared, not copied per session: live
  // sessions co-own the service's one object...
  {
    TuningSession s1 = service.begin_chip();
    TuningSession s2 = service.begin_chip();
    EXPECT_EQ(service.shared_artifacts().use_count(), 3);
  }
  // ... and release it on completion.
  EXPECT_EQ(service.shared_artifacts().use_count(), 1);
}

TEST(TuningSession, FinalTestCanBeSkipped) {
  Fixture f;
  FlowOptions opts;
  opts.seed = 31;
  const TunerService service(f.problem, opts);
  stats::Rng rng(parallel::index_seed(service.monte_carlo_seed_base(), 3));
  const timing::Chip die = f.model.sample_chip(rng);
  SimulatedChip tester(f.problem, die);

  SessionOptions sopts;
  sopts.final_test = false;
  TuningSession session = service.begin_chip(sopts);
  session.drive(tester);
  const ChipReport& report = session.report();
  EXPECT_FALSE(report.passed.has_value());

  TuningSession full = service.begin_chip();
  full.drive(tester);
  EXPECT_TRUE(full.report().passed.has_value());
  // Identical test/configuration either way.
  EXPECT_EQ(report.config.steps, full.report().config.steps);
  EXPECT_EQ(report.test.iterations, full.report().test.iterations);
}

TEST(TuningSession, FinalGoNoGoMatchesChipPasses) {
  // SimulatedChip::final_test is the production pass/fail oracle.
  Fixture f;
  FlowOptions opts;
  opts.seed = 77;
  const TunerService service(f.problem, opts);
  stats::Rng rng(parallel::index_seed(service.monte_carlo_seed_base(), 1));
  const timing::Chip die = f.model.sample_chip(rng);
  SimulatedChip tester(f.problem, die);
  TuningSession session = service.begin_chip();
  session.drive(tester);
  const ChipReport& report = session.report();
  if (report.config.feasible) {
    EXPECT_EQ(*report.passed,
              chip_passes(f.problem, die,
                          buffer_values(f.problem, report.config.steps),
                          service.designated_period()));
  } else {
    EXPECT_FALSE(*report.passed);
  }
}

TEST(TuningSession, ReuseServiceMatchesFreshService) {
  // Adopting prepared artifacts (the T_d-sweep pattern) yields the same
  // sessions as preparing from scratch at the same seed.
  Fixture f;
  FlowOptions opts;
  opts.seed = 15;
  const TunerService fresh(f.problem, opts);
  const TunerService adopted(f.problem, opts, &fresh.artifacts());
  EXPECT_EQ(fresh.monte_carlo_seed_base(), adopted.monte_carlo_seed_base());

  stats::Rng rng(parallel::index_seed(fresh.monte_carlo_seed_base(), 5));
  const timing::Chip die = f.model.sample_chip(rng);
  SimulatedChip tester(f.problem, die);
  TuningSession a = fresh.begin_chip();
  a.drive(tester);
  TuningSession b = adopted.begin_chip();
  b.drive(tester);
  expect_reports_equal(a.report(), b.report());
  // The adopted artifacts alias the cached prediction gain, not a copy.
  if (fresh.artifacts().predictor) {
    EXPECT_EQ(fresh.artifacts().predictor->shared_gain().get(),
              adopted.artifacts().predictor->shared_gain().get());
  }

  // The shared_ptr overload goes further: the whole artifact object is
  // aliased, not copied (the campaign fast path).
  const TunerService aliased(f.problem, opts, fresh.shared_artifacts());
  EXPECT_EQ(aliased.shared_artifacts().get(), fresh.shared_artifacts().get());
}

TEST(TuningSession, MisusedProtocolThrows) {
  Fixture f;
  FlowOptions opts;
  const TunerService service(f.problem, opts);
  TuningSession session = service.begin_chip();
  ASSERT_EQ(session.phase(), SessionPhase::kTest);
  EXPECT_THROW(session.record_final(true), std::logic_error);
  EXPECT_THROW((void)session.report(), std::logic_error);
  const Stimulus& s = session.next_stimulus();
  // Wrong response width.
  EXPECT_THROW(
      session.record_response(std::vector<bool>(s.armed.size() + 1, true)),
      std::invalid_argument);
}

}  // namespace
}  // namespace effitest::core
