// Integration suite for the TCP serve mode (net/serve.hpp): concurrent
// loopback sessions must reproduce `tune --simulate` reports
// byte-for-byte, an abandoned connection must never disturb its siblings,
// CRLF framing must survive the wire, and a drain must finish every
// in-flight session. Runs under the ThreadSanitizer CI label (`net`)
// alongside the parallel/session suites — the whole point of the suite is
// the concurrency.
//
// Everything binds 127.0.0.1 port 0 (kernel-chosen), so parallel ctest
// invocations never collide.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/tuner_service.hpp"
#include "io/json.hpp"
#include "io/tune_protocol.hpp"
#include "net/client.hpp"
#include "net/load_balancer.hpp"
#include "net/serve.hpp"
#include "net/socket.hpp"
#include "netlist/generator.hpp"
#include "obs/metrics.hpp"
#include "parallel/deterministic_for.hpp"
#include "stats/rng.hpp"
#include "timing/model.hpp"

namespace {

using namespace effitest;

/// One tiny shared circuit/service for the whole suite (the fuzz harness's
/// 16-FF/60-gate/2-buffer generator with an explicit designated period, so
/// construction is protocol-speed, not flow-calibration-speed).
struct ServiceHolder {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  core::Problem problem;
  core::TunerService service;

  static netlist::GeneratorSpec spec() {
    netlist::GeneratorSpec s;
    s.num_flip_flops = 16;
    s.num_gates = 60;
    s.num_buffers = 2;
    s.num_critical_paths = 6;
    s.seed = 7;
    return s;
  }

  static core::FlowOptions options() {
    core::FlowOptions o;
    o.seed = 11;
    o.designated_period = 900.0;
    o.threads = 1;
    return o;
  }

  ServiceHolder()
      : circuit(netlist::generate_circuit(spec())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model),
        service(problem, options()) {}
};

const ServiceHolder& holder() {
  static const ServiceHolder h;
  return h;
}

std::vector<std::string> sorted_by_chip(std::vector<std::string> lines);

/// The `report <chip> ...` lines of a local simulated run, in chip order —
/// the golden transcript every networked session must reproduce
/// byte-for-byte. (Both modes emit reports in completion order, which
/// depends on response arrival; chip order is the canonical comparison.)
std::vector<std::string> simulated_report_lines(std::size_t chips) {
  io::TuneServer server(holder().service, chips);
  std::ostringstream out;
  (void)server.run_simulated(out);
  std::vector<std::string> reports;
  std::istringstream is(out.str());
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("report ", 0) == 0) reports.push_back(line);
  }
  return sorted_by_chip(std::move(reports));
}

std::vector<std::string> sorted_by_chip(std::vector<std::string> lines) {
  // Chip ids are the second token; lexicographic sort is wrong past chip 9.
  std::sort(lines.begin(), lines.end(),
            [](const std::string& a, const std::string& b) {
              std::istringstream as(a), bs(b);
              std::string tag;
              std::size_t ca = 0, cb = 0;
              as >> tag >> ca;
              bs >> tag >> cb;
              return ca < cb;
            });
  return lines;
}

TEST(ServeLoop, ConcurrentLoopbackSessionsMatchSimulatedReports) {
  net::ServeOptions options;
  options.workers = 4;
  net::TuneServeLoop loop(holder().service, options);
  loop.start();

  constexpr std::size_t kClients = 12;
  constexpr std::size_t kChips = 3;
  const std::vector<std::string> golden = simulated_report_lines(kChips);
  ASSERT_EQ(golden.size(), kChips);

  std::vector<std::optional<net::ClientResult>> results(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        net::ClientOptions copts;
        copts.chips = kChips;
        // Odd clients add per-session backpressure; the reports must not
        // care.
        copts.window = (i % 2 == 1) ? 1 : 0;
        results[i] = net::run_loopback_client("127.0.0.1", loop.port(),
                                              holder().problem, copts);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  loop.request_drain();
  loop.wait();

  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(results[i].has_value()) << "client " << i << " threw";
    EXPECT_EQ(sorted_by_chip(results[i]->report_lines), golden)
        << "client " << i;
    EXPECT_TRUE(results[i]->error_lines.empty());
  }
  const obs::RegistrySnapshot m = loop.metrics();
  EXPECT_EQ(m.counter(net::kMetricSessionsCompleted), kClients);
  EXPECT_EQ(m.counter(net::kMetricSessionsFailed), 0u);
  EXPECT_EQ(m.counter(net::kMetricChipsTuned), kClients * kChips);
  EXPECT_EQ(m.gauge(net::kMetricActiveSessions), 0.0);
  EXPECT_EQ(m.gauge(net::kMetricQueueDepth), 0.0);
  EXPECT_GT(m.gauge(net::kMetricSessionsPerSec), 0.0);
  const obs::HistogramSnapshot* latency =
      m.histogram(net::kMetricSessionLatency);
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, kClients);
  EXPECT_GT(latency->quantile(0.50), 0.0);
  EXPECT_LE(latency->quantile(0.50), latency->quantile(0.99));
}

TEST(ServeLoop, ManyConcurrentSessionsThroughFewWorkers) {
  // The acceptance bar: hundreds of concurrent connections funneled
  // through a handful of workers via accept-pausing backpressure — nobody
  // gets busy-rejected, every session's report is exact.
  net::ServeOptions options;
  options.workers = 8;
  options.max_pending = 16;
  net::TuneServeLoop loop(holder().service, options);
  loop.start();

  constexpr std::size_t kClients = 256;
  const std::vector<std::string> golden = simulated_report_lines(1);
  std::atomic<std::size_t> ok{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&] {
        net::ClientOptions copts;
        copts.chips = 1;
        const net::ClientResult r = net::run_loopback_client(
            "127.0.0.1", loop.port(), holder().problem, copts);
        if (r.report_lines == golden) ok.fetch_add(1);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  loop.request_drain();
  loop.wait();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_EQ(loop.metrics().counter(net::kMetricSessionsCompleted), kClients);
}

TEST(ServeLoop, AbandonedConnectionLeavesSiblingsUntouched) {
  net::ServeOptions options;
  options.workers = 4;
  net::TuneServeLoop loop(holder().service, options);
  loop.start();

  const std::vector<std::string> golden = simulated_report_lines(2);
  {
    // Mid-session desertion: hello, greeting, first stimulus — then gone.
    net::SocketStream deserter(net::connect_to("127.0.0.1", loop.port()));
    deserter << "hello effitest-tune-v1 chips=2\n";
    deserter.flush();
    std::string line;
    ASSERT_TRUE(std::getline(deserter, line));
    EXPECT_EQ(line.rfind("serve effitest-tune-v1 ", 0), 0u) << line;
    ASSERT_TRUE(std::getline(deserter, line));  // session header
    ASSERT_TRUE(std::getline(deserter, line));  // first stimulus
  }  // closed without a single response

  net::ClientOptions copts;
  copts.chips = 2;
  const net::ClientResult sibling = net::run_loopback_client(
      "127.0.0.1", loop.port(), holder().problem, copts);
  EXPECT_EQ(sorted_by_chip(sibling.report_lines), golden);

  loop.request_drain();
  loop.wait();
  const obs::RegistrySnapshot m = loop.metrics();
  EXPECT_EQ(m.counter(net::kMetricSessionsCompleted), 1u);
  EXPECT_EQ(m.counter(net::kMetricSessionsFailed), 1u);
}

TEST(ServeLoop, CrlfFramedClientIsServed) {
  // A telnet-style client terminates every line with \r\n; the protocol
  // reader must strip the \r over TCP exactly as it does from a file
  // (the regression the CRLF fix pinned, now end to end).
  net::ServeOptions options;
  options.workers = 1;
  net::TuneServeLoop loop(holder().service, options);
  loop.start();

  const std::vector<std::string> golden = simulated_report_lines(1);
  std::vector<std::string> reports;
  {
    net::SocketStream stream(net::connect_to("127.0.0.1", loop.port()));
    stream << "hello effitest-tune-v1 chips=1\r\n";
    stream.flush();
    std::string line;
    ASSERT_TRUE(std::getline(stream, line));  // greeting
    ASSERT_TRUE(line.rfind("serve ", 0) == 0) << line;
    const std::string seed_kv = line.substr(line.rfind("seed=") + 5);
    const std::uint64_t seed = std::stoull(seed_kv);

    // One simulated die, answered with CRLF endings.
    timing::SampleWorkspace ws;
    stats::Rng rng(parallel::index_seed(seed, 0));
    const timing::Chip die = holder().model.sample_chip(rng, ws);
    core::SimulatedChip tester(holder().problem, die);
    while (std::getline(stream, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line == "bye") break;
      if (line.rfind("report ", 0) == 0) {
        reports.push_back(line);
        continue;
      }
      std::istringstream is(line);
      std::string tag;
      is >> tag;
      if (tag != "stimulus" && tag != "final") continue;
      std::size_t chip = 0, seq = 0;
      std::string marker;
      core::Stimulus stim;
      ASSERT_TRUE(is >> chip >> seq >> stim.period >> marker);
      std::string token;
      bool in_arm = false;
      while (is >> token) {
        if (token == "arm") {
          in_arm = true;
        } else if (in_arm) {
          stim.armed.push_back(std::stoul(token));
        } else {
          stim.steps.push_back(std::stoi(token));
        }
      }
      std::vector<bool> pass;
      if (tag == "final") {
        pass.assign(1, tester.final_test(stim.period, stim.steps));
      } else {
        pass = tester.apply(stim);
      }
      std::string bits(pass.size(), '0');
      for (std::size_t i = 0; i < pass.size(); ++i) {
        if (pass[i]) bits[i] = '1';
      }
      stream << "response " << chip << ' ' << seq << ' ' << bits << "\r\n";
    }
  }
  loop.request_drain();
  loop.wait();
  EXPECT_EQ(reports, golden);
  EXPECT_EQ(loop.metrics().counter(net::kMetricSessionsCompleted), 1u);
}

TEST(ServeLoop, DrainFinishesInFlightSessions) {
  net::ServeOptions options;
  options.workers = 2;
  net::TuneServeLoop loop(holder().service, options);
  loop.start();

  const std::vector<std::string> golden = simulated_report_lines(2);

  // Deterministic overlap: the session is provably in flight (greeting and
  // header consumed) before the drain lands, and only answered after.
  net::SocketStream stream(net::connect_to("127.0.0.1", loop.port()));
  stream << "hello effitest-tune-v1 chips=2\n";
  stream.flush();
  std::string line;
  ASSERT_TRUE(std::getline(stream, line));
  ASSERT_EQ(line.rfind("serve ", 0), 0u) << line;
  const std::uint64_t seed = std::stoull(line.substr(line.rfind("seed=") + 5));

  loop.request_drain();  // listener closes NOW; this session must survive

  timing::SampleWorkspace ws;
  std::vector<timing::Chip> dies;
  std::vector<core::SimulatedChip> testers;
  for (std::size_t c = 0; c < 2; ++c) {
    stats::Rng rng(parallel::index_seed(seed, c));
    dies.push_back(holder().model.sample_chip(rng, ws));
  }
  for (std::size_t c = 0; c < 2; ++c) {
    testers.emplace_back(holder().problem, dies[c]);
  }
  std::vector<std::string> reports;
  while (std::getline(stream, line)) {
    if (line == "bye") break;
    if (line.rfind("report ", 0) == 0) {
      reports.push_back(line);
      continue;
    }
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag != "stimulus" && tag != "final") continue;
    std::size_t chip = 0, seq = 0;
    std::string marker;
    core::Stimulus stim;
    ASSERT_TRUE(is >> chip >> seq >> stim.period >> marker);
    std::string token;
    bool in_arm = false;
    while (is >> token) {
      if (token == "arm") {
        in_arm = true;
      } else if (in_arm) {
        stim.armed.push_back(std::stoul(token));
      } else {
        stim.steps.push_back(std::stoi(token));
      }
    }
    std::vector<bool> pass;
    if (tag == "final") {
      pass.assign(1, testers[chip].final_test(stim.period, stim.steps));
    } else {
      pass = testers[chip].apply(stim);
    }
    std::string bits(pass.size(), '0');
    for (std::size_t i = 0; i < pass.size(); ++i) {
      if (pass[i]) bits[i] = '1';
    }
    stream << "response " << chip << ' ' << seq << ' ' << bits << '\n';
  }
  loop.wait();
  EXPECT_EQ(sorted_by_chip(reports), golden);
  const obs::RegistrySnapshot m = loop.metrics();
  EXPECT_EQ(m.counter(net::kMetricSessionsCompleted), 1u);
  EXPECT_EQ(m.counter(net::kMetricSessionsFailed), 0u);

  // And the listener really is gone: a late connection is refused (or
  // reset), never queued.
  EXPECT_THROW((void)net::connect_to("127.0.0.1", loop.port()),
               std::runtime_error);
}

TEST(ServeLoop, MalformedAndOversizedHellosAreRejected) {
  net::ServeOptions options;
  options.workers = 1;
  options.max_chips_per_session = 4;
  net::TuneServeLoop loop(holder().service, options);
  loop.start();

  const auto first_line_for = [&](const std::string& hello) {
    net::SocketStream stream(net::connect_to("127.0.0.1", loop.port()));
    stream << hello << '\n';
    stream.flush();
    std::string line;
    EXPECT_TRUE(std::getline(stream, line));
    return line;
  };

  EXPECT_EQ(first_line_for("nonsense").rfind("error - ", 0), 0u);
  EXPECT_EQ(first_line_for("hello effitest-tune-v1").rfind("error - ", 0),
            0u);
  EXPECT_EQ(first_line_for("hello effitest-tune-v1 chips=0")
                .rfind("error - ", 0),
            0u);
  const std::string oversized =
      first_line_for("hello effitest-tune-v1 chips=5");
  EXPECT_EQ(oversized.rfind("error - ", 0), 0u);
  EXPECT_NE(oversized.find("per-session limit"), std::string::npos);
  // At the limit is fine.
  EXPECT_EQ(first_line_for("hello effitest-tune-v1 chips=4")
                .rfind("serve effitest-tune-v1 ", 0),
            0u);

  loop.request_drain();
  loop.wait();
  const obs::RegistrySnapshot m = loop.metrics();
  // Four rejected hellos, plus the chips=4 session whose client deserted
  // right after the greeting.
  EXPECT_EQ(m.counter(net::kMetricSessionsFailed), 5u);
  EXPECT_EQ(m.counter(net::kMetricSessionsCompleted), 0u);
}

io::json::Value parse_status(const std::string& line) {
  io::json::Parser parser(line, "status");
  return parser.parse();
}

double status_number(const io::json::Value& doc, const char* section,
                     const std::string& name) {
  const io::json::Value* s = doc.find(section);
  const io::json::Value* v = s == nullptr ? nullptr : s->find(name);
  return v == nullptr ? -1.0 : v->number;
}

TEST(ServeLoop, StatusPollsAreLiveMonotonicAndUnperturbing) {
  net::ServeOptions options;
  options.workers = 2;
  options.status_port = 0;  // plaintext endpoint on an ephemeral port
  net::TuneServeLoop loop(holder().service, options);
  loop.start();
  ASSERT_NE(loop.status_port(), 0);

  // Idle fleet: session counters are zero; the poll itself is counted —
  // status_requests is incremented before rendering, so every reply
  // already includes itself.
  {
    const io::json::Value idle =
        parse_status(net::fetch_status("127.0.0.1", loop.status_port()));
    ASSERT_NE(idle.find("schema"), nullptr);
    EXPECT_EQ(idle.find("schema")->string, "effitest-status-v1");
    EXPECT_EQ(
        status_number(idle, "counters", net::kMetricSessionsAccepted), 0.0);
    EXPECT_EQ(
        status_number(idle, "counters", net::kMetricStatusRequests), 1.0);
  }

  // Hold one session provably in flight (greeting consumed, nothing
  // answered yet) and poll the serve port in-band: the session shows up
  // as accepted and active, never as completed — and the poll itself
  // must not bump any session counter.
  net::SocketStream stream(net::connect_to("127.0.0.1", loop.port()));
  stream << "hello effitest-tune-v1 chips=1\n";
  stream.flush();
  std::string line;
  ASSERT_TRUE(std::getline(stream, line));
  ASSERT_EQ(line.rfind("serve ", 0), 0u) << line;
  const std::uint64_t seed =
      std::stoull(line.substr(line.rfind("seed=") + 5));

  const io::json::Value mid =
      parse_status(net::fetch_status("127.0.0.1", loop.port()));
  EXPECT_EQ(
      status_number(mid, "counters", net::kMetricSessionsAccepted), 1.0);
  EXPECT_EQ(
      status_number(mid, "counters", net::kMetricSessionsCompleted), 0.0);
  EXPECT_EQ(status_number(mid, "gauges", net::kMetricActiveSessions), 1.0);

  // Answer the held session to completion.
  timing::SampleWorkspace ws;
  stats::Rng rng(parallel::index_seed(seed, 0));
  const timing::Chip die = holder().model.sample_chip(rng, ws);
  core::SimulatedChip tester(holder().problem, die);
  while (std::getline(stream, line)) {
    if (line == "bye") break;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag != "stimulus" && tag != "final") continue;
    std::size_t chip = 0, seq = 0;
    std::string marker;
    core::Stimulus stim;
    ASSERT_TRUE(is >> chip >> seq >> stim.period >> marker);
    std::string token;
    bool in_arm = false;
    while (is >> token) {
      if (token == "arm") {
        in_arm = true;
      } else if (in_arm) {
        stim.armed.push_back(std::stoul(token));
      } else {
        stim.steps.push_back(std::stoi(token));
      }
    }
    std::vector<bool> pass;
    if (tag == "final") {
      pass.assign(1, tester.final_test(stim.period, stim.steps));
    } else {
      pass = tester.apply(stim);
    }
    std::string bits(pass.size(), '0');
    for (std::size_t i = 0; i < pass.size(); ++i) {
      if (pass[i]) bits[i] = '1';
    }
    stream << "response " << chip << ' ' << seq << ' ' << bits << '\n';
  }

  // `bye` races the server's own bookkeeping by a few instructions; wait
  // for the completion to land before taking the final poll.
  while (loop.metrics().counter(net::kMetricSessionsCompleted) < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const io::json::Value last =
      parse_status(net::fetch_status("127.0.0.1", loop.status_port()));

  loop.request_drain();
  loop.wait();
  const obs::RegistrySnapshot end = loop.metrics();

  // A final poll taken after the last session finished matches the
  // end-of-run snapshot exactly on every monotonic metric, and every
  // mid-run poll is elementwise <= it.
  for (const auto& [name, value] : end.counters) {
    EXPECT_EQ(status_number(last, "counters", name),
              static_cast<double>(value))
        << name;
    EXPECT_LE(status_number(mid, "counters", name),
              static_cast<double>(value))
        << name;
  }
  const obs::HistogramSnapshot* latency =
      end.histogram(net::kMetricSessionLatency);
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1u);
  const io::json::Value* hists = last.find("histograms");
  ASSERT_NE(hists, nullptr);
  const io::json::Value* polled = hists->find(net::kMetricSessionLatency);
  ASSERT_NE(polled, nullptr);
  ASSERT_NE(polled->find("count"), nullptr);
  EXPECT_EQ(polled->find("count")->number,
            static_cast<double>(latency->count));
  ASSERT_NE(polled->find("p50"), nullptr);
  EXPECT_EQ(polled->find("p50")->number, latency->quantile(0.50));

  // Three polls (idle, mid-session, final), each counting itself.
  EXPECT_EQ(end.counter(net::kMetricStatusRequests), 3u);
  EXPECT_EQ(end.counter(net::kMetricSessionsAccepted), 1u);
  EXPECT_EQ(end.counter(net::kMetricSessionsCompleted), 1u);
}

TEST(LoadBalancer, DispatchPrefersLeastLoadedWorker) {
  net::LoadBalancer<int> lb(3);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(lb.dispatch(i));
  EXPECT_EQ(lb.queued(), 6u);
  // Round-robin-by-load: every worker's own queue got two tasks, so each
  // worker's first own pop is 0/1/2 in dispatch order.
  const auto a = lb.next(0);
  const auto b = lb.next(1);
  const auto c = lb.next(2);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a + *b + *c, 0 + 1 + 2);
  EXPECT_EQ(lb.queued(), 3u);
}

TEST(LoadBalancer, IdleWorkerStealsFromLoadedSibling) {
  net::LoadBalancer<int> lb(2);
  // Worker 0 is busy (claimed a task, never finished); everything else
  // queues behind it or lands on worker 1.
  EXPECT_TRUE(lb.dispatch(10));
  const auto first = lb.next(0);
  ASSERT_TRUE(first);
  EXPECT_EQ(*first, 10);
  EXPECT_TRUE(lb.dispatch(11));  // worker 1 (load 0) beats worker 0 (busy)
  EXPECT_TRUE(lb.dispatch(12));
  const auto stolen = lb.next(1);
  ASSERT_TRUE(stolen);
  lb.task_done(1);
  const auto second = lb.next(1);  // own queue or steal — drains regardless
  ASSERT_TRUE(second);
  EXPECT_EQ(*stolen + *second, 11 + 12);
  EXPECT_EQ(lb.queued(), 0u);
}

TEST(LoadBalancer, CloseDrainsBacklogThenReleasesWorkers) {
  net::LoadBalancer<int> lb(2);
  EXPECT_TRUE(lb.dispatch(1));
  EXPECT_TRUE(lb.dispatch(2));
  lb.close();
  EXPECT_FALSE(lb.dispatch(3));  // rejected after close
  std::atomic<int> drained{0};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      while (auto task = lb.next(w)) {
        drained.fetch_add(*task);
        lb.task_done(w);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(drained.load(), 3);  // 1 + 2, never the rejected 3
}

}  // namespace
