#include "timing/ssta.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/generator.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace effitest::timing {
namespace {

const netlist::CellLibrary& lib() {
  static const netlist::CellLibrary library = netlist::CellLibrary::standard();
  return library;
}

CanonicalDelay make(double mean, SparseLoading loading, double indep = 0.0) {
  CanonicalDelay d;
  d.mean = mean;
  d.loading = std::move(loading);
  d.indep_var = indep;
  return d;
}

TEST(Canonical, VarianceAndSigma) {
  const CanonicalDelay d = make(10.0, {{0, 3.0}, {2, 4.0}}, 0.0);
  EXPECT_DOUBLE_EQ(d.variance(), 25.0);
  EXPECT_DOUBLE_EQ(d.sigma(), 5.0);
}

TEST(Canonical, QuantileGaussian) {
  const CanonicalDelay d = make(100.0, {{0, 2.0}});
  EXPECT_NEAR(d.quantile(0.5), 100.0, 1e-9);
  EXPECT_NEAR(d.quantile(0.8413447460685429), 102.0, 1e-6);
}

TEST(Canonical, SumAddsEverything) {
  const CanonicalDelay a = make(5.0, {{0, 1.0}}, 0.5);
  const CanonicalDelay b = make(7.0, {{0, 2.0}, {1, 1.0}}, 0.25);
  const CanonicalDelay s = canonical_sum(a, b);
  EXPECT_DOUBLE_EQ(s.mean, 12.0);
  EXPECT_DOUBLE_EQ(s.indep_var, 0.75);
  EXPECT_DOUBLE_EQ(canonical_cov(s, s), 9.0 + 1.0);  // (1+2)^2 + 1^2
}

TEST(Canonical, CovUsesSharedFactorsOnly) {
  const CanonicalDelay a = make(0.0, {{0, 2.0}, {1, 1.0}}, 5.0);
  const CanonicalDelay b = make(0.0, {{1, 3.0}, {2, 4.0}}, 7.0);
  EXPECT_DOUBLE_EQ(canonical_cov(a, b), 3.0);
}

TEST(ClarkMax, DominantBranchWins) {
  // When one input is 10 sigma above the other, max == dominant input.
  const CanonicalDelay hi = make(100.0, {{0, 1.0}});
  const CanonicalDelay lo = make(50.0, {{1, 1.0}});
  const CanonicalDelay m = canonical_max(hi, lo);
  EXPECT_NEAR(m.mean, 100.0, 1e-6);
  EXPECT_NEAR(m.sigma(), 1.0, 1e-5);
}

TEST(ClarkMax, EqualIndependentInputsKnownMoments) {
  // max of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi.
  const CanonicalDelay a = make(0.0, {{0, 1.0}});
  const CanonicalDelay b = make(0.0, {{1, 1.0}});
  const CanonicalDelay m = canonical_max(a, b);
  EXPECT_NEAR(m.mean, 1.0 / std::sqrt(3.14159265358979), 1e-9);
  EXPECT_NEAR(m.variance(), 1.0 - 1.0 / 3.14159265358979, 1e-9);
}

TEST(ClarkMax, PerfectlyCorrelatedIsLargerMean) {
  const CanonicalDelay a = make(10.0, {{0, 2.0}});
  const CanonicalDelay b = make(12.0, {{0, 2.0}});
  const CanonicalDelay m = canonical_max(a, b);
  EXPECT_DOUBLE_EQ(m.mean, 12.0);
  EXPECT_DOUBLE_EQ(m.sigma(), 2.0);
}

TEST(ClarkMax, MatchesMonteCarloOnCorrelatedPair) {
  const CanonicalDelay a = make(100.0, {{0, 3.0}, {1, 2.0}}, 1.0);
  const CanonicalDelay b = make(102.0, {{0, 3.0}, {2, 2.5}}, 0.5);
  const CanonicalDelay m = canonical_max(a, b);

  stats::Rng rng(3);
  const std::size_t trials = 60000;
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const double z0 = rng.normal();
    const double z1 = rng.normal();
    const double z2 = rng.normal();
    const double da = 100.0 + 3.0 * z0 + 2.0 * z1 + rng.normal();
    const double db = 102.0 + 3.0 * z0 + 2.5 * z2 +
                      rng.normal() * std::sqrt(0.5);
    const double v = std::max(da, db);
    sum += v;
    sq += v * v;
  }
  const double mc_mean = sum / trials;
  const double mc_var = sq / trials - mc_mean * mc_mean;
  EXPECT_NEAR(m.mean, mc_mean, 0.05);
  EXPECT_NEAR(m.variance(), mc_var, 0.25);
}

/// Brute-force max moments: sample the union of shared factors plus each
/// form's private term, take max, accumulate mean/variance.
std::pair<double, double> mc_max_moments(const CanonicalDelay& a,
                                         const CanonicalDelay& b,
                                         std::size_t trials,
                                         std::uint64_t seed) {
  int max_id = -1;
  for (const auto& [id, w] : a.loading) max_id = std::max(max_id, id);
  for (const auto& [id, w] : b.loading) max_id = std::max(max_id, id);
  stats::Rng rng(seed);
  std::vector<double> z(static_cast<std::size_t>(max_id + 1));
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    for (double& zi : z) zi = rng.normal();
    const double da = a.mean + sparse_apply(a.loading, z) +
                      std::sqrt(a.indep_var) * rng.normal();
    const double db = b.mean + sparse_apply(b.loading, z) +
                      std::sqrt(b.indep_var) * rng.normal();
    const double v = std::max(da, db);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / static_cast<double>(trials);
  return {mean, sq / static_cast<double>(trials) - mean * mean};
}

TEST(ClarkMax, ZeroVarianceInputsAreDeterministicMax) {
  // Degenerate theta = 0: the larger mean must win outright, with no
  // manufactured variance.
  const CanonicalDelay a = make(10.0, {});
  const CanonicalDelay b = make(12.0, {});
  const CanonicalDelay m = canonical_max(a, b);
  EXPECT_DOUBLE_EQ(m.mean, 12.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  const auto [mc_mean, mc_var] = mc_max_moments(a, b, 1000, 7);
  EXPECT_DOUBLE_EQ(mc_mean, 12.0);
  EXPECT_DOUBLE_EQ(mc_var, 0.0);

  // One deterministic input far below a random one: the random form
  // passes through untouched.
  const CanonicalDelay det = make(0.0, {});
  const CanonicalDelay rnd = make(50.0, {{0, 2.0}}, 1.0);
  const CanonicalDelay m2 = canonical_max(det, rnd);
  EXPECT_NEAR(m2.mean, 50.0, 1e-9);
  EXPECT_NEAR(m2.variance(), 5.0, 1e-6);
}

TEST(ClarkMax, IdenticalFormsAreAFixedPoint) {
  // max(X, X) = X: theta = 0 through the correlated-variance path, not
  // just for constants.
  const CanonicalDelay a = make(20.0, {{0, 1.5}, {3, 2.0}}, 0.0);
  const CanonicalDelay m = canonical_max(a, a);
  EXPECT_DOUBLE_EQ(m.mean, a.mean);
  EXPECT_DOUBLE_EQ(m.variance(), a.variance());
  EXPECT_DOUBLE_EQ(canonical_cov(m, a), a.variance());
  const auto [mc_mean, mc_var] = mc_max_moments(a, a, 40000, 11);
  EXPECT_NEAR(m.mean, mc_mean, 0.05);
  EXPECT_NEAR(m.variance(), mc_var, 0.1);
}

TEST(ClarkMax, PerfectlyCorrelatedMatchesMonteCarlo) {
  // Same loading, shifted mean: max is exactly the upper branch, and the
  // Clark tie probability must not dilute the loading.
  const CanonicalDelay a = make(10.0, {{0, 2.0}});
  const CanonicalDelay b = make(12.0, {{0, 2.0}});
  const CanonicalDelay m = canonical_max(a, b);
  EXPECT_DOUBLE_EQ(m.mean, 12.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);
  const auto [mc_mean, mc_var] = mc_max_moments(a, b, 60000, 13);
  EXPECT_NEAR(m.mean, mc_mean, 0.05);
  EXPECT_NEAR(m.variance(), mc_var, 0.1);
}

TEST(ClarkMax, PerfectlyAnticorrelatedMatchesMonteCarlo) {
  // Opposite loadings on one factor: max(m + 2z, m - 2z) = m + 2|z|, the
  // folded normal -- mean m + 2 sqrt(2/pi), var 4 (1 - 2/pi). This is the
  // worst case for the Gaussian-max approximation's *shape*, but Clark
  // matches the first two moments exactly.
  constexpr double kPi = 3.14159265358979323846;
  const CanonicalDelay a = make(100.0, {{0, 2.0}});
  const CanonicalDelay b = make(100.0, {{0, -2.0}});
  const CanonicalDelay m = canonical_max(a, b);
  EXPECT_NEAR(m.mean, 100.0 + 2.0 * std::sqrt(2.0 / kPi), 1e-9);
  EXPECT_NEAR(m.variance(), 4.0 * (1.0 - 2.0 / kPi), 1e-9);
  const auto [mc_mean, mc_var] = mc_max_moments(a, b, 60000, 17);
  EXPECT_NEAR(m.mean, mc_mean, 0.05);
  EXPECT_NEAR(m.variance(), mc_var, 0.1);
}

TEST(ClarkMax, LargeAlphaTailsKeepTheDominantForm) {
  // |alpha| >> 1 (means 20 sigma apart): the result must be the dominant
  // input's form -- mean, variance AND loadings (covariance against a
  // third form probes the loadings, not just the diagonal).
  const CanonicalDelay hi = make(200.0, {{0, 1.0}, {1, 0.5}}, 0.25);
  const CanonicalDelay lo = make(170.0, {{2, 1.0}}, 0.5);
  const CanonicalDelay probe = make(0.0, {{0, 1.0}});
  for (const auto& [a, b] : {std::pair{hi, lo}, std::pair{lo, hi}}) {
    const CanonicalDelay m = canonical_max(a, b);
    EXPECT_NEAR(m.mean, hi.mean, 1e-9);
    EXPECT_NEAR(m.variance(), hi.variance(), 1e-9);
    EXPECT_NEAR(canonical_cov(m, probe), 1.0, 1e-9);
  }
  const auto [mc_mean, mc_var] = mc_max_moments(hi, lo, 60000, 19);
  EXPECT_NEAR(hi.mean, mc_mean, 0.05);
  EXPECT_NEAR(hi.variance(), mc_var, 0.1);
}

TEST(StatisticalMax, EmptyThrows) {
  EXPECT_THROW(statistical_max({}), std::invalid_argument);
}

TEST(StatisticalMax, SingleFormIdentity) {
  const CanonicalDelay a = make(42.0, {{0, 1.5}}, 0.2);
  const std::vector<CanonicalDelay> forms{a};
  const CanonicalDelay m = statistical_max(forms);
  EXPECT_DOUBLE_EQ(m.mean, 42.0);
  EXPECT_NEAR(m.variance(), a.variance(), 1e-12);
}

TEST(StatisticalMax, PrunesHopelessForms) {
  std::vector<CanonicalDelay> forms;
  forms.push_back(make(100.0, {{0, 1.0}}));
  for (int i = 0; i < 50; ++i) {
    forms.push_back(make(10.0, {{1, 1.0}}));  // never competitive
  }
  const CanonicalDelay m = statistical_max(forms);
  EXPECT_NEAR(m.mean, 100.0, 1e-9);
}

TEST(SstaRequiredPeriod, MatchesMonteCarloOnGeneratedCircuit) {
  netlist::GeneratorSpec spec;
  spec.num_flip_flops = 60;
  spec.num_gates = 700;
  spec.num_buffers = 2;
  spec.num_critical_paths = 20;
  spec.seed = 31;
  const auto circuit = netlist::generate_circuit(spec);
  const CircuitModel model(circuit.netlist, lib(), circuit.buffered_ffs);

  const CanonicalDelay analytic = ssta_required_period(model);

  stats::Rng rng(32);
  std::vector<double> mc(4000);
  for (double& v : mc) {
    const Chip chip = model.sample_chip(rng);
    double worst = 0.0;
    for (double d : chip.max_delay) worst = std::max(worst, d);
    v = worst;
  }
  const double mc_mean = stats::mean(mc);
  const double mc_sigma = stats::stddev(mc);
  EXPECT_NEAR(analytic.mean, mc_mean, 0.25 * mc_sigma);
  EXPECT_NEAR(analytic.sigma(), mc_sigma, 0.35 * mc_sigma);
  // Median within half a sigma of the analytic one.
  EXPECT_NEAR(analytic.quantile(0.5), stats::quantile(mc, 0.5),
              0.5 * mc_sigma);
}

TEST(SstaRequiredPeriod, GraphAndModelVariantsAgree) {
  netlist::GeneratorSpec spec;
  spec.num_flip_flops = 50;
  spec.num_gates = 600;
  spec.num_buffers = 2;
  spec.num_critical_paths = 14;
  spec.seed = 37;
  const auto circuit = netlist::generate_circuit(spec);
  const VariationModel variation(VariationParams{}, lib());

  const CanonicalDelay by_graph =
      ssta_required_period(circuit.netlist, lib(), variation);
  const CircuitModel model(circuit.netlist, lib(), circuit.buffered_ffs);
  const CanonicalDelay by_model = ssta_required_period(model);

  // The graph variant sees every topological path (including background
  // logic) while the model variant uses near-critical extractions — they
  // must agree within a couple of sigma percent on the dominant statistics.
  EXPECT_NEAR(by_graph.mean, by_model.mean, 0.05 * by_model.mean);
  EXPECT_NEAR(by_graph.sigma(), by_model.sigma(), 0.5 * by_model.sigma());
}

TEST(SstaRequiredPeriod, NoSequentialPathsThrows) {
  netlist::Netlist nl;
  const int pi = nl.add_cell("pi", netlist::CellType::kInput);
  const int g = nl.add_cell("g", netlist::CellType::kBuf, {pi});
  nl.add_cell("ff", netlist::CellType::kDff, {g});  // PI -> FF only
  const VariationModel variation(VariationParams{}, lib());
  EXPECT_THROW(ssta_required_period(nl, lib(), variation),
               netlist::NetlistError);
}

}  // namespace
}  // namespace effitest::timing
