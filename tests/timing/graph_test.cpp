#include "timing/graph.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"

namespace effitest::timing {
namespace {

const netlist::CellLibrary& lib() {
  static const netlist::CellLibrary library = netlist::CellLibrary::standard();
  return library;
}

/// ff1 -> b1 -> b2 -> ff2 plus a parallel longer branch b3 -> b4 -> b5.
struct DiamondFixture {
  netlist::Netlist nl{"diamond"};
  int ff1, ff2, b1, b2, b3, b4, b5, merge;

  DiamondFixture() {
    ff1 = nl.add_cell("ff1", netlist::CellType::kDff);
    b1 = nl.add_cell("b1", netlist::CellType::kBuf, {ff1});
    b2 = nl.add_cell("b2", netlist::CellType::kBuf, {b1});
    b3 = nl.add_cell("b3", netlist::CellType::kNot, {ff1});
    b4 = nl.add_cell("b4", netlist::CellType::kNot, {b3});
    b5 = nl.add_cell("b5", netlist::CellType::kNot, {b4});
    merge = nl.add_cell("merge", netlist::CellType::kAnd, {b2, b5});
    ff2 = nl.add_cell("ff2", netlist::CellType::kDff, {merge});
    nl.set_fanins(ff1, {merge});  // sequential loop, fine
  }
};

TEST(TimingGraph, CellDelaysFromLibrary) {
  DiamondFixture f;
  const TimingGraph g(f.nl, lib());
  EXPECT_DOUBLE_EQ(g.cell_delay(f.b1),
                   lib().timing(netlist::CellType::kBuf).nominal_delay_ps);
  EXPECT_DOUBLE_EQ(g.cell_delay(f.ff1), lib().dff_clk_to_q_ps());
}

TEST(TimingGraph, PairDelaysMaxAndMin) {
  DiamondFixture f;
  const TimingGraph g(f.nl, lib());
  const auto pairs = g.all_pair_delays();
  ASSERT_EQ(pairs.size(), 2u);  // ff1->ff2 and ff1->ff1 (through loop? no:
  // ff1's D comes from merge which is fed by ff1's cone) — both pairs exist.
  const double clkq = lib().dff_clk_to_q_ps();
  const double buf = lib().timing(netlist::CellType::kBuf).nominal_delay_ps;
  const double inv = lib().timing(netlist::CellType::kNot).nominal_delay_ps;
  const double andd = lib().timing(netlist::CellType::kAnd).nominal_delay_ps;
  for (const PairDelay& pd : pairs) {
    EXPECT_EQ(pd.src_ff, f.ff1);
    EXPECT_NEAR(pd.max_delay, clkq + 3.0 * inv + andd, 1e-9);
    EXPECT_NEAR(pd.min_delay, clkq + 2.0 * buf + andd, 1e-9);
  }
}

TEST(TimingGraph, NearCriticalPathEnumeration) {
  DiamondFixture f;
  const TimingGraph g(f.nl, lib());
  // Wide window captures both branches.
  const auto paths = g.near_critical_paths(f.ff1, f.ff2, 100.0, 10);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_GE(paths[0].nominal_delay, paths[1].nominal_delay);
  // Longest path goes through the NOT chain.
  EXPECT_EQ(paths[0].gates.size(), 4u);  // b3 b4 b5 merge
  EXPECT_EQ(paths[1].gates.size(), 3u);  // b1 b2 merge
}

TEST(TimingGraph, WindowPrunesShortBranch) {
  DiamondFixture f;
  const TimingGraph g(f.nl, lib());
  const auto paths = g.near_critical_paths(f.ff1, f.ff2, 0.5, 10);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].gates.size(), 4u);
}

TEST(TimingGraph, PathCapRespected) {
  DiamondFixture f;
  const TimingGraph g(f.nl, lib());
  const auto paths = g.near_critical_paths(f.ff1, f.ff2, 100.0, 1);
  ASSERT_EQ(paths.size(), 1u);
  // The cap must keep the critical path.
  EXPECT_EQ(paths[0].gates.size(), 4u);
}

TEST(TimingGraph, PathDelayConsistentWithGateSum) {
  DiamondFixture f;
  const TimingGraph g(f.nl, lib());
  for (const StructuralPath& p :
       g.near_critical_paths(f.ff1, f.ff2, 100.0, 10)) {
    double acc = g.cell_delay(p.src_ff);
    for (int gate : p.gates) acc += g.cell_delay(gate);
    EXPECT_NEAR(acc, p.nominal_delay, 1e-9);
  }
}

TEST(TimingGraph, MinPathIsShortBranch) {
  DiamondFixture f;
  const TimingGraph g(f.nl, lib());
  const StructuralPath mp = g.min_path(f.ff1, f.ff2);
  EXPECT_EQ(mp.gates.size(), 3u);  // b1 b2 merge
  double acc = g.cell_delay(f.ff1);
  for (int gate : mp.gates) acc += g.cell_delay(gate);
  EXPECT_NEAR(acc, mp.nominal_delay, 1e-9);
}

TEST(TimingGraph, DisconnectedPairRejected) {
  netlist::Netlist nl;
  const int pi = nl.add_cell("pi", netlist::CellType::kInput);
  const int g1 = nl.add_cell("g1", netlist::CellType::kBuf, {pi});
  const int ffa = nl.add_cell("ffa", netlist::CellType::kDff, {g1});
  const int g2 = nl.add_cell("g2", netlist::CellType::kBuf, {pi});
  const int ffb = nl.add_cell("ffb", netlist::CellType::kDff, {g2});
  const TimingGraph g(nl, lib());
  EXPECT_TRUE(g.near_critical_paths(ffa, ffb, 10.0, 4).empty());
  EXPECT_THROW(g.min_path(ffa, ffb), netlist::NetlistError);
  EXPECT_TRUE(g.all_pair_delays().empty());
}

TEST(TimingGraph, NominalCriticalDelay) {
  DiamondFixture f;
  const TimingGraph g(f.nl, lib());
  const double clkq = lib().dff_clk_to_q_ps();
  const double inv = lib().timing(netlist::CellType::kNot).nominal_delay_ps;
  const double andd = lib().timing(netlist::CellType::kAnd).nominal_delay_ps;
  EXPECT_NEAR(g.nominal_critical_delay(), clkq + 3.0 * inv + andd, 1e-9);
}

TEST(TimingGraph, WorksOnParsedBench) {
  const netlist::Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
f1 = DFF(g2)
g1 = NOT(f1)
g2 = NAND(g1, a)
)");
  const TimingGraph g(nl, lib());
  const auto pairs = g.all_pair_delays();
  ASSERT_EQ(pairs.size(), 1u);  // f1 -> f1 self-loop through g1, g2
  EXPECT_EQ(pairs[0].src_ff, pairs[0].dst_ff);
  const double expected =
      lib().dff_clk_to_q_ps() +
      lib().timing(netlist::CellType::kNot).nominal_delay_ps +
      lib().timing(netlist::CellType::kNand).nominal_delay_ps;
  EXPECT_NEAR(pairs[0].max_delay, expected, 1e-9);
}

}  // namespace
}  // namespace effitest::timing
