#include "timing/variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace effitest::timing {
namespace {

const netlist::CellLibrary& lib() {
  static const netlist::CellLibrary library = netlist::CellLibrary::standard();
  return library;
}

TEST(SparseLoading, AccumulateMergesSorted) {
  SparseLoading a{{0, 1.0}, {3, 2.0}};
  const SparseLoading b{{1, 5.0}, {3, 1.0}};
  accumulate(a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].first, 0);
  EXPECT_EQ(a[1].first, 1);
  EXPECT_EQ(a[2].first, 3);
  EXPECT_DOUBLE_EQ(a[2].second, 3.0);
}

TEST(SparseLoading, DotIntersectsIndices) {
  const SparseLoading a{{0, 2.0}, {2, 3.0}, {5, 1.0}};
  const SparseLoading b{{2, 4.0}, {4, 7.0}, {5, 2.0}};
  EXPECT_DOUBLE_EQ(sparse_dot(a, b), 12.0 + 2.0);
  EXPECT_DOUBLE_EQ(sparse_dot(a, {}), 0.0);
}

TEST(SparseLoading, ApplyGathersDense) {
  const SparseLoading a{{1, 2.0}, {3, -1.0}};
  const std::vector<double> z{9.0, 1.0, 9.0, 4.0};
  EXPECT_DOUBLE_EQ(sparse_apply(a, z), 2.0 - 4.0);
}

TEST(VariationModel, FactorCountMatchesLevels) {
  VariationParams p;
  p.grid_levels = 3;
  const VariationModel m(p, lib());
  // 3 params x (1 + 4 + 16 + 64).
  EXPECT_EQ(m.num_factors(), 3u * 85u);
  VariationParams p0;
  p0.grid_levels = 0;
  EXPECT_EQ(VariationModel(p0, lib()).num_factors(), 3u);
}

TEST(VariationModel, InvalidParamsThrow) {
  VariationParams p;
  p.grid_levels = -1;
  EXPECT_THROW(VariationModel(p, lib()), std::invalid_argument);
  VariationParams p2;
  p2.global_corr = 1.5;
  EXPECT_THROW(VariationModel(p2, lib()), std::invalid_argument);
}

TEST(VariationModel, GateLoadingVarianceMatchesSystematicSigma) {
  // The loading is constructed so that sum of squared weights equals the
  // systematic variance of the gate delay.
  const VariationModel m(VariationParams{}, lib());
  for (netlist::CellType t :
       {netlist::CellType::kNand, netlist::CellType::kNot,
        netlist::CellType::kDff}) {
    const SparseLoading l = m.gate_loading(t, {0.3, 0.7});
    const double var = sparse_dot(l, l);
    const double sys = m.systematic_sigma(t);
    EXPECT_NEAR(std::sqrt(var), sys, 1e-9) << to_string(t);
  }
}

TEST(VariationModel, ZeroDelayCellsHaveNoLoading) {
  const VariationModel m(VariationParams{}, lib());
  EXPECT_TRUE(m.gate_loading(netlist::CellType::kInput, {0.5, 0.5}).empty());
}

TEST(VariationModel, SameCellPositionsShareAllFactors) {
  const VariationModel m(VariationParams{}, lib());
  const SparseLoading a = m.gate_loading(netlist::CellType::kNand, {0.31, 0.31});
  const SparseLoading b = m.gate_loading(netlist::CellType::kNand, {0.32, 0.32});
  // Same finest cell -> identical factor index sets -> correlation 1.
  const double corr = sparse_dot(a, b) /
                      std::sqrt(sparse_dot(a, a) * sparse_dot(b, b));
  EXPECT_NEAR(corr, 1.0, 1e-12);
}

TEST(VariationModel, DistantGatesCorrelateAtGlobalFloor) {
  VariationParams p;
  const VariationModel m(p, lib());
  const SparseLoading a = m.gate_loading(netlist::CellType::kNand, {0.05, 0.05});
  const SparseLoading b = m.gate_loading(netlist::CellType::kNand, {0.95, 0.95});
  const double corr = sparse_dot(a, b) /
                      std::sqrt(sparse_dot(a, a) * sparse_dot(b, b));
  EXPECT_NEAR(corr, p.global_corr, 1e-9);
}

TEST(VariationModel, CorrelationDecreasesWithDistance) {
  const VariationModel m(VariationParams{}, lib());
  const auto corr_at = [&](double dx) {
    const SparseLoading a =
        m.gate_loading(netlist::CellType::kNand, {0.131, 0.131});
    const SparseLoading b =
        m.gate_loading(netlist::CellType::kNand, {0.131 + dx, 0.131});
    return sparse_dot(a, b) / std::sqrt(sparse_dot(a, a) * sparse_dot(b, b));
  };
  const double near = corr_at(0.05);
  const double mid = corr_at(0.3);
  const double far = corr_at(0.8);
  EXPECT_GE(near, mid);
  EXPECT_GE(mid, far);
}

TEST(VariationModel, MismatchSigmaScalesWithFraction) {
  VariationParams p;
  p.mismatch_frac = 0.2;
  const VariationModel m2(p, lib());
  p.mismatch_frac = 0.1;
  const VariationModel m1(p, lib());
  EXPECT_NEAR(m2.mismatch_sigma(netlist::CellType::kNand),
              2.0 * m1.mismatch_sigma(netlist::CellType::kNand), 1e-12);
}

TEST(VariationModel, SampleFactorsSizeAndRandomness) {
  const VariationModel m(VariationParams{}, lib());
  stats::Rng rng(3);
  const std::vector<double> z1 = m.sample_factors(rng);
  const std::vector<double> z2 = m.sample_factors(rng);
  EXPECT_EQ(z1.size(), m.num_factors());
  EXPECT_NE(z1, z2);
}

TEST(VariationModel, PositionsClampedAtDieEdge) {
  const VariationModel m(VariationParams{}, lib());
  EXPECT_NO_THROW(m.gate_loading(netlist::CellType::kNand, {1.0, 1.0}));
  EXPECT_NO_THROW(m.gate_loading(netlist::CellType::kNand, {0.0, 0.0}));
}

}  // namespace
}  // namespace effitest::timing
