#include "timing/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "netlist/generator.hpp"
#include "stats/distributions.hpp"

namespace effitest::timing {
namespace {

const netlist::CellLibrary& lib() {
  static const netlist::CellLibrary library = netlist::CellLibrary::standard();
  return library;
}

netlist::GeneratedCircuit tiny_circuit() {
  netlist::GeneratorSpec s;
  s.name = "model_test";
  s.num_flip_flops = 50;
  s.num_gates = 600;
  s.num_buffers = 2;
  s.num_critical_paths = 16;
  s.seed = 11;
  return netlist::generate_circuit(s);
}

TEST(CircuitModel, MonitoredPairsMatchGeneratorEdges) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  EXPECT_EQ(m.num_pairs(), c.critical_edges.size());
  // Every monitored pair corresponds to a generator edge.
  std::set<std::pair<int, int>> expected(c.critical_edges.begin(),
                                         c.critical_edges.end());
  for (const MonitoredPair& p : m.pairs()) {
    EXPECT_TRUE(expected.contains({p.src_ff, p.dst_ff}));
    EXPECT_TRUE(p.src_buffered || p.dst_buffered);
  }
}

TEST(CircuitModel, BufferIndexLookup) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  for (std::size_t i = 0; i < c.buffered_ffs.size(); ++i) {
    EXPECT_EQ(m.buffer_index(c.buffered_ffs[i]), static_cast<int>(i));
  }
  EXPECT_EQ(m.buffer_index(-1 + 0), -1);  // nonexistent id never matches
}

TEST(CircuitModel, RejectsBadBufferList) {
  const auto c = tiny_circuit();
  // A combinational gate cannot carry a clock tuning buffer.
  int gate = -1;
  for (std::size_t i = 0; i < c.netlist.num_cells(); ++i) {
    if (netlist::is_combinational(c.netlist.cell(static_cast<int>(i)).type)) {
      gate = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(gate, 0);
  EXPECT_THROW(CircuitModel(c.netlist, lib(), {gate}), std::invalid_argument);
  EXPECT_THROW(
      CircuitModel(c.netlist, lib(),
                   {c.buffered_ffs[0], c.buffered_ffs[0]}),
      std::invalid_argument);
}

TEST(CircuitModel, MeansIncludeSetupAndArePositive) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  for (const MonitoredPair& p : m.pairs()) {
    EXPECT_GT(p.max_form.mean, lib().dff_setup_ps());
    EXPECT_GE(p.max_form.mean, p.min_form.mean);
    EXPECT_FALSE(p.max_alts.empty());
    EXPECT_NEAR(p.max_alts.front().mean, p.max_form.mean, 1e-12);
  }
}

TEST(CircuitModel, CovarianceIsSymmetricPsd) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  const linalg::Matrix cov = m.max_covariance();
  EXPECT_LT(cov.max_asymmetry(), 1e-12);
  for (std::size_t i = 0; i < cov.rows(); ++i) {
    EXPECT_GT(cov(i, i), 0.0);
    for (std::size_t j = 0; j < cov.cols(); ++j) {
      // |corr| <= 1.
      EXPECT_LE(std::abs(cov(i, j)),
                std::sqrt(cov(i, i) * cov(j, j)) + 1e-9);
    }
  }
}

TEST(CircuitModel, SigmasConsistentWithCovariance) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  const linalg::Matrix cov = m.max_covariance();
  const std::vector<double> sigma = m.max_sigmas();
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    EXPECT_NEAR(sigma[i] * sigma[i], cov(i, i), 1e-9);
  }
}

TEST(CircuitModel, ChipSamplingMatchesModelStatistics) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  stats::Rng rng(21);
  const std::size_t chips = 4000;
  const std::size_t probe = 0;
  std::vector<double> samples(chips);
  for (std::size_t k = 0; k < chips; ++k) {
    samples[k] = m.sample_chip(rng).max_delay[probe];
  }
  const double mu = m.pairs()[probe].max_form.mean;
  const double sd = m.pairs()[probe].max_form.sigma();
  // Truth is a max over near-critical alternatives, so the sampled mean may
  // sit slightly above the primary-path mean but far within one sigma.
  EXPECT_NEAR(stats::mean(samples), mu, 0.5 * sd);
  EXPECT_NEAR(stats::stddev(samples), sd, 0.2 * sd);
}

TEST(CircuitModel, EmpiricalCorrelationTracksModel) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  const linalg::Matrix cov = m.max_covariance();
  stats::Rng rng(31);
  const std::size_t chips = 3000;
  std::vector<double> a(chips);
  std::vector<double> b(chips);
  const std::size_t i = 0;
  const std::size_t j = m.num_pairs() - 1;
  for (std::size_t k = 0; k < chips; ++k) {
    const Chip chip = m.sample_chip(rng);
    a[k] = chip.max_delay[i];
    b[k] = chip.max_delay[j];
  }
  const double model_corr =
      cov(i, j) / std::sqrt(cov(i, i) * cov(j, j));
  EXPECT_NEAR(stats::correlation(a, b), model_corr, 0.08);
}

TEST(CircuitModel, MinDelaysBelowMaxDelays) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  stats::Rng rng(41);
  for (int k = 0; k < 20; ++k) {
    const Chip chip = m.sample_chip(rng);
    for (std::size_t p = 0; p < m.num_pairs(); ++p) {
      // min path excludes the setup margin, max includes it.
      EXPECT_LT(chip.min_delay[p], chip.max_delay[p]);
    }
  }
}

TEST(CircuitModel, RandomInflationGrowsVarianceNotCovariance) {
  const auto c = tiny_circuit();
  const CircuitModel base(c.netlist, lib(), c.buffered_ffs);
  ModelOptions opts;
  opts.random_inflation = 1.1;
  const CircuitModel inflated(c.netlist, lib(), c.buffered_ffs, opts);
  const linalg::Matrix cov0 = base.max_covariance();
  const linalg::Matrix cov1 = inflated.max_covariance();
  ASSERT_EQ(cov0.rows(), cov1.rows());
  for (std::size_t i = 0; i < cov0.rows(); ++i) {
    // Diagonal scaled by 1.1^2 exactly (Fig. 7 protocol).
    EXPECT_NEAR(cov1(i, i), 1.21 * cov0(i, i), 1e-6 * cov0(i, i));
    for (std::size_t j = 0; j < cov0.cols(); ++j) {
      if (i == j) continue;
      EXPECT_NEAR(cov1(i, j), cov0(i, j), 1e-9);  // off-diagonals untouched
    }
  }
}

TEST(CircuitModel, InflationBelowOneRejected) {
  const auto c = tiny_circuit();
  ModelOptions opts;
  opts.random_inflation = 0.9;
  EXPECT_THROW(CircuitModel(c.netlist, lib(), c.buffered_ffs, opts),
               std::invalid_argument);
}

TEST(CircuitModel, BackgroundPairsDiscardedAsStaticallySafe) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  // The generator's background ring is far from critical.
  EXPECT_GT(m.num_discarded_pairs(), 0u);
  EXPECT_EQ(m.num_static_pairs(), 0u);
}

TEST(CircuitModel, DeterministicChipStream) {
  const auto c = tiny_circuit();
  const CircuitModel m(c.netlist, lib(), c.buffered_ffs);
  stats::Rng r1(77);
  stats::Rng r2(77);
  const Chip a = m.sample_chip(r1);
  const Chip b = m.sample_chip(r2);
  EXPECT_EQ(a.max_delay, b.max_delay);
  EXPECT_EQ(a.min_delay, b.min_delay);
}

TEST(CircuitModel, SpecializedSamplersShareTheChipStream) {
  // sample_required_period / sample_min_delays / workspace sample_chip must
  // produce exactly the full sample_chip values AND leave the rng engine in
  // exactly the same state (so loops can mix the APIs freely). Checked with
  // and without the Fig-7 inflation (which makes every form draw its own
  // deviate in evaluation order — skipped evaluations must still consume
  // theirs).
  const auto c = tiny_circuit();
  for (double inflation : {1.0, 1.3}) {
    ModelOptions options;
    options.random_inflation = inflation;
    const CircuitModel m(c.netlist, lib(), c.buffered_ffs, options);
    for (int round = 0; round < 3; ++round) {
      const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(round);
      stats::Rng full_rng(seed);
      stats::Rng period_rng(seed);
      stats::Rng min_rng(seed);
      stats::Rng ws_rng(seed);

      const Chip full = m.sample_chip(full_rng);
      double expected_period = 0.0;
      for (double d : full.max_delay) {
        expected_period = std::max(expected_period, d);
      }
      for (double d : full.static_delay) {
        expected_period = std::max(expected_period, d);
      }

      SampleWorkspace ws;
      EXPECT_EQ(m.sample_required_period(period_rng, ws), expected_period);
      std::vector<double> min_delay;
      m.sample_min_delays(min_rng, ws, min_delay);
      EXPECT_EQ(min_delay, full.min_delay);
      const Chip via_ws = m.sample_chip(ws_rng, ws);
      EXPECT_EQ(via_ws.max_delay, full.max_delay);
      EXPECT_EQ(via_ws.min_delay, full.min_delay);

      // Stream alignment: the engines must agree on the next raw draw.
      const std::uint64_t next = full_rng.engine()();
      EXPECT_EQ(period_rng.engine()(), next);
      EXPECT_EQ(min_rng.engine()(), next);
      EXPECT_EQ(ws_rng.engine()(), next);
    }
  }
}

}  // namespace
}  // namespace effitest::timing
