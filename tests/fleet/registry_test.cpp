// Unit suite for the fleet worker registry (fleet/registry.hpp): the
// three-state health machine stepped with an injected prober (no
// wall-clock), deterministic least-loaded routing, the report_failure
// fast path, the status/banner wire parsers, and one integration round
// against a real TuneServeLoop's in-band status endpoint.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "fleet/registry.hpp"
#include "fleet/supervisor.hpp"
#include "fleet_test_common.hpp"
#include "net/serve.hpp"

namespace {

using namespace effitest;
using fleet::ProbeResult;
using fleet::WorkerEndpoint;
using fleet::WorkerHealth;
using fleet::WorkerRegistry;

fleet::RegistryOptions slow_options() {
  fleet::RegistryOptions o;
  o.degraded_after = 2;
  o.dead_after = 4;
  return o;
}

WorkerEndpoint ep(std::uint16_t port) { return {"127.0.0.1", port}; }

TEST(WorkerRegistry, HealthWalksLiveDegradedDeadAndReadmits) {
  WorkerRegistry registry(slow_options());
  const std::size_t slot = registry.add_worker(ep(4242));
  EXPECT_EQ(registry.health(slot), WorkerHealth::kLive);

  bool answer = false;
  registry.set_prober([&](const WorkerEndpoint&) {
    ProbeResult r;
    r.ok = answer;
    return r;
  });

  // Failures 1..3: degraded at 2, still degraded at 3.
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kLive);
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kDegraded);
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kDegraded);
  // Failure 4: dead.
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kDead);
  EXPECT_EQ(registry.count(WorkerHealth::kDead), 1u);

  // One successful probe re-admits from dead, clean failure count: the
  // next single failure must not jump straight back past live.
  answer = true;
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kLive);
  answer = false;
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kLive);
}

TEST(WorkerRegistry, ReportFailureIsAnImmediateDemotion) {
  WorkerRegistry registry(slow_options());
  const std::size_t slot = registry.add_worker(ep(4242));
  registry.set_prober([](const WorkerEndpoint&) {
    ProbeResult r;
    r.ok = true;
    return r;
  });

  registry.report_failure(slot);
  EXPECT_EQ(registry.health(slot), WorkerHealth::kDead);
  EXPECT_EQ(registry.acquire(), std::nullopt);

  // The prober re-admits the worker the moment it answers again.
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kLive);
}

TEST(WorkerRegistry, RoutingIsLeastLoadedWithLowestIndexTies) {
  WorkerRegistry registry(slow_options());
  for (std::uint16_t p = 1; p <= 3; ++p) (void)registry.add_worker(ep(p));

  // Fresh registry: ties broken by the lowest index, in order.
  EXPECT_EQ(registry.acquire(), std::optional<std::size_t>(0));
  EXPECT_EQ(registry.acquire(), std::optional<std::size_t>(1));
  EXPECT_EQ(registry.acquire(), std::optional<std::size_t>(2));
  EXPECT_EQ(registry.in_flight(0), 1u);

  // All tied at one in flight again: back to slot 0.
  EXPECT_EQ(registry.acquire(), std::optional<std::size_t>(0));
  // Releasing slot 1 makes it the unique least-loaded worker.
  registry.release(1);
  EXPECT_EQ(registry.acquire(), std::optional<std::size_t>(1));
}

TEST(WorkerRegistry, DegradedWorkersAreALastResortAndDeadOnesNever) {
  WorkerRegistry registry(slow_options());
  const std::size_t a = registry.add_worker(ep(1));
  const std::size_t b = registry.add_worker(ep(2));

  // Degrade slot a only (the prober keys off the endpoint it is handed).
  registry.set_prober([](const WorkerEndpoint& e) {
    ProbeResult r;
    r.ok = e.port != 1;
    return r;
  });
  registry.probe_all();
  registry.probe_all();
  ASSERT_EQ(registry.health(a), WorkerHealth::kDegraded);
  ASSERT_EQ(registry.health(b), WorkerHealth::kLive);

  // While b is live, every acquisition lands on b — even as its load
  // grows past the idle degraded slot's.
  EXPECT_EQ(registry.acquire(), std::optional<std::size_t>(b));
  EXPECT_EQ(registry.acquire(), std::optional<std::size_t>(b));

  // Nothing live: the degraded slot is used rather than refusing.
  registry.report_failure(b);
  EXPECT_EQ(registry.acquire(), std::optional<std::size_t>(a));

  // Nothing live or degraded: unroutable.
  registry.report_failure(a);
  EXPECT_EQ(registry.acquire(), std::nullopt);
}

TEST(WorkerRegistry, UnknownEndpointStartsDeadUntilUpdated) {
  WorkerRegistry registry(slow_options());
  const std::size_t slot = registry.add_worker(ep(0));  // pre-banner spawn
  EXPECT_EQ(registry.health(slot), WorkerHealth::kDead);
  EXPECT_EQ(registry.acquire(), std::nullopt);

  // The supervisor's banner callback points the slot somewhere real and
  // re-admits it.
  registry.update_endpoint(slot, ep(4242));
  EXPECT_EQ(registry.health(slot), WorkerHealth::kLive);
  EXPECT_EQ(registry.endpoint(slot).port, 4242);
  EXPECT_EQ(registry.acquire(), std::optional<std::size_t>(slot));
}

TEST(WorkerRegistry, ProbeGaugesSurfaceTheWorkersSelfReport) {
  WorkerRegistry registry(slow_options());
  const std::size_t slot = registry.add_worker(ep(1));
  registry.set_prober([](const WorkerEndpoint&) {
    ProbeResult r;
    r.ok = true;
    r.queue_depth = 3.0;
    r.active_sessions = 2.0;
    return r;
  });
  registry.probe_all();
  EXPECT_EQ(registry.probed_queue_depth(slot), 3.0);
  EXPECT_EQ(registry.probed_active_sessions(slot), 2.0);
}

TEST(ParseWorkerStatus, AcceptsStatusV1AndExtractsServeGauges) {
  const ProbeResult r = fleet::parse_worker_status(
      R"({"schema": "effitest-status-v1", "counters": {}, )"
      R"("gauges": {"serve.queue_depth": 5, "serve.active_sessions": 2}, )"
      R"("histograms": {}})");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.queue_depth, 5.0);
  EXPECT_EQ(r.active_sessions, 2.0);
}

TEST(ParseWorkerStatus, MissingGaugesAreZeroNotFailure) {
  const ProbeResult r = fleet::parse_worker_status(
      R"({"schema": "effitest-status-v1", "counters": {}, "gauges": {}})");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.queue_depth, 0.0);
  EXPECT_EQ(r.active_sessions, 0.0);
}

TEST(ParseWorkerStatus, RejectsMalformedAndForeignPayloads) {
  EXPECT_FALSE(fleet::parse_worker_status("").ok);
  EXPECT_FALSE(fleet::parse_worker_status("not json").ok);
  EXPECT_FALSE(fleet::parse_worker_status("{}").ok);
  EXPECT_FALSE(
      fleet::parse_worker_status(R"({"schema": "something-else"})").ok);
  EXPECT_FALSE(fleet::parse_worker_status(R"({"schema": 7})").ok);
  EXPECT_FALSE(fleet::parse_worker_status(R"({"schema": )").ok);
}

TEST(ParseServingBanner, AcceptsTheServeBannerShape) {
  const auto e = fleet::parse_serving_banner("serving on 127.0.0.1:4242");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->host, "127.0.0.1");
  EXPECT_EQ(e->port, 4242);
}

TEST(ParseServingBanner, RejectsEverythingElse) {
  EXPECT_FALSE(fleet::parse_serving_banner("").has_value());
  EXPECT_FALSE(fleet::parse_serving_banner("served 2 session(s)").has_value());
  EXPECT_FALSE(fleet::parse_serving_banner("serving on ").has_value());
  EXPECT_FALSE(fleet::parse_serving_banner("serving on 127.0.0.1").has_value());
  EXPECT_FALSE(
      fleet::parse_serving_banner("serving on 127.0.0.1:").has_value());
  EXPECT_FALSE(
      fleet::parse_serving_banner("serving on :4242").has_value());
  EXPECT_FALSE(
      fleet::parse_serving_banner("serving on 127.0.0.1:0").has_value());
  EXPECT_FALSE(
      fleet::parse_serving_banner("serving on 127.0.0.1:65536").has_value());
  EXPECT_FALSE(
      fleet::parse_serving_banner("serving on 127.0.0.1:42x").has_value());
}

TEST(WorkerRegistry, DefaultProberSpeaksToARealServeLoop) {
  net::ServeOptions soptions;
  soptions.workers = 1;
  net::TuneServeLoop loop(fleet_test::holder().service, soptions);
  loop.start();

  fleet::RegistryOptions roptions;
  roptions.degraded_after = 1;
  roptions.dead_after = 2;
  roptions.probe_timeout_seconds = 5.0;
  WorkerRegistry registry(roptions);
  const std::size_t slot =
      registry.add_worker({loop.host(), loop.port()});

  // The in-band `status` request on the serve port is the health probe —
  // no extra listener needed on the worker.
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kLive);

  loop.request_drain();
  loop.wait();

  // The drained worker stops answering: degraded after one miss, dead
  // after two, exactly like a crashed process.
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kDegraded);
  registry.probe_all();
  EXPECT_EQ(registry.health(slot), WorkerHealth::kDead);
}

}  // namespace
