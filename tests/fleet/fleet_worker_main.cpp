// Helper binary for the fleet process tests: one real `serve` worker over
// the suite's shared tiny circuit, speaking the exact contract
// ProcessSupervisor expects — `serving on <host>:<port>` on stdout when
// ready, graceful drain on SIGTERM. Lives in tests/ (not tools/) because
// the ThreadSanitizer CI job builds with EFFITEST_BUILD_TOOLS=OFF and the
// fleet suite still needs a killable worker process.

#include <csignal>
#include <iostream>

#include "fleet_test_common.hpp"
#include "net/serve.hpp"

namespace {
effitest::net::TuneServeLoop* g_loop = nullptr;
}  // namespace

extern "C" void fleet_worker_handle_signal(int) {
  if (g_loop != nullptr) g_loop->request_drain();
}

int main() {
  using namespace effitest;
  net::ServeOptions options;
  options.workers = 2;
  net::TuneServeLoop loop(fleet_test::holder().service, options);
  loop.start();
  g_loop = &loop;
  (void)std::signal(SIGTERM, fleet_worker_handle_signal);
  (void)std::signal(SIGINT, fleet_worker_handle_signal);
  // std::endl, not '\n': the banner must cross the supervisor's pipe now,
  // not sit in a stdio buffer until exit.
  std::cout << "serving on " << loop.host() << ":" << loop.port()
            << std::endl;
  loop.wait();
  return 0;
}
