#pragma once
// Shared fixture for the fleet suite (and the fleet_worker helper binary):
// the same tiny 16-FF/60-gate/2-buffer circuit the net suite serves, with
// an explicit designated period so construction is protocol-speed. Every
// worker in a fleet test — in-process TuneServeLoop, fake dying listener,
// or spawned helper process — is built from this one spec, which is what
// makes the byte-identity assertions meaningful: any two workers answer a
// replayed session with the same bytes.
//
// Deliberately gtest-free so fleet_worker_main.cpp can include it.

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "core/tuner_service.hpp"
#include "io/tune_protocol.hpp"
#include "netlist/cell.hpp"
#include "netlist/generator.hpp"
#include "timing/model.hpp"

namespace effitest::fleet_test {

struct ServiceHolder {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  core::Problem problem;
  core::TunerService service;

  static netlist::GeneratorSpec spec() {
    netlist::GeneratorSpec s;
    s.num_flip_flops = 16;
    s.num_gates = 60;
    s.num_buffers = 2;
    s.num_critical_paths = 6;
    s.seed = 7;
    return s;
  }

  static core::FlowOptions options() {
    core::FlowOptions o;
    o.seed = 11;
    o.designated_period = 900.0;
    o.threads = 1;
    return o;
  }

  ServiceHolder()
      : circuit(netlist::generate_circuit(spec())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model),
        service(problem, options()) {}
};

inline const ServiceHolder& holder() {
  static const ServiceHolder h;
  return h;
}

/// Chip ids are the second token; lexicographic sort is wrong past chip 9.
inline std::vector<std::string> sorted_by_chip(
    std::vector<std::string> lines) {
  std::sort(lines.begin(), lines.end(),
            [](const std::string& a, const std::string& b) {
              std::istringstream as(a), bs(b);
              std::string tag;
              std::size_t ca = 0, cb = 0;
              as >> tag >> ca;
              bs >> tag >> cb;
              return ca < cb;
            });
  return lines;
}

/// The `report <chip> ...` lines of a local simulated run, in chip order —
/// the golden transcript every fleet-relayed session must reproduce
/// byte-for-byte, migrations included.
inline std::vector<std::string> simulated_report_lines(std::size_t chips) {
  io::TuneServer server(holder().service, chips);
  std::ostringstream out;
  (void)server.run_simulated(out);
  std::vector<std::string> reports;
  std::istringstream is(out.str());
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("report ", 0) == 0) reports.push_back(line);
  }
  return sorted_by_chip(std::move(reports));
}

}  // namespace effitest::fleet_test
