// Integration suite for the fleet front balancer (fleet/balancer.hpp):
// sessions relayed through the balancer must reproduce `tune --simulate`
// reports byte-for-byte — including a session whose worker dies mid-flight
// and is replayed on a survivor, and a session whose worker process is
// SIGKILL'd outright. Plus the failure edges (fleet exhaustion, seed
// mismatch, deterministic worker rejections) and the fleet status
// endpoints. Runs under the ThreadSanitizer CI label (`fleet`): the relay
// is two threads per session against a shared registry.
//
// Everything binds 127.0.0.1 port 0 (kernel-chosen), so parallel ctest
// invocations never collide.

#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fleet/balancer.hpp"
#include "fleet/registry.hpp"
#include "fleet/supervisor.hpp"
#include "fleet_test_common.hpp"
#include "io/json.hpp"
#include "net/client.hpp"
#include "net/serve.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace effitest;
using fleet_test::holder;
using fleet_test::simulated_report_lines;
using fleet_test::sorted_by_chip;

fleet::BalancerOptions fast_options() {
  fleet::BalancerOptions o;
  o.relay_workers = 4;
  o.attach_backoff_seconds = 0.01;  // tests never wait on a supervisor
  return o;
}

TEST(FleetBalancer, RelayedSessionsMatchSimulatedReports) {
  net::ServeOptions soptions;
  soptions.workers = 2;
  net::TuneServeLoop worker_a(holder().service, soptions);
  net::TuneServeLoop worker_b(holder().service, soptions);
  worker_a.start();
  worker_b.start();

  fleet::WorkerRegistry registry;
  (void)registry.add_worker({worker_a.host(), worker_a.port()});
  (void)registry.add_worker({worker_b.host(), worker_b.port()});
  fleet::FleetBalancer balancer(registry, fast_options());
  balancer.start();

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kChips = 3;
  const std::vector<std::string> golden = simulated_report_lines(kChips);
  ASSERT_EQ(golden.size(), kChips);

  std::vector<std::optional<net::ClientResult>> results(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        net::ClientOptions copts;
        copts.chips = kChips;
        results[i] = net::run_loopback_client("127.0.0.1", balancer.port(),
                                              holder().problem, copts);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  balancer.request_drain();
  balancer.wait();
  worker_a.request_drain();
  worker_b.request_drain();
  worker_a.wait();
  worker_b.wait();

  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(results[i].has_value()) << "client " << i << " threw";
    EXPECT_EQ(sorted_by_chip(results[i]->report_lines), golden)
        << "client " << i;
    EXPECT_TRUE(results[i]->error_lines.empty());
  }
  // Both workers actually served: least-loaded routing spreads concurrent
  // sessions instead of piling onto slot 0.
  EXPECT_EQ(worker_a.metrics().counter(net::kMetricSessionsCompleted) +
                worker_b.metrics().counter(net::kMetricSessionsCompleted),
            kClients);
  const obs::RegistrySnapshot m = balancer.metrics();
  EXPECT_EQ(m.counter(fleet::kFleetSessionsRouted), kClients);
  EXPECT_EQ(m.counter(fleet::kFleetSessionsCompleted), kClients);
  EXPECT_EQ(m.counter(fleet::kFleetSessionsFailed), 0u);
  EXPECT_EQ(m.counter(fleet::kFleetSessionsRetried), 0u);
  EXPECT_EQ(m.gauge(fleet::kFleetActiveSessions), 0.0);
  EXPECT_EQ(m.gauge(fleet::kFleetWorkersLive), 2.0);
  EXPECT_GT(m.gauge(fleet::kFleetSessionsPerSec), 0.0);
}

TEST(FleetBalancer, SessionMigratesWhenItsWorkerDiesMidFlight) {
  // Slot 0 is a proxy that relays the first few REAL server lines from a
  // genuine worker, then hard-closes — a deterministic mid-session death
  // with genuine bytes already forwarded. Slot 1 is the survivor. The
  // migrated session must replay its backlog, discard exactly the prefix
  // the client already holds, and still match the golden transcript.
  net::ServeOptions soptions;
  soptions.workers = 2;
  net::TuneServeLoop survivor(holder().service, soptions);
  survivor.start();

  net::Listener dying("127.0.0.1", 0, 8);
  std::thread proxy([&] {
    net::Socket conn = dying.accept();
    if (!conn.valid()) return;
    net::SocketStream client_side(std::move(conn));
    std::string hello;
    if (!std::getline(client_side, hello)) return;
    net::SocketStream backend(
        net::connect_to(survivor.host(), survivor.port()));
    backend << hello << '\n';
    backend.flush();
    // Greeting + header + two stimulus lines, then death mid-session.
    std::string line;
    for (int i = 0; i < 4 && std::getline(backend, line); ++i) {
      client_side << line << '\n';
      client_side.flush();
    }
  });

  fleet::WorkerRegistry registry;
  (void)registry.add_worker({dying.host(), dying.port()});
  (void)registry.add_worker({survivor.host(), survivor.port()});
  fleet::FleetBalancer balancer(registry, fast_options());
  balancer.start();

  constexpr std::size_t kChips = 2;
  const std::vector<std::string> golden = simulated_report_lines(kChips);
  net::ClientOptions copts;
  copts.chips = kChips;
  const net::ClientResult result = net::run_loopback_client(
      "127.0.0.1", balancer.port(), holder().problem, copts);
  proxy.join();

  balancer.request_drain();
  balancer.wait();
  survivor.request_drain();
  survivor.wait();

  EXPECT_EQ(sorted_by_chip(result.report_lines), golden);
  const obs::RegistrySnapshot m = balancer.metrics();
  EXPECT_EQ(m.counter(fleet::kFleetSessionsCompleted), 1u);
  EXPECT_EQ(m.counter(fleet::kFleetSessionsRetried), 1u);
  EXPECT_EQ(m.counter(fleet::kFleetSessionsFailed), 0u);
  // The relay's fast path marked the dead proxy's slot, no prober needed.
  EXPECT_EQ(registry.health(0), fleet::WorkerHealth::kDead);
}

TEST(FleetBalancer, ExhaustedRetriesSurfaceAsAFleetError) {
  // One slot, pointing at a port with nothing behind it: every attach
  // fails, the bounded retries run out, and the client gets one clear
  // fatal error line instead of a hang or a bare disconnect.
  std::uint16_t dead_port = 0;
  {
    net::Listener gone("127.0.0.1", 0, 1);
    dead_port = gone.port();
  }
  fleet::WorkerRegistry registry;
  (void)registry.add_worker({"127.0.0.1", dead_port});
  fleet::BalancerOptions options = fast_options();
  options.max_session_retries = 1;
  fleet::FleetBalancer balancer(registry, options);
  balancer.start();

  std::string reply;
  {
    net::SocketStream stream(net::connect_to("127.0.0.1", balancer.port()));
    stream << "hello effitest-tune-v1 chips=1\n";
    stream.flush();
    ASSERT_TRUE(std::getline(stream, reply));
  }
  balancer.request_drain();
  balancer.wait();

  EXPECT_EQ(reply.rfind("error - fleet exhausted", 0), 0u) << reply;
  const obs::RegistrySnapshot m = balancer.metrics();
  EXPECT_EQ(m.counter(fleet::kFleetSessionsFailed), 1u);
  EXPECT_EQ(m.counter(fleet::kFleetSessionsCompleted), 0u);
}

TEST(FleetBalancer, SeedMismatchAbortsInsteadOfDivergingBytes) {
  // The first worker greets with a bogus seed base and dies; the real
  // replacement answers with the true base. Replaying would hand the
  // client divergent bytes, so the balancer must abort the session with a
  // fatal error instead.
  net::ServeOptions soptions;
  soptions.workers = 1;
  net::TuneServeLoop real(holder().service, soptions);
  real.start();

  const std::uint64_t bogus_seed =
      holder().service.monte_carlo_seed_base() + 1;
  net::Listener liar("127.0.0.1", 0, 8);
  std::thread fake([&] {
    net::Socket conn = liar.accept();
    if (!conn.valid()) return;
    net::SocketStream stream(std::move(conn));
    std::string hello;
    if (!std::getline(stream, hello)) return;
    stream << "serve effitest-tune-v1 session=0 seed=" << bogus_seed << '\n';
    stream.flush();
  });  // stream closes: mid-session death right after the greeting

  fleet::WorkerRegistry registry;
  (void)registry.add_worker({liar.host(), liar.port()});
  (void)registry.add_worker({real.host(), real.port()});
  fleet::FleetBalancer balancer(registry, fast_options());
  balancer.start();

  std::string greeting, error_line;
  {
    net::SocketStream stream(net::connect_to("127.0.0.1", balancer.port()));
    stream << "hello effitest-tune-v1 chips=1\n";
    stream.flush();
    ASSERT_TRUE(std::getline(stream, greeting));
    ASSERT_TRUE(std::getline(stream, error_line));
  }
  fake.join();
  balancer.request_drain();
  balancer.wait();
  real.request_drain();
  real.wait();

  EXPECT_EQ(greeting.rfind("serve effitest-tune-v1 ", 0), 0u) << greeting;
  EXPECT_EQ(error_line.rfind("error - fleet worker seed mismatch", 0), 0u)
      << error_line;
  EXPECT_EQ(balancer.metrics().counter(fleet::kFleetSessionsFailed), 1u);
}

TEST(FleetBalancer, WorkerRejectionIsForwardedAndNeverRetried) {
  // A deterministic worker-side rejection (`error - ...` greeting) would
  // recur on every worker — forwarding it once is correct, retrying is a
  // waste that hides the real problem.
  net::ServeOptions soptions;
  soptions.workers = 1;
  soptions.max_chips_per_session = 2;
  net::TuneServeLoop worker(holder().service, soptions);
  worker.start();

  fleet::WorkerRegistry registry;
  (void)registry.add_worker({worker.host(), worker.port()});
  fleet::FleetBalancer balancer(registry, fast_options());
  balancer.start();

  std::string reply;
  {
    net::SocketStream stream(net::connect_to("127.0.0.1", balancer.port()));
    stream << "hello effitest-tune-v1 chips=3\n";
    stream.flush();
    ASSERT_TRUE(std::getline(stream, reply));
  }
  balancer.request_drain();
  balancer.wait();
  worker.request_drain();
  worker.wait();

  EXPECT_EQ(reply.rfind("error - ", 0), 0u) << reply;
  const obs::RegistrySnapshot m = balancer.metrics();
  EXPECT_EQ(m.counter(fleet::kFleetSessionsFailed), 1u);
  EXPECT_EQ(m.counter(fleet::kFleetSessionsRetried), 0u);
}

io::json::Value parse_status(const std::string& line) {
  io::json::Parser parser(line, "status");
  return parser.parse();
}

double status_number(const io::json::Value& doc, const char* section,
                     const std::string& name) {
  const io::json::Value* s = doc.find(section);
  const io::json::Value* v = s == nullptr ? nullptr : s->find(name);
  return v == nullptr ? -1.0 : v->number;
}

TEST(FleetBalancer, StatusEndpointsServeJsonAndPrometheus) {
  net::ServeOptions soptions;
  soptions.workers = 1;
  net::TuneServeLoop worker(holder().service, soptions);
  worker.start();

  fleet::WorkerRegistry registry;
  (void)registry.add_worker({worker.host(), worker.port()});
  fleet::BalancerOptions options = fast_options();
  options.status_port = 0;
  fleet::FleetBalancer balancer(registry, options);
  balancer.start();
  ASSERT_NE(balancer.status_port(), 0);

  // One relayed session, so the counters have something to show.
  net::ClientOptions copts;
  copts.chips = 1;
  const net::ClientResult result = net::run_loopback_client(
      "127.0.0.1", balancer.port(), holder().problem, copts);
  EXPECT_EQ(sorted_by_chip(result.report_lines), simulated_report_lines(1));
  // The client's `bye` races the relay's completion bookkeeping by a few
  // instructions; wait for it to land before polling.
  while (balancer.metrics().counter(fleet::kFleetSessionsCompleted) < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Dedicated endpoint: fleet-level schema-v1 JSON.
  const io::json::Value doc = parse_status(
      net::fetch_status("127.0.0.1", balancer.status_port()));
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->string, "effitest-status-v1");
  EXPECT_EQ(
      status_number(doc, "counters", fleet::kFleetSessionsCompleted), 1.0);
  EXPECT_EQ(status_number(doc, "gauges", fleet::kFleetWorkersLive), 1.0);
  // Per-worker gauges are registered per registry slot.
  EXPECT_EQ(status_number(doc, "gauges", "fleet.worker0.live_sessions"), 0.0);

  // In-band `status` on the relay port answers without touching session
  // counters; `status prometheus` renders the same registry as exposition
  // text.
  const io::json::Value inband =
      parse_status(net::fetch_status("127.0.0.1", balancer.port()));
  EXPECT_EQ(
      status_number(inband, "counters", fleet::kFleetSessionsRouted), 1.0);
  const std::string prom =
      net::fetch_prometheus("127.0.0.1", balancer.port());
  EXPECT_NE(prom.find("# TYPE effitest_fleet_sessions_routed counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("effitest_fleet_sessions_routed 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE effitest_fleet_workers_live gauge"),
            std::string::npos);

  balancer.request_drain();
  balancer.wait();
  worker.request_drain();
  worker.wait();

  // Status polls were counted (3: two JSON, one prometheus), sessions not
  // perturbed.
  const obs::RegistrySnapshot m = balancer.metrics();
  EXPECT_EQ(m.counter(fleet::kFleetStatusRequests), 3u);
  EXPECT_EQ(m.counter(fleet::kFleetSessionsRouted), 1u);
}

#ifdef EFFITEST_FLEET_WORKER
TEST(FleetBalancer, SigkilledWorkerProcessSessionsAreRetried) {
  // The full stack, real processes: a supervisor spawns two helper worker
  // binaries, one session completes, worker 0 is SIGKILL'd, and the next
  // session must ride the retry onto worker 1 with byte-identical reports.
  // restart_on_crash is off so the kill is permanent and the routing
  // decision deterministic.
  fleet::WorkerRegistry registry;
  std::vector<std::size_t> slots;
  slots.push_back(registry.add_worker({"127.0.0.1", 0}));
  slots.push_back(registry.add_worker({"127.0.0.1", 0}));

  fleet::SupervisorOptions soptions;
  soptions.argv = {EFFITEST_FLEET_WORKER};
  soptions.children = 2;
  soptions.restart_on_crash = false;
  soptions.startup_timeout_seconds = 120.0;  // TSan-built helpers are slow
  fleet::ProcessSupervisor supervisor(
      soptions, [&registry, &slots](std::size_t child,
                                    const fleet::WorkerEndpoint& endpoint) {
        registry.update_endpoint(slots[child], endpoint);
      });

  fleet::FleetBalancer balancer(registry, fast_options());
  supervisor.start();
  balancer.start();

  constexpr std::size_t kChips = 2;
  const std::vector<std::string> golden = simulated_report_lines(kChips);
  net::ClientOptions copts;
  copts.chips = kChips;

  const net::ClientResult before = net::run_loopback_client(
      "127.0.0.1", balancer.port(), holder().problem, copts);
  EXPECT_EQ(sorted_by_chip(before.report_lines), golden);

  const pid_t victim = supervisor.pid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // The registry still believes slot 0 is live (no prober running): the
  // next session's first attach hits ECONNREFUSED, reports the failure,
  // and retries onto worker 1 — byte-identical.
  const net::ClientResult after = net::run_loopback_client(
      "127.0.0.1", balancer.port(), holder().problem, copts);
  EXPECT_EQ(sorted_by_chip(after.report_lines), golden);

  balancer.request_drain();
  balancer.wait();
  supervisor.drain();
  EXPECT_EQ(supervisor.restarts(), 0u);

  const obs::RegistrySnapshot m = balancer.metrics();
  EXPECT_EQ(m.counter(fleet::kFleetSessionsCompleted), 2u);
  EXPECT_EQ(m.counter(fleet::kFleetSessionsFailed), 0u);
  EXPECT_GE(m.counter(fleet::kFleetSessionsRetried), 1u);
  EXPECT_EQ(registry.health(slots[0]), fleet::WorkerHealth::kDead);
}
#endif  // EFFITEST_FLEET_WORKER

}  // namespace
