// CircuitCatalog contract: paper-name resolution performs exactly the
// historical construction (golden metrics unchanged), resolution is
// memoized per (name, inflation) and safe under concurrent resolve, and
// .bench-backed circuits run end to end through the same campaign path as
// paper ones.

#include "scenario/circuit_catalog.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "core/tuner_service.hpp"
#include "netlist/generator.hpp"

namespace effitest::scenario {
namespace {

constexpr const char* kDemoBench = R"(# s27-class demo
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
)";

std::string write_demo_bench(const char* filename) {
  const std::string path = ::testing::TempDir() + filename;
  std::ofstream out(path);
  out << kDemoBench;
  return path;
}

/// A small synthetic circuit so construction-heavy tests stay fast.
netlist::GeneratorSpec small_spec(const char* name, std::uint64_t seed) {
  netlist::GeneratorSpec spec;
  spec.name = name;
  spec.num_flip_flops = 40;
  spec.num_gates = 300;
  spec.num_buffers = 2;
  spec.num_critical_paths = 12;
  spec.seed = seed;
  return spec;
}

core::FlowOptions fast_flow_options() {
  core::FlowOptions opts;
  opts.chips = 10;
  opts.period_calibration_chips = 200;
  opts.hold.samples = 100;
  opts.threads = 1;
  return opts;
}

TEST(CircuitCatalog, PaperResolutionBitIdenticalToDirectConstruction) {
  // The historical construction path, verbatim.
  const netlist::GeneratedCircuit gen =
      netlist::generate_circuit(netlist::paper_benchmark_spec("s9234"));
  const netlist::CellLibrary library = netlist::CellLibrary::standard();
  const timing::CircuitModel model(gen.netlist, library, gen.buffered_ffs);
  const core::Problem direct(model);

  const auto catalog = CircuitCatalog::make_paper();
  const auto prepared = catalog->resolve("s9234");

  ASSERT_EQ(prepared->model.num_pairs(), model.num_pairs());
  EXPECT_EQ(prepared->netlist.num_flip_flops(), gen.netlist.num_flip_flops());
  EXPECT_EQ(prepared->netlist.num_combinational_gates(),
            gen.netlist.num_combinational_gates());
  EXPECT_EQ(prepared->buffered_ffs, gen.buffered_ffs);
  // Prior means must be bit-identical, not just close.
  const std::vector<double> direct_means = model.max_means();
  const std::vector<double> catalog_means = prepared->model.max_means();
  ASSERT_EQ(catalog_means.size(), direct_means.size());
  for (std::size_t i = 0; i < direct_means.size(); ++i) {
    EXPECT_EQ(catalog_means[i], direct_means[i]) << "pair " << i;
  }

  // And so must a whole flow run (the golden-metrics contract, in small).
  const core::FlowOptions opts = fast_flow_options();
  const core::FlowMetrics a = core::run_flow(direct, opts).metrics;
  const core::FlowMetrics b = core::run_flow(prepared->problem, opts).metrics;
  EXPECT_EQ(a.np, b.np);
  EXPECT_EQ(a.npt, b.npt);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.designated_period, b.designated_period);
  EXPECT_EQ(a.epsilon_ps, b.epsilon_ps);
  EXPECT_EQ(a.ta, b.ta);
  EXPECT_EQ(a.ta_pathwise, b.ta_pathwise);
  EXPECT_EQ(a.ra, b.ra);
  EXPECT_EQ(a.yield_no_buffer, b.yield_no_buffer);
  EXPECT_EQ(a.yield_proposed, b.yield_proposed);
  EXPECT_EQ(a.yield_ideal, b.yield_ideal);
}

TEST(CircuitCatalog, ResolveIsMemoizedPerNameAndInflation) {
  CircuitCatalog catalog;
  catalog.add("tiny", small_spec("tiny", 7));
  const auto first = catalog.resolve("tiny");
  const auto second = catalog.resolve("tiny");
  EXPECT_EQ(first.get(), second.get());  // the same bundle, not a copy

  const auto inflated = catalog.resolve("tiny", 1.5);
  EXPECT_NE(first.get(), inflated.get());
  EXPECT_EQ(inflated.get(), catalog.resolve("tiny", 1.5).get());
}

TEST(CircuitCatalog, SameCircuitSharedAcrossCampaignJobs) {
  // Two campaigns over one catalog resolve the same shared bundle: the
  // second run must not rebuild (same pointer observed through resolve).
  auto catalog = std::make_shared<CircuitCatalog>();
  catalog->add("tiny", small_spec("tiny", 7));
  const auto before = catalog->resolve("tiny");

  core::CampaignOptions options;
  options.flow = fast_flow_options();
  options.catalog = catalog;
  const std::vector<core::CampaignJob> jobs{
      core::CampaignJob{"tiny", 0.0, -1.0},
      core::CampaignJob{"tiny", 0.0, 0.5},
  };
  const core::CampaignResult result = core::CampaignRunner(options).run(jobs);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(catalog->resolve("tiny").get(), before.get());
}

TEST(CircuitCatalog, ConcurrentResolveConstructsOnce) {
  CircuitCatalog catalog;
  catalog.add("a", small_spec("a", 1));
  catalog.add("b", small_spec("b", 2));
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const PreparedCircuit>> got(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t i = 0; i < kThreads; ++i) {
      threads.emplace_back([&catalog, &got, i] {
        got[i] = catalog.resolve(i % 2 == 0 ? "a" : "b");
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (std::size_t i = 2; i < kThreads; ++i) {
    EXPECT_EQ(got[i].get(), got[i % 2].get()) << i;
  }
  EXPECT_NE(got[0].get(), got[1].get());
}

TEST(CircuitCatalog, UnknownAndDuplicateNamesThrowClearly) {
  CircuitCatalog catalog;
  catalog.add("tiny", small_spec("tiny", 7));
  try {
    (void)catalog.resolve("typo");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown circuit"), std::string::npos) << what;
    EXPECT_NE(what.find("typo"), std::string::npos) << what;
    EXPECT_NE(what.find("tiny"), std::string::npos) << what;  // the catalog
  }
  EXPECT_THROW(catalog.add("tiny", small_spec("tiny", 8)),
               std::invalid_argument);
  EXPECT_THROW(catalog.add("", small_spec("x", 9)), std::invalid_argument);
  EXPECT_THROW((void)catalog.describe("typo"), std::invalid_argument);
}

TEST(CircuitCatalog, FailedResolveIsEvictedForRetry) {
  CircuitCatalog catalog;
  const std::string path = ::testing::TempDir() + "appears_later.bench";
  std::remove(path.c_str());
  catalog.add("late", BenchCircuit{path, 2, BufferPolicy::kHubCount});
  EXPECT_THROW((void)catalog.resolve("late"), std::exception);
  {
    std::ofstream out(path);
    out << kDemoBench;
  }
  const auto prepared = catalog.resolve("late");  // retried, not cached fail
  EXPECT_EQ(prepared->netlist.num_flip_flops(), 3u);
}

TEST(CircuitCatalog, ScaledFamilyScalesTableOneStatistics) {
  const netlist::GeneratorSpec base = netlist::paper_benchmark_spec("s9234");
  const netlist::GeneratorSpec half = scaled_paper_spec("s9234", 0.5);
  EXPECT_EQ(half.name, "s9234@x0.5");
  EXPECT_EQ(half.num_flip_flops, (base.num_flip_flops + 1) / 2);
  EXPECT_EQ(half.num_critical_paths, base.num_critical_paths / 2);
  EXPECT_GE(half.num_buffers, 1u);
  EXPECT_THROW((void)scaled_paper_spec("s9234", 0.0), std::invalid_argument);
  EXPECT_THROW((void)scaled_paper_spec("s9234", 1e30), std::invalid_argument);
  EXPECT_THROW((void)scaled_paper_spec("nope", 2.0), std::exception);

  CircuitCatalog catalog;
  catalog.add("half", ScaledCircuit{"s9234", 0.5, 0});
  const auto prepared = catalog.resolve("half");
  EXPECT_EQ(prepared->netlist.num_flip_flops(), half.num_flip_flops);
  EXPECT_GT(prepared->model.num_pairs(), 0u);
}

TEST(CircuitCatalog, ExplicitZeroOverridesAreHonored) {
  // seed 0 is a real seed, not "keep the historical default".
  netlist::GeneratorSpec zero_spec = netlist::paper_benchmark_spec("s9234");
  zero_spec.seed = 0;
  const netlist::GeneratedCircuit direct =
      netlist::generate_circuit(zero_spec);
  const timing::CircuitModel direct_model(
      direct.netlist, netlist::CellLibrary::standard(), direct.buffered_ffs);

  CircuitCatalog catalog;
  catalog.add("zero_seed", PaperCircuit{"s9234", 0});
  const auto prepared = catalog.resolve("zero_seed");
  EXPECT_EQ(prepared->buffered_ffs, direct.buffered_ffs);
  const std::vector<double> direct_means = direct_model.max_means();
  const std::vector<double> catalog_means = prepared->model.max_means();
  ASSERT_EQ(catalog_means.size(), direct_means.size());
  for (std::size_t i = 0; i < direct_means.size(); ++i) {
    EXPECT_EQ(catalog_means[i], direct_means[i]) << "pair " << i;
  }

  // buffers = 0 builds the untunable baseline, not the auto default.
  const std::string path = write_demo_bench("zero_buffers.bench");
  catalog.add("zero_buffers", BenchCircuit{path, 0, BufferPolicy::kHubCount});
  EXPECT_TRUE(catalog.resolve("zero_buffers")->buffered_ffs.empty());
  EXPECT_EQ(catalog.resolve("zero_buffers")->model.num_pairs(), 0u);
}

TEST(CircuitCatalog, BenchCircuitResolvesWithBothPolicies) {
  const std::string path = write_demo_bench("catalog_policies.bench");
  CircuitCatalog catalog;
  catalog.add("hub", BenchCircuit{path, 2, BufferPolicy::kHubCount});
  catalog.add("worst", BenchCircuit{path, 2, BufferPolicy::kWorstDelay});
  for (const char* name : {"hub", "worst"}) {
    const auto prepared = catalog.resolve(name);
    EXPECT_EQ(prepared->netlist.num_flip_flops(), 3u) << name;
    EXPECT_EQ(prepared->buffered_ffs.size(), 2u) << name;
    EXPECT_GT(prepared->model.num_pairs(), 0u) << name;
    EXPECT_TRUE(prepared->exclusions.empty()) << name;  // no metadata
  }
  EXPECT_THROW((void)buffer_policy_from("bogus"), std::invalid_argument);
  EXPECT_EQ(buffer_policy_from("hub-count"), BufferPolicy::kHubCount);
  EXPECT_EQ(buffer_policy_from("worst-delay"), BufferPolicy::kWorstDelay);
}

TEST(CircuitCatalog, BenchBackedCampaignEndToEnd) {
  const std::string path = write_demo_bench("catalog_campaign.bench");
  auto catalog = std::make_shared<CircuitCatalog>();
  catalog->add("demo", BenchCircuit{path, 2, BufferPolicy::kHubCount});
  catalog->add("tiny", small_spec("tiny", 7));

  core::CampaignOptions options;
  options.flow = fast_flow_options();
  options.catalog = catalog;
  const std::vector<core::CampaignJob> jobs{
      core::CampaignJob{"demo", 0.0, -1.0},
      core::CampaignJob{"tiny", 0.0, -1.0},
  };
  const core::CampaignResult result = core::CampaignRunner(options).run(jobs);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.jobs[0].metrics.ns, 3u);  // the .bench import
  for (const core::CampaignJobResult& job : result.jobs) {
    EXPECT_GT(job.metrics.np, 0u) << job.job.circuit;
    EXPECT_GT(job.metrics.designated_period, 0.0) << job.job.circuit;
    EXPECT_GE(job.metrics.yield_proposed, 0.0) << job.job.circuit;
    EXPECT_LE(job.metrics.yield_proposed, 1.0) << job.job.circuit;
  }

  // A .bench name unknown to the catalog still fails up front.
  EXPECT_THROW(
      (void)core::CampaignRunner(options).run(
          {core::CampaignJob{"missing", 0.0, -1.0}}),
      std::invalid_argument);
}

TEST(CircuitCatalog, TunerServiceKeepsProvisionedCircuitAlive) {
  std::shared_ptr<const PreparedCircuit> circuit;
  {
    CircuitCatalog catalog;
    catalog.add("tiny", small_spec("tiny", 7));
    circuit = catalog.resolve("tiny");
  }  // catalog gone; the bundle lives on
  const core::FlowOptions opts = fast_flow_options();
  const core::TunerService service(circuit, opts);
  const std::size_t buffers = circuit->problem.num_buffers();
  circuit.reset();  // the service holds the last reference now
  EXPECT_GT(service.designated_period(), 0.0);
  EXPECT_EQ(service.problem().num_buffers(), buffers);
  core::TuningSession session = service.begin_chip();
  EXPECT_EQ(session.phase(), core::SessionPhase::kTest);
  EXPECT_THROW(core::TunerService(nullptr, opts), std::invalid_argument);
}

}  // namespace
}  // namespace effitest::scenario
