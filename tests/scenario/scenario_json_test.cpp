// Scenario spec parsing: the declarative campaign surface must map every
// schema field onto (catalog, jobs, options) exactly and reject every
// malformed input with a clear, line-carrying ScenarioError — a typo in a
// spec file must never silently run the defaults.

#include "io/scenario_json.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace effitest::io {
namespace {

constexpr const char* kMixedSpec = R"({
  // comments are allowed
  "schema": "effitest-scenario-v1",
  "name": "mixed",
  "chips": 25,
  "seed": 99,
  "threads": 2,
  "inflation": 1.25,
  "calibration_chips": 300,
  "quantiles": [0.5, 0.8413],
  "periods": [5000.0],
  "flow": { "prediction": false, "alignment": false, "exclusions": true },
  "circuits": [
    { "paper": "s9234" },
    { "paper": "s13207", "name": "s13207_reseeded", "seed": 42 },
    { "paper": "s9234", "name": "s9234_double", "scale": 2.0 },
    { "bench": "demo.bench", "buffers": 3, "policy": "worst-delay" },
    { "generator": { "name": "inline1", "flip_flops": 48, "gates": 400,
                     "buffers": 2, "critical_paths": 16, "seed": 5 } }
  ]
})";

TEST(ScenarioJson, ParsesMixedSpecIntoCatalogJobsAndOptions) {
  const Scenario s = parse_scenario(kMixedSpec, "mixed.json", "/specs");
  EXPECT_EQ(s.name, "mixed");
  ASSERT_NE(s.catalog, nullptr);
  EXPECT_EQ(s.options.catalog.get(), s.catalog.get());

  // Paper + extended benchmarks pre-registered + the four new entries.
  EXPECT_EQ(s.catalog->names().size(), 14u);
  EXPECT_TRUE(s.catalog->contains("s9234"));
  EXPECT_TRUE(s.catalog->contains("s13207_reseeded"));
  EXPECT_TRUE(s.catalog->contains("s9234_double"));
  EXPECT_TRUE(s.catalog->contains("demo"));
  EXPECT_TRUE(s.catalog->contains("inline1"));

  // Relative .bench paths anchor on the spec's directory.
  const auto bench =
      std::get<scenario::BenchCircuit>(s.catalog->spec("demo"));
  EXPECT_EQ(bench.path, "/specs/demo.bench");
  EXPECT_EQ(bench.num_buffers, 3u);
  EXPECT_EQ(bench.policy, scenario::BufferPolicy::kWorstDelay);

  const auto scaled =
      std::get<scenario::ScaledCircuit>(s.catalog->spec("s9234_double"));
  EXPECT_EQ(scaled.base, "s9234");
  EXPECT_EQ(scaled.scale, 2.0);

  const auto reseeded =
      std::get<scenario::PaperCircuit>(s.catalog->spec("s13207_reseeded"));
  EXPECT_EQ(reseeded.seed, 42u);

  const auto inline1 =
      std::get<netlist::GeneratorSpec>(s.catalog->spec("inline1"));
  EXPECT_EQ(inline1.num_flip_flops, 48u);
  EXPECT_EQ(inline1.seed, 5u);

  // Circuit-major jobs: 5 circuits x (1 period + 2 quantiles).
  ASSERT_EQ(s.jobs.size(), 15u);
  EXPECT_EQ(s.jobs[0].circuit, "s9234");
  EXPECT_EQ(s.jobs[0].designated_period, 5000.0);
  EXPECT_EQ(s.jobs[0].quantile, -1.0);
  EXPECT_EQ(s.jobs[1].quantile, 0.5);
  EXPECT_EQ(s.jobs[2].quantile, 0.8413);
  EXPECT_EQ(s.jobs[3].circuit, "s13207_reseeded");

  EXPECT_EQ(s.options.flow.chips, 25u);
  EXPECT_EQ(s.options.flow.seed, 99u);
  EXPECT_EQ(s.options.threads, 2u);
  EXPECT_EQ(s.options.random_inflation, 1.25);
  EXPECT_EQ(s.options.calibration_chips, 300u);
  EXPECT_FALSE(s.options.flow.use_prediction);
  EXPECT_FALSE(s.options.flow.test.align_with_buffers);
  EXPECT_TRUE(s.options.use_exclusions);
}

TEST(ScenarioJson, ExplicitZeroSeedAndBuffersSurviveParsing) {
  const Scenario s = parse_scenario(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [
             { "paper": "s9234", "name": "z", "seed": 0 },
             { "bench": "b.bench", "name": "nb0", "buffers": 0 } ] })",
      "zero.json");
  const auto paper = std::get<scenario::PaperCircuit>(s.catalog->spec("z"));
  ASSERT_TRUE(paper.seed.has_value());
  EXPECT_EQ(*paper.seed, 0u);
  const auto bench =
      std::get<scenario::BenchCircuit>(s.catalog->spec("nb0"));
  ASSERT_TRUE(bench.num_buffers.has_value());
  EXPECT_EQ(*bench.num_buffers, 0u);
}

TEST(ScenarioJson, MinimalSpecDefaultsToOneJobPerCircuit) {
  const Scenario s = parse_scenario(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "paper": "s9234" } ] })",
      "min.json");
  EXPECT_EQ(s.name, "min");
  EXPECT_EQ(s.catalog->names().size(), 10u);  // bare reference, no re-add
  ASSERT_EQ(s.jobs.size(), 1u);
  EXPECT_EQ(s.jobs[0].circuit, "s9234");
  EXPECT_EQ(s.jobs[0].designated_period, 0.0);
  EXPECT_EQ(s.jobs[0].quantile, -1.0);
}

void expect_error(const std::string& text, const std::string& needle) {
  try {
    (void)parse_scenario(text, "spec.json");
    FAIL() << "expected ScenarioError for: " << text;
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("spec.json"), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos)
        << "missing \"" << needle << "\" in: " << what;
  }
}

TEST(ScenarioJson, MalformedInputsRaiseClearErrors) {
  expect_error("{", "unexpected end of input");
  expect_error("not json", "unexpected character");
  expect_error("{}", "missing required key \"schema\"");
  expect_error(R"({ "schema": "effitest-scenario-v2", "circuits": [] })",
               "is not \"effitest-scenario-v1\"");
  expect_error(R"({ "schema": "effitest-scenario-v1" })",
               "missing required key \"circuits\"");
  expect_error(R"({ "schema": "effitest-scenario-v1", "circuits": [] })",
               "at least one circuit");
  expect_error(
      R"({ "schema": "effitest-scenario-v1", "quantile": [0.5],
           "circuits": [ { "paper": "s9234" } ] })",
      "unknown key \"quantile\"");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "paper": "s9234", "benchers": 3 } ] })",
      "unknown key \"benchers\"");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "paper": "s9234", "bench": "x.bench" } ] })",
      "exactly one of");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "generator": 3 } ] })",
      "must be an object");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "paper": "ghost_circuit" } ] })",
      "ghost_circuit");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "paper": "s9234", "seed": 7 } ] })",
      "already registered");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "bench": "a.bench", "name": "d" },
                         { "bench": "b.bench", "name": "d" } ] })",
      "already registered");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "paper": "s9234" }, { "paper": "s9234" } ] })",
      "listed twice");
  expect_error(
      R"({ "schema": "effitest-scenario-v1", "quantiles": [1.5],
           "circuits": [ { "paper": "s9234" } ] })",
      "quantiles in [0, 1)");
  expect_error(
      R"({ "schema": "effitest-scenario-v1", "periods": [-3.0],
           "circuits": [ { "paper": "s9234" } ] })",
      "positive periods");
  expect_error(
      R"({ "schema": "effitest-scenario-v1", "chips": 2.5,
           "circuits": [ { "paper": "s9234" } ] })",
      "non-negative integer");
  expect_error(
      R"({ "schema": "effitest-scenario-v1", "seed": 1e300,
           "circuits": [ { "paper": "s9234" } ] })",
      "below 2^53");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "bench": "x.bench", "policy": "bogus" } ] })",
      "unknown buffer policy");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "paper": "s9234", "scale": 0 } ] })",
      "\"scale\" must be > 0");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "paper": "s9234", "name": "huge",
                           "scale": 1e30 } ] })",
      "exceeds 1e8 cells");
  expect_error(
      R"({ "schema": "effitest-scenario-v1", "flow": { "predict": true },
           "circuits": [ { "paper": "s9234" } ] })",
      "unknown key \"predict\"");
  expect_error(
      R"({ "schema": "effitest-scenario-v1", "schema": "x",
           "circuits": [ { "paper": "s9234" } ] })",
      "duplicate key");
  expect_error(R"({ "schema": "effitest-scenario-v1",
                    "circuits": [ { "paper": "s9234" } ] } trailing)",
               "trailing content");
  expect_error(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "generator": { "name": "" } } ] })",
      "empty name");
  // A pathological document must error out, never overflow the stack.
  expect_error(std::string(100000, '['), "nesting too deep");
}

TEST(ScenarioJson, ErrorsCarryTheOffendingLine) {
  try {
    (void)parse_scenario("{\n  \"schema\": \"effitest-scenario-v1\",\n"
                         "  \"circuits\": [\n    { \"paper\": 3 }\n  ]\n}",
                         "lines.json");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("lines.json line 4"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioJson, LoadScenarioFileResolvesRelativeBenchPaths) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "scenario_file_test.json";
  {
    std::ofstream out(path);
    out << R"({ "schema": "effitest-scenario-v1",
                "circuits": [ { "bench": "rel.bench", "name": "r" } ] })";
  }
  const Scenario s = load_scenario_file(path);
  const auto bench = std::get<scenario::BenchCircuit>(s.catalog->spec("r"));
  // TempDir ends with '/'; the joined path must point inside it.
  EXPECT_EQ(bench.path.find(dir), 0u) << bench.path;
  EXPECT_NE(bench.path.find("rel.bench"), std::string::npos) << bench.path;

  EXPECT_THROW((void)load_scenario_file(dir + "no_such_spec.json"),
               ScenarioError);
}

}  // namespace
}  // namespace effitest::io
