#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <random>

namespace effitest::lp {
namespace {

TEST(Simplex, TrivialBoundsOnlyMinimization) {
  // min 2x - 3y with 0 <= x <= 4, 1 <= y <= 5: x = 0, y = 5.
  Model m;
  m.add_continuous(0.0, 4.0, 2.0);
  m.add_continuous(1.0, 5.0, -3.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 0.0, 1e-9);
  EXPECT_NEAR(s.values[1], 5.0, 1e-9);
  EXPECT_NEAR(s.objective, -15.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  // optimum x = 2, y = 6, objective 36. We minimize the negation.
  Model m;
  const int x = m.add_continuous(0.0, kInf, -3.0);
  const int y = m.add_continuous(0.0, kInf, -5.0);
  m.add_constraint({{x, 1.0}}, Sense::kLessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, Sense::kLessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-8);
  EXPECT_NEAR(s.values[y], 6.0, 1e-8);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + y = 3, x,y >= 0 -> objective 3.
  Model m;
  const int x = m.add_continuous(0.0, kInf, 1.0);
  const int y = m.add_continuous(0.0, kInf, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 3.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

TEST(Simplex, GreaterEqualNeedsPhase1) {
  // min x s.t. x >= 2.5 -> 2.5.
  Model m;
  const int x = m.add_continuous(0.0, kInf, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.5);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.5, 1e-9);
}

TEST(Simplex, InfeasibleDetected) {
  Model m;
  const int x = m.add_continuous(0.0, 1.0, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Model m;
  m.add_continuous(0.0, kInf, -1.0);  // min -x, x unbounded above
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, FreeVariable) {
  // min |structure|: x free, constraint x >= -5 irrelevant; minimize x + 10
  // via constraint x >= -5: optimum x = -5.
  Model m;
  const int x = m.add_continuous(-kInf, kInf, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, -5.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], -5.0, 1e-9);
}

TEST(Simplex, UpperBoundedOnlyVariable) {
  // x in (-inf, 3], minimize -x -> x = 3.
  Model m;
  const int x = m.add_continuous(-kInf, 3.0, -1.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
}

TEST(Simplex, FixedVariable) {
  Model m;
  const int x = m.add_continuous(2.0, 2.0, 5.0);
  const int y = m.add_continuous(0.0, kInf, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 6.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.values[y], 4.0, 1e-9);
}

TEST(Simplex, NegativeRhsRowsNormalized) {
  // -x <= -2  (i.e. x >= 2), min x -> 2.
  Model m;
  const int x = m.add_continuous(0.0, kInf, 1.0);
  m.add_constraint({{x, -1.0}}, Sense::kLessEqual, -2.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
}

TEST(Simplex, RedundantConstraintsHandled) {
  Model m;
  const int x = m.add_continuous(0.0, kInf, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kEqual, 4.0);
  m.add_constraint({{x, 2.0}}, Sense::kEqual, 8.0);  // linearly dependent
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic cycling-prone setup; Bland fallback must terminate.
  Model m;
  const int x1 = m.add_continuous(0.0, kInf, -0.75);
  const int x2 = m.add_continuous(0.0, kInf, 150.0);
  const int x3 = m.add_continuous(0.0, kInf, -0.02);
  const int x4 = m.add_continuous(0.0, kInf, 6.0);
  m.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   Sense::kLessEqual, 0.0);
  m.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   Sense::kLessEqual, 0.0);
  m.add_constraint({{x3, 1.0}}, Sense::kLessEqual, 1.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST(Simplex, EmptyModelIsOptimalZero) {
  Model m;
  const LpSolution s = solve_lp(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Simplex, AbsoluteValueGadget) {
  // min |c - t| via eta >= t - c, eta >= c - t with c = 7, t in [0, 5]:
  // optimum t = 5, eta = 2.
  Model m;
  const int t = m.add_continuous(0.0, 5.0, 0.0);
  const int eta = m.add_continuous(0.0, kInf, 1.0);
  m.add_constraint({{t, 1.0}, {eta, -1.0}}, Sense::kLessEqual, 7.0);
  m.add_constraint({{t, -1.0}, {eta, -1.0}}, Sense::kLessEqual, -7.0);
  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[t], 5.0, 1e-9);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

// Property test: random bounded LPs — the simplex optimum must be feasible
// and at least as good as a large random feasible sample.
class SimplexPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexPropertyTest, BeatsRandomFeasiblePoints) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  std::uniform_int_distribution<int> size(1, 4);

  const int n = size(rng);
  const int rows = size(rng);
  Model m;
  for (int j = 0; j < n; ++j) {
    m.add_continuous(0.0, 3.0, coeff(rng));
  }
  // Constraints sum a_j x_j <= b with b >= 0 keep x = 0 feasible.
  std::uniform_real_distribution<double> rhs(0.5, 6.0);
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) terms.push_back({j, coeff(rng)});
    m.add_constraint(std::move(terms), Sense::kLessEqual, rhs(rng));
  }

  const LpSolution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LT(m.max_violation(s.values), 1e-7);

  std::uniform_real_distribution<double> point(0.0, 3.0);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (double& v : x) v = point(rng);
    if (m.max_violation(x) > 1e-9) continue;
    EXPECT_LE(s.objective, m.objective_value(x) + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace effitest::lp
