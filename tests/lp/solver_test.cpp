#include "lp/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace effitest::lp {
namespace {

TEST(Milp, PureLpDelegation) {
  Model m;
  m.add_continuous(0.0, 2.0, -1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.nodes, 0);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(Milp, SimpleKnapsack) {
  // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binaries.
  // optimum: a = 1, c = 1 (value 8); b would exceed capacity with both.
  Model m;
  const int a = m.add_binary(-5.0);
  const int b = m.add_binary(-4.0);
  const int c = m.add_binary(-3.0);
  m.add_constraint({{a, 2.0}, {b, 3.0}, {c, 1.0}}, Sense::kLessEqual, 5.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -9.0, 1e-6);  // a=1,b=0,c=1 gives 8; a=1,b=1 needs 5 -> 2+3=5 ok! 5+4=9
  EXPECT_NEAR(s.values[a], 1.0, 1e-6);
  EXPECT_NEAR(s.values[b], 1.0, 1e-6);
  EXPECT_NEAR(s.values[c], 0.0, 1e-6);
}

TEST(Milp, IntegerRounding) {
  // min -x s.t. 2x <= 7, x integer -> x = 3 (LP relaxation 3.5).
  Model m;
  const int x = m.add_integer(0.0, 10.0, -1.0);
  m.add_constraint({{x, 2.0}}, Sense::kLessEqual, 7.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-6);
}

TEST(Milp, InfeasibleIntegerGap) {
  // 0.5 <= x <= 0.9 has continuous solutions but no integer one.
  Model m;
  m.add_integer(0.5, 0.9, 1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Milp, MixedIntegerContinuous) {
  // min x + y, x integer, x + y >= 2.3, y <= 0.4 -> x = 2, y = 0.3.
  Model m;
  const int x = m.add_integer(0.0, 10.0, 1.0);
  const int y = m.add_continuous(0.0, 0.4, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 2.3);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-6);
  EXPECT_NEAR(s.values[y], 0.3, 1e-6);
  EXPECT_NEAR(s.objective, 2.3, 1e-6);
}

TEST(Milp, EqualityWithIntegers) {
  // 3x + 5y = 14 over nonneg integers: no solution with x,y <= 2;
  // x = 3, y = 1 works.
  Model m;
  const int x = m.add_integer(0.0, 10.0, 1.0);
  const int y = m.add_integer(0.0, 10.0, 1.0);
  m.add_constraint({{x, 3.0}, {y, 5.0}}, Sense::kEqual, 14.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(3.0 * s.values[x] + 5.0 * s.values[y], 14.0, 1e-6);
  EXPECT_NEAR(s.objective, 4.0, 1e-6);  // x=3,y=1
}

TEST(Milp, NodeLimitReturnsIncumbentIfAny) {
  Model m;
  for (int i = 0; i < 8; ++i) m.add_binary(-1.0);
  SolveOptions opts;
  opts.max_nodes = 1;  // root only; heuristic may still find an incumbent
  const Solution s = solve(m, opts);
  // Root relaxation of a box problem is already integral -> optimal.
  EXPECT_TRUE(s.status == SolveStatus::kOptimal ||
              s.status == SolveStatus::kNodeLimit);
}

TEST(Milp, BigMIndicatorPattern) {
  // The alignment ILP uses big-M rows; exercise the pattern:
  // z binary, x - 10 z <= 0, x >= 1.5 -> z must be 1.
  Model m;
  const int x = m.add_continuous(0.0, 8.0, 1.0);
  const int z = m.add_binary(100.0);  // expensive, prefer 0
  m.add_constraint({{x, 1.0}, {z, -10.0}}, Sense::kLessEqual, 0.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 1.5);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[z], 1.0, 1e-6);
  EXPECT_NEAR(s.values[x], 1.5, 1e-6);
}

/// Brute-force MILP oracle over the integer grid (continuous vars must be
/// absent). Returns the best objective or NaN when infeasible.
double brute_force_integer(const Model& m) {
  const std::size_t n = m.num_variables();
  std::vector<int> lo(n);
  std::vector<int> hi(n);
  for (std::size_t j = 0; j < n; ++j) {
    lo[j] = static_cast<int>(std::ceil(m.variable(static_cast<int>(j)).lower));
    hi[j] = static_cast<int>(std::floor(m.variable(static_cast<int>(j)).upper));
  }
  std::vector<double> x(n);
  double best = std::numeric_limits<double>::quiet_NaN();
  const auto recurse = [&](auto&& self, std::size_t j) -> void {
    if (j == n) {
      if (m.max_violation(x) < 1e-9) {
        const double obj = m.objective_value(x);
        if (std::isnan(best) || obj < best) best = obj;
      }
      return;
    }
    for (int v = lo[j]; v <= hi[j]; ++v) {
      x[j] = v;
      self(self, j + 1);
    }
  };
  recurse(recurse, 0);
  return best;
}

class MilpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilpPropertyTest, MatchesBruteForceOnRandomInstances) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> coeff(-3.0, 3.0);
  std::uniform_int_distribution<int> nvars(1, 4);
  std::uniform_int_distribution<int> nrows(0, 3);
  std::uniform_real_distribution<double> rhs(-2.0, 8.0);

  const int n = nvars(rng);
  Model m;
  for (int j = 0; j < n; ++j) m.add_integer(0.0, 4.0, coeff(rng));
  const int rows = nrows(rng);
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) terms.push_back({j, coeff(rng)});
    m.add_constraint(std::move(terms),
                     (r % 2 == 0) ? Sense::kLessEqual : Sense::kGreaterEqual,
                     rhs(rng));
  }

  const double oracle = brute_force_integer(m);
  const Solution s = solve(m);
  if (std::isnan(oracle)) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_EQ(s.status, SolveStatus::kOptimal)
        << "expected optimum " << oracle;
    EXPECT_NEAR(s.objective, oracle, 1e-6);
    EXPECT_LT(m.max_violation(s.values), 1e-6);
    for (int j = 0; j < n; ++j) {
      const double v = s.values[static_cast<std::size_t>(j)];
      EXPECT_NEAR(v, std::round(v), 1e-6) << "non-integral variable " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace effitest::lp
