#include "lp/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace effitest::lp {
namespace {

TEST(Model, AddVariableReturnsSequentialIndices) {
  Model m;
  EXPECT_EQ(m.add_continuous(0.0, 1.0), 0);
  EXPECT_EQ(m.add_integer(0.0, 5.0), 1);
  EXPECT_EQ(m.add_binary(), 2);
  EXPECT_EQ(m.num_variables(), 3u);
}

TEST(Model, VariableBoundsValidated) {
  Model m;
  EXPECT_THROW(m.add_continuous(2.0, 1.0), ModelError);
  EXPECT_THROW(m.add_continuous(0.0, std::nan("")), ModelError);
}

TEST(Model, BinaryVariableShape) {
  Model m;
  const int b = m.add_binary(3.0, "flag");
  const Variable& v = m.variable(b);
  EXPECT_DOUBLE_EQ(v.lower, 0.0);
  EXPECT_DOUBLE_EQ(v.upper, 1.0);
  EXPECT_EQ(v.type, VarType::kInteger);
  EXPECT_DOUBLE_EQ(v.objective, 3.0);
  EXPECT_EQ(v.name, "flag");
}

TEST(Model, ConstraintMergesDuplicateTerms) {
  Model m;
  const int x = m.add_continuous(0.0, 10.0);
  m.add_constraint({{x, 1.0}, {x, 2.0}}, Sense::kLessEqual, 6.0);
  const Constraint& c = m.constraint(0);
  ASSERT_EQ(c.terms.size(), 1u);
  EXPECT_DOUBLE_EQ(c.terms[0].coeff, 3.0);
}

TEST(Model, ConstraintDropsZeroCoefficients) {
  Model m;
  const int x = m.add_continuous(0.0, 10.0);
  const int y = m.add_continuous(0.0, 10.0);
  m.add_constraint({{x, 1.0}, {x, -1.0}, {y, 2.0}}, Sense::kEqual, 4.0);
  EXPECT_EQ(m.constraint(0).terms.size(), 1u);
  EXPECT_EQ(m.constraint(0).terms[0].var, y);
}

TEST(Model, ConstraintRejectsBadVariable) {
  Model m;
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, Sense::kLessEqual, 0.0), ModelError);
}

TEST(Model, SetBoundsAndObjective) {
  Model m;
  const int x = m.add_continuous(0.0, 1.0);
  m.set_bounds(x, -2.0, 2.0);
  m.set_objective(x, 7.0);
  EXPECT_DOUBLE_EQ(m.variable(x).lower, -2.0);
  EXPECT_DOUBLE_EQ(m.variable(x).objective, 7.0);
  EXPECT_THROW(m.set_bounds(x, 3.0, 1.0), ModelError);
}

TEST(Model, HasIntegerVariables) {
  Model m;
  m.add_continuous(0.0, 1.0);
  EXPECT_FALSE(m.has_integer_variables());
  m.add_integer(0.0, 4.0);
  EXPECT_TRUE(m.has_integer_variables());
}

TEST(Model, ObjectiveValue) {
  Model m;
  m.add_continuous(0.0, 10.0, 2.0);
  m.add_continuous(0.0, 10.0, -1.0);
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(m.objective_value(x), 2.0);
}

TEST(Model, MaxViolationChecksEverything) {
  Model m;
  const int x = m.add_continuous(0.0, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 0.5);
  const std::vector<double> feasible{0.7};
  EXPECT_DOUBLE_EQ(m.max_violation(feasible), 0.0);
  const std::vector<double> below{0.2};
  EXPECT_NEAR(m.max_violation(below), 0.3, 1e-12);
  const std::vector<double> outside{1.5};
  EXPECT_NEAR(m.max_violation(outside), 0.5, 1e-12);
}

TEST(Model, EqualityViolationIsAbsolute) {
  Model m;
  const int x = m.add_continuous(-10.0, 10.0);
  m.add_constraint({{x, 1.0}}, Sense::kEqual, 2.0);
  EXPECT_NEAR(m.max_violation(std::vector<double>{5.0}), 3.0, 1e-12);
  EXPECT_NEAR(m.max_violation(std::vector<double>{-1.0}), 3.0, 1e-12);
}

}  // namespace
}  // namespace effitest::lp
