#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace effitest::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      a(r, c) = dist(rng);
      a(c, r) = a(r, c);
    }
  }
  return a;
}

TEST(EigenSymmetric, DiagonalMatrix) {
  const std::vector<double> d{3.0, 1.0, 2.0};
  const EigenDecomposition e = eigen_symmetric(Matrix::diagonal(d));
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

TEST(EigenSymmetric, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  const EigenDecomposition e = eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(EigenSymmetric, ValuesSortedDescending) {
  const EigenDecomposition e = eigen_symmetric(random_symmetric(8, 5));
  for (std::size_t i = 1; i < e.values.size(); ++i) {
    EXPECT_GE(e.values[i - 1], e.values[i]);
  }
}

TEST(EigenSymmetric, NonSquareThrows) {
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), LinalgError);
}

TEST(EigenSymmetric, EmptyMatrix) {
  const EigenDecomposition e = eigen_symmetric(Matrix());
  EXPECT_TRUE(e.values.empty());
}

TEST(ComponentsForCoverage, PicksMinimalCount) {
  EigenDecomposition e;
  e.values = {8.0, 1.0, 1.0};  // total 10
  EXPECT_EQ(e.components_for_coverage(0.79), 1u);
  EXPECT_EQ(e.components_for_coverage(0.81), 2u);
  EXPECT_EQ(e.components_for_coverage(1.0), 3u);
}

TEST(ComponentsForCoverage, IgnoresNegativeEigenvalues) {
  EigenDecomposition e;
  e.values = {5.0, -2.0};
  EXPECT_EQ(e.components_for_coverage(0.99), 1u);
}

TEST(ComponentsForCoverage, AllZeroReturnsOne) {
  EigenDecomposition e;
  e.values = {0.0, 0.0};
  EXPECT_EQ(e.components_for_coverage(0.9), 1u);
}

class EigenPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EigenPropertyTest, ReconstructionAndOrthogonality) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 2 + seed % 10;
  const Matrix a = random_symmetric(n, seed);
  const EigenDecomposition e = eigen_symmetric(a);

  // V diag(values) V^T == A.
  const Matrix lambda = Matrix::diagonal(e.values);
  const Matrix recon = e.vectors * lambda * e.vectors.transposed();
  EXPECT_TRUE(recon.approx_equal(a, 1e-7));

  // V^T V == I.
  EXPECT_TRUE((e.vectors.transposed() * e.vectors)
                  .approx_equal(Matrix::identity(n), 1e-8));

  // Trace preservation.
  double trace_a = 0.0;
  double sum_values = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace_a += a(i, i);
    sum_values += e.values[i];
  }
  EXPECT_NEAR(trace_a, sum_values, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace effitest::linalg
