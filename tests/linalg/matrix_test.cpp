#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace effitest::linalg {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  const Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructWithFill) {
  const Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, InitializerListRaggedThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), LinalgError);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Diagonal) {
  const std::vector<double> d{2.0, 5.0};
  const Matrix m = Matrix::diagonal(d);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(static_cast<void>(m.at(2, 0)), LinalgError);
  EXPECT_THROW(static_cast<void>(m.at(0, 2)), LinalgError);
  EXPECT_NO_THROW(static_cast<void>(m.at(1, 1)));
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_THROW(static_cast<void>(m.row(5)), LinalgError);
}

TEST(Matrix, Column) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> c = m.column(1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
}

TEST(Matrix, Block) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix b = m.block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 9.0);
  EXPECT_THROW(m.block(2, 2, 2, 2), LinalgError);
}

TEST(Matrix, Select) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::vector<std::size_t> rows{2, 0};
  const std::vector<std::size_t> cols{1};
  const Matrix s = m.select(rows, cols);
  ASSERT_EQ(s.rows(), 2u);
  ASSERT_EQ(s.cols(), 1u);
  EXPECT_DOUBLE_EQ(s(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 2.0);
}

TEST(Matrix, Transposed) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  const Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, AddDimensionMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, LinalgError);
}

TEST(Matrix, Multiply) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyIdentityIsNoop) {
  const Matrix a{{1, 2}, {3, 4}};
  EXPECT_TRUE((a * Matrix::identity(2)).approx_equal(a));
  EXPECT_TRUE((Matrix::identity(2) * a).approx_equal(a));
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, LinalgError);
}

TEST(Matrix, MatVec) {
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{1.0, 1.0};
  const std::vector<double> out = a * v;
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(Matrix, ApproxEqualTolerance) {
  const Matrix a{{1.0}};
  const Matrix b{{1.0 + 1e-12}};
  EXPECT_TRUE(a.approx_equal(b, 1e-9));
  EXPECT_FALSE(a.approx_equal(b, 1e-15));
}

TEST(Matrix, SymmetrizeAndAsymmetry) {
  Matrix m{{1.0, 2.0}, {4.0, 1.0}};
  EXPECT_DOUBLE_EQ(m.max_asymmetry(), 2.0);
  m.symmetrize();
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.max_asymmetry(), 0.0);
}

TEST(Matrix, StreamOutput) {
  const Matrix m{{1, 2}, {3, 4}};
  std::ostringstream os;
  os << m;
  EXPECT_NE(os.str().find('1'), std::string::npos);
  EXPECT_NE(os.str().find('4'), std::string::npos);
}

TEST(VectorOps, Dot) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const std::vector<double> c{1.0};
  EXPECT_THROW(static_cast<void>(dot(a, c)), LinalgError);
}

TEST(VectorOps, Norm2) {
  const std::vector<double> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
}

TEST(VectorOps, Axpy) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, AddSubtract) {
  const std::vector<double> a{5.0, 7.0};
  const std::vector<double> b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(subtract(a, b)[1], 4.0);
  EXPECT_DOUBLE_EQ(add(a, b)[0], 7.0);
}

TEST(VectorOps, QuadraticForm) {
  const Matrix m{{2.0, 0.0}, {0.0, 3.0}};
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quadratic_form(m, v), 2.0 + 12.0);
}

}  // namespace
}  // namespace effitest::linalg
