#include "linalg/decomposition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/matrix.hpp"

namespace effitest::linalg {
namespace {

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng);
  }
  // A A^T + n I is SPD.
  Matrix spd = a * a.transposed();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(Cholesky, FactorReconstructs2x2) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Cholesky ch = cholesky(a);
  const Matrix recon = ch.l * ch.l.transposed();
  EXPECT_TRUE(recon.approx_equal(a, 1e-12));
}

TEST(Cholesky, LowerTriangular) {
  const Cholesky ch = cholesky(random_spd(5, 1));
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = r + 1; c < 5; ++c) {
      EXPECT_DOUBLE_EQ(ch.l(r, c), 0.0);
    }
  }
}

TEST(Cholesky, NonSpdThrows) {
  const Matrix not_spd{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(not_spd), LinalgError);
}

TEST(Cholesky, NonSquareThrows) {
  EXPECT_THROW(cholesky(Matrix(2, 3)), LinalgError);
}

TEST(Cholesky, JitterRescuesNearSingular) {
  // Rank-1 matrix: singular, but jitter regularization must succeed.
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_THROW(cholesky(a, 0.0), LinalgError);
  EXPECT_NO_THROW(cholesky(a, 1e-8));
}

TEST(Cholesky, SolveMatchesDirect) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const std::vector<double> b{10.0, 8.0};
  const std::vector<double> x = cholesky(a).solve(b);
  const std::vector<double> back = a * x;
  EXPECT_NEAR(back[0], b[0], 1e-10);
  EXPECT_NEAR(back[1], b[1], 1e-10);
}

TEST(Cholesky, SolveMatrixRhs) {
  const Matrix a = random_spd(4, 7);
  const Matrix b(4, 2, 1.0);
  const Matrix x = cholesky(a).solve(b);
  EXPECT_TRUE((a * x).approx_equal(b, 1e-9));
}

TEST(Cholesky, LogDetMatchesKnown) {
  const Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  EXPECT_NEAR(cholesky(a).log_det(), std::log(36.0), 1e-12);
}

TEST(TriangularSolves, ForwardBackwardRoundTrip) {
  const Matrix a = random_spd(6, 3);
  const Cholesky ch = cholesky(a);
  std::vector<double> b(6);
  for (std::size_t i = 0; i < 6; ++i) b[i] = static_cast<double>(i) - 2.0;
  const std::vector<double> y = forward_substitute(ch.l, b);
  const std::vector<double> x = backward_substitute(ch.l, y);
  const std::vector<double> back = a * x;
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(TriangularSolves, SizeMismatchThrows) {
  const Matrix l = Matrix::identity(3);
  const std::vector<double> b{1.0};
  EXPECT_THROW(forward_substitute(l, b), LinalgError);
  EXPECT_THROW(backward_substitute(l, b), LinalgError);
}

TEST(SolveSpd, VectorAndMatrixForms) {
  const Matrix a = random_spd(5, 11);
  std::vector<double> b(5, 1.0);
  const std::vector<double> x = solve_spd(a, b);
  const std::vector<double> back = a * x;
  for (double v : back) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(InverseSpd, MultipliesToIdentity) {
  const Matrix a = random_spd(5, 13);
  const Matrix inv = inverse_spd(a);
  EXPECT_TRUE((a * inv).approx_equal(Matrix::identity(5), 1e-8));
}

TEST(SolveGeneral, NonSymmetricSystem) {
  const Matrix a{{0.0, 2.0}, {1.0, 0.0}};  // needs pivoting
  const std::vector<double> b{4.0, 3.0};
  const std::vector<double> x = solve_general(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveGeneral, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(solve_general(a, {1.0, 1.0}), LinalgError);
}

class CholeskyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CholeskyPropertyTest, RandomSpdRoundTrip) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 3 + seed % 8;
  const Matrix a = random_spd(n, seed);
  const Cholesky ch = cholesky(a);
  EXPECT_TRUE((ch.l * ch.l.transposed()).approx_equal(a, 1e-8));

  std::mt19937_64 rng(seed ^ 0xabcdef);
  std::normal_distribution<double> dist;
  std::vector<double> b(n);
  for (double& v : b) v = dist(rng);
  const std::vector<double> x = ch.solve(b);
  const std::vector<double> back = a * x;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace effitest::linalg
