// Bit-compatibility and determinism pins for the blocked kernel layer.
//
// The contract (kernels.hpp): every blocked kernel accumulates each output
// element in exactly the per-element operation order of the seed naive
// code, so blocked and reference results must agree BIT-FOR-BIT — no
// tolerances anywhere in this file — on any shape (ragged tile edges
// included) and for any worker count.

#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "linalg/decomposition.hpp"
#include "stats/rng.hpp"

namespace effitest::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  stats::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  const Matrix a = random_matrix(n, n, seed);
  Matrix spd = kernels::reference_syrk(a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

void expect_bits_equal(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a(r, c), b(r, c)) << what << " differs at " << r << "," << c;
    }
  }
}

// Shapes straddling the tile sizes (kRowBlock = 64, kColBlock = 256),
// including ragged edges and degenerate extents.
const std::size_t kSizes[] = {1, 2, 3, 7, 16, 63, 64, 65, 130};

TEST(Kernels, MatmulMatchesReferenceBitwise) {
  std::uint64_t seed = 1;
  for (std::size_t m : kSizes) {
    for (std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                          std::size_t{67}}) {
      const Matrix a = random_matrix(m, k, seed++);
      const Matrix b = random_matrix(k, m + 3, seed++);
      expect_bits_equal(kernels::matmul(a, b), kernels::reference_matmul(a, b),
                        "matmul");
    }
  }
  // Wide product crossing the column tile.
  const Matrix a = random_matrix(70, 90, seed++);
  const Matrix b = random_matrix(90, 300, seed++);
  expect_bits_equal(kernels::matmul(a, b), kernels::reference_matmul(a, b),
                    "matmul wide");
}

TEST(Kernels, MatmulEmptyOperands) {
  const Matrix a(0, 5);
  const Matrix b(5, 0);
  EXPECT_EQ((kernels::matmul(a, random_matrix(5, 4, 9)).rows()), 0u);
  EXPECT_EQ((kernels::matmul(random_matrix(4, 5, 10), b).cols()), 0u);
  EXPECT_THROW((void)kernels::matmul(Matrix(2, 3), Matrix(2, 3)), LinalgError);
}

TEST(Kernels, SyrkMatchesReferenceBitwise) {
  std::uint64_t seed = 100;
  for (std::size_t n : kSizes) {
    const Matrix a = random_matrix(n, n / 2 + 1, seed++);
    expect_bits_equal(kernels::syrk(a), kernels::reference_syrk(a), "syrk");
  }
}

TEST(Kernels, CholeskyMatchesReferenceBitwise) {
  std::uint64_t seed = 200;
  for (std::size_t n : kSizes) {
    const Matrix spd = random_spd(n, seed++);
    Matrix l_blocked;
    Matrix l_ref;
    ASSERT_TRUE(kernels::cholesky_blocked(spd, 0.0, l_blocked));
    ASSERT_TRUE(kernels::reference_cholesky(spd, 0.0, l_ref));
    expect_bits_equal(l_blocked, l_ref, "cholesky");
  }
}

TEST(Kernels, CholeskyDiagAddMatchesReference) {
  const Matrix spd = random_spd(65, 7);
  Matrix l_blocked;
  Matrix l_ref;
  ASSERT_TRUE(kernels::cholesky_blocked(spd, 0.25, l_blocked));
  ASSERT_TRUE(kernels::reference_cholesky(spd, 0.25, l_ref));
  expect_bits_equal(l_blocked, l_ref, "cholesky diag_add");
}

TEST(Kernels, CholeskyRejectsIndefiniteLikeReference) {
  Matrix m = Matrix::identity(10);
  m(7, 7) = -1.0;
  Matrix l;
  EXPECT_FALSE(kernels::cholesky_blocked(m, 0.0, l));
  EXPECT_FALSE(kernels::reference_cholesky(m, 0.0, l));
}

TEST(Kernels, NonSquareInputsThrow) {
  Matrix l;
  EXPECT_THROW((void)kernels::cholesky_blocked(Matrix(3, 2), 0.0, l),
               LinalgError);
  Matrix rect(3, 2);
  EXPECT_THROW(kernels::symmetric_fill(rect, {}, 0,
                                       [](std::size_t, std::size_t) {
                                         return 0.0;
                                       }),
               LinalgError);
}

TEST(Kernels, TrsmMatchesPerColumnSubstitutionBitwise) {
  std::uint64_t seed = 300;
  for (std::size_t n : kSizes) {
    const Matrix spd = random_spd(n, seed++);
    Matrix l;
    ASSERT_TRUE(kernels::reference_cholesky(spd, 0.0, l));
    for (std::size_t m : {std::size_t{1}, std::size_t{3}, std::size_t{257}}) {
      const Matrix b = random_matrix(n, m, seed++);
      // Reference: the seed per-column gather/substitute/scatter solve.
      const Matrix x_ref = kernels::reference_cholesky_solve(l, b);
      Matrix x = b;
      kernels::trsm_lower(l, x);
      kernels::trsm_lower_transposed(l, x);
      expect_bits_equal(x, x_ref, "trsm forward+backward");
    }
  }
}

TEST(Kernels, CholeskySolveEntryPointsRouteThroughKernels) {
  // The public cholesky()/Cholesky::solve must agree with the reference
  // path exactly (these are the calls the prediction gain goes through).
  const Matrix spd = random_spd(130, 17);
  const Cholesky chol = cholesky(spd);
  Matrix l_ref;
  ASSERT_TRUE(kernels::reference_cholesky(spd, 0.0, l_ref));
  expect_bits_equal(chol.l, l_ref, "cholesky()");
  const Matrix b = random_matrix(130, 40, 18);
  expect_bits_equal(chol.solve(b), kernels::reference_cholesky_solve(l_ref, b),
                    "Cholesky::solve");
}

TEST(Kernels, ThreadCountBitIdentity) {
  // Identical bits for any worker count, including the serial path. Sizes
  // above kSerialFlops so the fan-out actually engages.
  const Matrix a = random_matrix(200, 150, 41);
  const Matrix b = random_matrix(150, 220, 42);
  const Matrix spd = random_spd(260, 43);
  const Matrix rhs = random_matrix(260, 300, 44);

  const Matrix prod1 = kernels::matmul(a, b, {.threads = 1});
  const Matrix syrk1 = kernels::syrk(a, {.threads = 1});
  Matrix l1;
  ASSERT_TRUE(kernels::cholesky_blocked(spd, 0.0, l1, {.threads = 1}));
  Matrix x1 = rhs;
  kernels::trsm_lower(l1, x1, {.threads = 1});
  kernels::trsm_lower_transposed(l1, x1, {.threads = 1});

  for (std::size_t threads : {std::size_t{2}, std::size_t{3}, std::size_t{7},
                              std::size_t{0}}) {
    const kernels::KernelOptions opts{threads};
    expect_bits_equal(kernels::matmul(a, b, opts), prod1, "matmul threads");
    expect_bits_equal(kernels::syrk(a, opts), syrk1, "syrk threads");
    Matrix lt;
    ASSERT_TRUE(kernels::cholesky_blocked(spd, 0.0, lt, opts));
    expect_bits_equal(lt, l1, "cholesky threads");
    Matrix xt = rhs;
    kernels::trsm_lower(lt, xt, opts);
    kernels::trsm_lower_transposed(lt, xt, opts);
    expect_bits_equal(xt, x1, "trsm threads");
  }
}

TEST(Kernels, SymmetricFillMatchesCellFunction) {
  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{65},
                        std::size_t{300}}) {
    Matrix out(n, n);
    const auto cell = [](std::size_t i, std::size_t j) {
      return static_cast<double>(i * 1000 + j) + 0.5;
    };
    kernels::symmetric_fill(out, {.threads = 0}, /*serial_below=*/0, cell);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        ASSERT_EQ(out(i, j), cell(i, j));
        ASSERT_EQ(out(j, i), cell(i, j));
      }
    }
  }
}

TEST(Kernels, RotationsMatchManualLoops) {
  Matrix m = random_matrix(33, 33, 77);
  Matrix expected = m;
  const double c = 0.8;
  const double s = 0.6;
  // Manual column rotation, the pre-kernel eigen_symmetric inner loop.
  for (std::size_t k = 0; k < expected.rows(); ++k) {
    const double akp = expected(k, 3);
    const double akq = expected(k, 9);
    expected(k, 3) = c * akp - s * akq;
    expected(k, 9) = s * akp + c * akq;
  }
  kernels::rotate_cols(m, 3, 9, c, s);
  expect_bits_equal(m, expected, "rotate_cols");

  for (std::size_t k = 0; k < expected.cols(); ++k) {
    const double apk = expected(3, k);
    const double aqk = expected(9, k);
    expected(3, k) = c * apk - s * aqk;
    expected(9, k) = s * apk + c * aqk;
  }
  kernels::rotate_rows(m, 3, 9, c, s);
  expect_bits_equal(m, expected, "rotate_rows");
}

}  // namespace
}  // namespace effitest::linalg
