// Fuzz target: the campaign scenario JSON parser. Any byte sequence must
// either load into a Scenario or raise ScenarioError — never crash or
// overflow the stack (the shared json::Parser bounds nesting at 64
// levels; corpora/scenario/deep_nesting.json pins that). Parsing only
// registers circuit specs — catalog resolution is lazy — so a hostile
// generator spec cannot make the target allocate a huge circuit.

#include <string>

#include "fuzz_driver.hpp"
#include "io/scenario_json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)effitest::io::parse_scenario(text, "fuzz");
  } catch (const effitest::io::ScenarioError&) {
    // Structured rejection is the expected outcome for malformed input.
  }
  return 0;
}
