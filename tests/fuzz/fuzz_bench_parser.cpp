// Fuzz target: the ISCAS89 .bench parser. Any byte sequence must either
// parse into a valid netlist or raise a structured error (BenchParseError
// for line-annotated syntax faults, NetlistError for post-parse
// validation) — never crash, hang, or silently mis-parse. Findings so far
// are pinned in
// tests/netlist/bench_parser_test.cpp and corpora/bench/.

#include <string>

#include "fuzz_driver.hpp"
#include "netlist/bench_parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // The parser is line-oriented with no cross-line state worth exploring
  // at megabyte scale; capping keeps the fuzzer in interesting territory.
  if (size > (1u << 20)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)effitest::netlist::parse_bench_string(text, "fuzz");
  } catch (const effitest::netlist::BenchParseError&) {
    // Structured rejection is the expected outcome for malformed input.
  } catch (const effitest::netlist::NetlistError&) {
    // Post-parse validation failures (cycles, arity) are structured too.
  }
  return 0;
}
