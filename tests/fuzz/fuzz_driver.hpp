#pragma once
// Shared entry point for the parser fuzz targets. Each target defines
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// and gets a `main` in one of two ways:
//
//  - Default (no macro): this header supplies a standalone corpus-replay
//    main() that feeds every file named on the command line (directories
//    recurse, entries sorted for a deterministic order) through the target
//    once. That is what `ctest -L fuzz` runs — it needs no special
//    compiler, so the replay regression tests work with plain gcc and
//    under any sanitizer.
//
//  - EFFITEST_LIBFUZZER (set by -DEFFITEST_FUZZERS=ON, clang only): no
//    main() is emitted here; libFuzzer's own driver takes over and the
//    binary becomes a coverage-guided fuzzer (`fuzz_x corpus/ -max_total_time=60`).
//
// Crash-regression inputs fuzzing surfaces belong in tests/fuzz/corpora/
// so the replay mode pins them forever.

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef EFFITEST_LIBFUZZER

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

namespace effitest::fuzz {

inline bool replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "fuzz replay: cannot open " << path << '\n';
    return false;
  }
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  return true;
}

inline int replay_main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: " << (argc > 0 ? argv[0] : "fuzz_target")
              << " <corpus file or directory>...\n";
    return 2;
  }
  std::sort(inputs.begin(), inputs.end());
  int failures = 0;
  for (const fs::path& p : inputs) {
    if (!replay_file(p)) ++failures;
  }
  std::cout << "replayed " << (inputs.size() - failures) << '/'
            << inputs.size() << " corpus input(s)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace effitest::fuzz

int main(int argc, char** argv) {
  return effitest::fuzz::replay_main(argc, argv);
}

#endif  // EFFITEST_LIBFUZZER
