// Fuzz target: the tune line protocol's response-stream reader
// (io::TuneServer::run). Each input is treated as the complete tester →
// server stream for a two-chip run against one tiny shared service:
//
//  - strict mode must either finish or raise std::runtime_error;
//  - lenient mode must NEVER throw — a bad frame abandons at most its
//    chip and garbage is dropped, so an escaping exception here is a
//    finding (the target lets it propagate and crash on purpose).
//
// The service is built once (static) with an explicit designated period
// so per-input cost is the protocol loop, not flow calibration. The
// reorder-buffer bounds this target drove in (response width > np,
// sequence numbers > 10^6 ahead) are pinned in corpora/tune/ and
// tests/session/tune_protocol_test.cpp.

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/tuner_service.hpp"
#include "fuzz_driver.hpp"
#include "io/tune_protocol.hpp"
#include "netlist/generator.hpp"
#include "timing/model.hpp"

namespace {

struct ServiceHolder {
  effitest::netlist::GeneratedCircuit circuit;
  effitest::netlist::CellLibrary lib =
      effitest::netlist::CellLibrary::standard();
  effitest::timing::CircuitModel model;
  effitest::core::Problem problem;
  effitest::core::TunerService service;

  static effitest::netlist::GeneratorSpec spec() {
    effitest::netlist::GeneratorSpec s;
    s.num_flip_flops = 16;
    s.num_gates = 60;
    s.num_buffers = 2;
    s.num_critical_paths = 6;
    s.seed = 7;
    return s;
  }

  static effitest::core::FlowOptions options() {
    effitest::core::FlowOptions o;
    o.seed = 11;
    o.designated_period = 900.0;  // explicit: skips period calibration
    o.threads = 1;
    return o;
  }

  ServiceHolder()
      : circuit(effitest::netlist::generate_circuit(spec())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model),
        service(problem, options()) {}
};

const effitest::core::TunerService& shared_service() {
  static const ServiceHolder holder;
  return holder.service;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 18)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto& service = shared_service();
  constexpr std::size_t kChips = 2;
  {
    std::istringstream in(text);
    std::ostringstream out;
    effitest::io::TuneServer server(service, kChips);
    try {
      (void)server.run(in, out);
    } catch (const std::runtime_error&) {
      // Strict mode aborts on the first bad frame — expected.
    }
  }
  {
    std::istringstream in(text);
    std::ostringstream out;
    effitest::io::TuneServerOptions lenient;
    lenient.lenient = true;
    effitest::io::TuneServer server(service, kChips, lenient);
    (void)server.run(in, out);  // must not throw; see file comment
  }
  return 0;
}
