// Fuzz target: the fleet's two worker-facing wire parsers. Both consume
// attacker-adjacent bytes — parse_worker_status eats whatever a (possibly
// hostile or corrupted) worker answers to a health probe, and
// parse_serving_banner eats a spawned child's stdout — and both promise to
// reject malformed input by returning ok=false / nullopt, never by
// throwing or crashing. The input is split on the first newline so one
// corpus file exercises both parsers.

#include <string>

#include "fleet/registry.hpp"
#include "fleet/supervisor.hpp"
#include "fuzz_driver.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  const size_t split = text.find('\n');
  const std::string first =
      split == std::string::npos ? text : text.substr(0, split);
  const std::string rest =
      split == std::string::npos ? text : text.substr(split + 1);
  (void)effitest::fleet::parse_worker_status(first);
  (void)effitest::fleet::parse_worker_status(rest);
  (void)effitest::fleet::parse_serving_banner(first);
  (void)effitest::fleet::parse_serving_banner(rest);
  return 0;
}
