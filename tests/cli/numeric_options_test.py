#!/usr/bin/env python3
"""Rejection matrix for every numeric CLI option.

Regression test: the CLI used to feed option values straight into
std::stoul/std::stod/std::stoull, so `effitest_cli tune --chips=abc`
died with an uncaught std::invalid_argument (exit code dependent on the
runtime's terminate handler) instead of the documented usage exit 2.
Every numeric option must now reject malformed and out-of-range values
with exit 2 and an error message naming the offending option and value.

Usage: numeric_options_test.py <effitest_cli> <s27.bench>
"""

import subprocess
import sys

CLI = sys.argv[1]
BENCH = sys.argv[2]

# Values no unsigned-integer option may accept.
BAD_U64 = ["abc", "12x", "-3", "", "0x10", "99999999999999999999999999"]
# Values no floating-point option may accept ("nan"/"inf" parse as doubles
# but are meaningless as periods/quantiles/inflation factors).
BAD_DOUBLE = ["abc", "12x", "", "nan", "inf", "1e999999"]

# (command-line prefix, option name, bad values). Each prefix provisions
# the cheapest circuit that lets the command reach the numeric parse.
S27 = ["--bench=" + BENCH, "--buffers=2"]
CASES = [
    (["generate", "--circuit=s9234"], "seed", BAD_U64),
    (["info", "--bench=" + BENCH], "buffers", BAD_U64),
    (["info", "--circuit=s9234"], "seed", BAD_U64),
    (["ssta"] + S27, "chips", BAD_U64),
    (["run"] + S27, "chips", BAD_U64),
    (["run"] + S27, "seed", BAD_U64),
    (["run"] + S27, "threads", BAD_U64),
    (["run"] + S27, "td", BAD_DOUBLE),
    (["run"] + S27, "quantile", BAD_DOUBLE),
    (["campaign", "--circuits=s9234"], "chips", BAD_U64),
    (["campaign", "--circuits=s9234"], "seed", BAD_U64),
    (["campaign", "--circuits=s9234"], "threads", BAD_U64),
    (["campaign", "--circuits=s9234"], "stop-after", BAD_U64),
    (["campaign", "--circuits=s9234"], "inflation", BAD_DOUBLE),
    # --quantiles is a comma-separated list; an empty list is legal, but a
    # malformed element anywhere in the list is not.
    (
        ["campaign", "--circuits=s9234"],
        "quantiles",
        [v for v in BAD_DOUBLE if v],
    ),
    (["tune", "--simulate"] + S27, "chips", BAD_U64),
    (["tune", "--simulate"] + S27, "seed", BAD_U64),
    (["tune", "--simulate"] + S27, "threads", BAD_U64),
    (["tune", "--simulate"] + S27, "td", BAD_DOUBLE),
    (["tune", "--simulate"] + S27, "quantile", BAD_DOUBLE),
    (["tune", "--simulate"] + S27, "window", BAD_U64),
    # serve parses every numeric option before provisioning the circuit,
    # so a typo fails in milliseconds rather than after circuit build.
    (["serve"] + S27, "port", BAD_U64 + ["65536", "70000"]),
    (["serve"] + S27, "workers", BAD_U64),
    (["serve"] + S27, "max-pending", BAD_U64),
    (["serve"] + S27, "window", BAD_U64),
    (["serve"] + S27, "max-chips", BAD_U64),
    (["serve"] + S27, "max-sessions", BAD_U64),
    (["serve"] + S27, "io-timeout", BAD_DOUBLE),
    (["serve"] + S27, "status-port", BAD_U64 + ["65536", "70000"]),
]

failures = []


def check(argv, expect_rc, expect_stderr=None):
    proc = subprocess.run(
        [CLI] + argv, capture_output=True, text=True, timeout=120
    )
    problems = []
    if proc.returncode != expect_rc:
        problems.append(
            "exit %d, want %d" % (proc.returncode, expect_rc)
        )
    if expect_stderr is not None and expect_stderr not in proc.stderr:
        problems.append(
            "stderr %r does not mention %r" % (proc.stderr, expect_stderr)
        )
    if problems:
        failures.append("%s: %s" % (" ".join(argv), "; ".join(problems)))
    else:
        print("ok: %s" % " ".join(argv))


for prefix, option, bad_values in CASES:
    for value in bad_values:
        argv = prefix + ["--%s=%s" % (option, value)]
        # The error must name the option AND echo the rejected value so the
        # user can see which of several numeric options was mistyped.
        check(argv, 2, "--%s=%s" % (option, value))

# A malformed element buried in an otherwise-valid list is still named.
check(["campaign", "--circuits=s9234", "--quantiles=0.5,abc"], 2,
      "--quantiles=abc")

# --connect targets embed the port after the last ':'; a malformed port
# is rejected before any connection attempt.
check(["tune"] + S27 + ["--connect=127.0.0.1:abc"], 2, "abc")
check(["tune"] + S27 + ["--connect=127.0.0.1:70000"], 2, "70000")

# --log-format takes exactly text|json; every logging-capable command
# rejects anything else with exit 2 naming the option and value.
for prefix in (
    ["run"] + S27 + ["--chips=1"],
    ["campaign", "--circuits=s9234"],
    ["tune", "--simulate"] + S27,
    ["serve"] + S27,
):
    for value in ("bogus", "JSON", ""):
        check(prefix + ["--log-format=%s" % value], 2,
              "--log-format=%s" % value)

# ... and the logging options exist only on run/campaign/tune/serve; the
# other commands reject them like any unknown option.
check(["generate", "--circuit=s9234", "--log-format=json"], 2,
      "--log-format=json")
check(["info", "--bench=" + BENCH, "--log-file=/tmp/x.log"], 2,
      "--log-file=/tmp/x.log")
check(["circuits", "--log-format=json"], 2, "--log-format=json")

# status accepts --connect only, with the same host:port validation as
# tune --connect.
check(["status", "--connect=127.0.0.1:abc"], 2, "abc")
check(["status", "--connect=nocolon"], 2, "nocolon")
check(["status", "--circuit=s9234"], 2, "--circuit=s9234")

# An enabled log really is written: one valid JSON event per line, and
# --log-file without --log-format defaults to JSON.
import json
import tempfile

with tempfile.NamedTemporaryFile(suffix=".log", mode="r") as log_file:
    check(["run"] + S27 + ["--chips=20", "--log-file=" + log_file.name], 0)
    events = [json.loads(line) for line in log_file.read().splitlines()]
    if not events:
        failures.append("--log-file wrote no events")
    for event in events:
        if event.get("schema") != "effitest-log-v1":
            failures.append("bad log event: %r" % (event,))
    if [e["event"] for e in events if e["component"] == "run"] != [
        "run_begin",
        "run_complete",
    ]:
        failures.append(
            "run did not emit run_begin/run_complete: %r"
            % [e["event"] for e in events]
        )

# Sanity: well-formed numbers on the same paths still succeed, so the
# matrix above is rejecting values rather than whole commands.
check(["generate", "--circuit=s9234", "--seed=5"], 0)
check(["ssta"] + S27 + ["--chips=50"], 0)

if failures:
    print("\n%d FAILED:" % len(failures))
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("\nall %d rejection cases passed" % sum(len(v) for _, _, v in CASES))
