// Unit suite for the observability layer (src/obs): lock-free instrument
// exactness under contention (the suite runs under the ThreadSanitizer CI
// label), the pinned effitest-log-v1 line schema, registry snapshot
// monotonicity, and the power-of-two histogram math the serve latency
// percentiles moved onto. Also pins the io::json::Writer escapes and the
// parser's \uXXXX support the log/status emitters rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace effitest;

TEST(Metrics, CountersGaugesHistogramsAreExactUnderContention) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.count");
  obs::Gauge& gauge = registry.gauge("test.level");
  obs::Histogram& histogram = registry.histogram("test.latency");

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kIters; ++i) {
        counter.inc();
        gauge.add(1.0);
        histogram.record(1e-6 * static_cast<double>(1 + (i % 1000)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter.value(), kThreads * kIters);
  EXPECT_EQ(gauge.value(), static_cast<double>(kThreads * kIters));
  EXPECT_EQ(histogram.count(), kThreads * kIters);
}

TEST(Metrics, HistogramQuantilesUsePowerOfTwoMidpoints) {
  // The exact math the serve latency percentiles always used: bucket
  // floor(log2(us)), quantile at the bucket's geometric midpoint.
  obs::Histogram h;
  h.record(100e-6);  // 100 us -> bucket 6 [64, 128)
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), std::exp2(6.5) * 1e-6);
  h.record(0.5);  // 500000 us -> bucket 18 [262144, 524288)
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), std::exp2(6.5) * 1e-6);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), std::exp2(18.5) * 1e-6);

  obs::Histogram tiny;
  tiny.record(1e-9);  // sub-microsecond -> bucket 0
  EXPECT_DOUBLE_EQ(tiny.snapshot().quantile(0.5), std::exp2(0.5) * 1e-6);

  EXPECT_EQ(obs::Histogram().snapshot().quantile(0.5), 0.0);  // empty
}

TEST(Metrics, HistogramSumAccumulatesRecordedSeconds) {
  obs::Histogram h;
  h.record(100e-6);
  h.record(0.5);
  h.record(1e-9);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 100e-6 + 0.5 + 1e-9);
}

TEST(Metrics, PrometheusHistogramRendersCumulativeBuckets) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("serve.session_latency_us");
  h.record(100e-6);  // bucket 6 [64, 128) us
  h.record(100e-6);
  h.record(0.5);  // bucket 18

  const std::string text = obs::render_prometheus_text(registry.snapshot());
  EXPECT_NE(
      text.find("# TYPE effitest_serve_session_latency_us histogram\n"),
      std::string::npos)
      << text;
  // Cumulative series: below bucket 6 nothing, at its upper bound
  // (128 us) both fast events, +Inf everything.
  const std::string pname = "effitest_serve_session_latency_us";
  const auto le = [](std::size_t b) {
    return io::json::format_double(
        obs::HistogramSnapshot::bucket_upper_bound(b));
  };
  EXPECT_NE(text.find(pname + "_bucket{le=\"" + le(5) + "\"} 0\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(pname + "_bucket{le=\"" + le(6) + "\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(pname + "_bucket{le=\"+Inf\"} 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find(pname + "_sum " +
                      io::json::format_double(100e-6 + 100e-6 + 0.5) + "\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(pname + "_count 3\n"), std::string::npos) << text;

  // The cumulative series is monotone and one line per bucket.
  std::size_t bucket_lines = 0;
  for (std::size_t pos = text.find(pname + "_bucket");
       pos != std::string::npos;
       pos = text.find(pname + "_bucket", pos + 1)) {
    ++bucket_lines;
  }
  EXPECT_EQ(bucket_lines, obs::HistogramSnapshot::kBuckets);
}

TEST(Metrics, SnapshotsAreMonotoneAndQuiescentSnapshotsEqual) {
  obs::MetricsRegistry registry;
  registry.counter("a").inc(5);
  registry.histogram("h").record(0.001);
  const obs::RegistrySnapshot mid = registry.snapshot();
  registry.counter("a").inc(2);
  registry.histogram("h").record(0.002);

  const obs::RegistrySnapshot fin = registry.snapshot();
  EXPECT_LE(mid.counter("a"), fin.counter("a"));
  EXPECT_EQ(fin.counter("a"), 7u);
  ASSERT_NE(fin.histogram("h"), nullptr);
  EXPECT_EQ(fin.histogram("h")->count, 2u);

  // Nothing recorded in between: the snapshots are identical.
  const obs::RegistrySnapshot again = registry.snapshot();
  EXPECT_EQ(again.counter("a"), fin.counter("a"));
  EXPECT_EQ(again.histogram("h")->buckets, fin.histogram("h")->buckets);

  // Missing names probe as 0 / nullptr, never throw.
  EXPECT_EQ(fin.counter("nope"), 0u);
  EXPECT_EQ(fin.gauge("nope"), 0.0);
  EXPECT_EQ(fin.histogram("nope"), nullptr);
}

TEST(Metrics, BoundGaugeComputesOnRead) {
  obs::MetricsRegistry registry;
  double depth = 3.0;
  registry.gauge("q").bind([&depth] { return depth; });
  EXPECT_EQ(registry.snapshot().gauge("q"), 3.0);
  depth = 7.0;
  EXPECT_EQ(registry.snapshot().gauge("q"), 7.0);
}

TEST(Metrics, RenderStatusJsonParsesBack) {
  obs::MetricsRegistry registry;
  registry.counter("serve.sessions_completed").inc(3);
  registry.gauge("serve.active_sessions").set(2.0);
  registry.histogram("serve.session_latency_us").record(100e-6);

  const std::string line = obs::render_status_json(registry.snapshot());
  io::json::Parser parser(line, "status");
  const io::json::Value doc = parser.parse();
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->string, "effitest-status-v1");
  ASSERT_NE(doc.find("counters"), nullptr);
  EXPECT_EQ(doc.find("counters")->find("serve.sessions_completed")->number,
            3.0);
  EXPECT_EQ(doc.find("gauges")->find("serve.active_sessions")->number, 2.0);
  const io::json::Value* h =
      doc.find("histograms")->find("serve.session_latency_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(h->find("p50")->number, std::exp2(6.5) * 1e-6);
  EXPECT_DOUBLE_EQ(h->find("p99")->number, std::exp2(6.5) * 1e-6);
}

TEST(StructuredLog, JsonGoldenLineAndRoundTrip) {
  std::ostringstream out;
  obs::StructuredLog log(out, obs::LogFormat::kJson);
  log.set_clock([] { return 12345.5; });
  log.emit("serve", "session_complete",
           {obs::LogField::u64("session", 3), obs::LogField::u64("chips", 4),
            obs::LogField::f64("seconds", 0.25),
            obs::LogField::boolean("ok", true),
            obs::LogField::str("reason", "drain \"now\"")});

  // The pinned effitest-log-v1 schema, byte for byte.
  EXPECT_EQ(out.str(),
            "{\"schema\": \"effitest-log-v1\", \"ts\": 12345.5, "
            "\"component\": \"serve\", \"event\": \"session_complete\", "
            "\"session\": 3, \"chips\": 4, \"seconds\": 0.25, "
            "\"ok\": true, \"reason\": \"drain \\\"now\\\"\"}\n");

  // And the line parses back through the shared parser.
  const std::string line = out.str().substr(0, out.str().size() - 1);
  io::json::Parser parser(line, "log");
  const io::json::Value doc = parser.parse();
  EXPECT_EQ(doc.find("schema")->string, "effitest-log-v1");
  EXPECT_EQ(doc.find("ts")->number, 12345.5);
  EXPECT_EQ(doc.find("component")->string, "serve");
  EXPECT_EQ(doc.find("event")->string, "session_complete");
  EXPECT_EQ(doc.find("session")->number, 3.0);
  EXPECT_TRUE(doc.find("ok")->boolean);
  EXPECT_EQ(doc.find("reason")->string, "drain \"now\"");
}

TEST(StructuredLog, TextFormatGoldenLine) {
  std::ostringstream out;
  obs::StructuredLog log(out, obs::LogFormat::kText);
  log.set_clock([] { return 2.5; });
  log.emit("campaign", "job_complete",
           {obs::LogField::u64("index", 1), obs::LogField::f64("ra", 95.5),
            obs::LogField::boolean("ok", false),
            obs::LogField::str("circuit", "s9234")});
  EXPECT_EQ(out.str(),
            "ts=2.5 campaign job_complete index=1 ra=95.5 ok=false "
            "circuit=s9234\n");
}

TEST(StructuredLog, ConcurrentEmitsInterleaveWholeLines) {
  std::ostringstream out;
  obs::StructuredLog log(out, obs::LogFormat::kJson);
  log.set_clock([] { return 1.0; });
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kEvents = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (std::size_t i = 0; i < kEvents; ++i) {
        log.emit("obs", "tick",
                 {obs::LogField::u64("thread", t),
                  obs::LogField::u64("i", i)});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every line is complete, parseable JSON — characters never interleave.
  std::istringstream is(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    io::json::Parser parser(line, "log");
    const io::json::Value doc = parser.parse();
    ASSERT_NE(doc.find("event"), nullptr) << line;
    EXPECT_EQ(doc.find("event")->string, "tick");
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kEvents);
}

TEST(StructuredLog, ParseLogFormatAndOpenFileErrors) {
  obs::LogFormat f = obs::LogFormat::kText;
  EXPECT_TRUE(obs::parse_log_format("json", f));
  EXPECT_EQ(f, obs::LogFormat::kJson);
  EXPECT_TRUE(obs::parse_log_format("text", f));
  EXPECT_EQ(f, obs::LogFormat::kText);
  f = obs::LogFormat::kJson;
  EXPECT_FALSE(obs::parse_log_format("yaml", f));
  EXPECT_EQ(f, obs::LogFormat::kJson);  // untouched on failure

  EXPECT_THROW((void)obs::StructuredLog::open_file(
                   "/nonexistent-dir/zzz/x.log", obs::LogFormat::kJson),
               std::runtime_error);
}

TEST(JsonWriter, EscapesAndUnicodeRoundTrip) {
  io::json::Writer w;
  w.raw("{").key("s").string(std::string("a\"b\n\x01", 5)).raw("}");
  EXPECT_EQ(w.str(), "{\"s\": \"a\\\"b\\n\\u0001\"}");
  io::json::Parser parser(w.str(), "writer");
  const io::json::Value doc = parser.parse();
  ASSERT_NE(doc.find("s"), nullptr);
  EXPECT_EQ(doc.find("s")->string, std::string("a\"b\n\x01", 5));

  // \uXXXX escapes decode to UTF-8, surrogate pairs included.
  const std::string unicode = "{\"s\": \"\\u0041\\u00e9\\ud83d\\ude00\"}";
  io::json::Parser up(unicode, "unicode");
  EXPECT_EQ(up.parse().find("s")->string, "A\xc3\xa9\xf0\x9f\x98\x80");

  // An unpaired high surrogate is malformed, not silently mangled.
  const std::string bad = "{\"s\": \"\\ud800x\"}";
  io::json::Parser bp(bad, "bad");
  EXPECT_THROW((void)bp.parse(), io::json::ParseError);
}

TEST(JsonWriter, NumbersAndBooleans) {
  io::json::Writer w;
  w.raw("[").number(0.25).raw(", ").number(std::uint64_t{18446744073709551615u});
  w.raw(", ").boolean(true).raw(", ").number(std::nan("")).raw("]");
  EXPECT_EQ(w.str(), "[0.25, 18446744073709551615, true, null]");
}

}  // namespace
