#include "stats/multivariate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hpp"

namespace effitest::stats {
namespace {

TEST(MultivariateNormal, DimensionMismatchThrows) {
  const linalg::Matrix cov = linalg::Matrix::identity(2);
  EXPECT_THROW(MultivariateNormal({1.0, 2.0, 3.0}, cov),
               std::invalid_argument);
}

TEST(MultivariateNormal, SampleMatchesMeanAndCovariance) {
  const linalg::Matrix cov{{4.0, 1.2}, {1.2, 1.0}};
  const std::vector<double> mu{10.0, -5.0};
  const MultivariateNormal mvn(mu, cov);
  Rng rng(17);
  const linalg::Matrix draws = mvn.sample_many(rng, 30000);
  const linalg::Matrix est = sample_covariance(draws);
  EXPECT_NEAR(est(0, 0), 4.0, 0.15);
  EXPECT_NEAR(est(0, 1), 1.2, 0.08);
  EXPECT_NEAR(est(1, 1), 1.0, 0.05);
  EXPECT_NEAR(mean(draws.column(0)), 10.0, 0.05);
  EXPECT_NEAR(mean(draws.column(1)), -5.0, 0.03);
}

TEST(MultivariateNormal, PerfectCorrelationViaJitter) {
  // Singular covariance (perfectly correlated pair) must still sample after
  // jitter regularization, and samples must be (almost) identical.
  const linalg::Matrix cov{{1.0, 1.0}, {1.0, 1.0}};
  const MultivariateNormal mvn({0.0, 0.0}, cov, 1e-9);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> s = mvn.sample(rng);
    EXPECT_NEAR(s[0], s[1], 1e-3);
  }
}

TEST(MultivariateNormal, UnivariateReducesToNormal) {
  const linalg::Matrix cov{{2.25}};
  const MultivariateNormal mvn({1.0}, cov);
  Rng rng(23);
  std::vector<double> xs(20000);
  for (double& x : xs) x = mvn.sample(rng)[0];
  EXPECT_NEAR(mean(xs), 1.0, 0.04);
  EXPECT_NEAR(stddev(xs), 1.5, 0.04);
}

TEST(SampleCovariance, ExactOnSmallData) {
  linalg::Matrix rows(3, 2);
  rows(0, 0) = 1.0; rows(0, 1) = 2.0;
  rows(1, 0) = 2.0; rows(1, 1) = 4.0;
  rows(2, 0) = 3.0; rows(2, 1) = 6.0;
  const linalg::Matrix cov = sample_covariance(rows);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
}

TEST(SampleCovariance, NeedsTwoRows) {
  EXPECT_THROW(sample_covariance(linalg::Matrix(1, 3)), std::invalid_argument);
}

TEST(CovarianceToCorrelation, NormalizesDiagonal) {
  const linalg::Matrix cov{{4.0, 2.0}, {2.0, 9.0}};
  const linalg::Matrix corr = covariance_to_correlation(cov);
  EXPECT_DOUBLE_EQ(corr(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(corr(1, 1), 1.0);
  EXPECT_NEAR(corr(0, 1), 2.0 / 6.0, 1e-12);
}

TEST(CovarianceToCorrelation, ZeroVarianceRow) {
  const linalg::Matrix cov{{0.0, 0.0}, {0.0, 1.0}};
  const linalg::Matrix corr = covariance_to_correlation(cov);
  EXPECT_DOUBLE_EQ(corr(0, 0), 1.0);  // convention
  EXPECT_DOUBLE_EQ(corr(0, 1), 0.0);
}

}  // namespace
}  // namespace effitest::stats
