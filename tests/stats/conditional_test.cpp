#include "stats/conditional.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/multivariate.hpp"
#include "stats/rng.hpp"

namespace effitest::stats {
namespace {

TEST(ConditionalGaussian, BivariateTextbookCase) {
  // X1, X2 with var 1, correlation rho: X1 | X2 = x has mean rho*x and
  // variance 1 - rho^2 (paper eqs. 4-5 specialized).
  const double rho = 0.8;
  const linalg::Matrix cov{{1.0, rho}, {rho, 1.0}};
  const ConditionalGaussian cg(cov, {1});
  ASSERT_EQ(cg.predicted_indices().size(), 1u);
  EXPECT_EQ(cg.predicted_indices()[0], 0u);
  EXPECT_NEAR(cg.posterior_sigma()[0], std::sqrt(1.0 - rho * rho), 1e-10);

  const std::vector<double> mu{0.0, 0.0};
  const std::vector<double> obs{2.0};
  const std::vector<double> post = cg.posterior_mean(mu, obs);
  EXPECT_NEAR(post[0], rho * 2.0, 1e-10);
}

TEST(ConditionalGaussian, NonZeroMeans) {
  const linalg::Matrix cov{{2.0, 1.0}, {1.0, 4.0}};
  const ConditionalGaussian cg(cov, {1});
  const std::vector<double> mu{10.0, 20.0};
  const std::vector<double> obs{24.0};  // 1 sigma above... innovation 4
  const std::vector<double> post = cg.posterior_mean(mu, obs);
  EXPECT_NEAR(post[0], 10.0 + (1.0 / 4.0) * 4.0, 1e-10);
}

TEST(ConditionalGaussian, VarianceNeverIncreases) {
  // Eq. 5: posterior variance <= prior variance, always.
  const linalg::Matrix cov{
      {2.0, 0.5, 0.3}, {0.5, 1.5, 0.2}, {0.3, 0.2, 1.0}};
  const ConditionalGaussian cg(cov, {2});
  const auto& pred = cg.predicted_indices();
  for (std::size_t k = 0; k < pred.size(); ++k) {
    EXPECT_LE(cg.posterior_sigma()[k] * cg.posterior_sigma()[k],
              cov(pred[k], pred[k]) + 1e-12);
  }
}

TEST(ConditionalGaussian, IndependentVariablesUnchanged) {
  const linalg::Matrix cov = linalg::Matrix::identity(3);
  const ConditionalGaussian cg(cov, {0});
  EXPECT_NEAR(cg.posterior_sigma()[0], 1.0, 1e-10);
  EXPECT_NEAR(cg.posterior_sigma()[1], 1.0, 1e-10);
  const std::vector<double> mu{0.0, 5.0, 7.0};
  const std::vector<double> post = cg.posterior_mean(mu, std::vector<double>{3.0});
  EXPECT_NEAR(post[0], 5.0, 1e-10);
  EXPECT_NEAR(post[1], 7.0, 1e-10);
}

TEST(ConditionalGaussian, PerfectCorrelationPinsValue) {
  linalg::Matrix cov{{1.0, 0.999999}, {0.999999, 1.0}};
  const ConditionalGaussian cg(cov, {1});
  EXPECT_NEAR(cg.posterior_sigma()[0], 0.0, 1e-2);
  const std::vector<double> post =
      cg.posterior_mean(std::vector<double>{0.0, 0.0}, std::vector<double>{1.7});
  EXPECT_NEAR(post[0], 1.7, 1e-3);
}

TEST(ConditionalGaussian, NothingMeasured) {
  const linalg::Matrix cov{{4.0, 0.0}, {0.0, 9.0}};
  const ConditionalGaussian cg(cov, {});
  EXPECT_EQ(cg.predicted_indices().size(), 2u);
  EXPECT_NEAR(cg.posterior_sigma()[0], 2.0, 1e-12);
  EXPECT_NEAR(cg.posterior_sigma()[1], 3.0, 1e-12);
}

TEST(ConditionalGaussian, InputValidation) {
  const linalg::Matrix cov = linalg::Matrix::identity(3);
  EXPECT_THROW(ConditionalGaussian(cov, {5}), std::invalid_argument);
  EXPECT_THROW(ConditionalGaussian(cov, {1, 1}), std::invalid_argument);
  const ConditionalGaussian cg(cov, {0, 1});
  EXPECT_THROW(cg.posterior_mean(std::vector<double>{0.0, 0.0, 0.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(ConditionalGaussian, GainMatrixShape) {
  const linalg::Matrix cov = linalg::Matrix::identity(5);
  const ConditionalGaussian cg(cov, {1, 3});
  EXPECT_EQ(cg.gain().rows(), 3u);  // predicted: 0, 2, 4
  EXPECT_EQ(cg.gain().cols(), 2u);
}

TEST(PredictionGain, AdoptingASharedGainSkipsRefactorization) {
  const linalg::Matrix cov{
      {2.0, 0.5, 0.3}, {0.5, 1.5, 0.2}, {0.3, 0.2, 1.0}};
  const auto gain = PredictionGain::compute(cov, {2});
  const ConditionalGaussian fresh(cov, {2});
  const ConditionalGaussian adopted(gain);

  // Same split, same numbers — and the adopting instance aliases the very
  // object it was handed instead of copying or recomputing it.
  EXPECT_EQ(adopted.shared_gain().get(), gain.get());
  ASSERT_EQ(adopted.predicted_indices(), fresh.predicted_indices());
  for (std::size_t k = 0; k < fresh.posterior_sigma().size(); ++k) {
    EXPECT_EQ(adopted.posterior_sigma()[k], fresh.posterior_sigma()[k]);
  }
  const std::vector<double> mu{1.0, 2.0, 3.0};
  const std::vector<double> obs{3.5};
  const std::vector<double> pa = adopted.posterior_mean(mu, obs);
  const std::vector<double> pf = fresh.posterior_mean(mu, obs);
  ASSERT_EQ(pa.size(), pf.size());
  for (std::size_t k = 0; k < pa.size(); ++k) EXPECT_EQ(pa[k], pf[k]);

  // Copying a ConditionalGaussian shares the gain too.
  const ConditionalGaussian copy = fresh;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.shared_gain().get(), fresh.shared_gain().get());
  EXPECT_THROW(ConditionalGaussian(nullptr), std::invalid_argument);
}

TEST(PredictionGain, StoresCholeskyOfMeasuredBlock) {
  const linalg::Matrix cov{{4.0, 1.0}, {1.0, 9.0}};
  const auto gain = PredictionGain::compute(cov, {1});
  // Sigma_t = [9]; its Cholesky factor is [3].
  ASSERT_EQ(gain->chol_sigma_t.l.rows(), 1u);
  EXPECT_DOUBLE_EQ(gain->chol_sigma_t.l(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(gain->gain(0, 0), 1.0 / 9.0);
}

// Property: the conditional-mean estimator is unbiased and its residual
// std matches the posterior sigma (empirically via joint sampling).
class ConditionalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConditionalPropertyTest, EmpiricalResidualsMatchEq5) {
  Rng rng(GetParam());
  // Random 4x4 covariance: A A^T + 0.5 I.
  linalg::Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
  }
  linalg::Matrix cov = a * a.transposed();
  for (std::size_t i = 0; i < 4; ++i) cov(i, i) += 0.5;

  const std::vector<double> mu{1.0, 2.0, 3.0, 4.0};
  const MultivariateNormal mvn(mu, cov);
  const ConditionalGaussian cg(cov, {1, 2});

  const std::size_t trials = 6000;
  double sum_err0 = 0.0;
  double sum_sq_err0 = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::vector<double> s = mvn.sample(rng);
    const std::vector<double> post = cg.posterior_mean(mu, std::vector<double>{s[1], s[2]});
    const double err = s[0] - post[0];  // predicted index 0
    sum_err0 += err;
    sum_sq_err0 += err * err;
  }
  const double mean_err = sum_err0 / static_cast<double>(trials);
  const double std_err = std::sqrt(sum_sq_err0 / static_cast<double>(trials) -
                                   mean_err * mean_err);
  EXPECT_NEAR(mean_err, 0.0, 0.1 * cg.posterior_sigma()[0] + 0.05);
  EXPECT_NEAR(std_err, cg.posterior_sigma()[0],
              0.06 * cg.posterior_sigma()[0] + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionalPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace effitest::stats
