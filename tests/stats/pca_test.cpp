#include "stats/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace effitest::stats {
namespace {

TEST(Pca, DiagonalCovariance) {
  const std::vector<double> d{9.0, 4.0, 1.0};
  const Pca pca = pca_from_covariance(linalg::Matrix::diagonal(d));
  ASSERT_EQ(pca.component_variance.size(), 3u);
  EXPECT_NEAR(pca.component_variance[0], 9.0, 1e-10);
  EXPECT_NEAR(pca.component_variance[2], 1.0, 1e-10);
  // Leading component loads on variable 0.
  EXPECT_NEAR(std::abs(pca.loading(0, 0)), 1.0, 1e-8);
}

TEST(Pca, EquicorrelatedBlockHasOneDominantComponent) {
  const double rho = 0.95;
  const std::size_t n = 6;
  linalg::Matrix cov(n, n, rho);
  for (std::size_t i = 0; i < n; ++i) cov(i, i) = 1.0;
  const Pca pca = pca_from_covariance(cov);
  // lambda1 = 1 + (n-1) rho, rest = 1 - rho.
  EXPECT_NEAR(pca.component_variance[0], 1.0 + 5.0 * rho, 1e-8);
  EXPECT_NEAR(pca.component_variance[1], 1.0 - rho, 1e-8);
  EXPECT_EQ(pca.significant_components(0.9), 1u);
  EXPECT_EQ(pca.significant_components(0.999), n - 0u);
}

TEST(Pca, SignificantComponentsMonotoneInCoverage) {
  linalg::Matrix cov{{4.0, 1.0, 0.0}, {1.0, 3.0, 0.5}, {0.0, 0.5, 2.0}};
  const Pca pca = pca_from_covariance(cov);
  std::size_t prev = 0;
  for (double cov_frac : {0.3, 0.6, 0.9, 0.99, 1.0}) {
    const std::size_t k = pca.significant_components(cov_frac);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST(Pca, AsymmetryIsAveragedAway) {
  linalg::Matrix cov{{2.0, 0.5001}, {0.4999, 1.0}};
  EXPECT_NO_THROW(pca_from_covariance(cov));
}

TEST(SelectRepresentatives, PicksLargestLoadingPerComponent) {
  // Two independent blocks: {0,1} strongly coupled, {2} independent.
  linalg::Matrix cov{{1.0, 0.99, 0.0}, {0.99, 1.0, 0.0}, {0.0, 0.0, 2.0}};
  const Pca pca = pca_from_covariance(cov);
  const std::vector<std::size_t> reps = select_representatives(pca, 2);
  ASSERT_EQ(reps.size(), 2u);
  // Components: variance-2 variable (index 2) and the coupled pair; one rep
  // from each, never both members of the coupled pair.
  EXPECT_NE(reps[0], reps[1]);
  const bool has_block = reps[0] == 2 || reps[1] == 2;
  EXPECT_TRUE(has_block);
}

TEST(SelectRepresentatives, NoDuplicates) {
  linalg::Matrix cov(4, 4, 0.9);
  for (std::size_t i = 0; i < 4; ++i) cov(i, i) = 1.0;
  const Pca pca = pca_from_covariance(cov);
  const std::vector<std::size_t> reps = select_representatives(pca, 4);
  ASSERT_EQ(reps.size(), 4u);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    for (std::size_t j = i + 1; j < reps.size(); ++j) {
      EXPECT_NE(reps[i], reps[j]);
    }
  }
}

TEST(SelectRepresentatives, RequestMoreThanVariables) {
  const Pca pca = pca_from_covariance(linalg::Matrix::identity(2));
  EXPECT_EQ(select_representatives(pca, 5).size(), 2u);
}

TEST(SelectRepresentatives, ZeroComponents) {
  const Pca pca = pca_from_covariance(linalg::Matrix::identity(2));
  EXPECT_TRUE(select_representatives(pca, 0).empty());
}

}  // namespace
}  // namespace effitest::stats
