#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace effitest::stats {
namespace {

TEST(NormalPdf, StandardValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-15);
}

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - normal_cdf(1.0), 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-10);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownPoints) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.99), 2.3263478740408408, 1e-8);
}

TEST(NormalQuantile, DomainChecked) {
  EXPECT_THROW(static_cast<void>(normal_quantile(0.0)), std::domain_error);
  EXPECT_THROW(static_cast<void>(normal_quantile(1.0)), std::domain_error);
  EXPECT_THROW(static_cast<void>(normal_quantile(-0.5)), std::domain_error);
}

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(static_cast<void>(mean(empty)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(variance(empty)), std::invalid_argument);
}

TEST(Descriptive, SingleSampleVarianceZero) {
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_NEAR(quantile(xs, 1.0 / 3.0), 2.0, 1e-12);
}

TEST(Quantile, UnsortedInputHandled) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, BadInputsThrow) {
  std::vector<double> xs{1.0};
  EXPECT_THROW(static_cast<void>(quantile(xs, 1.5)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(quantile(std::vector<double>{}, 0.5)), std::invalid_argument);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  const std::vector<double> c{3.0, 2.0, 1.0};
  EXPECT_NEAR(correlation(a, c), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(correlation(a, b), 0.0);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo |= v == 1;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(7);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.03);
  EXPECT_NEAR(stddev(xs), 1.0, 0.03);
}

TEST(Rng, ForkProducesDifferentStream) {
  Rng a(11);
  Rng b = a.fork();
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    if (a.normal() != b.normal()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace effitest::stats
