// Determinism contract of the shared parallel runtime (DESIGN.md §8):
// deterministic_for / deterministic_reduce must produce bit-identical
// results for ANY worker count — including floating-point reductions, whose
// grouping is fixed by the range length alone — must propagate body
// exceptions for any worker count, and must handle the empty range. Thread
// counts exercised: 1, 2, 3, 7 and 0 (= shared-pool width / hardware
// concurrency), the set named by the test-layer issue.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/deterministic_for.hpp"

namespace effitest::parallel {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 3, 7, 0};

ForOptions with_threads(std::size_t t) {
  ForOptions opts;
  opts.threads = t;
  return opts;
}

TEST(ResolveWorkers, ClampsToItemsAndPoolWidth) {
  const std::size_t width = ThreadPool::shared().width();
  // Explicit requests pass through until a clamp bites: the item count
  // (this is the clamp documented on FlowOptions::threads — a 3-chip run
  // uses <= 3 workers no matter what was requested) or pool width + 1 (the
  // helpers plus the participating caller; more can never run at once).
  EXPECT_EQ(resolve_workers(5, 100), std::min<std::size_t>(5, width + 1));
  EXPECT_EQ(resolve_workers(5, 2), 2u);
  EXPECT_EQ(resolve_workers(1, 100), 1u);
  EXPECT_EQ(resolve_workers(1000, 4096), width + 1);
  // 0 = the shared-pool width, still clamped by the items.
  EXPECT_EQ(resolve_workers(0, 1000), width);
  EXPECT_EQ(resolve_workers(0, 3), std::min<std::size_t>(3, width));
  // Degenerate ranges still report one worker (the caller itself).
  EXPECT_EQ(resolve_workers(0, 0), 1u);
  EXPECT_EQ(resolve_workers(4, 0), 1u);
}

TEST(IndexSeed, MatchesDocumentedFormula) {
  const std::uint64_t base = 0x1234'5678'9abc'def0ULL;
  EXPECT_EQ(index_seed(base, 0), base ^ kSeedStride);
  EXPECT_EQ(index_seed(base, 6), base ^ (kSeedStride * 7));
}

TEST(DeterministicFor, SlotWritesBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 1000;
  const std::uint64_t seed = 2016;

  // Baseline: serial, each index draws from its own stream.
  std::vector<double> baseline(n);
  deterministic_for(n, with_threads(1), seed,
                    [&](std::size_t i, stats::Rng& rng) {
                      baseline[i] = rng.normal() * rng.uniform(0.5, 2.0);
                    });

  for (std::size_t t : kThreadCounts) {
    std::vector<double> got(n, 0.0);
    deterministic_for(n, with_threads(t), seed,
                      [&](std::size_t i, stats::Rng& rng) {
                        got[i] = rng.normal() * rng.uniform(0.5, 2.0);
                      });
    SCOPED_TRACE("threads = " + std::to_string(t));
    EXPECT_EQ(got, baseline);  // element-wise operator==: bit-identical
  }
}

TEST(DeterministicReduce, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  // Summing normals is exactly the shape where per-worker accumulation
  // would break bit-identity (float addition is not associative); the fixed
  // chunk layout must make the folded value identical for every count.
  const std::size_t n = 4097;  // not a multiple of the chunk count
  const std::uint64_t seed = 77;
  const auto body = [](std::size_t, stats::Rng& rng, double& acc) {
    acc += rng.normal();
  };
  const auto combine = [](double& a, const double& b) { a += b; };

  const double baseline =
      deterministic_reduce<double>(n, with_threads(1), seed, body, combine);
  for (std::size_t t : kThreadCounts) {
    const double got =
        deterministic_reduce<double>(n, with_threads(t), seed, body, combine);
    SCOPED_TRACE("threads = " + std::to_string(t));
    EXPECT_EQ(got, baseline);
  }
}

TEST(DeterministicFor, SeededStreamsAreSelfContainedPerIndex) {
  // Index i's draws must depend on (base, i) only — the per-chip contract.
  const std::uint64_t base = 99;
  std::vector<double> first_draw(8);
  deterministic_for(8, with_threads(3), base,
                    [&](std::size_t i, stats::Rng& rng) {
                      first_draw[i] = rng.normal();
                    });
  for (std::size_t i = 0; i < 8; ++i) {
    stats::Rng expected(index_seed(base, i));
    EXPECT_EQ(first_draw[i], expected.normal()) << "index " << i;
  }
}

TEST(DeterministicFor, EmptyRangeIsANoOpForEveryThreadCount) {
  for (std::size_t t : kThreadCounts) {
    SCOPED_TRACE("threads = " + std::to_string(t));
    bool called = false;
    deterministic_for(0, with_threads(t), [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);

    const double sum = deterministic_reduce<double>(
        0, with_threads(t), [](std::size_t, double&) {},
        [](double& a, const double& b) { a += b; });
    EXPECT_EQ(sum, 0.0);
  }
}

TEST(DeterministicFor, PropagatesBodyExceptionForEveryThreadCount) {
  for (std::size_t t : kThreadCounts) {
    SCOPED_TRACE("threads = " + std::to_string(t));
    try {
      deterministic_for(500, with_threads(t), [&](std::size_t i) {
        if (i == 137) throw std::runtime_error("boom at 137");
      });
      FAIL() << "expected the body exception to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 137");
    }

    // With several failing indices, the propagated exception must be the
    // serial order's first failure — lowest index wins, any worker count.
    try {
      deterministic_for(500, with_threads(t), [&](std::size_t i) {
        if (i == 137 || i == 42 || i == 499) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected the body exception to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 42");
    }

    // The pool must stay usable after a failed loop.
    std::size_t visited = deterministic_reduce<std::size_t>(
        100, with_threads(t),
        [](std::size_t, std::size_t& acc) { ++acc; },
        [](std::size_t& a, const std::size_t& b) { a += b; });
    EXPECT_EQ(visited, 100u);
  }
}

TEST(DeterministicFor, NestedLoopsDoNotDeadlockAndStayDeterministic) {
  // The campaign shape: an outer circuit fan-out whose bodies run their own
  // inner parallel loops on the same shared pool. The caller-participates
  // scheduling must make this both deadlock-free and bit-identical.
  const auto run = [](std::size_t outer_threads, std::size_t inner_threads) {
    std::vector<double> per_outer(6, 0.0);
    deterministic_for(6, with_threads(outer_threads), [&](std::size_t o) {
      per_outer[o] = deterministic_reduce<double>(
          400, with_threads(inner_threads), /*seed_base=*/o * 1000 + 1,
          [](std::size_t, stats::Rng& rng, double& acc) {
            acc += rng.normal();
          },
          [](double& a, const double& b) { a += b; });
    });
    return per_outer;
  };

  const std::vector<double> baseline = run(1, 1);
  EXPECT_EQ(run(4, 4), baseline);
  EXPECT_EQ(run(0, 0), baseline);
  EXPECT_EQ(run(2, 7), baseline);
}

}  // namespace
}  // namespace effitest::parallel
