#include "netlist/bench_parser.hpp"

#include <gtest/gtest.h>

#include <string>

#include "netlist/bench_writer.hpp"

namespace effitest::netlist {
namespace {

// A small s27-style sequential circuit in ISCAS89 format.
constexpr const char* kSmallBench = R"(
# toy sequential benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G8  = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9  = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G3  = BUFF(G0)
G17 = NOT(G11)
)";

TEST(BenchParser, ParsesSmallCircuit) {
  const Netlist nl = parse_bench_string(kSmallBench, "toy");
  EXPECT_EQ(nl.name(), "toy");
  EXPECT_EQ(nl.primary_inputs().size(), 3u);
  EXPECT_EQ(nl.num_flip_flops(), 3u);
  EXPECT_EQ(nl.num_combinational_gates(), 11u);
  EXPECT_TRUE(nl.cell(nl.find("G17")).is_primary_output);
}

TEST(BenchParser, GateTypesAndFanins) {
  const Netlist nl = parse_bench_string(kSmallBench);
  const Cell& g8 = nl.cell(nl.find("G8"));
  EXPECT_EQ(g8.type, CellType::kAnd);
  ASSERT_EQ(g8.fanins.size(), 2u);
  EXPECT_EQ(g8.fanins[0], nl.find("G14"));
  EXPECT_EQ(g8.fanins[1], nl.find("G6"));
  const Cell& dff = nl.cell(nl.find("G5"));
  EXPECT_EQ(dff.type, CellType::kDff);
  ASSERT_EQ(dff.fanins.size(), 1u);
  EXPECT_EQ(dff.fanins[0], nl.find("G10"));
}

TEST(BenchParser, ForwardReferencesResolved) {
  // G5 = DFF(G10) appears before G10 is defined.
  EXPECT_NO_THROW(parse_bench_string(kSmallBench));
}

TEST(BenchParser, CommentsAndBlankLinesIgnored) {
  const Netlist nl = parse_bench_string(
      "# only comments\n\nINPUT(a)  # trailing comment\n\nb = BUF(a)\n");
  EXPECT_EQ(nl.num_cells(), 2u);
}

TEST(BenchParser, PositionsAssigned) {
  const Netlist nl = parse_bench_string(kSmallBench);
  // Deeper gates sit further right than primary inputs.
  const Point pi = nl.cell(nl.find("G0")).position;
  const Point deep = nl.cell(nl.find("G9")).position;
  EXPECT_GT(deep.x, pi.x);
  for (const Cell& c : nl.cells()) {
    EXPECT_GE(c.position.x, 0.0);
    EXPECT_LE(c.position.x, 1.0);
    EXPECT_GE(c.position.y, 0.0);
    EXPECT_LE(c.position.y, 1.0);
  }
}

TEST(BenchParser, UndefinedSignalThrows) {
  EXPECT_THROW(parse_bench_string("a = NOT(ghost)\n"), BenchParseError);
}

TEST(BenchParser, UnknownTypeThrows) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nb = FROB(a)\n"), BenchParseError);
}

TEST(BenchParser, DuplicateDefinitionThrows) {
  EXPECT_THROW(
      parse_bench_string("INPUT(a)\nb = NOT(a)\nb = BUF(a)\n"),
      BenchParseError);
}

TEST(BenchParser, MalformedLineThrows) {
  EXPECT_THROW(parse_bench_string("INPUT a\n"), BenchParseError);
  EXPECT_THROW(parse_bench_string("x = NOT a)\n"), BenchParseError);
  EXPECT_THROW(parse_bench_string("x = NOT()\n"), BenchParseError);
}

TEST(BenchParser, UndefinedOutputThrows) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(ghost)\nb = NOT(a)\n"),
               BenchParseError);
}

TEST(BenchParser, ErrorCarriesLineNumber) {
  try {
    (void)parse_bench_string("INPUT(a)\nx = FROB(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line_number, 2u);
  }
}

TEST(BenchParser, MissingFileThrows) {
  EXPECT_THROW(parse_bench_file("/nonexistent/file.bench"), NetlistError);
}

TEST(BenchParser, ValidatedResult) {
  const Netlist nl = parse_bench_string(kSmallBench);
  EXPECT_NO_THROW(nl.validate());
}

// Real ISCAS89 distributions are DOS-formatted: CRLF line endings,
// trailing whitespace, sometimes a ^Z end-of-file marker or a UTF-8 BOM
// from a later re-encode. None of that may leak into signal names.
std::string to_crlf(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '\n') out += '\r';
    out += c;
  }
  return out;
}

TEST(BenchParser, CrlfLinesParseWithCleanSignalNames) {
  const Netlist unix_nl = parse_bench_string(kSmallBench, "toy");
  const Netlist dos_nl = parse_bench_string(to_crlf(kSmallBench), "toy");
  ASSERT_EQ(dos_nl.num_cells(), unix_nl.num_cells());
  for (std::size_t i = 0; i < dos_nl.num_cells(); ++i) {
    const std::string& name = dos_nl.cell(static_cast<int>(i)).name;
    EXPECT_EQ(name, unix_nl.cell(static_cast<int>(i)).name);
    EXPECT_EQ(name.find('\r'), std::string::npos) << name;
  }
  EXPECT_EQ(dos_nl.num_flip_flops(), unix_nl.num_flip_flops());
  EXPECT_TRUE(dos_nl.cell(dos_nl.find("G17")).is_primary_output);
}

TEST(BenchParser, TrailingWhitespaceAndPaddedArgsStripped) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)  \t\r\nOUTPUT(b)\t \r\nb = NOT( a )\t\r\n");
  EXPECT_EQ(nl.num_cells(), 2u);
  EXPECT_GE(nl.find("a"), 0);
  EXPECT_GE(nl.find("b"), 0);
}

TEST(BenchParser, DosEofMarkerIgnored) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\r\nOUTPUT(b)\r\nb = NOT(a)\r\n\x1a", "doseof");
  EXPECT_EQ(nl.num_cells(), 2u);
}

TEST(BenchParser, Utf8BomStripped) {
  const Netlist nl = parse_bench_string(
      "\xef\xbb\xbfINPUT(a)\nOUTPUT(b)\nb = NOT(a)\n", "bom");
  EXPECT_EQ(nl.num_cells(), 2u);
  EXPECT_GE(nl.find("a"), 0);
}

TEST(BenchParser, CrlfPlacementSidecarParses) {
  const Netlist nl = parse_bench_with_placement(
      "INPUT(a)\r\nOUTPUT(b)\r\nb = NOT(a)\r\n"
      "#!place a 0.25 0.75\r\n#!place b 0.5 0.5\r\n",
      "dosplace");
  EXPECT_DOUBLE_EQ(nl.cell(nl.find("a")).position.x, 0.25);
  EXPECT_DOUBLE_EQ(nl.cell(nl.find("a")).position.y, 0.75);
}

// Fuzz-found defects, pinned. Each case used to be accepted silently (or
// rejected without a line number) before the corpus-replay fuzz harness
// (tests/fuzz/fuzz_bench_parser) surfaced it.

TEST(BenchParser, ReversedParensAreRejectedNotMisparsed) {
  // close < open made the substr length wrap: "a = )AND(b" parsed the
  // argument list from the wrong slice instead of erroring.
  try {
    (void)parse_bench_string("INPUT(b)\na = )AND(b\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line_number, 2u);
    EXPECT_NE(std::string(e.what()).find("expected name = TYPE(args)"),
              std::string::npos)
        << e.what();
  }
}

TEST(BenchParser, EmptyLhsCarriesLineNumber) {
  // "= AND(a,b)" produced a nameless cell and failed later with a generic
  // NetlistError; now the parse rejects it where it happens.
  try {
    (void)parse_bench_string("INPUT(a)\nINPUT(b)\n= AND(a, b)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line_number, 3u);
    EXPECT_NE(std::string(e.what()).find("missing signal name"),
              std::string::npos)
        << e.what();
  }
}

TEST(BenchParser, TrailingTextAfterCloseParenIsRejected) {
  // Trailing junk was silently dropped — a mangled (e.g. line-merged) file
  // parsed as if nothing were wrong.
  EXPECT_THROW((void)parse_bench_string("INPUT(a) INPUT(b)\n"),
               BenchParseError);
  try {
    (void)parse_bench_string("INPUT(a)\nx = NOT(a) junk\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line_number, 2u);
    EXPECT_NE(std::string(e.what()).find("unexpected text after ')'"),
              std::string::npos)
        << e.what();
  }
}

TEST(BenchParser, DuplicateInputCarriesLineNumber) {
  // A repeated INPUT(a) hit Netlist::add_cell's generic duplicate error
  // with no line info; the parser now reports it like any gate duplicate.
  try {
    (void)parse_bench_string("INPUT(a)\nINPUT(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line_number, 2u);
    EXPECT_NE(std::string(e.what()).find("duplicate definition of a"),
              std::string::npos)
        << e.what();
  }
}

// Robustness sweep: mangled inputs must raise a structured error (never
// crash or silently mis-parse).
class BenchParserFuzzTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchParserFuzzTest, MalformedInputsThrowCleanly) {
  EXPECT_THROW(
      {
        try {
          (void)parse_bench_string(GetParam());
        } catch (const BenchParseError&) {
          throw;
        } catch (const NetlistError&) {
          throw;
        }
      },
      std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BenchParserFuzzTest,
    ::testing::Values(
        "G1 = (G0)\n",                       // missing type
        "INPUT(a)\na = NOT(a)\n",            // duplicate & self definition
        "INPUT(a)\nx = DFF(a, a)\n",         // DFF arity
        "INPUT(a)\n= NOT(a)\n",              // missing lhs
        "OUTPUT()\n",                        // empty output
        "INPUT(a)\nx = AND(a)\n",            // AND arity
        "INPUT(a)\nx = NOT(a\n",             // unclosed paren
        "x = NOT(y)\ny = NOT(x)\n",          // combinational cycle
        "INPUT(a)\nx = NOT(,)\n",            // empty args
        "garbage line\n"));                  // no structure at all

}  // namespace
}  // namespace effitest::netlist
