#include "netlist/bench_parser.hpp"

#include <gtest/gtest.h>

namespace effitest::netlist {
namespace {

// A small s27-style sequential circuit in ISCAS89 format.
constexpr const char* kSmallBench = R"(
# toy sequential benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G8  = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9  = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G3  = BUFF(G0)
G17 = NOT(G11)
)";

TEST(BenchParser, ParsesSmallCircuit) {
  const Netlist nl = parse_bench_string(kSmallBench, "toy");
  EXPECT_EQ(nl.name(), "toy");
  EXPECT_EQ(nl.primary_inputs().size(), 3u);
  EXPECT_EQ(nl.num_flip_flops(), 3u);
  EXPECT_EQ(nl.num_combinational_gates(), 11u);
  EXPECT_TRUE(nl.cell(nl.find("G17")).is_primary_output);
}

TEST(BenchParser, GateTypesAndFanins) {
  const Netlist nl = parse_bench_string(kSmallBench);
  const Cell& g8 = nl.cell(nl.find("G8"));
  EXPECT_EQ(g8.type, CellType::kAnd);
  ASSERT_EQ(g8.fanins.size(), 2u);
  EXPECT_EQ(g8.fanins[0], nl.find("G14"));
  EXPECT_EQ(g8.fanins[1], nl.find("G6"));
  const Cell& dff = nl.cell(nl.find("G5"));
  EXPECT_EQ(dff.type, CellType::kDff);
  ASSERT_EQ(dff.fanins.size(), 1u);
  EXPECT_EQ(dff.fanins[0], nl.find("G10"));
}

TEST(BenchParser, ForwardReferencesResolved) {
  // G5 = DFF(G10) appears before G10 is defined.
  EXPECT_NO_THROW(parse_bench_string(kSmallBench));
}

TEST(BenchParser, CommentsAndBlankLinesIgnored) {
  const Netlist nl = parse_bench_string(
      "# only comments\n\nINPUT(a)  # trailing comment\n\nb = BUF(a)\n");
  EXPECT_EQ(nl.num_cells(), 2u);
}

TEST(BenchParser, PositionsAssigned) {
  const Netlist nl = parse_bench_string(kSmallBench);
  // Deeper gates sit further right than primary inputs.
  const Point pi = nl.cell(nl.find("G0")).position;
  const Point deep = nl.cell(nl.find("G9")).position;
  EXPECT_GT(deep.x, pi.x);
  for (const Cell& c : nl.cells()) {
    EXPECT_GE(c.position.x, 0.0);
    EXPECT_LE(c.position.x, 1.0);
    EXPECT_GE(c.position.y, 0.0);
    EXPECT_LE(c.position.y, 1.0);
  }
}

TEST(BenchParser, UndefinedSignalThrows) {
  EXPECT_THROW(parse_bench_string("a = NOT(ghost)\n"), BenchParseError);
}

TEST(BenchParser, UnknownTypeThrows) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nb = FROB(a)\n"), BenchParseError);
}

TEST(BenchParser, DuplicateDefinitionThrows) {
  EXPECT_THROW(
      parse_bench_string("INPUT(a)\nb = NOT(a)\nb = BUF(a)\n"),
      BenchParseError);
}

TEST(BenchParser, MalformedLineThrows) {
  EXPECT_THROW(parse_bench_string("INPUT a\n"), BenchParseError);
  EXPECT_THROW(parse_bench_string("x = NOT a)\n"), BenchParseError);
  EXPECT_THROW(parse_bench_string("x = NOT()\n"), BenchParseError);
}

TEST(BenchParser, UndefinedOutputThrows) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(ghost)\nb = NOT(a)\n"),
               BenchParseError);
}

TEST(BenchParser, ErrorCarriesLineNumber) {
  try {
    (void)parse_bench_string("INPUT(a)\nx = FROB(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line_number, 2u);
  }
}

TEST(BenchParser, MissingFileThrows) {
  EXPECT_THROW(parse_bench_file("/nonexistent/file.bench"), NetlistError);
}

TEST(BenchParser, ValidatedResult) {
  const Netlist nl = parse_bench_string(kSmallBench);
  EXPECT_NO_THROW(nl.validate());
}

// Robustness sweep: mangled inputs must raise a structured error (never
// crash or silently mis-parse).
class BenchParserFuzzTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchParserFuzzTest, MalformedInputsThrowCleanly) {
  EXPECT_THROW(
      {
        try {
          (void)parse_bench_string(GetParam());
        } catch (const BenchParseError&) {
          throw;
        } catch (const NetlistError&) {
          throw;
        }
      },
      std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BenchParserFuzzTest,
    ::testing::Values(
        "G1 = (G0)\n",                       // missing type
        "INPUT(a)\na = NOT(a)\n",            // duplicate & self definition
        "INPUT(a)\nx = DFF(a, a)\n",         // DFF arity
        "INPUT(a)\n= NOT(a)\n",              // missing lhs
        "OUTPUT()\n",                        // empty output
        "INPUT(a)\nx = AND(a)\n",            // AND arity
        "INPUT(a)\nx = NOT(a\n",             // unclosed paren
        "x = NOT(y)\ny = NOT(x)\n",          // combinational cycle
        "INPUT(a)\nx = NOT(,)\n",            // empty args
        "garbage line\n"));                  // no structure at all

}  // namespace
}  // namespace effitest::netlist
