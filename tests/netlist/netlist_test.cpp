#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace effitest::netlist {
namespace {

Netlist small_pipeline() {
  // pi -> g1 -> ff1 -> g2 -> ff2
  Netlist nl("pipe");
  const int pi = nl.add_cell("pi", CellType::kInput);
  const int g1 = nl.add_cell("g1", CellType::kBuf, {pi});
  const int ff1 = nl.add_cell("ff1", CellType::kDff, {g1});
  const int g2 = nl.add_cell("g2", CellType::kNot, {ff1});
  nl.add_cell("ff2", CellType::kDff, {g2});
  return nl;
}

TEST(Netlist, AddAndFind) {
  Netlist nl;
  const int id = nl.add_cell("a", CellType::kInput);
  EXPECT_EQ(nl.find("a"), id);
  EXPECT_EQ(nl.find("missing"), -1);
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl;
  nl.add_cell("a", CellType::kInput);
  EXPECT_THROW(nl.add_cell("a", CellType::kInput), NetlistError);
}

TEST(Netlist, EmptyNameThrows) {
  Netlist nl;
  EXPECT_THROW(nl.add_cell("", CellType::kInput), NetlistError);
}

TEST(Netlist, BadFaninThrows) {
  Netlist nl;
  EXPECT_THROW(nl.add_cell("g", CellType::kBuf, {3}), NetlistError);
}

TEST(Netlist, CountsByKind) {
  const Netlist nl = small_pipeline();
  EXPECT_EQ(nl.num_cells(), 5u);
  EXPECT_EQ(nl.num_flip_flops(), 2u);
  EXPECT_EQ(nl.num_combinational_gates(), 2u);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
  EXPECT_EQ(nl.flip_flops().size(), 2u);
}

TEST(Netlist, Fanouts) {
  const Netlist nl = small_pipeline();
  const auto fan = nl.fanouts();
  const int pi = nl.find("pi");
  ASSERT_EQ(fan[static_cast<std::size_t>(pi)].size(), 1u);
  EXPECT_EQ(fan[static_cast<std::size_t>(pi)][0], nl.find("g1"));
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  const Netlist nl = small_pipeline();
  const std::vector<int> order = nl.topological_order();
  ASSERT_EQ(order.size(), nl.num_cells());
  std::vector<std::size_t> pos(nl.num_cells());
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = i;
  }
  // g1 after pi; g2 after ff1.
  EXPECT_GT(pos[static_cast<std::size_t>(nl.find("g1"))],
            pos[static_cast<std::size_t>(nl.find("pi"))]);
  EXPECT_GT(pos[static_cast<std::size_t>(nl.find("g2"))],
            pos[static_cast<std::size_t>(nl.find("ff1"))]);
}

TEST(Netlist, DffBreaksCycles) {
  // ff -> g -> ff (sequential loop) is legal.
  Netlist nl;
  const int ff = nl.add_cell("ff", CellType::kDff);
  const int g = nl.add_cell("g", CellType::kNot, {ff});
  nl.set_fanins(ff, {g});
  EXPECT_NO_THROW(nl.topological_order());
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const int a = nl.add_cell("a", CellType::kNot);
  const int b = nl.add_cell("b", CellType::kNot, {a});
  nl.set_fanins(a, {b});
  EXPECT_THROW(nl.topological_order(), NetlistError);
}

TEST(Netlist, ValidateFaninArity) {
  Netlist nl;
  const int pi = nl.add_cell("pi", CellType::kInput);
  nl.add_cell("bad_and", CellType::kAnd, {pi});  // needs >= 2
  EXPECT_THROW(nl.validate(), NetlistError);
}

TEST(Netlist, ValidateDffArity) {
  Netlist nl;
  nl.add_cell("ff", CellType::kDff);  // no D input
  EXPECT_THROW(nl.validate(), NetlistError);
}

TEST(Netlist, ValidateInputHasNoFanin) {
  Netlist nl;
  const int pi = nl.add_cell("pi", CellType::kInput);
  const int g = nl.add_cell("g", CellType::kBuf, {pi});
  Netlist nl2;
  const int x = nl2.add_cell("x", CellType::kBuf);
  (void)g;
  (void)x;
  // Give the INPUT a fanin through set_fanins and expect validate to fail.
  Netlist nl3;
  const int a = nl3.add_cell("a", CellType::kInput);
  const int bgate = nl3.add_cell("b", CellType::kBuf, {a});
  nl3.set_fanins(a, {bgate});
  EXPECT_THROW(nl3.validate(), NetlistError);
}

TEST(Netlist, PositionsStored) {
  Netlist nl;
  const int id = nl.add_cell("a", CellType::kInput, {}, Point{0.25, 0.75});
  EXPECT_DOUBLE_EQ(nl.cell(id).position.x, 0.25);
  nl.set_position(id, Point{0.5, 0.5});
  EXPECT_DOUBLE_EQ(nl.cell(id).position.y, 0.5);
}

TEST(Netlist, PrimaryOutputFlag) {
  Netlist nl = small_pipeline();
  const int g2 = nl.find("g2");
  EXPECT_FALSE(nl.cell(g2).is_primary_output);
  nl.mark_primary_output(g2);
  EXPECT_TRUE(nl.cell(g2).is_primary_output);
}

TEST(Netlist, ValidatePasses) {
  EXPECT_NO_THROW(small_pipeline().validate());
}

}  // namespace
}  // namespace effitest::netlist
