#include "netlist/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace effitest::netlist {
namespace {

GeneratorSpec tiny_spec() {
  GeneratorSpec s;
  s.name = "tiny";
  s.num_flip_flops = 60;
  s.num_gates = 700;
  s.num_buffers = 2;
  s.num_critical_paths = 20;
  s.seed = 5;
  return s;
}

TEST(Generator, MeetsRequestedCounts) {
  const GeneratedCircuit c = generate_circuit(tiny_spec());
  EXPECT_EQ(c.netlist.num_flip_flops(), 60u);
  EXPECT_EQ(c.buffered_ffs.size(), 2u);
  EXPECT_EQ(c.critical_edges.size(), 20u);
  // Gate count is padded to the target (allow the chain-granularity slack).
  EXPECT_GE(c.netlist.num_combinational_gates(), 700u);
  EXPECT_LE(c.netlist.num_combinational_gates(), 700u + 25u);
}

TEST(Generator, DeterministicInSeed) {
  const GeneratedCircuit a = generate_circuit(tiny_spec());
  const GeneratedCircuit b = generate_circuit(tiny_spec());
  EXPECT_EQ(a.netlist.num_cells(), b.netlist.num_cells());
  EXPECT_EQ(a.critical_edges, b.critical_edges);
  EXPECT_EQ(a.buffered_ffs, b.buffered_ffs);
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorSpec s2 = tiny_spec();
  s2.seed = 99;
  const GeneratedCircuit a = generate_circuit(tiny_spec());
  const GeneratedCircuit b = generate_circuit(s2);
  EXPECT_NE(a.critical_edges, b.critical_edges);
}

TEST(Generator, CriticalEdgesTouchBuffers) {
  const GeneratedCircuit c = generate_circuit(tiny_spec());
  const std::set<int> hubs(c.buffered_ffs.begin(), c.buffered_ffs.end());
  for (const auto& [src, dst] : c.critical_edges) {
    EXPECT_TRUE(hubs.contains(src) || hubs.contains(dst))
        << "edge " << src << "->" << dst << " touches no buffer";
  }
}

TEST(Generator, CriticalEdgesUnique) {
  const GeneratedCircuit c = generate_circuit(tiny_spec());
  std::set<std::pair<int, int>> seen(c.critical_edges.begin(),
                                     c.critical_edges.end());
  EXPECT_EQ(seen.size(), c.critical_edges.size());
}

TEST(Generator, BufferedCellsAreFlipFlops) {
  const GeneratedCircuit c = generate_circuit(tiny_spec());
  for (int ff : c.buffered_ffs) {
    EXPECT_EQ(c.netlist.cell(ff).type, CellType::kDff);
  }
}

TEST(Generator, HoldEdgesAreSubsetOfCriticalEdges) {
  GeneratorSpec s = tiny_spec();
  s.hold_edge_fraction = 0.5;
  const GeneratedCircuit c = generate_circuit(s);
  const std::set<std::pair<int, int>> critical(c.critical_edges.begin(),
                                               c.critical_edges.end());
  EXPECT_FALSE(c.hold_edges.empty());
  for (const auto& e : c.hold_edges) {
    EXPECT_TRUE(critical.contains(e));
  }
}

TEST(Generator, NetlistValidates) {
  EXPECT_NO_THROW(generate_circuit(tiny_spec()).netlist.validate());
}

TEST(Generator, PositionsInsideDie) {
  const GeneratedCircuit c = generate_circuit(tiny_spec());
  for (const Cell& cell : c.netlist.cells()) {
    EXPECT_GT(cell.position.x, 0.0);
    EXPECT_LT(cell.position.x, 1.0);
    EXPECT_GT(cell.position.y, 0.0);
    EXPECT_LT(cell.position.y, 1.0);
  }
}

TEST(Generator, RejectsInconsistentSpecs) {
  GeneratorSpec s = tiny_spec();
  s.num_buffers = 0;
  EXPECT_THROW(generate_circuit(s), NetlistError);
  s = tiny_spec();
  s.num_buffers = s.num_flip_flops + 1;
  EXPECT_THROW(generate_circuit(s), NetlistError);
  s = tiny_spec();
  s.num_critical_paths = 0;
  EXPECT_THROW(generate_circuit(s), NetlistError);
}

TEST(Generator, RejectsOverfullNp) {
  GeneratorSpec s = tiny_spec();
  s.num_flip_flops = 10;
  s.num_critical_paths = 500;  // cannot host distinct endpoints
  EXPECT_THROW(generate_circuit(s), NetlistError);
}

TEST(PaperBenchmarks, AllEightRowsPresent) {
  const std::vector<GeneratorSpec> specs = paper_benchmark_specs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "s9234");
  EXPECT_EQ(specs[7].name, "pci_bridge32");
  // Spot-check Table 1 statistics.
  EXPECT_EQ(specs[0].num_flip_flops, 211u);
  EXPECT_EQ(specs[0].num_gates, 5597u);
  EXPECT_EQ(specs[0].num_buffers, 2u);
  EXPECT_EQ(specs[0].num_critical_paths, 80u);
  EXPECT_EQ(specs[4].name, "mem_ctrl");
  EXPECT_EQ(specs[4].num_critical_paths, 3016u);
}

TEST(PaperBenchmarks, LookupByName) {
  const GeneratorSpec s = paper_benchmark_spec("usb_funct");
  EXPECT_EQ(s.num_buffers, 17u);
  EXPECT_THROW(paper_benchmark_spec("nonexistent"), NetlistError);
}

TEST(PaperBenchmarks, SmallRowsGenerate) {
  // Generating the small ISCAS89 rows end-to-end must respect ns/np exactly.
  for (const char* name : {"s9234", "s13207"}) {
    const GeneratorSpec spec = paper_benchmark_spec(name);
    const GeneratedCircuit c = generate_circuit(spec);
    EXPECT_EQ(c.netlist.num_flip_flops(), spec.num_flip_flops) << name;
    EXPECT_EQ(c.critical_edges.size(), spec.num_critical_paths) << name;
    EXPECT_EQ(c.buffered_ffs.size(), spec.num_buffers) << name;
    const double ng = static_cast<double>(c.netlist.num_combinational_gates());
    EXPECT_NEAR(ng, static_cast<double>(spec.num_gates),
                0.05 * static_cast<double>(spec.num_gates))
        << name;
  }
}

}  // namespace
}  // namespace effitest::netlist
