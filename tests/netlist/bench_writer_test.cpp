#include "netlist/bench_writer.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"

namespace effitest::netlist {
namespace {

Netlist small() {
  Netlist nl("small");
  const int a = nl.add_cell("a", CellType::kInput, {}, Point{0.1, 0.2});
  const int b = nl.add_cell("b", CellType::kInput, {}, Point{0.3, 0.4});
  const int g1 = nl.add_cell("g1", CellType::kNand, {a, b}, Point{0.5, 0.5});
  const int ff = nl.add_cell("ff", CellType::kDff, {g1}, Point{0.6, 0.6});
  const int g2 = nl.add_cell("g2", CellType::kNot, {ff}, Point{0.7, 0.7});
  nl.mark_primary_output(g2);
  return nl;
}

TEST(BenchWriter, EmitsAllSections) {
  const std::string text = write_bench_string(small());
  EXPECT_NE(text.find("INPUT(a)"), std::string::npos);
  EXPECT_NE(text.find("INPUT(b)"), std::string::npos);
  EXPECT_NE(text.find("OUTPUT(g2)"), std::string::npos);
  EXPECT_NE(text.find("g1 = NAND(a, b)"), std::string::npos);
  EXPECT_NE(text.find("ff = DFF(g1)"), std::string::npos);
  EXPECT_NE(text.find("g2 = NOT(ff)"), std::string::npos);
  EXPECT_NE(text.find("#!place g1"), std::string::npos);
}

TEST(BenchWriter, RoundTripPreservesStructure) {
  const Netlist original = small();
  const Netlist parsed =
      parse_bench_string(write_bench_string(original), "small");
  EXPECT_EQ(parsed.num_cells(), original.num_cells());
  EXPECT_EQ(parsed.num_flip_flops(), original.num_flip_flops());
  EXPECT_EQ(parsed.num_combinational_gates(),
            original.num_combinational_gates());
  for (const Cell& c : original.cells()) {
    const int id = parsed.find(c.name);
    ASSERT_GE(id, 0) << c.name;
    EXPECT_EQ(parsed.cell(id).type, c.type) << c.name;
    EXPECT_EQ(parsed.cell(id).fanins.size(), c.fanins.size()) << c.name;
    EXPECT_EQ(parsed.cell(id).is_primary_output, c.is_primary_output);
  }
}

TEST(BenchWriter, PlacementRoundTrip) {
  const Netlist original = small();
  const Netlist parsed =
      parse_bench_with_placement(write_bench_string(original), "small");
  for (const Cell& c : original.cells()) {
    const Cell& p = parsed.cell(parsed.find(c.name));
    EXPECT_NEAR(p.position.x, c.position.x, 1e-9) << c.name;
    EXPECT_NEAR(p.position.y, c.position.y, 1e-9) << c.name;
  }
}

TEST(BenchWriter, PlacementOptionalOff) {
  BenchWriteOptions opts;
  opts.include_placement = false;
  opts.include_header = false;
  const std::string text = write_bench_string(small(), opts);
  EXPECT_EQ(text.find("#!place"), std::string::npos);
  EXPECT_EQ(text.find("# small"), std::string::npos);
}

TEST(BenchWriter, GeneratedCircuitRoundTrips) {
  GeneratorSpec spec;
  spec.num_flip_flops = 40;
  spec.num_gates = 400;
  spec.num_buffers = 2;
  spec.num_critical_paths = 12;
  spec.seed = 3;
  const GeneratedCircuit gen = generate_circuit(spec);
  const std::string text = write_bench_string(gen.netlist);
  const Netlist parsed = parse_bench_with_placement(text, "roundtrip");
  EXPECT_EQ(parsed.num_cells(), gen.netlist.num_cells());
  EXPECT_NO_THROW(parsed.validate());
  // Spot-check positions survive (needed to reproduce the timing model).
  for (int ff : gen.buffered_ffs) {
    const Cell& orig = gen.netlist.cell(ff);
    const Cell& back = parsed.cell(parsed.find(orig.name));
    EXPECT_NEAR(back.position.x, orig.position.x, 1e-9);
  }
}

TEST(BenchWriter, MalformedPlacementLineThrows) {
  EXPECT_THROW(
      parse_bench_with_placement("INPUT(a)\nb = NOT(a)\n#!place b oops\n"),
      NetlistError);
  EXPECT_THROW(
      parse_bench_with_placement("INPUT(a)\nb = NOT(a)\n#!place ghost 0 0\n"),
      NetlistError);
}

TEST(BenchWriter, FileIo) {
  const Netlist original = small();
  const std::string path = "/tmp/effitest_writer_test.bench";
  write_bench_file(original, path);
  const Netlist parsed = parse_bench_file(path);
  EXPECT_EQ(parsed.num_cells(), original.num_cells());
  EXPECT_THROW(write_bench_file(original, "/nonexistent/dir/x.bench"),
               NetlistError);
}

}  // namespace
}  // namespace effitest::netlist
