#include "netlist/cell.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace effitest::netlist {
namespace {

TEST(CellType, TokenParsingCaseInsensitive) {
  EXPECT_EQ(cell_type_from_token("NAND"), CellType::kNand);
  EXPECT_EQ(cell_type_from_token("nand"), CellType::kNand);
  EXPECT_EQ(cell_type_from_token("Dff"), CellType::kDff);
  EXPECT_EQ(cell_type_from_token("BUFF"), CellType::kBuf);
  EXPECT_EQ(cell_type_from_token("BUF"), CellType::kBuf);
  EXPECT_EQ(cell_type_from_token("INV"), CellType::kNot);
  EXPECT_EQ(cell_type_from_token("NOT"), CellType::kNot);
  EXPECT_EQ(cell_type_from_token("XNOR"), CellType::kXnor);
  EXPECT_EQ(cell_type_from_token("bogus"), std::nullopt);
}

TEST(CellType, RoundTripThroughString) {
  for (CellType t : {CellType::kInput, CellType::kOutput, CellType::kDff,
                     CellType::kBuf, CellType::kNot, CellType::kAnd,
                     CellType::kNand, CellType::kOr, CellType::kNor,
                     CellType::kXor, CellType::kXnor}) {
    EXPECT_EQ(cell_type_from_token(std::string(to_string(t))), t);
  }
}

TEST(CellType, IsCombinational) {
  EXPECT_FALSE(is_combinational(CellType::kInput));
  EXPECT_FALSE(is_combinational(CellType::kOutput));
  EXPECT_FALSE(is_combinational(CellType::kDff));
  EXPECT_TRUE(is_combinational(CellType::kNand));
  EXPECT_TRUE(is_combinational(CellType::kBuf));
}

TEST(CellLibrary, StandardDelaysPositiveForGates) {
  const CellLibrary lib = CellLibrary::standard();
  for (CellType t : {CellType::kDff, CellType::kBuf, CellType::kNot,
                     CellType::kAnd, CellType::kNand, CellType::kOr,
                     CellType::kNor, CellType::kXor, CellType::kXnor}) {
    EXPECT_GT(lib.timing(t).nominal_delay_ps, 0.0);
    EXPECT_GT(lib.timing(t).sens_length, 0.0);
  }
  EXPECT_DOUBLE_EQ(lib.timing(CellType::kInput).nominal_delay_ps, 0.0);
}

TEST(CellLibrary, SequentialMargins) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_GT(lib.dff_setup_ps(), 0.0);
  EXPECT_GT(lib.dff_hold_ps(), 0.0);
  EXPECT_GT(lib.dff_clk_to_q_ps(), 0.0);
}

TEST(CellLibrary, GateSigmaAroundSixPercent) {
  // DESIGN.md calibration: total delay sigma ~6% of nominal under the
  // paper's parameter sigmas.
  const CellLibrary lib = CellLibrary::standard();
  for (CellType t : {CellType::kNand, CellType::kNot, CellType::kAnd}) {
    const CellTiming& c = lib.timing(t);
    const double var = c.sens_length * 0.157 * c.sens_length * 0.157 +
                       c.sens_tox * 0.053 * c.sens_tox * 0.053 +
                       c.sens_vth * 0.044 * c.sens_vth * 0.044;
    const double sigma_frac = std::sqrt(var);
    EXPECT_GT(sigma_frac, 0.04);
    EXPECT_LT(sigma_frac, 0.09);
  }
}

}  // namespace
}  // namespace effitest::netlist
