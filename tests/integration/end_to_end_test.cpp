// End-to-end reproduction checks: the qualitative shapes the paper reports
// must hold on generated paper-scale circuits (exact magnitudes depend on
// the synthetic substrate and are recorded in EXPERIMENTS.md).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/flow.hpp"
#include "core/tuner_service.hpp"
#include "netlist/bench_parser.hpp"
#include "netlist/generator.hpp"

namespace effitest::core {
namespace {

FlowResult run_paper_circuit(const std::string& name, FlowOptions opts,
                             double inflation = 1.0) {
  const netlist::GeneratorSpec spec = netlist::paper_benchmark_spec(name);
  const netlist::GeneratedCircuit circuit = netlist::generate_circuit(spec);
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::ModelOptions mopts;
  mopts.random_inflation = inflation;
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs,
                                   mopts);
  const Problem problem(model);
  return run_flow(problem, opts);
}

TEST(EndToEnd, S9234ReproducesHeadlineShapes) {
  FlowOptions opts;
  opts.chips = 60;
  opts.seed = 2016;
  const FlowResult r = run_paper_circuit("s9234", opts);
  const FlowMetrics& m = r.metrics;

  // Table 1 row shape: np published as 80; npt a small fraction of np;
  // iteration reduction per chip above 90%.
  EXPECT_EQ(m.np, 80u);
  EXPECT_LT(m.npt, m.np / 2);
  EXPECT_GT(m.ra, 90.0);
  EXPECT_GT(m.rv, 20.0);
  EXPECT_LT(m.tv, m.tv_pathwise);

  // Table 2 shape at T1: untuned ~50%, tuning helps, proposed close to
  // ideal (small yield drop).
  EXPECT_NEAR(m.yield_no_buffer, 0.5, 0.20);
  EXPECT_GT(m.yield_ideal, m.yield_no_buffer);
  EXPECT_GE(m.yield_proposed, m.yield_ideal - 0.10);
  EXPECT_LE(m.yield_proposed, m.yield_ideal + 1e-9);
}

TEST(EndToEnd, S13207ReproducesHeadlineShapes) {
  FlowOptions opts;
  opts.chips = 40;
  opts.seed = 2016;
  const FlowResult r = run_paper_circuit("s13207", opts);
  const FlowMetrics& m = r.metrics;
  EXPECT_EQ(m.np, 485u);
  EXPECT_LT(m.npt, m.np / 5);
  EXPECT_GT(m.ra, 94.0);
  EXPECT_GT(m.rv, 40.0);
  EXPECT_GT(m.yield_ideal, m.yield_no_buffer);
}

TEST(EndToEnd, Figure8OrderingHolds) {
  // Path-wise > multiplexing-only > proposed, per tested path.
  const netlist::GeneratorSpec spec = netlist::paper_benchmark_spec("s9234");
  const netlist::GeneratedCircuit circuit = netlist::generate_circuit(spec);
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  FlowOptions base;
  base.chips = 25;
  base.seed = 99;
  base.use_prediction = false;  // Fig. 8: no statistical prediction
  base.evaluate_yield = false;

  FlowOptions frozen = base;
  frozen.test.align_with_buffers = false;
  const FlowResult mux_only = run_flow(problem, frozen);
  const FlowResult proposed = run_flow(problem, base);

  const double pathwise = mux_only.metrics.tv_pathwise;
  const double mux = mux_only.metrics.tv;
  const double aligned = proposed.metrics.tv;
  EXPECT_LT(mux, pathwise);
  EXPECT_LT(aligned, mux);
}

TEST(EndToEnd, Figure7InflationWidensIdealGap) {
  // Enlarged random variation: yields still improve with buffers, but the
  // proposed method loses more versus ideal than in the nominal case.
  FlowOptions opts;
  opts.chips = 60;
  opts.seed = 7;
  const FlowResult nominal = run_paper_circuit("s9234", opts);
  const FlowResult inflated = run_paper_circuit("s9234", opts, 1.1);

  EXPECT_GT(inflated.metrics.yield_ideal,
            inflated.metrics.yield_no_buffer - 0.02);
  // Proposed stays within a sane distance of ideal even inflated.
  EXPECT_GE(inflated.metrics.yield_proposed,
            inflated.metrics.yield_ideal - 0.25);
  (void)nominal;
}

TEST(EndToEnd, PredictionAccuracyOnTrueDelays) {
  // The conditional predictor's 3-sigma band must cover the true delays of
  // untested paths for the vast majority of chips.
  const netlist::GeneratorSpec spec = netlist::paper_benchmark_spec("s9234");
  const netlist::GeneratedCircuit circuit = netlist::generate_circuit(spec);
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  FlowOptions opts;
  stats::Rng rng(11);
  const FlowArtifacts art = prepare_flow(problem, opts, rng);
  if (!art.predictor) GTEST_SKIP() << "everything tested";

  TestOptions topts;
  topts.epsilon_ps = calibrated_epsilon(problem);
  stats::Rng chip_rng(12);
  std::size_t covered = 0;
  std::size_t total = 0;
  for (int c = 0; c < 20; ++c) {
    const timing::Chip chip = model.sample_chip(chip_rng);
    SimulatedChip tester(problem, chip);
    const TestRunResult tr =
        run_delay_test(problem, tester, art.batches, art.prior_lower,
                       art.prior_upper, art.hold, topts);
    std::vector<double> ml(art.tested.size());
    std::vector<double> mu(art.tested.size());
    for (std::size_t t = 0; t < art.tested.size(); ++t) {
      ml[t] = tr.lower[art.tested[t]];
      mu[t] = tr.upper[art.tested[t]];
    }
    const DelayBounds bounds = art.predictor->predict(ml, mu);
    for (std::size_t p : art.predictor->predicted_indices()) {
      ++total;
      if (chip.max_delay[p] >= bounds.lower[p] - 1e-9 &&
          chip.max_delay[p] <= bounds.upper[p] + 1e-9) {
        ++covered;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(covered) / static_cast<double>(total), 0.95);
}

TEST(EndToEnd, ParsedBenchCircuitRunsThroughPipeline) {
  // The ISCAS89 front end feeds the identical flow: build a small .bench
  // circuit, pick buffered FFs, and run everything.
  const netlist::Netlist nl = netlist::parse_bench_string(R"(
INPUT(i0)
INPUT(i1)
f0 = DFF(c2)
f1 = DFF(c5)
f2 = DFF(c8)
c0 = NAND(f2, i0)
c1 = NOT(c0)
c2 = AND(c1, i1)
c3 = NOT(f0)
c4 = NAND(c3, i0)
c5 = BUFF(c4)
c6 = NOR(f1, i1)
c7 = NOT(c6)
c8 = AND(c7, i0)
OUTPUT(c8)
)",
                                                          "mini");
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const std::vector<int> buffers{nl.find("f0"), nl.find("f1")};
  const timing::CircuitModel model(nl, lib, buffers);
  EXPECT_GT(model.num_pairs(), 0u);
  const Problem problem(model);
  FlowOptions opts;
  opts.chips = 15;
  opts.hold.samples = 50;
  const FlowResult r = run_flow(problem, opts);
  EXPECT_GT(r.metrics.ta, 0.0);
  EXPECT_LE(r.metrics.ta, r.metrics.ta_pathwise);
}

}  // namespace
}  // namespace effitest::core
