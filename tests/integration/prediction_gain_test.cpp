// The FlowArtifacts-cached PredictionGain contract: the gain (Cholesky of
// Sigma_t + W + posterior sigmas) is a pure function of (covariance,
// measured set), computed once during offline preparation and shared — so
// predicting through the cached object must be byte-identical to rebuilding
// the predictor from scratch, per chip and at the FlowMetrics level.

#include <gtest/gtest.h>

#include <cstring>

#include "core/flow.hpp"
#include "core/predictor.hpp"
#include "netlist/generator.hpp"
#include "stats/conditional.hpp"
#include "timing/model.hpp"

namespace effitest::core {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;

  Fixture()
      : circuit(netlist::generate_circuit(
            netlist::paper_benchmark_spec("s9234"))),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}
};

void expect_metrics_identical(const FlowMetrics& a, const FlowMetrics& b) {
  EXPECT_EQ(a.npt, b.npt);
  EXPECT_EQ(a.num_groups, b.num_groups);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.num_selected, b.num_selected);
  EXPECT_EQ(a.forced_resolutions, b.forced_resolutions);
  EXPECT_EQ(a.infeasible_configs, b.infeasible_configs);
  EXPECT_EQ(a.designated_period, b.designated_period);
  EXPECT_EQ(a.epsilon_ps, b.epsilon_ps);
  EXPECT_EQ(a.ta, b.ta);
  EXPECT_EQ(a.tv, b.tv);
  EXPECT_EQ(a.ta_pathwise, b.ta_pathwise);
  EXPECT_EQ(a.tv_pathwise, b.tv_pathwise);
  EXPECT_EQ(a.ra, b.ra);
  EXPECT_EQ(a.rv, b.rv);
  EXPECT_EQ(a.yield_no_buffer, b.yield_no_buffer);
  EXPECT_EQ(a.yield_ideal, b.yield_ideal);
  EXPECT_EQ(a.yield_proposed, b.yield_proposed);
  EXPECT_EQ(a.yield_drop, b.yield_drop);
}

TEST(PredictionGain, SharedPredictorMatchesFreshRebuildPerChip) {
  Fixture f;
  FlowOptions opts;
  opts.chips = 20;
  opts.seed = 99;
  stats::Rng prep_rng(opts.seed);
  const FlowArtifacts art = prepare_flow(f.problem, opts, prep_rng);
  ASSERT_TRUE(art.predictor.has_value());

  // Rebuild the predictor from scratch exactly as a per-chip rebuild would:
  // same covariance, same measured set, fresh factorization.
  const linalg::Matrix cov = f.model.max_covariance();
  const DelayPredictor rebuilt(cov, f.model.max_means(), art.tested);

  // The chip-independent pieces must agree bit-for-bit.
  const auto& cached = *art.predictor;
  ASSERT_EQ(cached.tested_indices(), rebuilt.tested_indices());
  ASSERT_EQ(cached.predicted_indices(), rebuilt.predicted_indices());
  ASSERT_EQ(cached.posterior_sigma().size(), rebuilt.posterior_sigma().size());
  for (std::size_t k = 0; k < cached.posterior_sigma().size(); ++k) {
    ASSERT_EQ(cached.posterior_sigma()[k], rebuilt.posterior_sigma()[k]);
  }

  // And the per-chip prediction through both objects.
  stats::Rng chip_rng(1234);
  for (int c = 0; c < 5; ++c) {
    const timing::Chip chip = f.model.sample_chip(chip_rng);
    std::vector<double> ml(art.tested.size());
    std::vector<double> mu(art.tested.size());
    for (std::size_t t = 0; t < art.tested.size(); ++t) {
      ml[t] = chip.max_delay[art.tested[t]] - 0.25;
      mu[t] = chip.max_delay[art.tested[t]] + 0.25;
    }
    const DelayBounds a = cached.predict(ml, mu);
    const DelayBounds b = rebuilt.predict(ml, mu);
    ASSERT_EQ(a.lower.size(), b.lower.size());
    ASSERT_EQ(0, std::memcmp(a.lower.data(), b.lower.data(),
                             a.lower.size() * sizeof(double)));
    ASSERT_EQ(0, std::memcmp(a.upper.data(), b.upper.data(),
                             a.upper.size() * sizeof(double)));
  }
}

TEST(PredictionGain, AdoptedGainSharesInsteadOfCopying) {
  Fixture f;
  const linalg::Matrix cov = f.model.max_covariance();
  std::vector<std::size_t> tested;
  for (std::size_t p = 0; p < f.model.num_pairs(); p += 5) tested.push_back(p);
  const DelayPredictor original(cov, f.model.max_means(), tested);

  // Adoption and copy both alias the same immutable PredictionGain.
  const DelayPredictor adopted(original.shared_gain(), f.model.max_means());
  EXPECT_EQ(adopted.shared_gain().get(), original.shared_gain().get());
  const DelayPredictor copy = original;
  EXPECT_EQ(copy.shared_gain().get(), original.shared_gain().get());
  EXPECT_GE(original.shared_gain().use_count(), 3);
}

TEST(PredictionGain, CachedFlowMetricsMatchRebuiltFlowMetrics) {
  // run_flow over reused artifacts (the cached-gain path shared by every
  // chip and campaign job) versus a from-scratch preparation: byte-identical
  // FlowMetrics, preparation wall time excepted.
  Fixture f;
  FlowOptions opts;
  opts.chips = 60;
  opts.seed = 7;
  const FlowResult fresh = run_flow(f.problem, opts);
  const FlowResult cached = run_flow(f.problem, opts, fresh.artifacts.get());
  expect_metrics_identical(fresh.metrics, cached.metrics);

  // The reused artifacts alias the same gain object — reuse shares, it does
  // not refactorize or deep-copy.
  ASSERT_TRUE(fresh.artifacts->predictor.has_value());
  ASSERT_TRUE(cached.artifacts->predictor.has_value());
  EXPECT_EQ(fresh.artifacts->predictor->shared_gain().get(),
            cached.artifacts->predictor->shared_gain().get());
}

}  // namespace
}  // namespace effitest::core
