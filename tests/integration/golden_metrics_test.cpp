// Golden-metrics regression lock. A small fixed-seed run_flow over a
// generated circuit pins the FlowMetrics fields to recorded values, so any
// refactor that silently changes numerical results — a reordered reduction,
// a reseeded stream, an off-by-one in the chunking — fails tier-1 instead
// of drifting unnoticed. Companion to the relative checks in
// flow_reuse_test.cpp (those catch thread-variance, this catches "all
// thread counts changed together").
//
// The exact values depend on the standard library's distribution
// implementations (std::normal_distribution is implementation-defined), so
// they are recorded for libstdc++ — the library both CI toolchains use —
// and degrade to sanity ranges elsewhere.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "netlist/generator.hpp"
#include "timing/model.hpp"

namespace effitest::core {
namespace {

TEST(GoldenMetrics, SmallFixedSeedFlowPinsRecordedValues) {
  const netlist::GeneratedCircuit circuit =
      netlist::generate_circuit(netlist::paper_benchmark_spec("s9234"));
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  FlowOptions opts;
  opts.chips = 200;
  opts.seed = 2016;
  opts.threads = 0;  // pool width — the determinism contract makes this moot
  const FlowResult result = run_flow(problem, opts);
  const FlowMetrics& m = result.metrics;

  // Structure-independent sanity first (any platform).
  EXPECT_EQ(m.np, 80u);
  EXPECT_GT(m.npt, 0u);
  EXPECT_LT(m.npt, m.np);
  EXPECT_GT(m.ta, 0.0);
  EXPECT_LT(m.ta, m.ta_pathwise);
  EXPECT_GE(m.yield_ideal, m.yield_proposed);

#if defined(__GLIBCXX__)
  // Recorded golden values (libstdc++, any architecture/thread count).
  EXPECT_EQ(m.npt, 6u);
  EXPECT_EQ(m.num_groups, 5u);
  EXPECT_EQ(m.num_batches, 2u);
  EXPECT_EQ(m.num_selected, 6u);
  EXPECT_EQ(m.forced_resolutions, 0u);
  EXPECT_EQ(m.infeasible_configs, 61u);
  EXPECT_DOUBLE_EQ(m.designated_period, 201.35397360312572);
  EXPECT_DOUBLE_EQ(m.epsilon_ps, 0.17228543250136971);
  EXPECT_DOUBLE_EQ(m.ta, 26.59);
  EXPECT_DOUBLE_EQ(m.tv, 4.4316666666666666);
  EXPECT_DOUBLE_EQ(m.ta_pathwise, 720.0);
  EXPECT_DOUBLE_EQ(m.yield_no_buffer, 0.475);
  EXPECT_DOUBLE_EQ(m.yield_ideal, 0.67);
  EXPECT_DOUBLE_EQ(m.yield_proposed, 0.64);
#endif
}

TEST(GoldenMetrics, ParallelCovarianceFillMatchesSerialReference) {
  // A spec large enough to cross the covariance fill's serial_below
  // threshold (256 rows), so the pool actually fans the triangle out; every
  // cell must still equal the serial pure-function evaluation bit-for-bit.
  netlist::GeneratorSpec spec = netlist::paper_benchmark_spec("s9234");
  spec.num_critical_paths = 320;
  spec.num_buffers = 4;
  const netlist::GeneratedCircuit circuit = netlist::generate_circuit(spec);
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);

  const std::size_t n = model.num_pairs();
  ASSERT_GE(n, 256u);
  const linalg::Matrix cov = model.max_covariance();
  const linalg::Matrix cov_again = model.max_covariance();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double expected = model.max_cov(i, j);
      ASSERT_EQ(cov(i, j), expected) << "cell " << i << "," << j;
      ASSERT_EQ(cov(j, i), expected) << "mirror " << i << "," << j;
      ASSERT_EQ(cov_again(i, j), expected) << "rerun " << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace effitest::core
