#include "core/flow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/generator.hpp"

namespace effitest::core {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;

  explicit Fixture(std::uint64_t seed = 42)
      : circuit(netlist::generate_circuit([&] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 60;
          s.num_gates = 800;
          s.num_buffers = 2;
          s.num_critical_paths = 24;
          s.seed = seed;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}
};

TEST(PrepareFlow, ArtifactsConsistent) {
  Fixture f;
  stats::Rng rng(1);
  FlowOptions opts;
  const FlowArtifacts art = prepare_flow(f.problem, opts, rng);

  // Priors are mu +/- 3 sigma.
  const auto means = f.model.max_means();
  const auto sigmas = f.model.max_sigmas();
  for (std::size_t p = 0; p < f.model.num_pairs(); ++p) {
    EXPECT_NEAR(art.prior_lower[p], means[p] - 3.0 * sigmas[p], 1e-9);
    EXPECT_NEAR(art.prior_upper[p], means[p] + 3.0 * sigmas[p], 1e-9);
  }

  // Tested = sorted union of batch contents.
  std::vector<std::size_t> from_batches;
  for (const Batch& b : art.batches) {
    from_batches.insert(from_batches.end(), b.paths.begin(), b.paths.end());
  }
  std::sort(from_batches.begin(), from_batches.end());
  EXPECT_EQ(art.tested, from_batches);
  EXPECT_TRUE(std::is_sorted(art.tested.begin(), art.tested.end()));

  // A predictor exists iff some paths are untested.
  EXPECT_EQ(art.predictor.has_value(),
            art.tested.size() < f.model.num_pairs());
}

TEST(PrepareFlow, NoPredictionTestsEverything) {
  Fixture f;
  stats::Rng rng(2);
  FlowOptions opts;
  opts.use_prediction = false;
  const FlowArtifacts art = prepare_flow(f.problem, opts, rng);
  EXPECT_EQ(art.tested.size(), f.model.num_pairs());
  EXPECT_FALSE(art.predictor.has_value());
}

TEST(PrepareFlow, SlotFillingExpandsTestedSet) {
  Fixture f;
  stats::Rng r1(3);
  stats::Rng r2(3);
  FlowOptions with_fill;
  with_fill.fill_slots = true;
  FlowOptions without_fill;
  without_fill.fill_slots = false;
  const FlowArtifacts a = prepare_flow(f.problem, with_fill, r1);
  const FlowArtifacts b = prepare_flow(f.problem, without_fill, r2);
  EXPECT_GE(a.tested.size(), b.tested.size());
  EXPECT_EQ(b.tested.size(), b.selection.tested.size());
}

TEST(CalibratedEpsilon, TracksSigmaScale) {
  Fixture f;
  const double eps = calibrated_epsilon(f.problem);
  EXPECT_GT(eps, 0.0);
  // 6 sigma_med / 2^8.5: implies ~8-9 path-wise iterations.
  const auto sigmas = f.model.max_sigmas();
  std::vector<double> sorted = sigmas;
  std::sort(sorted.begin(), sorted.end());
  const double med = sorted[sorted.size() / 2];
  const std::size_t iters = pathwise_iterations(-3.0 * med, 3.0 * med, eps);
  EXPECT_GE(iters, 8u);
  EXPECT_LE(iters, 10u);
}

TEST(RunFlow, MetricsInternallyConsistent) {
  Fixture f;
  FlowOptions opts;
  opts.chips = 40;
  opts.seed = 5;
  const FlowResult r = run_flow(f.problem, opts);
  const FlowMetrics& m = r.metrics;

  EXPECT_EQ(m.np, f.model.num_pairs());
  EXPECT_EQ(m.npt, r.artifacts->tested.size());
  EXPECT_GT(m.npt, 0u);
  EXPECT_LE(m.npt, m.np);
  EXPECT_GT(m.num_batches, 0u);
  EXPECT_GT(m.designated_period, 0.0);
  EXPECT_GT(m.epsilon_ps, 0.0);

  EXPECT_NEAR(m.tv, m.ta / static_cast<double>(m.npt), 1e-9);
  EXPECT_NEAR(m.tv_pathwise, m.ta_pathwise / static_cast<double>(m.np), 1e-9);
  EXPECT_NEAR(m.ra, (m.ta_pathwise - m.ta) / m.ta_pathwise * 100.0, 1e-9);
  EXPECT_NEAR(m.yield_drop, m.yield_ideal - m.yield_proposed, 1e-12);

  // Yields are probabilities.
  for (double y : {m.yield_no_buffer, m.yield_ideal, m.yield_proposed}) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

TEST(RunFlow, DeterministicInSeed) {
  Fixture f;
  FlowOptions opts;
  opts.chips = 20;
  opts.seed = 6;
  const FlowResult a = run_flow(f.problem, opts);
  const FlowResult b = run_flow(f.problem, opts);
  EXPECT_DOUBLE_EQ(a.metrics.ta, b.metrics.ta);
  EXPECT_DOUBLE_EQ(a.metrics.yield_proposed, b.metrics.yield_proposed);
  EXPECT_DOUBLE_EQ(a.metrics.designated_period, b.metrics.designated_period);
}

TEST(RunFlow, ExplicitPeriodHonored) {
  Fixture f;
  FlowOptions opts;
  opts.chips = 10;
  opts.designated_period = 500.0;  // very generous
  const FlowResult r = run_flow(f.problem, opts);
  EXPECT_DOUBLE_EQ(r.metrics.designated_period, 500.0);
  // Everything passes at an absurdly long period.
  EXPECT_DOUBLE_EQ(r.metrics.yield_no_buffer, 1.0);
  EXPECT_DOUBLE_EQ(r.metrics.yield_ideal, 1.0);
  EXPECT_DOUBLE_EQ(r.metrics.yield_proposed, 1.0);
}

TEST(RunFlow, EpsilonOverrideChangesIterationCounts) {
  Fixture f;
  FlowOptions coarse;
  coarse.chips = 10;
  coarse.epsilon_override = 4.0;
  FlowOptions fine;
  fine.chips = 10;
  fine.epsilon_override = 0.25;
  const FlowResult a = run_flow(f.problem, coarse);
  const FlowResult b = run_flow(f.problem, fine);
  EXPECT_LT(a.metrics.ta, b.metrics.ta);
  EXPECT_LT(a.metrics.ta_pathwise, b.metrics.ta_pathwise);
}

TEST(RunFlow, ArtifactReuseReproducesResults) {
  Fixture f;
  FlowOptions opts;
  opts.chips = 25;
  opts.seed = 12;
  const FlowResult fresh = run_flow(f.problem, opts);
  const FlowResult reused = run_flow(f.problem, opts, fresh.artifacts.get());
  EXPECT_DOUBLE_EQ(reused.metrics.ta, fresh.metrics.ta);
  EXPECT_DOUBLE_EQ(reused.metrics.yield_proposed,
                   fresh.metrics.yield_proposed);
  EXPECT_EQ(reused.metrics.npt, fresh.metrics.npt);
  // Reuse skips the offline preparation almost entirely.
  EXPECT_LE(reused.metrics.tp_seconds, fresh.metrics.tp_seconds + 1e-9);
}

TEST(RunFlow, ThreadCountDoesNotChangeResults) {
  Fixture f;
  FlowOptions serial;
  serial.chips = 30;
  serial.seed = 13;
  serial.threads = 1;
  FlowOptions parallel = serial;
  parallel.threads = 4;
  const FlowResult a = run_flow(f.problem, serial);
  const FlowResult b = run_flow(f.problem, parallel);
  EXPECT_DOUBLE_EQ(a.metrics.ta, b.metrics.ta);
  EXPECT_DOUBLE_EQ(a.metrics.yield_proposed, b.metrics.yield_proposed);
  EXPECT_DOUBLE_EQ(a.metrics.yield_ideal, b.metrics.yield_ideal);
  EXPECT_DOUBLE_EQ(a.metrics.yield_no_buffer, b.metrics.yield_no_buffer);
}

TEST(RunFlow, PredictionCutsTestedPathsAndIterations) {
  Fixture f;
  FlowOptions with_pred;
  with_pred.chips = 15;
  FlowOptions without_pred;
  without_pred.chips = 15;
  without_pred.use_prediction = false;
  const FlowResult a = run_flow(f.problem, with_pred);
  const FlowResult b = run_flow(f.problem, without_pred);
  EXPECT_LT(a.metrics.npt, b.metrics.npt);
  EXPECT_LT(a.metrics.ta, b.metrics.ta);
}

}  // namespace
}  // namespace effitest::core
