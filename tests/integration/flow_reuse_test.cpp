// FlowArtifacts reuse contract: the offline preparation does not depend on
// the designated period T_d, so sweeping T_d with `reuse` (the Table-2
// pattern) must reproduce a fresh prepare_flow exactly — same artifacts,
// same per-chip streams, same metrics. Also pins the seeding contract:
// results are identical for any FlowOptions::threads — covering every
// parallel section (the chip loop, hold-bound sampling, Procedure-1 PCA)
// and the campaign runner built on top of them.

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "core/hold_bounds.hpp"
#include "core/yield.hpp"
#include "netlist/generator.hpp"
#include "timing/model.hpp"

namespace effitest::core {
namespace {

FlowOptions small_options() {
  FlowOptions opts;
  opts.chips = 80;
  opts.seed = 99;
  opts.threads = 1;
  return opts;
}

void expect_same_outcome(const FlowResult& fresh, const FlowResult& reused) {
  const FlowMetrics& a = fresh.metrics;
  const FlowMetrics& b = reused.metrics;
  EXPECT_DOUBLE_EQ(a.designated_period, b.designated_period);
  EXPECT_DOUBLE_EQ(a.epsilon_ps, b.epsilon_ps);
  EXPECT_EQ(a.npt, b.npt);
  EXPECT_EQ(a.num_groups, b.num_groups);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.num_selected, b.num_selected);
  EXPECT_DOUBLE_EQ(a.ta, b.ta);
  EXPECT_DOUBLE_EQ(a.tv, b.tv);
  EXPECT_DOUBLE_EQ(a.ta_pathwise, b.ta_pathwise);
  EXPECT_DOUBLE_EQ(a.yield_no_buffer, b.yield_no_buffer);
  EXPECT_DOUBLE_EQ(a.yield_ideal, b.yield_ideal);
  EXPECT_DOUBLE_EQ(a.yield_proposed, b.yield_proposed);
  EXPECT_EQ(a.forced_resolutions, b.forced_resolutions);
  EXPECT_EQ(a.infeasible_configs, b.infeasible_configs);

  EXPECT_EQ(fresh.artifacts->tested, reused.artifacts->tested);
  ASSERT_EQ(fresh.artifacts->batches.size(), reused.artifacts->batches.size());
  for (std::size_t i = 0; i < fresh.artifacts->batches.size(); ++i) {
    EXPECT_EQ(fresh.artifacts->batches[i].paths,
              reused.artifacts->batches[i].paths);
  }
  ASSERT_EQ(fresh.artifacts->hold.size(), reused.artifacts->hold.size());
  for (std::size_t i = 0; i < fresh.artifacts->hold.size(); ++i) {
    EXPECT_EQ(fresh.artifacts->hold[i].src_buf,
              reused.artifacts->hold[i].src_buf);
    EXPECT_EQ(fresh.artifacts->hold[i].dst_buf,
              reused.artifacts->hold[i].dst_buf);
    EXPECT_DOUBLE_EQ(fresh.artifacts->hold[i].lambda,
                     reused.artifacts->hold[i].lambda);
  }
}

TEST(FlowReuse, SweepingDesignatedPeriodMatchesFreshPrepare) {
  const netlist::GeneratedCircuit circuit =
      netlist::generate_circuit(netlist::paper_benchmark_spec("s9234"));
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  const FlowOptions base = small_options();

  // Prepare once (artifacts are T_d-independent) ...
  const FlowResult first = run_flow(problem, base);
  const std::shared_ptr<const FlowArtifacts> prepared = first.artifacts;
  const double t1 = first.metrics.designated_period;
  ASSERT_GT(t1, 0.0);

  // ... then sweep T_d, comparing a fresh prepare against the reuse path.
  for (const double scale : {0.95, 1.0, 1.05}) {
    FlowOptions opts = base;
    opts.designated_period = scale * t1;
    const FlowResult fresh = run_flow(problem, opts);
    const FlowResult reused = run_flow(problem, opts, prepared.get());
    SCOPED_TRACE("T_d scale " + std::to_string(scale));
    expect_same_outcome(fresh, reused);
  }
}

TEST(FlowReuse, ThreadCountDoesNotChangeResults) {
  const netlist::GeneratedCircuit circuit =
      netlist::generate_circuit(netlist::paper_benchmark_spec("s9234"));
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  // threads covers every parallel section: the chip loop plus (inherited
  // through prepare_flow) hold-bound sampling and the Procedure-1 PCA.
  FlowOptions serial = small_options();
  FlowOptions parallel = small_options();
  parallel.threads = 4;

  const FlowResult a = run_flow(problem, serial);
  const FlowResult b = run_flow(problem, parallel);
  expect_same_outcome(a, b);
}

TEST(FlowReuse, HoldBoundSamplingIsThreadInvariant) {
  const netlist::GeneratedCircuit circuit =
      netlist::generate_circuit(netlist::paper_benchmark_spec("s9234"));
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  const auto options_with_threads = [](std::size_t threads) {
    HoldBoundOptions options;
    options.samples = 300;
    options.threads = threads;
    return options;
  };

  // The sampled margin matrix itself must be bit-identical for any worker
  // count (non-vacuous even when range pruning later drops every bound).
  stats::Rng serial_rng(4242);
  const HoldMarginSamples serial_samples =
      sample_hold_margins(problem, serial_rng, options_with_threads(1));
  ASSERT_FALSE(serial_samples.exposed.empty());
  ASSERT_EQ(serial_samples.delta.size(), 300u);
  for (const std::size_t threads : {std::size_t{4}, std::size_t{0}}) {
    stats::Rng rng(4242);
    const HoldMarginSamples parallel_samples =
        sample_hold_margins(problem, rng, options_with_threads(threads));
    SCOPED_TRACE("threads = " + std::to_string(threads));
    EXPECT_EQ(parallel_samples.exposed, serial_samples.exposed);
    EXPECT_EQ(parallel_samples.delta, serial_samples.delta);  // bit-identical
  }

  // ... and so must the derived (merged + pruned) bounds.
  const auto bounds_with_threads = [&](std::size_t threads) {
    stats::Rng rng(4242);
    return compute_hold_bounds(problem, rng, options_with_threads(threads));
  };
  const std::vector<HoldConstraintX> serial = bounds_with_threads(1);
  for (const std::size_t threads : {std::size_t{4}, std::size_t{0}}) {
    const std::vector<HoldConstraintX> parallel = bounds_with_threads(threads);
    SCOPED_TRACE("threads = " + std::to_string(threads));
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].src_buf, serial[i].src_buf);
      EXPECT_EQ(parallel[i].dst_buf, serial[i].dst_buf);
      EXPECT_EQ(parallel[i].lambda, serial[i].lambda);  // bit-identical
    }
  }
}

TEST(FlowReuse, CampaignRunnerIsThreadInvariantAndMatchesDirectFlow) {
  const auto campaign_with_threads = [](std::size_t threads) {
    CampaignOptions options;
    options.flow = small_options();
    options.flow.chips = 60;
    options.flow.threads = threads;
    options.threads = threads;
    options.calibration_chips = 400;
    return CampaignRunner(options).run(
        CampaignRunner::cross({"s9234"}, {0.5, 0.8413}));
  };

  const CampaignResult serial = campaign_with_threads(1);
  const CampaignResult parallel = campaign_with_threads(4);
  ASSERT_EQ(serial.jobs.size(), 2u);
  ASSERT_EQ(parallel.jobs.size(), 2u);
  for (std::size_t j = 0; j < serial.jobs.size(); ++j) {
    const FlowMetrics& a = serial.jobs[j].metrics;
    const FlowMetrics& b = parallel.jobs[j].metrics;
    SCOPED_TRACE("job " + std::to_string(j));
    EXPECT_DOUBLE_EQ(a.designated_period, b.designated_period);
    EXPECT_EQ(a.npt, b.npt);
    EXPECT_DOUBLE_EQ(a.ta, b.ta);
    EXPECT_DOUBLE_EQ(a.yield_no_buffer, b.yield_no_buffer);
    EXPECT_DOUBLE_EQ(a.yield_ideal, b.yield_ideal);
    EXPECT_DOUBLE_EQ(a.yield_proposed, b.yield_proposed);
    EXPECT_EQ(a.forced_resolutions, b.forced_resolutions);
    EXPECT_EQ(a.infeasible_configs, b.infeasible_configs);
  }

  // A campaign job must be exactly a direct run_flow at the same calibrated
  // period — the runner adds scheduling and artifact reuse, nothing else.
  const netlist::GeneratedCircuit circuit =
      netlist::generate_circuit(netlist::paper_benchmark_spec("s9234"));
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);
  FlowOptions direct = small_options();
  direct.chips = 60;
  stats::Rng calibration(direct.seed ^ kQuantileCalibrationSeedXor);
  direct.designated_period = period_quantile(problem, 0.5, 400, calibration);
  const FlowResult reference = run_flow(problem, direct);
  EXPECT_DOUBLE_EQ(serial.jobs[0].metrics.designated_period,
                   reference.metrics.designated_period);
  EXPECT_DOUBLE_EQ(serial.jobs[0].metrics.ta, reference.metrics.ta);
  EXPECT_DOUBLE_EQ(serial.jobs[0].metrics.yield_proposed,
                   reference.metrics.yield_proposed);
  EXPECT_EQ(serial.jobs[0].metrics.npt, reference.metrics.npt);
}

}  // namespace
}  // namespace effitest::core
