// FlowArtifacts reuse contract: the offline preparation does not depend on
// the designated period T_d, so sweeping T_d with `reuse` (the Table-2
// pattern) must reproduce a fresh prepare_flow exactly — same artifacts,
// same per-chip streams, same metrics. Also pins the seeding contract:
// results are identical for any FlowOptions::threads.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/yield.hpp"
#include "netlist/generator.hpp"
#include "timing/model.hpp"

namespace effitest::core {
namespace {

FlowOptions small_options() {
  FlowOptions opts;
  opts.chips = 80;
  opts.seed = 99;
  opts.threads = 1;
  return opts;
}

void expect_same_outcome(const FlowResult& fresh, const FlowResult& reused) {
  const FlowMetrics& a = fresh.metrics;
  const FlowMetrics& b = reused.metrics;
  EXPECT_DOUBLE_EQ(a.designated_period, b.designated_period);
  EXPECT_DOUBLE_EQ(a.epsilon_ps, b.epsilon_ps);
  EXPECT_EQ(a.npt, b.npt);
  EXPECT_EQ(a.num_groups, b.num_groups);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.num_selected, b.num_selected);
  EXPECT_DOUBLE_EQ(a.ta, b.ta);
  EXPECT_DOUBLE_EQ(a.tv, b.tv);
  EXPECT_DOUBLE_EQ(a.ta_pathwise, b.ta_pathwise);
  EXPECT_DOUBLE_EQ(a.yield_no_buffer, b.yield_no_buffer);
  EXPECT_DOUBLE_EQ(a.yield_ideal, b.yield_ideal);
  EXPECT_DOUBLE_EQ(a.yield_proposed, b.yield_proposed);
  EXPECT_EQ(a.forced_resolutions, b.forced_resolutions);
  EXPECT_EQ(a.infeasible_configs, b.infeasible_configs);

  EXPECT_EQ(fresh.artifacts.tested, reused.artifacts.tested);
  ASSERT_EQ(fresh.artifacts.batches.size(), reused.artifacts.batches.size());
  for (std::size_t i = 0; i < fresh.artifacts.batches.size(); ++i) {
    EXPECT_EQ(fresh.artifacts.batches[i].paths,
              reused.artifacts.batches[i].paths);
  }
  EXPECT_EQ(fresh.artifacts.hold.size(), reused.artifacts.hold.size());
}

TEST(FlowReuse, SweepingDesignatedPeriodMatchesFreshPrepare) {
  const netlist::GeneratedCircuit circuit =
      netlist::generate_circuit(netlist::paper_benchmark_spec("s9234"));
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  const FlowOptions base = small_options();

  // Prepare once (artifacts are T_d-independent) ...
  const FlowResult first = run_flow(problem, base);
  const FlowArtifacts prepared = first.artifacts;
  const double t1 = first.metrics.designated_period;
  ASSERT_GT(t1, 0.0);

  // ... then sweep T_d, comparing a fresh prepare against the reuse path.
  for (const double scale : {0.95, 1.0, 1.05}) {
    FlowOptions opts = base;
    opts.designated_period = scale * t1;
    const FlowResult fresh = run_flow(problem, opts);
    const FlowResult reused = run_flow(problem, opts, &prepared);
    SCOPED_TRACE("T_d scale " + std::to_string(scale));
    expect_same_outcome(fresh, reused);
  }
}

TEST(FlowReuse, ThreadCountDoesNotChangeResults) {
  const netlist::GeneratedCircuit circuit =
      netlist::generate_circuit(netlist::paper_benchmark_spec("s9234"));
  const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  FlowOptions serial = small_options();
  FlowOptions parallel = small_options();
  parallel.threads = 4;

  const FlowResult a = run_flow(problem, serial);
  const FlowResult b = run_flow(problem, parallel);
  expect_same_outcome(a, b);
}

}  // namespace
}  // namespace effitest::core
