// calibrated_epsilon: the DESIGN.md rule (6 * median path sigma / 2^8.5)
// and its wiring into run_flow via FlowOptions::epsilon_override.

#include <gtest/gtest.h>

#include <cmath>

#include "core/flow.hpp"
#include "netlist/generator.hpp"
#include "stats/distributions.hpp"
#include "timing/model.hpp"

namespace effitest::core {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib;
  timing::CircuitModel model;
  Problem problem;

  explicit Fixture(const std::string& name = "s9234")
      : circuit(netlist::generate_circuit(netlist::paper_benchmark_spec(name))),
        lib(netlist::CellLibrary::standard()),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}
};

TEST(CalibratedEpsilon, MatchesMedianSigmaRule) {
  const Fixture f;
  const double eps = calibrated_epsilon(f.problem);

  // The point of the rule: bisecting a 6-sigma prior range of a *median*
  // path down to eps takes ceil(log2(6 sigma / eps)) = ceil(8.5) = 9
  // iterations, the regime of the paper's t'v column (~8-9).
  const double med = stats::quantile(f.model.max_sigmas(), 0.5);
  EXPECT_GT(med, 0.0);
  EXPECT_DOUBLE_EQ(eps, 6.0 * med / std::pow(2.0, 8.5));
}

TEST(CalibratedEpsilon, FlowUsesCalibrationUnlessOverridden) {
  const Fixture f;
  FlowOptions opts;
  opts.chips = 10;
  opts.evaluate_yield = false;

  const FlowResult calibrated = run_flow(f.problem, opts);
  EXPECT_DOUBLE_EQ(calibrated.metrics.epsilon_ps, calibrated_epsilon(f.problem));

  opts.epsilon_override = 0.25;
  const FlowResult overridden = run_flow(f.problem, opts);
  EXPECT_DOUBLE_EQ(overridden.metrics.epsilon_ps, 0.25);
}

}  // namespace
}  // namespace effitest::core
