#include "core/yield.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/generator.hpp"
#include "stats/distributions.hpp"

namespace effitest::core {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;

  Fixture()
      : circuit(netlist::generate_circuit([] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 70;
          s.num_gates = 800;
          s.num_buffers = 3;
          s.num_critical_paths = 18;
          s.seed = 29;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}
};

TEST(BufferValues, MapsStepsToPs) {
  Fixture f;
  std::vector<int> steps(f.problem.num_buffers(), 0);
  const std::vector<double> x = buffer_values(f.problem, steps);
  for (std::size_t b = 0; b < x.size(); ++b) {
    EXPECT_DOUBLE_EQ(x[b], f.problem.buffers()[b].r);
  }
  EXPECT_THROW(buffer_values(f.problem, std::vector<int>{0}),
               std::invalid_argument);
}

TEST(ChipPasses, GenerousPeriodPasses) {
  Fixture f;
  stats::Rng rng(1);
  const timing::Chip chip = f.model.sample_chip(rng);
  const double td = untuned_required_period(f.problem, chip) + 1.0;
  EXPECT_TRUE(chip_passes_untuned(f.problem, chip, td));
}

TEST(ChipPasses, TightPeriodFails) {
  Fixture f;
  stats::Rng rng(2);
  const timing::Chip chip = f.model.sample_chip(rng);
  const double td = untuned_required_period(f.problem, chip) - 1.0;
  EXPECT_FALSE(chip_passes_untuned(f.problem, chip, td));
}

TEST(ChipPasses, SkewShiftsPassFail) {
  Fixture f;
  stats::Rng rng(3);
  const timing::Chip chip = f.model.sample_chip(rng);
  // Find the binding pair and a buffer on it.
  std::size_t worst = 0;
  for (std::size_t p = 1; p < f.model.num_pairs(); ++p) {
    if (chip.max_delay[p] > chip.max_delay[worst]) worst = p;
  }
  const double td = chip.max_delay[worst] + 0.001;
  ASSERT_TRUE(chip_passes_untuned(f.problem, chip, td));
  // Worsen the binding pair's skew by one buffer range: must now fail.
  std::vector<double> x(f.problem.num_buffers(), 0.0);
  const int sb = f.problem.src_buffer(worst);
  const int db = f.problem.dst_buffer(worst);
  ASSERT_TRUE(sb >= 0 || db >= 0);
  if (sb >= 0) {
    x[static_cast<std::size_t>(sb)] = 1.0;  // +1ps launch delay
  } else {
    x[static_cast<std::size_t>(db)] = -1.0;
  }
  EXPECT_FALSE(chip_passes(f.problem, chip, x, td));
}

TEST(ChipPasses, HoldViolationDetected) {
  Fixture f;
  stats::Rng rng(4);
  const timing::Chip chip = f.model.sample_chip(rng);
  const double td = untuned_required_period(f.problem, chip) + 100.0;
  ASSERT_TRUE(chip_passes_untuned(f.problem, chip, td));
  // Find a pair whose destination is buffered and push its capture clock
  // late enough to break hold: x_i - x_j < h - d_min.
  const double h = f.model.hold_time();
  for (std::size_t p = 0; p < f.model.num_pairs(); ++p) {
    const int db = f.problem.dst_buffer(p);
    if (db < 0 || f.problem.src_buffer(p) >= 0) continue;
    const double margin = chip.min_delay[p] - h;  // x_dst may be at most this
    std::vector<double> x(f.problem.num_buffers(), 0.0);
    x[static_cast<std::size_t>(db)] = margin + 1.0;
    EXPECT_FALSE(chip_passes(f.problem, chip, x, td));
    return;
  }
  GTEST_SKIP() << "no dst-only buffered pair";
}

TEST(UntunedRequiredPeriod, IsMaxDelay) {
  Fixture f;
  stats::Rng rng(5);
  const timing::Chip chip = f.model.sample_chip(rng);
  const double req = untuned_required_period(f.problem, chip);
  const double direct =
      *std::max_element(chip.max_delay.begin(), chip.max_delay.end());
  EXPECT_GE(req, direct);
  EXPECT_TRUE(chip_passes_untuned(f.problem, chip, req + 1e-6) ||
              req > direct /* hold-limited */);
}

TEST(PeriodQuantile, MedianGivesHalfYield) {
  Fixture f;
  stats::Rng rng(6);
  const double t1 = period_quantile(f.problem, 0.5, 1500, rng);
  // Evaluate untuned yield at T1 on an independent sample.
  stats::Rng eval(7);
  int pass = 0;
  const int chips = 1500;
  for (int c = 0; c < chips; ++c) {
    const timing::Chip chip = f.model.sample_chip(eval);
    if (chip_passes_untuned(f.problem, chip, t1)) ++pass;
  }
  const double yield = static_cast<double>(pass) / chips;
  EXPECT_NEAR(yield, 0.5, 0.05);
}

TEST(PeriodQuantile, MonotoneInQ) {
  Fixture f;
  stats::Rng r1(8);
  stats::Rng r2(8);
  const double t50 = period_quantile(f.problem, 0.5, 800, r1);
  const double t84 = period_quantile(f.problem, 0.8413, 800, r2);
  EXPECT_LT(t50, t84);
}

TEST(PeriodQuantile, ZeroChipsThrows) {
  Fixture f;
  stats::Rng rng(9);
  EXPECT_THROW((void)period_quantile(f.problem, 0.5, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace effitest::core
