#include "core/hold_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/generator.hpp"

namespace effitest::core {
namespace {

TEST(GreedyDiscard, FullCoverageIsPerPairMax) {
  const std::vector<std::vector<double>> delta{
      {1.0, -2.0}, {0.5, -1.0}, {2.0, -3.0}};
  const std::vector<double> lambda = greedy_discard_bounds(delta, 1.0);
  ASSERT_EQ(lambda.size(), 2u);
  EXPECT_DOUBLE_EQ(lambda[0], 2.0);
  EXPECT_DOUBLE_EQ(lambda[1], -1.0);
}

TEST(GreedyDiscard, DropsTheWorstSample) {
  // Sample 2 dominates both pairs; discarding one sample (Y = 0.6 of 3
  // samples -> keep 2) must drop it.
  const std::vector<std::vector<double>> delta{
      {1.0, 1.0}, {0.5, 0.5}, {9.0, 9.0}};
  const std::vector<double> lambda = greedy_discard_bounds(delta, 0.6);
  EXPECT_DOUBLE_EQ(lambda[0], 1.0);
  EXPECT_DOUBLE_EQ(lambda[1], 1.0);
}

TEST(GreedyDiscard, EmptyInput) {
  EXPECT_TRUE(greedy_discard_bounds({}, 0.99).empty());
}

TEST(GreedyDiscard, RaggedInputThrows) {
  EXPECT_THROW(greedy_discard_bounds({{1.0, 2.0}, {1.0}}, 0.9),
               std::invalid_argument);
}

TEST(ExactMilp, MatchesGreedyOnEasyInstance) {
  const std::vector<std::vector<double>> delta{
      {1.0, 1.0}, {0.5, 0.5}, {9.0, 9.0}};
  const std::vector<double> greedy = greedy_discard_bounds(delta, 0.6);
  const std::vector<double> exact = exact_milp_bounds(delta, 0.6);
  ASSERT_EQ(exact.size(), greedy.size());
  for (std::size_t p = 0; p < exact.size(); ++p) {
    EXPECT_NEAR(exact[p], greedy[p], 1e-6);
  }
}

TEST(ExactMilp, CoversAtLeastYieldFraction) {
  const std::vector<std::vector<double>> delta{
      {3.0}, {1.0}, {2.0}, {5.0}, {4.0}};
  // Y = 0.8 -> cover ceil(4) samples -> drop only the worst (5.0).
  const std::vector<double> lambda = exact_milp_bounds(delta, 0.8);
  EXPECT_NEAR(lambda[0], 4.0, 1e-6);
}

// Property: greedy is a valid upper bound on the exact optimum (it always
// covers >= Y*M samples) and the exact MILP sum is never worse.
class HoldBoundPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HoldBoundPropertyTest, GreedyNeverBeatsExact) {
  stats::Rng rng(GetParam());
  const std::size_t m = 6;
  const std::size_t pairs = 3;
  std::vector<std::vector<double>> delta(m, std::vector<double>(pairs));
  for (auto& row : delta) {
    for (double& v : row) v = rng.uniform(-5.0, 5.0);
  }
  const double yield = 0.7;
  const std::vector<double> greedy = greedy_discard_bounds(delta, yield);
  const std::vector<double> exact = exact_milp_bounds(delta, yield);
  double sum_greedy = 0.0;
  double sum_exact = 0.0;
  for (std::size_t p = 0; p < pairs; ++p) {
    sum_greedy += greedy[p];
    sum_exact += exact[p];
  }
  EXPECT_GE(sum_greedy, sum_exact - 1e-6);

  // Both must cover at least ceil(Y*M) samples completely.
  const auto covered = [&](const std::vector<double>& lambda) {
    std::size_t count = 0;
    for (const auto& row : delta) {
      bool ok = true;
      for (std::size_t p = 0; p < pairs; ++p) {
        if (row[p] > lambda[p] + 1e-9) ok = false;
      }
      if (ok) ++count;
    }
    return count;
  };
  const auto need = static_cast<std::size_t>(
      std::ceil(yield * static_cast<double>(m)));
  EXPECT_GE(covered(greedy), need);
  EXPECT_GE(covered(exact), need);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HoldBoundPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(ComputeHoldBounds, EndToEndOnGeneratedCircuit) {
  netlist::GeneratorSpec s;
  s.num_flip_flops = 70;
  s.num_gates = 800;
  s.num_buffers = 3;
  s.num_critical_paths = 20;
  s.hold_edge_fraction = 0.5;
  s.seed = 19;
  const auto circuit = netlist::generate_circuit(s);
  const auto lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  stats::Rng rng(20);
  HoldBoundOptions opts;
  opts.samples = 200;
  const std::vector<HoldConstraintX> bounds =
      compute_hold_bounds(problem, rng, opts);
  // Every emitted bound involves at least one buffer and is achievable
  // within the buffer ranges (unachievable ones are pruned).
  for (const HoldConstraintX& h : bounds) {
    EXPECT_TRUE(h.src_buf >= 0 || h.dst_buf >= 0);
    double max_skew = 0.0;
    if (h.src_buf >= 0) {
      const auto& b = problem.buffers()[static_cast<std::size_t>(h.src_buf)];
      max_skew += b.r + b.tau;
    }
    if (h.dst_buf >= 0) {
      max_skew -= problem.buffers()[static_cast<std::size_t>(h.dst_buf)].r;
    }
    EXPECT_LE(h.lambda, max_skew + 1e-9);
  }
}

TEST(ComputeHoldBounds, NeutralConfigurationSatisfiesBounds) {
  // The generator's hold paths have healthy margins; the computed lambdas
  // should allow the all-zero configuration with Y = 0.99.
  netlist::GeneratorSpec s;
  s.num_flip_flops = 70;
  s.num_gates = 800;
  s.num_buffers = 3;
  s.num_critical_paths = 20;
  s.hold_edge_fraction = 0.5;
  s.seed = 23;
  const auto circuit = netlist::generate_circuit(s);
  const auto lib = netlist::CellLibrary::standard();
  const timing::CircuitModel model(circuit.netlist, lib, circuit.buffered_ffs);
  const Problem problem(model);

  stats::Rng rng(24);
  const auto bounds = compute_hold_bounds(problem, rng, {});
  for (const HoldConstraintX& h : bounds) {
    EXPECT_LE(h.lambda, 1e-9)
        << "zero-skew config violates a computed hold bound";
  }
}

}  // namespace
}  // namespace effitest::core
