#include "core/multiplexing.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "netlist/generator.hpp"

namespace effitest::core {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;

  explicit Fixture(std::size_t np = 24, std::size_t nb = 3,
                   std::uint64_t seed = 13)
      : circuit(netlist::generate_circuit([&] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 80;
          s.num_gates = 900;
          s.num_buffers = nb;
          s.num_critical_paths = np;
          s.seed = seed;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}

  [[nodiscard]] std::vector<std::size_t> all_paths() const {
    std::vector<std::size_t> idx(model.num_pairs());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    return idx;
  }
};

TEST(Multiplexing, AllBatchesLegal) {
  const Fixture f;
  for (bool optimal : {true, false}) {
    BatchingOptions opts;
    opts.optimal_coloring = optimal;
    const auto batches = build_batches(f.problem, f.all_paths(), opts);
    for (const Batch& b : batches) {
      EXPECT_TRUE(batch_is_legal(f.problem, b, opts));
    }
  }
}

TEST(Multiplexing, EveryPathAssignedExactlyOnce) {
  const Fixture f;
  const auto paths = f.all_paths();
  const auto batches = build_batches(f.problem, paths);
  std::set<std::size_t> seen;
  for (const Batch& b : batches) {
    for (std::size_t p : b.paths) {
      EXPECT_TRUE(seen.insert(p).second) << "path " << p << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), paths.size());
}

TEST(Multiplexing, OptimalColoringHitsLowerBound) {
  const Fixture f;
  const auto paths = f.all_paths();
  const auto batches = build_batches(f.problem, paths);
  EXPECT_EQ(batches.size(), batch_lower_bound(f.problem, paths));
}

TEST(Multiplexing, GreedyWithinTwiceLowerBound) {
  const Fixture f;
  BatchingOptions opts;
  opts.optimal_coloring = false;
  const auto paths = f.all_paths();
  const auto batches = build_batches(f.problem, paths, opts);
  EXPECT_GE(batches.size(), batch_lower_bound(f.problem, paths));
  EXPECT_LE(batches.size(), 2 * batch_lower_bound(f.problem, paths));
}

TEST(Multiplexing, EmptyInput) {
  const Fixture f;
  EXPECT_TRUE(build_batches(f.problem, std::vector<std::size_t>{}).empty());
  EXPECT_EQ(batch_lower_bound(f.problem, std::vector<std::size_t>{}), 0u);
}

TEST(Multiplexing, SinglePath) {
  const Fixture f;
  const std::vector<std::size_t> one{0};
  const auto batches = build_batches(f.problem, one);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].paths.size(), 1u);
}

TEST(Multiplexing, BatchIsLegalDetectsSharedEndpoints) {
  const Fixture f;
  const auto& pairs = f.model.pairs();
  // Find two paths sharing a source.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (std::size_t j = i + 1; j < pairs.size(); ++j) {
      if (pairs[i].src_ff == pairs[j].src_ff ||
          pairs[i].dst_ff == pairs[j].dst_ff) {
        EXPECT_FALSE(batch_is_legal(f.problem, Batch{{i, j}}));
        return;
      }
    }
  }
  GTEST_SKIP() << "no conflicting pair in fixture";
}

TEST(Multiplexing, ExclusionsForceSeparation) {
  const Fixture f;
  // Pick two paths that would otherwise share a batch.
  const auto batches = build_batches(f.problem, f.all_paths());
  const Batch* big = nullptr;
  for (const Batch& b : batches) {
    if (b.paths.size() >= 2) {
      big = &b;
      break;
    }
  }
  ASSERT_NE(big, nullptr) << "fixture produced only singleton batches";
  BatchingOptions opts;
  opts.exclusions.emplace_back(big->paths[0], big->paths[1]);
  const auto constrained = build_batches(f.problem, f.all_paths(), opts);
  for (const Batch& b : constrained) {
    EXPECT_TRUE(batch_is_legal(f.problem, b, opts));
  }
}

TEST(Multiplexing, SeriesChainsShareBatch) {
  // Hub-to-hub plus hub-to-satellite paths in series (p14, p46 style) are
  // legal together; verify via batch_is_legal on a constructed series pair.
  const Fixture f;
  const auto& pairs = f.model.pairs();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (std::size_t j = 0; j < pairs.size(); ++j) {
      if (i == j) continue;
      if (pairs[i].dst_ff == pairs[j].src_ff &&
          pairs[i].src_ff != pairs[j].src_ff &&
          pairs[i].dst_ff != pairs[j].dst_ff &&
          pairs[i].src_ff != pairs[j].dst_ff) {
        EXPECT_TRUE(batch_is_legal(f.problem, Batch{{i, j}}));
        return;
      }
    }
  }
  GTEST_SKIP() << "no series pair in fixture";
}

TEST(FillEmptySlots, TopsUpSmallBatches) {
  const Fixture f;
  const auto paths = f.all_paths();
  // Batch only the first half; offer the rest as candidates.
  const std::vector<std::size_t> half(paths.begin(),
                                      paths.begin() + paths.size() / 2);
  auto batches = build_batches(f.problem, half);
  std::size_t max_before = 0;
  for (const Batch& b : batches) max_before = std::max(max_before, b.paths.size());

  const std::vector<std::size_t> candidates(paths.begin() + paths.size() / 2,
                                            paths.end());
  const auto inserted = fill_empty_slots(f.problem, batches, candidates);
  for (const Batch& b : batches) {
    EXPECT_TRUE(batch_is_legal(f.problem, b));
    EXPECT_LE(b.paths.size(), max_before);
  }
  // Every inserted path occurs exactly once.
  std::set<std::size_t> seen;
  for (const Batch& b : batches) {
    for (std::size_t p : b.paths) EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_EQ(seen.size(), half.size() + inserted.size());
}

TEST(FillEmptySlots, CenterAwarePrefersNearbyBatch) {
  const Fixture f;
  // Two singleton batches with distinct centers; candidate closer to the
  // second must land there.
  const auto paths = f.all_paths();
  ASSERT_GE(paths.size(), 3u);
  // Construct centers: batch means 100 and 200, candidate at 195.
  std::vector<double> centers(f.model.num_pairs(), 0.0);

  // Find three mutually non-conflicting paths.
  std::vector<std::size_t> chosen;
  for (std::size_t p : paths) {
    Batch trial{chosen};
    trial.paths.push_back(p);
    if (batch_is_legal(f.problem, trial)) {
      chosen.push_back(p);
      if (chosen.size() == 3) break;
    }
  }
  if (chosen.size() < 3) GTEST_SKIP() << "not enough compatible paths";

  centers[chosen[0]] = 100.0;
  centers[chosen[1]] = 200.0;
  centers[chosen[2]] = 195.0;
  std::vector<Batch> batches{Batch{{chosen[0], paths.back()}},
                             Batch{{chosen[1]}}};
  // Make batch sizes unequal so the second has an empty slot.
  const std::vector<std::size_t> cand{chosen[2]};
  const auto inserted =
      fill_empty_slots(f.problem, batches, cand, {}, centers);
  if (!inserted.empty()) {
    EXPECT_EQ(batches[1].paths.size(), 2u);
  }
}

class MultiplexingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiplexingPropertyTest, ColoringOptimalOnRandomCircuits) {
  const Fixture f(30, 4, GetParam());
  const auto paths = f.all_paths();
  const auto batches = build_batches(f.problem, paths);
  EXPECT_EQ(batches.size(), batch_lower_bound(f.problem, paths));
  std::size_t total = 0;
  for (const Batch& b : batches) {
    EXPECT_TRUE(batch_is_legal(f.problem, b));
    total += b.paths.size();
  }
  EXPECT_EQ(total, paths.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiplexingPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace effitest::core
