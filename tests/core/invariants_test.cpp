// Cross-module invariant tests: properties that must hold across random
// circuits and seeds, tying the tester simulation, alignment, hold bounds
// and configuration together.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/flow.hpp"
#include "core/tuner_service.hpp"
#include "netlist/generator.hpp"

namespace effitest::core {
namespace {

struct Instance {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;

  explicit Instance(std::uint64_t seed)
      : circuit(netlist::generate_circuit([&] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 60 + seed % 30;
          s.num_gates = 700 + 40 * (seed % 5);
          s.num_buffers = 2 + seed % 3;
          s.num_critical_paths = 16 + 2 * (seed % 6);
          s.hold_edge_fraction = 0.4;
          s.seed = seed;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}
};

class InvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantTest, TestedBoundsAlwaysOrderedAndResolved) {
  Instance inst(GetParam());
  FlowOptions opts;
  stats::Rng rng(GetParam() ^ 0xfeed);
  const FlowArtifacts art = prepare_flow(inst.problem, opts, rng);
  TestOptions topts;
  topts.epsilon_ps = calibrated_epsilon(inst.problem);

  stats::Rng chip_rng(GetParam() ^ 0xbeef);
  for (int c = 0; c < 3; ++c) {
    const timing::Chip chip = inst.model.sample_chip(chip_rng);
    SimulatedChip tester(inst.problem, chip);
    const TestRunResult r =
        run_delay_test(inst.problem, tester, art.batches, art.prior_lower,
                       art.prior_upper, art.hold, topts);
    EXPECT_EQ(r.forced, 0u) << "safety stop engaged";
    for (std::size_t p = 0; p < inst.model.num_pairs(); ++p) {
      EXPECT_LE(r.lower[p], r.upper[p] + 1e-12);
      if (r.tested[p]) {
        EXPECT_LT(r.upper[p] - r.lower[p], topts.epsilon_ps + 1e-9);
      }
    }
  }
}

TEST_P(InvariantTest, FinalBufferStateRespectsHoldBounds) {
  Instance inst(GetParam());
  FlowOptions opts;
  stats::Rng rng(GetParam() ^ 0x1111);
  const FlowArtifacts art = prepare_flow(inst.problem, opts, rng);
  if (art.hold.empty()) GTEST_SKIP() << "no binding hold bounds";
  TestOptions topts;
  topts.epsilon_ps = calibrated_epsilon(inst.problem);

  stats::Rng chip_rng(GetParam() ^ 0x2222);
  const timing::Chip chip = inst.model.sample_chip(chip_rng);
  SimulatedChip tester(inst.problem, chip);
  const TestRunResult r =
      run_delay_test(inst.problem, tester, art.batches, art.prior_lower,
                     art.prior_upper, art.hold, topts);
  // Every hold bound must hold for the final programmed buffer state
  // (alignment is hold-constrained, eq. 21 in the eq. 7-14 problem).
  for (const HoldConstraintX& h : art.hold) {
    double skew = 0.0;
    if (h.src_buf >= 0) {
      skew += inst.problem.buffers()[static_cast<std::size_t>(h.src_buf)]
                  .value(r.final_steps[static_cast<std::size_t>(h.src_buf)]);
    }
    if (h.dst_buf >= 0) {
      skew -= inst.problem.buffers()[static_cast<std::size_t>(h.dst_buf)]
                  .value(r.final_steps[static_cast<std::size_t>(h.dst_buf)]);
    }
    EXPECT_GE(skew, h.lambda - 1e-9);
  }
}

TEST_P(InvariantTest, ConfigurationRespectsSetupFeasibilityAndHold) {
  Instance inst(GetParam());
  const auto means = inst.model.max_means();
  const auto sigmas = inst.model.max_sigmas();
  std::vector<double> lower(means.size());
  std::vector<double> upper(means.size());
  for (std::size_t p = 0; p < means.size(); ++p) {
    lower[p] = means[p] - sigmas[p];
    upper[p] = means[p] + sigmas[p];
  }
  stats::Rng rng(GetParam() ^ 0x3333);
  const std::vector<HoldConstraintX> hold =
      compute_hold_bounds(inst.problem, rng, {});
  const double td =
      *std::max_element(means.begin(), means.end()) + 2.0;
  const ConfigResult cfg =
      configure_buffers(inst.problem, td, lower, upper, hold);
  if (!cfg.feasible) GTEST_SKIP() << "instance infeasible at this period";
  for (std::size_t p = 0; p < means.size(); ++p) {
    EXPECT_LE(inst.problem.pair_skew(p, cfg.steps), td - lower[p] + 1e-6);
  }
  const std::vector<double> x = buffer_values(inst.problem, cfg.steps);
  for (const HoldConstraintX& h : hold) {
    double skew = 0.0;
    if (h.src_buf >= 0) skew += x[static_cast<std::size_t>(h.src_buf)];
    if (h.dst_buf >= 0) skew -= x[static_cast<std::size_t>(h.dst_buf)];
    EXPECT_GE(skew, h.lambda - 1e-9);
  }
}

TEST_P(InvariantTest, ProposedNeverBeatsIdealYield) {
  Instance inst(GetParam());
  FlowOptions opts;
  opts.chips = 30;
  opts.seed = GetParam();
  const FlowResult r = run_flow(inst.problem, opts);
  EXPECT_LE(r.metrics.yield_proposed, r.metrics.yield_ideal + 1e-12);
  EXPECT_GE(r.metrics.yield_ideal, r.metrics.yield_no_buffer - 0.10);
  EXPECT_LE(r.metrics.ta, r.metrics.ta_pathwise);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest,
                         ::testing::Range<std::uint64_t>(101, 109));

TEST(BindingHoldBounds, TestEngineRespectsSynthesizedBound) {
  // The sampled hold margins of generated circuits are usually comfortably
  // negative, so compute_hold_bounds prunes everything; synthesize a binding
  // bound on a real buffer combo and check the aligned test obeys it.
  Instance inst(202);
  FlowOptions opts;
  stats::Rng rng(5);
  FlowArtifacts art = prepare_flow(inst.problem, opts, rng);

  // Find a pair with a source-side buffer and pin x_src >= +2 steps.
  int target_buf = -1;
  for (std::size_t p = 0; p < inst.model.num_pairs(); ++p) {
    if (inst.problem.src_buffer(p) >= 0) {
      target_buf = inst.problem.src_buffer(p);
      break;
    }
  }
  ASSERT_GE(target_buf, 0);
  const TunableBuffer& buf =
      inst.problem.buffers()[static_cast<std::size_t>(target_buf)];
  const double bound = 2.0 * buf.step_size();
  art.hold.push_back(HoldConstraintX{target_buf, -1, bound});

  TestOptions topts;
  topts.epsilon_ps = calibrated_epsilon(inst.problem);
  stats::Rng chip_rng(6);
  for (int c = 0; c < 4; ++c) {
    const timing::Chip chip = inst.model.sample_chip(chip_rng);
    SimulatedChip tester(inst.problem, chip);
    const TestRunResult r =
        run_delay_test(inst.problem, tester, art.batches, art.prior_lower,
                       art.prior_upper, art.hold, topts);
    const double x = buf.value(r.final_steps[static_cast<std::size_t>(target_buf)]);
    EXPECT_GE(x, bound - 1e-9) << "chip " << c;
  }

  // The configurator honours the same synthesized bound.
  const auto means = inst.model.max_means();
  const double td = *std::max_element(means.begin(), means.end()) + 30.0;
  const ConfigResult cfg =
      configure_buffers(inst.problem, td, means, means, art.hold);
  ASSERT_TRUE(cfg.feasible);
  EXPECT_GE(buf.value(cfg.steps[static_cast<std::size_t>(target_buf)]),
            bound - 1e-9);
}

}  // namespace
}  // namespace effitest::core
