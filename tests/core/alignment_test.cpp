#include "core/alignment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/generator.hpp"
#include "stats/rng.hpp"

namespace effitest::core {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;

  explicit Fixture(std::uint64_t seed = 13)
      : circuit(netlist::generate_circuit([&] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 80;
          s.num_gates = 900;
          s.num_buffers = 3;
          s.num_critical_paths = 24;
          s.seed = seed;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}
};

double objective_at(const AlignmentInstance& inst, const AlignmentResult& r) {
  double acc = 0.0;
  for (const AlignmentEntry& e : inst.entries) {
    double shifted = e.center;
    if (e.src_buf >= 0) {
      shifted += inst.problem->buffers()[static_cast<std::size_t>(e.src_buf)]
                     .value(r.steps[static_cast<std::size_t>(e.src_buf)]);
    }
    if (e.dst_buf >= 0) {
      shifted -= inst.problem->buffers()[static_cast<std::size_t>(e.dst_buf)]
                     .value(r.steps[static_cast<std::size_t>(e.dst_buf)]);
    }
    acc += e.weight * std::abs(r.period - shifted);
  }
  return acc;
}

TEST(MiddleOutWeights, MiddleGetsK0) {
  const std::vector<double> centers{10.0, 30.0, 20.0};
  const std::vector<double> w = middle_out_weights(centers, 100.0, 1.0);
  ASSERT_EQ(w.size(), 3u);
  // Sorted: 10, 20, 30 -> middle is 20 (index 2 of input).
  EXPECT_DOUBLE_EQ(w[2], 100.0);
  EXPECT_LT(w[0], 100.0);
  EXPECT_LT(w[1], 100.0);
  EXPECT_DOUBLE_EQ(w[0], w[1]);  // symmetric distance from the middle
}

TEST(MiddleOutWeights, FlooredAtKd) {
  std::vector<double> centers(10);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers[i] = static_cast<double>(i);
  }
  const std::vector<double> w = middle_out_weights(centers, 3.0, 1.0);
  for (double v : w) EXPECT_GE(v, 1.0);
}

TEST(MiddleOutWeights, EmptyAndSingle) {
  EXPECT_TRUE(middle_out_weights({}, 10.0, 1.0).empty());
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(middle_out_weights(one, 10.0, 1.0)[0], 10.0);
}

TEST(Alignment, SingleEntryPeriodHitsShiftedCenter) {
  const Fixture f;
  AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  inst.entries.push_back(AlignmentEntry{150.0, 1.0, 0, -1});
  for (AlignMethod m : {AlignMethod::kCoordinateDescent,
                        AlignMethod::kMilpCompact, AlignMethod::kMilpBigM}) {
    const AlignmentResult r = solve_alignment(inst, m);
    EXPECT_NEAR(r.objective, 0.0, 1e-6) << "method " << static_cast<int>(m);
    EXPECT_NEAR(objective_at(inst, r), r.objective, 1e-9);
  }
}

TEST(Alignment, TwoOpposedEntriesMeetInMiddle) {
  // Paths c=100 (+x0) and c=110 (-x0): x0 = 5 aligns both at 105 when the
  // range allows; otherwise the solver saturates x0.
  const Fixture f;
  AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  inst.entries.push_back(AlignmentEntry{100.0, 1.0, 0, -1});
  inst.entries.push_back(AlignmentEntry{110.0, 1.0, -1, 0});
  const double half_range = f.problem.buffers()[0].tau / 2.0;
  const AlignmentResult cd =
      solve_alignment(inst, AlignMethod::kCoordinateDescent);
  const AlignmentResult milp = solve_alignment(inst, AlignMethod::kMilpCompact);
  if (half_range >= 5.0) {
    // Residual bounded by one step of quantization across two entries.
    EXPECT_NEAR(milp.objective, 0.0,
                1.5 * f.problem.buffers()[0].step_size());
  }
  // CD must match the exact optimum on this trivial instance.
  EXPECT_NEAR(cd.objective, milp.objective,
              1.5 * f.problem.buffers()[0].step_size());
}

TEST(Alignment, EmptyInstanceNoop) {
  const Fixture f;
  AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  const AlignmentResult r =
      solve_alignment(inst, AlignMethod::kCoordinateDescent);
  EXPECT_EQ(r.steps, inst.current_steps);
}

TEST(Alignment, MissingProblemThrows) {
  AlignmentInstance inst;
  EXPECT_THROW(solve_alignment(inst, AlignMethod::kCoordinateDescent),
               std::invalid_argument);
}

TEST(Alignment, BadStepsSizeThrows) {
  const Fixture f;
  AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = {0};  // wrong size
  inst.entries.push_back(AlignmentEntry{100.0, 1.0, 0, -1});
  EXPECT_THROW(solve_alignment(inst, AlignMethod::kCoordinateDescent),
               std::invalid_argument);
}

TEST(Alignment, FrozenBuffersRespected) {
  const Fixture f;
  AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  inst.allow_buffer_moves = false;
  inst.entries.push_back(AlignmentEntry{100.0, 1.0, 0, -1});
  inst.entries.push_back(AlignmentEntry{140.0, 1.0, 1, -1});
  const AlignmentResult r =
      solve_alignment(inst, AlignMethod::kCoordinateDescent);
  EXPECT_EQ(r.steps, inst.current_steps);  // nothing moved
  EXPECT_GT(r.objective, 0.0);             // centers cannot be merged
}

TEST(Alignment, HoldConstraintsBlockSkew) {
  const Fixture f;
  AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  // Entry wants x0 very negative; hold bound x0 >= 0 forbids it.
  inst.entries.push_back(AlignmentEntry{100.0, 1.0, 0, -1});
  inst.entries.push_back(AlignmentEntry{120.0, 1.0, -1, -1});
  inst.hold.push_back(HoldConstraintX{0, -1, 0.0});  // x0 >= 0
  for (AlignMethod m :
       {AlignMethod::kCoordinateDescent, AlignMethod::kMilpCompact}) {
    const AlignmentResult r = solve_alignment(inst, m);
    const double x0 = f.problem.buffers()[0].value(r.steps[0]);
    EXPECT_GE(x0, -1e-9) << "method " << static_cast<int>(m);
  }
}

TEST(Alignment, BigMAndCompactMilpAgree) {
  const Fixture f;
  stats::Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    AlignmentInstance inst;
    inst.problem = &f.problem;
    inst.current_steps = f.problem.neutral_steps();
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    std::vector<double> centers;
    for (std::size_t i = 0; i < n; ++i) {
      centers.push_back(rng.uniform(140.0, 180.0));
    }
    const std::vector<double> w = middle_out_weights(centers, 1000.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const int src = static_cast<int>(rng.uniform_int(-1, 2));
      int dst = static_cast<int>(rng.uniform_int(-1, 2));
      if (dst == src && src >= 0) dst = -1;
      inst.entries.push_back(AlignmentEntry{centers[i], w[i], src, dst});
    }
    const AlignmentResult compact =
        solve_alignment(inst, AlignMethod::kMilpCompact);
    const AlignmentResult bigm = solve_alignment(inst, AlignMethod::kMilpBigM);
    EXPECT_NEAR(compact.objective, bigm.objective,
                1e-4 * (1.0 + compact.objective))
        << "trial " << trial;
  }
}

// Ablation-style property: coordinate descent objective is close to the
// exact MILP optimum (small gap) and never better.
class CdQualityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdQualityTest, NearOptimalOnRandomInstances) {
  const Fixture f(GetParam() % 3 + 11);
  stats::Rng rng(GetParam());
  AlignmentInstance inst;
  inst.problem = &f.problem;
  inst.current_steps = f.problem.neutral_steps();
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  std::vector<double> centers;
  for (std::size_t i = 0; i < n; ++i) {
    centers.push_back(rng.uniform(140.0, 190.0));
  }
  const std::vector<double> w = middle_out_weights(centers, 1000.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const int src = static_cast<int>(rng.uniform_int(-1, 2));
    int dst = static_cast<int>(rng.uniform_int(-1, 2));
    if (dst == src && src >= 0) dst = -1;
    inst.entries.push_back(AlignmentEntry{centers[i], w[i], src, dst});
  }
  const AlignmentResult cd =
      solve_alignment(inst, AlignMethod::kCoordinateDescent);
  const AlignmentResult exact =
      solve_alignment(inst, AlignMethod::kMilpCompact);
  // CD cannot beat the exact solver...
  EXPECT_GE(cd.objective, exact.objective - 1e-6);
  // ...and should be within 25% + epsilon of it on these instance sizes.
  EXPECT_LE(cd.objective, exact.objective * 1.25 + 2.0);
  // Both respect the consistency between reported and recomputed objective.
  EXPECT_NEAR(objective_at(inst, cd), cd.objective, 1e-9);
  EXPECT_NEAR(objective_at(inst, exact), exact.objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdQualityTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace effitest::core
