// CampaignRunner error-path coverage: bad inputs must fail (or return)
// cleanly and up front, never crash mid-fan-out or silently run defaults.

#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace effitest::core {
namespace {

TEST(CampaignRunner, EmptyJobListReturnsCleanly) {
  const CampaignRunner runner;
  const CampaignResult result = runner.run({});
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_EQ(result.total_seconds, 0.0);
}

TEST(CampaignRunner, CrossWithEmptyCircuitsYieldsNoJobs) {
  EXPECT_TRUE(CampaignRunner::cross({}, {0.5, 0.8413}).empty());
}

TEST(CampaignRunner, UnknownCircuitFailsWithClearError) {
  CampaignOptions options;
  options.flow.chips = 2;
  const CampaignRunner runner(options);
  const std::vector<CampaignJob> jobs{CampaignJob{"s9999_typo", 0.0, -1.0}};
  try {
    (void)runner.run(jobs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("s9999_typo"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown circuit"), std::string::npos) << what;
  }
}

TEST(CampaignRunner, UnknownCircuitIsRejectedEvenBehindValidJobs) {
  // Validation happens up front: a bad name anywhere in the list rejects
  // the whole campaign (with the same clear error) before any job starts.
  CampaignOptions options;
  options.flow.chips = 1;
  const CampaignRunner runner(options);
  const std::vector<CampaignJob> jobs{
      CampaignJob{"s9234", 0.0, -1.0},
      CampaignJob{"definitely_not_a_circuit", 0.0, -1.0},
  };
  EXPECT_THROW((void)runner.run(jobs), std::invalid_argument);
}

}  // namespace
}  // namespace effitest::core
