#include "core/test_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/tuner_service.hpp"
#include "netlist/generator.hpp"

namespace effitest::core {
namespace {

// The engine observes chips only through ChipUnderTest; these helpers wrap
// a sampled die in the SimulatedChip adapter for the historical in-process
// call shape.
TestRunResult run_delay_test(const Problem& problem, const timing::Chip& chip,
                             const std::vector<Batch>& batches,
                             std::span<const double> prior_lower,
                             std::span<const double> prior_upper,
                             std::span<const HoldConstraintX> hold,
                             const TestOptions& options = {}) {
  SimulatedChip tester(problem, chip);
  return core::run_delay_test(problem, tester, batches, prior_lower,
                              prior_upper, hold, options);
}

TestRunResult run_pathwise_test(const Problem& problem,
                                const timing::Chip& chip,
                                std::span<const double> prior_lower,
                                std::span<const double> prior_upper,
                                const TestOptions& options = {}) {
  SimulatedChip tester(problem, chip);
  return core::run_pathwise_test(problem, tester, prior_lower, prior_upper,
                                 options);
}

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;
  std::vector<double> prior_lower;
  std::vector<double> prior_upper;

  explicit Fixture(std::uint64_t seed = 13)
      : circuit(netlist::generate_circuit([&] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 70;
          s.num_gates = 800;
          s.num_buffers = 2;
          s.num_critical_paths = 18;
          s.seed = seed;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {
    const auto means = model.max_means();
    const auto sigmas = model.max_sigmas();
    prior_lower.resize(means.size());
    prior_upper.resize(means.size());
    for (std::size_t p = 0; p < means.size(); ++p) {
      prior_lower[p] = means[p] - 3.0 * sigmas[p];
      prior_upper[p] = means[p] + 3.0 * sigmas[p];
    }
  }

  [[nodiscard]] std::vector<Batch> one_batch_per_path() const {
    std::vector<Batch> batches;
    for (std::size_t p = 0; p < model.num_pairs(); ++p) {
      batches.push_back(Batch{{p}});
    }
    return batches;
  }
};

TEST(PathwiseIterations, BisectionCount) {
  EXPECT_EQ(pathwise_iterations(0.0, 8.0, 1.0), 4u);   // 8->4->2->1->0.5
  EXPECT_EQ(pathwise_iterations(0.0, 8.0, 9.0), 0u);   // already resolved
  EXPECT_EQ(pathwise_iterations(0.0, 1.0, 0.01), 7u);  // 2^7 = 128 > 100
  EXPECT_THROW((void)pathwise_iterations(0.0, 1.0, 0.0),
               std::invalid_argument);
}

TEST(DelayTest, BoundsBracketTrueDelay) {
  Fixture f;
  stats::Rng rng(5);
  const timing::Chip chip = f.model.sample_chip(rng);
  TestOptions opts;
  opts.epsilon_ps = 0.25;
  const TestRunResult r =
      run_delay_test(f.problem, chip, f.one_batch_per_path(), f.prior_lower,
                     f.prior_upper, {}, opts);
  for (std::size_t p = 0; p < f.model.num_pairs(); ++p) {
    ASSERT_TRUE(r.tested[p]);
    EXPECT_LT(r.upper[p] - r.lower[p], opts.epsilon_ps + 1e-9);
    // When the prior bracketed the truth, the measurement must still
    // bracket it (allowing the final epsilon window).
    if (chip.max_delay[p] >= f.prior_lower[p] &&
        chip.max_delay[p] <= f.prior_upper[p]) {
      EXPECT_GE(chip.max_delay[p], r.lower[p] - opts.epsilon_ps);
      EXPECT_LE(chip.max_delay[p], r.upper[p] + opts.epsilon_ps);
    }
  }
}

TEST(DelayTest, SingletonBatchesMatchPathwiseCount) {
  // With one path per batch and buffers allowed, alignment puts T exactly at
  // the range center each iteration — identical to path-wise bisection.
  Fixture f;
  stats::Rng rng(6);
  const timing::Chip chip = f.model.sample_chip(rng);
  TestOptions opts;
  opts.epsilon_ps = 0.5;
  const TestRunResult aligned =
      run_delay_test(f.problem, chip, f.one_batch_per_path(), f.prior_lower,
                     f.prior_upper, {}, opts);
  std::size_t expected = 0;
  for (std::size_t p = 0; p < f.model.num_pairs(); ++p) {
    expected += pathwise_iterations(f.prior_lower[p], f.prior_upper[p],
                                    opts.epsilon_ps);
  }
  EXPECT_EQ(aligned.iterations, expected);
}

TEST(DelayTest, MultiplexingReducesIterations) {
  Fixture f;
  stats::Rng rng(7);
  const timing::Chip chip = f.model.sample_chip(rng);
  TestOptions opts;
  opts.epsilon_ps = 0.5;

  const TestRunResult pathwise = run_pathwise_test(
      f.problem, chip, f.prior_lower, f.prior_upper, opts);

  // All paths in as few legal batches as possible.
  std::vector<std::size_t> all(f.model.num_pairs());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto batches = build_batches(f.problem, all);
  const TestRunResult multiplexed = run_delay_test(
      f.problem, chip, batches, f.prior_lower, f.prior_upper, {}, opts);

  EXPECT_LT(multiplexed.iterations, pathwise.iterations);
}

TEST(DelayTest, AlignmentBeatsFrozenBuffers) {
  Fixture f;
  std::vector<std::size_t> all(f.model.num_pairs());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto batches = build_batches(f.problem, all);

  stats::Rng rng(8);
  std::size_t iters_frozen = 0;
  std::size_t iters_aligned = 0;
  for (int c = 0; c < 10; ++c) {
    const timing::Chip chip = f.model.sample_chip(rng);
    TestOptions opts;
    opts.epsilon_ps = 0.5;
    opts.align_with_buffers = false;
    iters_frozen += run_delay_test(f.problem, chip, batches, f.prior_lower,
                                   f.prior_upper, {}, opts)
                        .iterations;
    opts.align_with_buffers = true;
    iters_aligned += run_delay_test(f.problem, chip, batches, f.prior_lower,
                                    f.prior_upper, {}, opts)
                         .iterations;
  }
  EXPECT_LT(iters_aligned, iters_frozen);
}

TEST(DelayTest, UntestedPathsKeepPriors) {
  Fixture f;
  stats::Rng rng(9);
  const timing::Chip chip = f.model.sample_chip(rng);
  const std::vector<Batch> batches{Batch{{0}}};
  const TestRunResult r = run_delay_test(
      f.problem, chip, batches, f.prior_lower, f.prior_upper, {}, {});
  EXPECT_TRUE(r.tested[0]);
  for (std::size_t p = 1; p < f.model.num_pairs(); ++p) {
    EXPECT_FALSE(r.tested[p]);
    EXPECT_DOUBLE_EQ(r.lower[p], f.prior_lower[p]);
    EXPECT_DOUBLE_EQ(r.upper[p], f.prior_upper[p]);
  }
}

TEST(DelayTest, OutOfRangeTruthStillTerminates) {
  Fixture f;
  stats::Rng rng(10);
  timing::Chip chip = f.model.sample_chip(rng);
  // Force the truth far above the prior upper bound (test escape).
  chip.max_delay[0] = f.prior_upper[0] + 50.0;
  const std::vector<Batch> batches{Batch{{0}}};
  TestOptions opts;
  opts.epsilon_ps = 0.5;
  const TestRunResult r = run_delay_test(
      f.problem, chip, batches, f.prior_lower, f.prior_upper, {}, opts);
  EXPECT_TRUE(r.tested[0]);
  EXPECT_LE(r.lower[0], r.upper[0]);
  // The measurement saturates at the prior upper bound.
  EXPECT_NEAR(r.upper[0], f.prior_upper[0], 1.0);
}

TEST(DelayTest, PinchedBoundsResolveEvenWithZeroEpsilon) {
  // A range whose bounds meet carries no width left to bisect, so the pair
  // must resolve at that point even when the width test can never pass
  // (epsilon <= 0). The former behavior kept the pinched pair active for
  // max_iterations_per_batch wasted tester steps and then reported it
  // force-resolved.
  Fixture f;
  stats::Rng rng(14);
  const timing::Chip chip = f.model.sample_chip(rng);
  std::vector<double> lower = f.prior_lower;
  std::vector<double> upper = f.prior_upper;
  upper[0] = lower[0];  // zero-width prior: nothing left to measure
  const std::vector<Batch> batches{Batch{{0}}};
  TestOptions opts;
  opts.epsilon_ps = 0.0;
  const TestRunResult r =
      run_delay_test(f.problem, chip, batches, lower, upper, {}, opts);
  EXPECT_TRUE(r.tested[0]);
  EXPECT_EQ(r.forced, 0u);
  EXPECT_DOUBLE_EQ(r.lower[0], r.upper[0]);
  // Resolution must come from the pinch, not from the safety stop.
  EXPECT_EQ(r.iterations, 1u);
}

TEST(DelayTest, EscapeClampPinchResolvesInsteadOfForcing) {
  // Two paths share a batch; path 1's range sits far above path 0's and its
  // true delay is a deep escape below everything. Whenever the shared
  // period lands in (or below) path 0's territory, path 1 passes and its
  // upper bound clamps under its lower bound — the escape pinch. With a
  // non-positive epsilon the width test can never resolve it, so only the
  // pinch rule keeps it from burning max_iterations_per_batch tester
  // steps. Path 0, bisecting a real range under epsilon = 0, is the one
  // the safety stop must catch — and the only one.
  Fixture f;
  stats::Rng rng(15);
  timing::Chip chip = f.model.sample_chip(rng);
  std::vector<double> lower = f.prior_lower;
  std::vector<double> upper = f.prior_upper;
  lower[0] = 100.0;
  upper[0] = 200.0;
  lower[1] = 300.0;
  upper[1] = 300.0;          // zero width: any outcome pinches it
  chip.max_delay[0] = 150.0;
  chip.max_delay[1] = 10.0;  // deep escape below its prior range
  const std::vector<Batch> batches{Batch{{0, 1}}};
  TestOptions opts;
  opts.epsilon_ps = 0.0;
  opts.align_with_buffers = false;
  opts.max_iterations_per_batch = 50;
  const TestRunResult r =
      run_delay_test(f.problem, chip, batches, lower, upper, {}, opts);
  EXPECT_TRUE(r.tested[1]);
  EXPECT_DOUBLE_EQ(r.lower[1], r.upper[1]);
  EXPECT_LE(r.upper[1], 300.0);
  // Only path 0 (unresolvable at epsilon = 0) hits the safety stop.
  EXPECT_TRUE(r.tested[0]);
  EXPECT_EQ(r.forced, 1u);
}

TEST(DelayTest, BadPriorSizesThrow) {
  Fixture f;
  stats::Rng rng(11);
  const timing::Chip chip = f.model.sample_chip(rng);
  const std::vector<double> short_prior{1.0};
  EXPECT_THROW(run_delay_test(f.problem, chip, {}, short_prior, short_prior,
                              {}, {}),
               std::invalid_argument);
}

TEST(DelayTest, IterationAccountingPerBatch) {
  // k singleton batches of the same path count must sum their iterations.
  Fixture f;
  stats::Rng rng(12);
  const timing::Chip chip = f.model.sample_chip(rng);
  TestOptions opts;
  opts.epsilon_ps = 1.0;
  const std::vector<Batch> one{Batch{{0}}};
  const std::vector<Batch> two{Batch{{0}}, Batch{{1}}};
  const auto r1 = run_delay_test(f.problem, chip, one, f.prior_lower,
                                 f.prior_upper, {}, opts);
  const auto r2 = run_delay_test(f.problem, chip, two, f.prior_lower,
                                 f.prior_upper, {}, opts);
  EXPECT_GT(r2.iterations, r1.iterations);
}

TEST(PathwiseTest, ResolvesEverything) {
  Fixture f;
  stats::Rng rng(13);
  const timing::Chip chip = f.model.sample_chip(rng);
  TestOptions opts;
  opts.epsilon_ps = 0.5;
  const TestRunResult r = run_pathwise_test(f.problem, chip, f.prior_lower,
                                            f.prior_upper, opts);
  for (std::size_t p = 0; p < f.model.num_pairs(); ++p) {
    EXPECT_TRUE(r.tested[p]);
    EXPECT_LT(r.upper[p] - r.lower[p], opts.epsilon_ps + 1e-9);
  }
  // Deterministic iteration count: sum of per-path bisections.
  std::size_t expected = 0;
  for (std::size_t p = 0; p < f.model.num_pairs(); ++p) {
    expected += pathwise_iterations(f.prior_lower[p], f.prior_upper[p],
                                    opts.epsilon_ps);
  }
  EXPECT_EQ(r.iterations, expected);
}

}  // namespace
}  // namespace effitest::core
