#include "core/grouping.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace effitest::core {
namespace {

/// Block covariance: two internal-rho blocks with weak cross correlation.
linalg::Matrix two_block_cov(std::size_t n1, std::size_t n2, double rho_in,
                             double rho_cross) {
  const std::size_t n = n1 + n2;
  linalg::Matrix cov(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const bool same_block = (i < n1) == (j < n1);
      cov(i, j) = i == j ? 1.0 : (same_block ? rho_in : rho_cross);
    }
  }
  return cov;
}

TEST(SelectPaths, EmptyCovariance) {
  const SelectionResult r = select_paths(linalg::Matrix());
  EXPECT_TRUE(r.groups.empty());
  EXPECT_TRUE(r.tested.empty());
}

TEST(SelectPaths, SingleHighCorrelationBlockNeedsFewTests) {
  linalg::Matrix cov = two_block_cov(10, 0, 0.99, 0.0);
  const SelectionResult r = select_paths(cov);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].members.size(), 10u);
  EXPECT_DOUBLE_EQ(r.groups[0].threshold, 0.95);
  // One dominant PC -> very few representatives.
  EXPECT_LE(r.tested.size(), 2u);
}

TEST(SelectPaths, TwoBlocksSeparate) {
  linalg::Matrix cov = two_block_cov(6, 6, 0.99, 0.1);
  const SelectionResult r = select_paths(cov);
  ASSERT_GE(r.groups.size(), 2u);
  // First group grabs exactly one block.
  EXPECT_EQ(r.groups[0].members.size(), 6u);
  // Every path lands in exactly one group.
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const PathGroup& g : r.groups) {
    for (std::size_t m : g.members) {
      EXPECT_TRUE(seen.insert(m).second) << "duplicate member " << m;
    }
    total += g.members.size();
  }
  EXPECT_EQ(total, 12u);
}

TEST(SelectPaths, ThresholdDecreasesPerRound) {
  linalg::Matrix cov = two_block_cov(4, 4, 0.99, 0.2);
  const SelectionResult r = select_paths(cov);
  for (std::size_t g = 1; g < r.groups.size(); ++g) {
    EXPECT_LT(r.groups[g].threshold, r.groups[g - 1].threshold);
  }
}

TEST(SelectPaths, IndependentPathsAllTestedEventually) {
  // Identity covariance: no correlation to exploit; PCA needs all
  // components, so every path in a group gets selected.
  const SelectionResult r = select_paths(linalg::Matrix::identity(5));
  EXPECT_EQ(r.tested.size(), 5u);
}

TEST(SelectPaths, SelectedAreGroupMembers) {
  linalg::Matrix cov = two_block_cov(5, 7, 0.97, 0.3);
  const SelectionResult r = select_paths(cov);
  for (const PathGroup& g : r.groups) {
    for (std::size_t s : g.selected) {
      EXPECT_TRUE(std::find(g.members.begin(), g.members.end(), s) !=
                  g.members.end());
    }
    EXPECT_EQ(g.selected.size(),
              std::min(g.num_components, g.members.size()));
  }
}

TEST(SelectPaths, TestedIsSortedUnion) {
  linalg::Matrix cov = two_block_cov(5, 7, 0.97, 0.3);
  const SelectionResult r = select_paths(cov);
  EXPECT_TRUE(std::is_sorted(r.tested.begin(), r.tested.end()));
  std::size_t from_groups = 0;
  for (const PathGroup& g : r.groups) from_groups += g.selected.size();
  EXPECT_EQ(r.tested.size(), from_groups);
}

TEST(SelectPaths, PcaCoverageControlsSelectionSize) {
  linalg::Matrix cov = two_block_cov(12, 0, 0.9, 0.0);
  GroupingOptions low;
  low.use_kaiser = false;
  low.pca_coverage = 0.80;
  GroupingOptions high;
  high.use_kaiser = false;
  high.pca_coverage = 0.999;
  EXPECT_LE(select_paths(cov, low).tested.size(),
            select_paths(cov, high).tested.size());
}

TEST(SelectPaths, NonSquareThrows) {
  EXPECT_THROW(select_paths(linalg::Matrix(2, 3)), std::invalid_argument);
}

TEST(SelectPaths, LargeGroupSubsamplingKeepsSelectionSmall) {
  // A 500-member equicorrelated block with the subsample cap engaged must
  // still be recognized as a one/two-component group.
  const std::size_t n = 500;
  linalg::Matrix cov(n, n, 0.97);
  for (std::size_t i = 0; i < n; ++i) cov(i, i) = 1.0;
  GroupingOptions opts;
  opts.pca_max_block = 64;
  // Coverage below the block correlation: one dominant PC regardless of
  // block size (coverage above rho would need O(n) components).
  opts.pca_coverage = 0.90;
  const SelectionResult r = select_paths(cov, opts);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].members.size(), n);
  EXPECT_LE(r.tested.size(), 3u);
  for (std::size_t s : r.tested) EXPECT_LT(s, n);
}

TEST(SelectPaths, SubsampleMatchesFullPcaComponentCount) {
  const std::size_t n = 120;
  linalg::Matrix cov = two_block_cov(60, 60, 0.96, 0.3);
  (void)n;
  GroupingOptions full;
  full.pca_max_block = 1000;
  full.pca_coverage = 0.90;  // below rho_in: size-independent PC count
  GroupingOptions capped;
  capped.pca_max_block = 40;
  capped.pca_coverage = 0.90;
  const SelectionResult a = select_paths(cov, full);
  const SelectionResult b = select_paths(cov, capped);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_NEAR(static_cast<double>(a.groups[g].num_components),
                static_cast<double>(b.groups[g].num_components), 1.0);
  }
}

TEST(CorrelationClusters, PartitionIsComplete) {
  linalg::Matrix cov = two_block_cov(4, 9, 0.98, 0.15);
  const auto clusters = correlation_clusters(cov);
  std::set<std::size_t> seen;
  for (const auto& cl : clusters) {
    for (std::size_t m : cl) EXPECT_TRUE(seen.insert(m).second);
  }
  EXPECT_EQ(seen.size(), 13u);
}

TEST(CorrelationClusters, NegativeThresholdSwallowsRest) {
  // Anti-correlated pair: eventually grouped when threshold <= 0.
  linalg::Matrix cov{{1.0, -0.9}, {-0.9, 1.0}};
  GroupingOptions opts;
  opts.corr_start = 0.95;
  opts.corr_step = 0.5;  // 0.95 -> 0.45 -> -0.05 (catch-all)
  const auto clusters = correlation_clusters(cov, opts);
  std::size_t total = 0;
  for (const auto& cl : clusters) total += cl.size();
  EXPECT_EQ(total, 2u);
}

}  // namespace
}  // namespace effitest::core
