#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace effitest::core {
namespace {

TEST(DelayPredictor, TestedPathsKeepMeasuredBounds) {
  const linalg::Matrix cov{{1.0, 0.8}, {0.8, 1.0}};
  const DelayPredictor pred(cov, {100.0, 100.0}, {0});
  const std::vector<double> ml{98.0};
  const std::vector<double> mu{99.0};
  const DelayBounds b = pred.predict(ml, mu);
  EXPECT_DOUBLE_EQ(b.lower[0], 98.0);
  EXPECT_DOUBLE_EQ(b.upper[0], 99.0);
}

TEST(DelayPredictor, PredictedBoundsAreMuPm3Sigma) {
  const double rho = 0.8;
  const linalg::Matrix cov{{1.0, rho}, {rho, 1.0}};
  const DelayPredictor pred(cov, {100.0, 100.0}, {1});
  // Measured upper bound 102 -> innovation +2 -> mu' = 100 + rho*2.
  const std::vector<double> ml{101.0};
  const std::vector<double> mu{102.0};
  const DelayBounds b = pred.predict(ml, mu);
  const double mu_post = 100.0 + rho * 2.0;
  const double sigma_post = std::sqrt(1.0 - rho * rho);
  EXPECT_NEAR(b.lower[0], mu_post - 3.0 * sigma_post, 1e-10);
  EXPECT_NEAR(b.upper[0], mu_post + 3.0 * sigma_post, 1e-10);
}

TEST(DelayPredictor, ConservativeUsesUpperBoundsOnly) {
  // Different lower bounds must not change the prediction (§3.4: the upper
  // bounds feed eq. 4).
  const linalg::Matrix cov{{1.0, 0.5}, {0.5, 1.0}};
  const DelayPredictor pred(cov, {10.0, 10.0}, {1});
  const DelayBounds a =
      pred.predict(std::vector<double>{9.0}, std::vector<double>{11.0});
  const DelayBounds b =
      pred.predict(std::vector<double>{5.0}, std::vector<double>{11.0});
  EXPECT_DOUBLE_EQ(a.lower[0], b.lower[0]);
  EXPECT_DOUBLE_EQ(a.upper[0], b.upper[0]);
}

TEST(DelayPredictor, HighCorrelationShrinksPredictedRange) {
  const linalg::Matrix loose{{1.0, 0.3}, {0.3, 1.0}};
  const linalg::Matrix tight{{1.0, 0.99}, {0.99, 1.0}};
  const DelayPredictor p_loose(loose, {0.0, 0.0}, {1});
  const DelayPredictor p_tight(tight, {0.0, 0.0}, {1});
  const std::vector<double> m{0.0};
  const double w_loose = p_loose.predict(m, m).upper[0] -
                         p_loose.predict(m, m).lower[0];
  const double w_tight = p_tight.predict(m, m).upper[0] -
                         p_tight.predict(m, m).lower[0];
  EXPECT_LT(w_tight, w_loose);
}

TEST(DelayPredictor, PosteriorSigmaOrderMatchesPredictedIndices) {
  const linalg::Matrix cov{
      {1.0, 0.9, 0.1}, {0.9, 1.0, 0.1}, {0.1, 0.1, 1.0}};
  const DelayPredictor pred(cov, {5.0, 5.0, 5.0}, {1});
  ASSERT_EQ(pred.predicted_indices().size(), 2u);
  EXPECT_EQ(pred.predicted_indices()[0], 0u);  // correlated with tested
  EXPECT_EQ(pred.predicted_indices()[1], 2u);  // nearly independent
  EXPECT_LT(pred.posterior_sigma()[0], pred.posterior_sigma()[1]);
}

TEST(DelayPredictor, SizeValidation) {
  const linalg::Matrix cov = linalg::Matrix::identity(3);
  EXPECT_THROW(DelayPredictor(cov, {1.0, 2.0}, {0}), std::invalid_argument);
  const DelayPredictor pred(cov, {1.0, 2.0, 3.0}, {0, 2});
  EXPECT_THROW(pred.predict(std::vector<double>{1.0},
                            std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(DelayPredictor, AllTestedNoPrediction) {
  const linalg::Matrix cov = linalg::Matrix::identity(2);
  const DelayPredictor pred(cov, {1.0, 2.0}, {0, 1});
  EXPECT_TRUE(pred.predicted_indices().empty());
  const std::vector<double> ml{0.5, 1.5};
  const std::vector<double> mu{1.5, 2.5};
  const DelayBounds b = pred.predict(ml, mu);
  EXPECT_DOUBLE_EQ(b.lower[1], 1.5);
  EXPECT_DOUBLE_EQ(b.upper[1], 2.5);
}

}  // namespace
}  // namespace effitest::core
