// Campaign checkpoint/resume: a campaign killed at ANY job boundary and
// resumed from its checkpoint file must produce results bit-identical to
// the uninterrupted run — the contract that makes --checkpoint/--resume
// safe to trust. Also pins the rejection paths (corrupt, truncated,
// mismatched-identity checkpoints) and the runner's injected-result
// validation.

#include "io/checkpoint_json.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "io/bench_json.hpp"
#include "netlist/generator.hpp"
#include "scenario/circuit_catalog.hpp"

namespace effitest {
namespace {

using core::CampaignJob;
using core::CampaignJobResult;
using core::CampaignOptions;
using core::CampaignResult;
using core::CampaignRunner;
using core::FlowMetrics;

/// Two tiny synthetic circuits: fast enough to run the whole campaign a
/// dozen times, real enough to exercise calibration, grouping and yield.
std::shared_ptr<const scenario::CircuitCatalog> tiny_catalog() {
  static const std::shared_ptr<const scenario::CircuitCatalog> catalog = [] {
    auto c = std::make_shared<scenario::CircuitCatalog>();
    netlist::GeneratorSpec a;
    a.name = "tiny_a";
    a.num_flip_flops = 24;
    a.num_gates = 150;
    a.num_buffers = 2;
    a.num_critical_paths = 10;
    a.seed = 3;
    netlist::GeneratorSpec b = a;
    b.name = "tiny_b";
    b.seed = 7;
    b.num_critical_paths = 8;
    c->add("tiny_a", a);
    c->add("tiny_b", b);
    return c;
  }();
  return catalog;
}

CampaignOptions base_options() {
  CampaignOptions o;
  o.catalog = tiny_catalog();
  o.flow.chips = 30;
  o.flow.seed = 99;
  o.calibration_chips = 100;
  o.threads = 2;
  return o;
}

/// The campaign shape under test: a quantile sweep over one circuit plus
/// a quantile job and a default-convention job of a second circuit.
std::vector<CampaignJob> test_jobs() {
  return {CampaignJob{"tiny_a", 0.0, 0.5}, CampaignJob{"tiny_a", 0.0, 0.8413},
          CampaignJob{"tiny_b", 0.0, 0.5}, CampaignJob{"tiny_b", 0.0, -1.0}};
}

/// Every deterministic FlowMetrics field, compared exactly (bitwise for
/// the doubles). The three *_seconds fields are wall times and excluded.
void expect_metrics_identical(const FlowMetrics& a, const FlowMetrics& b,
                              const std::string& context) {
  EXPECT_EQ(a.ns, b.ns) << context;
  EXPECT_EQ(a.ng, b.ng) << context;
  EXPECT_EQ(a.nb, b.nb) << context;
  EXPECT_EQ(a.np, b.np) << context;
  EXPECT_EQ(a.npt, b.npt) << context;
  EXPECT_EQ(a.num_groups, b.num_groups) << context;
  EXPECT_EQ(a.num_batches, b.num_batches) << context;
  EXPECT_EQ(a.num_selected, b.num_selected) << context;
  EXPECT_EQ(a.forced_resolutions, b.forced_resolutions) << context;
  EXPECT_EQ(a.infeasible_configs, b.infeasible_configs) << context;
  EXPECT_EQ(a.epsilon_ps, b.epsilon_ps) << context;
  EXPECT_EQ(a.designated_period, b.designated_period) << context;
  EXPECT_EQ(a.ta, b.ta) << context;
  EXPECT_EQ(a.tv, b.tv) << context;
  EXPECT_EQ(a.ta_pathwise, b.ta_pathwise) << context;
  EXPECT_EQ(a.tv_pathwise, b.tv_pathwise) << context;
  EXPECT_EQ(a.ra, b.ra) << context;
  EXPECT_EQ(a.rv, b.rv) << context;
  EXPECT_EQ(a.yield_no_buffer, b.yield_no_buffer) << context;
  EXPECT_EQ(a.yield_ideal, b.yield_ideal) << context;
  EXPECT_EQ(a.yield_proposed, b.yield_proposed) << context;
  EXPECT_EQ(a.yield_drop, b.yield_drop) << context;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Reference: the uninterrupted campaign.
const CampaignResult& reference_result() {
  static const CampaignResult result =
      CampaignRunner(base_options()).run(test_jobs());
  return result;
}

TEST(CampaignCheckpoint, ResumeAtEveryJobBoundaryIsBitIdentical) {
  const std::vector<CampaignJob> jobs = test_jobs();
  const CampaignResult& reference = reference_result();
  ASSERT_EQ(reference.jobs.size(), jobs.size());
  ASSERT_EQ(reference.completed_jobs(), jobs.size());

  const std::string identity = io::campaign_identity(jobs, base_options());
  // k = jobs completed before the "kill": every boundary, 0 through all.
  for (std::size_t k = 0; k <= jobs.size(); ++k) {
    const std::string path =
        temp_path("resume_k" + std::to_string(k) + ".json");

    // Phase 1: run the first k jobs with a checkpoint writer attached
    // (k == 0 writes the empty checkpoint the CLI creates before the
    // first job completes).
    {
      io::CheckpointWriter writer(path, identity, jobs.size());
      if (k > 0) {
        CampaignOptions opts = base_options();
        opts.max_jobs = k;
        opts.on_job_complete = [&writer](std::size_t index,
                                         const CampaignJobResult& r) {
          writer.record(index, r);
        };
        const CampaignResult partial = CampaignRunner(opts).run(jobs);
        ASSERT_EQ(partial.completed_jobs(), k) << "k=" << k;
      }
    }

    // Phase 2: load the file back and finish the campaign.
    const io::CampaignCheckpoint loaded = io::load_campaign_checkpoint(path);
    EXPECT_EQ(loaded.identity, identity);
    EXPECT_EQ(loaded.total_jobs, jobs.size());
    ASSERT_EQ(loaded.completed.size(), k) << "k=" << k;
    io::validate_campaign_checkpoint(loaded, identity, jobs.size(), path);

    CampaignOptions opts = base_options();
    opts.completed = loaded.completed;
    const CampaignResult resumed = CampaignRunner(opts).run(jobs);
    ASSERT_EQ(resumed.completed_jobs(), jobs.size()) << "k=" << k;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      // Jobs i < k round-tripped through JSON; jobs i >= k ran fresh.
      // Both must equal the uninterrupted run exactly.
      expect_metrics_identical(
          reference.jobs[i].metrics, resumed.jobs[i].metrics,
          "k=" + std::to_string(k) + " job=" + std::to_string(i));
    }
  }
}

TEST(CampaignCheckpoint, ResumeWithDifferentThreadCountIsIdentical) {
  const std::vector<CampaignJob> jobs = test_jobs();
  const std::string path = temp_path("resume_threads.json");

  // Checkpoint the first two jobs at threads=4.
  CampaignOptions four = base_options();
  four.threads = 4;
  const std::string identity = io::campaign_identity(jobs, four);
  io::CheckpointWriter writer(path, identity, jobs.size());
  four.max_jobs = 2;
  four.on_job_complete = [&writer](std::size_t index,
                                   const CampaignJobResult& r) {
    writer.record(index, r);
  };
  ASSERT_EQ(CampaignRunner(four).run(jobs).completed_jobs(), 2u);

  // Resume at threads=1: same identity (threads are excluded from it on
  // purpose — results are thread-invariant) and identical results.
  CampaignOptions one = base_options();
  one.threads = 1;
  EXPECT_EQ(io::campaign_identity(jobs, one), identity);
  const io::CampaignCheckpoint loaded = io::load_campaign_checkpoint(path);
  io::validate_campaign_checkpoint(loaded, io::campaign_identity(jobs, one),
                                   jobs.size(), path);
  one.completed = loaded.completed;
  const CampaignResult resumed = CampaignRunner(one).run(jobs);
  ASSERT_EQ(resumed.completed_jobs(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_metrics_identical(reference_result().jobs[i].metrics,
                             resumed.jobs[i].metrics,
                             "threads job=" + std::to_string(i));
  }
}

TEST(CampaignCheckpoint, BenchJsonIsByteIdenticalAfterResume) {
  const std::vector<CampaignJob> jobs = test_jobs();

  // Interrupt after job 1, resume, and render both results the way the
  // CLI does (wall_seconds forced to 0: wall time is the one legitimately
  // non-deterministic field).
  const std::string path = temp_path("resume_bench.json");
  const std::string identity = io::campaign_identity(jobs, base_options());
  {
    io::CheckpointWriter writer(path, identity, jobs.size());
    CampaignOptions opts = base_options();
    opts.max_jobs = 1;
    opts.on_job_complete = [&writer](std::size_t index,
                                     const CampaignJobResult& r) {
      writer.record(index, r);
    };
    (void)CampaignRunner(opts).run(jobs);
  }
  CampaignOptions opts = base_options();
  opts.completed = io::load_campaign_checkpoint(path).completed;
  const CampaignResult resumed = CampaignRunner(opts).run(jobs);

  const auto render = [&](const CampaignResult& result) {
    io::JsonReporter json("campaign", 0);
    for (const CampaignJobResult& r : result.jobs) {
      const FlowMetrics& m = r.metrics;
      const std::string label =
          r.job.circuit + "@q" + std::to_string(r.job.quantile);
      json.add(label, "td", m.designated_period);
      json.add(label, "np", static_cast<double>(m.np));
      json.add(label, "npt", static_cast<double>(m.npt));
      json.add(label, "ta", m.ta);
      json.add(label, "t'v", m.tv_pathwise);
      json.add(label, "ra", m.ra);
      json.add(label, "rv", m.rv);
      json.add(label, "yield_no_buffer", m.yield_no_buffer);
      json.add(label, "yield_proposed", m.yield_proposed);
      json.add(label, "yield_ideal", m.yield_ideal);
    }
    const std::string out = temp_path("bench_render.json");
    (void)json.write_file(out);
    return slurp(out);
  };

  EXPECT_EQ(render(reference_result()), render(resumed));
}

TEST(CampaignCheckpoint, CorruptAndTruncatedFilesAreRejected) {
  const std::string garbage = temp_path("garbage.json");
  {
    std::ofstream out(garbage);
    out << "this is not json{{{";
  }
  EXPECT_THROW((void)io::load_campaign_checkpoint(garbage),
               io::CheckpointError);
  // The corrupt-file error must tell the operator how to recover, not just
  // where the parse died: both --resume (restore a good copy) and
  // start-fresh (remove, rerun without --resume) are named.
  try {
    (void)io::load_campaign_checkpoint(garbage);
    FAIL() << "corrupt checkpoint was accepted";
  } catch (const io::CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("corrupt checkpoint"), std::string::npos) << what;
    EXPECT_NE(what.find("--resume"), std::string::npos) << what;
    EXPECT_NE(what.find("remove the file"), std::string::npos) << what;
  }

  EXPECT_THROW((void)io::load_campaign_checkpoint(
                   temp_path("does_not_exist.json")),
               io::CheckpointError);

  // A valid checkpoint truncated mid-file (a torn write without the
  // atomic-rename discipline) must be rejected, not half-loaded.
  const std::vector<CampaignJob> jobs = test_jobs();
  const std::string valid = temp_path("valid.json");
  {
    io::CheckpointWriter writer(valid, "0123456789abcdef", jobs.size());
    CampaignJobResult r;
    r.job = jobs[0];
    r.completed = true;
    writer.record(0, r);
  }
  const std::string text = slurp(valid);
  ASSERT_GT(text.size(), 40u);
  const std::string truncated = temp_path("truncated.json");
  {
    std::ofstream out(truncated, std::ios::binary);
    out << text.substr(0, text.size() / 2);
  }
  EXPECT_THROW((void)io::load_campaign_checkpoint(truncated),
               io::CheckpointError);

  // Wrong schema id and unknown keys are rejected too.
  const std::string wrong = temp_path("wrong_schema.json");
  {
    std::ofstream out(wrong);
    out << "{\"schema\": \"effitest-bench-v1\", \"identity\": \"x\", "
           "\"total_jobs\": 1, \"completed\": []}";
  }
  EXPECT_THROW((void)io::load_campaign_checkpoint(wrong), io::CheckpointError);
}

TEST(CampaignCheckpoint, MismatchedIdentityOrJobCountIsRejected) {
  const std::vector<CampaignJob> jobs = test_jobs();
  const std::string path = temp_path("mismatch.json");
  const std::string identity = io::campaign_identity(jobs, base_options());
  { io::CheckpointWriter writer(path, identity, jobs.size()); }
  const io::CampaignCheckpoint loaded = io::load_campaign_checkpoint(path);

  // A different seed is a different campaign.
  CampaignOptions other = base_options();
  other.flow.seed = 100;
  const std::string other_identity = io::campaign_identity(jobs, other);
  EXPECT_NE(other_identity, identity);
  EXPECT_THROW(io::validate_campaign_checkpoint(loaded, other_identity,
                                                jobs.size(), path),
               io::CheckpointError);

  // So is a different job list.
  std::vector<CampaignJob> fewer(jobs.begin(), jobs.end() - 1);
  EXPECT_NE(io::campaign_identity(fewer, base_options()), identity);
  EXPECT_THROW(io::validate_campaign_checkpoint(loaded, identity,
                                                jobs.size() - 1, path),
               io::CheckpointError);
}

TEST(CampaignCheckpoint, RunnerValidatesInjectedResults) {
  const std::vector<CampaignJob> jobs = test_jobs();
  CampaignJobResult ok;
  ok.job = jobs[0];
  ok.completed = true;

  {  // index out of range
    CampaignOptions opts = base_options();
    opts.completed.emplace_back(jobs.size(), ok);
    EXPECT_THROW((void)CampaignRunner(opts).run(jobs), std::invalid_argument);
  }
  {  // duplicate index
    CampaignOptions opts = base_options();
    opts.completed.emplace_back(0, ok);
    opts.completed.emplace_back(0, ok);
    EXPECT_THROW((void)CampaignRunner(opts).run(jobs), std::invalid_argument);
  }
  {  // job fields do not match the submitted list
    CampaignOptions opts = base_options();
    opts.completed.emplace_back(1, ok);  // jobs[1] has a different quantile
    EXPECT_THROW((void)CampaignRunner(opts).run(jobs), std::invalid_argument);
  }
}

TEST(CampaignCheckpoint, MaxJobsStopsAtADeterministicBoundary) {
  const std::vector<CampaignJob> jobs = test_jobs();
  CampaignOptions opts = base_options();
  opts.max_jobs = 2;
  const CampaignResult partial = CampaignRunner(opts).run(jobs);
  EXPECT_EQ(partial.completed_jobs(), 2u);
  // Pending jobs are chosen in input order: exactly the first two ran.
  EXPECT_TRUE(partial.jobs[0].completed);
  EXPECT_TRUE(partial.jobs[1].completed);
  EXPECT_FALSE(partial.jobs[2].completed);
  EXPECT_FALSE(partial.jobs[3].completed);
}

}  // namespace
}  // namespace effitest
