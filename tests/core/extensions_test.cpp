// Tests for the extension features layered on the core reproduction:
// analytic (SSTA-based) yield estimation, logic-masking exclusions flowing
// from the generator into batch construction, the brute-force-verified
// configurator optimum, and the table formatter used by the bench harness.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/configurator.hpp"
#include "core/flow.hpp"
#include "core/table.hpp"
#include "core/yield.hpp"
#include "netlist/generator.hpp"

namespace effitest::core {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;

  explicit Fixture(double exclusive_fraction = 0.0, std::uint64_t seed = 47)
      : circuit(netlist::generate_circuit([&] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 70;
          s.num_gates = 800;
          s.num_buffers = 2;
          s.num_critical_paths = 24;
          s.exclusive_fraction = exclusive_fraction;
          s.seed = seed;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}
};

TEST(AnalyticYield, MatchesMonteCarloQuantiles) {
  Fixture f;
  stats::Rng rng(3);
  const double t1_mc = period_quantile(f.problem, 0.5, 3000, rng);
  const double t1_an = period_quantile_estimate(f.problem, 0.5);
  const double sigma =
      period_quantile_estimate(f.problem, 0.8413) - t1_an;
  EXPECT_NEAR(t1_an, t1_mc, 0.6 * sigma);

  // Yield at the analytic median must be ~50%.
  EXPECT_NEAR(untuned_yield_estimate(f.problem, t1_an), 0.5, 1e-9);
  // And monotone in the period.
  EXPECT_LT(untuned_yield_estimate(f.problem, t1_an - sigma),
            untuned_yield_estimate(f.problem, t1_an + sigma));
}

TEST(AnalyticYield, AgreesWithSampledYield) {
  Fixture f;
  const double td = period_quantile_estimate(f.problem, 0.75);
  stats::Rng rng(5);
  int pass = 0;
  const int chips = 2500;
  for (int c = 0; c < chips; ++c) {
    const timing::Chip chip = f.model.sample_chip(rng);
    if (chip_passes_untuned(f.problem, chip, td)) ++pass;
  }
  // Clark's Gaussian-max is mildly conservative in the upper tail (the true
  // max of correlated Gaussians is right-skewed), so allow a wider band.
  EXPECT_NEAR(static_cast<double>(pass) / chips,
              untuned_yield_estimate(f.problem, td), 0.09);
}

TEST(Exclusions, GeneratorEmitsValidPairs) {
  Fixture f(0.10);
  EXPECT_FALSE(f.circuit.exclusive_edge_pairs.empty());
  for (const auto& [i, j] : f.circuit.exclusive_edge_pairs) {
    ASSERT_LT(i, f.circuit.critical_edges.size());
    ASSERT_LT(j, f.circuit.critical_edges.size());
    EXPECT_NE(i, j);
    // Exclusions are only emitted between batch-compatible edges.
    EXPECT_NE(f.circuit.critical_edges[i].first,
              f.circuit.critical_edges[j].first);
    EXPECT_NE(f.circuit.critical_edges[i].second,
              f.circuit.critical_edges[j].second);
  }
}

TEST(Exclusions, MapToMonitoredPairs) {
  Fixture f(0.10);
  const auto mapped = map_edge_exclusions(
      f.model, f.circuit.critical_edges, f.circuit.exclusive_edge_pairs);
  EXPECT_EQ(mapped.size(), f.circuit.exclusive_edge_pairs.size());
  for (const auto& [p, q] : mapped) {
    EXPECT_LT(p, f.model.num_pairs());
    EXPECT_LT(q, f.model.num_pairs());
  }
}

TEST(Exclusions, FlowSeparatesExcludedPaths) {
  Fixture f(0.10);
  FlowOptions opts;
  opts.use_prediction = false;  // batch everything so exclusions matter
  opts.batching.exclusions = map_edge_exclusions(
      f.model, f.circuit.critical_edges, f.circuit.exclusive_edge_pairs);
  stats::Rng rng(7);
  const FlowArtifacts art = prepare_flow(f.problem, opts, rng);
  for (const Batch& b : art.batches) {
    EXPECT_TRUE(batch_is_legal(f.problem, b, opts.batching));
  }
}

/// Brute-force optimum of eqs. 15-18 over the full discrete step grid for a
/// 2-buffer problem: the configurator must match it within one grid step.
TEST(ConfiguratorBruteForce, MatchesExhaustiveOptimum) {
  Fixture f;
  ASSERT_EQ(f.problem.num_buffers(), 2u);
  const auto means = f.model.max_means();
  const auto sigmas = f.model.max_sigmas();
  std::vector<double> lower(means.size());
  std::vector<double> upper(means.size());
  for (std::size_t p = 0; p < means.size(); ++p) {
    lower[p] = means[p] - sigmas[p];
    upper[p] = means[p] + sigmas[p];
  }

  for (double offset : {-4.0, 2.0, 10.0}) {
    const double td = *std::max_element(means.begin(), means.end()) + offset;

    // Exhaustive search over all 20x20 step assignments.
    double best_xi = std::numeric_limits<double>::infinity();
    std::vector<int> steps(2);
    for (int s0 = 0; s0 < f.problem.buffers()[0].steps; ++s0) {
      for (int s1 = 0; s1 < f.problem.buffers()[1].steps; ++s1) {
        steps[0] = s0;
        steps[1] = s1;
        bool feasible = true;
        double xi = 0.0;
        for (std::size_t p = 0; p < means.size(); ++p) {
          const double skew = f.problem.pair_skew(p, steps);
          if (skew > td - lower[p] + 1e-12) {
            feasible = false;
            break;
          }
          xi = std::max(xi, upper[p] + skew - td);
        }
        if (feasible) best_xi = std::min(best_xi, std::max(xi, 0.0));
      }
    }

    const ConfigResult r = configure_buffers(f.problem, td, lower, upper, {});
    if (std::isinf(best_xi)) {
      EXPECT_FALSE(r.feasible) << "offset " << offset;
    } else {
      ASSERT_TRUE(r.feasible) << "offset " << offset;
      EXPECT_NEAR(r.xi, best_xi,
                  f.problem.buffers()[0].step_size() + 0.05)
          << "offset " << offset;
    }
  }
}

TEST(TablePrinter, AlignsAndValidates) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22.50"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.50"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), std::invalid_argument);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
}

}  // namespace
}  // namespace effitest::core
