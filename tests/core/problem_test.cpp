#include "core/problem.hpp"

#include <gtest/gtest.h>

#include "netlist/generator.hpp"

namespace effitest::core {
namespace {

const timing::CircuitModel& tiny_model() {
  static const netlist::GeneratedCircuit circuit = [] {
    netlist::GeneratorSpec s;
    s.num_flip_flops = 50;
    s.num_gates = 600;
    s.num_buffers = 2;
    s.num_critical_paths = 16;
    s.seed = 11;
    return netlist::generate_circuit(s);
  }();
  static const netlist::CellLibrary lib = netlist::CellLibrary::standard();
  static const timing::CircuitModel model(circuit.netlist, lib,
                                          circuit.buffered_ffs);
  return model;
}

TEST(TunableBuffer, StepGrid) {
  const TunableBuffer b{0, -10.0, 20.0, 21};
  EXPECT_DOUBLE_EQ(b.step_size(), 1.0);
  EXPECT_DOUBLE_EQ(b.value(0), -10.0);
  EXPECT_DOUBLE_EQ(b.value(20), 10.0);
  EXPECT_DOUBLE_EQ(b.value(10), 0.0);
}

TEST(TunableBuffer, NearestStepClamps) {
  const TunableBuffer b{0, -10.0, 20.0, 21};
  EXPECT_EQ(b.nearest_step(0.4), 10);
  EXPECT_EQ(b.nearest_step(0.6), 11);
  EXPECT_EQ(b.nearest_step(-100.0), 0);
  EXPECT_EQ(b.nearest_step(100.0), 20);
  EXPECT_EQ(b.neutral_step(), 10);
}

TEST(Problem, PaperBufferRanges) {
  const Problem p(tiny_model());
  ASSERT_EQ(p.num_buffers(), 2u);
  const double t0 = p.reference_period();
  EXPECT_GT(t0, 0.0);
  for (const TunableBuffer& b : p.buffers()) {
    EXPECT_NEAR(b.tau, t0 / 8.0, 1e-9);         // tau = T/8 (ref. [19])
    EXPECT_NEAR(b.r, -t0 / 16.0, 1e-9);         // centered on zero
    EXPECT_EQ(b.steps, 20);                     // 20 discrete values
  }
}

TEST(Problem, ExplicitReferencePeriod) {
  const Problem p(tiny_model(), 400.0, 10);
  EXPECT_DOUBLE_EQ(p.reference_period(), 400.0);
  EXPECT_DOUBLE_EQ(p.buffers()[0].tau, 50.0);
  EXPECT_EQ(p.buffers()[0].steps, 10);
}

TEST(Problem, RejectsSillyStepCounts) {
  EXPECT_THROW(Problem(tiny_model(), 0.0, 1), std::invalid_argument);
}

TEST(Problem, PairBufferMapping) {
  const Problem p(tiny_model());
  const auto& model = p.model();
  for (std::size_t i = 0; i < model.num_pairs(); ++i) {
    const auto& pair = model.pairs()[i];
    EXPECT_EQ(p.src_buffer(i), model.buffer_index(pair.src_ff));
    EXPECT_EQ(p.dst_buffer(i), model.buffer_index(pair.dst_ff));
    EXPECT_TRUE(p.src_buffer(i) >= 0 || p.dst_buffer(i) >= 0);
  }
}

TEST(Problem, PairSkewComputation) {
  const Problem p(tiny_model());
  std::vector<int> steps = p.neutral_steps();
  // Find a pair with a source buffer.
  for (std::size_t i = 0; i < p.model().num_pairs(); ++i) {
    if (p.src_buffer(i) >= 0 && p.dst_buffer(i) < 0) {
      const auto b = static_cast<std::size_t>(p.src_buffer(i));
      steps[b] = 0;
      EXPECT_DOUBLE_EQ(p.pair_skew(i, steps), p.buffers()[b].value(0));
      steps[b] = 19;
      EXPECT_DOUBLE_EQ(p.pair_skew(i, steps), p.buffers()[b].value(19));
      return;
    }
  }
  FAIL() << "no src-buffered pair found";
}

TEST(Problem, NeutralStepsNearZero) {
  const Problem p(tiny_model());
  const std::vector<int> steps = p.neutral_steps();
  for (std::size_t b = 0; b < p.num_buffers(); ++b) {
    const double x = p.buffers()[b].value(steps[b]);
    EXPECT_LE(std::abs(x), p.buffers()[b].step_size());
  }
}

}  // namespace
}  // namespace effitest::core
