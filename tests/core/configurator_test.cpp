#include "core/configurator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/yield.hpp"
#include "netlist/generator.hpp"

namespace effitest::core {
namespace {

struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary lib = netlist::CellLibrary::standard();
  timing::CircuitModel model;
  Problem problem;

  explicit Fixture(std::uint64_t seed = 13)
      : circuit(netlist::generate_circuit([&] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = 70;
          s.num_gates = 800;
          s.num_buffers = 3;
          s.num_critical_paths = 18;
          s.seed = seed;
          return s;
        }())),
        model(circuit.netlist, lib, circuit.buffered_ffs),
        problem(model) {}
};

/// Check eq. 16 for every pair against given bounds: there must exist
/// D' in [l, u] with D' + skew <= td, i.e. skew <= td - l.
void expect_setup_feasible(const Problem& problem, std::span<const int> steps,
                           std::span<const double> lower, double td) {
  for (std::size_t p = 0; p < problem.model().num_pairs(); ++p) {
    EXPECT_LE(problem.pair_skew(p, steps), td - lower[p] + 1e-6)
        << "pair " << p;
  }
}

TEST(Configurator, GenerousPeriodAlwaysFeasible) {
  Fixture f;
  const auto means = f.model.max_means();
  std::vector<double> lower(means);
  std::vector<double> upper(means);
  const double td = *std::max_element(means.begin(), means.end()) + 100.0;
  const ConfigResult r = configure_buffers(f.problem, td, lower, upper, {});
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.xi, 0.0, 0.1);
  ASSERT_EQ(r.steps.size(), f.problem.num_buffers());
  expect_setup_feasible(f.problem, r.steps, lower, td);
}

TEST(Configurator, ImpossiblePeriodInfeasible) {
  Fixture f;
  const auto means = f.model.max_means();
  const double td =
      *std::min_element(means.begin(), means.end()) / 2.0;  // hopeless
  const ConfigResult r =
      configure_buffers(f.problem, td, means, means, {});
  EXPECT_FALSE(r.feasible);
}

TEST(Configurator, XiMeasuresUpperBoundOvershoot) {
  Fixture f;
  const auto means = f.model.max_means();
  std::vector<double> lower(means.size());
  std::vector<double> upper(means.size());
  for (std::size_t p = 0; p < means.size(); ++p) {
    lower[p] = means[p] - 10.0;
    upper[p] = means[p] + 10.0;
  }
  // td between lower and upper: feasible with xi > 0 (assumed delays pushed
  // below their upper bounds).
  const double td = *std::max_element(means.begin(), means.end());
  const ConfigResult r = configure_buffers(f.problem, td, lower, upper, {});
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.xi, 0.0);
  // xi is bounded by the range width plus quantization.
  EXPECT_LE(r.xi, 20.0 + f.problem.buffers()[0].step_size() + 0.1);
}

TEST(Configurator, StepsWithinRange) {
  Fixture f;
  const auto means = f.model.max_means();
  const double td = *std::max_element(means.begin(), means.end()) + 5.0;
  const ConfigResult r = configure_buffers(f.problem, td, means, means, {});
  ASSERT_TRUE(r.feasible);
  for (std::size_t b = 0; b < r.steps.size(); ++b) {
    EXPECT_GE(r.steps[b], 0);
    EXPECT_LT(r.steps[b], f.problem.buffers()[b].steps);
  }
}

TEST(Configurator, HoldBoundsRespected) {
  Fixture f;
  const auto means = f.model.max_means();
  const double td = *std::max_element(means.begin(), means.end()) + 50.0;
  // Force x0 - x1 >= half range: a binding hold constraint.
  const double bound = f.problem.buffers()[0].tau / 4.0;
  const std::vector<HoldConstraintX> hold{{0, 1, bound}};
  const ConfigResult r = configure_buffers(f.problem, td, means, means, hold);
  ASSERT_TRUE(r.feasible);
  const double x0 = f.problem.buffers()[0].value(r.steps[0]);
  const double x1 = f.problem.buffers()[1].value(r.steps[1]);
  EXPECT_GE(x0 - x1, bound - 1e-9);
}

TEST(Configurator, ContradictoryHoldBoundsInfeasible) {
  Fixture f;
  const auto means = f.model.max_means();
  const double td = *std::max_element(means.begin(), means.end()) + 50.0;
  const double too_much = f.problem.buffers()[0].tau * 3.0;
  const std::vector<HoldConstraintX> hold{{0, 1, too_much}};
  const ConfigResult r = configure_buffers(f.problem, td, means, means, hold);
  EXPECT_FALSE(r.feasible);
}

TEST(Configurator, MilpAgreesWithDifferenceConstraints) {
  Fixture f;
  const auto means = f.model.max_means();
  const auto sigmas = f.model.max_sigmas();
  std::vector<double> lower(means.size());
  std::vector<double> upper(means.size());
  for (std::size_t p = 0; p < means.size(); ++p) {
    lower[p] = means[p] - sigmas[p];
    upper[p] = means[p] + sigmas[p];
  }
  for (double td_offset : {-5.0, 0.0, 15.0}) {
    const double td =
        *std::max_element(means.begin(), means.end()) + td_offset;
    ConfigOptions diff_opts;
    ConfigOptions milp_opts;
    milp_opts.method = ConfigOptions::Method::kMilp;
    const ConfigResult a =
        configure_buffers(f.problem, td, lower, upper, {}, diff_opts);
    const ConfigResult b =
        configure_buffers(f.problem, td, lower, upper, {}, milp_opts);
    EXPECT_EQ(a.feasible, b.feasible) << "td offset " << td_offset;
    if (a.feasible && b.feasible) {
      // Same optimum up to the grid-floor conservatism of the
      // difference-constraint path (at most one step).
      EXPECT_NEAR(a.xi, b.xi, f.problem.buffers()[0].step_size() + 0.05)
          << "td offset " << td_offset;
    }
  }
}

TEST(Configurator, BoundsSizeValidated) {
  Fixture f;
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(configure_buffers(f.problem, 100.0, wrong, wrong, {}),
               std::invalid_argument);
}

TEST(ConfigureIdeal, FeasibleImpliesChipPasses) {
  Fixture f;
  stats::Rng rng(31);
  const auto means = f.model.max_means();
  const double td = *std::max_element(means.begin(), means.end()) + 3.0;
  int feasible = 0;
  for (int c = 0; c < 30; ++c) {
    const timing::Chip chip = f.model.sample_chip(rng);
    const ConfigResult r = configure_ideal(f.problem, td, chip);
    if (!r.feasible) continue;
    ++feasible;
    EXPECT_TRUE(chip_passes(f.problem, chip,
                            buffer_values(f.problem, r.steps), td))
        << "ideal configuration produced a failing chip";
  }
  EXPECT_GT(feasible, 0);
}

TEST(ConfigureIdeal, RescuesTunableChips) {
  // Chips failing untuned but with per-hub balance should be rescued.
  Fixture f;
  stats::Rng rng(37);
  const auto means = f.model.max_means();
  stats::Rng cal = rng.fork();
  const double td = period_quantile(f.problem, 0.5, 500, cal);
  int untuned_pass = 0;
  int ideal_pass = 0;
  const int chips = 120;
  for (int c = 0; c < chips; ++c) {
    const timing::Chip chip = f.model.sample_chip(rng);
    if (chip_passes_untuned(f.problem, chip, td)) ++untuned_pass;
    const ConfigResult r = configure_ideal(f.problem, td, chip);
    if (r.feasible &&
        chip_passes(f.problem, chip, buffer_values(f.problem, r.steps), td)) {
      ++ideal_pass;
    }
  }
  EXPECT_GT(ideal_pass, untuned_pass);
}

}  // namespace
}  // namespace effitest::core
