// Analytic-vs-Monte-Carlo cross-validation on the paper circuits: the
// engine's tuned-period mean/sigma must agree with the exact per-die
// reference (binary search + Bellman-Ford) within the tolerances
// documented in DESIGN.md §16 — mean within 2% relative (Clark's max is
// conservative, so the analytic mean sits slightly above), sigma within
// 15% relative. Pinned on s9234 / s13207 / s15850 at 1000 dies.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analytic/engine.hpp"
#include "scenario/circuit_catalog.hpp"

namespace effitest {
namespace {

void expect_cross_validated(const std::string& name) {
  const auto circuit =
      scenario::CircuitCatalog::shared_paper()->resolve(name, 1.0);
  const analytic::TunedPeriodAnalysis a =
      analytic::analyze_tuned_period(circuit->problem);

  analytic::McTunedOptions mopts;
  mopts.chips = 1000;
  mopts.seed = 2016;
  const analytic::McTunedPeriod mc =
      analytic::mc_tuned_period(circuit->problem, mopts);

  // DESIGN.md §16 tolerances. Means are ~200 ps on these circuits, so 2%
  // relative is ~4 ps against an observed gap of 1.4-3.2 ps.
  EXPECT_NEAR(a.tuned.mean, mc.mean, 0.02 * mc.mean) << name;
  EXPECT_NEAR(a.tuned.sigma(), mc.sigma, 0.15 * mc.sigma) << name;

  // Same direction every time: Clark's max overestimates the max of the
  // candidate cycle periods, so the analytic mean must not undershoot MC
  // by more than sampling noise.
  EXPECT_GT(a.tuned.mean, mc.mean - 0.5) << name;

  // The untuned analytic form brackets the tuned one on both estimates.
  EXPECT_GT(a.untuned.mean, a.tuned.mean) << name;
  EXPECT_GT(a.untuned.mean, mc.mean) << name;
}

TEST(AnalyticCrossValidation, S9234) { expect_cross_validated("s9234"); }
TEST(AnalyticCrossValidation, S13207) { expect_cross_validated("s13207"); }
TEST(AnalyticCrossValidation, S15850) { expect_cross_validated("s15850"); }

}  // namespace
}  // namespace effitest
