// Unit suite for the analytic post-tuning engine (src/analytic/): the
// per-die minimal feasible period against an independent brute-force
// grid search, the criticality accounting (masses sum to 1), the
// untuned form against the block-based SSTA it must reproduce, the
// yield-curve/quantile inverse pair, and bit-identical determinism of
// the Monte-Carlo reference across thread counts.

#include "analytic/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/problem.hpp"
#include "netlist/generator.hpp"
#include "stats/rng.hpp"
#include "timing/model.hpp"
#include "timing/ssta.hpp"

namespace effitest {
namespace {

/// A generated circuit + model + problem, shared per spec.
struct Fixture {
  netlist::GeneratedCircuit circuit;
  netlist::CellLibrary library;
  timing::CircuitModel model;
  core::Problem problem;

  explicit Fixture(std::size_t ffs, std::size_t gates, std::size_t buffers,
                   std::size_t paths, std::uint64_t seed)
      : circuit(netlist::generate_circuit([&] {
          netlist::GeneratorSpec s;
          s.num_flip_flops = ffs;
          s.num_gates = gates;
          s.num_buffers = buffers;
          s.num_critical_paths = paths;
          s.seed = seed;
          return s;
        }())),
        library(netlist::CellLibrary::standard()),
        model(circuit.netlist, library, circuit.buffered_ffs),
        problem(model) {}
};

const Fixture& one_buffer() {
  static const Fixture f(30, 300, 1, 12, 3);
  return f;
}

const Fixture& three_buffers() {
  static const Fixture f(60, 700, 3, 24, 5);
  return f;
}

TEST(AnalyticEngine, MinFeasiblePeriodMatchesBruteForceGrid) {
  // nb = 1: the tuning space is one scalar x in [l, u], so the exact
  // minimal feasible period is min over x of max over pairs of
  // (D_p + x_src - x_dst) (virtual node fixed at 0), computable by an
  // independent dense grid sweep. Statics bound from below.
  const Fixture& f = one_buffer();
  ASSERT_EQ(f.problem.num_buffers(), 1u);
  const double l = f.problem.buffers()[0].r;
  const double u = l + f.problem.buffers()[0].tau;

  stats::Rng rng(2016);
  timing::SampleWorkspace ws;
  constexpr int kGrid = 4000;
  const double resolution = (u - l) / kGrid;
  for (int c = 0; c < 20; ++c) {
    const timing::Chip chip = f.model.sample_chip(rng, ws);
    double best = std::numeric_limits<double>::infinity();
    for (int g = 0; g <= kGrid; ++g) {
      const double x = l + (u - l) * static_cast<double>(g) / kGrid;
      double worst = 0.0;
      for (const double d : chip.static_delay) worst = std::max(worst, d);
      for (std::size_t p = 0; p < f.model.num_pairs(); ++p) {
        const double xs = f.problem.src_buffer(p) >= 0 ? x : 0.0;
        const double xd = f.problem.dst_buffer(p) >= 0 ? x : 0.0;
        worst = std::max(worst, chip.max_delay[p] + xs - xd);
      }
      best = std::min(best, worst);
    }
    const double exact = analytic::min_feasible_period(f.problem, chip);
    EXPECT_NEAR(exact, best, resolution + 1e-6) << "chip " << c;
  }
}

TEST(AnalyticEngine, CriticalityMassesSumToOne) {
  const analytic::TunedPeriodAnalysis a =
      analytic::analyze_tuned_period(three_buffers().problem);
  ASSERT_FALSE(a.candidates.empty());

  double candidate_sum = 0.0;
  for (const analytic::CandidateConstraint& c : a.candidates) {
    EXPECT_GE(c.criticality, 0.0);
    EXPECT_LE(c.criticality, 1.0 + 1e-12);
    candidate_sum += c.criticality;
  }
  EXPECT_NEAR(candidate_sum, 1.0, 1e-9);

  double pair_sum = a.static_criticality;
  for (const double p : a.pair_criticality) {
    EXPECT_GE(p, 0.0);
    pair_sum += p;
  }
  // Pair attribution only loses mass if a traceback was abandoned (guard
  // counter) — never on these fixtures.
  EXPECT_NEAR(pair_sum, 1.0, 1e-9);
}

TEST(AnalyticEngine, UntunedMatchesBlockBasedSsta) {
  // The engine's untuned form is the model-variant block-based SSTA
  // result: same forms, same statistical max.
  const Fixture& f = three_buffers();
  const analytic::TunedPeriodAnalysis a =
      analytic::analyze_tuned_period(f.problem);
  const timing::CanonicalDelay reference =
      timing::ssta_required_period(f.model);
  EXPECT_NEAR(a.untuned.mean, reference.mean, 1e-9);
  EXPECT_NEAR(a.untuned.sigma(), reference.sigma(), 1e-9);
}

TEST(AnalyticEngine, TuningNeverHurts) {
  for (const Fixture* f : {&one_buffer(), &three_buffers()}) {
    const analytic::TunedPeriodAnalysis a =
        analytic::analyze_tuned_period(f->problem);
    EXPECT_LE(a.tuned.mean, a.untuned.mean + 1e-9);
  }
}

TEST(AnalyticEngine, YieldCurveIsMonotoneAndInvertsQuantile) {
  const analytic::TunedPeriodAnalysis a =
      analytic::analyze_tuned_period(three_buffers().problem);
  const double lo = a.tuned.mean - 4.0 * a.tuned.sigma();
  const double hi = a.tuned.mean + 4.0 * a.tuned.sigma();
  const auto curve = a.yield_curve(lo, hi, 33);
  ASSERT_EQ(curve.size(), 33u);
  EXPECT_DOUBLE_EQ(curve.front().first, lo);
  EXPECT_DOUBLE_EQ(curve.back().first, hi);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(a.yield_at(a.tuned_quantile(q)), q, 1e-9);
  }
  EXPECT_NEAR(a.yield_at(a.tuned.mean), 0.5, 1e-12);
}

TEST(AnalyticEngine, AnalysisIsDeterministic) {
  const analytic::TunedPeriodAnalysis a =
      analytic::analyze_tuned_period(three_buffers().problem);
  const analytic::TunedPeriodAnalysis b =
      analytic::analyze_tuned_period(three_buffers().problem);
  EXPECT_EQ(a.tuned.mean, b.tuned.mean);
  EXPECT_EQ(a.tuned.variance(), b.tuned.variance());
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].criticality, b.candidates[i].criticality);
    EXPECT_EQ(a.candidates[i].pairs, b.candidates[i].pairs);
  }
}

TEST(AnalyticEngine, McReferenceIsThreadInvariant) {
  analytic::McTunedOptions o1;
  o1.chips = 64;
  o1.seed = 7;
  o1.threads = 1;
  analytic::McTunedOptions o4 = o1;
  o4.threads = 4;
  const analytic::McTunedPeriod a =
      analytic::mc_tuned_period(three_buffers().problem, o1);
  const analytic::McTunedPeriod b =
      analytic::mc_tuned_period(three_buffers().problem, o4);
  ASSERT_EQ(a.periods.size(), b.periods.size());
  for (std::size_t i = 0; i < a.periods.size(); ++i) {
    EXPECT_EQ(a.periods[i], b.periods[i]) << "chip " << i;
  }
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.sigma, b.sigma);

  for (const double p : a.periods) {
    EXPECT_GT(p, 0.0);
  }
}

TEST(AnalyticEngine, McQuantileNearestRank) {
  analytic::McTunedPeriod mc;
  mc.periods = {3.0, 1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mc.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(mc.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(mc.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(mc.quantile(1.0), 4.0);
}

}  // namespace
}  // namespace effitest
