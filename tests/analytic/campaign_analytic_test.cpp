// The campaign-layer surface of the analytic engine: JobKind::kAnalytic
// jobs through CampaignRunner (calibration parity with flow jobs, the
// per-circuit analysis cache, metric fill-in), the checkpoint round-trip
// of the "kind" field (including identity separation and backward
// compatibility with pre-analytic checkpoints), and the scenario-spec
// "modes" grid.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "io/checkpoint_json.hpp"
#include "io/scenario_json.hpp"
#include "netlist/generator.hpp"
#include "scenario/circuit_catalog.hpp"

namespace effitest {
namespace {

using core::CampaignJob;
using core::CampaignOptions;
using core::CampaignResult;
using core::CampaignRunner;
using core::JobKind;

std::shared_ptr<const scenario::CircuitCatalog> tiny_catalog() {
  static const std::shared_ptr<const scenario::CircuitCatalog> catalog = [] {
    auto c = std::make_shared<scenario::CircuitCatalog>();
    netlist::GeneratorSpec a;
    a.name = "tiny_a";
    a.num_flip_flops = 24;
    a.num_gates = 150;
    a.num_buffers = 2;
    a.num_critical_paths = 10;
    a.seed = 3;
    c->add("tiny_a", a);
    return c;
  }();
  return catalog;
}

CampaignOptions base_options() {
  CampaignOptions o;
  o.catalog = tiny_catalog();
  o.flow.chips = 30;
  o.flow.seed = 99;
  o.calibration_chips = 100;
  o.threads = 2;
  return o;
}

TEST(JobKind, NamesRoundTripAndRejectUnknown) {
  EXPECT_STREQ(core::job_kind_name(JobKind::kFlow), "flow");
  EXPECT_STREQ(core::job_kind_name(JobKind::kAnalytic), "analytic");
  EXPECT_EQ(core::job_kind_from("flow"), JobKind::kFlow);
  EXPECT_EQ(core::job_kind_from("analytic"), JobKind::kAnalytic);
  EXPECT_THROW((void)core::job_kind_from("florb"), std::invalid_argument);
}

TEST(JobKind, CrossExpandsCircuitMajorOverKinds) {
  const auto jobs = CampaignRunner::cross(
      {"a", "b"}, {0.5}, {JobKind::kFlow, JobKind::kAnalytic});
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].circuit, "a");
  EXPECT_EQ(jobs[0].kind, JobKind::kFlow);
  EXPECT_EQ(jobs[1].circuit, "a");
  EXPECT_EQ(jobs[1].kind, JobKind::kAnalytic);
  EXPECT_EQ(jobs[2].circuit, "b");
  EXPECT_EQ(jobs[2].kind, JobKind::kFlow);
  // Default kinds = {flow}.
  for (const CampaignJob& j : CampaignRunner::cross({"a"}, {})) {
    EXPECT_EQ(j.kind, JobKind::kFlow);
  }
}

TEST(CampaignAnalytic, AnalyticJobsFillAnalyticMetrics) {
  // One flow job and one analytic job, both at the default convention —
  // the analytic job calibrates T_d at the T1 median with the same seed
  // stream a q=0.5 flow job would use.
  const std::vector<CampaignJob> jobs = {
      CampaignJob{"tiny_a", 0.0, 0.5, JobKind::kFlow},
      CampaignJob{"tiny_a", 0.0, -1.0, JobKind::kAnalytic},
      CampaignJob{"tiny_a", 0.0, 0.5, JobKind::kAnalytic},
  };
  const CampaignResult result = CampaignRunner(base_options()).run(jobs);
  ASSERT_EQ(result.jobs.size(), 3u);

  const core::FlowMetrics& flow = result.jobs[0].metrics;
  const core::FlowMetrics& analytic_default = result.jobs[1].metrics;
  const core::FlowMetrics& analytic_q = result.jobs[2].metrics;

  // Default-convention analytic == q=0.5 analytic (same calibration).
  EXPECT_EQ(analytic_default.designated_period,
            analytic_q.designated_period);
  // Same T_d as the flow job at the same quantile — cross-mode yields
  // line up at identical designated periods.
  EXPECT_EQ(flow.designated_period, analytic_q.designated_period);

  for (const core::FlowMetrics* m : {&analytic_default, &analytic_q}) {
    EXPECT_GT(m->np, 0u);
    EXPECT_EQ(m->nb, 2u);
    EXPECT_GT(m->untuned_mean, 0.0);
    EXPECT_GT(m->untuned_sigma, 0.0);
    EXPECT_GT(m->tuned_mean, 0.0);
    EXPECT_LE(m->tuned_mean, m->untuned_mean);
    EXPECT_GE(m->yield_ideal, 0.0);
    EXPECT_LE(m->yield_ideal, 1.0);
    EXPECT_GE(m->yield_no_buffer, 0.0);
    EXPECT_LE(m->yield_no_buffer, 1.0);
    // Tuning can only improve the yield at a fixed period.
    EXPECT_GE(m->yield_ideal, m->yield_no_buffer - 1e-12);
    // Analytic jobs never run the tester flow.
    EXPECT_EQ(m->npt, 0u);
  }
}

TEST(CampaignAnalytic, KindRoundTripsThroughCheckpoint) {
  const std::vector<CampaignJob> jobs = {
      CampaignJob{"tiny_a", 0.0, 0.5, JobKind::kFlow},
      CampaignJob{"tiny_a", 0.0, 0.5, JobKind::kAnalytic},
  };
  CampaignOptions opts = base_options();
  const std::string path = ::testing::TempDir() + "analytic_kind.ckpt";
  const std::string identity = io::campaign_identity(jobs, opts);
  {
    io::CheckpointWriter writer(path, identity, jobs.size(), {});
    opts.on_job_complete = [&writer](std::size_t index,
                                     const core::CampaignJobResult& r) {
      writer.record(index, r);
    };
    (void)CampaignRunner(opts).run(jobs);
  }
  const io::CampaignCheckpoint loaded = io::load_campaign_checkpoint(path);
  ASSERT_EQ(loaded.completed.size(), 2u);
  EXPECT_EQ(loaded.identity, identity);
  for (const auto& [idx, r] : loaded.completed) {
    EXPECT_EQ(r.job.kind, jobs[idx].kind) << idx;
  }

  // Resume accepts the matching job list and rejects a kind mismatch.
  CampaignOptions resume = base_options();
  resume.completed = loaded.completed;
  const CampaignResult resumed = CampaignRunner(resume).run(jobs);
  EXPECT_EQ(resumed.completed_jobs(), 2u);

  std::vector<CampaignJob> flipped = jobs;
  flipped[1].kind = JobKind::kFlow;
  CampaignOptions mismatched = base_options();
  mismatched.completed = loaded.completed;
  EXPECT_THROW(CampaignRunner(mismatched).run(flipped),
               std::invalid_argument);
}

TEST(CampaignAnalytic, IdentitySeparatesKindsButNotFlowOnlyCampaigns) {
  const CampaignOptions opts = base_options();
  const std::vector<CampaignJob> flow_jobs = {
      CampaignJob{"tiny_a", 0.0, 0.5, JobKind::kFlow}};
  const std::vector<CampaignJob> analytic_jobs = {
      CampaignJob{"tiny_a", 0.0, 0.5, JobKind::kAnalytic}};
  // An analytic campaign must never resume a flow checkpoint.
  EXPECT_NE(io::campaign_identity(flow_jobs, opts),
            io::campaign_identity(analytic_jobs, opts));
  // Flow-only identities are unchanged by the kind field's introduction:
  // the job line only carries " kind=..." for non-flow jobs, so existing
  // checkpoints stay resumable.
  EXPECT_EQ(io::campaign_identity(flow_jobs, opts),
            io::campaign_identity(
                {CampaignJob{"tiny_a", 0.0, 0.5}}, opts));
}

TEST(ScenarioModes, GridMultipliesJobsCircuitMajor) {
  const io::Scenario s = io::parse_scenario(
      R"({ "schema": "effitest-scenario-v1",
           "quantiles": [0.5, 0.8413],
           "modes": ["flow", "analytic"],
           "circuits": [ { "paper": "s9234" }, { "paper": "s13207" } ] })",
      "modes.json");
  ASSERT_EQ(s.jobs.size(), 8u);  // 2 circuits x 2 modes x 2 quantiles
  EXPECT_EQ(s.jobs[0].circuit, "s9234");
  EXPECT_EQ(s.jobs[0].kind, JobKind::kFlow);
  EXPECT_EQ(s.jobs[1].kind, JobKind::kFlow);
  EXPECT_EQ(s.jobs[2].kind, JobKind::kAnalytic);
  EXPECT_EQ(s.jobs[3].kind, JobKind::kAnalytic);
  EXPECT_EQ(s.jobs[4].circuit, "s13207");
}

TEST(ScenarioModes, DefaultsToFlowAndRejectsBadModes) {
  const io::Scenario s = io::parse_scenario(
      R"({ "schema": "effitest-scenario-v1",
           "circuits": [ { "paper": "s9234" } ] })",
      "default.json");
  ASSERT_EQ(s.jobs.size(), 1u);
  EXPECT_EQ(s.jobs[0].kind, JobKind::kFlow);

  EXPECT_THROW(io::parse_scenario(
                   R"({ "schema": "effitest-scenario-v1",
                        "modes": ["florb"],
                        "circuits": [ { "paper": "s9234" } ] })",
                   "bad.json"),
               io::ScenarioError);
  EXPECT_THROW(io::parse_scenario(
                   R"({ "schema": "effitest-scenario-v1",
                        "modes": [],
                        "circuits": [ { "paper": "s9234" } ] })",
                   "empty.json"),
               io::ScenarioError);
  EXPECT_THROW(io::parse_scenario(
                   R"({ "schema": "effitest-scenario-v1",
                        "modes": ["flow", "flow"],
                        "circuits": [ { "paper": "s9234" } ] })",
                   "dup.json"),
               io::ScenarioError);
}

}  // namespace
}  // namespace effitest
