#pragma once
// Analytic post-tuning SSTA + criticality engine.
//
// The Monte-Carlo flow configures buffers chip by chip; the companion
// analyses (arXiv 1705.04979, 1705.04986) ask the *design-time* question
// instead: given the statistical timing model and the tuning ranges, what is
// the distribution of the clock period the circuit can reach **after**
// optimal tuning, and which register pairs limit it?
//
// Model. A tuned chip is feasible at period T iff the difference-constraint
// system
//     x_s - x_d <= T - D_p        for every register pair p (setup),
//     l_b <= x_b <= u_b           for every tunable buffer b,
//     x_f  = 0                    for every unbuffered flip-flop f,
// has a solution (x = buffer delays; D_p = the pair's true max path delay,
// setup included). All unbuffered registers therefore contract into one
// virtual node 0, leaving a constraint graph over nb + 1 nodes. Standard
// difference-constraint theory turns feasibility into the absence of a
// negative cycle, i.e.
//     T* = max over cycles C of ( sum_{p in C} D_p - slack(C) ) / k(C)
// where k(C) counts the delay edges of C and slack(C) collects the
// buffer-range give (u - l terms) consumed along C. Every quantity D_p is a
// timing::CanonicalDelay, so T* is computed by propagating canonical forms:
// SUM along cycle edges, Clark max at merges — exactly the block-based SSTA
// algebra, on the *contracted* graph instead of the gate graph. Because the
// contracted graph has nb + 1 nodes and the binding ratio is attained on a
// simple cycle, a depth-(nb + 1) dynamic program enumerates every candidate
// exactly (at Clark accuracy).
//
// Criticality. The tuned period is a statistical max over candidate cycles;
// folding them largest-mean-first with Clark's tie probability Phi(alpha)
// assigns each candidate the probability that *it* defines the max
// (criticalities sum to 1 by construction). A candidate's mass is divided
// over the register pairs on its dominant cycle (argmax-by-mean traceback),
// so `pair_criticality` ranks which pairs still limit yield after tuning.
//
// Approximations (documented in DESIGN.md §16): Clark's Gaussian max,
// continuous buffer ranges (step quantization <= one step_size, identical on
// both sides of the cross-validation), hold constraints ignored. The
// `mc_tuned_period` reference computes the same quantity exactly per
// sampled die (binary search on T + Bellman-Ford negative-cycle detection)
// on the same per-chip streams the Monte-Carlo flow uses, which is what the
// analytic-vs-MC cross-validation tests pin.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "timing/ssta.hpp"

namespace effitest::analytic {

/// One candidate constraint cycle of the contracted tuning graph.
struct CandidateConstraint {
  /// Canonical form of (sum of pair delays - range slack) / num_edges: the
  /// period this cycle alone would require.
  timing::CanonicalDelay period;
  /// Monitored-pair indices on the dominant cycle (with multiplicity);
  /// empty for the promoted-static candidate.
  std::vector<std::size_t> pairs;
  /// Number of delay edges k of the cycle (1 for the static candidate).
  int num_edges = 1;
  /// True for the merged promoted-static-background candidate.
  bool is_static = false;
  /// Probability this candidate defines the tuned period (sums to 1).
  double criticality = 0.0;
};

struct AnalysisOptions {
  /// Maximum delay edges per cycle; 0 = num_buffers + 1 (covers every
  /// simple cycle of the contracted graph, hence exact at Clark accuracy).
  int max_cycle_edges = 0;
};

/// Result of the analytic post-tuning analysis.
struct TunedPeriodAnalysis {
  /// Untuned required period (monitored + promoted static pairs) — the
  /// Clark counterpart of core::untuned_required_period.
  timing::CanonicalDelay untuned;
  /// Post-tuning required period: the clock the chip population can reach
  /// with optimally configured buffers.
  timing::CanonicalDelay tuned;
  /// Deduplicated candidate cycles, sorted by mean descending, with their
  /// criticalities (sum == 1 whenever any candidate exists).
  std::vector<CandidateConstraint> candidates;
  /// Per monitored pair: probability mass of limiting the tuned period
  /// (candidate criticality split over the pairs of its cycle).
  std::vector<double> pair_criticality;
  /// Mass attributed to promoted static background pairs.
  double static_criticality = 0.0;

  /// P(tuned required period <= period): the post-tuning yield-vs-period
  /// curve at one point.
  [[nodiscard]] double yield_at(double period) const;
  /// q-quantile of the tuned period (inverse of yield_at).
  [[nodiscard]] double tuned_quantile(double q) const;
  /// `points` samples of the yield curve, equally spaced over [lo, hi].
  [[nodiscard]] std::vector<std::pair<double, double>> yield_curve(
      double lo, double hi, std::size_t points) const;
};

/// Analytic post-tuning analysis of one tuning problem. Deterministic, no
/// sampling; cost is O((nb+1)^4) canonical operations — independent of the
/// chip count that makes the Monte-Carlo flow expensive.
[[nodiscard]] TunedPeriodAnalysis analyze_tuned_period(
    const core::Problem& problem, const AnalysisOptions& options = {});

struct McTunedOptions {
  std::size_t chips = 1000;
  std::uint64_t seed = 2016;
  /// Worker threads (0 = shared-pool width); results are bit-identical for
  /// any value (parallel::deterministic_for + per-chip index_seed streams,
  /// the same convention as the flow's tester loop).
  std::size_t threads = 0;
};

/// Monte-Carlo reference distribution of the post-tuning required period.
struct McTunedPeriod {
  double mean = 0.0;
  double sigma = 0.0;
  /// Per-chip minimal feasible periods, chip-index order.
  std::vector<double> periods;

  /// Empirical q-quantile (nearest-rank on a sorted copy).
  [[nodiscard]] double quantile(double q) const;
};

/// Exact minimal feasible period of one sampled die: binary search on T
/// with Bellman-Ford negative-cycle detection over the contracted graph.
/// Continuous buffer ranges, hold ignored — the same relaxation as
/// analyze_tuned_period, so the two estimates converge as chips grow.
[[nodiscard]] double min_feasible_period(const core::Problem& problem,
                                         const timing::Chip& chip);

/// Sample `chips` dies (per-chip stream = Rng(index_seed(seed, i)), the
/// flow's convention) and compute each die's exact minimal feasible period.
[[nodiscard]] McTunedPeriod mc_tuned_period(const core::Problem& problem,
                                            const McTunedOptions& options = {});

}  // namespace effitest::analytic
