#include "analytic/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "core/yield.hpp"
#include "parallel/deterministic_for.hpp"
#include "stats/distributions.hpp"

namespace effitest::analytic {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

using timing::CanonicalDelay;

/// DelayForm -> canonical form (the ssta model-variant convention: gate
/// mismatch and extra inflation become independent variance).
[[nodiscard]] CanonicalDelay to_canonical(const timing::DelayForm& f) {
  CanonicalDelay d;
  d.mean = f.mean;
  d.loading = f.loading;
  d.indep_var = f.mismatch_var + f.extra_indep_var;
  return d;
}

/// Canonical form of one pair's true max delay (max over near-critical
/// alternatives — the quantity the pass rule tests).
[[nodiscard]] CanonicalDelay pair_form(const timing::MonitoredPair& p) {
  std::vector<CanonicalDelay> alts;
  alts.reserve(p.max_alts.size());
  for (const timing::DelayForm& f : p.max_alts) alts.push_back(to_canonical(f));
  if (alts.empty()) return to_canonical(p.max_form);
  return timing::statistical_max(alts);
}

/// Scale a canonical form by 1/k (cycle ratio).
[[nodiscard]] CanonicalDelay scale_form(CanonicalDelay f, double inv_k) {
  f.mean *= inv_k;
  for (auto& [idx, w] : f.loading) w *= inv_k;
  f.indep_var *= inv_k * inv_k;
  return f;
}

/// P(f > acc) under the joint Gaussian of two canonical forms — the Clark
/// tie probability the criticality fold accumulates.
[[nodiscard]] double tie_probability(const CanonicalDelay& acc,
                                     const CanonicalDelay& f) {
  const double theta2 = std::max(
      acc.variance() + f.variance() - 2.0 * timing::canonical_cov(acc, f), 0.0);
  const double theta = std::sqrt(theta2);
  if (theta < 1e-12) return f.mean > acc.mean ? 1.0 : 0.0;
  return stats::normal_cdf((f.mean - acc.mean) / theta);
}

/// One merged delay edge of the contracted graph: dst node -> src node.
struct Edge {
  int from = 0;  ///< node of the pair's destination buffer (0 = unbuffered)
  int to = 0;    ///< node of the pair's source buffer
  CanonicalDelay delay;        ///< statistical max over parallel pairs
  std::size_t dominant = 0;    ///< pair index with the largest mean delay
  double dominant_mean = kNegInf;
  bool init = false;
};

/// DP cell: best (statistical max) walk score reaching a node, plus the
/// argmax-by-mean predecessor for the criticality traceback.
struct State {
  CanonicalDelay form;
  bool valid = false;
  int pred_node = -1;
  /// >= 0: dominant pair of the delay edge taken; -1: range-edge closure.
  long long pred_pair = -1;
  double best_mean = kNegInf;
};

void merge_state(State& st, const CanonicalDelay& cand, int pred_node,
                 long long pred_pair) {
  if (!st.valid) {
    st.form = cand;
    st.valid = true;
    st.pred_node = pred_node;
    st.pred_pair = pred_pair;
    st.best_mean = cand.mean;
    return;
  }
  if (cand.mean > st.best_mean) {
    st.pred_node = pred_node;
    st.pred_pair = pred_pair;
    st.best_mean = cand.mean;
  }
  st.form = timing::canonical_max(st.form, cand);
}

/// Range-edge closure at one DP level: hop src -> node 0 (score +l_src),
/// then node 0 -> any buffer c (score -u_c). One pass of each suffices —
/// the range edges form a star at node 0 and a repeated 0 -> c -> 0 hop
/// costs l_c - u_c <= 0, so it never improves a max walk.
void range_closure(std::vector<State>& level, const std::vector<double>& lo,
                   const std::vector<double>& up) {
  const std::size_t n = level.size();
  for (std::size_t b = 1; b < n; ++b) {
    if (!level[b].valid) continue;
    merge_state(level[0], timing::canonical_shift(level[b].form, lo[b]),
                static_cast<int>(b), -1);
  }
  if (!level[0].valid) return;
  for (std::size_t c = 1; c < n; ++c) {
    merge_state(level[c], timing::canonical_shift(level[0].form, -up[c]), 0,
                -1);
  }
}

}  // namespace

double TunedPeriodAnalysis::yield_at(double period) const {
  const double s = tuned.sigma();
  if (s < 1e-12) return period >= tuned.mean ? 1.0 : 0.0;
  return stats::normal_cdf((period - tuned.mean) / s);
}

double TunedPeriodAnalysis::tuned_quantile(double q) const {
  return tuned.quantile(q);
}

std::vector<std::pair<double, double>> TunedPeriodAnalysis::yield_curve(
    double lo, double hi, std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (points == 0) return curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t =
        points == 1 ? lo
                    : lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(points - 1);
    curve.emplace_back(t, yield_at(t));
  }
  return curve;
}

TunedPeriodAnalysis analyze_tuned_period(const core::Problem& problem,
                                         const AnalysisOptions& options) {
  const timing::CircuitModel& model = problem.model();
  const std::size_t np = model.num_pairs();
  if (np == 0) {
    throw std::invalid_argument("analyze_tuned_period: model has no pairs");
  }
  const std::size_t nb = problem.num_buffers();
  const std::size_t n = nb + 1;  // node 0 = all unbuffered registers (x = 0)
  const int max_k = options.max_cycle_edges > 0
                        ? options.max_cycle_edges
                        : static_cast<int>(n);

  // Buffer ranges per node (node 0 is pinned at zero).
  std::vector<double> lo(n, 0.0), up(n, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    lo[b + 1] = problem.buffers()[b].r;
    up[b + 1] = problem.buffers()[b].r + problem.buffers()[b].tau;
  }

  // Untuned required period: statistical max over every monitored
  // near-critical form plus the promoted static background.
  std::vector<CanonicalDelay> untuned_forms;
  for (const timing::MonitoredPair& p : model.pairs()) {
    for (const timing::DelayForm& f : p.max_alts) {
      untuned_forms.push_back(to_canonical(f));
    }
    if (p.max_alts.empty()) untuned_forms.push_back(to_canonical(p.max_form));
  }
  for (const timing::DelayForm& f : model.static_forms()) {
    untuned_forms.push_back(to_canonical(f));
  }

  TunedPeriodAnalysis out;
  out.untuned = timing::statistical_max(untuned_forms);
  out.pair_criticality.assign(np, 0.0);

  // Merge parallel pair edges per contracted-graph arc dst -> src.
  std::map<std::pair<int, int>, Edge> edge_map;
  for (std::size_t p = 0; p < np; ++p) {
    const int from = problem.dst_buffer(p) + 1;  // -1 (unbuffered) -> node 0
    const int to = problem.src_buffer(p) + 1;
    const CanonicalDelay d = pair_form(model.pairs()[p]);
    Edge& e = edge_map[{from, to}];
    e.from = from;
    e.to = to;
    e.delay = e.init ? timing::canonical_max(e.delay, d) : d;
    e.init = true;
    if (d.mean > e.dominant_mean) {
      e.dominant = p;
      e.dominant_mean = d.mean;
    }
  }
  std::vector<Edge> edges;
  edges.reserve(edge_map.size());
  for (auto& [key, e] : edge_map) edges.push_back(std::move(e));

  // Candidate cycles. The promoted static background contracts into a
  // node-0 self-loop with no slack: one merged candidate.
  if (model.num_static_pairs() > 0) {
    std::vector<CanonicalDelay> statics;
    statics.reserve(model.num_static_pairs());
    for (const timing::DelayForm& f : model.static_forms()) {
      statics.push_back(to_canonical(f));
    }
    CandidateConstraint c;
    c.period = timing::statistical_max(statics);
    c.num_edges = 1;
    c.is_static = true;
    out.candidates.push_back(std::move(c));
  }

  // Depth-limited DP from every start node: level[k][v] = statistical max
  // over walks start -> v with exactly k delay edges (range hops free) of
  // (sum of delays - range slack). A walk closing at the start with k >= 1
  // edges is a candidate cycle requiring T >= score / k.
  std::map<std::vector<std::size_t>, std::size_t> seen_cycles;
  for (std::size_t start = 0; start < n; ++start) {
    std::vector<std::vector<State>> level(
        static_cast<std::size_t>(max_k) + 1, std::vector<State>(n));
    level[0][start].valid = true;  // zero form
    range_closure(level[0], lo, up);
    for (int k = 1; k <= max_k; ++k) {
      for (const Edge& e : edges) {
        const State& prev = level[k - 1][static_cast<std::size_t>(e.from)];
        if (!prev.valid) continue;
        merge_state(level[k][static_cast<std::size_t>(e.to)],
                    timing::canonical_sum(prev.form, e.delay), e.from,
                    static_cast<long long>(e.dominant));
      }
      range_closure(level[k], lo, up);
      const State& back = level[k][start];
      if (!back.valid) continue;

      // Traceback the argmax-by-mean cycle for criticality attribution.
      std::vector<std::size_t> cycle_pairs;
      int node = static_cast<int>(start);
      int kk = k;
      bool ok = true;
      for (std::size_t guard = 0; kk > 0 || node != static_cast<int>(start);
           ++guard) {
        if (guard > 4 * n * static_cast<std::size_t>(max_k) + 8) {
          ok = false;
          break;
        }
        const State& st = level[static_cast<std::size_t>(kk)]
                               [static_cast<std::size_t>(node)];
        if (st.pred_pair >= 0) {
          cycle_pairs.push_back(static_cast<std::size_t>(st.pred_pair));
          --kk;
        }
        node = st.pred_node;
      }
      if (!ok) cycle_pairs.clear();
      std::sort(cycle_pairs.begin(), cycle_pairs.end());

      // The same simple cycle is reachable from each of its nodes; keep the
      // tightest form per pair multiset.
      const CanonicalDelay period =
          scale_form(back.form, 1.0 / static_cast<double>(k));
      auto [it, inserted] =
          seen_cycles.try_emplace(cycle_pairs, out.candidates.size());
      if (inserted) {
        CandidateConstraint c;
        c.period = period;
        c.pairs = cycle_pairs;
        c.num_edges = k;
        out.candidates.push_back(std::move(c));
      } else if (period.mean > out.candidates[it->second].period.mean) {
        out.candidates[it->second].period = period;
        out.candidates[it->second].num_edges = k;
      }
    }
  }

  if (out.candidates.empty()) {
    throw std::invalid_argument(
        "analyze_tuned_period: no constraint cycle (disconnected tuning "
        "graph)");
  }

  // Criticality fold: largest mean first; each new candidate takes the tie
  // probability of beating the running max, previous candidates keep the
  // complement. Masses sum to 1 by construction.
  std::stable_sort(out.candidates.begin(), out.candidates.end(),
                   [](const CandidateConstraint& a,
                      const CandidateConstraint& b) {
                     return a.period.mean > b.period.mean;
                   });
  CanonicalDelay acc = out.candidates.front().period;
  out.candidates.front().criticality = 1.0;
  for (std::size_t i = 1; i < out.candidates.size(); ++i) {
    const CanonicalDelay& f = out.candidates[i].period;
    if (f.mean + 4.5 * f.sigma() < acc.mean - 4.5 * acc.sigma()) {
      out.candidates[i].criticality = 0.0;
      continue;
    }
    const double p = tie_probability(acc, f);
    for (std::size_t j = 0; j < i; ++j) {
      out.candidates[j].criticality *= 1.0 - p;
    }
    out.candidates[i].criticality = p;
    acc = timing::canonical_max(acc, f);
  }
  out.tuned = acc;

  // Attribute each candidate's mass to the register pairs of its cycle.
  for (const CandidateConstraint& c : out.candidates) {
    if (c.is_static) {
      out.static_criticality += c.criticality;
      continue;
    }
    if (c.pairs.empty()) continue;
    const double share =
        c.criticality / static_cast<double>(c.pairs.size());
    for (std::size_t p : c.pairs) out.pair_criticality[p] += share;
  }
  return out;
}

double min_feasible_period(const core::Problem& problem,
                           const timing::Chip& chip) {
  const timing::CircuitModel& model = problem.model();
  const std::size_t np = model.num_pairs();
  const std::size_t nb = problem.num_buffers();
  const std::size_t n = nb + 1;

  std::vector<double> lo_x(n, 0.0), up_x(n, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    lo_x[b + 1] = problem.buffers()[b].r;
    up_x[b + 1] = problem.buffers()[b].r + problem.buffers()[b].tau;
  }

  // Merge parallel pair edges: only the largest sampled delay binds.
  struct FlatEdge {
    int from, to;
    double delay;
  };
  std::vector<double> merged(n * n, kNegInf);
  for (std::size_t p = 0; p < np; ++p) {
    const std::size_t from = static_cast<std::size_t>(problem.dst_buffer(p) + 1);
    const std::size_t to = static_cast<std::size_t>(problem.src_buffer(p) + 1);
    merged[from * n + to] = std::max(merged[from * n + to], chip.max_delay[p]);
  }
  std::vector<FlatEdge> edges;
  double lower = 0.0;
  for (const double d : chip.static_delay) lower = std::max(lower, d);
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      const double d = merged[from * n + to];
      if (d == kNegInf) continue;
      edges.push_back({static_cast<int>(from), static_cast<int>(to), d});
      // Exact single-edge bound: the cycle src -> 0 -> dst -> src requires
      // T >= D + l_src - u_dst (zero slack on a self-loop).
      lower = std::max(lower, from == to ? d : d + lo_x[to] - up_x[from]);
    }
  }
  if (edges.empty()) return lower;

  // Feasible(T) <=> no negative cycle among delay edges (weight T - D) and
  // range edges 0 -> b (u_b), b -> 0 (-l_b). All-zero initial distances act
  // as a virtual source reaching every node.
  std::vector<double> dist(n);
  const auto feasible = [&](double T) {
    std::fill(dist.begin(), dist.end(), 0.0);
    for (std::size_t pass = 0; pass <= n; ++pass) {
      bool relaxed = false;
      for (const FlatEdge& e : edges) {
        const double cand = dist[static_cast<std::size_t>(e.from)] + T - e.delay;
        if (cand < dist[static_cast<std::size_t>(e.to)] - 1e-12) {
          dist[static_cast<std::size_t>(e.to)] = cand;
          relaxed = true;
        }
      }
      for (std::size_t b = 1; b < n; ++b) {
        if (dist[0] + up_x[b] < dist[b] - 1e-12) {
          dist[b] = dist[0] + up_x[b];
          relaxed = true;
        }
        if (dist[b] - lo_x[b] < dist[0] - 1e-12) {
          dist[0] = dist[b] - lo_x[b];
          relaxed = true;
        }
      }
      if (!relaxed) return true;
    }
    return false;
  };

  double hi = std::max(core::untuned_required_period(problem, chip), lower);
  if (feasible(lower)) return lower;
  double lo = lower;
  for (int it = 0;
       it < 64 && hi - lo > 1e-9 * std::max(1.0, std::abs(hi)); ++it) {
    const double mid = 0.5 * (lo + hi);
    (feasible(mid) ? hi : lo) = mid;
  }
  return hi;
}

double McTunedPeriod::quantile(double q) const {
  if (periods.empty()) return 0.0;
  std::vector<double> sorted = periods;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

McTunedPeriod mc_tuned_period(const core::Problem& problem,
                              const McTunedOptions& options) {
  McTunedPeriod out;
  out.periods.assign(options.chips, 0.0);
  parallel::ForOptions opts;
  opts.threads = options.threads;
  parallel::deterministic_for(
      options.chips, opts, options.seed,
      [&](std::size_t i, stats::Rng& rng) {
        timing::SampleWorkspace ws;
        const timing::Chip chip = problem.model().sample_chip(rng, ws);
        out.periods[i] = min_feasible_period(problem, chip);
      });
  if (out.periods.empty()) return out;
  double sum = 0.0;
  for (const double p : out.periods) sum += p;
  out.mean = sum / static_cast<double>(out.periods.size());
  double ss = 0.0;
  for (const double p : out.periods) ss += (p - out.mean) * (p - out.mean);
  out.sigma = out.periods.size() > 1
                  ? std::sqrt(ss / static_cast<double>(out.periods.size() - 1))
                  : 0.0;
  return out;
}

}  // namespace effitest::analytic
