#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace effitest::parallel {

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max<std::size_t>(
      2, std::thread::hardware_concurrency()));
  return pool;
}

ThreadPool::ThreadPool(std::size_t width) : width_(width) {}

void ThreadPool::start_locked() {
  // Flag first: if a thread constructor throws mid-loop, a retry must not
  // spawn a second worker set (the "at most width() workers" invariant the
  // nested-parallelism design relies on). Fewer workers is fine — callers
  // never depend on pool pickup for progress.
  started_ = true;
  workers_.reserve(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    workers_.emplace_back([this] {
      std::unique_lock lock(mutex_);
      while (true) {
        work_ready_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        task();
        lock.lock();
      }
    });
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    if (!started_) start_locked();
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

}  // namespace effitest::parallel
