#pragma once
// Deterministic sharded-index parallel execution.
//
// `deterministic_for` / `deterministic_reduce` split an index range [0, n)
// into a chunk sequence that depends ONLY on n — never on the worker count —
// and let workers claim chunks dynamically. A body either writes only
// index-owned state, or accumulates into its chunk's private slot in
// ascending index order; chunk slots are then folded in chunk order after
// the join. Consequently the result is bit-identical for ANY worker count,
// including 1 — doubles included, because the grouping of every
// floating-point reduction is fixed by n alone.
//
// Seeding rule (DESIGN.md §4/§8): stochastic bodies receive a stats::Rng
// seeded as
//
//   index_seed(base, i) = base ^ (0x9e3779b97f4a7c15 * (i + 1))
//
// so index i's stream is a function of (base, i) only. This is the same
// per-chip contract the tester loop has always had; hold-bound sampling and
// every future stochastic loop use it too.
//
// Scheduling: work runs on the shared ThreadPool, but the CALLER is always a
// worker — it claims chunks like everyone else and only sleeps once no chunk
// is left unclaimed. Pool helpers that get scheduled late (or never, on a
// saturated pool) find no work and exit. Two consequences:
//  * nested loops (campaign -> flow -> chip loop) cannot deadlock;
//  * forward progress never depends on pool pickup.
//
// Exceptions thrown by the body are captured per chunk; every chunk still
// runs, and after the join the LOWEST-INDEX chunk's exception is rethrown on
// the caller. Since bodies are deterministic per index, the propagated
// exception is the same for any worker count — the serial order's first
// failure.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace effitest::parallel {

/// Golden-ratio stride decorrelating per-index seed streams.
inline constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;

/// Seed of index i's private stream under master seed `base`.
[[nodiscard]] constexpr std::uint64_t index_seed(std::uint64_t base,
                                                 std::size_t index) {
  return base ^ (kSeedStride * (static_cast<std::uint64_t>(index) + 1));
}

struct ForOptions {
  /// Worker threads. 0 = shared-pool width (hardware concurrency). The
  /// effective count is additionally clamped to the number of work items —
  /// see resolve_workers. Results never depend on this value.
  std::size_t threads = 0;
  /// Ranges smaller than this run inline on the caller. Purely an overhead
  /// knob: chunking (and therefore every result bit) is unchanged.
  std::size_t serial_below = 2;
};

/// Effective worker count for `items` work items: `requested` (0 = the
/// shared-pool width) clamped to `items` and to pool width + 1 (the pool's
/// helpers plus the participating caller — more can never run
/// concurrently, so higher requests would only queue dead no-op tasks), at
/// least 1. This is the clamp documented on FlowOptions::threads: a run
/// over 3 chips uses at most 3 workers no matter what was requested.
[[nodiscard]] inline std::size_t resolve_workers(std::size_t requested,
                                                 std::size_t items) {
  std::size_t w = requested == 0 ? ThreadPool::shared().width() : requested;
  w = std::min(w, ThreadPool::shared().width() + 1);
  w = std::min(w, items);
  return w == 0 ? 1 : w;
}

namespace detail {

/// Upper bound on chunks per loop. Chunking depends only on n: n chunks when
/// n < kMaxChunks, else kMaxChunks near-equal contiguous blocks. 256 shards
/// keep dynamic claiming balanced (uneven chunk costs, e.g. the shrinking
/// covariance triangle) without bloating per-chunk accumulator storage.
inline constexpr std::size_t kMaxChunks = 256;

[[nodiscard]] inline std::size_t chunk_count(std::size_t n) {
  return n < kMaxChunks ? n : kMaxChunks;
}

[[nodiscard]] inline std::size_t chunk_begin(std::size_t n, std::size_t chunks,
                                             std::size_t c) {
  return n / chunks * c + std::min(c, n % chunks);
}

/// Run chunk_body(c) for every chunk of [0, n), caller participating.
template <typename ChunkBody>
void run_chunks(std::size_t n, const ForOptions& opts, ChunkBody&& chunk_body) {
  if (n == 0) return;
  const std::size_t chunks = chunk_count(n);
  const std::size_t workers = resolve_workers(opts.threads, chunks);
  if (workers <= 1 || n < opts.serial_below) {
    for (std::size_t c = 0; c < chunks; ++c) chunk_body(c);
    return;
  }

  struct State {
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable all_done;
    // Per-chunk capture (each slot written only by the chunk's claimer);
    // the lowest-index one is rethrown, making the propagated exception
    // independent of scheduling.
    std::vector<std::exception_ptr> errors;
  };
  // Heap-shared so helpers scheduled after the caller returned (they found
  // no chunk left) can still touch the control block safely.
  auto state = std::make_shared<State>();
  state->chunks = chunks;
  state->errors.resize(chunks);

  // The body itself stays on the caller's frame: a helper only dereferences
  // it while holding an unfinished chunk, which keeps the caller waiting.
  ChunkBody* body = &chunk_body;
  auto work = [state, body] {
    while (true) {
      const std::size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= state->chunks) return;
      try {
        (*body)(c);
      } catch (...) {
        state->errors[c] = std::current_exception();
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->chunks) {
        std::lock_guard lock(state->mutex);
        state->all_done.notify_all();
      }
    }
  };

  // A submit() that throws (allocation failure) must not unwind past this
  // frame while already-queued helpers can still claim chunks through the
  // dangling body pointer — fewer helpers is fine, the caller drains the
  // rest itself.
  try {
    for (std::size_t w = 1; w < workers; ++w) ThreadPool::shared().submit(work);
  } catch (...) {
  }
  work();

  std::unique_lock lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->chunks;
  });
  for (const std::exception_ptr& e : state->errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace detail

/// body(i) for every i in [0, n). The body must only write state owned by
/// index i (distinct matrix cells, slot i of a result vector, ...).
template <typename Body>
void deterministic_for(std::size_t n, const ForOptions& opts, Body&& body) {
  const std::size_t chunks = detail::chunk_count(n);
  detail::run_chunks(n, opts, [&, n, chunks](std::size_t c) {
    const std::size_t end = detail::chunk_begin(n, chunks, c + 1);
    for (std::size_t i = detail::chunk_begin(n, chunks, c); i < end; ++i) {
      body(i);
    }
  });
}

/// Seeded variant: body(i, rng) where rng is freshly seeded
/// index_seed(seed_base, i) — index i's stream is independent of every other
/// index and of the worker count.
template <typename Body>
void deterministic_for(std::size_t n, const ForOptions& opts,
                       std::uint64_t seed_base, Body&& body) {
  deterministic_for(n, opts, [&](std::size_t i) {
    stats::Rng rng(index_seed(seed_base, i));
    body(i, rng);
  });
}

/// Map-reduce over [0, n): body(i, acc) accumulates index i into its chunk's
/// private accumulator (indices ascending within a chunk); combine(total,
/// chunk_acc) folds the chunk accumulators in chunk order. Acc must be
/// default-constructible; the chunk layout depends only on n, so the folded
/// result — floating point included — is bit-identical for any worker count.
template <typename Acc, typename Body, typename Combine>
[[nodiscard]] Acc deterministic_reduce(std::size_t n, const ForOptions& opts,
                                       Body&& body, Combine&& combine) {
  const std::size_t chunks = detail::chunk_count(n);
  std::vector<Acc> slots(chunks);
  detail::run_chunks(n, opts, [&, n, chunks](std::size_t c) {
    const std::size_t end = detail::chunk_begin(n, chunks, c + 1);
    for (std::size_t i = detail::chunk_begin(n, chunks, c); i < end; ++i) {
      body(i, slots[c]);
    }
  });
  Acc total{};
  for (const Acc& s : slots) combine(total, s);
  return total;
}

/// Seeded map-reduce: body(i, rng, acc) with rng as in the seeded
/// deterministic_for. This is the shape of the Monte-Carlo chip loop.
template <typename Acc, typename Body, typename Combine>
[[nodiscard]] Acc deterministic_reduce(std::size_t n, const ForOptions& opts,
                                       std::uint64_t seed_base, Body&& body,
                                       Combine&& combine) {
  return deterministic_reduce<Acc>(
      n, opts,
      [&](std::size_t i, Acc& acc) {
        stats::Rng rng(index_seed(seed_base, i));
        body(i, rng, acc);
      },
      std::forward<Combine>(combine));
}

}  // namespace effitest::parallel
