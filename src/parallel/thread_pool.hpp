#pragma once
// Process-wide shared worker pool.
//
// The pool is lazily started: constructing or querying it spawns no threads;
// the workers come up on the first submit(). Every parallel section of the
// library (the Monte-Carlo chip loop, the covariance fill, hold-bound
// sampling, Procedure-1 PCA, the campaign runner) shares this one pool, so
// nested parallelism never multiplies OS threads — the process runs at most
// `width()` pool workers regardless of how many loops are in flight.
//
// Tasks are fire-and-forget and must never block on the pool's own progress.
// `parallel::deterministic_for` (the only in-tree submitter) obeys this by
// construction: its caller claims work shards itself, so a task that is
// scheduled late — or never — is a harmless no-op.

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace effitest::parallel {

class ThreadPool {
 public:
  /// The process-wide pool. Safe to call from any thread; does not start
  /// workers by itself.
  [[nodiscard]] static ThreadPool& shared();

  /// Worker count once started: max(2, hardware concurrency), so explicit
  /// multi-thread requests exercise real concurrency even on 1-core hosts.
  [[nodiscard]] std::size_t width() const { return width_; }

  /// Enqueue a task. Starts the workers on first use. During shutdown the
  /// task is dropped (submitters must not rely on pool pickup for progress).
  void submit(std::function<void()> task);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

 private:
  explicit ThreadPool(std::size_t width);
  void start_locked();

  const std::size_t width_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace effitest::parallel
