#include "io/checkpoint_json.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/json.hpp"
#include "scenario/circuit_catalog.hpp"

namespace effitest::io {

namespace {

constexpr const char* kSchema = "effitest-checkpoint-v1";

// One table drives both serialization and parsing, so the two sides can
// never drift out of sync. Every FlowMetrics field is persisted: doubles
// through format_double (max_digits10) for an exact bit round-trip.
struct SizeField {
  const char* name;
  std::size_t core::FlowMetrics::* member;
};
struct DoubleField {
  const char* name;
  double core::FlowMetrics::* member;
};

constexpr SizeField kSizeFields[] = {
    {"ns", &core::FlowMetrics::ns},
    {"ng", &core::FlowMetrics::ng},
    {"nb", &core::FlowMetrics::nb},
    {"np", &core::FlowMetrics::np},
    {"npt", &core::FlowMetrics::npt},
    {"num_groups", &core::FlowMetrics::num_groups},
    {"num_batches", &core::FlowMetrics::num_batches},
    {"num_selected", &core::FlowMetrics::num_selected},
    {"forced_resolutions", &core::FlowMetrics::forced_resolutions},
    {"infeasible_configs", &core::FlowMetrics::infeasible_configs},
};

constexpr DoubleField kDoubleFields[] = {
    {"epsilon_ps", &core::FlowMetrics::epsilon_ps},
    {"designated_period", &core::FlowMetrics::designated_period},
    {"ta", &core::FlowMetrics::ta},
    {"tv", &core::FlowMetrics::tv},
    {"ta_pathwise", &core::FlowMetrics::ta_pathwise},
    {"tv_pathwise", &core::FlowMetrics::tv_pathwise},
    {"ra", &core::FlowMetrics::ra},
    {"rv", &core::FlowMetrics::rv},
    {"yield_no_buffer", &core::FlowMetrics::yield_no_buffer},
    {"yield_ideal", &core::FlowMetrics::yield_ideal},
    {"yield_proposed", &core::FlowMetrics::yield_proposed},
    {"yield_drop", &core::FlowMetrics::yield_drop},
    {"tp_seconds", &core::FlowMetrics::tp_seconds},
    {"tt_seconds_per_chip", &core::FlowMetrics::tt_seconds_per_chip},
    {"ts_seconds_per_chip", &core::FlowMetrics::ts_seconds_per_chip},
};

// Analytic-SSTA fields (campaign JobKind::kAnalytic). Written always,
// optional on read so checkpoints that predate the analytic engine still
// resume (they default to 0, matching what their flow jobs carried).
constexpr DoubleField kOptionalDoubleFields[] = {
    {"untuned_mean", &core::FlowMetrics::untuned_mean},
    {"untuned_sigma", &core::FlowMetrics::untuned_sigma},
    {"tuned_mean", &core::FlowMetrics::tuned_mean},
    {"tuned_sigma", &core::FlowMetrics::tuned_sigma},
};

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw CheckpointError(path + ": " + what);
}

// --- schema reading --------------------------------------------------------

const json::Value& require(const std::string& path, const json::Value& obj,
                           const char* key, json::Value::Kind kind) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    fail(path, "line " + std::to_string(obj.line) + ": missing key \"" +
                   key + "\"");
  }
  if (v->kind != kind) {
    fail(path, "line " + std::to_string(v->line) + ": \"" + key +
                   "\" must be a " + std::string(json::kind_name(kind)) +
                   ", got " + json::kind_name(v->kind));
  }
  return *v;
}

void reject_unknown_keys(const std::string& path, const json::Value& obj,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, value] : obj.object) {
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok) {
      fail(path, "line " + std::to_string(value.line) + ": unknown key \"" +
                     key + "\"");
    }
  }
}

std::size_t checked_index(const std::string& path, const json::Value& v,
                          const char* key) {
  const double d = v.number;
  if (!(d >= 0.0) || d != std::floor(d) || d > 9.0e15) {
    fail(path, "line " + std::to_string(v.line) + ": \"" + key +
                   "\" must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

core::FlowMetrics read_metrics(const std::string& path,
                               const json::Value& obj) {
  core::FlowMetrics m;
  std::size_t expected = 0;
  for (const SizeField& f : kSizeFields) {
    m.*(f.member) = checked_index(
        path, require(path, obj, f.name, json::Value::Kind::kNumber), f.name);
    ++expected;
  }
  for (const DoubleField& f : kDoubleFields) {
    m.*(f.member) =
        require(path, obj, f.name, json::Value::Kind::kNumber).number;
    ++expected;
  }
  for (const DoubleField& f : kOptionalDoubleFields) {
    const json::Value* v = obj.find(f.name);
    if (v == nullptr) continue;
    if (v->kind != json::Value::Kind::kNumber) {
      fail(path, "line " + std::to_string(v->line) + ": \"" +
                     std::string(f.name) + "\" must be a number");
    }
    m.*(f.member) = v->number;
    ++expected;
  }
  if (obj.object.size() != expected) {
    fail(path, "line " + std::to_string(obj.line) +
                   ": metrics object has unexpected keys");
  }
  return m;
}

// --- serialization ---------------------------------------------------------

void append_metrics(json::Writer& w, const core::FlowMetrics& m) {
  w.raw("{");
  bool first = true;
  const auto sep = [&] {
    if (!first) w.raw(", ");
    first = false;
  };
  for (const SizeField& f : kSizeFields) {
    sep();
    w.key(f.name).number(static_cast<std::uint64_t>(m.*(f.member)));
  }
  for (const DoubleField& f : kDoubleFields) {
    sep();
    w.key(f.name).number(m.*(f.member));
  }
  for (const DoubleField& f : kOptionalDoubleFields) {
    sep();
    w.key(f.name).number(m.*(f.member));
  }
  w.raw("}");
}

void append_entry(json::Writer& w, std::size_t index,
                  const core::CampaignJobResult& result) {
  w.raw("    {").key("index").number(static_cast<std::uint64_t>(index));
  w.raw(",\n     ").key("job");
  w.raw("{").key("circuit").string(result.job.circuit);
  w.raw(", ").key("designated_period").number(result.job.designated_period);
  w.raw(", ").key("quantile").number(result.job.quantile);
  // Kind only when non-default, so pre-analytic checkpoints round-trip
  // byte-identically.
  if (result.job.kind != core::JobKind::kFlow) {
    w.raw(", ").key("kind").string(core::job_kind_name(result.job.kind));
  }
  w.raw("},\n     ").key("seconds").number(result.seconds);
  w.raw(",\n     ").key("metrics");
  append_metrics(w, result.metrics);
  w.raw("}");
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string campaign_identity(const std::vector<core::CampaignJob>& jobs,
                              const core::CampaignOptions& options) {
  // Canonical description of everything that feeds the deterministic
  // results. Thread counts are excluded on purpose: results are
  // thread-invariant, so resuming with a different --threads is legal.
  const std::shared_ptr<const scenario::CircuitCatalog> catalog =
      options.catalog ? options.catalog
                      : scenario::CircuitCatalog::shared_paper();
  std::string canon = kSchema;
  canon += "\nchips=" + std::to_string(options.flow.chips);
  canon += " seed=" + std::to_string(options.flow.seed);
  canon += " prediction=" + std::to_string(options.flow.use_prediction ? 1 : 0);
  canon += " align=" +
           std::to_string(options.flow.test.align_with_buffers ? 1 : 0);
  canon += " fill=" + std::to_string(options.flow.fill_slots ? 1 : 0);
  canon += " yield=" + std::to_string(options.flow.evaluate_yield ? 1 : 0);
  canon += " epsilon=" + json::format_double(options.flow.epsilon_override);
  canon += " inflation=" + json::format_double(options.random_inflation);
  canon += " calibration=" + std::to_string(options.calibration_chips);
  canon += " exclusions=" + std::to_string(options.use_exclusions ? 1 : 0);
  std::vector<std::string> seen;
  for (const core::CampaignJob& job : jobs) {
    bool dup = false;
    for (const std::string& name : seen) dup = dup || name == job.circuit;
    if (!dup) {
      seen.push_back(job.circuit);
      canon += "\ncircuit " + job.circuit + ": " + catalog->describe(job.circuit);
    }
  }
  for (const core::CampaignJob& job : jobs) {
    canon += "\njob " + job.circuit + " td=" +
             json::format_double(job.designated_period) +
             " q=" + json::format_double(job.quantile);
    // Appended only for analytic jobs: flow-only campaigns keep the
    // identities their existing checkpoints were stamped with.
    if (job.kind != core::JobKind::kFlow) {
      canon += std::string(" kind=") + core::job_kind_name(job.kind);
    }
  }
  std::ostringstream hex;
  hex << std::hex;
  const std::uint64_t h = fnv1a64(canon);
  for (int shift = 60; shift >= 0; shift -= 4) {
    hex << ((h >> shift) & 0xF);
  }
  return hex.str();
}

CampaignCheckpoint load_campaign_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open checkpoint file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) fail(path, "cannot read checkpoint file");
  const std::string text = buffer.str();

  json::Value root;
  try {
    root = json::Parser(text, path).parse();
  } catch (const json::ParseError& e) {
    // Name the recovery options: "parse error at line 1" alone reads like
    // a bug in the tool, when the file is simply unusable.
    throw CheckpointError(
        std::string("corrupt checkpoint: ") + e.what() +
        " — the file is not a valid checkpoint (it may predate this "
        "version, or be a partial copy from another filesystem); to "
        "recover, restore a good copy and rerun with --resume, or remove "
        "the file and rerun without --resume to restart the campaign "
        "from job 0");
  }
  if (root.kind != json::Value::Kind::kObject) {
    fail(path, "checkpoint must be a JSON object");
  }
  reject_unknown_keys(path, root,
                      {"schema", "identity", "total_jobs", "completed"});
  const std::string& schema =
      require(path, root, "schema", json::Value::Kind::kString).string;
  if (schema != kSchema) {
    fail(path, "unsupported schema \"" + schema + "\" (expected \"" +
                   kSchema + "\")");
  }

  CampaignCheckpoint out;
  out.identity =
      require(path, root, "identity", json::Value::Kind::kString).string;
  out.total_jobs = checked_index(
      path, require(path, root, "total_jobs", json::Value::Kind::kNumber),
      "total_jobs");
  const json::Value& completed =
      require(path, root, "completed", json::Value::Kind::kArray);
  out.completed.reserve(completed.array.size());
  for (const json::Value& entry : completed.array) {
    if (entry.kind != json::Value::Kind::kObject) {
      fail(path, "line " + std::to_string(entry.line) +
                     ": completed entry must be an object");
    }
    reject_unknown_keys(path, entry, {"index", "job", "seconds", "metrics"});
    const std::size_t index = checked_index(
        path, require(path, entry, "index", json::Value::Kind::kNumber),
        "index");
    if (index >= out.total_jobs) {
      fail(path, "line " + std::to_string(entry.line) + ": index " +
                     std::to_string(index) + " is out of range (" +
                     std::to_string(out.total_jobs) + " jobs)");
    }
    const json::Value& job =
        require(path, entry, "job", json::Value::Kind::kObject);
    reject_unknown_keys(path, job,
                        {"circuit", "designated_period", "quantile", "kind"});
    core::CampaignJobResult result;
    result.job.circuit =
        require(path, job, "circuit", json::Value::Kind::kString).string;
    result.job.designated_period =
        require(path, job, "designated_period", json::Value::Kind::kNumber)
            .number;
    result.job.quantile =
        require(path, job, "quantile", json::Value::Kind::kNumber).number;
    if (const json::Value* kind = job.find("kind")) {
      if (kind->kind != json::Value::Kind::kString) {
        fail(path, "line " + std::to_string(kind->line) +
                       ": \"kind\" must be a string");
      }
      try {
        result.job.kind = core::job_kind_from(kind->string);
      } catch (const std::invalid_argument& e) {
        fail(path, "line " + std::to_string(kind->line) + ": " + e.what());
      }
    }
    result.seconds =
        require(path, entry, "seconds", json::Value::Kind::kNumber).number;
    result.metrics = read_metrics(
        path, require(path, entry, "metrics", json::Value::Kind::kObject));
    result.completed = true;
    out.completed.emplace_back(index, std::move(result));
  }
  return out;
}

void validate_campaign_checkpoint(const CampaignCheckpoint& checkpoint,
                                  const std::string& identity,
                                  std::size_t total_jobs,
                                  const std::string& path) {
  if (checkpoint.identity != identity) {
    fail(path, "checkpoint identity " + checkpoint.identity +
                   " does not match this campaign (" + identity +
                   ") — circuits, periods, seed or flow options differ");
  }
  if (checkpoint.total_jobs != total_jobs) {
    fail(path, "checkpoint covers " + std::to_string(checkpoint.total_jobs) +
                   " jobs, this campaign has " + std::to_string(total_jobs));
  }
}

CheckpointWriter::CheckpointWriter(
    std::string path, std::string identity, std::size_t total_jobs,
    std::vector<std::pair<std::size_t, core::CampaignJobResult>> completed)
    : path_(std::move(path)),
      identity_(std::move(identity)),
      total_jobs_(total_jobs),
      completed_(std::move(completed)) {
  const std::lock_guard<std::mutex> lock(mutex_);
  write_locked();
}

void CheckpointWriter::record(std::size_t index,
                              const core::CampaignJobResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  completed_.emplace_back(index, result);
  write_locked();
}

void CheckpointWriter::write_locked() const {
  json::Writer w;
  w.raw("{\n  ").key("schema").string(kSchema);
  w.raw(",\n  ").key("identity").string(identity_);
  w.raw(",\n  ").key("total_jobs").number(
      static_cast<std::uint64_t>(total_jobs_));
  w.raw(",\n  ").key("completed").raw("[");
  bool first = true;
  for (const auto& [index, result] : completed_) {
    w.raw(first ? "\n" : ",\n");
    first = false;
    append_entry(w, index, result);
  }
  w.raw(first ? "]\n}\n" : "\n  ]\n}\n");
  const std::string out = w.take();

  // Temp + fsync + rename + directory fsync: a kill at any instant leaves
  // a complete checkpoint (the previous one or this one) on disk, never a
  // torn file — and that holds across POWER LOSS too. Without the fsync,
  // rename() can be journaled before the temp file's data blocks reach the
  // disk, and a crash then leaves the FINAL path pointing at an empty (or
  // partial) file that fails resume with a confusing parse error. The
  // directory fsync makes the rename itself durable.
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw std::runtime_error("checkpoint: cannot open " + tmp +
                             " for writing: " + std::strerror(errno));
  }
  const char* data = out.data();
  std::size_t remaining = out.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("checkpoint: write to " + tmp +
                               " failed: " + std::strerror(err));
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("checkpoint: fsync of " + tmp +
                             " failed: " + std::strerror(err));
  }
  if (::close(fd) != 0) {
    throw std::runtime_error("checkpoint: close of " + tmp +
                             " failed: " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path_ + ": " + std::strerror(errno));
  }
  // Durable rename: fsync the containing directory. Best-effort — some
  // filesystems refuse fsync on directory fds (EINVAL) and the data fsync
  // above already guarantees an un-torn file either way.
  const std::size_t slash = path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? std::string("/")
                                            : path_.substr(0, slash));
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    ::close(dirfd);
  }
}

}  // namespace effitest::io
