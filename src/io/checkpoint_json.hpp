#pragma once
// Campaign checkpoint/resume: the effitest-checkpoint-v1 JSON schema.
//
// A checkpoint is the durable side of CampaignOptions' resume hooks: a
// CheckpointWriter wired into on_job_complete persists every finished
// job's (index, CampaignJobResult), and load_campaign_checkpoint feeds
// them back through CampaignOptions::completed on the next invocation.
// Because every campaign job is independently seeded and a fresh prepare
// is bit-identical to reused artifacts (pinned by flow_reuse_test), a
// resumed campaign's results equal the uninterrupted run bit for bit —
// wall-clock fields excepted (they are persisted and restored verbatim,
// so resumed jobs report the wall time of the run that actually executed
// them).
//
// Schema (one JSON object):
//   {
//     "schema": "effitest-checkpoint-v1",
//     "identity": "<16 hex digits>",       // campaign_identity()
//     "total_jobs": N,
//     "completed": [ { "index": i, "job": {...}, "seconds": s,
//                      "metrics": {...} }, ... ]
//   }
//
// Identity covers everything that feeds the deterministic results: the
// result-affecting flow knobs, the catalog description of every distinct
// circuit, and the full job list. Thread counts are deliberately
// excluded — results are thread-invariant, so a campaign checkpointed at
// --threads=4 may resume at --threads=1 (checkpoint_test pins this).
// Doubles are written with json::format_double (max_digits10), so
// metrics round-trip exactly.
//
// The writer rewrites the whole file on every record via a temp file +
// atomic rename: a kill at any instant leaves either the previous or the
// new complete checkpoint on disk, never a torn one.

#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"

namespace effitest::io {

/// Unreadable, malformed or mismatched checkpoint. The CLI maps this to
/// exit 2 (a bad input, like a bad scenario spec).
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CampaignCheckpoint {
  std::string identity;        ///< campaign_identity() of the writing run
  std::size_t total_jobs = 0;  ///< size of the writing run's job list
  /// Finished jobs keyed by index into the job list — feeds
  /// core::CampaignOptions::completed directly.
  std::vector<std::pair<std::size_t, core::CampaignJobResult>> completed;
};

/// Canonical identity hash (16 lowercase hex digits, FNV-1a 64) of a
/// campaign: the result-affecting options, every distinct circuit's
/// catalog description, and the full job list. A null options.catalog
/// resolves to the shared paper catalog, exactly as the runner does.
[[nodiscard]] std::string campaign_identity(
    const std::vector<core::CampaignJob>& jobs,
    const core::CampaignOptions& options);

/// Parse a checkpoint file. Throws CheckpointError when the file cannot
/// be read, is not valid JSON, or does not carry the v1 schema.
[[nodiscard]] CampaignCheckpoint load_campaign_checkpoint(
    const std::string& path);

/// Validate a loaded checkpoint against the campaign about to resume it.
/// Throws CheckpointError naming the mismatch (identity or job count).
void validate_campaign_checkpoint(const CampaignCheckpoint& checkpoint,
                                  const std::string& identity,
                                  std::size_t total_jobs,
                                  const std::string& path);

/// Incremental checkpoint writer. Construction writes a valid (possibly
/// empty) checkpoint immediately; record() appends one finished job and
/// rewrites the file atomically (temp + rename). Thread-safe, though the
/// campaign runner already serializes on_job_complete calls.
class CheckpointWriter {
 public:
  /// `completed` seeds the writer with resumed results so a
  /// resume-of-a-resume keeps the earlier jobs.
  CheckpointWriter(
      std::string path, std::string identity, std::size_t total_jobs,
      std::vector<std::pair<std::size_t, core::CampaignJobResult>> completed =
          {});

  void record(std::size_t index, const core::CampaignJobResult& result);

 private:
  void write_locked() const;

  std::string path_;
  std::string identity_;
  std::size_t total_jobs_;
  std::vector<std::pair<std::size_t, core::CampaignJobResult>> completed_;
  mutable std::mutex mutex_;
};

}  // namespace effitest::io
