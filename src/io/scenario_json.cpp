#include "io/scenario_json.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/json.hpp"

namespace effitest::io {

namespace {

// The JSON layer (io/json.hpp) provides the shared value/parser; this file
// only owns the effitest-scenario-v1 schema mapping. json::ParseError is
// translated into ScenarioError at the parse_scenario boundary so the CLI
// exit-code mapping is unchanged.
using JsonValue = json::Value;
using JsonParser = json::Parser;
using json::kind_name;

// ---------------------------------------------------------------------------
// Schema mapping. Strict: unknown keys anywhere are errors — a typo like
// "quantile" must not silently run the defaults (the CLI's no-silent-
// surprises rule, applied to spec files).
// ---------------------------------------------------------------------------

constexpr const char* kSchemaId = "effitest-scenario-v1";

class SchemaReader {
 public:
  SchemaReader(const JsonParser& parser) : parser_(parser) {}

  [[noreturn]] void fail(const JsonValue& at, const std::string& what) const {
    parser_.fail_at(at.line, what);
  }

  const JsonValue& require(const JsonValue& obj, const std::string& key,
                           JsonValue::Kind kind) const {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) fail(obj, "missing required key \"" + key + "\"");
    return typed(*v, key, kind);
  }

  const JsonValue* optional(const JsonValue& obj, const std::string& key,
                            JsonValue::Kind kind) const {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return nullptr;
    return &typed(*v, key, kind);
  }

  void reject_unknown_keys(const JsonValue& obj,
                           std::initializer_list<const char*> known,
                           const std::string& where) const {
    for (const auto& [key, value] : obj.object) {
      bool ok = false;
      for (const char* k : known) ok = ok || key == k;
      if (ok) continue;
      std::string valid;
      for (const char* k : known) valid += std::string(" ") + k;
      fail(value, "unknown key \"" + key + "\" in " + where +
                      " (valid:" + valid + ")");
    }
  }

  double number(const JsonValue& obj, const std::string& key,
                double fallback) const {
    const JsonValue* v = optional(obj, key, JsonValue::Kind::kNumber);
    return v == nullptr ? fallback : v->number;
  }

  /// Non-negative integer exactly representable in a double (< 2^53, which
  /// also fits size_t/uint64_t) — anything else is a spec error, not UB.
  std::uint64_t checked_integer(const JsonValue& v,
                                const std::string& key) const {
    constexpr double kMaxExact = 9007199254740992.0;  // 2^53
    if (v.number < 0.0 || v.number >= kMaxExact ||
        v.number != std::floor(v.number)) {
      fail(v, "\"" + key + "\" must be a non-negative integer below 2^53");
    }
    return static_cast<std::uint64_t>(v.number);
  }

  std::size_t count(const JsonValue& obj, const std::string& key,
                    std::size_t fallback) const {
    const JsonValue* v = optional(obj, key, JsonValue::Kind::kNumber);
    if (v == nullptr) return fallback;
    return static_cast<std::size_t>(checked_integer(*v, key));
  }

  std::uint64_t seed(const JsonValue& obj, const std::string& key,
                     std::uint64_t fallback) const {
    const JsonValue* v = optional(obj, key, JsonValue::Kind::kNumber);
    if (v == nullptr) return fallback;
    return checked_integer(*v, key);
  }

  /// Distinguishes "absent" from an explicit value (0 included) — the
  /// seed/buffer overrides where 0 is meaningful.
  std::optional<std::uint64_t> optional_integer(const JsonValue& obj,
                                                const std::string& key) const {
    const JsonValue* v = optional(obj, key, JsonValue::Kind::kNumber);
    if (v == nullptr) return std::nullopt;
    return checked_integer(*v, key);
  }

  bool boolean(const JsonValue& obj, const std::string& key,
               bool fallback) const {
    const JsonValue* v = optional(obj, key, JsonValue::Kind::kBool);
    return v == nullptr ? fallback : v->boolean;
  }

 private:
  const JsonValue& typed(const JsonValue& v, const std::string& key,
                         JsonValue::Kind kind) const {
    if (v.kind != kind) {
      fail(v, "\"" + key + "\" must be a " + kind_name(kind) + ", got " +
                  kind_name(v.kind));
    }
    return v;
  }

  const JsonParser& parser_;
};

std::string path_stem(const std::string& path) {
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

std::string join_path(const std::string& base_dir, const std::string& path) {
  if (base_dir.empty() || path.empty() || path.front() == '/') return path;
  return base_dir + "/" + path;
}

/// One circuits[] entry -> (catalog name, spec). `referenced` marks a bare
/// {"paper": ...} entry that just names a pre-registered benchmark.
struct CircuitEntry {
  std::string name;
  scenario::CircuitSpec spec;
  bool referenced = false;
};

CircuitEntry read_circuit(const SchemaReader& r, const JsonValue& entry,
                          const std::string& base_dir) {
  if (entry.kind != JsonValue::Kind::kObject) {
    r.fail(entry, "circuits[] entries must be objects");
  }
  const JsonValue* paper = entry.find("paper");
  const JsonValue* bench = entry.find("bench");
  const JsonValue* generator = entry.find("generator");
  const int kinds = (paper != nullptr) + (bench != nullptr) +
                    (generator != nullptr);
  if (kinds != 1) {
    r.fail(entry,
           "each circuits[] entry needs exactly one of \"paper\", "
           "\"bench\", \"generator\"");
  }

  CircuitEntry out;
  const JsonValue* name = r.optional(entry, "name", JsonValue::Kind::kString);
  if (name != nullptr && name->string.empty()) {
    r.fail(*name, "\"name\" must be non-empty");
  }

  if (paper != nullptr) {
    r.reject_unknown_keys(entry, {"paper", "name", "seed", "scale"},
                          "a paper circuit entry");
    if (paper->kind != JsonValue::Kind::kString || paper->string.empty()) {
      r.fail(*paper, "\"paper\" must be a non-empty benchmark name");
    }
    const std::optional<std::uint64_t> seed = r.optional_integer(entry, "seed");
    const double scale = r.number(entry, "scale", 1.0);
    if (!(scale > 0.0)) r.fail(entry, "\"scale\" must be > 0");
    try {
      if (scale != 1.0) {
        // Validate benchmark name + scale bounds at parse time (exit 2
        // with a line, never a resolve-time surprise); the default name
        // matches the scaled GeneratorSpec's ("s9234@x2").
        const netlist::GeneratorSpec scaled =
            scenario::scaled_paper_spec(paper->string, scale);
        out.name = name != nullptr ? name->string : scaled.name;
        out.spec = scenario::ScaledCircuit{paper->string, scale, seed};
      } else {
        (void)netlist::paper_benchmark_spec(paper->string);
        out.name = name != nullptr ? name->string : paper->string;
        out.spec = scenario::PaperCircuit{paper->string, seed};
        out.referenced = name == nullptr && !seed.has_value();
      }
    } catch (const json::ParseError&) {
      throw;  // already carries the source/line prefix
    } catch (const std::exception& e) {
      r.fail(*paper, e.what());
    }
    return out;
  }

  if (bench != nullptr) {
    r.reject_unknown_keys(entry, {"bench", "name", "buffers", "policy"},
                          "a .bench circuit entry");
    if (bench->kind != JsonValue::Kind::kString || bench->string.empty()) {
      r.fail(*bench, "\"bench\" must be a non-empty file path");
    }
    scenario::BenchCircuit spec;
    spec.path = join_path(base_dir, bench->string);
    if (const auto buffers = r.optional_integer(entry, "buffers")) {
      spec.num_buffers = static_cast<std::size_t>(*buffers);
    }
    if (const JsonValue* policy =
            r.optional(entry, "policy", JsonValue::Kind::kString)) {
      try {
        spec.policy = scenario::buffer_policy_from(policy->string);
      } catch (const std::invalid_argument& e) {
        r.fail(*policy, e.what());
      }
    }
    out.name = name != nullptr ? name->string : path_stem(bench->string);
    out.spec = std::move(spec);
    return out;
  }

  r.reject_unknown_keys(entry, {"generator", "name"},
                        "a generator circuit entry");
  if (generator->kind != JsonValue::Kind::kObject) {
    r.fail(*generator, "\"generator\" must be an object");
  }
  r.reject_unknown_keys(*generator,
                        {"name", "flip_flops", "gates", "buffers",
                         "critical_paths", "clusters", "seed"},
                        "a generator spec");
  netlist::GeneratorSpec spec;  // shape knobs keep their defaults
  if (const JsonValue* gname =
          r.optional(*generator, "name", JsonValue::Kind::kString)) {
    spec.name = gname->string;
  }
  spec.num_flip_flops = r.count(*generator, "flip_flops", spec.num_flip_flops);
  spec.num_gates = r.count(*generator, "gates", spec.num_gates);
  spec.num_buffers = r.count(*generator, "buffers", spec.num_buffers);
  spec.num_critical_paths =
      r.count(*generator, "critical_paths", spec.num_critical_paths);
  spec.num_clusters = r.count(*generator, "clusters", spec.num_clusters);
  spec.seed = r.seed(*generator, "seed", spec.seed);
  out.name = name != nullptr ? name->string : spec.name;
  out.spec = std::move(spec);
  return out;
}

template <class Valid>
std::vector<double> read_grid(const SchemaReader& r, const JsonValue& root,
                              const char* key, Valid&& valid,
                              const char* constraint) {
  std::vector<double> out;
  const JsonValue* arr = r.optional(root, key, JsonValue::Kind::kArray);
  if (arr == nullptr) return out;
  for (const JsonValue& v : arr->array) {
    if (v.kind != JsonValue::Kind::kNumber || !valid(v.number)) {
      r.fail(v, std::string("\"") + key + "\" entries must be " + constraint);
    }
    out.push_back(v.number);
  }
  return out;
}

Scenario parse_scenario_impl(const std::string& text,
                             const std::string& source,
                             const std::string& base_dir) {
  JsonParser parser(text, source);
  const JsonValue root = parser.parse();
  const SchemaReader r(parser);

  if (root.kind != JsonValue::Kind::kObject) {
    r.fail(root, "the spec must be a JSON object");
  }
  r.reject_unknown_keys(
      root,
      {"schema", "name", "chips", "seed", "threads", "inflation",
       "calibration_chips", "quantiles", "periods", "modes", "flow",
       "circuits"},
      "the scenario spec");

  const JsonValue& schema =
      r.require(root, "schema", JsonValue::Kind::kString);
  if (schema.string != kSchemaId) {
    r.fail(schema, "schema \"" + schema.string + "\" is not \"" + kSchemaId +
                       "\"");
  }

  Scenario scenario;
  scenario.name = path_stem(source);
  if (const JsonValue* name =
          r.optional(root, "name", JsonValue::Kind::kString)) {
    scenario.name = name->string;
  }

  core::CampaignOptions& options = scenario.options;
  options.flow.chips = r.count(root, "chips", options.flow.chips);
  options.flow.seed = r.seed(root, "seed", options.flow.seed);
  options.threads = r.count(root, "threads", options.threads);
  if (const JsonValue* inflation =
          r.optional(root, "inflation", JsonValue::Kind::kNumber)) {
    if (!(inflation->number > 0.0)) {
      r.fail(*inflation, "\"inflation\" must be > 0");
    }
    options.random_inflation = inflation->number;
  }
  options.calibration_chips =
      r.count(root, "calibration_chips", options.calibration_chips);
  if (const JsonValue* flow =
          r.optional(root, "flow", JsonValue::Kind::kObject)) {
    r.reject_unknown_keys(*flow, {"prediction", "alignment", "exclusions"},
                          "\"flow\"");
    options.flow.use_prediction =
        r.boolean(*flow, "prediction", options.flow.use_prediction);
    options.flow.test.align_with_buffers =
        r.boolean(*flow, "alignment", options.flow.test.align_with_buffers);
    options.use_exclusions =
        r.boolean(*flow, "exclusions", options.use_exclusions);
  }

  const std::vector<double> quantiles = read_grid(
      r, root, "quantiles", [](double q) { return q >= 0.0 && q < 1.0; },
      "quantiles in [0, 1)");
  const std::vector<double> periods = read_grid(
      r, root, "periods", [](double td) { return td > 0.0; },
      "positive periods (ps)");

  // Job kinds: "modes": ["flow", "analytic"] sweeps both per circuit;
  // absent means the historical flow-only campaign.
  std::vector<core::JobKind> modes;
  if (const JsonValue* arr =
          r.optional(root, "modes", JsonValue::Kind::kArray)) {
    for (const JsonValue& v : arr->array) {
      if (v.kind != JsonValue::Kind::kString) {
        r.fail(v, "\"modes\" entries must be strings (flow, analytic)");
      }
      core::JobKind kind;
      try {
        kind = core::job_kind_from(v.string);
      } catch (const std::invalid_argument& e) {
        r.fail(v, e.what());
      }
      for (const core::JobKind seen : modes) {
        if (seen == kind) {
          r.fail(v, "mode \"" + v.string + "\" is listed twice");
        }
      }
      modes.push_back(kind);
    }
    if (modes.empty()) {
      r.fail(*arr, "\"modes\" must name at least one mode");
    }
  }
  if (modes.empty()) modes.push_back(core::JobKind::kFlow);

  const JsonValue& circuits =
      r.require(root, "circuits", JsonValue::Kind::kArray);
  if (circuits.array.empty()) {
    r.fail(circuits, "\"circuits\" must name at least one circuit");
  }

  scenario.catalog = scenario::CircuitCatalog::make_paper();
  std::vector<std::string> job_circuits;
  for (const JsonValue& entry : circuits.array) {
    CircuitEntry circuit = read_circuit(r, entry, base_dir);
    // Every catalog error must surface as a line-carrying ScenarioError —
    // e.g. an empty generator "name" or a path whose stem is empty.
    if (circuit.name.empty()) {
      r.fail(entry,
             "circuit entry yields an empty name; set a non-empty \"name\"");
    }
    if (!circuit.referenced) {
      if (scenario.catalog->contains(circuit.name)) {
        r.fail(entry, "circuit name \"" + circuit.name +
                          "\" is already registered (paper benchmarks are "
                          "pre-registered; pick a distinct \"name\" for "
                          "overrides)");
      }
      scenario.catalog->add(circuit.name, std::move(circuit.spec));
    } else if (!scenario.catalog->contains(circuit.name)) {
      r.fail(entry, "unknown paper benchmark \"" + circuit.name + "\"");
    }
    for (const std::string& seen : job_circuits) {
      if (seen == circuit.name) {
        r.fail(entry,
               "circuit \"" + circuit.name + "\" is listed twice");
      }
    }
    job_circuits.push_back(std::move(circuit.name));
  }

  // Circuit-major cross of circuits x modes x (periods + quantiles): the
  // runner groups same-circuit jobs into one preparation (flow artifacts
  // and the analytic engine result are both per-circuit caches).
  for (const std::string& circuit : job_circuits) {
    for (const core::JobKind kind : modes) {
      if (periods.empty() && quantiles.empty()) {
        scenario.jobs.push_back(core::CampaignJob{circuit, 0.0, -1.0, kind});
        continue;
      }
      for (double td : periods) {
        scenario.jobs.push_back(core::CampaignJob{circuit, td, -1.0, kind});
      }
      for (double q : quantiles) {
        scenario.jobs.push_back(core::CampaignJob{circuit, 0.0, q, kind});
      }
    }
  }

  options.catalog = scenario.catalog;
  return scenario;
}

}  // namespace

Scenario parse_scenario(const std::string& text, const std::string& source,
                        const std::string& base_dir) {
  try {
    return parse_scenario_impl(text, source, base_dir);
  } catch (const json::ParseError& e) {
    // Syntax and schema errors alike surface as ScenarioError (CLI exit 2),
    // message format unchanged: "<source> line <n>: <reason>".
    throw ScenarioError(e.what());
  }
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("cannot open scenario spec: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::size_t slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash);
  return parse_scenario(buffer.str(), path, base_dir);
}

}  // namespace effitest::io
