#include "io/bench_json.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace effitest::io {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

}  // namespace

std::string git_sha() {
#ifdef EFFITEST_GIT_SHA
  return EFFITEST_GIT_SHA;
#else
  return "unknown";
#endif
}

JsonReporter::JsonReporter(std::string name, std::size_t threads)
    : name_(std::move(name)), threads_(threads) {}

void JsonReporter::add(const std::string& circuit, const std::string& metric,
                       double value, double wall_seconds) {
  records_.push_back(Record{circuit, metric, value, wall_seconds});
}

std::string JsonReporter::write(const std::string& dir) const {
  std::string out_dir = dir;
  if (out_dir.empty()) {
    if (const char* env = std::getenv("EFFITEST_BENCH_DIR")) out_dir = env;
  }
  std::string path = "BENCH_" + name_ + ".json";
  if (!out_dir.empty()) path = out_dir + "/" + path;
  return write_file(path);
}

std::string JsonReporter::write_file(const std::string& path) const {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"effitest-bench-v1\",\n"
     << "  \"bench\": \"" << json_escape(name_) << "\",\n"
     << "  \"git_sha\": \"" << json_escape(git_sha()) << "\",\n"
     << "  \"threads\": " << threads_ << ",\n"
     << "  \"records\": [";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    os << (i == 0 ? "\n" : ",\n")
       << "    { \"circuit\": \"" << json_escape(r.circuit) << "\","
       << " \"metric\": \"" << json_escape(r.metric) << "\","
       << " \"value\": " << json_number(r.value) << ","
       << " \"wall_seconds\": " << json_number(r.wall_seconds) << " }";
  }
  os << (records_.empty() ? "]\n" : "\n  ]\n") << "}\n";

  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("JsonReporter: cannot open " + path);
  }
  file << os.str();
  if (!file.good()) {
    throw std::runtime_error("JsonReporter: write failed for " + path);
  }
  return path;
}

}  // namespace effitest::io
