#include "io/bench_json.hpp"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "io/json.hpp"

namespace effitest::io {

std::string git_sha() {
#ifdef EFFITEST_GIT_SHA
  return EFFITEST_GIT_SHA;
#else
  return "unknown";
#endif
}

JsonReporter::JsonReporter(std::string name, std::size_t threads)
    : name_(std::move(name)), threads_(threads) {}

void JsonReporter::add(const std::string& circuit, const std::string& metric,
                       double value, double wall_seconds) {
  records_.push_back(Record{circuit, metric, value, wall_seconds});
}

std::string JsonReporter::write(const std::string& dir) const {
  std::string out_dir = dir;
  if (out_dir.empty()) {
    if (const char* env = std::getenv("EFFITEST_BENCH_DIR")) out_dir = env;
  }
  std::string path = "BENCH_" + name_ + ".json";
  if (!out_dir.empty()) path = out_dir + "/" + path;
  return write_file(path);
}

std::string JsonReporter::write_file(const std::string& path) const {
  // Layout (indentation, one record per line) is part of the committed
  // byte-exact shape check_bench_json.py --diff relies on; escaping and
  // number formatting come from the shared json::Writer.
  json::Writer w;
  w.raw("{\n  ").key("schema").string("effitest-bench-v1");
  w.raw(",\n  ").key("bench").string(name_);
  w.raw(",\n  ").key("git_sha").string(git_sha());
  w.raw(",\n  ").key("threads").number(static_cast<std::uint64_t>(threads_));
  w.raw(",\n  ").key("records").raw("[");
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    w.raw(i == 0 ? "\n" : ",\n");
    w.raw("    { ").key("circuit").string(r.circuit);
    w.raw(", ").key("metric").string(r.metric);
    w.raw(", ").key("value").number(r.value);
    w.raw(", ").key("wall_seconds").number(r.wall_seconds);
    w.raw(" }");
  }
  w.raw(records_.empty() ? "]\n" : "\n  ]\n").raw("}\n");

  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("JsonReporter: cannot open " + path);
  }
  file << w.str();
  if (!file.good()) {
    throw std::runtime_error("JsonReporter: write failed for " + path);
  }
  return path;
}

}  // namespace effitest::io
