#include "io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

namespace effitest::io::json {

const char* kind_name(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

Value Parser::parse() {
  Value v = parse_value();
  skip_ws();
  if (pos_ != text_.size()) fail("trailing content after the document");
  return v;
}

void Parser::fail_at(std::size_t line, const std::string& what) const {
  throw ParseError(source_ + " line " + std::to_string(line) + ": " + what,
                   line);
}

void Parser::fail(const std::string& what) const { fail_at(line_, what); }

void Parser::skip_ws() {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '\n') {
      ++line_;
      ++pos_;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
      while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    } else {
      break;
    }
  }
}

char Parser::peek() {
  skip_ws();
  if (pos_ >= text_.size()) fail("unexpected end of input");
  return text_[pos_];
}

void Parser::expect(char c) {
  if (peek() != c) {
    fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
  }
  ++pos_;
}

bool Parser::consume_keyword(const char* kw) {
  const std::size_t n = std::string(kw).size();
  if (text_.compare(pos_, n, kw) != 0) return false;
  pos_ += n;
  return true;
}

Value Parser::parse_value() {
  // Recursion guard: a pathological deeply-nested document must raise
  // ParseError, not overflow the stack. Real documents nest ~4 levels.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > 64) parser.fail("nesting too deep");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  } guard(*this);

  Value v;
  const char c = peek();
  v.line = line_;
  if (c == '{') {
    v.kind = Value::Kind::kObject;
    ++pos_;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      Value key = parse_value();
      if (key.kind != Value::Kind::kString) {
        fail_at(key.line, "object key must be a string");
      }
      for (const auto& [k, unused] : v.object) {
        (void)unused;
        if (k == key.string) {
          fail_at(key.line, "duplicate key \"" + key.string + "\"");
        }
      }
      expect(':');
      v.object.emplace_back(std::move(key.string), parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    return v;
  }
  if (c == '[') {
    v.kind = Value::Kind::kArray;
    ++pos_;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    return v;
  }
  if (c == '"') {
    v.kind = Value::Kind::kString;
    v.string = parse_string();
    return v;
  }
  if (c == 't' && consume_keyword("true")) {
    v.kind = Value::Kind::kBool;
    v.boolean = true;
    return v;
  }
  if (c == 'f' && consume_keyword("false")) {
    v.kind = Value::Kind::kBool;
    v.boolean = false;
    return v;
  }
  if (c == 'n' && consume_keyword("null")) {
    v.kind = Value::Kind::kNull;
    return v;
  }
  if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
    v.kind = Value::Kind::kNumber;
    v.number = parse_number();
    return v;
  }
  fail(std::string("unexpected character '") + c + "'");
}

std::string Parser::parse_string() {
  ++pos_;  // opening quote (peeked by caller)
  std::string out;
  while (true) {
    if (pos_ >= text_.size()) fail("unterminated string");
    const char c = text_[pos_++];
    if (c == '"') return out;
    if (c == '\n') fail("unterminated string");
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos_ >= text_.size()) fail("unterminated escape");
    const char e = text_[pos_++];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      default:
        fail(std::string("unsupported escape \\") + e);
    }
  }
}

double Parser::parse_number() {
  const std::size_t start = pos_;
  if (text_[pos_] == '-') ++pos_;
  const auto digits = [&] {
    const std::size_t before = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > before;
  };
  if (!digits()) fail("malformed number");
  if (pos_ < text_.size() && text_[pos_] == '.') {
    ++pos_;
    if (!digits()) fail("malformed number");
  }
  if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
    if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (!digits()) fail("malformed number");
  }
  const std::string token = text_.substr(start, pos_ - start);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
    fail("malformed number " + token);
  }
  return value;
}

std::string format_double(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace effitest::io::json
