#include "io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

namespace effitest::io::json {

const char* kind_name(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

Value Parser::parse() {
  Value v = parse_value();
  skip_ws();
  if (pos_ != text_.size()) fail("trailing content after the document");
  return v;
}

void Parser::fail_at(std::size_t line, const std::string& what) const {
  throw ParseError(source_ + " line " + std::to_string(line) + ": " + what,
                   line);
}

void Parser::fail(const std::string& what) const { fail_at(line_, what); }

void Parser::skip_ws() {
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '\n') {
      ++line_;
      ++pos_;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
      while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    } else {
      break;
    }
  }
}

char Parser::peek() {
  skip_ws();
  if (pos_ >= text_.size()) fail("unexpected end of input");
  return text_[pos_];
}

void Parser::expect(char c) {
  if (peek() != c) {
    fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
  }
  ++pos_;
}

bool Parser::consume_keyword(const char* kw) {
  const std::size_t n = std::string(kw).size();
  if (text_.compare(pos_, n, kw) != 0) return false;
  pos_ += n;
  return true;
}

Value Parser::parse_value() {
  // Recursion guard: a pathological deeply-nested document must raise
  // ParseError, not overflow the stack. Real documents nest ~4 levels.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > 64) parser.fail("nesting too deep");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  } guard(*this);

  Value v;
  const char c = peek();
  v.line = line_;
  if (c == '{') {
    v.kind = Value::Kind::kObject;
    ++pos_;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      Value key = parse_value();
      if (key.kind != Value::Kind::kString) {
        fail_at(key.line, "object key must be a string");
      }
      for (const auto& [k, unused] : v.object) {
        (void)unused;
        if (k == key.string) {
          fail_at(key.line, "duplicate key \"" + key.string + "\"");
        }
      }
      expect(':');
      v.object.emplace_back(std::move(key.string), parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    return v;
  }
  if (c == '[') {
    v.kind = Value::Kind::kArray;
    ++pos_;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    return v;
  }
  if (c == '"') {
    v.kind = Value::Kind::kString;
    v.string = parse_string();
    return v;
  }
  if (c == 't' && consume_keyword("true")) {
    v.kind = Value::Kind::kBool;
    v.boolean = true;
    return v;
  }
  if (c == 'f' && consume_keyword("false")) {
    v.kind = Value::Kind::kBool;
    v.boolean = false;
    return v;
  }
  if (c == 'n' && consume_keyword("null")) {
    v.kind = Value::Kind::kNull;
    return v;
  }
  if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
    v.kind = Value::Kind::kNumber;
    v.number = parse_number();
    return v;
  }
  fail(std::string("unexpected character '") + c + "'");
}

namespace {

void append_utf8(std::string& out, unsigned code) {
  if (code < 0x80) {
    out += static_cast<char>(code);
  } else if (code < 0x800) {
    out += static_cast<char>(0xC0 | (code >> 6));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else if (code < 0x10000) {
    out += static_cast<char>(0xE0 | (code >> 12));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (code >> 18));
    out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

}  // namespace

unsigned Parser::parse_hex4() {
  unsigned code = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos_ >= text_.size()) fail("unterminated escape");
    const char h = text_[pos_++];
    code <<= 4;
    if (h >= '0' && h <= '9') {
      code |= static_cast<unsigned>(h - '0');
    } else if (h >= 'a' && h <= 'f') {
      code |= static_cast<unsigned>(h - 'a' + 10);
    } else if (h >= 'A' && h <= 'F') {
      code |= static_cast<unsigned>(h - 'A' + 10);
    } else {
      fail(std::string("malformed \\u escape digit '") + h + "'");
    }
  }
  return code;
}

std::string Parser::parse_string() {
  ++pos_;  // opening quote (peeked by caller)
  std::string out;
  while (true) {
    if (pos_ >= text_.size()) fail("unterminated string");
    const char c = text_[pos_++];
    if (c == '"') return out;
    if (c == '\n') fail("unterminated string");
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos_ >= text_.size()) fail("unterminated escape");
    const char e = text_[pos_++];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        // UTF-16 code unit(s): a high surrogate must be followed by a
        // \u-escaped low surrogate; the pair decodes to one code point.
        unsigned code = parse_hex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
          if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
              text_[pos_ + 1] != 'u') {
            fail("unpaired surrogate in \\u escape");
          }
          pos_ += 2;
          const unsigned low = parse_hex4();
          if (low < 0xDC00 || low > 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
          }
          code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
          fail("unpaired surrogate in \\u escape");
        }
        append_utf8(out, code);
        break;
      }
      default:
        fail(std::string("unsupported escape \\") + e);
    }
  }
}

double Parser::parse_number() {
  const std::size_t start = pos_;
  if (text_[pos_] == '-') ++pos_;
  const auto digits = [&] {
    const std::size_t before = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > before;
  };
  if (!digits()) fail("malformed number");
  if (pos_ < text_.size() && text_[pos_] == '.') {
    ++pos_;
    if (!digits()) fail("malformed number");
  }
  if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
    if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (!digits()) fail("malformed number");
  }
  const std::string token = text_.substr(start, pos_ - start);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
    fail("malformed number " + token);
  }
  return value;
}

std::string format_double(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

Writer& Writer::raw(std::string_view text) {
  out_.append(text);
  return *this;
}

Writer& Writer::key(const std::string& k) {
  out_ += quote(k);
  out_ += ": ";
  return *this;
}

Writer& Writer::string(const std::string& s) {
  out_ += quote(s);
  return *this;
}

Writer& Writer::number(double v) {
  // Non-finite doubles have no JSON representation; every schema in the
  // tree (bench, checkpoint, status) maps them to null.
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  out_ += format_double(v);
  return *this;
}

Writer& Writer::number(std::uint64_t v) {
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::boolean(bool v) {
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace effitest::io::json
