#pragma once
// Machine-readable bench/CLI output: every harness binary emits a
// BENCH_<name>.json next to its human-readable table so CI (and any other
// tooling) can gate on the numbers instead of scraping stdout; the CLI's
// `run`/`campaign` subcommands write the same schema to an explicit path
// via --json=<path> (write_file).
//
// Schema ("effitest-bench-v1"; see EXPERIMENTS.md for the full contract and
// tools/check_bench_json.py for the validator CI runs):
//
//   {
//     "schema":  "effitest-bench-v1",
//     "bench":   "table1",               // short bench name
//     "git_sha": "<configure-time sha>", // "unknown" outside a git checkout
//     "threads": 2,                      // the --threads the bench ran with
//     "records": [
//       { "circuit": "s9234", "metric": "ra",
//         "value": 96.27, "wall_seconds": 0.15 },
//       ...
//     ]
//   }
//
// `wall_seconds` is the wall time of the run that produced the metric (one
// campaign job, one timed kernel loop, ...); metrics sharing a run repeat
// it. Values are written with max_digits10 precision so the deterministic
// metrics (ra, t'v, yields — bit-identical for any thread count) round-trip
// exactly; non-finite values serialize as null and fail schema validation,
// which is the point.

#include <cstddef>
#include <string>
#include <vector>

namespace effitest::io {

/// Configure-time git revision (EFFITEST_GIT_SHA compile definition), or
/// "unknown" when the build did not come from a git checkout.
[[nodiscard]] std::string git_sha();

class JsonReporter {
 public:
  /// `name` is the short bench name ("table1", "micro_solvers", ...): the
  /// file is written as BENCH_<name>.json. `threads` records the harness
  /// --threads value (0 = all cores).
  JsonReporter(std::string name, std::size_t threads);

  /// Append one (circuit, metric, value) record. `wall_seconds` is the
  /// wall time of the run the metric came from.
  void add(const std::string& circuit, const std::string& metric,
           double value, double wall_seconds = 0.0);

  /// Write BENCH_<name>.json into `dir` (default: the EFFITEST_BENCH_DIR
  /// environment variable, falling back to the current directory).
  /// Returns the path written. Throws std::runtime_error on I/O failure.
  std::string write(const std::string& dir = "") const;

  /// Write the report to an explicit file path (created/truncated) —
  /// the CLI's --json=<path>. Returns `path`; throws on I/O failure.
  std::string write_file(const std::string& path) const;

 private:
  struct Record {
    std::string circuit;
    std::string metric;
    double value = 0.0;
    double wall_seconds = 0.0;
  };
  std::string name_;
  std::size_t threads_ = 0;
  std::vector<Record> records_;
};

}  // namespace effitest::io
