#include "io/tune_protocol.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/deterministic_for.hpp"
#include "timing/model.hpp"

namespace effitest::io {

namespace {

using core::ChipReport;
using core::SessionPhase;
using core::Stimulus;
using core::TuningSession;

std::string number(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

/// Out-of-order window: a response whose seq is this far beyond the chip's
/// next expected one cannot belong to any stimulus the server will ever
/// issue soon enough to matter (sessions are capped at
/// TestOptions::max_iterations_per_batch per batch) — rejecting it keeps a
/// hostile stream from growing the reorder buffer without bound.
constexpr std::size_t kMaxPendingWindow = 1'000'000;

/// One chip's protocol-side bookkeeping around its TuningSession. The
/// session is minted lazily on admission (TuneServerOptions::chip_window):
/// an unadmitted chip holds no session state at all, so a bounded window
/// over many thousands of chips keeps per-session memory flat.
struct ChipSlot {
  std::optional<TuningSession> session;
  std::size_t next_seq = 0;  ///< seq of the outstanding stimulus
  bool started = false;      ///< admitted: session minted, stimulus emitted
  bool finished = false;
  bool errored = false;  ///< abandoned by a lenient-mode bad frame
};

/// Shared emit/advance machinery of both server modes.
class Exchange {
 public:
  Exchange(const core::TunerService& service, std::size_t chips,
           const TuneServerOptions& options, std::ostream& out)
      : service_(&service),
        out_(&out),
        slots_(chips),
        window_(options.chip_window == 0 ? chips
                                         : std::min(options.chip_window, chips)),
        live_stimuli_(options.live_stimuli),
        log_(options.log),
        unfinished_(chips),
        errors_(chips) {
    const core::Problem& problem = service.problem();
    *out_ << "effitest-tune-v1 chips=" << chips
          << " np=" << problem.model().num_pairs()
          << " nb=" << problem.num_buffers()
          << " td=" << number(service.designated_period()) << '\n';
    refill();
  }

  [[nodiscard]] std::size_t unfinished() const { return unfinished_; }
  [[nodiscard]] std::size_t chips() const { return slots_.size(); }
  [[nodiscard]] std::size_t stimuli() const { return stimuli_; }
  [[nodiscard]] ChipSlot& slot(std::size_t c) { return slots_[c]; }

  /// The outstanding stimulus of an unfinished, admitted chip (idempotent).
  [[nodiscard]] const Stimulus& outstanding(std::size_t c) {
    return slots_[c].session->next_stimulus();
  }
  [[nodiscard]] bool is_final(std::size_t c) const {
    return slots_[c].session->phase() == SessionPhase::kFinalTest;
  }

  /// Expected response width of the outstanding stimulus.
  [[nodiscard]] std::size_t expected_bits(std::size_t c) {
    return is_final(c) ? 1 : outstanding(c).armed.size();
  }

  /// Answer chip c's outstanding stimulus and emit its next one (or its
  /// report when the session completes, freeing a window slot).
  void apply(std::size_t c, const std::vector<bool>& pass) {
    slots_[c].session->record_response(pass);
    ++slots_[c].next_seq;
    emit_next(c);
    if (slots_[c].finished) {
      --active_;
      refill();
    }
  }

  /// Abandon an unfinished chip (lenient mode): emit an `error` line, mark
  /// the chip done, and remember why. Its session is left mid-flight; its
  /// report slot comes back default-constructed. The freed window slot
  /// admits the next chip (unless admission is closed — EOF teardown).
  void abandon(std::size_t c, const std::string& reason) {
    ChipSlot& s = slots_[c];
    if (s.finished) return;
    const bool was_active = s.started;
    s.finished = true;
    s.errored = true;
    errors_[c] = reason;
    --unfinished_;
    *out_ << "error " << c << ' ' << reason << '\n';
    if (was_active) {
      --active_;
      refill();
    }
  }

  /// Stop admitting new chips (the response stream ended): unstarted chips
  /// are abandoned by the caller without ever emitting a stimulus.
  void close_admission() { admitting_ = false; }

  /// Chips admitted since the last call — the caller must drain any
  /// responses already buffered for them.
  [[nodiscard]] std::vector<std::size_t> take_admitted() {
    return std::exchange(admitted_, {});
  }

  [[nodiscard]] std::vector<ChipReport> take_reports() {
    std::vector<ChipReport> reports;
    reports.reserve(slots_.size());
    for (ChipSlot& s : slots_) {
      reports.push_back(s.errored || !s.session.has_value()
                            ? ChipReport{}
                            : s.session->take_report());
    }
    return reports;
  }

  [[nodiscard]] std::vector<std::string> take_errors() {
    return std::move(errors_);
  }

 private:
  /// Admit chips until `window_` sessions are live (or none remain). A
  /// freshly admitted session normally emits its first stimulus; the rare
  /// chip that is born Done (report emitted immediately) does not occupy a
  /// slot, so the loop keeps the window full without recursing.
  void refill() {
    while (admitting_ && next_unstarted_ < slots_.size() &&
           active_ < window_) {
      const std::size_t c = next_unstarted_++;
      ChipSlot& s = slots_[c];
      s.started = true;
      core::SessionOptions sopts;
      sopts.log = log_;
      sopts.chip = c;
      s.session.emplace(service_->begin_chip(sopts));
      emit_next(c);
      if (!s.finished) ++active_;
      admitted_.push_back(c);
    }
  }

  void emit_next(std::size_t c) {
    ChipSlot& s = slots_[c];
    if (s.session->phase() == SessionPhase::kDone) {
      const ChipReport& r = s.session->report();
      *out_ << "report " << c << " iterations=" << r.test.iterations
            << " forced=" << r.test.forced
            << " feasible=" << (r.config.feasible ? 1 : 0) << " passed="
            << (r.passed.has_value() ? (*r.passed ? "1" : "0") : "-")
            << " xi=" << number(r.config.xi) << " steps";
      for (int k : r.config.steps) *out_ << ' ' << k;
      *out_ << '\n';
      s.finished = true;
      --unfinished_;
      return;
    }
    const bool final_phase = is_final(c);
    const Stimulus& stim = s.session->next_stimulus();
    *out_ << (final_phase ? "final " : "stimulus ") << c << ' ' << s.next_seq
          << ' ' << number(stim.period) << " steps";
    for (int k : stim.steps) *out_ << ' ' << k;
    if (!final_phase) {
      *out_ << " arm";
      for (std::size_t p : stim.armed) *out_ << ' ' << p;
    }
    *out_ << '\n';
    ++stimuli_;
    if (live_stimuli_ != nullptr) live_stimuli_->inc();
  }

  const core::TunerService* service_;
  std::ostream* out_;
  std::vector<ChipSlot> slots_;
  std::size_t window_ = 0;           ///< live-session bound (== chips: off)
  obs::Counter* live_stimuli_ = nullptr;
  obs::StructuredLog* log_ = nullptr;
  std::size_t next_unstarted_ = 0;   ///< chips [0, this) have been admitted
  std::size_t active_ = 0;           ///< started && !finished
  bool admitting_ = true;
  std::vector<std::size_t> admitted_;  ///< since last take_admitted()
  std::size_t unfinished_ = 0;
  std::size_t stimuli_ = 0;
  std::vector<std::string> errors_;  ///< per chip; empty = clean
};

std::vector<bool> decode_bits(const std::string& bits) {
  std::vector<bool> pass(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != '0' && bits[i] != '1') {
      throw std::runtime_error("tune: response bits must be 0/1, got \"" +
                               bits + "\"");
    }
    pass[i] = bits[i] == '1';
  }
  return pass;
}

std::string encode_bits(const std::vector<bool>& pass) {
  std::string bits(pass.size(), '0');
  for (std::size_t i = 0; i < pass.size(); ++i) {
    if (pass[i]) bits[i] = '1';
  }
  return bits;
}

}  // namespace

TuneServer::TuneServer(const core::TunerService& service, std::size_t chips,
                       TuneServerOptions options)
    : service_(&service), chips_(chips), options_(options) {}

TuneServerResult TuneServer::run(std::istream& in, std::ostream& out) {
  Exchange exchange(*service_, chips_, options_, out);
  const bool lenient = options_.lenient;
  // No legal response is ever wider than np (a final line carries one bit),
  // so anything wider is rejected before it can occupy the reorder buffer.
  const std::size_t max_bits =
      std::max<std::size_t>(service_->problem().model().num_pairs(), 1);
  TuneServerResult result;

  // Buffered out-of-order responses by (chip, seq).
  std::map<std::pair<std::size_t, std::size_t>, std::string> pending;

  // Drain one admitted chip's queue as far as buffered responses allow.
  const auto drain_chip = [&](std::size_t chip) {
    while (exchange.slot(chip).started && !exchange.slot(chip).finished) {
      const auto it =
          pending.find(std::make_pair(chip, exchange.slot(chip).next_seq));
      if (it == pending.end()) break;
      if (it->second.size() != exchange.expected_bits(chip)) {
        const std::string reason =
            "tune: response width " + std::to_string(it->second.size()) +
            " does not match stimulus for chip " + std::to_string(chip) +
            " seq " + std::to_string(it->first.second);
        pending.erase(it);
        if (!lenient) throw std::runtime_error(reason);
        exchange.abandon(chip, reason);
        break;
      }
      std::vector<bool> pass;
      try {
        pass = decode_bits(it->second);
      } catch (const std::runtime_error& e) {
        if (!lenient) throw;
        pending.erase(it);
        exchange.abandon(chip, e.what());
        break;
      }
      pending.erase(it);
      exchange.apply(chip, pass);
    }
  };
  // A finished chip frees a window slot: freshly admitted chips may
  // already have responses waiting in the reorder buffer (a replayed log),
  // and draining those can cascade into further admissions.
  const auto drain_admitted = [&] {
    std::vector<std::size_t> fresh;
    while (!(fresh = exchange.take_admitted()).empty()) {
      for (const std::size_t c : fresh) drain_chip(c);
    }
  };

  // Consume one response line; early returns mirror the historical
  // `continue`s (any admissions they trigger are drained by the caller).
  const auto process_line = [&](const std::string& line) {
    std::istringstream is(line);
    std::string tag, bits, extra;
    std::size_t chip = 0, seq = 0;
    if (!(is >> tag) || tag != "response" || !(is >> chip >> seq >> bits) ||
        (is >> extra)) {
      if (!lenient) {
        throw std::runtime_error("tune: malformed response line \"" + line +
                                 "\"");
      }
      ++result.dropped_lines;  // attributable to no chip — drop it
      return;
    }
    if (chip >= exchange.chips()) {
      if (!lenient) {
        throw std::runtime_error("tune: response for unknown chip " +
                                 std::to_string(chip));
      }
      ++result.dropped_lines;
      return;
    }
    // From here a bad frame is attributable: in lenient mode it abandons
    // exactly this chip and the run keeps serving the others.
    const auto bad_frame = [&](const std::string& reason) {
      if (!lenient) throw std::runtime_error(reason);
      exchange.abandon(chip, reason);
    };
    if (exchange.slot(chip).finished) {
      if (!lenient) {
        throw std::runtime_error("tune: duplicate/stale response for chip " +
                                 std::to_string(chip) + " seq " +
                                 std::to_string(seq));
      }
      ++result.dropped_lines;  // the chip's report (or error) already stands
      return;
    }
    if (bits.size() > max_bits) {
      bad_frame("tune: response width " + std::to_string(bits.size()) +
                " for chip " + std::to_string(chip) +
                " exceeds the protocol maximum np=" +
                std::to_string(max_bits));
      return;
    }
    if (seq >= exchange.slot(chip).next_seq + kMaxPendingWindow) {
      bad_frame("tune: implausible sequence number " + std::to_string(seq) +
                " for chip " + std::to_string(chip) + " (next expected " +
                std::to_string(exchange.slot(chip).next_seq) + ")");
      return;
    }
    if (seq < exchange.slot(chip).next_seq ||
        !pending.emplace(std::make_pair(chip, seq), bits).second) {
      bad_frame("tune: duplicate/stale response for chip " +
                std::to_string(chip) + " seq " + std::to_string(seq));
      return;
    }
    drain_chip(chip);
  };

  std::string line;
  while (exchange.unfinished() > 0) {
    if (!std::getline(in, line)) {
      if (!lenient) {
        throw std::runtime_error(
            "tune: response stream ended with " +
            std::to_string(exchange.unfinished()) + " chip(s) unfinished");
      }
      // No new chips past this point: unstarted ones are abandoned without
      // ever emitting a stimulus nobody will answer.
      exchange.close_admission();
      for (std::size_t c = 0; c < exchange.chips(); ++c) {
        if (!exchange.slot(c).finished) {
          exchange.abandon(
              c, "tune: response stream ended before this chip finished");
        }
      }
      break;
    }
    // CRLF tolerance: a DOS/telnet-style client terminates every line with
    // \r\n and getline leaves the \r behind — strip it in BOTH modes, or
    // every frame such a client sends is rejected as malformed.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    process_line(line);
    drain_admitted();
  }
  if (!pending.empty()) {
    if (!lenient) {
      throw std::runtime_error(
          "tune: " + std::to_string(pending.size()) +
          " response(s) reference stimuli that were never issued");
    }
    // Leftovers can only reference finished/abandoned chips here.
    result.dropped_lines += pending.size();
  }
  out << "bye\n";
  result.stimuli = exchange.stimuli();
  result.reports = exchange.take_reports();
  result.errors = exchange.take_errors();
  return result;
}

TuneServerResult TuneServer::run_simulated(std::ostream& out,
                                           std::ostream* response_log) {
  // Dies sampled exactly like run_flow's Monte-Carlo chip loop.
  const core::Problem& problem = service_->problem();
  const timing::CircuitModel& model = problem.model();
  const std::uint64_t base = service_->monte_carlo_seed_base();
  std::vector<timing::Chip> dies;
  dies.reserve(chips_);
  timing::SampleWorkspace ws;
  for (std::size_t c = 0; c < chips_; ++c) {
    stats::Rng rng(parallel::index_seed(base, c));
    dies.push_back(model.sample_chip(rng, ws));
  }
  std::vector<core::SimulatedChip> testers;
  testers.reserve(chips_);
  for (std::size_t c = 0; c < chips_; ++c) {
    testers.emplace_back(problem, dies[c]);
  }

  Exchange exchange(*service_, chips_, options_, out);
  // Round-robin: one stimulus/response exchange per unfinished chip per
  // sweep, so a logged session interleaves chips (the interesting replay
  // case). With a chip window only admitted chips participate; finishing
  // one admits the next (inside apply), which joins the rotation.
  while (exchange.unfinished() > 0) {
    for (std::size_t c = 0; c < chips_; ++c) {
      if (!exchange.slot(c).started || exchange.slot(c).finished) continue;
      const Stimulus& stim = exchange.outstanding(c);
      std::vector<bool> pass;
      if (exchange.is_final(c)) {
        pass.assign(1, testers[c].final_test(stim.period, stim.steps));
      } else {
        pass = testers[c].apply(stim);
      }
      if (response_log != nullptr) {
        *response_log << "response " << c << ' ' << exchange.slot(c).next_seq
                      << ' ' << encode_bits(pass) << '\n';
      }
      exchange.apply(c, pass);
    }
  }
  out << "bye\n";
  TuneServerResult result;
  result.stimuli = exchange.stimuli();
  result.reports = exchange.take_reports();
  result.errors = exchange.take_errors();
  return result;
}

}  // namespace effitest::io
