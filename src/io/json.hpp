#pragma once
// Minimal shared JSON value + recursive-descent parser for the io layer.
//
// Self-contained on purpose: the container bakes no JSON dependency, and
// the schemas this repository speaks (scenario specs, campaign
// checkpoints, bench reports) need only objects/arrays/strings/numbers/
// bools. Extensions over strict JSON: `//` line comments, so shipped
// files can be annotated. Every parse error carries the 1-based line of
// the offending token; callers (scenario_json, checkpoint_json) translate
// ParseError into their own schema-level exception type so the CLI's
// exit-code mapping stays per-surface.
//
// Hardening contract (policed by tests/fuzz/fuzz_scenario_json and the
// corpus-replay `fuzz` ctest suite): arbitrary input must either parse or
// raise ParseError — never crash, loop, overflow the stack (64-level
// nesting guard) or trip a sanitizer.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace effitest::io::json {

/// Malformed JSON. `what()` is "<source> line <n>: <reason>".
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t line)
      : std::runtime_error(what), line(line) {}
  std::size_t line = 0;
};

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< input order
  std::size_t line = 0;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

[[nodiscard]] const char* kind_name(Value::Kind kind);

class Parser {
 public:
  /// `source` names the document in error messages (a file path, "fuzz").
  Parser(const std::string& text, const std::string& source)
      : text_(text), source_(source) {}

  /// Parse the whole document (trailing content is an error).
  [[nodiscard]] Value parse();

  /// Raise a ParseError anchored at `line` — also used by schema readers
  /// so semantic errors carry the same source/line prefix as syntax ones.
  [[noreturn]] void fail_at(std::size_t line, const std::string& what) const;

 private:
  [[noreturn]] void fail(const std::string& what) const;
  void skip_ws();
  char peek();
  void expect(char c);
  bool consume_keyword(const char* kw);
  Value parse_value();
  std::string parse_string();
  unsigned parse_hex4();
  double parse_number();

  const std::string& text_;
  const std::string source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t depth_ = 0;
};

/// Round-trip formatting for doubles (max_digits10): the deterministic
/// metrics written through this re-read bit-identically.
[[nodiscard]] std::string format_double(double v);

/// A JSON string literal (quotes included) with the escapes the Parser
/// understands — quote/parse round-trips any byte string. Control bytes
/// without a named escape are emitted as \u00XX.
[[nodiscard]] std::string quote(const std::string& s);

/// Incremental JSON text builder shared by every emitter in the tree
/// (bench reports, campaign checkpoints, obs log/status rendering).
/// Escaping and double formatting live here — in quote()/format_double()
/// — and nowhere else; layout (indentation, newlines, commas) stays with
/// the caller via raw(), so each schema keeps its committed byte-exact
/// shape.
class Writer {
 public:
  Writer& raw(std::string_view text);       ///< verbatim structural text
  Writer& key(const std::string& k);        ///< `"k": ` (caller adds commas)
  Writer& string(const std::string& s);     ///< quoted + escaped
  Writer& number(double v);                 ///< format_double; non-finite → null
  Writer& number(std::uint64_t v);
  Writer& boolean(bool v);

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

}  // namespace effitest::io::json
