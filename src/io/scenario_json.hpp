#pragma once
// Declarative campaign specs: a JSON file naming circuits (paper /
// generator / .bench / scaled), the T_d grid and the flow knobs, loaded
// into a ready-to-run (catalog, jobs, options) triple for
// core::CampaignRunner — the `effitest_cli campaign --spec=file.json`
// surface.
//
// Schema "effitest-scenario-v1" (`//` line comments are allowed, so specs
// can be annotated — see examples/mixed_campaign.scenario.json):
//
//   {
//     "schema": "effitest-scenario-v1",
//     "name": "mixed-demo",            // optional, default: file stem
//     "chips": 200,                    // optional flow/campaign knobs
//     "seed": 2016,
//     "threads": 0,
//     "inflation": 1.0,
//     "calibration_chips": 2000,
//     "quantiles": [0.5, 0.8413],      // T_d calibration quantiles
//     "periods": [6000.0],             // explicit T_d values (ps)
//     "modes": ["flow", "analytic"],   // job kinds; default ["flow"]
//     "flow": { "prediction": true, "alignment": true,
//               "exclusions": false },
//     "circuits": [                    // required, non-empty
//       { "paper": "s9234" },                          // pre-registered
//       { "paper": "s9234", "name": "alt", "seed": 7 },// reseeded copy
//       { "paper": "s9234", "name": "big", "scale": 2.0 },  // scaled
//       { "bench": "my.bench", "buffers": 4, "policy": "hub-count" },
//       { "generator": { "name": "inline1", "flip_flops": 64,
//                        "gates": 600, "buffers": 2,
//                        "critical_paths": 24, "seed": 5 } }
//     ]
//   }
//
// Jobs are the circuit-major cross of circuits x modes x (periods +
// quantiles) (one default-convention job per circuit and mode when both
// grids are empty), so the runner prepares each circuit once. The catalog starts from the
// eight paper benchmarks; a {"paper": ...} entry without overrides just
// references the pre-registered circuit, while any override (seed, scale)
// must pick a distinct "name". Relative .bench paths resolve against the
// spec file's directory. Every malformed input — bad JSON, unknown keys,
// duplicate names, out-of-range values — raises ScenarioError with the
// offending line; the CLI maps it to exit code 2.

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "scenario/circuit_catalog.hpp"

namespace effitest::io {

/// Malformed scenario spec (syntax or schema). `what()` carries the source
/// name and, for syntax errors, the line number.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A loaded campaign spec, ready to run.
struct Scenario {
  std::string name;  ///< "name" field, else the source/file stem
  /// Paper benchmarks + the spec's circuits. Also set as
  /// `options.catalog`; kept mutable here so callers can extend it.
  std::shared_ptr<scenario::CircuitCatalog> catalog;
  std::vector<core::CampaignJob> jobs;  ///< circuit-major
  core::CampaignOptions options;        ///< catalog + flow knobs applied
};

/// Parse a scenario spec from text. `source` names the spec in errors;
/// `base_dir` (may be empty) anchors relative .bench paths.
[[nodiscard]] Scenario parse_scenario(const std::string& text,
                                      const std::string& source = "scenario",
                                      const std::string& base_dir = "");

/// Load a scenario spec file. Relative .bench paths inside resolve
/// against the file's directory. Throws ScenarioError on unreadable
/// files and malformed content.
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

}  // namespace effitest::io
