#pragma once
// Line-oriented stimulus/response protocol for driving TuningSessions from
// an external tester or a replayed response log — the streaming surface of
// `effitest_cli tune` and the `serve_chips` example.
//
// Server -> tester (one line each, space separated):
//
//   effitest-tune-v1 chips=<n> np=<np> nb=<nb> td=<ps>
//   stimulus <chip> <seq> <period> steps <k0> <k1> ... arm <p0> <p1> ...
//   final <chip> <seq> <period> steps <k0> <k1> ...
//   report <chip> iterations=<n> forced=<n> feasible=<0|1> passed=<0|1|->
//          xi=<ps> steps <k0> <k1> ...
//   bye
//
// Tester -> server, one line per answered stimulus:
//
//   response <chip> <seq> <bits>
//
// where <bits> is one '1' (pass) or '0' (fail) character per armed pair of
// the stimulus with that (chip, seq) — exactly one character for a `final`
// line. Sequence numbers are per chip, starting at 0.
//
// Responses may arrive in ANY order — interleaved across chips and even
// shuffled within a chip (a replayed log): the server buffers them by
// (chip, seq) and applies each chip's next expected sequence number as
// soon as it is available. Sessions are pure functions of their responses
// (core/tuner_service.hpp), so the reports are identical for every legal
// ordering of the same response set.
//
// Lines are accepted with either LF or CRLF endings in both modes: a
// trailing '\r' left by std::getline on a DOS/Windows tester stream (or a
// telnet-style TCP client) is stripped before parsing, the same guarantee
// the .bench parser makes for DOS-formatted ISCAS89 files.
//
// Malformed input (strict mode, the default): the first bad line aborts
// the whole run with std::runtime_error. In lenient mode
// (TuneServerOptions::lenient — `effitest_cli tune --lenient`) a bad frame
// attributable to one chip (bad width, bad bits, duplicate/stale seq,
// implausible seq) abandons only that chip: the server emits
//
//   error <chip> <reason>
//
// and keeps serving every other chip, whose reports stay byte-identical
// to an undisturbed run (TuneServerResult::errors says which chips died
// and why). Unattributable garbage — an unparseable line, an out-of-range
// chip id, a response for an already-finished chip — is dropped and
// counted in TuneServerResult::dropped_lines. Two bounds hold in both
// modes (fuzz-driven hardening): a response wider than np is rejected
// before buffering, and a sequence number more than 10^6 ahead of the
// chip's next expected one is rejected as implausible, so hostile input
// cannot grow the out-of-order buffer without bound.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/tuner_service.hpp"

namespace effitest::obs {
class Counter;
class StructuredLog;
}  // namespace effitest::obs

namespace effitest::io {

struct TuneServerOptions {
  /// Abandon individual chips on attributable bad frames instead of
  /// aborting the whole run (see the protocol comment above).
  bool lenient = false;
  /// Per-session backpressure: at most this many chips have an outstanding
  /// stimulus at once. 0 (the default) admits every chip up front — the
  /// historical behavior, whose initial burst is one stimulus line per
  /// chip. With a window W, only W sessions exist at a time: a new chip is
  /// admitted (its TuningSession minted and its first stimulus emitted)
  /// only when another finishes, so a 10k-chip session holds W live
  /// sessions and never floods a slow link. Reports are identical for any
  /// window — sessions are independent and responses for not-yet-admitted
  /// chips simply wait in the (chip, seq) reorder buffer, still bounded by
  /// kMaxPendingWindow semantics.
  std::size_t chip_window = 0;
  /// Live stimulus counter (obs registry), bumped as each stimulus/final
  /// line is emitted — what the serve loop's `status` endpoint reports
  /// mid-session. nullptr: not counted live (TuneServerResult::stimuli is
  /// still the per-run total either way).
  obs::Counter* live_stimuli = nullptr;
  /// Structured event log threaded into every minted TuningSession
  /// (chip_begin / final_test / chip_report events), or nullptr for none.
  obs::StructuredLog* log = nullptr;
};

struct TuneServerResult {
  std::vector<core::ChipReport> reports;  ///< one per chip, in chip order
  std::size_t stimuli = 0;  ///< stimulus + final lines emitted
  /// Per chip: empty = tuned cleanly, otherwise the reason the chip was
  /// abandoned (lenient mode only; its report slot is default-constructed).
  std::vector<std::string> errors;
  /// Unattributable input lines dropped in lenient mode.
  std::size_t dropped_lines = 0;
};

/// Streams `chips` per-chip TuningSessions of one shared TunerService over
/// the protocol above. The service must outlive the server.
class TuneServer {
 public:
  TuneServer(const core::TunerService& service, std::size_t chips,
             TuneServerOptions options = {});

  /// Interactive / replay mode: emit stimuli on `out`, consume `response`
  /// lines from `in` (stdin, a pipe, or a replayed — possibly shuffled —
  /// log). Throws std::runtime_error on malformed input or when the
  /// stream ends with chips unfinished — unless lenient (see above).
  [[nodiscard]] TuneServerResult run(std::istream& in, std::ostream& out);

  /// Self-driving mode: every chip is a simulated die sampled exactly like
  /// run_flow's Monte-Carlo loop (seeded
  /// parallel::index_seed(service.monte_carlo_seed_base(), chip)), the
  /// protocol stream still goes to `out`, and the response line every
  /// stimulus received is appended to `response_log` (when non-null) for
  /// later replay. Chips advance round-robin, so the log interleaves them.
  [[nodiscard]] TuneServerResult run_simulated(
      std::ostream& out, std::ostream* response_log = nullptr);

 private:
  const core::TunerService* service_;
  std::size_t chips_;
  TuneServerOptions options_;
};

}  // namespace effitest::io
