#pragma once
// Front balancer for the multi-process tuning fleet (`effitest_cli
// balance`): one listening port, many `serve` worker processes. Testers
// speak plain effitest-tune-v1 to the balancer; each session is routed to
// the least-loaded live worker (fleet/registry.hpp) and relayed byte for
// byte in both directions. DESIGN.md §15.
//
// Session retry / migration: the relay records the client's hello and
// every client line after it, and counts the server lines already
// forwarded (the greeting aside). When the worker connection dies before
// the session's `bye` — SIGKILL'd worker, crashed process, yanked cable —
// the slot is report_failure()'d and the session re-attached to a
// surviving worker: same hello, greeting checked for the SAME seed base
// (never re-forwarded), the recorded client lines replayed, and the first
// K server lines read and discarded. Because the serve exchange is a pure
// deterministic function of the client's line order under a fixed seed
// base (die c is Rng(index_seed(seed, c)); the Exchange is
// single-threaded), the discarded prefix is byte-identical to what the
// client already holds, and the relay resumes at exactly the next unseen
// byte — the client observes one uninterrupted session. Retries are
// bounded by max_session_retries; exhaustion (or no acquirable worker)
// sends the client a final `error - fleet exhausted ...` line.
//
// A worker-sent fatal rejection (`error - <reason>`) is forwarded and
// never retried: it would recur deterministically on any worker.
//
// Relay concurrency: two threads per session — downlink (the session's
// pool worker: worker socket -> client) and one uplink (client -> worker).
// They never share a SocketStream (SocketStreambuf is not thread-safe);
// each reads with its own raw-fd line reader and writes with send(2), and
// recv/send on one fd from two threads is safe. The uplink appends to the
// replay backlog and forwards under the session mutex, so a migration's
// replay is ordered against live client lines. Half-closes (net::
// shutdown_read/shutdown_write) unblock the peer thread without racing fd
// lifetimes: a vanished client shuts down the worker-socket write side so
// the worker sees EOF; a finished downlink shuts down the client read side
// to pop the uplink out of recv before joining it.
//
// Accept/drain shape is TuneServeLoop's: accept thread + self-pipe,
// accept-pausing backpressure at max_pending, in-band first-line `status`
// (JSON) / `status prometheus` (text exposition format) answered without
// touching session counters, optional dedicated status listener, and an
// async-signal-safe request_drain() that stops accepting and lets every
// in-flight session finish — including finishing any migration it is in
// the middle of.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/registry.hpp"
#include "net/load_balancer.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"

namespace effitest::obs {
class StructuredLog;
}  // namespace effitest::obs

namespace effitest::fleet {

struct BalancerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral, read the choice from port()
  /// Concurrent relay sessions (each also spawns one uplink thread).
  std::size_t relay_workers = 8;
  std::size_t max_pending = 64;
  /// Drain automatically after this many accepted sessions; 0 = run until
  /// request_drain().
  std::size_t max_sessions = 0;
  /// Re-attach attempts after a session's first worker dies; attempt
  /// 1 + max_session_retries failing (or no acquirable worker) is fleet
  /// exhaustion.
  std::size_t max_session_retries = 2;
  /// Pause before each re-attach, so a just-killed worker's supervisor
  /// restart and the registry's probe re-admission get a beat to land.
  double attach_backoff_seconds = 0.05;
  double io_timeout_seconds = 0.0;
  int listen_backlog = 512;
  /// Dedicated status endpoint, exactly like ServeOptions::status_port:
  /// -1 disables, 0 binds ephemeral (read status_port()).
  int status_port = -1;
  obs::StructuredLog* log = nullptr;
};

// Fleet-level metric names (the balancer's own obs::MetricsRegistry —
// disjoint from the serve.* names so a dashboard scraping both tiers
// never collides). Per-worker gauges fleet.worker<slot>.live_sessions
// (balancer-side in-flight) and fleet.worker<slot>.queue_depth (the
// worker's last self-reported serve.queue_depth) are registered for every
// registry slot at construction.
inline constexpr const char* kFleetSessionsRouted = "fleet.sessions_routed";
inline constexpr const char* kFleetSessionsCompleted =
    "fleet.sessions_completed";
inline constexpr const char* kFleetSessionsFailed = "fleet.sessions_failed";
inline constexpr const char* kFleetSessionsRetried = "fleet.sessions_retried";
inline constexpr const char* kFleetStatusRequests = "fleet.status_requests";
inline constexpr const char* kFleetActiveSessions = "fleet.active_sessions";
inline constexpr const char* kFleetQueueDepth = "fleet.queue_depth";
inline constexpr const char* kFleetWorkersLive = "fleet.workers_live";
inline constexpr const char* kFleetWorkersDegraded = "fleet.workers_degraded";
inline constexpr const char* kFleetWorkersDead = "fleet.workers_dead";
inline constexpr const char* kFleetWallSeconds = "fleet.wall_seconds";
inline constexpr const char* kFleetSessionsPerSec = "fleet.sessions_per_sec";

class FleetBalancer {
 public:
  /// The registry must outlive the balancer and have every slot added
  /// before construction (per-slot gauges are bound here, under the
  /// Gauge::bind before-threads contract); endpoints may still be unknown
  /// and slots keep being re-pointed by a supervisor afterwards.
  FleetBalancer(WorkerRegistry& registry, BalancerOptions options);
  ~FleetBalancer();

  FleetBalancer(const FleetBalancer&) = delete;
  FleetBalancer& operator=(const FleetBalancer&) = delete;

  /// Bind, listen, spawn the accept thread and the relay pool. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& host() const { return options_.host; }
  [[nodiscard]] std::uint16_t status_port() const { return status_port_; }

  /// Async-signal-safe (atomic store + one pipe write): stop accepting,
  /// finish queued and in-flight sessions (migrations included).
  void request_drain();

  /// Join everything; returns once the last session finished. Idempotent.
  void wait();

  /// Registry snapshot with the wall-clock gauges refreshed (frozen at
  /// drain time once drained, like TuneServeLoop::metrics).
  [[nodiscard]] obs::RegistrySnapshot metrics() const;

  /// metrics() as the one-line `effitest-status-v1` JSON the in-band
  /// `status` request and the --status-port endpoint return.
  [[nodiscard]] std::string status_json() const;

 private:
  void accept_loop();
  void answer_status_connection();
  void relay_worker_loop(std::size_t w);
  void relay_session(net::Socket client);

  WorkerRegistry* registry_;
  BalancerOptions options_;
  std::unique_ptr<net::Listener> listener_;
  std::unique_ptr<net::Listener> status_listener_;
  std::uint16_t port_ = 0;
  std::uint16_t status_port_ = 0;
  net::LoadBalancer<net::Socket> pool_;
  std::vector<std::thread> threads_;
  net::Socket drain_pipe_r_;
  net::Socket drain_pipe_w_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  mutable obs::MetricsRegistry metrics_registry_;
  obs::Counter* routed_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* retried_;
  obs::Counter* status_requests_;
  obs::Gauge* active_sessions_;
  obs::Gauge* wall_seconds_;
  obs::Gauge* sessions_per_sec_;

  mutable std::mutex time_mutex_;
  std::chrono::steady_clock::time_point started_at_{};
  std::chrono::steady_clock::time_point drained_at_{};
  bool drained_ = false;
};

}  // namespace effitest::fleet
