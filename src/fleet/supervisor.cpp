#include "fleet/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/log.hpp"

namespace effitest::fleet {

std::optional<WorkerEndpoint> parse_serving_banner(const std::string& line) {
  constexpr const char* kPrefix = "serving on ";
  constexpr std::size_t kPrefixLen = 11;
  if (line.rfind(kPrefix, 0) != 0) return std::nullopt;
  const std::string target = line.substr(kPrefixLen);
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == target.size()) {
    return std::nullopt;
  }
  const std::string port_text = target.substr(colon + 1);
  std::uint32_t port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return std::nullopt;
  }
  if (port == 0) return std::nullopt;
  WorkerEndpoint endpoint;
  endpoint.host = target.substr(0, colon);
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

ProcessSupervisor::ProcessSupervisor(SupervisorOptions options,
                                     EndpointCallback on_endpoint)
    : options_(std::move(options)), on_endpoint_(std::move(on_endpoint)) {
  if (options_.argv.empty()) {
    throw std::invalid_argument("fleet: supervisor needs a child argv");
  }
  if (options_.children == 0) {
    throw std::invalid_argument("fleet: supervisor needs at least one child");
  }
}

ProcessSupervisor::~ProcessSupervisor() { drain(); }

std::size_t ProcessSupervisor::children() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return children_.size();
}

pid_t ProcessSupervisor::pid(std::size_t child) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return child < children_.size() ? children_[child].pid : -1;
}

std::size_t ProcessSupervisor::restarts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_restarts_;
}

void ProcessSupervisor::spawn_locked(std::size_t index) {
  Child& child = children_[index];
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    throw std::runtime_error("fleet: pipe failed: " +
                             std::string(std::strerror(errno)));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("fleet: fork failed: " +
                             std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: banner goes through the pipe; stderr stays inherited so the
    // worker's drain summary lands on the balancer's stderr.
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(options_.argv.size() + 1);
    for (const std::string& arg : options_.argv) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    // Exec failed; the parent sees a fast exit + pipe EOF.
    const char* msg = "fleet: exec failed\n";
    (void)!::write(STDERR_FILENO, msg, std::strlen(msg));
    ::_exit(127);
  }
  ::close(fds[1]);
  // Non-blocking read end: the monitor drains on POLLIN and must never
  // hang on a half-written line.
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  (void)::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
  child.pid = pid;
  child.pipe = net::Socket(fds[0]);
  child.line_buf.clear();
  child.awaiting_banner = true;
  child.restart_pending = false;
  if (options_.log != nullptr) {
    options_.log->emit(
        "fleet", "worker_spawned",
        {obs::LogField::u64("child", index),
         obs::LogField::u64("pid", static_cast<std::uint64_t>(pid))});
  }
}

void ProcessSupervisor::drain_pipe_locked(std::size_t index) {
  Child& child = children_[index];
  if (!child.pipe.valid()) return;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(child.pipe.fd(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained for now
    }
    if (n == 0) {
      // EOF: the child closed stdout (almost certainly exited — the next
      // waitpid tick reaps it). Stop watching the pipe.
      child.pipe.close();
      return;
    }
    child.line_buf.append(buf, static_cast<std::size_t>(n));
    std::size_t nl = 0;
    while ((nl = child.line_buf.find('\n')) != std::string::npos) {
      std::string line = child.line_buf.substr(0, nl);
      child.line_buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!child.awaiting_banner) continue;
      const std::optional<WorkerEndpoint> endpoint = parse_serving_banner(line);
      if (!endpoint) continue;
      child.awaiting_banner = false;
      child.restarts = 0;  // a healthy banner resets the crash backoff
      if (on_endpoint_) {
        // Fire outside the supervisor lock: the callback typically takes
        // the registry's lock, and holding both invites inversions.
        const EndpointCallback cb = on_endpoint_;
        const WorkerEndpoint ep = *endpoint;
        mutex_.unlock();
        cb(index, ep);
        mutex_.lock();
      }
    }
  }
}

bool ProcessSupervisor::all_ready_locked() const {
  return std::all_of(children_.begin(), children_.end(), [](const Child& c) {
    return c.pid > 0 && !c.awaiting_banner;
  });
}

void ProcessSupervisor::start() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!children_.empty()) {
      throw std::logic_error("fleet: supervisor started twice");
    }
    children_.resize(options_.children);
    for (std::size_t i = 0; i < children_.size(); ++i) spawn_locked(i);
  }
  // Block until every banner is in (the registry needs endpoints before
  // the balancer routes anything).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.startup_timeout_seconds));
  for (;;) {
    std::vector<pollfd> fds;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (all_ready_locked()) break;
      for (const Child& c : children_) {
        if (c.pipe.valid()) fds.push_back({c.pipe.fd(), POLLIN, 0});
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error(
          "fleet: spawned worker did not announce \"serving on\" within " +
          std::to_string(options_.startup_timeout_seconds) + "s");
    }
    if (fds.empty()) {
      throw std::runtime_error(
          "fleet: spawned worker exited before announcing its port");
    }
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < children_.size(); ++i) drain_pipe_locked(i);
    }
  }
  int stop_fds[2] = {-1, -1};
  if (::pipe(stop_fds) != 0) {
    throw std::runtime_error("fleet: pipe failed");
  }
  stop_pipe_r_ = net::Socket(stop_fds[0]);
  stop_pipe_w_ = net::Socket(stop_fds[1]);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    monitoring_ = true;
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

void ProcessSupervisor::monitor_loop() {
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({stop_pipe_r_.fd(), POLLIN, 0});
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!monitoring_) return;
      for (const Child& c : children_) {
        if (c.pipe.valid()) fds.push_back({c.pipe.fd(), POLLIN, 0});
      }
    }
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if ((fds[0].revents & POLLIN) != 0) return;  // drain requested

    std::unique_lock<std::mutex> lock(mutex_);
    if (!monitoring_) return;
    for (std::size_t i = 0; i < children_.size(); ++i) drain_pipe_locked(i);
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < children_.size(); ++i) {
      Child& child = children_[i];
      if (child.pid > 0) {
        int status = 0;
        const pid_t reaped = ::waitpid(child.pid, &status, WNOHANG);
        if (reaped == child.pid) {
          child.pipe.close();
          child.pid = -1;
          child.awaiting_banner = false;
          if (options_.log != nullptr) {
            options_.log->emit(
                "fleet", "worker_exited",
                {obs::LogField::u64("child", i),
                 obs::LogField::u64(
                     "status", static_cast<std::uint64_t>(
                                   WIFEXITED(status) ? WEXITSTATUS(status)
                                                     : 128 + WTERMSIG(status))),
                 obs::LogField::boolean("will_restart",
                                        options_.restart_on_crash)});
          }
          if (options_.restart_on_crash) {
            // Exponential backoff per consecutive crash; a scraped banner
            // resets the exponent.
            const double delay = std::min(
                options_.backoff_base_seconds *
                    std::exp2(static_cast<double>(child.restarts)),
                options_.backoff_max_seconds);
            child.restart_pending = true;
            child.restart_at =
                now + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(delay));
            ++child.restarts;
          }
        }
      } else if (child.restart_pending && now >= child.restart_at) {
        spawn_locked(i);
        ++total_restarts_;
      }
    }
  }
}

void ProcessSupervisor::drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return;
    draining_ = true;
    monitoring_ = false;
  }
  if (stop_pipe_w_.valid()) {
    const char byte = 'd';
    (void)!::write(stop_pipe_w_.fd(), &byte, 1);
  }
  if (monitor_.joinable()) monitor_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < children_.size(); ++i) {
    Child& child = children_[i];
    child.restart_pending = false;
    if (child.pid <= 0) continue;
    (void)::kill(child.pid, SIGTERM);
  }
  for (std::size_t i = 0; i < children_.size(); ++i) {
    Child& child = children_[i];
    if (child.pid <= 0) continue;
    int status = 0;
    pid_t reaped = -1;
    do {
      reaped = ::waitpid(child.pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    child.pid = -1;
    child.pipe.close();
  }
  stop_pipe_r_.close();
  stop_pipe_w_.close();
}

}  // namespace effitest::fleet
