#include "fleet/registry.hpp"

#include <poll.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "io/json.hpp"
#include "net/client.hpp"

namespace effitest::fleet {

const char* health_name(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kLive:
      return "live";
    case WorkerHealth::kDegraded:
      return "degraded";
    case WorkerHealth::kDead:
      return "dead";
  }
  return "unknown";
}

ProbeResult parse_worker_status(const std::string& line) {
  ProbeResult result;
  try {
    io::json::Parser parser(line, "worker-status");
    const io::json::Value doc = parser.parse();
    const io::json::Value* schema = doc.find("schema");
    if (schema == nullptr || schema->kind != io::json::Value::Kind::kString ||
        schema->string != "effitest-status-v1") {
      return result;
    }
    const io::json::Value* gauges = doc.find("gauges");
    if (gauges != nullptr && gauges->kind == io::json::Value::Kind::kObject) {
      if (const io::json::Value* qd = gauges->find("serve.queue_depth")) {
        if (qd->kind == io::json::Value::Kind::kNumber) {
          result.queue_depth = qd->number;
        }
      }
      if (const io::json::Value* as = gauges->find("serve.active_sessions")) {
        if (as->kind == io::json::Value::Kind::kNumber) {
          result.active_sessions = as->number;
        }
      }
    }
    result.ok = true;
  } catch (const io::json::ParseError&) {
    // ok stays false: a worker answering garbage counts as a failed probe.
  }
  return result;
}

WorkerRegistry::WorkerRegistry(RegistryOptions options)
    : options_(std::move(options)) {
  const double timeout = options_.probe_timeout_seconds;
  prober_ = [timeout](const WorkerEndpoint& endpoint) {
    try {
      return parse_worker_status(
          net::fetch_status(endpoint.host, endpoint.port, timeout));
    } catch (const std::exception&) {
      return ProbeResult{};
    }
  };
}

WorkerRegistry::~WorkerRegistry() { stop_probing(); }

std::size_t WorkerRegistry::add_worker(WorkerEndpoint endpoint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Slot slot;
  const bool known = endpoint.known();
  slot.endpoint = std::move(endpoint);
  // A known endpoint starts live (it was just scraped from a banner or
  // given on the command line); the first failed probe or session demotes
  // it. An unknown one is unroutable until update_endpoint().
  slot.health = known ? WorkerHealth::kLive : WorkerHealth::kDead;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void WorkerRegistry::update_endpoint(std::size_t slot,
                                     WorkerEndpoint endpoint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size()) return;
  slots_[slot].endpoint = std::move(endpoint);
  slots_[slot].health =
      slots_[slot].endpoint.known() ? WorkerHealth::kLive : WorkerHealth::kDead;
  slots_[slot].consecutive_failures = 0;
  slots_[slot].probed_queue_depth = 0.0;
  slots_[slot].probed_active_sessions = 0.0;
}

std::size_t WorkerRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

WorkerEndpoint WorkerRegistry::endpoint(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot < slots_.size() ? slots_[slot].endpoint : WorkerEndpoint{};
}

WorkerHealth WorkerRegistry::health(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot < slots_.size() ? slots_[slot].health : WorkerHealth::kDead;
}

std::size_t WorkerRegistry::count(WorkerHealth health) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Slot& slot : slots_) {
    if (slot.health == health) ++n;
  }
  return n;
}

void WorkerRegistry::set_prober(Prober prober) {
  const std::lock_guard<std::mutex> lock(mutex_);
  prober_ = std::move(prober);
}

void WorkerRegistry::apply_probe(std::size_t slot, const ProbeResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (result.ok) {
    // One good answer re-admits from any state — restarted workers rejoin
    // the rotation within a probe interval.
    s.health = WorkerHealth::kLive;
    s.consecutive_failures = 0;
    s.probed_queue_depth = result.queue_depth;
    s.probed_active_sessions = result.active_sessions;
    return;
  }
  ++s.consecutive_failures;
  if (s.consecutive_failures >= options_.dead_after) {
    s.health = WorkerHealth::kDead;
  } else if (s.consecutive_failures >= options_.degraded_after) {
    s.health = WorkerHealth::kDegraded;
  }
}

void WorkerRegistry::probe_all() {
  // Snapshot endpoints under the lock, probe outside it (network I/O),
  // apply under the lock again. A slot whose endpoint changes mid-probe
  // gets a stale verdict for one round — the next round corrects it.
  std::vector<std::pair<std::size_t, WorkerEndpoint>> targets;
  Prober prober;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    prober = prober_;
    targets.reserve(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].endpoint.known()) targets.emplace_back(i, slots_[i].endpoint);
    }
  }
  for (const auto& [slot, endpoint] : targets) {
    apply_probe(slot, prober(endpoint));
  }
}

void WorkerRegistry::start_probing() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (probing_) return;
    probing_ = true;
  }
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    throw std::runtime_error("fleet: registry pipe failed");
  }
  stop_pipe_r_ = net::Socket(fds[0]);
  stop_pipe_w_ = net::Socket(fds[1]);
  prober_thread_ = std::thread([this] { prober_loop(); });
}

void WorkerRegistry::stop_probing() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!probing_) return;
    probing_ = false;
  }
  if (stop_pipe_w_.valid()) {
    const char byte = 's';
    (void)!::write(stop_pipe_w_.fd(), &byte, 1);
  }
  if (prober_thread_.joinable()) prober_thread_.join();
  stop_pipe_r_.close();
  stop_pipe_w_.close();
}

void WorkerRegistry::prober_loop() {
  const int interval_ms =
      options_.probe_interval_seconds <= 0.0
          ? 100
          : static_cast<int>(options_.probe_interval_seconds * 1e3);
  for (;;) {
    pollfd pfd{stop_pipe_r_.fd(), POLLIN, 0};
    const int n = ::poll(&pfd, 1, interval_ms);
    if (n > 0 && (pfd.revents & POLLIN) != 0) return;  // stop requested
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!probing_) return;
    }
    probe_all();
  }
}

std::optional<std::size_t> WorkerRegistry::acquire() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Two passes: live slots first, degraded only as a last resort. Lowest
  // in-flight wins, ties to the lowest index (deterministic routing).
  for (const WorkerHealth wanted :
       {WorkerHealth::kLive, WorkerHealth::kDegraded}) {
    std::size_t best = slots_.size();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].health != wanted || !slots_[i].endpoint.known()) continue;
      if (best == slots_.size() ||
          slots_[i].in_flight < slots_[best].in_flight) {
        best = i;
      }
    }
    if (best < slots_.size()) {
      ++slots_[best].in_flight;
      return best;
    }
  }
  return std::nullopt;
}

void WorkerRegistry::release(std::size_t slot) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slot < slots_.size() && slots_[slot].in_flight > 0) {
    --slots_[slot].in_flight;
  }
}

void WorkerRegistry::report_failure(std::size_t slot) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size()) return;
  slots_[slot].health = WorkerHealth::kDead;
  slots_[slot].consecutive_failures = options_.dead_after;
}

std::size_t WorkerRegistry::in_flight(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot < slots_.size() ? slots_[slot].in_flight : 0;
}

double WorkerRegistry::probed_queue_depth(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot < slots_.size() ? slots_[slot].probed_queue_depth : 0.0;
}

double WorkerRegistry::probed_active_sessions(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slot < slots_.size() ? slots_[slot].probed_active_sessions : 0.0;
}

}  // namespace effitest::fleet
