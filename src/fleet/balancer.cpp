#include "fleet/balancer.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/log.hpp"

namespace effitest::fleet {

namespace {

/// Buffered line reader over a raw fd. The relay cannot use SocketStream
/// here: its streambuf flushes the put area from underflow, so sharing one
/// stream between the uplink and downlink threads would race. Reading with
/// a private buffer and writing with bare send(2) keeps each direction
/// self-contained (recv and send on one fd from two threads is safe).
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  /// False on EOF, error, or receive timeout — all "the peer is gone".
  bool read_line(std::string& line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
      }
      char chunk[4096];
      ssize_t n = 0;
      do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

bool send_all(int fd, const std::string& data) {
  const char* p = data.data();
  const char* end = p + data.size();
  while (p < end) {
    const ssize_t n =
        ::send(fd, p, static_cast<std::size_t>(end - p), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
  }
  return true;
}

/// Seed base out of `serve effitest-tune-v1 session=<id> seed=<base>`.
std::optional<std::uint64_t> parse_greeting_seed(const std::string& greeting) {
  std::istringstream is(greeting);
  std::string tag, token;
  if (!(is >> tag) || tag != "serve") return std::nullopt;
  while (is >> token) {
    if (token.rfind("seed=", 0) == 0) {
      try {
        return std::stoull(token.substr(5));
      } catch (const std::exception&) {
        return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

/// Shared mutable session state between the downlink (relay worker) and
/// uplink threads. The mutex orders backlog appends + live forwards
/// against a migration's backlog replay, and guards worker_fd so the
/// uplink never writes to a socket the downlink is closing.
struct SessionState {
  std::mutex mutex;
  std::vector<std::string> backlog;  ///< client lines after hello, no '\n'
  int worker_fd = -1;                ///< -1 while detached / migrating
  bool client_gone = false;
};

}  // namespace

FleetBalancer::FleetBalancer(WorkerRegistry& registry, BalancerOptions options)
    : registry_(&registry),
      options_(std::move(options)),
      pool_(options_.relay_workers == 0 ? 1 : options_.relay_workers),
      routed_(&metrics_registry_.counter(kFleetSessionsRouted)),
      completed_(&metrics_registry_.counter(kFleetSessionsCompleted)),
      failed_(&metrics_registry_.counter(kFleetSessionsFailed)),
      retried_(&metrics_registry_.counter(kFleetSessionsRetried)),
      status_requests_(&metrics_registry_.counter(kFleetStatusRequests)),
      active_sessions_(&metrics_registry_.gauge(kFleetActiveSessions)),
      wall_seconds_(&metrics_registry_.gauge(kFleetWallSeconds)),
      sessions_per_sec_(&metrics_registry_.gauge(kFleetSessionsPerSec)) {
  // All binds happen before any thread exists (the Gauge::bind contract).
  metrics_registry_.gauge(kFleetQueueDepth).bind([this] {
    return static_cast<double>(pool_.queued());
  });
  metrics_registry_.gauge(kFleetWorkersLive).bind([this] {
    return static_cast<double>(registry_->count(WorkerHealth::kLive));
  });
  metrics_registry_.gauge(kFleetWorkersDegraded).bind([this] {
    return static_cast<double>(registry_->count(WorkerHealth::kDegraded));
  });
  metrics_registry_.gauge(kFleetWorkersDead).bind([this] {
    return static_cast<double>(registry_->count(WorkerHealth::kDead));
  });
  for (std::size_t slot = 0; slot < registry.size(); ++slot) {
    const std::string prefix = "fleet.worker" + std::to_string(slot);
    metrics_registry_.gauge(prefix + ".live_sessions").bind([this, slot] {
      return static_cast<double>(registry_->in_flight(slot));
    });
    metrics_registry_.gauge(prefix + ".queue_depth").bind([this, slot] {
      return registry_->probed_queue_depth(slot);
    });
  }
}

FleetBalancer::~FleetBalancer() {
  request_drain();
  wait();
}

void FleetBalancer::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("fleet: start() called twice");
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("fleet: pipe failed");
  }
  drain_pipe_r_ = net::Socket(pipe_fds[0]);
  drain_pipe_w_ = net::Socket(pipe_fds[1]);
  listener_ = std::make_unique<net::Listener>(options_.host, options_.port,
                                              options_.listen_backlog);
  port_ = listener_->port();
  if (options_.status_port >= 0) {
    status_listener_ = std::make_unique<net::Listener>(
        options_.host, static_cast<std::uint16_t>(options_.status_port),
        options_.listen_backlog);
    status_port_ = status_listener_->port();
  }
  {
    std::lock_guard<std::mutex> lock(time_mutex_);
    started_at_ = std::chrono::steady_clock::now();
  }
  threads_.reserve(pool_.workers() + 1);
  threads_.emplace_back([this] { accept_loop(); });
  for (std::size_t w = 0; w < pool_.workers(); ++w) {
    threads_.emplace_back([this, w] { relay_worker_loop(w); });
  }
}

void FleetBalancer::request_drain() {
  // Called from signal handlers: atomic store + one write(2), nothing else.
  if (draining_.exchange(true)) return;
  if (drain_pipe_w_.valid()) {
    const char byte = 'd';
    (void)!::write(drain_pipe_w_.fd(), &byte, 1);
  }
}

void FleetBalancer::wait() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  std::lock_guard<std::mutex> lock(time_mutex_);
  if (!drained_ && started_.load()) {
    drained_ = true;
    drained_at_ = std::chrono::steady_clock::now();
  }
}

void FleetBalancer::accept_loop() {
  std::size_t accepted = 0;
  while (!draining_.load(std::memory_order_relaxed)) {
    const bool paused = pool_.queued() >= options_.max_pending;
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {drain_pipe_r_.fd(), POLLIN, 0};
    std::size_t tune_idx = 0;
    if (!paused) {
      tune_idx = nfds;
      fds[nfds++] = {listener_->fd(), POLLIN, 0};
    }
    std::size_t status_idx = 0;
    if (status_listener_ != nullptr) {
      status_idx = nfds;
      fds[nfds++] = {status_listener_->fd(), POLLIN, 0};
    }
    const int n = ::poll(fds, nfds, paused ? 50 : 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // drain requested
    if (status_listener_ != nullptr && status_idx != 0 &&
        (fds[status_idx].revents & POLLIN) != 0) {
      answer_status_connection();
    }
    if (paused || n == 0 || (fds[tune_idx].revents & POLLIN) == 0) continue;
    net::Socket conn = listener_->accept();
    if (!conn.valid()) continue;
    conn.set_io_timeout(options_.io_timeout_seconds);
    pool_.dispatch(std::move(conn));
    ++accepted;
    if (options_.max_sessions != 0 && accepted >= options_.max_sessions) {
      request_drain();
      break;
    }
  }
  listener_->close();
  if (status_listener_ != nullptr) status_listener_->close();
  pool_.close();
}

void FleetBalancer::answer_status_connection() {
  net::Socket conn = status_listener_->accept();
  if (!conn.valid()) return;
  conn.set_io_timeout(1.0);
  status_requests_->inc();  // before rendering, so the reply includes itself
  const std::string line = status_json() + "\n";
  net::SocketStream stream(std::move(conn));
  stream << line;
  stream.flush();
  std::string discard;
  (void)std::getline(stream, discard);
}

void FleetBalancer::relay_worker_loop(std::size_t w) {
  while (auto task = pool_.next(w)) {
    relay_session(std::move(*task));
    pool_.task_done(w);
  }
}

void FleetBalancer::relay_session(net::Socket client) {
  FdLineReader client_reader(client.fd());
  std::string hello;
  if (!client_reader.read_line(hello)) return;  // vanished before hello
  if (hello == "status" || hello == "status prometheus") {
    status_requests_->inc();
    const std::string reply = hello == "status"
                                  ? status_json() + "\n"
                                  : obs::render_prometheus_text(metrics());
    (void)send_all(client.fd(), reply);
    return;
  }
  routed_->inc();
  active_sessions_->add(1.0);

  SessionState state;
  // Uplink: every client line is recorded for replay AND forwarded to the
  // current worker, atomically with respect to migrations. While detached
  // (worker_fd -1) lines just queue up in the backlog; the replay delivers
  // them. A failed forward is ignored here — the downlink notices the dead
  // worker on its next read and runs the migration.
  std::thread uplink([&] {
    std::string line;
    while (client_reader.read_line(line)) {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.backlog.push_back(line);
      if (state.worker_fd >= 0) {
        (void)send_all(state.worker_fd, line + "\n");
      }
    }
    int worker_fd = -1;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.client_gone = true;
      worker_fd = state.worker_fd;
    }
    // Half-close: the worker's session sees EOF and aborts; the fd itself
    // stays owned (and eventually closed) by the downlink.
    if (worker_fd >= 0) (void)::shutdown(worker_fd, SHUT_WR);
  });

  net::Socket worker_sock;
  std::optional<std::size_t> slot;
  std::optional<FdLineReader> worker_reader;
  std::uint64_t seed_base = 0;
  bool greeting_forwarded = false;
  std::size_t forwarded = 0;  // server lines the client holds, post-greeting
  std::size_t attaches_left = 1 + options_.max_session_retries;
  std::size_t attach_attempts = 0;
  bool completed = false;
  bool failed = false;
  std::string failure_reason;

  // Detach from the current worker (if any): unpublish the fd so the
  // uplink stops forwarding, demote the slot when the worker died, release
  // the routing claim, close the socket.
  const auto drop_worker = [&](bool worker_died) {
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.worker_fd = -1;
    }
    if (slot) {
      if (worker_died) registry_->report_failure(*slot);
      registry_->release(*slot);
      slot.reset();
    }
    worker_reader.reset();
    worker_sock.close();
  };

  while (!completed && !failed) {
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (state.client_gone) break;
    }
    if (!worker_sock.valid()) {
      // ---- attach (or re-attach after a death) ----
      if (attaches_left == 0) {
        failure_reason = "fleet exhausted after " +
                         std::to_string(attach_attempts) +
                         " attach attempts";
        (void)send_all(client.fd(), "error - " + failure_reason + "\n");
        failed = true;
        break;
      }
      --attaches_left;
      ++attach_attempts;
      if (attach_attempts > 1) {
        retried_->inc();
        // Give a supervisor restart / probe re-admission a beat to land.
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.attach_backoff_seconds));
      }
      slot = registry_->acquire();
      if (!slot) continue;  // nothing routable right now; costs an attempt
      const WorkerEndpoint endpoint = registry_->endpoint(*slot);
      try {
        net::Socket s = net::connect_to(endpoint.host, endpoint.port);
        s.set_io_timeout(options_.io_timeout_seconds);
        worker_sock = std::move(s);
      } catch (const std::exception&) {
        registry_->report_failure(*slot);
        registry_->release(*slot);
        slot.reset();
        continue;
      }
      worker_reader.emplace(worker_sock.fd());
      if (!send_all(worker_sock.fd(), hello + "\n")) {
        drop_worker(true);
        continue;
      }
      std::string greeting;
      if (!worker_reader->read_line(greeting)) {
        drop_worker(true);
        continue;
      }
      if (greeting.rfind("error -", 0) == 0) {
        // The worker rejected the hello. Deterministic — every worker
        // would say the same — so forward it and never retry.
        (void)send_all(client.fd(), greeting + "\n");
        failure_reason = greeting;
        failed = true;
        drop_worker(false);
        break;
      }
      const std::optional<std::uint64_t> seed = parse_greeting_seed(greeting);
      if (!seed) {
        drop_worker(true);  // not speaking the protocol: treat as dead
        continue;
      }
      if (!greeting_forwarded) {
        if (!send_all(client.fd(), greeting + "\n")) {
          failure_reason = "client disconnected";
          failed = true;
          drop_worker(false);
          break;
        }
        seed_base = *seed;
        greeting_forwarded = true;
      } else if (*seed != seed_base) {
        // Determinism contract broken: this worker serves a different
        // problem/seed, replaying would hand the client divergent bytes.
        failure_reason = "fleet worker seed mismatch (got " +
                         std::to_string(*seed) + ", session started with " +
                         std::to_string(seed_base) + ")";
        (void)send_all(client.fd(), "error - " + failure_reason + "\n");
        failed = true;
        drop_worker(false);
        break;
      }
      // Replay the recorded client lines and publish the new fd in one
      // critical section, so live uplink lines land strictly after the
      // backlog they are not yet part of.
      bool replay_ok = true;
      std::size_t replayed = 0;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        for (const std::string& line : state.backlog) {
          if (!send_all(worker_sock.fd(), line + "\n")) {
            replay_ok = false;
            break;
          }
        }
        if (replay_ok) {
          state.worker_fd = worker_sock.fd();
          replayed = state.backlog.size();
        }
      }
      if (!replay_ok) {
        drop_worker(true);
        continue;
      }
      // Discard the prefix the client already holds. Deterministic serve
      // output under the same seed and line order makes these bytes
      // identical to what was already forwarded; the old worker produced
      // `forwarded` lines from this very backlog, so the new one cannot
      // block before producing as many.
      bool discard_ok = true;
      std::string discard;
      for (std::size_t i = 0; i < forwarded; ++i) {
        if (!worker_reader->read_line(discard)) {
          discard_ok = false;
          break;
        }
      }
      if (!discard_ok) {
        drop_worker(true);
        continue;
      }
      if (options_.log != nullptr && attach_attempts > 1) {
        options_.log->emit(
            "fleet", "session_migrated",
            {obs::LogField::u64("slot", *slot),
             obs::LogField::str("worker", endpoint.to_string()),
             obs::LogField::u64("replayed", replayed),
             obs::LogField::u64("discarded", forwarded)});
      }
    }
    // ---- relay: worker -> client until bye, death, or fatal error ----
    std::string line;
    for (;;) {
      if (!worker_reader->read_line(line)) {
        drop_worker(true);  // mid-session death: migrate
        break;
      }
      const bool fatal = line.rfind("error -", 0) == 0;
      if (!send_all(client.fd(), line + "\n")) {
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          state.client_gone = true;
        }
        failure_reason = "client disconnected";
        failed = true;
        drop_worker(false);  // closing the socket EOFs the worker session
        break;
      }
      ++forwarded;
      if (fatal) {
        // Mid-session strict-mode abort: deterministic, never retried.
        failure_reason = line;
        failed = true;
        drop_worker(false);
        break;
      }
      if (line == "bye") {
        completed = true;
        drop_worker(false);
        break;
      }
    }
  }
  if (!completed && !failed) {
    failure_reason = "client disconnected";
    failed = true;
  }
  drop_worker(false);
  // Pop the uplink out of its blocking recv, then join it; only after
  // that may the client socket die.
  net::shutdown_read(client);
  uplink.join();
  active_sessions_->add(-1.0);
  if (completed) {
    completed_->inc();
  } else {
    failed_->inc();
  }
  if (options_.log != nullptr) {
    if (completed) {
      options_.log->emit("fleet", "session_complete",
                         {obs::LogField::u64("forwarded", forwarded),
                          obs::LogField::u64("attaches", attach_attempts)});
    } else {
      options_.log->emit("fleet", "session_failed",
                         {obs::LogField::str("reason", failure_reason),
                          obs::LogField::u64("attaches", attach_attempts)});
    }
  }
}

obs::RegistrySnapshot FleetBalancer::metrics() const {
  double wall = 0.0;
  {
    std::lock_guard<std::mutex> lock(time_mutex_);
    if (started_at_.time_since_epoch().count() != 0) {
      const auto end =
          drained_ ? drained_at_ : std::chrono::steady_clock::now();
      wall = std::chrono::duration<double>(end - started_at_).count();
    }
  }
  wall_seconds_->set(wall);
  sessions_per_sec_->set(
      wall > 0.0 ? static_cast<double>(completed_->value()) / wall : 0.0);
  return metrics_registry_.snapshot();
}

std::string FleetBalancer::status_json() const {
  return obs::render_status_json(metrics());
}

}  // namespace effitest::fleet
