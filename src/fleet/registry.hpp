#pragma once
// Worker registry for the multi-process tuning fleet (fleet/balancer.hpp):
// the balancer's authoritative view of which `serve` workers exist, where
// they listen, how healthy they are, and how many fleet sessions are in
// flight on each. DESIGN.md §15.
//
// Health protocol: a background prober polls every worker's
// `effitest-status-v1` endpoint (the in-band `status` request PR 9 added
// to the serve port — no extra listener needed on the worker) on a fixed
// interval. Consecutive probe failures walk the slot down a three-state
// machine:
//
//   kLive --(failures >= degraded_after)--> kDegraded
//         --(failures >= dead_after)-----> kDead
//   any state --(one successful probe)---> kLive   (re-admission)
//
// Routing (acquire/release) prefers live workers, falls back to degraded
// ones when nothing is live, and never routes to a dead worker. Among
// equals the least-loaded slot wins, ties broken by the lowest index —
// deterministic, which the fleet tests rely on to know which worker a
// session lands on. Load is the registry's own in-flight count (sessions
// the balancer routed and has not released), not the worker's self-reported
// gauge: the local count moves synchronously with routing decisions, the
// probed gauge lags by up to one probe interval.
//
// report_failure() is the fast path around the prober: a relay that
// watched its worker connection die mid-session marks the slot dead
// immediately, so the very next acquire() avoids it instead of feeding it
// sessions for another probe interval. The prober re-admits the worker
// the moment it answers again (e.g. after a supervisor restart).
//
// Thread-safety: one mutex guards all slot state; every member is safe to
// call from the balancer's relay threads, the prober thread and a
// supervisor's monitor thread concurrently. The injectable Prober runs
// OUTSIDE the lock (it does network I/O), so a slow worker never blocks
// routing.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace effitest::fleet {

enum class WorkerHealth { kLive, kDegraded, kDead };

[[nodiscard]] const char* health_name(WorkerHealth health);

struct WorkerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: not yet known (spawned child pre-banner)

  [[nodiscard]] bool known() const { return port != 0; }
  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

/// What one health probe learned. `ok` false means the worker did not
/// answer (connect failure, timeout, empty or malformed status line).
/// The gauges are the worker's self-reported serve.queue_depth and
/// serve.active_sessions, surfaced as the per-worker fleet gauges.
struct ProbeResult {
  bool ok = false;
  double queue_depth = 0.0;
  double active_sessions = 0.0;
};

/// Parse one `effitest-status-v1` JSON line into a ProbeResult (ok=false
/// on anything malformed — never throws). Exposed for the fleet fuzz
/// target: a hostile worker must not be able to crash the prober.
[[nodiscard]] ProbeResult parse_worker_status(const std::string& line);

struct RegistryOptions {
  double probe_interval_seconds = 0.5;
  /// Consecutive probe failures before a live worker is marked degraded /
  /// dead. degraded_after <= dead_after.
  std::size_t degraded_after = 1;
  std::size_t dead_after = 3;
  /// Socket timeout for the default prober's status request, so one hung
  /// worker cannot stall the probe round past the interval for long.
  double probe_timeout_seconds = 2.0;
};

class WorkerRegistry {
 public:
  using Prober = std::function<ProbeResult(const WorkerEndpoint&)>;

  explicit WorkerRegistry(RegistryOptions options = {});
  ~WorkerRegistry();

  WorkerRegistry(const WorkerRegistry&) = delete;
  WorkerRegistry& operator=(const WorkerRegistry&) = delete;

  /// Register a worker; returns its slot index. Slots are append-only —
  /// a supervisor restart reuses its slot via update_endpoint(). A worker
  /// whose endpoint is not yet known (port 0) starts dead and unroutable.
  std::size_t add_worker(WorkerEndpoint endpoint);

  /// Point a slot at a new endpoint (a restarted child on a fresh
  /// ephemeral port) and re-admit it as live with a clean failure count.
  void update_endpoint(std::size_t slot, WorkerEndpoint endpoint);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] WorkerEndpoint endpoint(std::size_t slot) const;
  [[nodiscard]] WorkerHealth health(std::size_t slot) const;
  [[nodiscard]] std::size_t count(WorkerHealth health) const;

  /// Replace the default prober (net::fetch_status with the configured
  /// timeout). Must be set before start_probing(); the health-state-
  /// machine unit tests inject deterministic probers here.
  void set_prober(Prober prober);

  /// One synchronous probe round over all slots (the prober thread's body,
  /// exposed so tests can step the state machine without wall-clock).
  void probe_all();

  /// Spawn the background prober thread (probe_all every
  /// probe_interval_seconds). stop_probing() joins it; idempotent both
  /// ways.
  void start_probing();
  void stop_probing();

  /// Route one session: the least-loaded live slot (degraded slots only
  /// when nothing is live; ties to the lowest index), with its in-flight
  /// count already incremented. nullopt when every worker is dead or
  /// unknown. Pair with release(slot).
  [[nodiscard]] std::optional<std::size_t> acquire();
  void release(std::size_t slot);

  /// Fast-path demotion: the caller watched this worker's TCP connection
  /// die. The slot is dead until a probe (or update_endpoint) re-admits
  /// it.
  void report_failure(std::size_t slot);

  /// Balancer-side in-flight sessions on a slot (the routing load).
  [[nodiscard]] std::size_t in_flight(std::size_t slot) const;
  /// The worker's self-reported gauges from the last successful probe.
  [[nodiscard]] double probed_queue_depth(std::size_t slot) const;
  [[nodiscard]] double probed_active_sessions(std::size_t slot) const;

 private:
  struct Slot {
    WorkerEndpoint endpoint;
    WorkerHealth health = WorkerHealth::kDead;
    std::size_t consecutive_failures = 0;
    std::size_t in_flight = 0;
    double probed_queue_depth = 0.0;
    double probed_active_sessions = 0.0;
  };

  void apply_probe(std::size_t slot, const ProbeResult& result);
  void prober_loop();

  RegistryOptions options_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  Prober prober_;
  std::thread prober_thread_;
  // Signaled via the pipe so stop_probing() interrupts a sleeping prober
  // immediately instead of waiting out the interval.
  net::Socket stop_pipe_r_;
  net::Socket stop_pipe_w_;
  bool probing_ = false;
};

}  // namespace effitest::fleet
