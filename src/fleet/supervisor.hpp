#pragma once
// Local worker-process supervision for `effitest_cli balance --spawn=N`
// (fleet/balancer.hpp): fork/exec N `serve` children on ephemeral ports,
// scrape each child's `serving on <host>:<port>` banner from a stdout
// pipe, restart crashed children with exponential backoff, and fan a
// drain out as SIGTERM. DESIGN.md §15.
//
// Lifecycle of one child slot:
//
//   spawn -> (banner scraped from the pipe) -> endpoint callback fires
//         -> running -> exit observed by waitpid(WNOHANG)
//         -> if draining or restart disabled: stays down
//         -> else: restart scheduled at now + min(base * 2^n, max),
//            respawned by the monitor when the deadline passes, banner
//            scraped again, endpoint callback fires with the NEW port.
//
// The endpoint callback is how the supervisor plugs into the
// WorkerRegistry: `balance` wires it to registry.update_endpoint(slot, ep)
// so a restarted child (fresh ephemeral port) rejoins the rotation the
// moment its banner appears, without the balancer knowing about processes
// at all.
//
// The child's stdout pipe is kept open and drained for the child's whole
// life — a chatty child must never block on a full pipe — and pipe EOF is
// treated as a crash hint ahead of the next waitpid tick. stderr is
// inherited, so worker drain summaries land on the balancer's stderr.
//
// drain() is NOT async-signal-safe (it calls kill/waitpid/join); the
// balance command's signal handler only requests the balancer's drain,
// and the main thread calls supervisor.drain() after the balancer's
// wait() returns.

#include <sys/types.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fleet/registry.hpp"
#include "net/socket.hpp"

namespace effitest::obs {
class StructuredLog;
}  // namespace effitest::obs

namespace effitest::fleet {

/// Parse one child stdout line as a `serving on <host>:<port>` banner;
/// nullopt for anything else (including port 0 or out-of-range ports).
/// Exposed for the fleet fuzz target: child stdout is attacker-adjacent
/// input — a misbehaving worker must not confuse the supervisor.
[[nodiscard]] std::optional<WorkerEndpoint> parse_serving_banner(
    const std::string& line);

struct SupervisorOptions {
  /// argv of every child (argv[0] = executable path). The command must
  /// print `serving on <host>:<port>` on stdout when ready — exactly what
  /// `effitest_cli serve --port=0` does.
  std::vector<std::string> argv;
  std::size_t children = 2;
  bool restart_on_crash = true;
  double backoff_base_seconds = 0.25;
  double backoff_max_seconds = 5.0;
  /// start() fails if any child's banner has not appeared within this.
  double startup_timeout_seconds = 60.0;
  obs::StructuredLog* log = nullptr;
};

class ProcessSupervisor {
 public:
  /// `on_endpoint(child, endpoint)` fires every time a child's banner is
  /// scraped — at first spawn and after every restart. Called from
  /// start()'s thread or the monitor thread; must be thread-safe.
  using EndpointCallback =
      std::function<void(std::size_t child, const WorkerEndpoint& endpoint)>;

  ProcessSupervisor(SupervisorOptions options, EndpointCallback on_endpoint);
  ~ProcessSupervisor();

  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  /// Spawn every child, block until all banners are scraped (throws
  /// std::runtime_error on exec failure or startup timeout), then hand
  /// monitoring to a background thread.
  void start();

  /// The child's current pid (changes across restarts); -1 while down.
  /// The fleet kill tests SIGKILL this directly.
  [[nodiscard]] pid_t pid(std::size_t child) const;
  [[nodiscard]] std::size_t children() const;
  /// Total restarts performed across all children.
  [[nodiscard]] std::size_t restarts() const;

  /// Graceful shutdown: stop the monitor (no more restarts), SIGTERM every
  /// live child (serve drains: finishes in-flight sessions), then reap
  /// them all. Idempotent.
  void drain();

 private:
  struct Child {
    pid_t pid = -1;
    net::Socket pipe;        ///< read end of the child's stdout
    std::string line_buf;    ///< partial banner line across reads
    bool awaiting_banner = false;
    std::size_t restarts = 0;
    bool restart_pending = false;
    std::chrono::steady_clock::time_point restart_at{};
  };

  void spawn_locked(std::size_t index);
  void drain_pipe_locked(std::size_t index);
  void monitor_loop();
  [[nodiscard]] bool all_ready_locked() const;

  SupervisorOptions options_;
  EndpointCallback on_endpoint_;
  mutable std::mutex mutex_;
  std::vector<Child> children_;
  std::thread monitor_;
  net::Socket stop_pipe_r_;
  net::Socket stop_pipe_w_;
  bool monitoring_ = false;
  bool draining_ = false;
  std::size_t total_restarts_ = 0;
};

}  // namespace effitest::fleet
