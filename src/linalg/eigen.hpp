#pragma once
// Symmetric eigendecomposition (cyclic Jacobi).
//
// Used for the PCA step of EffiTest's path selection (paper §3.1): the
// covariance matrix of a path group is decomposed into principal components,
// and one representative path is chosen per significant component.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace effitest::linalg {

/// Eigendecomposition A = V * diag(values) * V^T of a symmetric matrix.
/// Eigenvalues are sorted in DESCENDING order; column j of `vectors` is the
/// unit eigenvector for values[j].
struct EigenDecomposition {
  std::vector<double> values;
  Matrix vectors;

  /// Smallest number of leading components whose eigenvalue mass reaches
  /// `coverage` (in (0,1]) of the total. Non-positive eigenvalues contribute
  /// nothing. Returns at least 1 for a non-empty decomposition.
  [[nodiscard]] std::size_t components_for_coverage(double coverage) const;
};

/// Cyclic Jacobi eigendecomposition for symmetric matrices.
///
/// `max_sweeps` bounds the number of full off-diagonal sweeps; convergence is
/// declared when the off-diagonal Frobenius mass falls below `tol` times the
/// total Frobenius norm. Throws LinalgError for non-square input.
[[nodiscard]] EigenDecomposition eigen_symmetric(Matrix a,
                                                 std::size_t max_sweeps = 64,
                                                 double tol = 1e-12);

}  // namespace effitest::linalg
