#pragma once
// Blocked dense kernels: the performance substrate under linalg and stats.
//
// The seed implementations of GEMM, Cholesky and triangular solves were
// straightforward triple loops. They are numerically fine but leave most of
// the machine idle: every per-element dot product is one serial
// floating-point dependency chain (one fused multiply-add per ~4 cycles),
// and the access patterns stream whole operands through cache once per
// output row/column. The kernels here fix both without changing a single
// result bit:
//
//  * Register blocking — each output element keeps its own accumulator and
//    neighbouring elements' chains interleave, so the FMA units pipeline
//    instead of stalling on one chain.
//  * Cache blocking — operands are walked in tiles sized for L1/L2 reuse.
//  * Deterministic parallelism — work fans out over *independent output
//    blocks* via parallel::deterministic_for; every element is produced
//    entirely inside one task with a fixed internal loop order, so results
//    are bit-identical for any thread count.
//
// Bit-compatibility contract: for every kernel, each output element is
// accumulated in exactly the per-element operation order of the seed naive
// code (k ascending into a single accumulator, division last). Blocking
// only reorders *between* elements, never within one, so the blocked
// kernels agree with the reference kernels bit-for-bit — pinned by
// tests/linalg/kernels_test.cpp. This is what lets Matrix::operator*,
// cholesky()/Cholesky::solve and the covariance assembly route through this
// layer without moving the golden-metrics pins.
//
// The reference_* functions preserve the seed implementations verbatim;
// they are the oracles for the bit-identity tests and the baseline side of
// bench_micro_solvers' blocked-vs-naive comparison.

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "parallel/deterministic_for.hpp"

namespace effitest::linalg::kernels {

struct KernelOptions {
  /// Worker threads for the block fan-out: 0 = shared-pool width, 1 =
  /// serial. Results never depend on this value (the determinism contract
  /// of parallel::deterministic_for); small inputs stay serial regardless.
  std::size_t threads = 0;
};

/// Row tile (output rows per task; also the Cholesky panel width).
inline constexpr std::size_t kRowBlock = 64;
/// Column tile (GEMM j-tile / TRSM right-hand-side tile), sized so a
/// kRowBlock x kColBlock operand panel stays L2-resident.
inline constexpr std::size_t kColBlock = 256;
/// Flop threshold below which kernels skip the pool entirely.
inline constexpr std::size_t kSerialFlops = std::size_t{1} << 18;

/// C = A * B, blocked and parallel over row blocks. Bit-identical to
/// reference_matmul for finite inputs.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b,
                            const KernelOptions& opts = {});

/// C = A * A^T (symmetric), computed on the lower triangle in tiles and
/// mirrored. Bit-identical to reference_syrk.
[[nodiscard]] Matrix syrk(const Matrix& a, const KernelOptions& opts = {});

/// B := L^{-1} B for lower-triangular L (forward substitution over all
/// right-hand sides at once, vectorized across columns, parallel over
/// column blocks). Bit-identical to per-column forward_substitute.
void trsm_lower(const Matrix& l, Matrix& b, const KernelOptions& opts = {});

/// B := L^{-T} B (backward substitution over all right-hand sides).
/// Bit-identical to per-column backward_substitute.
void trsm_lower_transposed(const Matrix& l, Matrix& b,
                           const KernelOptions& opts = {});

/// Right-looking blocked Cholesky attempt: factor a + diag_add*I = L L^T.
/// Returns false on a non-positive (or non-finite) pivot, leaving l_out
/// untouched. Bit-identical to reference_cholesky: panel updates subtract
/// contributions in globally ascending k order per element.
[[nodiscard]] bool cholesky_blocked(const Matrix& a, double diag_add,
                                    Matrix& l_out,
                                    const KernelOptions& opts = {});

// -- Jacobi plane rotations (the inner loops of linalg::eigen_symmetric) ----

/// Columns p and q of m: (col_p, col_q) <- (c*col_p - s*col_q,
/// s*col_p + c*col_q).
void rotate_cols(Matrix& m, std::size_t p, std::size_t q, double c, double s);

/// Rows p and q of m, same rotation (contiguous row access).
void rotate_rows(Matrix& m, std::size_t p, std::size_t q, double c, double s);

// -- Seed-era reference kernels (bit-compat oracles; do not "optimize") ----

[[nodiscard]] Matrix reference_matmul(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix reference_syrk(const Matrix& a);
[[nodiscard]] bool reference_cholesky(const Matrix& a, double diag_add,
                                      Matrix& l_out);
/// The seed Cholesky::solve(Matrix): per-column gather, forward+backward
/// substitution, scatter.
[[nodiscard]] Matrix reference_cholesky_solve(const Matrix& l,
                                              const Matrix& b);

// -- Blocked symmetric assembly ---------------------------------------------

/// Fill the symmetric matrix `out` from a pure per-cell function
/// `cell(i, j)` (called only for j >= i; both mirrored entries are
/// written). The upper triangle is tiled and tiles fan out over the pool;
/// since every cell is a pure function of (i, j), the result is
/// bit-identical for any worker count. Matrices smaller than
/// `serial_below` rows run inline on the caller.
template <typename CellFn>
void symmetric_fill(Matrix& out, const KernelOptions& opts,
                    std::size_t serial_below, CellFn&& cell) {
  if (!out.is_square()) {
    throw LinalgError("kernels::symmetric_fill requires square matrix");
  }
  const std::size_t n = out.rows();
  const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
  std::vector<std::pair<std::size_t, std::size_t>> tiles;
  tiles.reserve(blocks * (blocks + 1) / 2);
  for (std::size_t ib = 0; ib < blocks; ++ib) {
    for (std::size_t jb = ib; jb < blocks; ++jb) tiles.emplace_back(ib, jb);
  }
  parallel::ForOptions fopts;
  fopts.threads = n < serial_below ? 1 : opts.threads;
  parallel::deterministic_for(tiles.size(), fopts, [&](std::size_t t) {
    const auto [ib, jb] = tiles[t];
    const std::size_t i1 = std::min((ib + 1) * kRowBlock, n);
    const std::size_t j1 = std::min((jb + 1) * kRowBlock, n);
    for (std::size_t i = ib * kRowBlock; i < i1; ++i) {
      for (std::size_t j = std::max(i, jb * kRowBlock); j < j1; ++j) {
        const double v = cell(i, j);
        out(i, j) = v;
        out(j, i) = v;
      }
    }
  });
}

}  // namespace effitest::linalg::kernels
