#pragma once
// Cholesky factorization and linear solves for symmetric positive
// (semi-)definite systems.
//
// EffiTest uses these for two jobs:
//  * sampling correlated path delays (Sigma = L L^T, sample = mu + L z), and
//  * the conditional-Gaussian gain Sigma_{k,t} Sigma_t^{-1} of eqs. (4)-(5).

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace effitest::linalg {

/// Result of a Cholesky factorization A = L * L^T with L lower-triangular.
struct Cholesky {
  Matrix l;  ///< lower-triangular factor

  /// Solve A x = b using the factorization (forward + backward substitution).
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Solve A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// log(det(A)) = 2 * sum(log(diag(L))).
  [[nodiscard]] double log_det() const;
};

/// Factor a symmetric positive definite matrix. Throws LinalgError if the
/// matrix is not SPD (within `jitter` tolerance on the diagonal).
///
/// If `jitter` > 0, up to three attempts are made with increasing diagonal
/// regularization (jitter, 10*jitter, 100*jitter) before giving up.  This
/// mirrors standard practice for nearly singular covariance matrices built
/// from highly correlated path delays.
[[nodiscard]] Cholesky cholesky(const Matrix& a, double jitter = 0.0);

/// Solve L y = b for lower-triangular L.
[[nodiscard]] std::vector<double> forward_substitute(const Matrix& l,
                                                     std::span<const double> b);

/// Solve L^T x = y for lower-triangular L.
[[nodiscard]] std::vector<double> backward_substitute(
    const Matrix& l, std::span<const double> y);

/// Solve the SPD system A x = b (factors internally).
[[nodiscard]] std::vector<double> solve_spd(const Matrix& a,
                                            std::span<const double> b,
                                            double jitter = 0.0);

/// Solve A X = B for SPD A.
[[nodiscard]] Matrix solve_spd(const Matrix& a, const Matrix& b,
                               double jitter = 0.0);

/// Inverse of an SPD matrix via Cholesky.
[[nodiscard]] Matrix inverse_spd(const Matrix& a, double jitter = 0.0);

/// General square solve via Gaussian elimination with partial pivoting.
/// Used by the simplex basis routines where systems are not symmetric.
[[nodiscard]] std::vector<double> solve_general(Matrix a,
                                                std::vector<double> b);

}  // namespace effitest::linalg
