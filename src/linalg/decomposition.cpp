#include "linalg/decomposition.hpp"

#include <cmath>
#include <cstddef>

namespace effitest::linalg {

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  return backward_substitute(l, forward_substitute(l, b));
}

Matrix Cholesky::solve(const Matrix& b) const {
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const std::vector<double> col = b.column(c);
    const std::vector<double> sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

namespace {

// Single factorization attempt; returns false if a non-positive pivot is hit.
bool try_cholesky(const Matrix& a, double diag_add, Matrix& l_out) {
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + diag_add;
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / ljj;
    }
  }
  l_out = std::move(l);
  return true;
}

}  // namespace

Cholesky cholesky(const Matrix& a, double jitter) {
  if (!a.is_square()) throw LinalgError("cholesky requires square matrix");
  Matrix l;
  if (try_cholesky(a, 0.0, l)) return Cholesky{std::move(l)};
  if (jitter > 0.0) {
    for (double add = jitter; add <= 100.0 * jitter; add *= 10.0) {
      if (try_cholesky(a, add, l)) return Cholesky{std::move(l)};
    }
  }
  throw LinalgError("cholesky: matrix is not positive definite");
}

std::vector<double> forward_substitute(const Matrix& l,
                                       std::span<const double> b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw LinalgError("forward_substitute size mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  return y;
}

std::vector<double> backward_substitute(const Matrix& l,
                                        std::span<const double> y) {
  const std::size_t n = l.rows();
  if (y.size() != n) throw LinalgError("backward_substitute size mismatch");
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l(k, ii) * x[k];
    x[ii] = v / l(ii, ii);
  }
  return x;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b,
                              double jitter) {
  return cholesky(a, jitter).solve(b);
}

Matrix solve_spd(const Matrix& a, const Matrix& b, double jitter) {
  return cholesky(a, jitter).solve(b);
}

Matrix inverse_spd(const Matrix& a, double jitter) {
  return cholesky(a, jitter).solve(Matrix::identity(a.rows()));
}

std::vector<double> solve_general(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (!a.is_square() || b.size() != n) {
    throw LinalgError("solve_general dimension mismatch");
  }
  // Gaussian elimination with partial pivoting.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-14) throw LinalgError("solve_general: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv_piv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv_piv;
      if (f == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) v -= a(ii, c) * x[c];
    x[ii] = v / a(ii, ii);
  }
  return x;
}

}  // namespace effitest::linalg
