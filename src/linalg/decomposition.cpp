#include "linalg/decomposition.hpp"

#include <cmath>
#include <cstddef>

#include "linalg/kernels.hpp"

namespace effitest::linalg {

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  return backward_substitute(l, forward_substitute(l, b));
}

Matrix Cholesky::solve(const Matrix& b) const {
  if (b.rows() != l.rows()) {
    throw LinalgError("Cholesky::solve dimension mismatch");
  }
  // Blocked multi-right-hand-side solve: all columns advance together
  // through one forward and one backward sweep (kernels::trsm_*), instead
  // of the seed's per-column gather/substitute/scatter. Per element the
  // substitution order is unchanged, so results are bit-identical.
  Matrix x = b;
  kernels::trsm_lower(l, x);
  kernels::trsm_lower_transposed(l, x);
  return x;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

Cholesky cholesky(const Matrix& a, double jitter) {
  if (!a.is_square()) throw LinalgError("cholesky requires square matrix");
  // Blocked right-looking factorization (kernels::cholesky_blocked); the
  // per-element operation order matches the seed left-looking loop, so the
  // factor is bit-identical while the trailing updates get register/cache
  // blocking and the pool.
  Matrix l;
  if (kernels::cholesky_blocked(a, 0.0, l)) return Cholesky{std::move(l)};
  if (jitter > 0.0) {
    for (double add = jitter; add <= 100.0 * jitter; add *= 10.0) {
      if (kernels::cholesky_blocked(a, add, l)) return Cholesky{std::move(l)};
    }
  }
  throw LinalgError("cholesky: matrix is not positive definite");
}

std::vector<double> forward_substitute(const Matrix& l,
                                       std::span<const double> b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw LinalgError("forward_substitute size mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  return y;
}

std::vector<double> backward_substitute(const Matrix& l,
                                        std::span<const double> y) {
  const std::size_t n = l.rows();
  if (y.size() != n) throw LinalgError("backward_substitute size mismatch");
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l(k, ii) * x[k];
    x[ii] = v / l(ii, ii);
  }
  return x;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b,
                              double jitter) {
  return cholesky(a, jitter).solve(b);
}

Matrix solve_spd(const Matrix& a, const Matrix& b, double jitter) {
  return cholesky(a, jitter).solve(b);
}

Matrix inverse_spd(const Matrix& a, double jitter) {
  return cholesky(a, jitter).solve(Matrix::identity(a.rows()));
}

std::vector<double> solve_general(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (!a.is_square() || b.size() != n) {
    throw LinalgError("solve_general dimension mismatch");
  }
  // Gaussian elimination with partial pivoting.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-14) throw LinalgError("solve_general: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv_piv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv_piv;
      if (f == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) v -= a(ii, c) * x[c];
    x[ii] = v / a(ii, ii);
  }
  return x;
}

}  // namespace effitest::linalg
