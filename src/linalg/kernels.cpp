#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "linalg/decomposition.hpp"

namespace effitest::linalg::kernels {

namespace {

/// Serialize the fan-out when the flop count cannot amortize pool
/// scheduling. Purely an overhead knob — results are identical either way.
[[nodiscard]] std::size_t fanout_threads(std::size_t flops,
                                         const KernelOptions& opts) {
  return flops < kSerialFlops ? 1 : opts.threads;
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b, const KernelOptions& opts) {
  if (a.cols() != b.rows()) {
    throw LinalgError("kernels::matmul dimension mismatch");
  }
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  Matrix out(m, n);
  if (m == 0 || n == 0 || kk == 0) return out;

  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = out.data().data();

  const std::size_t row_blocks = (m + kRowBlock - 1) / kRowBlock;
  parallel::ForOptions fopts;
  fopts.threads = fanout_threads(m * n * kk, opts);
  parallel::deterministic_for(row_blocks, fopts, [&](std::size_t rb) {
    const std::size_t i0 = rb * kRowBlock;
    const std::size_t i1 = std::min(i0 + kRowBlock, m);
    // j/k tiling keeps a kRowBlock x kColBlock panel of B cache-resident
    // while the row block of A streams over it. Each out(i, j) accumulates
    // k ascending (j tile fixed, k tiles ascending, k within a tile
    // ascending), exactly the reference i-k-j order.
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
      const std::size_t j1 = std::min(j0 + kColBlock, n);
      for (std::size_t k0 = 0; k0 < kk; k0 += kRowBlock) {
        const std::size_t k1 = std::min(k0 + kRowBlock, kk);
        for (std::size_t i = i0; i < i1; ++i) {
          const double* arow = pa + i * kk;
          double* crow = pc + i * n;
          for (std::size_t k = k0; k < k1; ++k) {
            const double aik = arow[k];
            const double* brow = pb + k * n;
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  });
  return out;
}

Matrix syrk(const Matrix& a, const KernelOptions& opts) {
  const std::size_t n = a.rows();
  const std::size_t kk = a.cols();
  Matrix out(n, n);
  if (n == 0) return out;
  const double* pa = a.data().data();

  const std::size_t blocks = (n + kRowBlock - 1) / kRowBlock;
  std::vector<std::pair<std::size_t, std::size_t>> tiles;
  tiles.reserve(blocks * (blocks + 1) / 2);
  for (std::size_t ib = 0; ib < blocks; ++ib) {
    for (std::size_t jb = 0; jb <= ib; ++jb) tiles.emplace_back(ib, jb);
  }

  parallel::ForOptions fopts;
  fopts.threads = fanout_threads(n * n * kk / 2, opts);
  parallel::deterministic_for(tiles.size(), fopts, [&](std::size_t t) {
    const auto [ib, jb] = tiles[t];
    const std::size_t i1 = std::min((ib + 1) * kRowBlock, n);
    const std::size_t jend = std::min((jb + 1) * kRowBlock, n);
    for (std::size_t i = ib * kRowBlock; i < i1; ++i) {
      const double* ri = pa + i * kk;
      const std::size_t j1 = std::min(jend, i + 1);
      std::size_t j = jb * kRowBlock;
      // Four independent accumulator chains interleave so the FMA pipeline
      // stays full; each chain is one element's k-ascending dot product.
      for (; j + 4 <= j1; j += 4) {
        const double* r0 = pa + j * kk;
        const double* r1 = pa + (j + 1) * kk;
        const double* r2 = pa + (j + 2) * kk;
        const double* r3 = pa + (j + 3) * kk;
        double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
        for (std::size_t k = 0; k < kk; ++k) {
          const double v = ri[k];
          acc0 += v * r0[k];
          acc1 += v * r1[k];
          acc2 += v * r2[k];
          acc3 += v * r3[k];
        }
        out(i, j) = acc0;
        out(j, i) = acc0;
        out(i, j + 1) = acc1;
        out(j + 1, i) = acc1;
        out(i, j + 2) = acc2;
        out(j + 2, i) = acc2;
        out(i, j + 3) = acc3;
        out(j + 3, i) = acc3;
      }
      for (; j < j1; ++j) {
        const double* rj = pa + j * kk;
        double acc = 0.0;
        for (std::size_t k = 0; k < kk; ++k) acc += ri[k] * rj[k];
        out(i, j) = acc;
        out(j, i) = acc;
      }
    }
  });
  return out;
}

void trsm_lower(const Matrix& l, Matrix& b, const KernelOptions& opts) {
  const std::size_t n = l.rows();
  if (!l.is_square() || b.rows() != n) {
    throw LinalgError("kernels::trsm_lower dimension mismatch");
  }
  const std::size_t m = b.cols();
  if (n == 0 || m == 0) return;
  const double* pl = l.data().data();
  double* pb = b.data().data();

  const std::size_t col_blocks = (m + kColBlock - 1) / kColBlock;
  parallel::ForOptions fopts;
  fopts.threads = fanout_threads(n * n * m / 2, opts);
  parallel::deterministic_for(col_blocks, fopts, [&](std::size_t cb) {
    const std::size_t c0 = cb * kColBlock;
    const std::size_t c1 = std::min(c0 + kColBlock, m);
    // All right-hand sides of the block advance together: the inner loop
    // over columns is contiguous and vectorizes, and L streams through
    // cache once per block instead of once per column. Element (i, c)
    // still subtracts k = 0..i-1 in ascending order and divides last —
    // the per-column forward_substitute order.
    for (std::size_t i = 0; i < n; ++i) {
      const double* lrow = pl + i * n;
      double* bi = pb + i * m;
      for (std::size_t k = 0; k < i; ++k) {
        const double lik = lrow[k];
        const double* bk = pb + k * m;
        for (std::size_t c = c0; c < c1; ++c) bi[c] -= lik * bk[c];
      }
      const double diag = lrow[i];
      for (std::size_t c = c0; c < c1; ++c) bi[c] /= diag;
    }
  });
}

void trsm_lower_transposed(const Matrix& l, Matrix& b,
                           const KernelOptions& opts) {
  const std::size_t n = l.rows();
  if (!l.is_square() || b.rows() != n) {
    throw LinalgError("kernels::trsm_lower_transposed dimension mismatch");
  }
  const std::size_t m = b.cols();
  if (n == 0 || m == 0) return;
  const double* pl = l.data().data();
  double* pb = b.data().data();

  const std::size_t col_blocks = (m + kColBlock - 1) / kColBlock;
  parallel::ForOptions fopts;
  fopts.threads = fanout_threads(n * n * m / 2, opts);
  parallel::deterministic_for(col_blocks, fopts, [&](std::size_t cb) {
    const std::size_t c0 = cb * kColBlock;
    const std::size_t c1 = std::min(c0 + kColBlock, m);
    for (std::size_t ii = n; ii-- > 0;) {
      double* bi = pb + ii * m;
      for (std::size_t k = ii + 1; k < n; ++k) {
        const double lki = pl[k * n + ii];
        const double* bk = pb + k * m;
        for (std::size_t c = c0; c < c1; ++c) bi[c] -= lki * bk[c];
      }
      const double diag = pl[ii * n + ii];
      for (std::size_t c = c0; c < c1; ++c) bi[c] /= diag;
    }
  });
}

bool cholesky_blocked(const Matrix& a, double diag_add, Matrix& l_out,
                      const KernelOptions& opts) {
  if (!a.is_square()) {
    throw LinalgError("kernels::cholesky_blocked requires square matrix");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) l(i, j) = a(i, j);
    l(i, i) = a(i, i) + diag_add;
  }
  double* pl = l.data().data();

  parallel::ForOptions fopts;
  fopts.threads = fanout_threads(n * n * n / 3, opts);

  for (std::size_t p0 = 0; p0 < n; p0 += kRowBlock) {
    const std::size_t p1 = std::min(p0 + kRowBlock, n);

    // Panel factorization: columns [p0, p1) over all rows below. Earlier
    // panels' contributions (k < p0) were already subtracted by the
    // trailing updates below, so per element the subtraction order is
    // globally k-ascending — the reference left-looking order.
    for (std::size_t j = p0; j < p1; ++j) {
      const double* lj = pl + j * n;
      double diag = lj[j];
      for (std::size_t k = p0; k < j; ++k) diag -= lj[k] * lj[k];
      if (diag <= 0.0 || !std::isfinite(diag)) return false;
      const double ljj = std::sqrt(diag);
      pl[j * n + j] = ljj;
      // Two rows per step: their chains share the l(j, k) loads and
      // interleave, doubling FMA throughput on the panel's hot loop.
      std::size_t i = j + 1;
      for (; i + 2 <= n; i += 2) {
        double* li0 = pl + i * n;
        double* li1 = pl + (i + 1) * n;
        double v0 = li0[j];
        double v1 = li1[j];
        for (std::size_t k = p0; k < j; ++k) {
          const double ljk = lj[k];
          v0 -= li0[k] * ljk;
          v1 -= li1[k] * ljk;
        }
        li0[j] = v0 / ljj;
        li1[j] = v1 / ljj;
      }
      for (; i < n; ++i) {
        double* li = pl + i * n;
        double v = li[j];
        for (std::size_t k = p0; k < j; ++k) v -= li[k] * lj[k];
        li[j] = v / ljj;
      }
    }
    if (p1 >= n) break;

    // Trailing update (SYRK-style): l(i, j) -= sum_{k in [p0, p1)}
    // l(i, k) l(j, k) for the lower triangle i, j >= p1. Tiles write
    // disjoint elements, so they fan out over the pool; within an element
    // k ascends, keeping the global order intact.
    const std::size_t trail = n - p1;
    const std::size_t blocks = (trail + kRowBlock - 1) / kRowBlock;
    std::vector<std::pair<std::size_t, std::size_t>> tiles;
    tiles.reserve(blocks * (blocks + 1) / 2);
    for (std::size_t ib = 0; ib < blocks; ++ib) {
      for (std::size_t jb = 0; jb <= ib; ++jb) tiles.emplace_back(ib, jb);
    }
    parallel::deterministic_for(tiles.size(), fopts, [&](std::size_t t) {
      const auto [ib, jb] = tiles[t];
      const std::size_t i1 = std::min(p1 + (ib + 1) * kRowBlock, n);
      const std::size_t jend = std::min(p1 + (jb + 1) * kRowBlock, n);
      for (std::size_t i = p1 + ib * kRowBlock; i < i1; ++i) {
        const double* li = pl + i * n;
        double* wrow = pl + i * n;
        const std::size_t j1 = std::min(jend, i + 1);
        std::size_t j = p1 + jb * kRowBlock;
        for (; j + 4 <= j1; j += 4) {
          const double* r0 = pl + j * n;
          const double* r1 = pl + (j + 1) * n;
          const double* r2 = pl + (j + 2) * n;
          const double* r3 = pl + (j + 3) * n;
          double acc0 = wrow[j];
          double acc1 = wrow[j + 1];
          double acc2 = wrow[j + 2];
          double acc3 = wrow[j + 3];
          for (std::size_t k = p0; k < p1; ++k) {
            const double lik = li[k];
            acc0 -= lik * r0[k];
            acc1 -= lik * r1[k];
            acc2 -= lik * r2[k];
            acc3 -= lik * r3[k];
          }
          wrow[j] = acc0;
          wrow[j + 1] = acc1;
          wrow[j + 2] = acc2;
          wrow[j + 3] = acc3;
        }
        for (; j < j1; ++j) {
          const double* rj = pl + j * n;
          double acc = wrow[j];
          for (std::size_t k = p0; k < p1; ++k) acc -= li[k] * rj[k];
          wrow[j] = acc;
        }
      }
    });
  }
  l_out = std::move(l);
  return true;
}

void rotate_cols(Matrix& m, std::size_t p, std::size_t q, double c, double s) {
  const std::size_t n = m.rows();
  const std::size_t stride = m.cols();
  double* pm = m.data().data();
  for (std::size_t k = 0; k < n; ++k) {
    double* row = pm + k * stride;
    const double akp = row[p];
    const double akq = row[q];
    row[p] = c * akp - s * akq;
    row[q] = s * akp + c * akq;
  }
}

void rotate_rows(Matrix& m, std::size_t p, std::size_t q, double c, double s) {
  const std::size_t n = m.cols();
  double* rp = m.data().data() + p * n;
  double* rq = m.data().data() + q * n;
  for (std::size_t k = 0; k < n; ++k) {
    const double apk = rp[k];
    const double aqk = rq[k];
    rp[k] = c * apk - s * aqk;
    rq[k] = s * apk + c * aqk;
  }
}

// -- Reference kernels (the seed implementations, kept verbatim) ------------

Matrix reference_matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw LinalgError("Matrix * dimension mismatch");
  }
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  Matrix out(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < kk; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* rhs_row = b.data().data() + k * n;
      double* out_row = out.data().data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        out_row[j] += aik * rhs_row[j];
      }
    }
  }
  return out;
}

Matrix reference_syrk(const Matrix& a) {
  return reference_matmul(a, a.transposed());
}

bool reference_cholesky(const Matrix& a, double diag_add, Matrix& l_out) {
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + diag_add;
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / ljj;
    }
  }
  l_out = std::move(l);
  return true;
}

Matrix reference_cholesky_solve(const Matrix& l, const Matrix& b) {
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const std::vector<double> col = b.column(c);
    const std::vector<double> y = forward_substitute(l, col);
    const std::vector<double> sol = backward_substitute(l, y);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

}  // namespace effitest::linalg::kernels
