#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/kernels.hpp"

namespace effitest::linalg {

std::size_t EigenDecomposition::components_for_coverage(double coverage) const {
  if (values.empty()) return 0;
  double total = 0.0;
  for (double v : values) total += std::max(v, 0.0);
  if (total <= 0.0) return 1;
  double acc = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    acc += std::max(values[i], 0.0);
    if (acc >= coverage * total) return i + 1;
  }
  return values.size();
}

EigenDecomposition eigen_symmetric(Matrix a, std::size_t max_sweeps,
                                   double tol) {
  if (!a.is_square()) {
    throw LinalgError("eigen_symmetric requires square matrix");
  }
  const std::size_t n = a.rows();
  Matrix v = Matrix::identity(n);
  if (n == 0) return {std::vector<double>{}, std::move(v)};

  double total_norm = 0.0;
  for (double x : a.data()) total_norm += x * x;
  total_norm = std::sqrt(total_norm);
  const double off_tol = std::max(tol * total_norm, 1e-300);

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) s += 2.0 * a(p, q) * a(p, q);
    }
    return std::sqrt(s);
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() <= off_tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Standard stable Jacobi rotation.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        kernels::rotate_cols(a, p, q, c, s);
        kernels::rotate_rows(a, p, q, c, s);
        kernels::rotate_cols(v, p, q, c, s);
      }
    }
  }

  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = a(i, i);

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return values[x] > values[y]; });

  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = values[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted_vectors(i, j) = v(i, order[j]);
    }
  }
  return {std::move(sorted_values), std::move(sorted_vectors)};
}

}  // namespace effitest::linalg
