#pragma once
// Dense row-major matrix and small-vector helpers.
//
// This is the numeric workhorse underneath the statistical machinery of
// EffiTest: covariance matrices, PCA, conditional-Gaussian gains and the
// simplex tableau all sit on top of this type.  Sizes in this project are
// modest (up to a few thousand rows), so a straightforward dense
// implementation is both sufficient and easy to audit.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace effitest::linalg {

/// Error raised when a linear-algebra operation receives incompatible or
/// numerically unusable input (dimension mismatch, non-SPD matrix, ...).
class LinalgError : public std::runtime_error {
 public:
  explicit LinalgError(const std::string& what) : std::runtime_error(what) {}
};

/// Dense row-major matrix of doubles.
///
/// Invariants: data_.size() == rows_ * cols_ at all times.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all entries set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector.
  [[nodiscard]] static Matrix diagonal(std::span<const double> diag);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// View of row r as a contiguous span.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// Raw storage (row-major).
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> data() noexcept { return data_; }

  /// Extract a column as a vector.
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

  /// Submatrix rows [r0, r0+nr) x cols [c0, c0+nc).
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const;

  /// Submatrix formed by the given row and column index sets (in order).
  [[nodiscard]] Matrix select(std::span<const std::size_t> row_idx,
                              std::span<const std::size_t> col_idx) const;

  [[nodiscard]] Matrix transposed() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  [[nodiscard]] friend Matrix operator+(Matrix a, const Matrix& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend Matrix operator-(Matrix a, const Matrix& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend Matrix operator*(Matrix a, double s) {
    a *= s;
    return a;
  }
  [[nodiscard]] friend Matrix operator*(double s, Matrix a) {
    a *= s;
    return a;
  }

  /// Matrix product (this * rhs).
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product.
  [[nodiscard]] std::vector<double> operator*(std::span<const double> v) const;

  /// Frobenius-norm distance check against another matrix.
  [[nodiscard]] bool approx_equal(const Matrix& rhs, double tol = 1e-9) const;

  /// Largest absolute asymmetry |a_ij - a_ji|; 0 for symmetric matrices.
  [[nodiscard]] double max_asymmetry() const;

  /// Force exact symmetry by averaging with the transpose (in place).
  void symmetrize();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

// -- Free vector helpers (std::vector<double> is the vector type) -----------

/// Dot product; sizes must match.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> v);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Element-wise a - b.
[[nodiscard]] std::vector<double> subtract(std::span<const double> a,
                                           std::span<const double> b);

/// Element-wise a + b.
[[nodiscard]] std::vector<double> add(std::span<const double> a,
                                      std::span<const double> b);

/// v^T * M * v for square M (quadratic form).
[[nodiscard]] double quadratic_form(const Matrix& m, std::span<const double> v);

}  // namespace effitest::linalg
