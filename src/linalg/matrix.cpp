#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "linalg/kernels.hpp"

namespace effitest::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw LinalgError("Matrix initializer rows have unequal lengths");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw LinalgError("Matrix::at index out of range");
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw LinalgError("Matrix::at index out of range");
  }
  return (*this)(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw LinalgError("Matrix::row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw LinalgError("Matrix::row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::column(std::size_t c) const {
  if (c >= cols_) throw LinalgError("Matrix::column index out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_) {
    throw LinalgError("Matrix::block out of range");
  }
  Matrix out(nr, nc);
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t c = 0; c < nc; ++c) {
      out(r, c) = (*this)(r0 + r, c0 + c);
    }
  }
  return out;
}

Matrix Matrix::select(std::span<const std::size_t> row_idx,
                      std::span<const std::size_t> col_idx) const {
  Matrix out(row_idx.size(), col_idx.size());
  for (std::size_t r = 0; r < row_idx.size(); ++r) {
    if (row_idx[r] >= rows_) throw LinalgError("Matrix::select row index");
    for (std::size_t c = 0; c < col_idx.size(); ++c) {
      if (col_idx[c] >= cols_) throw LinalgError("Matrix::select col index");
      out(r, c) = (*this)(row_idx[r], col_idx[c]);
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw LinalgError("Matrix += dimension mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw LinalgError("Matrix -= dimension mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  // Blocked and (for large products) pool-parallel kernel; element values
  // accumulate in the same k-ascending order as the historical i-k-j loop.
  return kernels::matmul(*this, rhs);
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  if (cols_ != v.size()) {
    throw LinalgError("Matrix * vector dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * v[c];
    out[r] = acc;
  }
  return out;
}

bool Matrix::approx_equal(const Matrix& rhs, double tol) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - rhs.data_[i]) > tol) return false;
  }
  return true;
}

double Matrix::max_asymmetry() const {
  if (!is_square()) throw LinalgError("max_asymmetry requires square matrix");
  double worst = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      worst = std::max(worst, std::abs((*this)(r, c) - (*this)(c, r)));
    }
  }
  return worst;
}

void Matrix::symmetrize() {
  if (!is_square()) throw LinalgError("symmetrize requires square matrix");
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << (r + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw LinalgError("dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw LinalgError("axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

std::vector<double> subtract(std::span<const double> a,
                             std::span<const double> b) {
  if (a.size() != b.size()) throw LinalgError("subtract size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> add(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw LinalgError("add size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

double quadratic_form(const Matrix& m, std::span<const double> v) {
  if (!m.is_square() || m.rows() != v.size()) {
    throw LinalgError("quadratic_form dimension mismatch");
  }
  return dot(v, m * v);
}

}  // namespace effitest::linalg
