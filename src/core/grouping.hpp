#pragma once
// Procedure 1 of the paper: correlation-threshold path grouping and
// PCA-based representative path selection.
//
// Paths are pulled into groups at a descending correlation threshold
// (0.95, 0.90, ...). Within each group the delay covariance is decomposed by
// PCA; only the significant principal components carry shared information,
// so |PC_i| representative paths are selected per group — the path with the
// largest loading per component (ref. [14]). Everything else is later
// estimated by conditional prediction instead of being tested.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace effitest::core {

struct GroupingOptions {
  double corr_start = 0.95;   ///< initial correlation threshold
  double corr_step = 0.05;    ///< per-round threshold decrease
  /// |PC_i| rule. Kaiser (default): components above `kaiser_scale` times
  /// the average eigenvalue — stable under group size and independent-
  /// variance inflation (Fig. 7). Coverage: smallest count explaining
  /// `pca_coverage` of the variance — grows with group size once coverage
  /// exceeds the intra-group correlation.
  bool use_kaiser = true;
  double kaiser_scale = 1.0;
  double pca_coverage = 0.98;
  /// Groups larger than this are PCA-decomposed on a deterministic member
  /// subsample (Jacobi is O(n^3); the PC count and the representative
  /// choice of an equicorrelated block are insensitive to subsampling).
  std::size_t pca_max_block = 320;
  /// Worker threads for the per-group covariance-block assembly + PCA
  /// (groups are independent). 0 = shared-pool width; inside the flow, 0
  /// inherits FlowOptions::threads. The selection is a pure function of the
  /// covariance, so any value gives bit-identical results.
  std::size_t threads = 0;
};

struct PathGroup {
  std::vector<std::size_t> members;   ///< global path indices
  std::vector<std::size_t> selected;  ///< representative paths (subset)
  std::size_t num_components = 0;     ///< |PC_i|
  double threshold = 0.0;             ///< correlation threshold of the round
};

struct SelectionResult {
  std::vector<PathGroup> groups;
  /// Sorted union of all selected (to-be-tested) path indices.
  std::vector<std::size_t> tested;
};

/// Run Procedure 1 on a path-delay covariance matrix.
[[nodiscard]] SelectionResult select_paths(const linalg::Matrix& covariance,
                                           const GroupingOptions& options = {});

/// The seed-extraction rounds of Procedure 1 *without* the PCA/selection
/// step: partition all paths into correlation clusters at the descending
/// threshold schedule. Used to order paths for batch building — co-batching
/// highly correlated paths lets one clock period bisect all of them for many
/// consecutive iterations (their pass/fail outcomes track each other).
[[nodiscard]] std::vector<std::vector<std::size_t>> correlation_clusters(
    const linalg::Matrix& covariance, const GroupingOptions& options = {});

}  // namespace effitest::core
