#pragma once
// Path test multiplexing (paper §3.2).
//
// Paths measured in the same tester iteration (a *batch*) must be uniquely
// attributable: no two paths in a batch may converge at or leave from the
// same flip-flop. A batch is therefore a set of FF-disjoint chains/cycles —
// within a batch every flip-flop appears at most once as a source and at
// most once as a sink (series arrangements like p14, p46, p67 are legal).
//
// Minimizing the number of batches is bipartite multigraph edge coloring
// (sources on one side, sinks on the other): by König's theorem the optimum
// equals the maximum per-FF multiplicity. We implement the optimal coloring
// (alternating-path recoloring) plus a greedy fallback that also honours
// mutual-exclusion constraints (paths that logic masking prevents from being
// sensitized together).
//
// After batch formation, unoccupied slots are filled with not-yet-tested
// paths of largest predicted variance so their delays get measured for free
// (the posterior variance of eq. 5 is measurement-independent).

#include <cstddef>
#include <utility>
#include <vector>

#include "core/problem.hpp"

namespace effitest::core {

struct Batch {
  std::vector<std::size_t> paths;  ///< monitored-pair indices
};

struct BatchingOptions {
  bool optimal_coloring = true;
  /// Pairs of paths that must not share a batch (logic masking, §3.2).
  std::vector<std::pair<std::size_t, std::size_t>> exclusions;
};

/// Arrange `paths` (monitored-pair indices) into conflict-free batches.
/// With exclusions present the greedy algorithm is used regardless of
/// `optimal_coloring`.
[[nodiscard]] std::vector<Batch> build_batches(
    const Problem& problem, std::span<const std::size_t> paths,
    const BatchingOptions& options = {});

/// Smallest legal batch count (max per-FF source/sink multiplicity) —
/// the optimal coloring achieves exactly this when no exclusions exist.
[[nodiscard]] std::size_t batch_lower_bound(const Problem& problem,
                                            std::span<const std::size_t> paths);

/// Check batch legality (conflict rule + exclusions).
[[nodiscard]] bool batch_is_legal(const Problem& problem, const Batch& batch,
                                  const BatchingOptions& options = {});

/// Fill unoccupied slots: every batch smaller than the largest one is topped
/// up with paths from `candidates` (ordered by decreasing priority) that do
/// not conflict. Each candidate is inserted at most once. When `centers` is
/// non-empty (indexed by monitored-pair id) the batch whose mean delay range
/// center is nearest to the candidate's is preferred — co-centered ranges
/// are what alignment exploits. Returns the inserted path indices.
[[nodiscard]] std::vector<std::size_t> fill_empty_slots(
    const Problem& problem, std::vector<Batch>& batches,
    std::span<const std::size_t> candidates,
    const BatchingOptions& options = {}, std::span<const double> centers = {});

}  // namespace effitest::core
