#include "core/hold_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "parallel/deterministic_for.hpp"

namespace effitest::core {

namespace {

/// Max and runner-up margin over the kept samples of one pair.
struct TopTwo {
  double max = -std::numeric_limits<double>::infinity();
  double second = -std::numeric_limits<double>::infinity();
  void offer(double v) {
    if (v > max) {
      second = max;
      max = v;
    } else if (v > second) {
      second = v;
    }
  }
};

}  // namespace

std::vector<double> greedy_discard_bounds(
    const std::vector<std::vector<double>>& delta, double yield) {
  const std::size_t m = delta.size();
  if (m == 0) return {};
  const std::size_t n_pairs = delta.front().size();
  for (const auto& row : delta) {
    if (row.size() != n_pairs) {
      throw std::invalid_argument("greedy_discard_bounds: ragged samples");
    }
  }
  const auto keep = static_cast<std::size_t>(
      std::ceil(yield * static_cast<double>(m)));
  std::size_t to_drop = m > keep ? m - keep : 0;

  std::vector<bool> dropped(m, false);
  while (to_drop > 0) {
    // Current top-two margins per pair over kept samples.
    std::vector<TopTwo> tops(n_pairs);
    for (std::size_t k = 0; k < m; ++k) {
      if (dropped[k]) continue;
      for (std::size_t p = 0; p < n_pairs; ++p) tops[p].offer(delta[k][p]);
    }
    // Benefit of dropping sample k: sum over pairs where k defines the max.
    double best_benefit = -1.0;
    std::size_t best_k = m;
    for (std::size_t k = 0; k < m; ++k) {
      if (dropped[k]) continue;
      double benefit = 0.0;
      for (std::size_t p = 0; p < n_pairs; ++p) {
        if (delta[k][p] >= tops[p].max - 1e-15) {
          benefit += tops[p].max - tops[p].second;
        }
      }
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best_k = k;
      }
    }
    if (best_k == m) break;
    dropped[best_k] = true;
    --to_drop;
  }

  std::vector<double> lambda(n_pairs,
                             -std::numeric_limits<double>::infinity());
  for (std::size_t k = 0; k < m; ++k) {
    if (dropped[k]) continue;
    for (std::size_t p = 0; p < n_pairs; ++p) {
      lambda[p] = std::max(lambda[p], delta[k][p]);
    }
  }
  return lambda;
}

std::vector<double> exact_milp_bounds(
    const std::vector<std::vector<double>>& delta, double yield,
    const lp::SolveOptions& options) {
  const std::size_t m = delta.size();
  if (m == 0) return {};
  const std::size_t n_pairs = delta.front().size();

  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto& row : delta) {
    for (double v : row) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double big = (hi - lo) + 1.0;

  lp::Model model;
  std::vector<int> lambda_var(n_pairs);
  for (std::size_t p = 0; p < n_pairs; ++p) {
    lambda_var[p] =
        model.add_continuous(lo - 1.0, hi + 1.0, 1.0, "l" + std::to_string(p));
  }
  std::vector<int> y_var(m);
  for (std::size_t k = 0; k < m; ++k) {
    y_var[k] = model.add_binary(0.0, "y" + std::to_string(k));
  }
  // (19): lambda_p - delta[k][p] >= M(y_k - 1).
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t p = 0; p < n_pairs; ++p) {
      model.add_constraint({{lambda_var[p], 1.0}, {y_var[k], -big}},
                           lp::Sense::kGreaterEqual, delta[k][p] - big);
    }
  }
  // (20): sum y_k >= Y*M.
  std::vector<lp::Term> cover;
  for (std::size_t k = 0; k < m; ++k) cover.push_back({y_var[k], 1.0});
  model.add_constraint(std::move(cover), lp::Sense::kGreaterEqual,
                       std::ceil(yield * static_cast<double>(m)));

  const lp::Solution sol = lp::solve(model, options);
  if (!sol.feasible()) {
    throw std::runtime_error("exact_milp_bounds: solver failed");
  }
  std::vector<double> lambda(n_pairs);
  for (std::size_t p = 0; p < n_pairs; ++p) {
    lambda[p] = sol.values[static_cast<std::size_t>(lambda_var[p])];
  }
  return lambda;
}

HoldMarginSamples sample_hold_margins(const Problem& problem, stats::Rng& rng,
                                      const HoldBoundOptions& options) {
  const timing::CircuitModel& model = problem.model();
  const double h = model.hold_time();
  HoldMarginSamples out;

  // Pairs whose skew is adjustable (at least one buffered endpoint).
  for (std::size_t p = 0; p < model.num_pairs(); ++p) {
    if (problem.src_buffer(p) >= 0 || problem.dst_buffer(p) >= 0) {
      out.exposed.push_back(p);
    }
  }
  if (out.exposed.empty()) return out;

  // Sample hold margins delta = h - d_min over M chips, fanned out over the
  // shared pool. Sample k draws from its own stream seeded
  // index_seed(base, k), so the margins — and therefore the bounds — are
  // bit-identical for any worker count.
  const std::uint64_t sample_seed_base = rng.engine()();
  out.delta.resize(options.samples);
  parallel::ForOptions fopts;
  fopts.threads = options.threads;
  parallel::deterministic_for(
      options.samples, fopts, sample_seed_base,
      [&](std::size_t k, stats::Rng& sample_rng) {
        // Min-delays-only sampling (same per-sample stream as a full
        // sample_chip) on per-worker reusable buffers: this loop reads
        // nothing but the hold margins.
        thread_local timing::SampleWorkspace ws;
        thread_local std::vector<double> min_delay;
        model.sample_min_delays(sample_rng, ws, min_delay);
        out.delta[k].resize(out.exposed.size());
        for (std::size_t e = 0; e < out.exposed.size(); ++e) {
          out.delta[k][e] = h - min_delay[out.exposed[e]];
        }
      });
  return out;
}

std::vector<HoldConstraintX> compute_hold_bounds(
    const Problem& problem, stats::Rng& rng, const HoldBoundOptions& options) {
  const HoldMarginSamples samples = sample_hold_margins(problem, rng, options);
  const std::vector<std::size_t>& exposed = samples.exposed;
  if (exposed.empty()) return {};
  const std::vector<std::vector<double>>& delta = samples.delta;

  const std::vector<double> lambda =
      options.method == HoldBoundOptions::Method::kExactMilp
          ? exact_milp_bounds(delta, options.yield, options.lp)
          : greedy_discard_bounds(delta, options.yield);

  // Merge per buffer combination (max lambda binds) and prune bounds that
  // can never bind within the buffer ranges.
  std::map<std::pair<int, int>, double> merged;
  for (std::size_t e = 0; e < exposed.size(); ++e) {
    const std::size_t p = exposed[e];
    const auto key = std::make_pair(problem.src_buffer(p), problem.dst_buffer(p));
    const auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key, lambda[e]);
    } else {
      it->second = std::max(it->second, lambda[e]);
    }
  }

  std::vector<HoldConstraintX> out;
  for (const auto& [key, lam] : merged) {
    const auto [i, j] = key;
    // Minimum achievable skew x_i - x_j given the ranges.
    double min_skew = 0.0;
    if (i >= 0) min_skew += problem.buffers()[static_cast<std::size_t>(i)].r;
    if (j >= 0) {
      const auto& bj = problem.buffers()[static_cast<std::size_t>(j)];
      min_skew -= bj.r + bj.tau;
    }
    if (lam <= min_skew) continue;  // never binds
    out.push_back(HoldConstraintX{i, j, lam});
  }
  return out;
}

}  // namespace effitest::core
