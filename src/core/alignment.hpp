#pragma once
// Delay-range alignment by tuning buffers (paper §3.3, eqs. 6-14).
//
// Before each frequency step, the tester chooses a clock period T and a set
// of buffer values so that T sits as close as possible to the centers of the
// unresolved delay ranges, shifted by x_src - x_dst:
//
//   minimize sum_ij k_ij * | T - ((u_ij + l_ij)/2 + x_i - x_j) |     (eq. 7)
//
// subject to the buffer range/step constraints (eq. 14 / eq. 3) and the
// hold-time lower bounds x_i - x_j >= lambda_ij (§3.5, eq. 21).
//
// Three interchangeable solvers:
//  * kMilpCompact  — the absolute values linearized as eta >= +/-(...), exact;
//  * kMilpBigM     — the paper's literal indicator-variable formulation
//                    (eqs. 8-13), exact; kept for fidelity and as an oracle
//                    in tests (both MILPs must agree);
//  * kCoordinateDescent — weighted-median updates of T interleaved with
//                    per-buffer discrete line search; orders of magnitude
//                    faster, used inside the Monte-Carlo loop. An ablation
//                    bench quantifies its optimality gap.
//
// Weights follow the paper: sort the range centers, give the middle one k0
// and decrease by kd per rank outward (k0 >> kd), which breaks the
// degenerate non-overlapping case of Fig. 6e.

#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.hpp"
#include "lp/solver.hpp"

namespace effitest::core {

/// One unresolved path range inside the batch being aligned.
struct AlignmentEntry {
  double center = 0.0;  ///< (u_ij + l_ij) / 2 of the current range
  double weight = 1.0;  ///< k_ij
  int src_buf = -1;     ///< global buffer index at the source (-1: x == 0)
  int dst_buf = -1;     ///< global buffer index at the sink   (-1: x == 0)
};

/// Hold-time bound x_i - x_j >= lambda (buffer indices; -1 side is fixed 0).
struct HoldConstraintX {
  int src_buf = -1;
  int dst_buf = -1;
  double lambda = 0.0;
};

struct AlignmentInstance {
  const Problem* problem = nullptr;
  std::vector<AlignmentEntry> entries;
  std::vector<HoldConstraintX> hold;
  /// Current step assignment of ALL buffers; buffers not referenced by any
  /// entry stay frozen at these values (their x still enters hold bounds).
  std::vector<int> current_steps;
  /// When false the buffers are left untouched (multiplexing-only mode,
  /// Fig. 8 case 2): only T is optimized.
  bool allow_buffer_moves = true;
};

struct AlignmentResult {
  double period = 0.0;         ///< chosen clock period T
  std::vector<int> steps;      ///< full buffer step assignment to program
  double objective = 0.0;      ///< achieved eq.-7 objective
  bool feasible = true;        ///< hold bounds satisfiable
};

enum class AlignMethod : std::uint8_t {
  kCoordinateDescent,
  kMilpCompact,
  kMilpBigM,
};

/// Middle-out weight assignment over range centers (k0 to the median center,
/// decreasing by kd per rank outward; floored at kd).
[[nodiscard]] std::vector<double> middle_out_weights(
    std::span<const double> centers, double k0, double kd);

[[nodiscard]] AlignmentResult solve_alignment(
    const AlignmentInstance& instance, AlignMethod method,
    const lp::SolveOptions& lp_options = {});

}  // namespace effitest::core
