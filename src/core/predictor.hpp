#pragma once
// Statistical delay prediction for untested paths (paper §3.1, §3.4).
//
// After frequency stepping measures the tested subset D_t, every untested
// delay d_k is estimated by the conditional Gaussian formulas (eqs. 4-5).
// Following §3.4, the *upper bounds* of the measured ranges feed eq. 4 so
// the estimates are conservative, and the resulting range for an estimated
// delay is mu'_k +/- 3 sigma'_k.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "stats/conditional.hpp"

namespace effitest::core {

/// Lower/upper delay bounds per path (global path indexing).
struct DelayBounds {
  std::vector<double> lower;
  std::vector<double> upper;
};

class DelayPredictor {
 public:
  /// `covariance` and `means` cover all paths; `tested` lists the measured
  /// path indices (ascending). The conditional gains are precomputed here —
  /// they are chip-independent (this is why the per-chip estimation cost,
  /// column Ts of Table 1, is negligible).
  DelayPredictor(const linalg::Matrix& covariance, std::vector<double> means,
                 std::vector<std::size_t> tested);

  /// Adopt an already-computed (and possibly shared) prediction gain — no
  /// factorization happens. `means` covers all paths; the tested set is the
  /// gain's measured set. This is how FlowArtifacts shares one gain across
  /// chips, reused flows and campaign jobs.
  DelayPredictor(std::shared_ptr<const stats::PredictionGain> gain,
                 std::vector<double> means);

  /// The shared chip-independent gain (Cholesky of Sigma_t + W + posterior
  /// sigmas).
  [[nodiscard]] const std::shared_ptr<const stats::PredictionGain>&
  shared_gain() const {
    return conditional_.shared_gain();
  }

  [[nodiscard]] const std::vector<std::size_t>& tested_indices() const;
  [[nodiscard]] const std::vector<std::size_t>& predicted_indices() const;

  /// Posterior sigma of each *predicted* path (ordered as
  /// predicted_indices()); does not depend on measurements (eq. 5).
  [[nodiscard]] const std::vector<double>& posterior_sigma() const;

  /// Fill bounds for every path: tested paths keep their measured bounds;
  /// predicted paths get mu'_k +/- 3 sigma'_k with mu'_k computed from the
  /// measured *upper* bounds (conservative, §3.4).
  /// `measured` is indexed like tested_indices().
  [[nodiscard]] DelayBounds predict(
      std::span<const double> measured_lower,
      std::span<const double> measured_upper) const;

 private:
  std::vector<double> means_;
  std::vector<std::size_t> tested_;
  stats::ConditionalGaussian conditional_;
  std::size_t num_paths_ = 0;
};

}  // namespace effitest::core
