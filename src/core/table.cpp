#include "core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace effitest::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::size_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace effitest::core
