#include "core/tuner_service.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/yield.hpp"
#include "obs/log.hpp"
#include "scenario/circuit_catalog.hpp"

namespace effitest::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

std::vector<bool> SimulatedChip::apply(const Stimulus& stimulus) {
  std::vector<bool> pass(stimulus.armed.size());
  for (std::size_t i = 0; i < stimulus.armed.size(); ++i) {
    const std::size_t p = stimulus.armed[i];
    const double skew = problem_->pair_skew(p, stimulus.steps);
    pass[i] = chip_->max_delay[p] + skew <= stimulus.period + 1e-12;
  }
  return pass;
}

bool SimulatedChip::final_test(double period, std::span<const int> steps) {
  return chip_passes(*problem_, *chip_, buffer_values(*problem_, steps),
                     period);
}

TuningSession::TuningSession(const Problem& problem,
                             std::shared_ptr<const FlowArtifacts> artifacts,
                             double designated_period,
                             const TestOptions& test_options,
                             const ConfigOptions& config_options,
                             const SessionOptions& options)
    : problem_(&problem),
      artifacts_(std::move(artifacts)),
      designated_period_(designated_period),
      config_options_(config_options),
      options_(options),
      machine_(problem, artifacts_->batches, artifacts_->prior_lower,
               artifacts_->prior_upper, artifacts_->hold, test_options) {
  if (options_.log != nullptr) {
    options_.log->emit("session", "chip_begin",
                       {obs::LogField::u64("chip", options_.chip)});
  }
  if (machine_.done()) on_test_complete();  // degenerate: nothing to test
}

const Stimulus& TuningSession::next_stimulus() {
  switch (phase_) {
    case SessionPhase::kTest:
      return machine_.next_stimulus();
    case SessionPhase::kFinalTest:
      return final_stimulus_;
    case SessionPhase::kDone:
      break;
  }
  throw std::logic_error("TuningSession: next_stimulus after kDone");
}

void TuningSession::record_response(const std::vector<bool>& pass) {
  switch (phase_) {
    case SessionPhase::kTest:
      machine_.record_response(pass);
      if (machine_.done()) on_test_complete();
      return;
    case SessionPhase::kFinalTest:
      if (pass.size() != 1) {
        throw std::invalid_argument(
            "TuningSession: the final go/no-go response is one bit");
      }
      record_final(pass[0]);
      return;
    case SessionPhase::kDone:
      break;
  }
  throw std::logic_error("TuningSession: record_response after kDone");
}

void TuningSession::record_final(bool passed) {
  if (phase_ != SessionPhase::kFinalTest) {
    throw std::logic_error(
        "TuningSession: record_final outside the final-test phase");
  }
  report_.passed = passed;
  phase_ = SessionPhase::kDone;
  emit_report();
}

void TuningSession::emit_report() const {
  if (options_.log == nullptr) return;
  options_.log->emit(
      "session", "chip_report",
      {obs::LogField::u64("chip", options_.chip),
       obs::LogField::u64("iterations",
                          static_cast<std::uint64_t>(report_.test.iterations)),
       obs::LogField::boolean("feasible", report_.config.feasible),
       obs::LogField::str("passed",
                          report_.passed.has_value()
                              ? (*report_.passed ? "1" : "0")
                              : "-")});
}

void TuningSession::on_test_complete() {
  report_.test = machine_.take_result();
  report_.designated_period = designated_period_;

  const auto ts0 = Clock::now();
  const FlowArtifacts& art = *artifacts_;
  if (art.predictor) {
    // Delay ranges for configuration: measured where tested, predicted
    // elsewhere (conditioned on the measured upper bounds, §3.4).
    std::vector<double> meas_lower(art.tested.size());
    std::vector<double> meas_upper(art.tested.size());
    for (std::size_t t = 0; t < art.tested.size(); ++t) {
      meas_lower[t] = report_.test.lower[art.tested[t]];
      meas_upper[t] = report_.test.upper[art.tested[t]];
    }
    report_.bounds = art.predictor->predict(meas_lower, meas_upper);
  } else {
    report_.bounds.lower = report_.test.lower;
    report_.bounds.upper = report_.test.upper;
  }
  report_.config =
      configure_buffers(*problem_, designated_period_, report_.bounds.lower,
                        report_.bounds.upper, art.hold, config_options_);
  report_.config_seconds = seconds_since(ts0);

  if (report_.config.feasible && options_.final_test) {
    final_stimulus_.period = designated_period_;
    final_stimulus_.steps = report_.config.steps;
    final_stimulus_.armed.clear();
    phase_ = SessionPhase::kFinalTest;
    if (options_.log != nullptr) {
      options_.log->emit(
          "session", "final_test",
          {obs::LogField::u64("chip", options_.chip),
           obs::LogField::f64("period", designated_period_)});
    }
  } else {
    // An infeasible configuration rejects the chip outright; with the
    // final test disabled the outcome is simply not evaluated.
    if (options_.final_test) report_.passed = false;
    phase_ = SessionPhase::kDone;
    emit_report();
  }
}

void TuningSession::drive(ChipUnderTest& chip) {
  while (phase_ != SessionPhase::kDone) {
    const Stimulus& stimulus = next_stimulus();
    if (phase_ == SessionPhase::kTest) {
      record_response(chip.apply(stimulus));
    } else {
      record_final(chip.final_test(stimulus.period, stimulus.steps));
    }
  }
}

const ChipReport& TuningSession::report() const {
  if (phase_ != SessionPhase::kDone) {
    throw std::logic_error("TuningSession: report before kDone");
  }
  return report_;
}

ChipReport&& TuningSession::take_report() {
  if (phase_ != SessionPhase::kDone) {
    throw std::logic_error("TuningSession: take_report before kDone");
  }
  return std::move(report_);
}

TunerService::TunerService(const Problem& problem, const FlowOptions& options,
                           const FlowArtifacts* reuse)
    : TunerService(problem, options,
                   reuse != nullptr
                       ? std::make_shared<const FlowArtifacts>(*reuse)
                       : std::shared_ptr<const FlowArtifacts>()) {}

namespace {
const Problem& checked_problem(
    const std::shared_ptr<const scenario::PreparedCircuit>& circuit) {
  if (circuit == nullptr) {
    throw std::invalid_argument("TunerService: null PreparedCircuit");
  }
  return circuit->problem;
}
}  // namespace

TunerService::TunerService(
    std::shared_ptr<const scenario::PreparedCircuit> circuit,
    const FlowOptions& options)
    : TunerService(checked_problem(circuit), options) {
  circuit_ = std::move(circuit);
}

TunerService::TunerService(const Problem& problem, const FlowOptions& options,
                           std::shared_ptr<const FlowArtifacts> artifacts)
    : problem_(&problem), options_(options) {
  // Seed-fork order is the historical run_flow contract (DESIGN.md §4):
  // calibration fork (only when T_d is unresolved), hold fork
  // (unconditional, even under reuse), Monte-Carlo chip-base fork.
  stats::Rng rng(options_.seed);

  designated_period_ = options_.designated_period;
  if (designated_period_ <= 0.0) {
    stats::Rng cal_rng = rng.fork();
    designated_period_ = period_quantile(
        problem, 0.5, options_.period_calibration_chips, cal_rng);
  }
  options_.designated_period = designated_period_;

  if (options_.epsilon_override > 0.0) {
    options_.test.epsilon_ps = options_.epsilon_override;
  } else {
    options_.test.epsilon_ps = calibrated_epsilon(problem);
  }

  const auto tp0 = Clock::now();
  stats::Rng hold_rng = rng.fork();
  if (artifacts != nullptr) {
    artifacts_ = std::move(artifacts);  // aliased, not copied
  } else {
    artifacts_ = std::make_shared<const FlowArtifacts>(
        prepare_flow(problem, options_, hold_rng));
  }
  prepare_seconds_ = seconds_since(tp0);

  monte_carlo_seed_base_ = rng.fork().engine()();
}

TuningSession TunerService::begin_chip(const SessionOptions& options) const {
  return TuningSession(*problem_, artifacts_, designated_period_,
                       options_.test, options_.config, options);
}

}  // namespace effitest::core
