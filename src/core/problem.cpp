#include "core/problem.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace effitest::core {

int TunableBuffer::nearest_step(double x) const {
  if (steps < 2) return 0;
  const int k = static_cast<int>(std::lround((x - r) / step_size()));
  return std::clamp(k, 0, steps - 1);
}

Problem::Problem(const timing::CircuitModel& model, double reference_period,
                 int steps)
    : model_(&model) {
  if (steps < 2) throw std::invalid_argument("Problem: steps must be >= 2");
  reference_period_ =
      reference_period > 0.0 ? reference_period : model.nominal_critical_delay();
  // Paper setting ([19]): the maximum allowed buffer range is 1/8 of the
  // original clock period; we center it on zero (delays are relative to the
  // reference clock and may be negative).
  const double tau = reference_period_ / 8.0;
  for (int ff : model.buffered_ffs()) {
    buffers_.push_back(TunableBuffer{ff, -tau / 2.0, tau, steps});
  }
  const auto& pairs = model.pairs();
  src_buf_.resize(pairs.size());
  dst_buf_.resize(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    src_buf_[p] = model.buffer_index(pairs[p].src_ff);
    dst_buf_[p] = model.buffer_index(pairs[p].dst_ff);
  }
}

double Problem::pair_skew(std::size_t p, std::span<const int> steps) const {
  double skew = 0.0;
  if (src_buf_[p] >= 0) {
    skew += buffers_[static_cast<std::size_t>(src_buf_[p])].value(
        steps[static_cast<std::size_t>(src_buf_[p])]);
  }
  if (dst_buf_[p] >= 0) {
    skew -= buffers_[static_cast<std::size_t>(dst_buf_[p])].value(
        steps[static_cast<std::size_t>(dst_buf_[p])]);
  }
  return skew;
}

std::vector<int> Problem::neutral_steps() const {
  std::vector<int> out(buffers_.size());
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    out[b] = buffers_[b].neutral_step();
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> map_edge_exclusions(
    const timing::CircuitModel& model,
    std::span<const std::pair<int, int>> edges,
    std::span<const std::pair<std::size_t, std::size_t>> exclusive_pairs) {
  std::map<std::pair<int, int>, std::size_t> pair_id;
  for (std::size_t p = 0; p < model.num_pairs(); ++p) {
    pair_id.emplace(
        std::make_pair(model.pairs()[p].src_ff, model.pairs()[p].dst_ff), p);
  }
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const auto& [ei, ej] : exclusive_pairs) {
    if (ei >= edges.size() || ej >= edges.size()) continue;
    const auto it_i = pair_id.find(edges[ei]);
    const auto it_j = pair_id.find(edges[ej]);
    if (it_i == pair_id.end() || it_j == pair_id.end()) continue;
    out.emplace_back(it_i->second, it_j->second);
  }
  return out;
}

}  // namespace effitest::core
