#pragma once
// Post-silicon tuning problem instance: circuit model + tunable buffers.
//
// A tuning buffer shifts the clock arrival of one flip-flop by a value
//   x_i in [r_i, r_i + tau_i]            (paper eq. 3)
// restricted to a discrete step grid (20 values in the paper's experiments,
// with tau = clock period / 8, following ref. [19]).

#include <cstddef>
#include <vector>

#include "timing/model.hpp"

namespace effitest::core {

struct TunableBuffer {
  int ff = -1;        ///< flip-flop cell id carrying this buffer
  double r = 0.0;     ///< lower end of the configurable range, ps
  double tau = 0.0;   ///< range width, ps
  int steps = 20;     ///< number of discrete values (>= 2)

  [[nodiscard]] double step_size() const {
    return tau / static_cast<double>(steps - 1);
  }
  /// Buffer delay at discrete step k in [0, steps).
  [[nodiscard]] double value(int k) const { return r + step_size() * k; }
  /// Closest discrete step for a continuous value (clamped).
  [[nodiscard]] int nearest_step(double x) const;
  /// Step closest to a zero (neutral) buffer value.
  [[nodiscard]] int neutral_step() const { return nearest_step(0.0); }
};

/// The set of tuning buffers of one circuit plus the pair-to-buffer mapping
/// the optimization problems need.
class Problem {
 public:
  /// Build from a circuit model. Buffer ranges default to the paper's
  /// setting: tau = reference_period / 8 centered on zero, 20 steps.
  /// `reference_period` <= 0 uses the nominal critical delay.
  Problem(const timing::CircuitModel& model, double reference_period = 0.0,
          int steps = 20);

  [[nodiscard]] const timing::CircuitModel& model() const { return *model_; }
  [[nodiscard]] const std::vector<TunableBuffer>& buffers() const {
    return buffers_;
  }
  [[nodiscard]] std::size_t num_buffers() const { return buffers_.size(); }

  /// Buffer index at the source/destination of monitored pair `p`
  /// (-1 when that side has no buffer, i.e. x == 0).
  [[nodiscard]] int src_buffer(std::size_t p) const { return src_buf_[p]; }
  [[nodiscard]] int dst_buffer(std::size_t p) const { return dst_buf_[p]; }

  /// Effective clock skew x_src - x_dst of pair `p` under step assignment.
  [[nodiscard]] double pair_skew(std::size_t p,
                                 std::span<const int> steps) const;

  /// All-neutral step assignment (closest to x == 0 everywhere).
  [[nodiscard]] std::vector<int> neutral_steps() const;

  /// Reference clock period used to size the buffer ranges.
  [[nodiscard]] double reference_period() const { return reference_period_; }

 private:
  const timing::CircuitModel* model_;
  std::vector<TunableBuffer> buffers_;
  std::vector<int> src_buf_;
  std::vector<int> dst_buf_;
  double reference_period_ = 0.0;
};

/// Translate mutual-exclusion pairs expressed over a generator's
/// critical-edge indices (netlist::GeneratedCircuit::exclusive_edge_pairs)
/// into monitored-pair index pairs usable by BatchingOptions::exclusions.
/// Edges that did not become monitored pairs are skipped.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
map_edge_exclusions(
    const timing::CircuitModel& model,
    std::span<const std::pair<int, int>> edges,
    std::span<const std::pair<std::size_t, std::size_t>> exclusive_pairs);

}  // namespace effitest::core
