#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/yield.hpp"
#include "netlist/generator.hpp"
#include "parallel/deterministic_for.hpp"
#include "timing/model.hpp"

namespace effitest::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {}

std::vector<CampaignJob> CampaignRunner::cross(
    const std::vector<std::string>& circuits,
    const std::vector<double>& quantiles) {
  std::vector<CampaignJob> jobs;
  jobs.reserve(circuits.size() * std::max<std::size_t>(quantiles.size(), 1));
  for (const std::string& circuit : circuits) {
    if (quantiles.empty()) {
      jobs.push_back(CampaignJob{circuit, 0.0, -1.0});
      continue;
    }
    for (double q : quantiles) {
      jobs.push_back(CampaignJob{circuit, 0.0, q});
    }
  }
  return jobs;
}

CampaignResult CampaignRunner::run(
    const std::vector<CampaignJob>& jobs) const {
  const auto t0 = Clock::now();
  CampaignResult out;
  if (jobs.empty()) return out;  // nothing to run, nothing to time

  // Validate every circuit name up front: a typo must fail with one clear
  // error before any job starts, not from inside the parallel fan-out.
  for (const CampaignJob& job : jobs) {
    try {
      (void)netlist::paper_benchmark_spec(job.circuit);
    } catch (const std::exception&) {
      throw std::invalid_argument(
          "CampaignRunner: unknown circuit \"" + job.circuit +
          "\" (paper benchmarks: s9234 s13207 s15850 s38584 mem_ctrl "
          "usb_funct ac97_ctrl pci_bridge32)");
    }
  }
  out.jobs.resize(jobs.size());

  // Group job indices by circuit, preserving first-appearance order (the
  // group's first job defines which artifacts the rest reuse).
  std::vector<std::pair<std::string, std::vector<std::size_t>>> groups;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
      return g.first == jobs[i].circuit;
    });
    if (it == groups.end()) {
      groups.emplace_back(jobs[i].circuit, std::vector<std::size_t>{i});
    } else {
      it->second.push_back(i);
    }
  }

  parallel::ForOptions fopts;
  fopts.threads = options_.threads;
  parallel::deterministic_for(groups.size(), fopts, [&](std::size_t gi) {
    const auto& [name, indices] = groups[gi];

    const netlist::GeneratedCircuit circuit =
        netlist::generate_circuit(netlist::paper_benchmark_spec(name));
    const netlist::CellLibrary library = netlist::CellLibrary::standard();
    timing::ModelOptions model_options;
    model_options.random_inflation = options_.random_inflation;
    const timing::CircuitModel model(circuit.netlist, library,
                                     circuit.buffered_ffs, model_options);
    const Problem problem(model);

    // Null for the first job (fresh prepare); every later job of the
    // circuit aliases the first job's artifacts — no copies.
    std::shared_ptr<const FlowArtifacts> prepared;
    for (std::size_t idx : indices) {
      const CampaignJob& job = jobs[idx];
      FlowOptions opts = options_.flow;
      if (opts.threads == 0) opts.threads = options_.threads;
      opts.designated_period = job.designated_period;
      const auto j0 = Clock::now();  // job time includes T_d calibration
      if (opts.designated_period <= 0.0 && job.quantile >= 0.0) {
        stats::Rng calibration(options_.flow.seed ^
                               kQuantileCalibrationSeedXor);
        opts.designated_period = period_quantile(
            problem, job.quantile, options_.calibration_chips, calibration);
      }

      FlowResult result = run_flow(problem, opts, prepared);
      CampaignJobResult& slot = out.jobs[idx];
      slot.job = job;
      slot.metrics = result.metrics;
      slot.metrics.ns = circuit.netlist.num_flip_flops();
      slot.metrics.ng = circuit.netlist.num_combinational_gates();
      slot.seconds = seconds_since(j0);
      if (prepared == nullptr) {
        prepared = std::move(result.artifacts);  // shared, not copied
      }
    }
  });

  out.total_seconds = seconds_since(t0);
  return out;
}

}  // namespace effitest::core
