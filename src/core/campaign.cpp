#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "analytic/engine.hpp"
#include "core/yield.hpp"
#include "obs/log.hpp"
#include "parallel/deterministic_for.hpp"
#include "scenario/circuit_catalog.hpp"
#include "stats/distributions.hpp"

namespace effitest::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

const char* job_kind_name(JobKind kind) {
  return kind == JobKind::kAnalytic ? "analytic" : "flow";
}

JobKind job_kind_from(const std::string& name) {
  if (name == "flow") return JobKind::kFlow;
  if (name == "analytic") return JobKind::kAnalytic;
  throw std::invalid_argument("unknown job kind \"" + name +
                              "\" (valid: flow analytic)");
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {}

std::vector<CampaignJob> CampaignRunner::cross(
    const std::vector<std::string>& circuits,
    const std::vector<double>& quantiles,
    const std::vector<JobKind>& kinds) {
  const std::vector<JobKind> effective_kinds =
      kinds.empty() ? std::vector<JobKind>{JobKind::kFlow} : kinds;
  std::vector<CampaignJob> jobs;
  jobs.reserve(circuits.size() * std::max<std::size_t>(quantiles.size(), 1) *
               effective_kinds.size());
  for (const std::string& circuit : circuits) {
    for (const JobKind kind : effective_kinds) {
      if (quantiles.empty()) {
        jobs.push_back(CampaignJob{circuit, 0.0, -1.0, kind});
        continue;
      }
      for (double q : quantiles) {
        jobs.push_back(CampaignJob{circuit, 0.0, q, kind});
      }
    }
  }
  return jobs;
}

CampaignResult CampaignRunner::run(
    const std::vector<CampaignJob>& jobs) const {
  const auto t0 = Clock::now();
  CampaignResult out;
  if (jobs.empty()) return out;  // nothing to run, nothing to time

  const std::shared_ptr<const scenario::CircuitCatalog> catalog =
      options_.catalog ? options_.catalog
                       : scenario::CircuitCatalog::shared_paper();

  // Validate every circuit name up front: a typo must fail with one clear
  // error before any job starts, not from inside the parallel fan-out.
  // spec() already formats the unknown-name message (with the registry).
  for (const CampaignJob& job : jobs) {
    try {
      (void)catalog->spec(job.circuit);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string("CampaignRunner: ") + e.what());
    }
  }
  out.jobs.resize(jobs.size());

  // Inject resumed results (a loaded checkpoint): those jobs are done. The
  // job fields must match the submitted list — a checkpoint belonging to a
  // different campaign must fail loudly, never blend silently.
  std::vector<char> done(jobs.size(), 0);
  for (const auto& [idx, result] : options_.completed) {
    if (idx >= jobs.size()) {
      throw std::invalid_argument(
          "CampaignRunner: completed job index " + std::to_string(idx) +
          " is out of range (" + std::to_string(jobs.size()) + " jobs)");
    }
    if (done[idx] != 0) {
      throw std::invalid_argument("CampaignRunner: duplicate completed index " +
                                  std::to_string(idx));
    }
    const CampaignJob& job = jobs[idx];
    if (result.job.circuit != job.circuit ||
        result.job.designated_period != job.designated_period ||
        result.job.quantile != job.quantile || result.job.kind != job.kind) {
      throw std::invalid_argument(
          "CampaignRunner: completed job " + std::to_string(idx) +
          " does not match the submitted job list");
    }
    done[idx] = 1;
    out.jobs[idx] = result;
    out.jobs[idx].completed = true;
  }

  // Pending jobs in input order; max_jobs truncates here, which makes the
  // stop point a deterministic job boundary regardless of thread count.
  std::vector<std::size_t> pending;
  pending.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (done[i] == 0) pending.push_back(i);
  }
  if (options_.max_jobs > 0 && pending.size() > options_.max_jobs) {
    pending.resize(options_.max_jobs);
  }
  if (pending.empty()) {
    out.total_seconds = seconds_since(t0);
    return out;  // everything was resumed
  }

  // Group pending job indices by circuit, preserving first-appearance order
  // (the group's first job defines which artifacts the rest reuse; a
  // resumed group's first pending job simply prepares fresh, which is
  // bit-identical to the reuse path).
  std::vector<std::pair<std::string, std::vector<std::size_t>>> groups;
  for (const std::size_t i : pending) {
    auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
      return g.first == jobs[i].circuit;
    });
    if (it == groups.end()) {
      groups.emplace_back(jobs[i].circuit, std::vector<std::size_t>{i});
    } else {
      it->second.push_back(i);
    }
  }

  // Serializes on_job_complete: a checkpoint sink sees one call at a time.
  std::mutex sink_mutex;

  parallel::ForOptions fopts;
  fopts.threads = options_.threads;
  parallel::deterministic_for(groups.size(), fopts, [&](std::size_t gi) {
    const auto& [name, indices] = groups[gi];

    // One memoized resolve per circuit: repeated campaigns (and any other
    // consumer of the same catalog) share the prepared bundle.
    const std::shared_ptr<const scenario::PreparedCircuit> circuit =
        catalog->resolve(name, options_.random_inflation);
    const Problem& problem = circuit->problem;

    // Null for the first job (fresh prepare); every later job of the
    // circuit aliases the first job's artifacts — no copies. The analytic
    // engine result is likewise computed once per circuit (T_d-independent).
    std::shared_ptr<const FlowArtifacts> prepared;
    std::optional<analytic::TunedPeriodAnalysis> analysis;
    for (std::size_t idx : indices) {
      const CampaignJob& job = jobs[idx];
      FlowOptions opts = options_.flow;
      if (opts.threads == 0) opts.threads = options_.threads;
      opts.designated_period = job.designated_period;
      if (options_.use_exclusions) {
        opts.batching.exclusions = circuit->exclusions;
      }
      const auto j0 = Clock::now();  // job time includes T_d calibration
      // Analytic jobs with the default convention (no T_d, no quantile)
      // calibrate at the T1 median, so flow and analytic yields of the same
      // sweep line up at identical designated periods.
      const double quantile = job.quantile >= 0.0
                                  ? job.quantile
                                  : (job.kind == JobKind::kAnalytic ? 0.5
                                                                    : -1.0);
      if (opts.designated_period <= 0.0 && quantile >= 0.0) {
        stats::Rng calibration(options_.flow.seed ^
                               kQuantileCalibrationSeedXor);
        opts.designated_period = period_quantile(
            problem, quantile, options_.calibration_chips, calibration);
      }

      CampaignJobResult& slot = out.jobs[idx];
      slot.job = job;
      if (job.kind == JobKind::kAnalytic) {
        if (!analysis) {
          analysis = analytic::analyze_tuned_period(problem);
        }
        FlowMetrics m;
        m.nb = problem.num_buffers();
        m.np = problem.model().num_pairs();
        m.designated_period = opts.designated_period;
        m.untuned_mean = analysis->untuned.mean;
        m.untuned_sigma = analysis->untuned.sigma();
        m.tuned_mean = analysis->tuned.mean;
        m.tuned_sigma = analysis->tuned.sigma();
        // Analytic yields at T_d: untuned (no buffers) and post-tuning
        // (ideal configuration) — the Clark counterparts of the flow's
        // yield_no_buffer / yield_ideal columns.
        const double us = analysis->untuned.sigma();
        m.yield_no_buffer =
            us < 1e-12
                ? (opts.designated_period >= analysis->untuned.mean ? 1.0
                                                                    : 0.0)
                : stats::normal_cdf(
                      (opts.designated_period - analysis->untuned.mean) / us);
        m.yield_ideal = analysis->yield_at(opts.designated_period);
        slot.metrics = m;
      } else {
        FlowResult result = run_flow(problem, opts, prepared);
        slot.metrics = result.metrics;
        if (prepared == nullptr) {
          prepared = std::move(result.artifacts);  // shared, not copied
        }
      }
      slot.metrics.ns = circuit->netlist.num_flip_flops();
      slot.metrics.ng = circuit->netlist.num_combinational_gates();
      slot.seconds = seconds_since(j0);
      slot.completed = true;
      if (options_.on_job_complete || options_.log != nullptr) {
        const std::lock_guard<std::mutex> lock(sink_mutex);
        if (options_.log != nullptr) {
          options_.log->emit(
              "campaign", "job_complete",
              {obs::LogField::u64("index", static_cast<std::uint64_t>(idx)),
               obs::LogField::str("circuit", job.circuit),
               obs::LogField::str("kind", job_kind_name(job.kind)),
               obs::LogField::f64("quantile", job.quantile),
               obs::LogField::f64("td", slot.metrics.designated_period),
               obs::LogField::f64("ra", slot.metrics.ra),
               obs::LogField::f64("seconds", slot.seconds)});
        }
        if (options_.on_job_complete) options_.on_job_complete(idx, slot);
      }
    }
  });

  out.total_seconds = seconds_since(t0);
  return out;
}

}  // namespace effitest::core
