#include "core/predictor.hpp"

#include <stdexcept>

namespace effitest::core {

DelayPredictor::DelayPredictor(const linalg::Matrix& covariance,
                               std::vector<double> means,
                               std::vector<std::size_t> tested)
    : means_(std::move(means)),
      tested_(tested),
      conditional_(covariance, std::move(tested), /*jitter=*/1e-9),
      num_paths_(covariance.rows()) {
  if (means_.size() != num_paths_) {
    throw std::invalid_argument("DelayPredictor: means/covariance mismatch");
  }
}

namespace {

const std::vector<std::size_t>& checked_measured(
    const std::shared_ptr<const stats::PredictionGain>& gain) {
  if (gain == nullptr) {
    throw std::invalid_argument("DelayPredictor: null PredictionGain");
  }
  return gain->measured;
}

}  // namespace

DelayPredictor::DelayPredictor(
    std::shared_ptr<const stats::PredictionGain> gain,
    std::vector<double> means)
    : means_(std::move(means)),
      tested_(checked_measured(gain)),
      conditional_(std::move(gain)),
      num_paths_(conditional_.measured_indices().size() +
                 conditional_.predicted_indices().size()) {
  if (means_.size() != num_paths_) {
    throw std::invalid_argument("DelayPredictor: means/gain size mismatch");
  }
}

const std::vector<std::size_t>& DelayPredictor::tested_indices() const {
  return conditional_.measured_indices();
}

const std::vector<std::size_t>& DelayPredictor::predicted_indices() const {
  return conditional_.predicted_indices();
}

const std::vector<double>& DelayPredictor::posterior_sigma() const {
  return conditional_.posterior_sigma();
}

DelayBounds DelayPredictor::predict(std::span<const double> measured_lower,
                                    std::span<const double> measured_upper) const {
  if (measured_lower.size() != tested_.size() ||
      measured_upper.size() != tested_.size()) {
    throw std::invalid_argument("DelayPredictor: measurement size mismatch");
  }
  DelayBounds out;
  out.lower.assign(num_paths_, 0.0);
  out.upper.assign(num_paths_, 0.0);
  for (std::size_t t = 0; t < tested_.size(); ++t) {
    out.lower[tested_[t]] = measured_lower[t];
    out.upper[tested_[t]] = measured_upper[t];
  }
  // Conservative conditioning on the measured upper bounds (§3.4).
  const std::vector<double> mu =
      conditional_.posterior_mean(means_, measured_upper);
  const std::vector<double>& sigma = conditional_.posterior_sigma();
  const auto& predicted = conditional_.predicted_indices();
  for (std::size_t k = 0; k < predicted.size(); ++k) {
    out.lower[predicted[k]] = mu[k] - 3.0 * sigma[k];
    out.upper[predicted[k]] = mu[k] + 3.0 * sigma[k];
  }
  return out;
}

}  // namespace effitest::core
