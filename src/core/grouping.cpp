#include "core/grouping.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "parallel/deterministic_for.hpp"
#include "stats/pca.hpp"

namespace effitest::core {

std::vector<std::vector<std::size_t>> correlation_clusters(
    const linalg::Matrix& cov, const GroupingOptions& options) {
  if (!cov.is_square()) {
    throw std::invalid_argument("correlation_clusters: covariance not square");
  }
  const std::size_t n = cov.rows();
  std::vector<std::vector<std::size_t>> clusters;
  if (n == 0) return clusters;

  std::vector<double> sigma(n);
  for (std::size_t i = 0; i < n; ++i) {
    sigma[i] = std::sqrt(std::max(cov(i, i), 0.0));
  }
  std::vector<std::size_t> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = i;

  double threshold = options.corr_start;
  while (!remaining.empty()) {
    // extract_paths(P, corr_th): seed with the first remaining path, pull in
    // every path whose correlation with the seed reaches the threshold.
    const std::size_t seed = remaining.front();
    std::vector<std::size_t> members;
    std::vector<std::size_t> rest;
    for (std::size_t idx : remaining) {
      double corr = 1.0;
      if (idx != seed) {
        const double denom = sigma[seed] * sigma[idx];
        corr = denom > 0.0 ? cov(seed, idx) / denom : 0.0;
      }
      if (corr >= threshold || threshold <= 0.0) {
        members.push_back(idx);
      } else {
        rest.push_back(idx);
      }
    }
    remaining = std::move(rest);
    clusters.push_back(std::move(members));
    threshold -= options.corr_step;
  }
  return clusters;
}

SelectionResult select_paths(const linalg::Matrix& cov,
                             const GroupingOptions& options) {
  SelectionResult out;
  const std::vector<std::vector<std::size_t>> clusters =
      correlation_clusters(cov, options);

  // Thresholds replay the serial round schedule (repeated subtraction, not
  // corr_start - g*corr_step, to keep the recorded values bit-identical to
  // the historical serial loop).
  std::vector<double> thresholds(clusters.size());
  double threshold = options.corr_start;
  for (std::size_t g = 0; g < clusters.size(); ++g) {
    thresholds[g] = threshold;
    threshold -= options.corr_step;
  }

  // The per-group covariance-block assembly + Jacobi PCA dominates offline
  // preparation on large circuits and is independent across groups: each
  // group writes only its own slot, so the pool fans groups out while the
  // result stays bit-identical for any worker count.
  out.groups.resize(clusters.size());
  parallel::ForOptions fopts;
  fopts.threads = options.threads;
  parallel::deterministic_for(clusters.size(), fopts, [&](std::size_t gi) {
    const std::vector<std::size_t>& members = clusters[gi];
    PathGroup group;
    group.threshold = thresholds[gi];
    group.members = members;

    // PCA of the group's covariance block. Very large groups are
    // decomposed on a deterministic stride subsample (see GroupingOptions).
    std::vector<std::size_t> basis = members;
    if (members.size() > options.pca_max_block) {
      basis.clear();
      const double stride = static_cast<double>(members.size()) /
                            static_cast<double>(options.pca_max_block);
      for (std::size_t k = 0; k < options.pca_max_block; ++k) {
        basis.push_back(members[static_cast<std::size_t>(
            static_cast<double>(k) * stride)]);
      }
    }
    const std::size_t m = basis.size();
    linalg::Matrix block(m, m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        block(i, j) = cov(basis[i], basis[j]);
      }
    }
    const stats::Pca pca = stats::pca_from_covariance(std::move(block));
    group.num_components =
        options.use_kaiser
            ? pca.significant_by_kaiser(options.kaiser_scale)
            : pca.significant_components(options.pca_coverage);
    const std::vector<std::size_t> local =
        stats::select_representatives(pca, group.num_components);
    for (std::size_t l : local) group.selected.push_back(basis[l]);
    std::sort(group.selected.begin(), group.selected.end());

    out.groups[gi] = std::move(group);
  });

  for (const PathGroup& g : out.groups) {
    out.tested.insert(out.tested.end(), g.selected.begin(), g.selected.end());
  }
  std::sort(out.tested.begin(), out.tested.end());
  return out;
}

}  // namespace effitest::core
