#pragma once
// End-to-end EffiTest flow (Fig. 4 of the paper) plus metric collection.
//
// Offline (once per circuit design — column Tp of Table 1):
//   path covariance -> Procedure-1 grouping & PCA selection -> test
//   multiplexing into batches -> empty-slot filling -> conditional-prediction
//   gain precomputation -> hold-bound sampling (§3.5).
//
// Per chip (the tester loop):
//   aligned frequency-stepping test of the batches (Procedure 2, column Tt)
//   -> statistical prediction of untested paths (eqs. 4-5)
//   -> buffer configuration (eqs. 15-18, column Ts)
//   -> final pass/fail test.
//
// The flow also evaluates the comparison points of the paper: path-wise
// frequency stepping (t'a / t'v), configuration under ideal measurement
// (yi) and the untuned circuit (yield without buffers).

#include <cstdint>
#include <memory>
#include <optional>

#include "core/configurator.hpp"
#include "core/grouping.hpp"
#include "core/hold_bounds.hpp"
#include "core/multiplexing.hpp"
#include "core/predictor.hpp"
#include "core/test_engine.hpp"
#include "core/yield.hpp"

namespace effitest::core {

struct FlowOptions {
  GroupingOptions grouping{};
  BatchingOptions batching{};
  TestOptions test{};
  HoldBoundOptions hold{};
  ConfigOptions config{};
  std::size_t chips = 1000;     ///< Monte-Carlo dies (paper: 10,000)
  std::uint64_t seed = 2016;
  /// Worker threads for the parallel sections (per-chip tester loop,
  /// hold-bound sampling, Procedure-1 PCA — all on the shared pool). Every
  /// chip/sample draws from its own seed-derived stream and reductions fold
  /// in a fixed index order, so results are bit-identical for any value.
  /// 0 = hardware concurrency (the shared-pool width), 1 = serial. The
  /// effective worker count of each section is additionally clamped to its
  /// work-shard count and to the pool width + 1
  /// (parallel::resolve_workers) — the tester loop runs
  /// min(threads, chips, 256, pool width + 1) workers, 256 being the
  /// runtime's shard cap; grouping.threads / hold.threads of 0 inherit
  /// this value.
  std::size_t threads = 0;
  /// Designated clock period T_d; <= 0 selects the T1 convention
  /// (median untuned required period, 50% no-buffer yield).
  double designated_period = 0.0;
  std::size_t period_calibration_chips = 2000;
  /// false: skip statistical prediction and test every path (Fig. 8 modes).
  bool use_prediction = true;
  bool fill_slots = true;
  bool evaluate_yield = true;
  /// <= 0 calibrates epsilon to 6*sigma_median / 2^8.5, matching the
  /// paper's ~8-9 path-wise iterations per path.
  double epsilon_override = 0.0;
};

struct FlowMetrics {
  // Circuit statistics (Table 1 left block).
  std::size_t ns = 0, ng = 0, nb = 0, np = 0, npt = 0;
  std::size_t num_groups = 0, num_batches = 0, num_selected = 0;
  double epsilon_ps = 0.0;
  double designated_period = 0.0;

  // Tester iterations (Table 1 middle block).
  double ta = 0.0;           ///< avg frequency steps per chip (proposed)
  double tv = 0.0;           ///< ta / npt
  double ta_pathwise = 0.0;  ///< t'a: path-wise steps per chip
  double tv_pathwise = 0.0;  ///< t'v = t'a / np
  double ra = 0.0;           ///< reduction % per chip
  double rv = 0.0;           ///< reduction % per tested path

  // Yields (Table 2 / Fig. 7).
  double yield_no_buffer = 0.0;
  double yield_ideal = 0.0;     ///< yi
  double yield_proposed = 0.0;  ///< yt
  double yield_drop = 0.0;      ///< yr = yi - yt

  // Runtimes (Table 1 right block).
  double tp_seconds = 0.0;            ///< offline preparation
  double tt_seconds_per_chip = 0.0;   ///< avg (T, x) computation per chip
  double ts_seconds_per_chip = 0.0;   ///< avg final configuration per chip

  // Diagnostics.
  std::size_t forced_resolutions = 0;
  std::size_t infeasible_configs = 0;

  // Analytic post-tuning SSTA (campaign JobKind::kAnalytic jobs; zero for
  // Monte-Carlo flow jobs). Clark mean/sigma of the untuned and the
  // post-tuning required clock period.
  double untuned_mean = 0.0;
  double untuned_sigma = 0.0;
  double tuned_mean = 0.0;
  double tuned_sigma = 0.0;
};

struct FlowArtifacts {
  SelectionResult selection;
  std::vector<Batch> batches;
  std::vector<std::size_t> tested;  ///< selected + slot-filled, ascending
  std::vector<HoldConstraintX> hold;
  std::vector<double> prior_lower;
  std::vector<double> prior_upper;
  std::optional<DelayPredictor> predictor;
};

struct FlowResult {
  FlowMetrics metrics;
  /// The offline artifacts the run used — shared with (not copied out of)
  /// the TunerService that owned them, never null after run_flow. Reusing
  /// them for a T_d sweep needs no copy (`run_flow(p, o,
  /// result.artifacts.get())`); copy `*artifacts` to mutate.
  std::shared_ptr<const FlowArtifacts> artifacts;
};

/// Offline preparation only (everything before chips hit the tester).
[[nodiscard]] FlowArtifacts prepare_flow(const Problem& problem,
                                         const FlowOptions& options,
                                         stats::Rng& rng);

/// Full experiment: offline preparation + Monte-Carlo tester loop. Since
/// the TunerService redesign this is a thin Monte-Carlo driver: it builds
/// a `core::TunerService` (which owns the offline phase) and streams
/// sampled dies through per-chip `TuningSession`s as `SimulatedChip`s —
/// bit-identical to the historical fused loop
/// (tests/integration/golden_metrics_test.cpp).
/// `reuse` skips the offline preparation with previously prepared
/// artifacts (legal because they do not depend on the designated period —
/// useful when sweeping T_d over the same circuit, e.g. Table 2). The raw
/// pointer form value-copies them into the run's service; the shared_ptr
/// overload aliases without copying (the campaign fast path — pass
/// `result.artifacts` from an earlier run; null prepares fresh).
[[nodiscard]] FlowResult run_flow(const Problem& problem,
                                  const FlowOptions& options = {},
                                  const FlowArtifacts* reuse = nullptr);
[[nodiscard]] FlowResult run_flow(const Problem& problem,
                                  const FlowOptions& options,
                                  std::shared_ptr<const FlowArtifacts> reuse);

/// Calibrated epsilon: 6 * median path sigma / 2^8.5 (see DESIGN.md).
[[nodiscard]] double calibrated_epsilon(const Problem& problem);

}  // namespace effitest::core
