#pragma once
// TunerService: the streaming per-chip tuning API (paper Fig. 4).
//
// The paper's deployment target is a production tester that tunes one
// physical chip at a time: an offline phase prepared once per circuit
// design, then a per-chip loop of test (Procedure 2) -> statistical
// prediction (eqs. 4-5) -> buffer configuration (eqs. 15-18) -> final
// pass/fail. This header is that boundary, decoupled from any die
// simulator:
//
//  * `ChipUnderTest` — what a tester does: apply one (period, buffer
//    steps) stimulus per iteration and report pass/fail of the armed
//    pairs, plus the final go/no-go production test. `SimulatedChip`
//    adapts a Monte-Carlo die (`timing::Chip`) to the interface.
//  * `TuningSession` — the per-chip state machine. Drive it iteratively
//    (`next_stimulus()` / `record_response()`, e.g. from a line protocol,
//    io/tune_protocol.hpp) or let `drive(chip)` run the whole loop; either
//    way it finishes with a `ChipReport`.
//  * `TunerService` — owns the offline artifacts (`FlowArtifacts`
//    including the cached, aliased `stats::PredictionGain`) behind a
//    shared_ptr and mints sessions. A service is immutable after
//    construction: `begin_chip()` is const and any number of sessions may
//    run concurrently (e.g. on the deterministic pool) against the same
//    artifacts.
//
// Determinism contract: a session is a pure function of the recorded
// responses — no RNG, no hidden state — so every driver (in-process
// simulation, streamed protocol, replayed log) produces bit-identical
// reports, and `run_flow`, rewritten as a thin Monte-Carlo driver over
// this API, pins the historical `FlowMetrics` exactly
// (tests/integration/golden_metrics_test.cpp). See DESIGN.md §10.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/flow.hpp"

namespace effitest::scenario {
struct PreparedCircuit;
}  // namespace effitest::scenario

namespace effitest::obs {
class StructuredLog;
}  // namespace effitest::obs

namespace effitest::core {

/// One physical (or simulated) chip on the tester. Implementations answer
/// stimuli; they never see the engine's bookkeeping.
class ChipUnderTest {
 public:
  virtual ~ChipUnderTest() = default;

  /// One tester iteration of Procedure 2: program `stimulus.steps`, clock
  /// at `stimulus.period`, return pass/fail per `stimulus.armed` pair,
  /// in order.
  [[nodiscard]] virtual std::vector<bool> apply(const Stimulus& stimulus) = 0;

  /// Final production go/no-go at the designated period under the
  /// configured steps (whole chip: setup, hold and background paths).
  [[nodiscard]] virtual bool final_test(double period,
                                        std::span<const int> steps) = 0;
};

/// Adapter: a sampled Monte-Carlo die behaves like a tester-attached chip.
/// `problem` and `chip` must outlive the adapter.
class SimulatedChip final : public ChipUnderTest {
 public:
  SimulatedChip(const Problem& problem, const timing::Chip& chip)
      : problem_(&problem), chip_(&chip) {}

  [[nodiscard]] std::vector<bool> apply(const Stimulus& stimulus) override;
  [[nodiscard]] bool final_test(double period,
                                std::span<const int> steps) override;

  [[nodiscard]] const timing::Chip& chip() const { return *chip_; }

 private:
  const Problem* problem_;
  const timing::Chip* chip_;
};

/// Everything the per-chip loop produced for one die.
struct ChipReport {
  TestRunResult test;       ///< measured bounds, iterations, Tt time
  DelayBounds bounds;       ///< configuration inputs: measured where
                            ///< tested, conditional-Gaussian elsewhere
  ConfigResult config;      ///< buffer steps + xi (eqs. 15-18)
  double designated_period = 0.0;
  /// Final go/no-go outcome; false when configuration was infeasible,
  /// nullopt when the final test was skipped (SessionOptions::final_test).
  std::optional<bool> passed;
  double config_seconds = 0.0;  ///< prediction + configuration — column Ts
};

struct SessionOptions {
  /// Run the final go/no-go production test after configuration. Skipped
  /// automatically (passed = false) when configuration is infeasible.
  bool final_test = true;
  /// Structured event log for session transitions (chip_begin, final_test,
  /// chip_report), or nullptr for none — the zero-overhead default.
  /// Logging never feeds back into tuning: sessions stay pure functions
  /// of their responses (the determinism contract above).
  obs::StructuredLog* log = nullptr;
  /// Identifies the chip in log events (the caller's die index).
  std::uint64_t chip = 0;
};

enum class SessionPhase : std::uint8_t {
  kTest,       ///< Procedure-2 stimuli outstanding
  kFinalTest,  ///< configured; the go/no-go stimulus is outstanding
  kDone,       ///< report() is ready
};

/// Per-chip tuning state machine. Mint one per die via
/// TunerService::begin_chip(); sessions are independent and may run
/// concurrently. Iterative use:
///
///   while (session.phase() != SessionPhase::kDone) {
///     const Stimulus& s = session.next_stimulus();
///     session.record_response(tester_answers(s));  // 1 bit in kFinalTest
///   }
///   const ChipReport& r = session.report();
class TuningSession {
 public:
  TuningSession(const Problem& problem,
                std::shared_ptr<const FlowArtifacts> artifacts,
                double designated_period, const TestOptions& test_options,
                const ConfigOptions& config_options,
                const SessionOptions& options = {});

  [[nodiscard]] SessionPhase phase() const { return phase_; }

  /// The outstanding stimulus (idempotent until answered). In kFinalTest
  /// the armed set is empty: the response is the whole-chip go/no-go bit.
  [[nodiscard]] const Stimulus& next_stimulus();

  /// Answer the outstanding stimulus: pass/fail per armed pair (kTest) or
  /// exactly one bit (kFinalTest).
  void record_response(const std::vector<bool>& pass);

  /// Shorthand for record_response({passed}) in kFinalTest.
  void record_final(bool passed);

  /// Run the whole per-chip loop against an attached chip.
  void drive(ChipUnderTest& chip);

  /// Valid once phase() == kDone.
  [[nodiscard]] const ChipReport& report() const;
  [[nodiscard]] ChipReport&& take_report();

 private:
  /// Test finished: predict untested delays, configure the buffers, and
  /// either arm the final go/no-go stimulus or complete.
  void on_test_complete();
  /// chip_report log event, emitted on every kDone transition.
  void emit_report() const;

  const Problem* problem_;
  std::shared_ptr<const FlowArtifacts> artifacts_;
  double designated_period_ = 0.0;
  ConfigOptions config_options_;
  SessionOptions options_;
  DelayTestMachine machine_;
  Stimulus final_stimulus_;
  ChipReport report_;
  SessionPhase phase_ = SessionPhase::kTest;
};

/// The offline phase as a long-lived object: designated-period resolution
/// plus `prepare_flow`, with `run_flow`'s historical seed-fork order, so a
/// Monte-Carlo driver over the service reproduces the historical flow bit
/// for bit. Immutable after construction; share freely across threads.
class TunerService {
 public:
  /// Prepare from scratch, or adopt previously prepared artifacts
  /// (`reuse`, the T_d-sweep pattern — the unconditional hold fork is
  /// still taken so downstream streams match a fresh prepare). A raw
  /// `reuse` pointer is value-copied (the service must own its shared
  /// state); pass a shared_ptr to alias instead.
  explicit TunerService(const Problem& problem, const FlowOptions& options,
                        const FlowArtifacts* reuse = nullptr);

  /// Adopt already-shared artifacts WITHOUT copying — the same aliasing
  /// contract as the cached PredictionGain (campaign jobs and T_d sweeps
  /// share one artifact object across every service built on it). A null
  /// pointer prepares from scratch.
  TunerService(const Problem& problem, const FlowOptions& options,
               std::shared_ptr<const FlowArtifacts> artifacts);

  /// Provision from a catalog-resolved circuit
  /// (scenario::CircuitCatalog::resolve): the service shares ownership of
  /// the PreparedCircuit — problem() points into it — so the bundle
  /// outlives the catalog and every session minted from here. Throws
  /// std::invalid_argument on a null circuit.
  TunerService(std::shared_ptr<const scenario::PreparedCircuit> circuit,
               const FlowOptions& options);

  /// Mint an independent per-chip session against the shared artifacts.
  [[nodiscard]] TuningSession begin_chip(
      const SessionOptions& options = {}) const;

  [[nodiscard]] const Problem& problem() const { return *problem_; }
  [[nodiscard]] double designated_period() const {
    return designated_period_;
  }
  /// Flow options with the test resolution epsilon resolved
  /// (FlowOptions::epsilon_override / calibrated_epsilon).
  [[nodiscard]] const FlowOptions& options() const { return options_; }
  [[nodiscard]] const TestOptions& test_options() const {
    return options_.test;
  }
  [[nodiscard]] const FlowArtifacts& artifacts() const { return *artifacts_; }
  [[nodiscard]] const std::shared_ptr<const FlowArtifacts>&
  shared_artifacts() const {
    return artifacts_;
  }
  /// Wall time of the offline preparation (column Tp).
  [[nodiscard]] double prepare_seconds() const { return prepare_seconds_; }
  /// The chip-stream seed base a Monte-Carlo driver must use
  /// (parallel::index_seed(base, c) per die) to stay bit-identical with
  /// the historical run_flow chip loop.
  [[nodiscard]] std::uint64_t monte_carlo_seed_base() const {
    return monte_carlo_seed_base_;
  }

 private:
  const Problem* problem_;
  FlowOptions options_;
  double designated_period_ = 0.0;
  std::shared_ptr<const FlowArtifacts> artifacts_;
  /// Keepalive for the catalog-provisioned bundle problem_ points into
  /// (null when constructed from a caller-owned Problem).
  std::shared_ptr<const scenario::PreparedCircuit> circuit_;
  double prepare_seconds_ = 0.0;
  std::uint64_t monte_carlo_seed_base_ = 0;
};

}  // namespace effitest::core
