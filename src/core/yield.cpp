#include "core/yield.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/distributions.hpp"
#include "timing/ssta.hpp"

namespace effitest::core {

std::vector<double> buffer_values(const Problem& problem,
                                  std::span<const int> steps) {
  if (steps.size() != problem.num_buffers()) {
    throw std::invalid_argument("buffer_values: step count mismatch");
  }
  std::vector<double> x(steps.size());
  for (std::size_t b = 0; b < steps.size(); ++b) {
    x[b] = problem.buffers()[b].value(steps[b]);
  }
  return x;
}

namespace {

double skew_of(const Problem& problem, std::span<const double> x,
               std::size_t p) {
  double skew = 0.0;
  const int i = problem.src_buffer(p);
  const int j = problem.dst_buffer(p);
  if (i >= 0) skew += x[static_cast<std::size_t>(i)];
  if (j >= 0) skew -= x[static_cast<std::size_t>(j)];
  return skew;
}

}  // namespace

bool chip_passes(const Problem& problem, const timing::Chip& chip,
                 std::span<const double> x, double designated_period) {
  constexpr double kTol = 1e-9;
  const timing::CircuitModel& model = problem.model();
  const double h = model.hold_time();
  for (std::size_t p = 0; p < model.num_pairs(); ++p) {
    const double skew = skew_of(problem, x, p);
    if (chip.max_delay[p] + skew > designated_period + kTol) return false;
    if (skew < h - chip.min_delay[p] - kTol) return false;
  }
  for (double d : chip.static_delay) {
    if (d > designated_period + kTol) return false;
  }
  return true;
}

bool chip_passes_untuned(const Problem& problem, const timing::Chip& chip,
                         double designated_period) {
  const std::vector<double> zeros(problem.num_buffers(), 0.0);
  return chip_passes(problem, chip, zeros, designated_period);
}

double untuned_required_period(const Problem& problem,
                               const timing::Chip& chip) {
  double worst = 0.0;
  for (double d : chip.max_delay) worst = std::max(worst, d);
  for (double d : chip.static_delay) worst = std::max(worst, d);
  (void)problem;
  return worst;
}

double untuned_yield_estimate(const Problem& problem,
                              double designated_period) {
  const timing::CanonicalDelay required =
      timing::ssta_required_period(problem.model());
  const double sigma = required.sigma();
  if (sigma <= 0.0) return designated_period >= required.mean ? 1.0 : 0.0;
  return stats::normal_cdf((designated_period - required.mean) / sigma);
}

double period_quantile_estimate(const Problem& problem, double q) {
  return timing::ssta_required_period(problem.model()).quantile(q);
}

double period_quantile(const Problem& problem, double q, std::size_t chips,
                       stats::Rng& rng) {
  if (chips == 0) throw std::invalid_argument("period_quantile: chips == 0");
  std::vector<double> required;
  required.reserve(chips);
  // Max-delays-only sampling on a reused workspace: same rng stream and
  // same values as sampling full chips, without the hold-path evaluations
  // and per-chip allocations this loop never reads.
  timing::SampleWorkspace ws;
  for (std::size_t c = 0; c < chips; ++c) {
    required.push_back(problem.model().sample_required_period(rng, ws));
  }
  return stats::quantile(std::move(required), q);
}

}  // namespace effitest::core
