#include "core/configurator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>

namespace effitest::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Aggregated difference-constraint data in picoseconds.
/// Effective bound at relaxation xi:  min(hard, soft + xi).
struct Bound {
  double hard = kInf;
  double soft = kInf;
  [[nodiscard]] double at(double xi) const {
    return std::min(hard, soft + xi);
  }
  void tighten_hard(double v) { hard = std::min(hard, v); }
  void tighten_soft(double v) { soft = std::min(soft, v); }
};

struct DiffProblem {
  std::size_t nb = 0;
  double step = 0.0;
  std::vector<double> r;              // per buffer range start
  int max_step = 0;
  std::map<std::pair<int, int>, Bound> pair_upper;  // x_i - x_j <= bound
  std::vector<Bound> var_upper;       // x_b <= bound
  std::vector<Bound> var_lower_neg;   // -x_b <= bound  (i.e. x_b >= -bound)
  double xi_floor = 0.0;
  bool hard_infeasible = false;

  explicit DiffProblem(const Problem& p) {
    nb = p.num_buffers();
    r.resize(nb);
    step = p.buffers().empty() ? 1.0 : p.buffers()[0].step_size();
    max_step = p.buffers().empty() ? 0 : p.buffers()[0].steps - 1;
    for (std::size_t b = 0; b < nb; ++b) r[b] = p.buffers()[b].r;
    var_upper.resize(nb);
    var_lower_neg.resize(nb);
  }

  /// Add x_i - x_j <= c (buffer indices; -1 side contributes x = 0).
  void add_upper(int i, int j, double c, bool soft) {
    if (i >= 0 && j >= 0) {
      if (i == j) {
        if (soft) {
          if (c < 0.0) xi_floor = std::max(xi_floor, -c);
        } else if (c < 0.0) {
          hard_infeasible = true;
        }
        return;
      }
      Bound& b = pair_upper[{i, j}];
      soft ? b.tighten_soft(c) : b.tighten_hard(c);
    } else if (i >= 0) {
      Bound& b = var_upper[static_cast<std::size_t>(i)];
      soft ? b.tighten_soft(c) : b.tighten_hard(c);
    } else if (j >= 0) {
      Bound& b = var_lower_neg[static_cast<std::size_t>(j)];
      soft ? b.tighten_soft(c) : b.tighten_hard(c);
    } else {
      // Constant constraint 0 <= c.
      if (soft) {
        if (c < 0.0) xi_floor = std::max(xi_floor, -c);
      } else if (c < -1e-12) {
        hard_infeasible = true;
      }
    }
  }
};

constexpr std::int64_t kNoEdge = std::numeric_limits<std::int64_t>::max() / 4;

/// Bellman-Ford feasibility of the step-grid difference system at xi.
/// On success fills `steps` with a feasible integer assignment.
bool solve_at(const DiffProblem& dp, double xi, std::vector<int>& steps) {
  const std::size_t n = dp.nb + 1;  // + ground node (index nb)
  const std::size_t g = dp.nb;
  std::vector<std::vector<std::int64_t>> w(n,
                                           std::vector<std::int64_t>(n, kNoEdge));
  const auto tighten = [&](std::size_t from, std::size_t to, double bound_ps,
                           double offset_ps) {
    // Encodes s_to - s_from <= floor((bound_ps + offset_ps) / step).
    const double v = (bound_ps + offset_ps) / dp.step;
    if (v >= 1e15) return;
    if (v <= -1e15) {
      w[from][to] = -kNoEdge;
      return;
    }
    w[from][to] = std::min(w[from][to],
                           static_cast<std::int64_t>(std::floor(v + 1e-9)));
  };

  for (std::size_t b = 0; b < dp.nb; ++b) {
    // Range: 0 <= s_b <= max_step.
    w[g][b] = dp.max_step;
    w[b][g] = 0;
    const Bound& ub = dp.var_upper[b];
    if (ub.at(xi) < kInf) tighten(g, b, ub.at(xi), -dp.r[b]);
    const Bound& lbn = dp.var_lower_neg[b];
    // -x_b <= c  =>  s_g - s_b <= (c + r_b)/step.
    if (lbn.at(xi) < kInf) tighten(b, g, lbn.at(xi), dp.r[b]);
  }
  for (const auto& [key, bound] : dp.pair_upper) {
    const auto [i, j] = key;
    const double c = bound.at(xi);
    if (c >= kInf) continue;
    // x_i - x_j <= c  =>  s_i - s_j <= (c - r_i + r_j)/step.
    tighten(static_cast<std::size_t>(j), static_cast<std::size_t>(i), c,
            -dp.r[static_cast<std::size_t>(i)] +
                dp.r[static_cast<std::size_t>(j)]);
  }

  // Bellman-Ford from an implicit super-source (all distances start at 0).
  std::vector<std::int64_t> dist(n, 0);
  bool changed = true;
  for (std::size_t round = 0; round < n && changed; ++round) {
    changed = false;
    for (std::size_t from = 0; from < n; ++from) {
      for (std::size_t to = 0; to < n; ++to) {
        const std::int64_t e = w[from][to];
        if (e >= kNoEdge) continue;
        if (e <= -kNoEdge) return false;  // encodes an impossible constraint
        if (dist[from] + e < dist[to]) {
          dist[to] = dist[from] + e;
          changed = true;
        }
      }
    }
  }
  if (changed) return false;  // negative cycle -> infeasible

  steps.assign(dp.nb, 0);
  for (std::size_t b = 0; b < dp.nb; ++b) {
    const std::int64_t s = dist[b] - dist[g];
    if (s < 0 || s > dp.max_step) return false;  // defensive; bounded by edges
    steps[b] = static_cast<int>(s);
  }
  return true;
}

ConfigResult solve_difference(const DiffProblem& dp,
                              std::span<const double> lower,
                              std::span<const double> upper,
                              const ConfigOptions& options) {
  ConfigResult out;
  if (dp.hard_infeasible) return out;

  std::vector<int> steps;
  if (solve_at(dp, dp.xi_floor, steps)) {
    out.feasible = true;
    out.steps = std::move(steps);
    out.xi = dp.xi_floor;
    return out;
  }
  // Find a feasible upper end for the bisection.
  double span = 1.0;
  for (std::size_t p = 0; p < lower.size(); ++p) {
    span = std::max(span, upper[p] - lower[p]);
  }
  double hi = dp.xi_floor + span + dp.step;
  if (!solve_at(dp, hi, steps)) {
    // One more relaxation attempt before declaring the chip unconfigurable:
    // soft constraints are dominated by hard ones beyond xi = span, so this
    // is genuinely infeasible.
    return out;
  }
  double lo = dp.xi_floor;
  while (hi - lo > options.xi_tolerance_ps) {
    const double mid = 0.5 * (lo + hi);
    if (solve_at(dp, mid, steps)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (!solve_at(dp, hi, steps)) return out;
  out.feasible = true;
  out.steps = std::move(steps);
  out.xi = hi;
  return out;
}

ConfigResult solve_milp(const Problem& problem, double td,
                        std::span<const double> lower,
                        std::span<const double> upper,
                        std::span<const HoldConstraintX> hold,
                        const ConfigOptions& options) {
  lp::Model model;
  const std::size_t nb = problem.num_buffers();
  std::vector<int> s_var(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    s_var[b] = model.add_integer(
        0.0, static_cast<double>(problem.buffers()[b].steps - 1), 0.0,
        "s" + std::to_string(b));
  }
  double span = 1.0;
  for (std::size_t p = 0; p < lower.size(); ++p) {
    span = std::max(span, upper[p] - lower[p]);
  }
  const int xi_var = model.add_continuous(0.0, 2.0 * span + 10.0, 1.0, "xi");

  const auto x_terms = [&](int buf, double sign, std::vector<lp::Term>& terms,
                           double& constant) {
    if (buf < 0) return;
    const auto& b = problem.buffers()[static_cast<std::size_t>(buf)];
    constant += sign * b.r;
    terms.push_back({s_var[static_cast<std::size_t>(buf)], sign * b.step_size()});
  };

  for (std::size_t p = 0; p < lower.size(); ++p) {
    const int dp_var = model.add_continuous(lower[p], upper[p], 0.0,
                                            "D" + std::to_string(p));
    // (16): D' + x_i - x_j <= td.
    std::vector<lp::Term> c{{dp_var, 1.0}};
    double constant = 0.0;
    x_terms(problem.src_buffer(p), +1.0, c, constant);
    x_terms(problem.dst_buffer(p), -1.0, c, constant);
    model.add_constraint(std::move(c), lp::Sense::kLessEqual, td - constant);
    // (17): xi >= u - D'.
    model.add_constraint({{xi_var, 1.0}, {dp_var, 1.0}},
                         lp::Sense::kGreaterEqual, upper[p]);
  }
  // (21): hold bounds.
  for (const HoldConstraintX& h : hold) {
    std::vector<lp::Term> c;
    double constant = 0.0;
    x_terms(h.src_buf, +1.0, c, constant);
    x_terms(h.dst_buf, -1.0, c, constant);
    model.add_constraint(std::move(c), lp::Sense::kGreaterEqual,
                         h.lambda - constant);
  }

  const lp::Solution sol = lp::solve(model, options.lp);
  ConfigResult out;
  if (!sol.feasible()) return out;
  out.feasible = true;
  out.xi = sol.values[static_cast<std::size_t>(xi_var)];
  out.steps.resize(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    out.steps[b] = static_cast<int>(
        std::lround(sol.values[static_cast<std::size_t>(s_var[b])]));
  }
  return out;
}

}  // namespace

ConfigResult configure_buffers(const Problem& problem, double designated_period,
                               std::span<const double> lower,
                               std::span<const double> upper,
                               std::span<const HoldConstraintX> hold,
                               const ConfigOptions& options) {
  const std::size_t np = problem.model().num_pairs();
  if (lower.size() != np || upper.size() != np) {
    throw std::invalid_argument("configure_buffers: bounds size mismatch");
  }
  // Uniform step grids are required for the difference-constraint solver;
  // the Problem factory guarantees this, but fall back to the MILP if a
  // caller built heterogeneous buffers.
  bool uniform = true;
  for (std::size_t b = 1; b < problem.num_buffers(); ++b) {
    if (std::abs(problem.buffers()[b].step_size() -
                 problem.buffers()[0].step_size()) > 1e-9) {
      uniform = false;
      break;
    }
  }
  if (options.method == ConfigOptions::Method::kMilp || !uniform) {
    return solve_milp(problem, designated_period, lower, upper, hold, options);
  }

  DiffProblem dp(problem);
  for (std::size_t p = 0; p < np; ++p) {
    const int i = problem.src_buffer(p);
    const int j = problem.dst_buffer(p);
    // Hard: x_i - x_j <= td - l (keeps D' >= l feasible).
    dp.add_upper(i, j, designated_period - lower[p], /*soft=*/false);
    // Soft: x_i - x_j <= td - u + xi.
    dp.add_upper(i, j, designated_period - upper[p], /*soft=*/true);
  }
  for (const HoldConstraintX& h : hold) {
    // x_i - x_j >= lambda  =>  x_j - x_i <= -lambda.
    dp.add_upper(h.dst_buf, h.src_buf, -h.lambda, /*soft=*/false);
  }
  return solve_difference(dp, lower, upper, options);
}

ConfigResult configure_ideal(const Problem& problem, double designated_period,
                             const timing::Chip& chip,
                             const ConfigOptions& options) {
  const timing::CircuitModel& model = problem.model();
  const std::size_t np = model.num_pairs();
  const double h = model.hold_time();
  // Perfect measurement: l = u = true delay; hold bounds from true margins.
  std::map<std::pair<int, int>, double> hold_merged;
  for (std::size_t p = 0; p < np; ++p) {
    const int i = problem.src_buffer(p);
    const int j = problem.dst_buffer(p);
    const double margin = h - chip.min_delay[p];
    const auto key = std::make_pair(i, j);
    const auto it = hold_merged.find(key);
    if (it == hold_merged.end()) {
      hold_merged.emplace(key, margin);
    } else {
      it->second = std::max(it->second, margin);
    }
  }
  std::vector<HoldConstraintX> hold;
  for (const auto& [key, lam] : hold_merged) {
    hold.push_back(HoldConstraintX{key.first, key.second, lam});
  }
  return configure_buffers(problem, designated_period, chip.max_delay,
                           chip.max_delay, hold, options);
}

}  // namespace effitest::core
