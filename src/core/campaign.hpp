#pragma once
// Multi-circuit experiment campaigns on the shared parallel runtime.
//
// A campaign is a flat list of (circuit, designated-period) jobs — the shape
// of Table 1 (every circuit at the T1 convention) and Table 2 (every circuit
// at the T1/T2 quantiles). Circuits are provisioned through a
// scenario::CircuitCatalog (the eight paper benchmarks by default), so
// `.bench`-imported, scaled and inline-generated circuits sweep alongside
// paper ones. The runner:
//
//  * fans distinct circuits out across the shared thread pool (each circuit
//    is resolved through the catalog's memoized cache, so it is generated,
//    modeled and prepared exactly once — per process, not just per run);
//  * runs same-circuit jobs sequentially against the reused T_d-independent
//    FlowArtifacts (the Table-2 pattern), so an 8-circuit x 2-period sweep
//    costs 8 offline preparations, not 16;
//  * lets the per-chip loops inside each flow draw from the same pool, so
//    one invocation saturates all cores even when circuits outnumber —
//    or are outnumbered by — the workers.
//
// Every job is seeded from CampaignOptions::flow.seed exactly as a direct
// run_flow call would be, and all fan-out goes through
// parallel::deterministic_for, so campaign results are bit-identical for any
// thread count (job wall-clock fields excepted).

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/flow.hpp"

namespace effitest::scenario {
class CircuitCatalog;
}  // namespace effitest::scenario

namespace effitest::obs {
class StructuredLog;
}  // namespace effitest::obs

namespace effitest::core {

/// What one campaign job computes.
enum class JobKind {
  /// The paper's Monte-Carlo flow (run_flow): tester iterations + yields.
  kFlow,
  /// Analytic post-tuning SSTA (analytic::analyze_tuned_period): tuned /
  /// untuned required-period distributions and analytic yields — orders of
  /// magnitude cheaper per circuit, no per-chip sampling.
  kAnalytic,
};

/// "flow" / "analytic" (scenario specs, checkpoints, CLI --modes).
[[nodiscard]] const char* job_kind_name(JobKind kind);
/// Inverse of job_kind_name; throws std::invalid_argument on anything else.
[[nodiscard]] JobKind job_kind_from(const std::string& name);

/// One flow invocation of a campaign.
struct CampaignJob {
  /// Catalog name of the circuit (a paper benchmark name under the default
  /// catalog; any registered name under CampaignOptions::catalog).
  std::string circuit;
  /// Explicit designated period T_d (ps). <= 0 defers to `quantile`; when
  /// that is unset too, the flow's T1 convention applies (median untuned
  /// required period, 50% no-buffer yield).
  double designated_period = 0.0;
  /// Untuned required-period quantile to calibrate T_d from (0.5 = T1,
  /// 0.8413 = T2); < 0 disables. Calibration reseeds from the campaign seed
  /// the same way the CLI and Table-2 bench always have
  /// (seed ^ core::kQuantileCalibrationSeedXor).
  double quantile = -1.0;
  /// What this job computes. Analytic jobs share the circuit group's
  /// prepared model (the engine runs once per circuit — its result is
  /// T_d-independent) and calibrate T_d exactly like flow jobs, so the two
  /// kinds' yields compare at identical designated periods.
  JobKind kind = JobKind::kFlow;
};

struct CampaignJobResult {
  CampaignJob job;
  /// Flow metrics; ns/ng are filled in from the generated netlist.
  FlowMetrics metrics;
  /// Wall time of this job — T_d calibration included, circuit
  /// construction excluded (non-deterministic; everything else in the
  /// result is thread-invariant).
  double seconds = 0.0;
  /// True when `metrics` is valid: the job ran this invocation or was
  /// injected from a checkpoint (CampaignOptions::completed). False only
  /// for jobs left pending by CampaignOptions::max_jobs.
  bool completed = false;
};

struct CampaignResult {
  std::vector<CampaignJobResult> jobs;  ///< in input order
  double total_seconds = 0.0;           ///< campaign wall time

  /// Jobs with valid metrics (run or resumed).
  [[nodiscard]] std::size_t completed_jobs() const {
    std::size_t n = 0;
    for (const CampaignJobResult& j : jobs) n += j.completed ? 1 : 0;
    return n;
  }
};

struct CampaignOptions {
  /// Base flow options applied to every job (chips, seed, ...).
  /// designated_period is overridden per job; flow.threads of 0 inherits
  /// `threads` below (the same 0-inherits rule as grouping/hold inside the
  /// flow), so setting one knob configures the whole campaign.
  FlowOptions flow{};
  /// Circuit-level fan-out; 0 = shared-pool width. Same-circuit jobs always
  /// run sequentially (they share the prepared artifacts).
  std::size_t threads = 0;
  /// ModelOptions::random_inflation for the built circuit models (Fig. 7);
  /// part of the catalog's memoization key.
  double random_inflation = 1.0;
  /// Monte-Carlo dies for quantile calibration of jobs with `quantile` set.
  std::size_t calibration_chips = 2000;
  /// Circuit registry jobs resolve against; null = the process-wide shared
  /// paper catalog (scenario::CircuitCatalog::shared_paper()).
  std::shared_ptr<const scenario::CircuitCatalog> catalog;
  /// Feed each circuit's logic-masking exclusions
  /// (PreparedCircuit::exclusions) into BatchingOptions::exclusions. Off by
  /// default: the historical campaign path never applied them, and golden
  /// paper metrics are pinned without them.
  bool use_exclusions = false;

  // --- checkpoint/resume hooks (io/checkpoint_json.hpp wires these) -------

  /// Already-completed job results keyed by the index into the jobs vector
  /// passed to run() (a resumed checkpoint). These jobs are not re-run:
  /// their results are copied into the output verbatim (the job fields must
  /// match the submitted jobs — validated up front). Because every job is
  /// independently seeded and a fresh prepare is bit-identical to reused
  /// artifacts, skipping any subset leaves the remaining jobs' results
  /// unchanged — a resumed campaign equals the uninterrupted one bit for
  /// bit (wall-clock fields excepted).
  std::vector<std::pair<std::size_t, CampaignJobResult>> completed;
  /// Called once per newly finished job (resumed jobs excluded) with its
  /// jobs-vector index and result. Calls are serialized by the runner (one
  /// at a time, any thread), so a checkpoint writer needs no extra locking.
  std::function<void(std::size_t, const CampaignJobResult&)> on_job_complete;
  /// Run at most this many pending jobs, chosen in input order (0 = all).
  /// The deterministic "kill at job boundary k" knob: the campaign stops
  /// cleanly with the remaining jobs marked not-completed, ready to resume.
  std::size_t max_jobs = 0;
  /// Structured event log: one `campaign`/`job_complete` event per newly
  /// finished job (serialized with on_job_complete), or nullptr for none.
  /// Purely observational — results are bit-identical with or without it.
  obs::StructuredLog* log = nullptr;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Run all jobs. Circuits fan out across the pool; within a circuit, jobs
  /// run in input order and every job after the first reuses the first
  /// job's FlowArtifacts.
  [[nodiscard]] CampaignResult run(const std::vector<CampaignJob>& jobs) const;

  /// Cross product: every circuit at every quantile for every job kind,
  /// circuit-major (so the runner groups them into one preparation per
  /// circuit). An empty quantile list yields one default-convention job per
  /// circuit and kind; an empty kind list means flow only.
  [[nodiscard]] static std::vector<CampaignJob> cross(
      const std::vector<std::string>& circuits,
      const std::vector<double>& quantiles,
      const std::vector<JobKind>& kinds = {JobKind::kFlow});

 private:
  CampaignOptions options_;
};

}  // namespace effitest::core
