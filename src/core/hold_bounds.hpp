#pragma once
// Tuning bounds due to hold-time constraints (paper §3.5, eqs. 19-21).
//
// Buffers are never tested against hold violations; instead a lower bound
// lambda_ij on x_i - x_j is derived offline so that a target yield Y (0.99)
// of chips satisfies every short-path hold constraint
//   x_i - x_j >= h_j - d_ij(true)
// The hold margins h_j - d_ij are sampled M times from the statistical model;
// the bound set { lambda_ij } must cover at least Y*M complete samples while
// the sum of all lambda (the freedom taken from the buffers) is minimized.
//
// Two solvers:
//  * kGreedyDiscard — start from full coverage (lambda = per-pair max) and
//    greedily discard the (1-Y)*M samples whose removal shrinks sum(lambda)
//    most. Scales to M = thousands.
//  * kExactMilp — the paper's indicator formulation (eqs. 19-20) solved by
//    the in-house branch & bound; practical for small M, used as the oracle
//    in tests.

#include <cstdint>
#include <vector>

#include "core/alignment.hpp"
#include "core/problem.hpp"
#include "lp/solver.hpp"
#include "stats/rng.hpp"

namespace effitest::core {

struct HoldBoundOptions {
  double yield = 0.99;          ///< Y of eq. 20
  std::size_t samples = 1000;   ///< M
  enum class Method : std::uint8_t { kGreedyDiscard, kExactMilp };
  Method method = Method::kGreedyDiscard;
  lp::SolveOptions lp{};
  /// Worker threads for margin sampling. Each sample draws from its own
  /// seed-derived stream (parallel::index_seed), so the bounds are
  /// bit-identical for any value. 0 = shared-pool width; inside the flow, 0
  /// inherits FlowOptions::threads.
  std::size_t threads = 0;
};

/// Sampled hold margins of the buffer-exposed monitored pairs.
struct HoldMarginSamples {
  /// Monitored pair indices with at least one buffered endpoint.
  std::vector<std::size_t> exposed;
  /// delta[k][e] = h - d_min of pair exposed[e] on sampled chip k.
  std::vector<std::vector<double>> delta;
};

/// Sample M = options.samples chips and collect their hold margins. Runs on
/// the shared pool (options.threads workers); sample k draws from its own
/// stream seeded parallel::index_seed(base, k) where `base` is one draw
/// from `rng`, so the result is bit-identical for any worker count.
[[nodiscard]] HoldMarginSamples sample_hold_margins(
    const Problem& problem, stats::Rng& rng,
    const HoldBoundOptions& options = {});

/// Compute hold lower bounds for every monitored pair that touches at least
/// one buffer (pairs without buffers have fixed skew 0 and cannot be
/// constrained). Bounds are merged per (src_buf, dst_buf) combination with
/// the max lambda, and bounds that cannot bind within the buffer ranges are
/// pruned. The result plugs directly into the §3.3 and §3.4 optimizations.
[[nodiscard]] std::vector<HoldConstraintX> compute_hold_bounds(
    const Problem& problem, stats::Rng& rng,
    const HoldBoundOptions& options = {});

/// Exposed for testing: given margin samples `delta[k][pair]`, select
/// ceil(Y*M) samples to cover and return per-pair lambda = max over covered
/// samples. Greedy scenario-discard version.
[[nodiscard]] std::vector<double> greedy_discard_bounds(
    const std::vector<std::vector<double>>& delta, double yield);

/// Exact MILP version of the same selection (eqs. 19-20).
[[nodiscard]] std::vector<double> exact_milp_bounds(
    const std::vector<std::vector<double>>& delta, double yield,
    const lp::SolveOptions& options = {});

}  // namespace effitest::core
