#include "core/alignment.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

namespace effitest::core {

namespace {

/// Buffer value for a (possibly absent) buffer index under `steps`.
double x_of(const Problem& problem, std::span<const int> steps, int buf) {
  if (buf < 0) return 0.0;
  return problem.buffers()[static_cast<std::size_t>(buf)].value(
      steps[static_cast<std::size_t>(buf)]);
}

double objective_of(const AlignmentInstance& inst, double period,
                    std::span<const int> steps) {
  double acc = 0.0;
  for (const AlignmentEntry& e : inst.entries) {
    const double shifted = e.center + x_of(*inst.problem, steps, e.src_buf) -
                           x_of(*inst.problem, steps, e.dst_buf);
    acc += e.weight * std::abs(period - shifted);
  }
  return acc;
}

bool hold_ok(const AlignmentInstance& inst, std::span<const int> steps) {
  for (const HoldConstraintX& h : inst.hold) {
    const double skew = x_of(*inst.problem, steps, h.src_buf) -
                        x_of(*inst.problem, steps, h.dst_buf);
    if (skew < h.lambda - 1e-9) return false;
  }
  return true;
}

/// Sorted static point set with prefix sums: evaluates sum(w |T - m|) and
/// proposes weighted-median candidates in O(log n).
class StaticPoints {
 public:
  void build(std::vector<std::pair<double, double>> pts) {
    std::sort(pts.begin(), pts.end());
    m_.resize(pts.size());
    prefix_w_.resize(pts.size() + 1);
    prefix_wm_.resize(pts.size() + 1);
    prefix_w_[0] = 0.0;
    prefix_wm_[0] = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      m_[i] = pts[i].first;
      prefix_w_[i + 1] = prefix_w_[i] + pts[i].second;
      prefix_wm_[i + 1] = prefix_wm_[i] + pts[i].second * pts[i].first;
    }
  }

  [[nodiscard]] double total_weight() const {
    return prefix_w_.empty() ? 0.0 : prefix_w_.back();
  }

  /// sum over static points of w * |T - m|.
  [[nodiscard]] double objective(double t) const {
    const std::size_t k = static_cast<std::size_t>(
        std::upper_bound(m_.begin(), m_.end(), t) - m_.begin());
    const double left = t * prefix_w_[k] - prefix_wm_[k];
    const double right = (prefix_wm_.back() - prefix_wm_[k]) -
                         t * (prefix_w_.back() - prefix_w_[k]);
    return left + right;
  }

  /// Static point whose cumulative weight first reaches `target`.
  [[nodiscard]] double point_at_mass(double target) const {
    if (m_.empty()) return 0.0;
    const std::size_t k = static_cast<std::size_t>(
        std::lower_bound(prefix_w_.begin() + 1, prefix_w_.end(), target) -
        (prefix_w_.begin() + 1));
    return m_[std::min(k, m_.size() - 1)];
  }

  [[nodiscard]] bool empty() const { return m_.empty(); }

 private:
  std::vector<double> m_;
  std::vector<double> prefix_w_;
  std::vector<double> prefix_wm_;
};

AlignmentResult solve_coordinate_descent(const AlignmentInstance& inst) {
  const Problem& problem = *inst.problem;
  AlignmentResult out;
  out.steps = inst.current_steps;
  out.feasible = hold_ok(inst, out.steps);

  // Buffers that may move: those referenced by an entry.
  std::set<int> involved_set;
  if (inst.allow_buffer_moves) {
    for (const AlignmentEntry& e : inst.entries) {
      if (e.src_buf >= 0) involved_set.insert(e.src_buf);
      if (e.dst_buf >= 0) involved_set.insert(e.dst_buf);
    }
  }
  const std::vector<int> involved(involved_set.begin(), involved_set.end());

  // Entries / hold bounds touching each movable buffer, precomputed once.
  // In a legal batch a buffer touches at most two entries (its FF appears
  // once as source and once as sink), which is what makes the prefix-sum
  // scan below cheap. Moving buffer b cannot change the state of hold
  // bounds that do not reference b, so only those are rechecked per step.
  std::vector<std::vector<std::size_t>> dyn_of(involved.size());
  std::vector<std::vector<std::size_t>> hold_of(involved.size());
  for (std::size_t v = 0; v < involved.size(); ++v) {
    const int b = involved[v];
    for (std::size_t i = 0; i < inst.entries.size(); ++i) {
      if (inst.entries[i].src_buf == b || inst.entries[i].dst_buf == b) {
        dyn_of[v].push_back(i);
      }
    }
    for (std::size_t h = 0; h < inst.hold.size(); ++h) {
      if (inst.hold[h].src_buf == b || inst.hold[h].dst_buf == b) {
        hold_of[v].push_back(h);
      }
    }
  }
  const auto hold_ok_for = [&](std::span<const std::size_t> idx,
                               std::span<const int> steps) {
    for (std::size_t h : idx) {
      const HoldConstraintX& hc = inst.hold[h];
      const double skew = x_of(problem, steps, hc.src_buf) -
                          x_of(problem, steps, hc.dst_buf);
      if (skew < hc.lambda - 1e-9) return false;
    }
    return true;
  };

  const auto shifted = [&](const AlignmentEntry& e, std::span<const int> steps) {
    return e.center + x_of(problem, steps, e.src_buf) -
           x_of(problem, steps, e.dst_buf);
  };

  // Best (T, objective) for the point multiset (static via prefix sums,
  // dynamic explicit). The L1 optimum sits on one of the points; candidates
  // are the dynamic points plus the static mass-crossings for every possible
  // split of the dynamic weight.
  const auto best_period = [&](const StaticPoints& stat,
                               std::span<const std::pair<double, double>> dyn) {
    double dyn_w = 0.0;
    for (const auto& [m, w] : dyn) dyn_w += w;
    const double half = 0.5 * (stat.total_weight() + dyn_w);
    std::vector<double> candidates;
    for (const auto& [m, w] : dyn) candidates.push_back(m);
    if (!stat.empty()) {
      double left_dyn = 0.0;
      candidates.push_back(stat.point_at_mass(half));
      for (const auto& [m, w] : dyn) {
        left_dyn += w;
        candidates.push_back(stat.point_at_mass(half - left_dyn));
      }
    }
    double best_t = candidates.empty() ? 0.0 : candidates.front();
    double best_obj = std::numeric_limits<double>::infinity();
    for (double t : candidates) {
      double obj = stat.objective(t);
      for (const auto& [m, w] : dyn) obj += w * std::abs(t - m);
      if (obj < best_obj) {
        best_obj = obj;
        best_t = t;
      }
    }
    return std::make_pair(best_t, best_obj);
  };

  {
    // Initial (T, objective) with everything static.
    StaticPoints all;
    std::vector<std::pair<double, double>> pts;
    pts.reserve(inst.entries.size());
    for (const AlignmentEntry& e : inst.entries) {
      pts.emplace_back(shifted(e, out.steps), e.weight);
    }
    all.build(std::move(pts));
    const auto [t, obj] = best_period(all, {});
    out.period = t;
    out.objective = obj;
  }
  double best = out.objective;

  for (int round = 0; round < 32; ++round) {
    bool changed = false;
    for (std::size_t v = 0; v < involved.size(); ++v) {
      const int b = involved[v];
      const auto bi = static_cast<std::size_t>(b);
      const TunableBuffer& buf = problem.buffers()[bi];
      const std::vector<std::size_t>& dyn_idx = dyn_of[v];

      // Static part: every entry not touching b, at the current steps.
      StaticPoints stat;
      {
        std::vector<std::pair<double, double>> pts;
        pts.reserve(inst.entries.size());
        for (std::size_t i = 0; i < inst.entries.size(); ++i) {
          if (std::find(dyn_idx.begin(), dyn_idx.end(), i) != dyn_idx.end()) {
            continue;
          }
          pts.emplace_back(shifted(inst.entries[i], out.steps),
                           inst.entries[i].weight);
        }
        stat.build(std::move(pts));
      }

      const int saved = out.steps[bi];
      int best_step = saved;
      double best_t = out.period;
      std::vector<std::pair<double, double>> dyn(dyn_idx.size());
      for (int k = 0; k < buf.steps; ++k) {
        if (k == saved) continue;
        out.steps[bi] = k;
        if (!hold_ok_for(hold_of[v], out.steps)) continue;
        for (std::size_t d = 0; d < dyn_idx.size(); ++d) {
          dyn[d] = {shifted(inst.entries[dyn_idx[d]], out.steps),
                    inst.entries[dyn_idx[d]].weight};
        }
        const auto [t, obj] = best_period(stat, dyn);
        if (obj < best - 1e-12) {
          best = obj;
          best_step = k;
          best_t = t;
        }
      }
      out.steps[bi] = best_step;
      if (best_step != saved) {
        out.period = best_t;
        changed = true;
      }
    }
    if (!changed) break;
  }
  out.objective = best;
  out.feasible = hold_ok(inst, out.steps);
  return out;
}

/// Shared MILP scaffolding: builds variables T and s_b, returns via the
/// callback the linear expression terms of (T - shifted_center_p) for each
/// entry, then solves and extracts the assignment.
AlignmentResult solve_milp(const AlignmentInstance& inst, bool big_m,
                           const lp::SolveOptions& options) {
  const Problem& problem = *inst.problem;
  lp::Model model;

  // Clock period variable. Delay centers are positive in practice; give T a
  // generous box so the LP relaxation stays bounded.
  double center_span = 1.0;
  for (const AlignmentEntry& e : inst.entries) {
    center_span = std::max(center_span, std::abs(e.center));
  }
  double tau_max = 0.0;
  for (const auto& b : problem.buffers()) tau_max = std::max(tau_max, b.tau);
  const double t_hi = 2.0 * center_span + 2.0 * tau_max + 1.0;
  const int var_t = model.add_continuous(-t_hi, t_hi, 0.0, "T");

  // Step variables for involved buffers; frozen buffers contribute constants.
  std::set<int> involved_set;
  if (inst.allow_buffer_moves) {
    for (const AlignmentEntry& e : inst.entries) {
      if (e.src_buf >= 0) involved_set.insert(e.src_buf);
      if (e.dst_buf >= 0) involved_set.insert(e.dst_buf);
    }
  }
  std::vector<int> step_var(problem.num_buffers(), -1);
  for (int b : involved_set) {
    const auto& buf = problem.buffers()[static_cast<std::size_t>(b)];
    step_var[static_cast<std::size_t>(b)] = model.add_integer(
        0.0, static_cast<double>(buf.steps - 1), 0.0, "s" + std::to_string(b));
  }

  // x_b as (constant, optional step term).
  const auto x_terms = [&](int buf, double sign, std::vector<lp::Term>& terms,
                           double& constant) {
    if (buf < 0) return;
    const auto bi = static_cast<std::size_t>(buf);
    const auto& bspec = problem.buffers()[bi];
    if (step_var[bi] >= 0) {
      constant += sign * bspec.r;
      terms.push_back({step_var[bi], sign * bspec.step_size()});
    } else {
      constant += sign * bspec.value(inst.current_steps[bi]);
    }
  };

  const double big = 4.0 * (center_span + tau_max + 1.0);
  std::vector<int> eta_vars;
  eta_vars.reserve(inst.entries.size());
  for (std::size_t p = 0; p < inst.entries.size(); ++p) {
    const AlignmentEntry& e = inst.entries[p];
    const int eta =
        model.add_continuous(0.0, lp::kInf, e.weight, "eta" + std::to_string(p));
    eta_vars.push_back(eta);

    // diff_p = T - (center + x_src - x_dst): expressed as terms + constant.
    std::vector<lp::Term> diff{{var_t, 1.0}};
    double constant = -e.center;
    x_terms(e.src_buf, -1.0, diff, constant);
    x_terms(e.dst_buf, +1.0, diff, constant);
    // `diff` terms + constant == diff_p.

    if (!big_m) {
      // Compact exact form: eta >= diff, eta >= -diff.
      std::vector<lp::Term> c1 = diff;
      c1.push_back({eta, -1.0});
      model.add_constraint(std::move(c1), lp::Sense::kLessEqual, -constant);
      std::vector<lp::Term> c2;
      for (const lp::Term& t : diff) c2.push_back({t.var, -t.coeff});
      c2.push_back({eta, -1.0});
      model.add_constraint(std::move(c2), lp::Sense::kLessEqual, constant);
    } else {
      // Paper's eqs. (8)-(13) with indicator binaries z^p, z^n.
      const int zp = model.add_binary(0.0, "zp" + std::to_string(p));
      const int zn = model.add_binary(0.0, "zn" + std::to_string(p));
      // (8):  diff <= M zp
      {
        std::vector<lp::Term> c = diff;
        c.push_back({zp, -big});
        model.add_constraint(std::move(c), lp::Sense::kLessEqual, -constant);
      }
      // (9):  diff - eta <= M (1 - zp)
      {
        std::vector<lp::Term> c = diff;
        c.push_back({eta, -1.0});
        c.push_back({zp, big});
        model.add_constraint(std::move(c), lp::Sense::kLessEqual,
                             -constant + big);
      }
      // (10): -diff + eta <= M (1 - zp)
      {
        std::vector<lp::Term> c;
        for (const lp::Term& t : diff) c.push_back({t.var, -t.coeff});
        c.push_back({eta, 1.0});
        c.push_back({zp, big});
        model.add_constraint(std::move(c), lp::Sense::kLessEqual,
                             constant + big);
      }
      // (11): -diff <= M zn
      {
        std::vector<lp::Term> c;
        for (const lp::Term& t : diff) c.push_back({t.var, -t.coeff});
        c.push_back({zn, -big});
        model.add_constraint(std::move(c), lp::Sense::kLessEqual, constant);
      }
      // (12): -diff - eta <= M (1 - zn)
      {
        std::vector<lp::Term> c;
        for (const lp::Term& t : diff) c.push_back({t.var, -t.coeff});
        c.push_back({eta, -1.0});
        c.push_back({zn, big});
        model.add_constraint(std::move(c), lp::Sense::kLessEqual,
                             constant + big);
      }
      // (13): diff + eta <= M (1 - zn)
      {
        std::vector<lp::Term> c = diff;
        c.push_back({eta, 1.0});
        c.push_back({zn, big});
        model.add_constraint(std::move(c), lp::Sense::kLessEqual,
                             -constant + big);
      }
    }
  }

  // Hold bounds (eq. 21): x_i - x_j >= lambda.
  for (const HoldConstraintX& h : inst.hold) {
    std::vector<lp::Term> terms;
    double constant = 0.0;
    x_terms(h.src_buf, +1.0, terms, constant);
    x_terms(h.dst_buf, -1.0, terms, constant);
    model.add_constraint(std::move(terms), lp::Sense::kGreaterEqual,
                         h.lambda - constant);
  }

  const lp::Solution sol = lp::solve(model, options);
  AlignmentResult out;
  out.steps = inst.current_steps;
  if (!sol.feasible()) {
    out.feasible = false;
    // Fall back to the current state with a median period.
    out.period = inst.entries.empty() ? 0.0 : inst.entries.front().center;
    out.objective = objective_of(inst, out.period, out.steps);
    return out;
  }
  out.period = sol.values[static_cast<std::size_t>(var_t)];
  for (int b : involved_set) {
    const auto bi = static_cast<std::size_t>(b);
    out.steps[bi] = static_cast<int>(
        std::lround(sol.values[static_cast<std::size_t>(step_var[bi])]));
  }
  out.objective = objective_of(inst, out.period, out.steps);
  out.feasible = hold_ok(inst, out.steps);
  return out;
}

}  // namespace

std::vector<double> middle_out_weights(std::span<const double> centers,
                                       double k0, double kd) {
  const std::size_t n = centers.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return centers[a] < centers[b];
  });
  std::vector<double> weights(n, kd);
  const double mid = (static_cast<double>(n) - 1.0) / 2.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    const double dist = std::abs(static_cast<double>(rank) - mid);
    weights[order[rank]] = std::max(k0 - kd * dist, kd);
  }
  return weights;
}

AlignmentResult solve_alignment(const AlignmentInstance& instance,
                                AlignMethod method,
                                const lp::SolveOptions& lp_options) {
  if (instance.problem == nullptr) {
    throw std::invalid_argument("solve_alignment: missing problem");
  }
  if (instance.entries.empty()) {
    AlignmentResult out;
    out.steps = instance.current_steps;
    return out;
  }
  if (instance.current_steps.size() != instance.problem->num_buffers()) {
    throw std::invalid_argument("solve_alignment: bad current_steps size");
  }
  switch (method) {
    case AlignMethod::kCoordinateDescent:
      return solve_coordinate_descent(instance);
    case AlignMethod::kMilpCompact:
      return solve_milp(instance, /*big_m=*/false, lp_options);
    case AlignMethod::kMilpBigM:
      return solve_milp(instance, /*big_m=*/true, lp_options);
  }
  throw std::logic_error("solve_alignment: unknown method");
}

}  // namespace effitest::core
