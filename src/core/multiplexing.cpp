#include "core/multiplexing.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace effitest::core {

namespace {

struct EndpointIndex {
  std::unordered_map<int, int> left;   // src FF -> node id
  std::unordered_map<int, int> right;  // dst FF -> node id
  std::vector<int> src_node;           // per path position
  std::vector<int> dst_node;

  EndpointIndex(const Problem& problem, std::span<const std::size_t> paths) {
    const auto& pairs = problem.model().pairs();
    src_node.reserve(paths.size());
    dst_node.reserve(paths.size());
    for (std::size_t p : paths) {
      const auto& pr = pairs[p];
      src_node.push_back(static_cast<int>(
          left.try_emplace(pr.src_ff, static_cast<int>(left.size())).first->second));
      dst_node.push_back(static_cast<int>(
          right.try_emplace(pr.dst_ff, static_cast<int>(right.size())).first->second));
    }
  }
};

[[nodiscard]] bool excluded_together(
    const std::vector<std::pair<std::size_t, std::size_t>>& exclusions,
    std::size_t a, std::size_t b) {
  for (const auto& [x, y] : exclusions) {
    if ((x == a && y == b) || (x == b && y == a)) return true;
  }
  return false;
}

std::vector<Batch> greedy_batches(const Problem& problem,
                                  std::span<const std::size_t> paths,
                                  const BatchingOptions& options) {
  const auto& pairs = problem.model().pairs();
  std::vector<Batch> batches;
  std::vector<std::unordered_set<int>> used_src;
  std::vector<std::unordered_set<int>> used_dst;
  for (std::size_t p : paths) {
    bool placed = false;
    for (std::size_t b = 0; b < batches.size() && !placed; ++b) {
      if (used_src[b].contains(pairs[p].src_ff) ||
          used_dst[b].contains(pairs[p].dst_ff)) {
        continue;
      }
      bool blocked = false;
      for (std::size_t q : batches[b].paths) {
        if (excluded_together(options.exclusions, p, q)) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      batches[b].paths.push_back(p);
      used_src[b].insert(pairs[p].src_ff);
      used_dst[b].insert(pairs[p].dst_ff);
      placed = true;
    }
    if (!placed) {
      batches.push_back(Batch{{p}});
      used_src.push_back({pairs[p].src_ff});
      used_dst.push_back({pairs[p].dst_ff});
    }
  }
  return batches;
}

/// Optimal Delta-coloring of the bipartite multigraph (König): every edge is
/// colored with one of Delta colors via alternating-chain recoloring; batches
/// are the color classes.
std::vector<Batch> coloring_batches(const Problem& problem,
                                    std::span<const std::size_t> paths) {
  const EndpointIndex idx(problem, paths);
  const std::size_t ne = paths.size();
  std::vector<int> degree_left(idx.left.size(), 0);
  std::vector<int> degree_right(idx.right.size(), 0);
  for (std::size_t e = 0; e < ne; ++e) {
    ++degree_left[static_cast<std::size_t>(idx.src_node[e])];
    ++degree_right[static_cast<std::size_t>(idx.dst_node[e])];
  }
  int delta = 0;
  for (int d : degree_left) delta = std::max(delta, d);
  for (int d : degree_right) delta = std::max(delta, d);
  if (delta == 0) return {};

  const auto dl = static_cast<std::size_t>(delta);
  // at_left[u * delta + c] = edge index colored c at left node u (or -1).
  std::vector<int> at_left(idx.left.size() * dl, -1);
  std::vector<int> at_right(idx.right.size() * dl, -1);
  std::vector<int> color(ne, -1);

  const auto free_color = [&](const std::vector<int>& table, int node) {
    for (std::size_t c = 0; c < dl; ++c) {
      if (table[static_cast<std::size_t>(node) * dl + c] < 0) {
        return static_cast<int>(c);
      }
    }
    throw std::logic_error("edge coloring: no free color (degree > delta?)");
  };

  for (std::size_t e = 0; e < ne; ++e) {
    const int u = idx.src_node[e];
    const int v = idx.dst_node[e];
    const int a = free_color(at_left, u);
    const int b = free_color(at_right, v);
    if (a != b) {
      // Flip the (a,b)-alternating chain starting at v with color a. The
      // chain cannot reach u (König argument), so a becomes free at both.
      std::vector<int> chain;
      int side_right = 1;  // current node side: 1 = right, 0 = left
      int node = v;
      int want = a;
      while (true) {
        const int f = side_right
                          ? at_right[static_cast<std::size_t>(node) * dl +
                                     static_cast<std::size_t>(want)]
                          : at_left[static_cast<std::size_t>(node) * dl +
                                    static_cast<std::size_t>(want)];
        if (f < 0) break;
        chain.push_back(f);
        node = side_right ? idx.src_node[static_cast<std::size_t>(f)]
                          : idx.dst_node[static_cast<std::size_t>(f)];
        side_right ^= 1;
        want = (want == a) ? b : a;
      }
      // Clear old colors, then re-add swapped.
      for (int f : chain) {
        const auto fe = static_cast<std::size_t>(f);
        at_left[static_cast<std::size_t>(idx.src_node[fe]) * dl +
                static_cast<std::size_t>(color[fe])] = -1;
        at_right[static_cast<std::size_t>(idx.dst_node[fe]) * dl +
                 static_cast<std::size_t>(color[fe])] = -1;
      }
      for (int f : chain) {
        const auto fe = static_cast<std::size_t>(f);
        color[fe] = (color[fe] == a) ? b : a;
        at_left[static_cast<std::size_t>(idx.src_node[fe]) * dl +
                static_cast<std::size_t>(color[fe])] = f;
        at_right[static_cast<std::size_t>(idx.dst_node[fe]) * dl +
                 static_cast<std::size_t>(color[fe])] = f;
      }
    }
    color[e] = a;
    at_left[static_cast<std::size_t>(u) * dl + static_cast<std::size_t>(a)] =
        static_cast<int>(e);
    at_right[static_cast<std::size_t>(v) * dl + static_cast<std::size_t>(a)] =
        static_cast<int>(e);
  }

  std::vector<Batch> batches(dl);
  for (std::size_t e = 0; e < ne; ++e) {
    batches[static_cast<std::size_t>(color[e])].paths.push_back(paths[e]);
  }
  batches.erase(std::remove_if(batches.begin(), batches.end(),
                               [](const Batch& b) { return b.paths.empty(); }),
                batches.end());
  return batches;
}

}  // namespace

std::vector<Batch> build_batches(const Problem& problem,
                                 std::span<const std::size_t> paths,
                                 const BatchingOptions& options) {
  if (paths.empty()) return {};
  if (!options.optimal_coloring || !options.exclusions.empty()) {
    return greedy_batches(problem, paths, options);
  }
  return coloring_batches(problem, paths);
}

std::size_t batch_lower_bound(const Problem& problem,
                              std::span<const std::size_t> paths) {
  const auto& pairs = problem.model().pairs();
  std::unordered_map<int, std::size_t> out_mult;
  std::unordered_map<int, std::size_t> in_mult;
  std::size_t bound = 0;
  for (std::size_t p : paths) {
    bound = std::max(bound, ++out_mult[pairs[p].src_ff]);
    bound = std::max(bound, ++in_mult[pairs[p].dst_ff]);
  }
  return bound;
}

bool batch_is_legal(const Problem& problem, const Batch& batch,
                    const BatchingOptions& options) {
  const auto& pairs = problem.model().pairs();
  std::unordered_set<int> src;
  std::unordered_set<int> dst;
  for (std::size_t i = 0; i < batch.paths.size(); ++i) {
    const std::size_t p = batch.paths[i];
    if (!src.insert(pairs[p].src_ff).second) return false;
    if (!dst.insert(pairs[p].dst_ff).second) return false;
    for (std::size_t j = i + 1; j < batch.paths.size(); ++j) {
      if (excluded_together(options.exclusions, p, batch.paths[j])) return false;
    }
  }
  return true;
}

std::vector<std::size_t> fill_empty_slots(const Problem& problem,
                                          std::vector<Batch>& batches,
                                          std::span<const std::size_t> candidates,
                                          const BatchingOptions& options,
                                          std::span<const double> centers) {
  std::vector<std::size_t> inserted;
  if (batches.empty()) return inserted;
  const auto& pairs = problem.model().pairs();
  std::size_t target = 0;
  for (const Batch& b : batches) target = std::max(target, b.paths.size());

  const auto batch_center = [&](const Batch& b) {
    double acc = 0.0;
    for (std::size_t q : b.paths) acc += centers[q];
    return acc / static_cast<double>(b.paths.size());
  };

  std::unordered_set<std::size_t> used;
  for (std::size_t cand : candidates) {
    if (used.contains(cand)) continue;
    Batch* best = nullptr;
    double best_dist = 0.0;
    for (Batch& b : batches) {
      if (b.paths.size() >= target) continue;
      bool conflict = false;
      for (std::size_t q : b.paths) {
        if (pairs[q].src_ff == pairs[cand].src_ff ||
            pairs[q].dst_ff == pairs[cand].dst_ff ||
            excluded_together(options.exclusions, cand, q)) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      if (centers.empty()) {
        best = &b;
        break;  // first fit
      }
      const double dist = std::abs(batch_center(b) - centers[cand]);
      if (best == nullptr || dist < best_dist) {
        best = &b;
        best_dist = dist;
      }
    }
    if (best != nullptr) {
      best->paths.push_back(cand);
      used.insert(cand);
      inserted.push_back(cand);
    }
  }
  return inserted;
}

}  // namespace effitest::core
