#pragma once
// Pass/fail evaluation of configured chips and yield estimation.
//
// A chip passes at designated period T_d under buffer values x when
//  * every monitored pair meets setup:  D_ij(true) + x_i - x_j <= T_d,
//  * every monitored pair meets hold:   x_i - x_j >= h_j - d_ij(true),
//  * every promoted background pair meets setup (their skew is fixed 0).
// This is the "separate pass/fail test after the buffers are configured"
// the paper assumes (§3, ref. [8]).

#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.hpp"
#include "timing/model.hpp"

namespace effitest::core {

/// Buffer delay values (ps) from a step assignment.
[[nodiscard]] std::vector<double> buffer_values(const Problem& problem,
                                                std::span<const int> steps);

/// Full pass/fail check under explicit buffer values (ps).
[[nodiscard]] bool chip_passes(const Problem& problem,
                               const timing::Chip& chip,
                               std::span<const double> x,
                               double designated_period);

/// Pass/fail with all buffers at exactly zero (circuit without tuning).
[[nodiscard]] bool chip_passes_untuned(const Problem& problem,
                                       const timing::Chip& chip,
                                       double designated_period);

/// The clock period this chip would need with all buffers at zero
/// (max true delay over monitored and promoted background pairs).
[[nodiscard]] double untuned_required_period(const Problem& problem,
                                             const timing::Chip& chip);

/// Seed offset for T_d quantile calibration: every surface that calibrates
/// a designated period from a master seed (CLI `run --quantile`, the
/// campaign runner, benches) seeds its calibration stream
/// `Rng(seed ^ kQuantileCalibrationSeedXor)`, so they all agree on T_d for
/// the same master seed.
inline constexpr std::uint64_t kQuantileCalibrationSeedXor = 0x7157;

/// Monte-Carlo estimate of the q-quantile of the untuned required period —
/// used to pick the paper's T1 (q = 0.5, 50% no-buffer yield) and T2
/// (q = 0.8413, the mu + sigma point).
[[nodiscard]] double period_quantile(const Problem& problem, double q,
                                     std::size_t chips, stats::Rng& rng);

/// Analytic (block-based SSTA, Clark's max) estimate of the untuned yield
/// P(required period <= designated_period). Cross-checks the Monte-Carlo
/// estimators; exact up to the Gaussian-max approximation.
[[nodiscard]] double untuned_yield_estimate(const Problem& problem,
                                            double designated_period);

/// Analytic counterpart of period_quantile (no sampling).
[[nodiscard]] double period_quantile_estimate(const Problem& problem,
                                              double q);

}  // namespace effitest::core
