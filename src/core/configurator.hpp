#pragma once
// Buffer configuration with delay estimation (paper §3.4, eqs. 15-18).
//
// Given per-path delay ranges [l_ij, u_ij] (measured or predicted) and hold
// bounds lambda_ij, find discrete buffer values x and assumed delays D' with
//   T_d >= D'_ij + x_i - x_j,  l <= D' <= u,  xi >= u - D'
// minimizing xi: the chip is configured assuming delays as close to their
// upper bounds as possible, which maximizes the chance of passing the final
// pass/fail test without rejecting chips through over-conservatism.
//
// Eliminating D' analytically (optimal D' = min(u, T_d - x_i + x_j)) turns
// the problem into a system of difference constraints over the buffer step
// grid plus a scalar search on xi:
//   hard:  x_i - x_j <= T_d - l_ij      (D' >= l must stay feasible)
//   soft:  x_i - x_j <= T_d - u_ij + xi
//   hold:  x_i - x_j >= lambda_ij
//   range: r <= x <= r + tau, x on the step grid.
// Feasibility for fixed xi is Bellman-Ford negative-cycle detection — the
// same machinery as classic clock-skew scheduling (Fishburn) — and xi is
// minimized by bisection. All constraint constants are floored onto the step
// grid, which is the conservative direction, and integer arithmetic makes
// the discrete solution exact.
//
// A literal MILP of eqs. 15-18 (+21) is provided for cross-validation.

#include <cstdint>
#include <span>
#include <vector>

#include "core/alignment.hpp"
#include "core/problem.hpp"
#include "lp/solver.hpp"
#include "timing/model.hpp"

namespace effitest::core {

struct ConfigOptions {
  enum class Method : std::uint8_t { kDifferenceConstraints, kMilp };
  Method method = Method::kDifferenceConstraints;
  double xi_tolerance_ps = 0.01;  ///< bisection resolution on xi
  lp::SolveOptions lp{};
};

struct ConfigResult {
  bool feasible = false;
  std::vector<int> steps;  ///< discrete buffer assignment
  double xi = 0.0;         ///< achieved max distance from upper bounds
};

/// Solve eqs. 15-18 (+ hold eq. 21) for the given designated period and
/// delay ranges (indexed by monitored-pair id).
[[nodiscard]] ConfigResult configure_buffers(
    const Problem& problem, double designated_period,
    std::span<const double> lower, std::span<const double> upper,
    std::span<const HoldConstraintX> hold, const ConfigOptions& options = {});

/// Configuration under perfect measurement: l = u = true delay and hold
/// bounds taken from the chip's true short-path delays. This is the
/// reference for column y_i of Table 2 ("ideal delay measurement").
[[nodiscard]] ConfigResult configure_ideal(const Problem& problem,
                                           double designated_period,
                                           const timing::Chip& chip,
                                           const ConfigOptions& options = {});

}  // namespace effitest::core
