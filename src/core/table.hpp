#pragma once
// Minimal aligned-column table printer for the benchmark harness — the bench
// binaries print the same rows the paper's tables report.

#include <iosfwd>
#include <string>
#include <vector>

namespace effitest::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Fixed-precision number formatting.
  [[nodiscard]] static std::string num(double v, int precision);
  [[nodiscard]] static std::string num(std::size_t v);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace effitest::core
