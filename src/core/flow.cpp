#include "core/flow.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "core/tuner_service.hpp"
#include "parallel/deterministic_for.hpp"
#include "stats/distributions.hpp"

namespace effitest::core {

double calibrated_epsilon(const Problem& problem) {
  std::vector<double> sigmas = problem.model().max_sigmas();
  if (sigmas.empty()) return 0.5;
  const double med = stats::quantile(std::move(sigmas), 0.5);
  // Path-wise bisection of a 6-sigma range then takes ceil(log2(6s/eps))
  // ~ 8.5 iterations, the regime of Table 1's t'v column.
  return 6.0 * med / std::pow(2.0, 8.5);
}

FlowArtifacts prepare_flow(const Problem& problem, const FlowOptions& options,
                           stats::Rng& rng) {
  const timing::CircuitModel& model = problem.model();
  const std::size_t np = model.num_pairs();
  FlowArtifacts art;

  // Grouping/hold thread knobs of 0 inherit the flow-level setting (which
  // may itself be 0 = pool width). Purely a scheduling choice: both stages
  // produce bit-identical results for any worker count.
  GroupingOptions grouping = options.grouping;
  if (grouping.threads == 0) grouping.threads = options.threads;
  HoldBoundOptions hold = options.hold;
  if (hold.threads == 0) hold.threads = options.threads;

  const std::vector<double> means = model.max_means();
  const std::vector<double> sigmas = model.max_sigmas();
  art.prior_lower.resize(np);
  art.prior_upper.resize(np);
  for (std::size_t p = 0; p < np; ++p) {
    art.prior_lower[p] = means[p] - 3.0 * sigmas[p];
    art.prior_upper[p] = means[p] + 3.0 * sigmas[p];
  }

  // Batch composition matters enormously for alignment: when co-batched
  // paths are highly correlated, their pass/fail outcomes track each other
  // for many consecutive bisections, so one clock period keeps cutting ALL
  // of their ranges. Paths are therefore handed to the (order-respecting,
  // greedy first-fit) batch builder grouped by correlation cluster, sorted
  // by mean within a cluster.
  BatchingOptions batching = options.batching;
  batching.optimal_coloring = false;  // first-fit preserves cluster adjacency
  const auto cluster_major = [&](const std::vector<std::vector<std::size_t>>&
                                     clusters) {
    std::vector<std::size_t> out;
    for (const auto& cl : clusters) {
      std::vector<std::size_t> sorted = cl;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [&](std::size_t a, std::size_t b) {
                         return means[a] < means[b];
                       });
      out.insert(out.end(), sorted.begin(), sorted.end());
    }
    return out;
  };

  if (options.use_prediction) {
    const linalg::Matrix cov = model.max_covariance(options.threads);
    art.selection = select_paths(cov, grouping);
    art.tested = art.selection.tested;
    std::vector<std::vector<std::size_t>> tested_by_group;
    for (const PathGroup& g : art.selection.groups) {
      tested_by_group.push_back(g.selected);
    }
    art.batches =
        build_batches(problem, cluster_major(tested_by_group), batching);

    // The chip-independent prediction gain (Cholesky of Sigma_t + W +
    // posterior sigmas) is a function of (cov, tested) only: compute it
    // once here and hand the same shared object to slot filling and the
    // final predictor. When slot filling inserts nothing, the measured set
    // is unchanged and the factorization is NOT redone — and every chip,
    // reused flow and same-circuit campaign job predicts through this one
    // object (sharing, not copying; see DESIGN.md §2/§9).
    std::shared_ptr<const stats::PredictionGain> gain;
    if (options.fill_slots && art.tested.size() < np) {
      // Rank untested paths by posterior sigma (eq. 5 — measurement
      // independent) and pour the worst-predicted ones into empty slots.
      gain = stats::PredictionGain::compute(cov, art.tested, /*jitter=*/1e-9);
      const auto& predicted = gain->predicted;
      const auto& psigma = gain->posterior_sigma;
      std::vector<std::size_t> order(predicted.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return psigma[a] > psigma[b];
      });
      std::vector<std::size_t> candidates;
      candidates.reserve(order.size());
      for (std::size_t k : order) candidates.push_back(predicted[k]);
      const std::vector<std::size_t> inserted = fill_empty_slots(
          problem, art.batches, candidates, batching, means);
      if (!inserted.empty()) {
        art.tested.insert(art.tested.end(), inserted.begin(), inserted.end());
        std::sort(art.tested.begin(), art.tested.end());
        gain.reset();  // measured set changed; refactorize below
      }
    }
    if (art.tested.size() < np) {
      if (gain == nullptr) {
        gain =
            stats::PredictionGain::compute(cov, art.tested, /*jitter=*/1e-9);
      }
      art.predictor.emplace(std::move(gain), means);
    }
  } else {
    // No statistical prediction (Fig. 8 modes): every path is tested, but
    // batches are still composed correlation-cluster-major.
    art.tested.resize(np);
    std::iota(art.tested.begin(), art.tested.end(), std::size_t{0});
    const linalg::Matrix cov = model.max_covariance(options.threads);
    art.batches = build_batches(
        problem, cluster_major(correlation_clusters(cov, grouping)),
        batching);
  }

  art.hold = compute_hold_bounds(problem, rng, hold);
  return art;
}

FlowResult run_flow(const Problem& problem, const FlowOptions& options,
                    const FlowArtifacts* reuse) {
  // The raw-pointer reuse form keeps its historical value-copy semantics;
  // the shared_ptr overload below aliases instead.
  return run_flow(problem, options,
                  reuse != nullptr
                      ? std::make_shared<const FlowArtifacts>(*reuse)
                      : std::shared_ptr<const FlowArtifacts>());
}

FlowResult run_flow(const Problem& problem, const FlowOptions& options,
                    std::shared_ptr<const FlowArtifacts> reuse) {
  FlowResult out;
  FlowMetrics& m = out.metrics;
  const timing::CircuitModel& model = problem.model();

  // --- Offline phase: T_d resolution + artifact preparation, owned by the
  //     service (seed-fork order unchanged — DESIGN.md §4/§10). -----------
  const TunerService service(problem, options, std::move(reuse));
  const double td = service.designated_period();
  m.designated_period = td;
  m.epsilon_ps = service.test_options().epsilon_ps;
  m.tp_seconds = service.prepare_seconds();
  const FlowArtifacts& art = service.artifacts();

  // --- Static counts (ns/ng are netlist facts; benches fill them in). -----
  m.np = model.num_pairs();
  m.npt = art.tested.size();
  m.nb = problem.num_buffers();
  m.num_groups = art.selection.groups.size();
  m.num_batches = art.batches.size();
  m.num_selected = art.selection.tested.size();

  // Path-wise baseline iterations are deterministic: bisection of the prior
  // 6-sigma range down to epsilon for each of the np paths.
  std::size_t pathwise_total = 0;
  for (std::size_t p = 0; p < m.np; ++p) {
    pathwise_total += pathwise_iterations(
        art.prior_lower[p], art.prior_upper[p], m.epsilon_ps);
  }
  m.ta_pathwise = static_cast<double>(pathwise_total);
  m.tv_pathwise = m.np > 0 ? m.ta_pathwise / static_cast<double>(m.np) : 0.0;

  // --- Monte-Carlo tester loop: a thin driver over the TunerService API.
  //     (parallel::deterministic_reduce; chip c draws from its own stream
  //     seeded index_seed(chip_seed_base, c), and tallies fold in a chunk
  //     layout fixed by the chip count alone, so any thread count gives
  //     bit-identical results). -------------------------------------------
  struct Tally {
    std::size_t iter_sum = 0;
    std::size_t forced = 0;
    std::size_t infeasible = 0;
    std::size_t pass_proposed = 0;
    std::size_t pass_ideal = 0;
    std::size_t pass_untuned = 0;
    double tt_sum = 0.0;
    double ts_sum = 0.0;
  };
  const std::uint64_t chip_seed_base = service.monte_carlo_seed_base();
  const SessionOptions session_options{options.evaluate_yield};

  const auto process_chip = [&](std::size_t c, stats::Rng& chip_rng,
                                Tally& tally) {
    (void)c;
    thread_local timing::SampleWorkspace sample_ws;
    const timing::Chip chip = model.sample_chip(chip_rng, sample_ws);
    SimulatedChip tester(problem, chip);

    TuningSession session = service.begin_chip(session_options);
    session.drive(tester);
    const ChipReport& report = session.report();

    tally.iter_sum += report.test.iterations;
    tally.forced += report.test.forced;
    tally.tt_sum += report.test.align_seconds;
    tally.ts_sum += report.config_seconds;

    if (!report.config.feasible) ++tally.infeasible;
    if (options.evaluate_yield) {
      if (report.passed.value_or(false)) ++tally.pass_proposed;
      const ConfigResult ideal =
          configure_ideal(problem, td, chip, options.config);
      if (ideal.feasible &&
          chip_passes(problem, chip, buffer_values(problem, ideal.steps), td)) {
        ++tally.pass_ideal;
      }
      if (chip_passes_untuned(problem, chip, td)) ++tally.pass_untuned;
    }
  };

  parallel::ForOptions fopts;
  fopts.threads = options.threads;  // resolve_workers clamps by chip count
  const Tally total = parallel::deterministic_reduce<Tally>(
      options.chips, fopts, chip_seed_base, process_chip,
      [](Tally& a, const Tally& b) {
        a.iter_sum += b.iter_sum;
        a.forced += b.forced;
        a.infeasible += b.infeasible;
        a.pass_proposed += b.pass_proposed;
        a.pass_ideal += b.pass_ideal;
        a.pass_untuned += b.pass_untuned;
        a.tt_sum += b.tt_sum;
        a.ts_sum += b.ts_sum;
      });
  const std::size_t iter_sum = total.iter_sum;
  m.forced_resolutions = total.forced;
  m.infeasible_configs = total.infeasible;
  const std::size_t pass_proposed = total.pass_proposed;
  const std::size_t pass_ideal = total.pass_ideal;
  const std::size_t pass_untuned = total.pass_untuned;
  const double tt_sum = total.tt_sum;
  const double ts_sum = total.ts_sum;

  const auto n = static_cast<double>(options.chips);
  m.ta = static_cast<double>(iter_sum) / n;
  m.tv = m.npt > 0 ? m.ta / static_cast<double>(m.npt) : 0.0;
  m.ra = m.ta_pathwise > 0.0 ? (m.ta_pathwise - m.ta) / m.ta_pathwise * 100.0
                             : 0.0;
  m.rv = m.tv_pathwise > 0.0 ? (m.tv_pathwise - m.tv) / m.tv_pathwise * 100.0
                             : 0.0;
  m.tt_seconds_per_chip = tt_sum / n;
  m.ts_seconds_per_chip = ts_sum / n;
  if (options.evaluate_yield) {
    m.yield_no_buffer = static_cast<double>(pass_untuned) / n;
    m.yield_ideal = static_cast<double>(pass_ideal) / n;
    m.yield_proposed = static_cast<double>(pass_proposed) / n;
    m.yield_drop = m.yield_ideal - m.yield_proposed;
  }
  out.artifacts = service.shared_artifacts();  // shared, no copy
  return out;
}

}  // namespace effitest::core
