#include "core/test_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace effitest::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

std::size_t pathwise_iterations(double lower, double upper, double epsilon) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("pathwise_iterations: epsilon must be > 0");
  }
  std::size_t iters = 0;
  double width = upper - lower;
  while (width >= epsilon) {
    width *= 0.5;
    ++iters;
  }
  return iters;
}

TestRunResult run_delay_test(const Problem& problem, const timing::Chip& chip,
                             const std::vector<Batch>& batches,
                             std::span<const double> prior_lower,
                             std::span<const double> prior_upper,
                             std::span<const HoldConstraintX> hold,
                             const TestOptions& options) {
  const std::size_t np = problem.model().num_pairs();
  if (prior_lower.size() != np || prior_upper.size() != np) {
    throw std::invalid_argument("run_delay_test: prior bounds size mismatch");
  }
  TestRunResult out;
  out.lower.assign(prior_lower.begin(), prior_lower.end());
  out.upper.assign(prior_upper.begin(), prior_upper.end());
  out.tested.assign(np, false);
  out.final_steps = problem.neutral_steps();

  for (const Batch& batch : batches) {
    std::vector<std::size_t> active = batch.paths;
    std::size_t batch_iters = 0;
    while (!active.empty()) {
      if (batch_iters >= options.max_iterations_per_batch) {
        out.forced += active.size();
        break;
      }
      // Build the alignment instance over the still-unresolved paths.
      AlignmentInstance inst;
      inst.problem = &problem;
      inst.current_steps = out.final_steps;
      inst.allow_buffer_moves = options.align_with_buffers;
      inst.hold.assign(hold.begin(), hold.end());
      std::vector<double> centers;
      centers.reserve(active.size());
      for (std::size_t p : active) {
        centers.push_back(0.5 * (out.lower[p] + out.upper[p]));
      }
      const std::vector<double> weights =
          middle_out_weights(centers, options.k0, options.kd);
      for (std::size_t i = 0; i < active.size(); ++i) {
        const std::size_t p = active[i];
        inst.entries.push_back(AlignmentEntry{centers[i], weights[i],
                                              problem.src_buffer(p),
                                              problem.dst_buffer(p)});
      }

      const auto t0 = Clock::now();
      const AlignmentResult aligned =
          solve_alignment(inst, options.method, options.lp);
      out.align_seconds += seconds_since(t0);
      out.final_steps = aligned.steps;

      // One tester iteration: apply (T, x) and capture pass/fail per sink.
      ++out.iterations;
      ++batch_iters;
      std::vector<std::size_t> still_active;
      for (std::size_t p : active) {
        const double skew = problem.pair_skew(p, out.final_steps);
        // The tested constraint is D + skew <= T, so the information gained
        // about D itself is the bound T - skew (Procedure 2 lines 9/11).
        const double effective = aligned.period - skew;
        const bool pass =
            chip.max_delay[p] + skew <= aligned.period + 1e-12;
        if (pass) {
          out.upper[p] = std::min(out.upper[p], effective);
        } else {
          out.lower[p] = std::max(out.lower[p], effective);
        }
        // Test escapes (true delay outside the prior range) can cross the
        // bounds; clamp conservatively. A pinched range (bounds crossed or
        // met) carries no width left to bisect, so the pair resolves
        // regardless of epsilon — otherwise a non-positive epsilon would
        // keep it active until the safety stop force-resolves it after
        // max_iterations_per_batch wasted tester steps.
        if (out.upper[p] < out.lower[p]) out.lower[p] = out.upper[p];
        if (out.upper[p] <= out.lower[p] ||
            out.upper[p] - out.lower[p] < options.epsilon_ps) {
          out.tested[p] = true;
        } else {
          still_active.push_back(p);
        }
      }
      active = std::move(still_active);
    }
    for (std::size_t p : active) out.tested[p] = true;  // force-resolved
  }
  return out;
}

TestRunResult run_pathwise_test(const Problem& problem,
                                const timing::Chip& chip,
                                std::span<const double> prior_lower,
                                std::span<const double> prior_upper,
                                const TestOptions& options) {
  const std::size_t np = problem.model().num_pairs();
  TestRunResult out;
  out.lower.assign(prior_lower.begin(), prior_lower.end());
  out.upper.assign(prior_upper.begin(), prior_upper.end());
  out.tested.assign(np, true);
  out.final_steps = problem.neutral_steps();
  for (std::size_t p = 0; p < np; ++p) {
    const double skew = problem.pair_skew(p, out.final_steps);
    while (out.upper[p] - out.lower[p] >= options.epsilon_ps) {
      const double t = 0.5 * (out.lower[p] + out.upper[p]) + skew;
      ++out.iterations;
      if (chip.max_delay[p] + skew <= t + 1e-12) {
        out.upper[p] = t - skew;
      } else {
        out.lower[p] = t - skew;
      }
    }
  }
  return out;
}

}  // namespace effitest::core
