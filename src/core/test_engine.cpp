#include "core/test_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/tuner_service.hpp"

namespace effitest::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

std::size_t pathwise_iterations(double lower, double upper, double epsilon) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("pathwise_iterations: epsilon must be > 0");
  }
  std::size_t iters = 0;
  double width = upper - lower;
  while (width >= epsilon) {
    width *= 0.5;
    ++iters;
  }
  return iters;
}

DelayTestMachine::DelayTestMachine(const Problem& problem,
                                   const std::vector<Batch>& batches,
                                   std::span<const double> prior_lower,
                                   std::span<const double> prior_upper,
                                   std::span<const HoldConstraintX> hold,
                                   const TestOptions& options)
    : problem_(&problem),
      batches_(&batches),
      hold_(hold.begin(), hold.end()),
      options_(options) {
  const std::size_t np = problem.model().num_pairs();
  if (prior_lower.size() != np || prior_upper.size() != np) {
    throw std::invalid_argument(
        "DelayTestMachine: prior bounds size mismatch");
  }
  result_.lower.assign(prior_lower.begin(), prior_lower.end());
  result_.upper.assign(prior_upper.begin(), prior_upper.end());
  result_.tested.assign(np, false);
  result_.final_steps = problem.neutral_steps();
  settle();
}

void DelayTestMachine::settle() {
  for (;;) {
    if (!batch_loaded_) {
      if (batch_idx_ >= batches_->size()) {
        done_ = true;
        return;
      }
      active_ = (*batches_)[batch_idx_].paths;
      batch_iters_ = 0;
      batch_loaded_ = true;
    }
    if (active_.empty()) {
      batch_loaded_ = false;
      ++batch_idx_;
      continue;
    }
    if (batch_iters_ >= options_.max_iterations_per_batch) {
      // Safety stop: everything still unresolved is force-resolved
      // (Procedure 2's escape hatch — identical accounting to the
      // historical loop's break-then-mark).
      result_.forced += active_.size();
      for (std::size_t p : active_) result_.tested[p] = true;
      active_.clear();
      batch_loaded_ = false;
      ++batch_idx_;
      continue;
    }
    return;  // ready to emit a stimulus for `active_`
  }
}

const Stimulus& DelayTestMachine::next_stimulus() {
  if (done_) {
    throw std::logic_error("DelayTestMachine: next_stimulus after done");
  }
  if (stimulus_ready_) return stimulus_;

  // Build the alignment instance over the still-unresolved paths.
  AlignmentInstance inst;
  inst.problem = problem_;
  inst.current_steps = result_.final_steps;
  inst.allow_buffer_moves = options_.align_with_buffers;
  inst.hold = hold_;
  std::vector<double> centers;
  centers.reserve(active_.size());
  for (std::size_t p : active_) {
    centers.push_back(0.5 * (result_.lower[p] + result_.upper[p]));
  }
  const std::vector<double> weights =
      middle_out_weights(centers, options_.k0, options_.kd);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const std::size_t p = active_[i];
    inst.entries.push_back(AlignmentEntry{centers[i], weights[i],
                                          problem_->src_buffer(p),
                                          problem_->dst_buffer(p)});
  }

  const auto t0 = Clock::now();
  const AlignmentResult aligned =
      solve_alignment(inst, options_.method, options_.lp);
  result_.align_seconds += seconds_since(t0);
  result_.final_steps = aligned.steps;

  stimulus_.period = aligned.period;
  stimulus_.steps = aligned.steps;
  stimulus_.armed = active_;
  stimulus_ready_ = true;
  return stimulus_;
}

void DelayTestMachine::record_response(const std::vector<bool>& pass) {
  if (!stimulus_ready_) {
    throw std::logic_error(
        "DelayTestMachine: record_response without next_stimulus");
  }
  if (pass.size() != stimulus_.armed.size()) {
    throw std::invalid_argument(
        "DelayTestMachine: response size does not match armed pair count");
  }
  ++result_.iterations;
  ++batch_iters_;
  std::vector<std::size_t> still_active;
  for (std::size_t i = 0; i < stimulus_.armed.size(); ++i) {
    const std::size_t p = stimulus_.armed[i];
    const double skew = problem_->pair_skew(p, result_.final_steps);
    // The tested constraint is D + skew <= T, so the information gained
    // about D itself is the bound T - skew (Procedure 2 lines 9/11).
    const double effective = stimulus_.period - skew;
    if (pass[i]) {
      result_.upper[p] = std::min(result_.upper[p], effective);
    } else {
      result_.lower[p] = std::max(result_.lower[p], effective);
    }
    // Test escapes (true delay outside the prior range) can cross the
    // bounds; clamp conservatively. A pinched range (bounds crossed or
    // met) carries no width left to bisect, so the pair resolves
    // regardless of epsilon — otherwise a non-positive epsilon would
    // keep it active until the safety stop force-resolves it after
    // max_iterations_per_batch wasted tester steps.
    if (result_.upper[p] < result_.lower[p]) {
      result_.lower[p] = result_.upper[p];
    }
    if (result_.upper[p] <= result_.lower[p] ||
        result_.upper[p] - result_.lower[p] < options_.epsilon_ps) {
      result_.tested[p] = true;
    } else {
      still_active.push_back(p);
    }
  }
  active_ = std::move(still_active);
  stimulus_ready_ = false;
  settle();
}

TestRunResult run_delay_test(const Problem& problem, ChipUnderTest& chip,
                             const std::vector<Batch>& batches,
                             std::span<const double> prior_lower,
                             std::span<const double> prior_upper,
                             std::span<const HoldConstraintX> hold,
                             const TestOptions& options) {
  DelayTestMachine machine(problem, batches, prior_lower, prior_upper, hold,
                           options);
  while (!machine.done()) {
    machine.record_response(chip.apply(machine.next_stimulus()));
  }
  return machine.take_result();
}

TestRunResult run_pathwise_test(const Problem& problem, ChipUnderTest& chip,
                                std::span<const double> prior_lower,
                                std::span<const double> prior_upper,
                                const TestOptions& options) {
  const std::size_t np = problem.model().num_pairs();
  TestRunResult out;
  out.lower.assign(prior_lower.begin(), prior_lower.end());
  out.upper.assign(prior_upper.begin(), prior_upper.end());
  out.tested.assign(np, true);
  out.final_steps = problem.neutral_steps();
  Stimulus stimulus;
  stimulus.steps = out.final_steps;
  for (std::size_t p = 0; p < np; ++p) {
    const double skew = problem.pair_skew(p, out.final_steps);
    stimulus.armed.assign(1, p);
    while (out.upper[p] - out.lower[p] >= options.epsilon_ps) {
      stimulus.period = 0.5 * (out.lower[p] + out.upper[p]) + skew;
      ++out.iterations;
      const std::vector<bool> pass = chip.apply(stimulus);
      if (pass.size() != 1) {
        throw std::invalid_argument(
            "run_pathwise_test: expected a single pass/fail bit");
      }
      if (pass[0]) {
        out.upper[p] = stimulus.period - skew;
      } else {
        out.lower[p] = stimulus.period - skew;
      }
    }
  }
  return out;
}

}  // namespace effitest::core
