#pragma once
// Procedure 2: frequency-stepping delay test with aligned ranges.
//
// The tester applies (T, buffer steps) to the chip under test; a path p_ij
// passes iff  D_ij(true) + x_i - x_j <= T  (setup constraint, eq. 1). Each
// application to a batch is ONE tester iteration regardless of how many
// paths it resolves — that is the entire point of multiplexing and
// alignment. Per path the pass/fail outcome turns T - (x_i - x_j) into a new
// upper or lower delay bound; a path leaves the batch when its range width
// drops below the resolution epsilon.
//
// The engine is inverted around the tester: it never touches simulated die
// state itself. `DelayTestMachine` is the incremental form — it emits one
// `Stimulus` at a time and consumes the pass/fail response, so a physical
// tester (or a streamed protocol, core/tuner_service.hpp) can sit on the
// other side. `run_delay_test`/`run_pathwise_test` drive a `ChipUnderTest`
// through the same machine; wrap a simulated die in `core::SimulatedChip`
// to recover the historical in-process behavior bit for bit.

#include <cstddef>
#include <span>
#include <vector>

#include "core/alignment.hpp"
#include "core/multiplexing.hpp"
#include "core/problem.hpp"

namespace effitest::core {

class ChipUnderTest;  // core/tuner_service.hpp

struct TestOptions {
  double epsilon_ps = 0.5;  ///< stop when upper - lower < epsilon
  double k0 = 1000.0;       ///< middle weight (k0 >> kd, §3.3)
  double kd = 1.0;          ///< per-rank weight decrease
  AlignMethod method = AlignMethod::kCoordinateDescent;
  /// false freezes buffers at their current values during test
  /// (multiplexing-without-alignment, Fig. 8 case 2).
  bool align_with_buffers = true;
  std::size_t max_iterations_per_batch = 2000;  ///< safety stop
  lp::SolveOptions lp{};
};

/// One tester iteration's programming: run the chip at clock period `period`
/// with every buffer programmed to `steps`, and observe pass/fail of the
/// `armed` monitored pairs (in order). An empty `armed` set is the final
/// go/no-go production test: the response is one bit for the whole chip.
struct Stimulus {
  double period = 0.0;
  std::vector<int> steps;          ///< full buffer step assignment
  std::vector<std::size_t> armed;  ///< monitored-pair ids observed
};

struct TestRunResult {
  /// Per monitored pair: measured (tested paths) or prior (others) bounds.
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<bool> tested;     ///< which pairs were actually measured
  std::size_t iterations = 0;   ///< total frequency steps on this chip
  std::size_t forced = 0;       ///< paths force-resolved by the safety stop
  std::vector<int> final_steps; ///< buffer state when the test ended
  double align_seconds = 0.0;   ///< time spent choosing (T, x) — column Tt
};

/// Incremental Procedure 2. The machine owns the per-chip test state
/// (bounds, active set, programmed steps) and exposes it one tester
/// iteration at a time:
///
///   DelayTestMachine m(problem, batches, lo, hi, hold, options);
///   while (!m.done()) m.record_response(tester(m.next_stimulus()));
///   TestRunResult r = m.take_result();
///
/// `next_stimulus()` solves the alignment problem for the current
/// unresolved set (idempotent until the response arrives);
/// `record_response` folds the pass/fail bits into the bounds exactly as
/// the historical in-process loop did, so any driver — in-process
/// simulation, the streaming protocol, a replayed log — produces
/// bit-identical results. `problem` and `batches` must outlive the machine.
class DelayTestMachine {
 public:
  DelayTestMachine(const Problem& problem, const std::vector<Batch>& batches,
                   std::span<const double> prior_lower,
                   std::span<const double> prior_upper,
                   std::span<const HoldConstraintX> hold,
                   const TestOptions& options = {});

  [[nodiscard]] bool done() const { return done_; }

  /// The next tester iteration to apply. Computes (and caches) the aligned
  /// (T, x); valid to call repeatedly until record_response. Requires
  /// !done().
  [[nodiscard]] const Stimulus& next_stimulus();

  /// Pass/fail per armed pair of the last next_stimulus(), in order.
  void record_response(const std::vector<bool>& pass);

  /// The accumulated result; bounds/tested/steps are valid at any point,
  /// iteration counters are final once done().
  [[nodiscard]] const TestRunResult& result() const { return result_; }
  [[nodiscard]] TestRunResult&& take_result() { return std::move(result_); }

 private:
  /// Advance past empty/exhausted batches (force-resolving safety-stop
  /// hits) until a stimulus can be emitted or every batch is finished.
  void settle();

  const Problem* problem_;
  const std::vector<Batch>* batches_;
  std::vector<HoldConstraintX> hold_;
  TestOptions options_;
  TestRunResult result_;
  Stimulus stimulus_;
  std::vector<std::size_t> active_;
  std::size_t batch_idx_ = 0;
  std::size_t batch_iters_ = 0;
  bool batch_loaded_ = false;
  bool stimulus_ready_ = false;
  bool done_ = false;
};

/// Run the aligned delay test on one chip over the given batches.
/// `prior_lower` / `prior_upper` are indexed by monitored-pair id
/// (mu -/+ 3 sigma initially, §3.3). The chip is observed exclusively
/// through the `ChipUnderTest` interface — one `apply` per tester
/// iteration.
[[nodiscard]] TestRunResult run_delay_test(
    const Problem& problem, ChipUnderTest& chip,
    const std::vector<Batch>& batches, std::span<const double> prior_lower,
    std::span<const double> prior_upper,
    std::span<const HoldConstraintX> hold, const TestOptions& options = {});

/// Number of tester iterations for classic path-wise binary search on one
/// path: halving [lower, upper] until the width is below epsilon. This is
/// what refs. [2,6,8,9] assume and what columns t'a / t'v of Table 1 count.
[[nodiscard]] std::size_t pathwise_iterations(double lower, double upper,
                                              double epsilon);

/// Path-wise frequency stepping over all monitored pairs (the comparison
/// baseline): every path is bisected individually, one armed pair per
/// tester iteration, buffers frozen at neutral.
[[nodiscard]] TestRunResult run_pathwise_test(
    const Problem& problem, ChipUnderTest& chip,
    std::span<const double> prior_lower, std::span<const double> prior_upper,
    const TestOptions& options = {});

}  // namespace effitest::core
