#pragma once
// Procedure 2: frequency-stepping delay test with aligned ranges.
//
// The simulated tester applies (T, buffer steps) to the chip under test; a
// path p_ij passes iff  D_ij(true) + x_i - x_j <= T  (setup constraint,
// eq. 1). Each application to a batch is ONE tester iteration regardless of
// how many paths it resolves — that is the entire point of multiplexing and
// alignment. Per path the pass/fail outcome turns T - (x_i - x_j) into a new
// upper or lower delay bound; a path leaves the batch when its range width
// drops below the resolution epsilon.

#include <cstddef>
#include <span>
#include <vector>

#include "core/alignment.hpp"
#include "core/multiplexing.hpp"
#include "core/problem.hpp"
#include "timing/model.hpp"

namespace effitest::core {

struct TestOptions {
  double epsilon_ps = 0.5;  ///< stop when upper - lower < epsilon
  double k0 = 1000.0;       ///< middle weight (k0 >> kd, §3.3)
  double kd = 1.0;          ///< per-rank weight decrease
  AlignMethod method = AlignMethod::kCoordinateDescent;
  /// false freezes buffers at their current values during test
  /// (multiplexing-without-alignment, Fig. 8 case 2).
  bool align_with_buffers = true;
  std::size_t max_iterations_per_batch = 2000;  ///< safety stop
  lp::SolveOptions lp{};
};

struct TestRunResult {
  /// Per monitored pair: measured (tested paths) or prior (others) bounds.
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<bool> tested;     ///< which pairs were actually measured
  std::size_t iterations = 0;   ///< total frequency steps on this chip
  std::size_t forced = 0;       ///< paths force-resolved by the safety stop
  std::vector<int> final_steps; ///< buffer state when the test ended
  double align_seconds = 0.0;   ///< time spent choosing (T, x) — column Tt
};

/// Run the aligned delay test on one chip over the given batches.
/// `prior_lower` / `prior_upper` are indexed by monitored-pair id
/// (mu -/+ 3 sigma initially, §3.3).
[[nodiscard]] TestRunResult run_delay_test(
    const Problem& problem, const timing::Chip& chip,
    const std::vector<Batch>& batches, std::span<const double> prior_lower,
    std::span<const double> prior_upper,
    std::span<const HoldConstraintX> hold, const TestOptions& options = {});

/// Number of tester iterations for classic path-wise binary search on one
/// path: halving [lower, upper] until the width is below epsilon. This is
/// what refs. [2,6,8,9] assume and what columns t'a / t'v of Table 1 count.
[[nodiscard]] std::size_t pathwise_iterations(double lower, double upper,
                                              double epsilon);

/// Simulated path-wise frequency stepping over all monitored pairs (the
/// comparison baseline): every path is bisected individually.
[[nodiscard]] TestRunResult run_pathwise_test(
    const Problem& problem, const timing::Chip& chip,
    std::span<const double> prior_lower, std::span<const double> prior_upper,
    const TestOptions& options = {});

}  // namespace effitest::core
