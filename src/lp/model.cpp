#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace effitest::lp {

int Model::add_variable(double lower, double upper, double objective,
                        VarType type, std::string name) {
  if (lower > upper) {
    throw ModelError("variable '" + name + "': lower bound exceeds upper");
  }
  if (std::isnan(lower) || std::isnan(upper) || std::isnan(objective)) {
    throw ModelError("variable '" + name + "': NaN in definition");
  }
  variables_.push_back({lower, upper, objective, type, std::move(name)});
  return static_cast<int>(variables_.size()) - 1;
}

int Model::add_continuous(double lower, double upper, double objective,
                          std::string name) {
  return add_variable(lower, upper, objective, VarType::kContinuous,
                      std::move(name));
}

int Model::add_integer(double lower, double upper, double objective,
                       std::string name) {
  return add_variable(lower, upper, objective, VarType::kInteger,
                      std::move(name));
}

int Model::add_binary(double objective, std::string name) {
  return add_variable(0.0, 1.0, objective, VarType::kInteger, std::move(name));
}

int Model::add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                          std::string name) {
  if (std::isnan(rhs)) throw ModelError("constraint '" + name + "': NaN rhs");
  // Accumulate duplicate variable references so downstream code can assume
  // each variable appears at most once per row.
  std::map<int, double> acc;
  for (const Term& t : terms) {
    check_var(t.var);
    if (std::isnan(t.coeff)) {
      throw ModelError("constraint '" + name + "': NaN coefficient");
    }
    acc[t.var] += t.coeff;
  }
  std::vector<Term> merged;
  merged.reserve(acc.size());
  for (const auto& [var, coeff] : acc) {
    if (coeff != 0.0) merged.push_back({var, coeff});
  }
  constraints_.push_back({std::move(merged), sense, rhs, std::move(name)});
  return static_cast<int>(constraints_.size()) - 1;
}

void Model::set_objective(int var, double coeff) {
  check_var(var);
  variables_[static_cast<std::size_t>(var)].objective = coeff;
}

void Model::set_bounds(int var, double lower, double upper) {
  check_var(var);
  if (lower > upper) throw ModelError("set_bounds: lower exceeds upper");
  auto& v = variables_[static_cast<std::size_t>(var)];
  v.lower = lower;
  v.upper = upper;
}

const Variable& Model::variable(int idx) const {
  check_var(idx);
  return variables_[static_cast<std::size_t>(idx)];
}

const Constraint& Model::constraint(int idx) const {
  if (idx < 0 || static_cast<std::size_t>(idx) >= constraints_.size()) {
    throw ModelError("constraint index out of range");
  }
  return constraints_[static_cast<std::size_t>(idx)];
}

bool Model::has_integer_variables() const {
  return std::any_of(variables_.begin(), variables_.end(), [](const Variable& v) {
    return v.type == VarType::kInteger;
  });
}

double Model::objective_value(std::span<const double> x) const {
  double acc = 0.0;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    acc += variables_[j].objective * x[j];
  }
  return acc;
}

double Model::max_violation(std::span<const double> x) const {
  double worst = 0.0;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    worst = std::max(worst, variables_[j].lower - x[j]);
    worst = std::max(worst, x[j] - variables_[j].upper);
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * x[static_cast<std::size_t>(t.var)];
    switch (c.sense) {
      case Sense::kLessEqual:
        worst = std::max(worst, lhs - c.rhs);
        break;
      case Sense::kGreaterEqual:
        worst = std::max(worst, c.rhs - lhs);
        break;
      case Sense::kEqual:
        worst = std::max(worst, std::abs(lhs - c.rhs));
        break;
    }
  }
  return worst;
}

void Model::check_var(int idx) const {
  if (idx < 0 || static_cast<std::size_t>(idx) >= variables_.size()) {
    throw ModelError("variable index out of range");
  }
}

}  // namespace effitest::lp
