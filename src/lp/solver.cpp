#include "lp/solver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

namespace effitest::lp {

namespace {

struct BranchState {
  Model model;  // working copy whose bounds are tightened along the DFS
  const SolveOptions* options = nullptr;
  std::vector<int> integer_vars;
  std::optional<Solution> incumbent;
  int nodes = 0;
  int simplex_iterations = 0;
  bool node_limit_hit = false;
};

/// Index (into integer_vars) of the most fractional integer variable, or -1
/// when the assignment is integral.
int most_fractional(const BranchState& st, const std::vector<double>& x) {
  int best = -1;
  double best_frac_dist = st.options->int_tol;
  for (std::size_t k = 0; k < st.integer_vars.size(); ++k) {
    const auto j = static_cast<std::size_t>(st.integer_vars[k]);
    const double v = x[j];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = static_cast<int>(k);
    }
  }
  return best;
}

void offer_incumbent(BranchState& st, const std::vector<double>& x,
                     double objective) {
  if (!st.incumbent || objective < st.incumbent->objective - st.options->gap_tol) {
    Solution s;
    s.status = SolveStatus::kOptimal;
    s.objective = objective;
    s.values = x;
    st.incumbent = std::move(s);
  }
}

/// Fix every integer variable to the rounding of its relaxation value and
/// re-solve the continuous rest; adopt the result as incumbent if feasible.
void fix_and_round(BranchState& st, const std::vector<double>& relax) {
  std::vector<std::pair<double, double>> saved;
  saved.reserve(st.integer_vars.size());
  bool ok = true;
  for (int v : st.integer_vars) {
    const Variable& var = st.model.variable(v);
    saved.emplace_back(var.lower, var.upper);
    double r = std::round(relax[static_cast<std::size_t>(v)]);
    r = std::clamp(r, var.lower, var.upper);
    // Bounds may themselves be fractional: snap inward to integers.
    const double lo = std::ceil(var.lower - st.options->int_tol);
    const double hi = std::floor(var.upper + st.options->int_tol);
    if (lo > hi) {
      ok = false;
      break;
    }
    r = std::clamp(r, lo, hi);
    st.model.set_bounds(v, r, r);
  }
  if (ok) {
    const LpSolution lp = solve_lp(st.model, st.options->simplex);
    st.simplex_iterations += lp.iterations;
    if (lp.status == SolveStatus::kOptimal) {
      offer_incumbent(st, lp.values, lp.objective);
    }
  }
  for (std::size_t k = 0; k < saved.size(); ++k) {
    st.model.set_bounds(st.integer_vars[k], saved[k].first, saved[k].second);
  }
}

void branch_and_bound(BranchState& st) {
  if (st.nodes >= st.options->max_nodes) {
    st.node_limit_hit = true;
    return;
  }
  ++st.nodes;

  const LpSolution lp = solve_lp(st.model, st.options->simplex);
  st.simplex_iterations += lp.iterations;
  if (lp.status != SolveStatus::kOptimal) return;  // infeasible or limit: prune
  if (st.incumbent &&
      lp.objective >= st.incumbent->objective - st.options->gap_tol) {
    return;  // bound
  }

  const int k = most_fractional(st, lp.values);
  if (k < 0) {
    offer_incumbent(st, lp.values, lp.objective);
    return;
  }

  if (st.options->heuristic_period > 0 &&
      (st.nodes == 1 || st.nodes % st.options->heuristic_period == 0)) {
    fix_and_round(st, lp.values);
    if (st.incumbent &&
        lp.objective >= st.incumbent->objective - st.options->gap_tol) {
      return;
    }
  }

  const int var = st.integer_vars[static_cast<std::size_t>(k)];
  const double value = lp.values[static_cast<std::size_t>(var)];
  const Variable& v = st.model.variable(var);
  const double saved_lo = v.lower;
  const double saved_hi = v.upper;
  const double fl = std::floor(value);

  // Explore the branch nearer to the relaxation value first.
  const bool down_first = (value - fl) < 0.5;
  for (int pass = 0; pass < 2; ++pass) {
    const bool down = (pass == 0) == down_first;
    if (down) {
      if (fl < saved_lo - st.options->int_tol) continue;
      st.model.set_bounds(var, saved_lo, std::min(fl, saved_hi));
    } else {
      if (fl + 1.0 > saved_hi + st.options->int_tol) continue;
      st.model.set_bounds(var, std::max(fl + 1.0, saved_lo), saved_hi);
    }
    branch_and_bound(st);
    st.model.set_bounds(var, saved_lo, saved_hi);
    if (st.node_limit_hit) return;
  }
}

}  // namespace

Solution solve(const Model& model, const SolveOptions& options) {
  Solution out;
  if (!model.has_integer_variables()) {
    const LpSolution lp = solve_lp(model, options.simplex);
    out.status = lp.status;
    out.objective = lp.objective;
    out.values = lp.values;
    out.simplex_iterations = lp.iterations;
    out.nodes = 0;
    return out;
  }

  BranchState st;
  st.model = model;
  st.options = &options;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (model.variable(static_cast<int>(j)).type == VarType::kInteger) {
      st.integer_vars.push_back(static_cast<int>(j));
    }
  }
  branch_and_bound(st);

  out.nodes = st.nodes;
  out.simplex_iterations = st.simplex_iterations;
  if (st.incumbent) {
    out.objective = st.incumbent->objective;
    out.values = st.incumbent->values;
    out.status =
        st.node_limit_hit ? SolveStatus::kNodeLimit : SolveStatus::kOptimal;
  } else {
    out.status =
        st.node_limit_hit ? SolveStatus::kNodeLimit : SolveStatus::kInfeasible;
  }
  return out;
}

}  // namespace effitest::lp
