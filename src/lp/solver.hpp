#pragma once
// Mixed-integer solve: branch & bound over the simplex LP relaxation.
//
// Branching is depth-first on the most fractional integer variable with a
// periodic fix-and-round incumbent heuristic; nodes are pruned by bound
// against the incumbent. Together with simplex.hpp this forms the in-house
// replacement for the Gurobi solver used in the paper.

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace effitest::lp {

struct SolveOptions {
  SimplexOptions simplex{};
  int max_nodes = 200000;       ///< branch & bound node limit
  double int_tol = 1e-6;        ///< integrality tolerance
  double gap_tol = 1e-9;        ///< prune when bound >= incumbent - gap_tol
  int heuristic_period = 16;    ///< run fix-and-round every k nodes (0 = off)
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  int simplex_iterations = 0;
  int nodes = 0;

  [[nodiscard]] bool feasible() const {
    return status == SolveStatus::kOptimal ||
           (status == SolveStatus::kNodeLimit && !values.empty()) ||
           (status == SolveStatus::kIterationLimit && !values.empty());
  }
};

/// Solve `model` to optimality: plain simplex when the model has no integer
/// variables, branch & bound otherwise. On kNodeLimit the best incumbent
/// found so far (if any) is returned in `values`.
[[nodiscard]] Solution solve(const Model& model, const SolveOptions& options = {});

}  // namespace effitest::lp
