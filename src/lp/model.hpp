#pragma once
// Linear / mixed-integer linear program model builder.
//
// The paper solves its alignment problem (eqs. 7-14), buffer-configuration
// problem (eqs. 15-18) and hold-bound problem (eqs. 19-20) with Gurobi.
// Gurobi is proprietary, so this module provides the in-house substitute:
// a model container consumed by the bounded two-phase simplex in simplex.hpp
// and the branch & bound driver in solver.hpp.

#include <limits>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace effitest::lp {

/// +infinity convenience constant for unbounded variable sides.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kLessEqual, kEqual, kGreaterEqual };

enum class VarType { kContinuous, kInteger };

/// One linear term `coeff * x[var]`.
struct Term {
  int var = -1;
  double coeff = 0.0;
};

struct Variable {
  double lower = 0.0;
  double upper = kInf;
  double objective = 0.0;
  VarType type = VarType::kContinuous;
  std::string name;
};

struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// A minimization MILP:  min c^T x  s.t.  A x {<=,=,>=} b,  l <= x <= u,
/// x_j integer for marked j.  (Use negated costs to maximize.)
class Model {
 public:
  /// Add a variable; returns its index.
  int add_variable(double lower, double upper, double objective,
                   VarType type = VarType::kContinuous, std::string name = "");

  int add_continuous(double lower, double upper, double objective = 0.0,
                     std::string name = "");
  int add_integer(double lower, double upper, double objective = 0.0,
                  std::string name = "");
  /// Binary {0,1} variable.
  int add_binary(double objective = 0.0, std::string name = "");

  /// Add constraint sum(terms) sense rhs; returns constraint index.
  /// Terms referencing the same variable are accumulated.
  int add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                     std::string name = "");

  void set_objective(int var, double coeff);
  void set_bounds(int var, double lower, double upper);

  [[nodiscard]] std::size_t num_variables() const { return variables_.size(); }
  [[nodiscard]] std::size_t num_constraints() const {
    return constraints_.size();
  }
  [[nodiscard]] const Variable& variable(int idx) const;
  [[nodiscard]] const Constraint& constraint(int idx) const;
  [[nodiscard]] const std::vector<Variable>& variables() const {
    return variables_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }

  [[nodiscard]] bool has_integer_variables() const;

  /// Objective value of an assignment (no feasibility check).
  [[nodiscard]] double objective_value(std::span<const double> x) const;

  /// Largest constraint violation of an assignment (0 when feasible).
  /// Variable bounds are included.
  [[nodiscard]] double max_violation(std::span<const double> x) const;

 private:
  void check_var(int idx) const;

  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace effitest::lp
