#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace effitest::lp {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration_limit";
    case SolveStatus::kNodeLimit: return "node_limit";
  }
  return "unknown";
}

namespace {

// A structural tableau column and how it maps back onto a model variable:
// x[model_var] = shift + mult * y[column] (+ the partner column for free
// variables, which are split into y+ - y-).
struct ColumnMap {
  int model_var = -1;
  double mult = 1.0;
};

struct Row {
  std::vector<double> coeffs;  // over structural columns
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

class Tableau {
 public:
  Tableau(std::vector<Row> rows, std::size_t n_structural,
          const SimplexOptions& options)
      : options_(options), n_structural_(n_structural) {
    // Normalize rhs >= 0.
    for (Row& r : rows) {
      if (r.rhs < 0.0) {
        for (double& c : r.coeffs) c = -c;
        r.rhs = -r.rhs;
        if (r.sense == Sense::kLessEqual) {
          r.sense = Sense::kGreaterEqual;
        } else if (r.sense == Sense::kGreaterEqual) {
          r.sense = Sense::kLessEqual;
        }
      }
    }
    const std::size_t m = rows.size();
    // Column layout: [structural | slacks/surplus | artificials].
    std::size_t n_slack = 0;
    for (const Row& r : rows) {
      if (r.sense != Sense::kEqual) ++n_slack;
    }
    std::size_t n_art = 0;
    for (const Row& r : rows) {
      if (r.sense != Sense::kLessEqual) ++n_art;
    }
    n_total_ = n_structural_ + n_slack + n_art;
    first_artificial_ = n_structural_ + n_slack;

    t_.assign(m, std::vector<double>(n_total_ + 1, 0.0));
    basis_.assign(m, -1);
    banned_.assign(n_total_, false);

    std::size_t slack_at = n_structural_;
    std::size_t art_at = first_artificial_;
    for (std::size_t i = 0; i < m; ++i) {
      auto& row = t_[i];
      for (std::size_t j = 0; j < n_structural_; ++j) row[j] = rows[i].coeffs[j];
      row[n_total_] = rows[i].rhs;
      switch (rows[i].sense) {
        case Sense::kLessEqual:
          row[slack_at] = 1.0;
          basis_[i] = static_cast<int>(slack_at);
          ++slack_at;
          break;
        case Sense::kGreaterEqual:
          row[slack_at] = -1.0;
          ++slack_at;
          row[art_at] = 1.0;
          basis_[i] = static_cast<int>(art_at);
          ++art_at;
          break;
        case Sense::kEqual:
          row[art_at] = 1.0;
          basis_[i] = static_cast<int>(art_at);
          ++art_at;
          break;
      }
    }
    has_artificials_ = n_art > 0;
  }

  [[nodiscard]] bool has_artificials() const { return has_artificials_; }
  [[nodiscard]] std::size_t num_rows() const { return t_.size(); }
  [[nodiscard]] std::size_t num_total_cols() const { return n_total_; }
  [[nodiscard]] int iterations() const { return iterations_; }

  /// Run simplex with the given objective over all tableau columns.
  /// Returns kOptimal / kUnbounded / kIterationLimit.
  SolveStatus minimize(const std::vector<double>& cost) {
    compute_objective_row(cost);
    bool bland = false;
    int stall = 0;
    const int stall_limit =
        4 * static_cast<int>(num_rows() + n_total_) + 64;
    double last_obj = obj_val_;
    while (iterations_ < options_.max_iterations) {
      const int enter = choose_entering(bland);
      if (enter < 0) return SolveStatus::kOptimal;
      const int leave = ratio_test(enter);
      if (leave < 0) return SolveStatus::kUnbounded;
      pivot(static_cast<std::size_t>(leave), static_cast<std::size_t>(enter));
      ++iterations_;
      if (obj_val_ < last_obj - options_.tol) {
        last_obj = obj_val_;
        stall = 0;
      } else if (++stall > stall_limit) {
        bland = true;  // anti-cycling fallback
      }
    }
    return SolveStatus::kIterationLimit;
  }

  [[nodiscard]] double objective_value() const { return obj_val_; }

  /// Value of structural column j in the current basic solution.
  [[nodiscard]] std::vector<double> structural_values() const {
    std::vector<double> y(n_structural_, 0.0);
    for (std::size_t i = 0; i < t_.size(); ++i) {
      const int b = basis_[i];
      if (b >= 0 && static_cast<std::size_t>(b) < n_structural_) {
        y[static_cast<std::size_t>(b)] = t_[i][n_total_];
      }
    }
    return y;
  }

  /// After phase 1: drive artificials out of the basis, drop redundant rows,
  /// and ban artificial columns from ever entering again.
  void retire_artificials() {
    for (std::size_t i = 0; i < t_.size();) {
      const int b = basis_[i];
      if (b < 0 || static_cast<std::size_t>(b) < first_artificial_) {
        ++i;
        continue;
      }
      // Basic artificial (value ~0 after a feasible phase 1): pivot it out on
      // any eligible non-artificial column.
      int pivot_col = -1;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(t_[i][j]) > options_.tol) {
          pivot_col = static_cast<int>(j);
          break;
        }
      }
      if (pivot_col >= 0) {
        pivot(i, static_cast<std::size_t>(pivot_col));
        ++i;
      } else {
        // Redundant row: remove it.
        t_.erase(t_.begin() + static_cast<std::ptrdiff_t>(i));
        basis_.erase(basis_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    for (std::size_t j = first_artificial_; j < n_total_; ++j) {
      banned_[j] = true;
    }
  }

  [[nodiscard]] std::vector<double> phase1_cost() const {
    std::vector<double> c(n_total_, 0.0);
    for (std::size_t j = first_artificial_; j < n_total_; ++j) c[j] = 1.0;
    return c;
  }

 private:
  void compute_objective_row(const std::vector<double>& cost) {
    obj_row_ = cost;
    obj_val_ = 0.0;
    for (std::size_t i = 0; i < t_.size(); ++i) {
      const double cb = cost[static_cast<std::size_t>(basis_[i])];
      if (cb == 0.0) continue;
      const auto& row = t_[i];
      for (std::size_t j = 0; j < n_total_; ++j) obj_row_[j] -= cb * row[j];
      obj_val_ += cb * row[n_total_];
    }
  }

  [[nodiscard]] int choose_entering(bool bland) const {
    if (bland) {
      for (std::size_t j = 0; j < n_total_; ++j) {
        if (!banned_[j] && obj_row_[j] < -options_.tol) {
          return static_cast<int>(j);
        }
      }
      return -1;
    }
    int best = -1;
    double best_val = -options_.tol;
    for (std::size_t j = 0; j < n_total_; ++j) {
      if (!banned_[j] && obj_row_[j] < best_val) {
        best_val = obj_row_[j];
        best = static_cast<int>(j);
      }
    }
    return best;
  }

  [[nodiscard]] int ratio_test(int enter) const {
    int leave = -1;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < t_.size(); ++i) {
      const double a = t_[i][static_cast<std::size_t>(enter)];
      if (a <= options_.tol) continue;
      const double ratio = t_[i][n_total_] / a;
      if (leave < 0 || ratio < best_ratio - options_.tol ||
          (ratio < best_ratio + options_.tol && basis_[i] < basis_[static_cast<std::size_t>(leave)])) {
        best_ratio = ratio;
        leave = static_cast<int>(i);
      }
    }
    return leave;
  }

  void pivot(std::size_t leave, std::size_t enter) {
    auto& prow = t_[leave];
    const double piv = prow[enter];
    for (double& v : prow) v /= piv;
    prow[enter] = 1.0;
    for (std::size_t i = 0; i < t_.size(); ++i) {
      if (i == leave) continue;
      auto& row = t_[i];
      const double f = row[enter];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j <= n_total_; ++j) row[j] -= f * prow[j];
      row[enter] = 0.0;
    }
    const double fo = obj_row_[enter];
    if (fo != 0.0) {
      for (std::size_t j = 0; j < n_total_; ++j) obj_row_[j] -= fo * prow[j];
      obj_row_[enter] = 0.0;
      obj_val_ += fo * prow[n_total_];
    }
    basis_[leave] = static_cast<int>(enter);
  }

  SimplexOptions options_;
  std::size_t n_structural_ = 0;
  std::size_t n_total_ = 0;
  std::size_t first_artificial_ = 0;
  bool has_artificials_ = false;
  std::vector<std::vector<double>> t_;
  std::vector<int> basis_;
  std::vector<bool> banned_;
  std::vector<double> obj_row_;
  double obj_val_ = 0.0;
  int iterations_ = 0;
};

}  // namespace

LpSolution solve_lp(const Model& model, const SimplexOptions& options) {
  const auto& vars = model.variables();
  const std::size_t n = vars.size();

  // --- Variable substitution to y >= 0 columns. -----------------------------
  std::vector<ColumnMap> columns;
  std::vector<double> shift(n, 0.0);
  // first column index of each variable; second column (free split) follows.
  std::vector<int> var_col(n, -1);
  std::vector<bool> var_free(n, false);
  struct UbRow {
    std::size_t col;
    double cap;
  };
  std::vector<UbRow> ub_rows;

  for (std::size_t j = 0; j < n; ++j) {
    const Variable& v = vars[j];
    if (std::isfinite(v.lower)) {
      var_col[j] = static_cast<int>(columns.size());
      shift[j] = v.lower;
      columns.push_back({static_cast<int>(j), 1.0});
      if (std::isfinite(v.upper)) {
        if (v.upper - v.lower > 0.0) {
          ub_rows.push_back({columns.size() - 1, v.upper - v.lower});
        } else {
          // Fixed variable: y <= 0 i.e. y == 0.
          ub_rows.push_back({columns.size() - 1, 0.0});
        }
      }
    } else if (std::isfinite(v.upper)) {
      // x = upper - y, y >= 0.
      var_col[j] = static_cast<int>(columns.size());
      shift[j] = v.upper;
      columns.push_back({static_cast<int>(j), -1.0});
    } else {
      // Free variable: x = y+ - y-.
      var_col[j] = static_cast<int>(columns.size());
      var_free[j] = true;
      columns.push_back({static_cast<int>(j), 1.0});
      columns.push_back({static_cast<int>(j), -1.0});
    }
  }
  const std::size_t n_cols = columns.size();

  // --- Rows. ----------------------------------------------------------------
  std::vector<Row> rows;
  rows.reserve(model.num_constraints() + ub_rows.size());
  for (const Constraint& c : model.constraints()) {
    Row r;
    r.coeffs.assign(n_cols, 0.0);
    double rhs = c.rhs;
    for (const Term& t : c.terms) {
      const auto j = static_cast<std::size_t>(t.var);
      rhs -= t.coeff * shift[j];
      const auto col = static_cast<std::size_t>(var_col[j]);
      r.coeffs[col] += t.coeff * columns[col].mult;
      if (var_free[j]) {
        r.coeffs[col + 1] += t.coeff * columns[col + 1].mult;
      }
    }
    r.sense = c.sense;
    r.rhs = rhs;
    rows.push_back(std::move(r));
  }
  for (const UbRow& u : ub_rows) {
    Row r;
    r.coeffs.assign(n_cols, 0.0);
    r.coeffs[u.col] = 1.0;
    r.sense = Sense::kLessEqual;
    r.rhs = u.cap;
    rows.push_back(std::move(r));
  }

  // --- Costs over structural columns. ---------------------------------------
  Tableau tab(std::move(rows), n_cols, options);
  std::vector<double> cost(tab.num_total_cols(), 0.0);
  for (std::size_t col = 0; col < n_cols; ++col) {
    const ColumnMap& cm = columns[col];
    cost[col] = vars[static_cast<std::size_t>(cm.model_var)].objective * cm.mult;
  }

  LpSolution out;

  if (tab.has_artificials()) {
    const SolveStatus ph1 = tab.minimize(tab.phase1_cost());
    out.iterations = tab.iterations();
    if (ph1 == SolveStatus::kIterationLimit) {
      out.status = SolveStatus::kIterationLimit;
      return out;
    }
    // Phase 1 cannot be unbounded (objective >= 0).
    if (tab.objective_value() > options.feas_tol) {
      out.status = SolveStatus::kInfeasible;
      return out;
    }
    tab.retire_artificials();
  }

  const SolveStatus ph2 = tab.minimize(cost);
  out.iterations = tab.iterations();
  if (ph2 != SolveStatus::kOptimal) {
    out.status = ph2;
    return out;
  }

  // --- Map back to model variables. ------------------------------------------
  const std::vector<double> y = tab.structural_values();
  out.values.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const auto col = static_cast<std::size_t>(var_col[j]);
    double x = shift[j] + columns[col].mult * y[col];
    if (var_free[j]) x += columns[col + 1].mult * y[col + 1];
    out.values[j] = x;
  }
  out.objective = model.objective_value(out.values);
  out.status = SolveStatus::kOptimal;
  return out;
}

}  // namespace effitest::lp
