#pragma once
// Two-phase primal simplex for the LP relaxation of a Model.
//
// The implementation is a dense tableau method with:
//  * general variable bounds handled by substitution (shift / mirror / split),
//  * finite upper bounds added as explicit rows,
//  * phase-1 artificial variables and redundant-row elimination,
//  * Dantzig pricing with automatic fallback to Bland's rule (anti-cycling).
//
// Problem sizes in EffiTest are small (a few hundred rows/columns for the
// alignment ILP relaxations), so a dense tableau is the simplest correct tool.

#include <cstdint>
#include <span>
#include <vector>

#include "lp/model.hpp"

namespace effitest::lp {

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNodeLimit,
};

[[nodiscard]] const char* to_string(SolveStatus s);

struct SimplexOptions {
  int max_iterations = 200000;   ///< pivot limit across both phases
  double tol = 1e-9;             ///< pivot / reduced-cost tolerance
  double feas_tol = 1e-7;        ///< phase-1 feasibility threshold
};

struct LpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< one entry per model variable
  int iterations = 0;
};

/// Solve the LP relaxation of `model` (integrality ignored).
[[nodiscard]] LpSolution solve_lp(const Model& model,
                                  const SimplexOptions& options = {});

}  // namespace effitest::lp
