#include "stats/pca.hpp"

#include <algorithm>
#include <cmath>

namespace effitest::stats {

std::size_t Pca::significant_components(double coverage) const {
  linalg::EigenDecomposition tmp;
  tmp.values = component_variance;
  return tmp.components_for_coverage(coverage);
}

std::size_t Pca::significant_by_kaiser(double scale) const {
  if (component_variance.empty()) return 0;
  double total = 0.0;
  for (double v : component_variance) total += std::max(v, 0.0);
  const double floor =
      scale * total / static_cast<double>(component_variance.size());
  std::size_t count = 0;
  for (double v : component_variance) {
    if (v >= floor * (1.0 - 1e-9)) ++count;
  }
  return std::max<std::size_t>(count, 1);
}

Pca pca_from_covariance(linalg::Matrix cov) {
  cov.symmetrize();
  linalg::EigenDecomposition eig = linalg::eigen_symmetric(std::move(cov));
  return Pca{std::move(eig.values), std::move(eig.vectors)};
}

std::vector<std::size_t> select_representatives(const Pca& pca,
                                                std::size_t num_components) {
  const std::size_t n = pca.components.rows();
  const std::size_t k = std::min(num_components, n);
  std::vector<bool> taken(n, false);
  std::vector<std::size_t> selected;
  selected.reserve(k);
  for (std::size_t comp = 0; comp < k; ++comp) {
    double best = -1.0;
    std::size_t best_var = 0;
    bool found = false;
    for (std::size_t var = 0; var < n; ++var) {
      if (taken[var]) continue;
      const double l = std::abs(pca.loading(var, comp));
      if (l > best) {
        best = l;
        best_var = var;
        found = true;
      }
    }
    if (!found) break;
    taken[best_var] = true;
    selected.push_back(best_var);
  }
  return selected;
}

}  // namespace effitest::stats
