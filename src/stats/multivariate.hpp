#pragma once
// Multivariate normal sampling via Cholesky factorization.
//
// Sampling simulated dies (10,000 chips in the paper's experiments) requires
// joint draws of correlated path delays: X = mu + L z with Sigma = L L^T.

#include <span>
#include <vector>

#include "linalg/decomposition.hpp"
#include "linalg/matrix.hpp"
#include "stats/rng.hpp"

namespace effitest::stats {

/// Multivariate normal distribution N(mu, Sigma) prepared for repeated
/// sampling. The covariance is factored once at construction (with a small
/// diagonal jitter fallback for near-singular matrices built from highly
/// correlated delays).
class MultivariateNormal {
 public:
  MultivariateNormal(std::vector<double> mean, const linalg::Matrix& cov,
                     double jitter = 1e-10);

  [[nodiscard]] std::size_t dimension() const { return mean_.size(); }
  [[nodiscard]] std::span<const double> mean() const { return mean_; }
  [[nodiscard]] const linalg::Matrix& cholesky_factor() const {
    return chol_.l;
  }

  /// One joint draw.
  [[nodiscard]] std::vector<double> sample(Rng& rng) const;

  /// `count` joint draws as rows of a matrix.
  [[nodiscard]] linalg::Matrix sample_many(Rng& rng, std::size_t count) const;

 private:
  std::vector<double> mean_;
  linalg::Cholesky chol_;
};

/// Sample covariance matrix of observations given as matrix rows.
[[nodiscard]] linalg::Matrix sample_covariance(const linalg::Matrix& rows);

/// Convert a covariance matrix to a correlation matrix.
[[nodiscard]] linalg::Matrix covariance_to_correlation(const linalg::Matrix& cov);

}  // namespace effitest::stats
